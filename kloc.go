// Package kloc is a library-grade reproduction of "KLOCs: Kernel-Level
// Object Contexts for Heterogeneous Memory Systems" (Kannan, Ren,
// Bhattacharjee — ASPLOS 2021) as a deterministic simulation.
//
// The paper's contribution is an OS abstraction that groups the kernel
// objects (inodes, dentries, journal buffers, page-cache pages, socket
// buffers, ...) belonging to each file or socket into a "KLOC" anchored
// on a knode, so that tiered-memory policies can place and migrate them
// en masse instead of relying on page-table scans that are slower than
// the objects' lifetimes.
//
// This package re-exports the public surface:
//
//   - platform construction (two-tier and Optane Memory Mode);
//   - the simulated kernel (filesystem, network stack, allocators);
//   - the KLOC registry and the Table-2 API;
//   - Table-5 tiering policies (Naive, Nimble, Nimble++, KLOCs,
//     AutoNUMA variants, ideal/worst bounds);
//   - Table-3 workload models (RocksDB, Redis, Filebench, Cassandra,
//     Spark);
//   - the experiment harness that regenerates every table and figure
//     of the paper's evaluation (see EXPERIMENTS.md).
//
// Quick start:
//
//	res, err := kloc.Run(kloc.RunConfig{
//		PolicyName: "klocs",
//		Workload:   "rocksdb",
//	})
//	fmt.Printf("throughput: %.0f ops/s\n", res.Throughput)
//
// Everything executes in virtual time on one goroutine; identical
// seeds produce identical results.
package kloc

import (
	"strings"

	"kloc/internal/alloc"
	"kloc/internal/chaos"
	"kloc/internal/cluster"
	"kloc/internal/fault"
	"kloc/internal/harness"
	"kloc/internal/kernel"
	"kloc/internal/kloc"
	"kloc/internal/kobj"
	"kloc/internal/memsim"
	"kloc/internal/metrics"
	"kloc/internal/perfbench"
	"kloc/internal/policy"
	"kloc/internal/pressure"
	"kloc/internal/sim"
	"kloc/internal/trace"
	"kloc/internal/workload"
)

// Simulation substrate.
type (
	// Time is a virtual-time instant (nanoseconds).
	Time = sim.Time
	// Duration is a virtual-time span (nanoseconds).
	Duration = sim.Duration
	// Engine is the deterministic discrete-event engine.
	Engine = sim.Engine
	// RNG is the deterministic random number generator.
	RNG = sim.RNG
)

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns a fresh event engine at time zero.
func NewEngine() *Engine { return sim.NewEngine() }

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// Memory platforms (Table 4).
type (
	// Memory is the simulated memory system.
	Memory = memsim.Memory
	// TwoTierConfig parameterizes the software-managed two-tier
	// platform.
	TwoTierConfig = memsim.TwoTierConfig
	// OptaneConfig parameterizes the Optane Memory-Mode platform.
	OptaneConfig = memsim.OptaneConfig
	// Frame is one simulated page frame.
	Frame = memsim.Frame
	// NodeID identifies a memory node.
	NodeID = memsim.NodeID
)

// NewTwoTier builds the two-tier platform (Table 4, top).
func NewTwoTier(cfg TwoTierConfig) *Memory { return memsim.NewTwoTier(cfg) }

// NewOptane builds the Memory-Mode platform (Table 4, bottom).
func NewOptane(cfg OptaneConfig) *Memory { return memsim.NewOptane(cfg) }

// DefaultTwoTier returns the Table-4 two-tier config scaled by
// 1/scaleDiv.
func DefaultTwoTier(scaleDiv int) TwoTierConfig { return memsim.DefaultTwoTier(scaleDiv) }

// DefaultOptane returns the Table-4 Optane config scaled by 1/scaleDiv.
func DefaultOptane(scaleDiv int) OptaneConfig { return memsim.DefaultOptane(scaleDiv) }

// Kernel and KLOC core.
type (
	// Kernel is the assembled simulated OS.
	Kernel = kernel.Kernel
	// Policy is a tiering strategy plugged into the kernel.
	Policy = kernel.Policy
	// Registry is the KLOC state: kmap, knodes, per-CPU fast paths
	// (the Table-2 API lives here).
	Registry = kloc.Registry
	// Knode anchors one KLOC (§4.2).
	Knode = kloc.Knode
	// ObjectType enumerates Table 1's kernel-object types.
	ObjectType = kobj.Type
	// ObjectGroup buckets types for the Fig 5c sensitivity study.
	ObjectGroup = kobj.Group
)

// NewKernel assembles a kernel over a memory platform with a policy.
func NewKernel(eng *Engine, mem *Memory, pol Policy) *Kernel { return kernel.New(eng, mem, pol) }

// NewRegistry builds a standalone KLOC registry (most users get one
// implicitly through the KLOCs policy).
func NewRegistry(mem *Memory, cpus int) *Registry { return kloc.NewRegistry(mem, cpus) }

// ObjectTypes returns Table 1's taxonomy.
func ObjectTypes() []ObjectType { return kobj.Types() }

// Policies (Table 5).
type (
	// KLOCConfig selects a KLOCs policy variant.
	KLOCConfig = policy.KLOCConfig
	// KLOCsPolicy is the paper's policy.
	KLOCsPolicy = policy.KLOCs
)

// PolicyByName constructs a Table-5 strategy: "naive", "nimble",
// "nimble++", "klocs", "klocs-nomigration", "all-fast", "all-slow",
// "autonuma", "nimble-numa", "autonuma+klocs", "all-local",
// "all-remote".
func PolicyByName(name string) (Policy, error) { return policy.ByName(name) }

// NewKLOCs builds the KLOCs policy with a custom configuration.
func NewKLOCs(cfg KLOCConfig) *KLOCsPolicy { return policy.NewKLOCs(cfg) }

// DefaultKLOCConfig is the full paper design.
func DefaultKLOCConfig() KLOCConfig { return policy.DefaultKLOCConfig() }

// Fault injection (the robustness plane; DESIGN.md §7).
type (
	// Errno is a kernel-style error code (ENOMEM, EIO, EAGAIN, EBUSY,
	// EINVAL) propagated through the simulated kernel surface.
	Errno = fault.Errno
	// FaultConfig describes a deterministic fault-injection plane.
	FaultConfig = fault.Config
	// FaultPlane is an armed injector; attach one via
	// Kernel.InjectFaults or RunConfig.Fault.
	FaultPlane = fault.Plane
	// FaultPoint names an injection point (block I/O, slab/page
	// allocation, migration, packet ingress).
	FaultPoint = fault.Point
	// FaultRule sets a point's probability or schedule.
	FaultRule = fault.Rule
)

// Errnos.
const (
	ENOMEM    = fault.ENOMEM
	EIO       = fault.EIO
	EAGAIN    = fault.EAGAIN
	EBUSY     = fault.EBUSY
	EINVAL    = fault.EINVAL
	ETIMEDOUT = fault.ETIMEDOUT
)

// UniformFaults builds a config injecting each point's default errno
// with the given probability per consult, deterministically from seed.
func UniformFaults(seed uint64, prob float64) FaultConfig { return fault.Uniform(seed, prob) }

// NewFaultPlane arms a plane from a config.
func NewFaultPlane(cfg FaultConfig) *FaultPlane { return fault.NewPlane(cfg) }

// FaultPoints lists the named injection points.
func FaultPoints() []FaultPoint { return fault.Points() }

// IsErrno reports whether err carries a kernel-style errno.
func IsErrno(err error) bool { return fault.IsErrno(err) }

// AsErrno extracts the errno from an error chain.
func AsErrno(err error) (Errno, bool) { return fault.AsErrno(err) }

// Memory pressure (the watermark/reclaim plane; DESIGN.md §8).
type (
	// PressureConfig configures watermarks, the kswapd-analog
	// background reclaimer, and direct-reclaim retry bounds for a run
	// (RunConfig.Pressure).
	PressureConfig = pressure.Config
	// PressurePlane is the assembled reclaim machinery — shrinker
	// registry, bounded direct reclaim, kswapd, OOM-grade eviction.
	// Every Kernel owns one (Kernel.Pressure).
	PressurePlane = pressure.Plane
	// PressureStats counts a run's reclaim activity.
	PressureStats = pressure.Stats
	// Shrinker is a Linux-style count/scan reclaim callback.
	Shrinker = pressure.Shrinker
	// Watermarks are per-node min/low/high free-page thresholds.
	Watermarks = memsim.Watermarks
)

// DeriveWatermarks computes Linux-style min/low/high watermarks for a
// node of the given capacity (min ≈ capacity/64, low = 5/4·min,
// high = 3/2·min).
func DeriveWatermarks(capacityPages int) Watermarks {
	return memsim.DeriveWatermarks(capacityPages)
}

// Tracing (the tracepoint-analog observability plane; DESIGN.md §9,
// OBSERVABILITY.md).
type (
	// TraceConfig arms the tracing plane for a run (RunConfig.Trace):
	// ring-buffer size, enabled event-name patterns, and the summary
	// window width.
	TraceConfig = trace.Config
	// Tracer is an armed tracing plane; Result.Trace carries the run's
	// tracer for export via WriteText / WriteChrome.
	Tracer = trace.Tracer
	// TraceEvent is one emitted trace record.
	TraceEvent = trace.Event
	// TraceEventName names a catalog event ("alloc.slab", ...).
	TraceEventName = trace.Name
	// TraceStats summarizes a run's trace: per-event-name totals and
	// per-KLOC-context activity over virtual-time windows.
	TraceStats = trace.Stats
)

// NewTracer arms a standalone tracer (harness users get one implicitly
// through RunConfig.Trace).
func NewTracer(cfg TraceConfig) *Tracer { return trace.New(cfg) }

// TraceEventNames lists the event catalog in documentation order.
func TraceEventNames() []TraceEventName { return trace.Names() }

// Runtime sanitizing (the KASAN/kmemleak-analog plane; DESIGN.md §10).
type (
	// Sanitizer is an armed runtime sanitizer: a freed-object poison
	// quarantine catches double frees and use-after-free accesses as
	// they happen, and a teardown reachability scan reports leaks
	// grouped by KLOC context. RunConfig.Sanitize arms one per run.
	Sanitizer = alloc.Sanitizer
	// SanReport is the end-of-run sanitizer summary (Result.Sanitize).
	SanReport = alloc.SanReport
	// SanFinding is one detected violation.
	SanFinding = alloc.SanFinding
	// SanKind classifies a finding (double-free, use-after-free, leak).
	SanKind = alloc.SanKind
	// LeakGroup aggregates leaked objects sharing a KLOC context.
	LeakGroup = alloc.LeakGroup
)

// Finding kinds.
const (
	SanDoubleFree   = alloc.SanDoubleFree
	SanUseAfterFree = alloc.SanUseAfterFree
	SanLeak         = alloc.SanLeak
)

// NewSanitizer arms a standalone sanitizer (harness users get one
// implicitly through RunConfig.Sanitize).
func NewSanitizer() *Sanitizer { return alloc.NewSanitizer() }

// Workloads (Table 3).
type (
	// Workload is a Table-3 application model.
	Workload = workload.Workload
	// WorkloadConfig scales a workload.
	WorkloadConfig = workload.Config
)

// WorkloadByName constructs "rocksdb", "redis", "filebench",
// "cassandra", or "spark".
func WorkloadByName(name string, cfg WorkloadConfig) (Workload, error) {
	return workload.ByName(name, cfg)
}

// WorkloadNames lists the Table-3 catalog.
func WorkloadNames() []string { return workload.Names() }

// Experiment harness.
type (
	// RunConfig describes one measured simulation run.
	RunConfig = harness.RunConfig
	// Result is a run's outcome.
	Result = harness.Result
	// Options tunes an experiment batch.
	Options = harness.Options
	// Table is a rendered experiment result.
	Table = harness.Table
)

// Platform selectors for RunConfig.
const (
	TwoTier = harness.TwoTier
	Optane  = harness.Optane
)

// Run executes one measured simulation run.
func Run(cfg RunConfig) (*Result, error) { return harness.Run(cfg) }

// Experiment runs a named paper experiment ("fig2a".."fig6", "table6",
// "prefetch", "ablations", "faults", "pressure") and returns its table.
func Experiment(name string, o Options) (*Table, error) {
	fn, ok := harness.Experiments[name]
	if !ok {
		return nil, errUnknownExperiment(name)
	}
	return fn(o)
}

// ExperimentNames lists experiments in presentation order.
func ExperimentNames() []string { return harness.ExperimentNames() }

// DefaultOptions runs experiments at full fidelity.
func DefaultOptions() Options { return harness.DefaultOptions() }

// QuickOptions trades fidelity for wall time.
func QuickOptions() Options { return harness.QuickOptions() }

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "kloc: unknown experiment " + string(e) +
		" (valid: " + strings.Join(ExperimentNames(), ", ") + ")"
}

// Cluster serving plane (the fleet robustness plane; DESIGN.md §11).
type (
	// ClusterConfig describes a simulated serving fleet: machine count
	// and worker pools, open-loop arrival process, client retry/hedge
	// budgets, routing policy, and the deterministic fault schedule.
	ClusterConfig = cluster.Config
	// ClusterReport is one cluster run's outcome (goodput, latency
	// quantiles, availability through fault windows, and counters).
	ClusterReport = cluster.Report
	// ClusterStats are the raw fleet counters inside a ClusterReport.
	ClusterStats = cluster.Stats
	// Cluster is a running fleet: N machine stacks behind the balancer.
	Cluster = cluster.Cluster
	// MachineFault schedules one deterministic machine fault.
	MachineFault = cluster.MachineFault
	// ClusterFaultKind selects crash-restart or fast-tier degrade.
	ClusterFaultKind = cluster.FaultKind
	// ClusterBenchReport is the machine-readable cluster sweep
	// (BENCH_cluster.json).
	ClusterBenchReport = harness.ClusterBenchReport
	// ClusterBenchRow is one sweep point in a ClusterBenchReport.
	ClusterBenchRow = harness.ClusterBenchRow
)

// Machine fault kinds for ClusterConfig.Faults.
const (
	FaultCrash   = cluster.FaultCrash
	FaultDegrade = cluster.FaultDegrade
)

// NewCluster builds a serving fleet from a config.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// ClusterRouteNames lists the balancer's routing policies in
// presentation order: "round-robin", "least-loaded", "kloc".
func ClusterRouteNames() []string { return cluster.RouteNames() }

// ClusterBench sweeps offered load against every routing policy with a
// crash and a degrade window in each run ("klocbench -exp cluster").
func ClusterBench(o Options) (*Table, *ClusterBenchReport, error) {
	return harness.ClusterBench(o)
}

// Chaos campaigns (the deterministic fault-schedule fuzzing plane;
// DESIGN.md §12).
type (
	// ChaosConfig describes one chaos campaign: target, schedule count,
	// seed, and per-run sizing.
	ChaosConfig = chaos.Config
	// ChaosSummary is the machine-readable campaign outcome
	// (BENCH_chaos.json).
	ChaosSummary = chaos.Summary
	// ChaosViolation is one invariant-oracle rejection of one run.
	ChaosViolation = chaos.Violation
	// ChaosViolationRecord is one campaign violation with its
	// minimization outcome.
	ChaosViolationRecord = chaos.ViolationRecord
	// ChaosOracle is one invariant check over a run's outcome.
	ChaosOracle = chaos.Oracle
	// ChaosArtifact is a self-contained replay artifact
	// (CHAOS_repro_<hash>.json).
	ChaosArtifact = chaos.Artifact
	// ChaosReplayReport is the outcome of re-executing an artifact.
	ChaosReplayReport = chaos.ReplayReport
	// FaultSchedule is a pure timed injection schedule — what the chaos
	// generator samples and the minimizer shrinks.
	FaultSchedule = fault.Schedule
	// FaultInjection is one scheduled injection of a FaultSchedule.
	FaultInjection = fault.Injection
)

// Chaos campaign targets.
const (
	ChaosTargetCluster = chaos.TargetCluster
	ChaosTargetMachine = chaos.TargetMachine
)

// ChaosSchemaVersion stamps chaos summaries and replay artifacts.
const ChaosSchemaVersion = chaos.SchemaVersion

// RunChaosCampaign executes one chaos campaign ("klocbench -exp
// chaos"): generate fault schedules, run each against the target, judge
// with the invariant-oracle registry, and shrink every violation to a
// minimal repro with a replay artifact.
func RunChaosCampaign(cfg ChaosConfig) (*ChaosSummary, []*ChaosArtifact, error) {
	return chaos.RunCampaign(cfg)
}

// ChaosOracles lists the invariant oracles for a campaign target, in
// checking order.
func ChaosOracles(target string) []ChaosOracle { return chaos.Registry(target) }

// ParseChaosArtifact deserializes and validates a replay artifact.
func ParseChaosArtifact(data []byte) (*ChaosArtifact, error) { return chaos.ParseArtifact(data) }

// ChaosReplay re-executes an artifact's schedule twice ("klocbench
// -exp chaos -replay FILE") and reports whether the violation
// reproduces deterministically.
func ChaosReplay(a *ChaosArtifact) (*ChaosReplayReport, error) { return chaos.Replay(a) }

// Hot-path accounting and the perf harness (DESIGN.md §13,
// PERFORMANCE.md).
type (
	// AccountingMode selects the hot-path accounting variant for a run
	// (RunConfig.Accounting): batched per-CPU stat commits, pooled
	// records, dense indices, or the exact per-event baseline. The
	// zero value resolves to the default (all optimizations on); every
	// mode produces byte-identical simulation results.
	AccountingMode = metrics.Mode
	// PerfConfig tunes a perf sweep ("klocbench -exp perf").
	PerfConfig = perfbench.Config
	// PerfReport is the machine-readable sweep (BENCH_perf.json).
	PerfReport = perfbench.Report
	// PerfVariant is one named accounting configuration under test.
	PerfVariant = perfbench.Variant
	// PerfStageRow is one (stage, variant) measurement in a PerfReport.
	PerfStageRow = perfbench.StageRow
	// PerfLaneRow is one worker-count row of the sharded-engine lane
	// sweep in a PerfReport (results identical across rows by contract).
	PerfLaneRow = perfbench.LaneRow
	// RunPerfMeters are one run's deterministic accounting meters
	// (Result.Perf).
	RunPerfMeters = harness.PerfMeters
)

// Accounting mode bits (combine with LegacyAccounting()).
const (
	ModeBatched = metrics.ModeBatched
	ModePooled  = metrics.ModePooled
	ModeIndexed = metrics.ModeIndexed
)

// DefaultAccounting is the default mode: batched + pooled + indexed.
func DefaultAccounting() AccountingMode { return metrics.DefaultMode() }

// LegacyAccounting is the exact per-event baseline (the perf sweep's
// control variant).
func LegacyAccounting() AccountingMode { return metrics.LegacyMode() }

// PerfSchemaVersion stamps BENCH_perf.json.
const PerfSchemaVersion = perfbench.SchemaVersion

// PerfBench runs the accounting-variant sweep ("klocbench -exp perf")
// and returns the rendered table plus the machine-readable report.
func PerfBench(cfg PerfConfig) (*Table, *PerfReport, error) { return perfbench.Run(cfg) }

// PerfVariants lists the sweep's accounting variants in run order.
func PerfVariants() []PerfVariant { return perfbench.Variants() }
