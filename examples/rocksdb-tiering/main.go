// rocksdb-tiering: the paper's headline scenario in detail.
//
// An LSM key-value store churns through files — WAL rotations, memtable
// flushes, compactions — creating and destroying kernel objects far
// faster than LRU scans can track. This example sweeps every two-tier
// strategy over the RocksDB model and reports where each one places
// kernel objects (the Fig 5b view) next to its throughput (the Fig 4
// view).
package main

import (
	"fmt"
	"log"

	"kloc"
)

func main() {
	policies := []string{"all-slow", "naive", "nimble", "nimble++", "klocs-nomigration", "klocs", "all-fast"}

	fmt.Println("RocksDB on the two-tier platform (8 GB fast / 80 GB slow, scaled 1/64)")
	fmt.Printf("%-18s %-14s %-9s %-16s %-16s %-11s\n",
		"policy", "throughput", "speedup", "slow-cache-alloc", "slow-slab-alloc", "migrations")

	var base float64
	for _, pol := range policies {
		res, err := kloc.Run(kloc.RunConfig{
			PolicyName: pol,
			Workload:   "rocksdb",
			Duration:   150 * kloc.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Throughput
		}
		slowSlab := res.SlowAllocsByClass[3] + res.SlowAllocsByClass[4] + res.SlowAllocsByClass[5]
		fmt.Printf("%-18s %10.0f/s  %8.2fx %16d %16d %11d\n",
			pol, res.Throughput, res.Throughput/base,
			res.SlowAllocsByClass[2], slowSlab, res.Mem.MigratedPages)
	}

	fmt.Println()
	fmt.Println("Reading the table the paper's way (§7.2): good policies allocate few")
	fmt.Println("pages in slow memory (direct placement of active KLOCs) and migrate")
	fmt.Println("cold kernel objects out of fast memory before they pollute it.")
}
