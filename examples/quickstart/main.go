// Quickstart: run one workload under two policies and compare.
//
// This is the smallest useful program against the public API: it builds
// nothing by hand — the harness assembles the platform, kernel, policy,
// and workload from names — and prints the headline comparison the
// paper makes: KLOCs versus a naive first-come-first-served fast-memory
// policy.
package main

import (
	"fmt"
	"log"

	"kloc"
)

func main() {
	fmt.Println("KLOCs quickstart: RocksDB on the two-tier platform")
	fmt.Println()

	var baseline float64
	for _, policy := range []string{"all-slow", "naive", "klocs"} {
		res, err := kloc.Run(kloc.RunConfig{
			PolicyName: policy,
			Workload:   "rocksdb",
			Duration:   100 * kloc.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = res.Throughput
		}
		fmt.Printf("%-10s %12.0f ops/s   speedup vs all-slow: %.2fx   migrations: %d\n",
			policy, res.Throughput, res.Throughput/baseline, res.Mem.MigratedPages)
	}

	fmt.Println()
	fmt.Println("The KLOC registry groups each file's kernel objects under a knode;")
	fmt.Println("closing a file immediately marks its whole KLOC cold (§3.2), which is")
	fmt.Println("what lets the policy migrate en masse without page-table scans.")
}
