// autonuma-optane: the Memory-Mode experiment of §6.2/Fig 5a.
//
// On the Optane platform each socket's DRAM acts as a hardware-managed
// L4 cache in front of persistent memory; the OS only chooses sockets.
// The experiment starts the workload on socket 0, then an interfering
// job pushes it to socket 1 (modeled as a task move 10% into the run).
// Vanilla AutoNUMA migrates application pages to the new socket but
// strands every kernel object on socket 0 — the gap AutoNUMA+KLOCs
// closes.
package main

import (
	"fmt"
	"log"

	"kloc"
)

func main() {
	fmt.Println("Cassandra on the Optane Memory-Mode platform, task migrates mid-run")
	fmt.Printf("%-16s %-14s %-9s %-10s %-14s\n",
		"policy", "throughput", "speedup", "L4-hit%", "migrations")

	var base float64
	for _, pol := range []string{"all-remote", "autonuma", "nimble-numa", "autonuma+klocs", "all-local"} {
		res, err := kloc.Run(kloc.RunConfig{
			Platform:       kloc.Optane,
			PolicyName:     pol,
			Workload:       "cassandra",
			Duration:       100 * kloc.Millisecond,
			MoveTaskAtFrac: 0.1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Throughput
		}
		hitRate := float64(res.Mem.L4Hits) / float64(res.Mem.L4Hits+res.Mem.L4Misses+1)
		fmt.Printf("%-16s %10.0f/s  %7.2fx  %8.1f%% %14d\n",
			pol, res.Throughput, res.Throughput/base, 100*hitRate, res.Mem.MigratedPages)
	}

	fmt.Println()
	fmt.Println("AutoNUMA+KLOCs walks the active knodes after the task moves and pulls")
	fmt.Println("their kernel objects to the local socket (§4.5); vanilla AutoNUMA")
	fmt.Println("leaves them remote, paying the interconnect on every kernel access.")
}
