// redis-network: socket-buffer KLOCs and the driver-extraction design.
//
// Redis mixes network ingress/egress (skbuffs, data buffers, receive
// rings) with periodic checkpoints to disk. Two KLOC design points from
// §4.2.3 matter here:
//
//  1. sockets are inodes, so packet buffers join the socket's KLOC and
//     tier with it;
//  2. the driver extracts the owning socket from each ingress packet
//     via the 8-byte skbuff extension — without it, association waits
//     for the TCP stack and costs more per packet.
//
// This example compares the full design against the late-demux variant.
package main

import (
	"fmt"
	"log"

	"kloc"
)

func main() {
	fmt.Println("Redis on the two-tier platform: socket-buffer KLOCs")
	fmt.Println()

	base, err := kloc.Run(kloc.RunConfig{
		PolicyName: "naive", Workload: "redis", Duration: 100 * kloc.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12.0f ops/s  (baseline)\n", "naive", base.Throughput)

	// Full KLOC design: driver-level socket extraction.
	full, err := kloc.Run(kloc.RunConfig{
		PolicyName: "klocs", Workload: "redis", Duration: 100 * kloc.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12.0f ops/s  %.2fx\n", "klocs (driver extraction)",
		full.Throughput, full.Throughput/base.Throughput)

	// Ablation: associate packets with sockets at the TCP layer.
	cfg := kloc.DefaultKLOCConfig()
	cfg.DriverExtract = false
	late, err := kloc.Run(kloc.RunConfig{
		Policy:     kloc.NewKLOCs(cfg),
		PolicyName: "klocs",
		Workload:   "redis",
		Duration:   100 * kloc.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12.0f ops/s  %.2fx\n", "klocs (TCP-layer demux)",
		late.Throughput, late.Throughput/base.Throughput)

	fmt.Println()
	fmt.Printf("net stats (full design): rx=%d packets tx=%d packets, driver-demuxed=%d\n",
		full.Net.PacketsRx, full.Net.PacketsTx, full.Net.DriverDemux)
	fmt.Printf("net stats (late demux):  rx=%d packets, tcp-demuxed=%d\n",
		late.Net.PacketsRx, late.Net.TCPDemux)
}
