module kloc

go 1.22
