module kloc

// Zero dependencies, deliberately: determinism and offline
// reproducibility are the repo's load-bearing properties. In
// particular, cmd/kloclint does NOT pin golang.org/x/tools —
// internal/analysis re-implements the small slice of the go/analysis
// API it needs (Analyzer/Pass/Diagnostic, a source-level loader, and
// `// want` fixture checking) on the standard library's go/ast,
// go/types, and go/importer, so the linter builds and runs with no
// module downloads.

go 1.22
