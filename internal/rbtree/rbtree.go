// Package rbtree implements a generic red-black tree.
//
// The paper leans on Linux's rbtree for every index in the KLOC design:
// the global kmap of knodes, the per-knode rbtree-cache and rbtree-slab
// object indexes, and ext4-style extent maps (§4.2). This package is the
// equivalent substrate: an intrusive-free, generics-based red-black tree
// with ordered iteration, used by kloc, fs, and memsim.
//
// The implementation is the classic CLRS algorithm with a sentinel nil
// leaf. Invariants (validated by Check, used in property tests):
//
//  1. every node is red or black;
//  2. the root is black;
//  3. red nodes have black children;
//  4. every root-to-leaf path has the same number of black nodes;
//  5. in-order traversal yields keys in strictly increasing order.
package rbtree

import "cmp"

type color bool

const (
	red   color = false
	black color = true
)

type node[K cmp.Ordered, V any] struct {
	key                 K
	value               V
	left, right, parent *node[K, V]
	color               color
}

// Tree is an ordered map from K to V. The zero value is not usable; call
// New.
type Tree[K cmp.Ordered, V any] struct {
	root *node[K, V]
	nil_ *node[K, V] // sentinel leaf
	size int
}

// New returns an empty tree.
func New[K cmp.Ordered, V any]() *Tree[K, V] {
	sentinel := &node[K, V]{color: black}
	return &Tree[K, V]{root: sentinel, nil_: sentinel}
}

// Len reports the number of entries.
func (t *Tree[K, V]) Len() int { return t.size }

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.lookup(key)
	if n == t.nil_ {
		var zero V
		return zero, false
	}
	return n.value, true
}

// Has reports whether key is present.
func (t *Tree[K, V]) Has(key K) bool { return t.lookup(key) != t.nil_ }

func (t *Tree[K, V]) lookup(key K) *node[K, V] {
	n := t.root
	for n != t.nil_ {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n
		}
	}
	return t.nil_
}

// Set inserts or replaces the value under key. It reports whether the
// key was newly inserted.
func (t *Tree[K, V]) Set(key K, value V) bool {
	parent := t.nil_
	n := t.root
	for n != t.nil_ {
		parent = n
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			n.value = value
			return false
		}
	}
	fresh := &node[K, V]{key: key, value: value, left: t.nil_, right: t.nil_, parent: parent, color: red}
	switch {
	case parent == t.nil_:
		t.root = fresh
	case key < parent.key:
		parent.left = fresh
	default:
		parent.right = fresh
	}
	t.size++
	t.insertFixup(fresh)
	return true
}

// Delete removes key, reporting whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	z := t.lookup(key)
	if z == t.nil_ {
		return false
	}
	t.deleteNode(z)
	t.size--
	return true
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == t.nil_ {
		var k K
		var v V
		return k, v, false
	}
	n := t.minimum(t.root)
	return n.key, n.value, true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	if t.root == t.nil_ {
		var k K
		var v V
		return k, v, false
	}
	n := t.root
	for n.right != t.nil_ {
		n = n.right
	}
	return n.key, n.value, true
}

// Floor returns the largest entry with key <= want.
func (t *Tree[K, V]) Floor(want K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != t.nil_ {
		if n.key == want {
			return n.key, n.value, true
		}
		if n.key < want {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		var k K
		var v V
		return k, v, false
	}
	return best.key, best.value, true
}

// Ceil returns the smallest entry with key >= want.
func (t *Tree[K, V]) Ceil(want K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != t.nil_ {
		if n.key == want {
			return n.key, n.value, true
		}
		if n.key > want {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		var k K
		var v V
		return k, v, false
	}
	return best.key, best.value, true
}

// Ascend calls fn for each entry in increasing key order until fn
// returns false. fn must not mutate the tree.
func (t *Tree[K, V]) Ascend(fn func(K, V) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[K, V]) ascend(n *node[K, V], fn func(K, V) bool) bool {
	if n == t.nil_ {
		return true
	}
	if !t.ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.value) {
		return false
	}
	return t.ascend(n.right, fn)
}

// AscendRange calls fn for entries with lo <= key < hi in order.
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(K, V) bool) {
	t.ascendRange(t.root, lo, hi, fn)
}

func (t *Tree[K, V]) ascendRange(n *node[K, V], lo, hi K, fn func(K, V) bool) bool {
	if n == t.nil_ {
		return true
	}
	if n.key >= lo {
		if !t.ascendRange(n.left, lo, hi, fn) {
			return false
		}
		if n.key < hi && !fn(n.key, n.value) {
			return false
		}
	}
	if n.key < hi {
		return t.ascendRange(n.right, lo, hi, fn)
	}
	return true
}

// Keys returns all keys in increasing order.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Ascend(func(k K, _ V) bool { out = append(out, k); return true })
	return out
}

// Clear empties the tree.
func (t *Tree[K, V]) Clear() {
	t.root = t.nil_
	t.size = 0
}

// Depth returns the height of the tree (0 for empty). A valid red-black
// tree has depth <= 2*log2(n+1); memsim uses this in the paper's "ten
// memory references per traversal" cost model (§4.2.3).
func (t *Tree[K, V]) Depth() int {
	var walk func(*node[K, V]) int
	walk = func(n *node[K, V]) int {
		if n == t.nil_ {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}

// --- rebalancing ---

func (t *Tree[K, V]) rotateLeft(x *node[K, V]) {
	y := x.right
	x.right = y.left
	if y.left != t.nil_ {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[K, V]) rotateRight(x *node[K, V]) {
	y := x.left
	x.left = y.right
	if y.right != t.nil_ {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[K, V]) insertFixup(z *node[K, V]) {
	for z.parent.color == red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rotateRight(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rotateLeft(z.parent.parent)
			}
		}
	}
	t.root.color = black
}

func (t *Tree[K, V]) minimum(n *node[K, V]) *node[K, V] {
	for n.left != t.nil_ {
		n = n.left
	}
	return n
}

func (t *Tree[K, V]) transplant(u, v *node[K, V]) {
	switch {
	case u.parent == t.nil_:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

func (t *Tree[K, V]) deleteNode(z *node[K, V]) {
	y := z
	yOriginal := y.color
	var x *node[K, V]
	switch {
	case z.left == t.nil_:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nil_:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		yOriginal = y.color
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yOriginal == black {
		t.deleteFixup(x)
	}
}

func (t *Tree[K, V]) deleteFixup(x *node[K, V]) {
	for x != t.root && x.color == black {
		if x == x.parent.left {
			w := x.parent.right
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rotateLeft(x.parent)
				w = x.parent.right
			}
			if w.left.color == black && w.right.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.right.color == black {
					w.left.color = black
					w.color = red
					t.rotateRight(w)
					w = x.parent.right
				}
				w.color = x.parent.color
				x.parent.color = black
				w.right.color = black
				t.rotateLeft(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rotateRight(x.parent)
				w = x.parent.left
			}
			if w.right.color == black && w.left.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.left.color == black {
					w.right.color = black
					w.color = red
					t.rotateLeft(w)
					w = x.parent.left
				}
				w.color = x.parent.color
				x.parent.color = black
				w.left.color = black
				t.rotateRight(x.parent)
				x = t.root
			}
		}
	}
	x.color = black
}

// Check validates the red-black invariants, returning a descriptive
// violation or "" when valid. It exists for tests.
func (t *Tree[K, V]) Check() string {
	if t.root.color != black {
		return "root is red"
	}
	_, msg := t.check(t.root)
	return msg
}

func (t *Tree[K, V]) check(n *node[K, V]) (blackHeight int, msg string) {
	if n == t.nil_ {
		return 1, ""
	}
	if n.color == red {
		if n.left.color == red || n.right.color == red {
			return 0, "red node with red child"
		}
	}
	if n.left != t.nil_ && n.left.key >= n.key {
		return 0, "left child key out of order"
	}
	if n.right != t.nil_ && n.right.key <= n.key {
		return 0, "right child key out of order"
	}
	lh, m := t.check(n.left)
	if m != "" {
		return 0, m
	}
	rh, m := t.check(n.right)
	if m != "" {
		return 0, m
	}
	if lh != rh {
		return 0, "black height mismatch"
	}
	if n.color == black {
		lh++
	}
	return lh, ""
}
