package rbtree

import (
	"sort"
	"testing"
	"testing/quick"

	"kloc/internal/sim"
)

func TestEmptyTree(t *testing.T) {
	tr := New[int, string]()
	if tr.Len() != 0 {
		t.Fatal("empty tree has nonzero length")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree succeeded")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree succeeded")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree succeeded")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree reported success")
	}
	if d := tr.Depth(); d != 0 {
		t.Fatalf("empty depth %d", d)
	}
}

func TestSetGetDelete(t *testing.T) {
	tr := New[int, int]()
	for i := 0; i < 100; i++ {
		if !tr.Set(i, i*10) {
			t.Fatalf("Set(%d) reported replace", i)
		}
	}
	if tr.Set(50, 999) {
		t.Fatal("Set of existing key reported insert")
	}
	if v, ok := tr.Get(50); !ok || v != 999 {
		t.Fatalf("Get(50) = %d,%v", v, ok)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := tr.Get(i)
		if (i%2 == 0) == ok {
			t.Fatalf("Get(%d) presence = %v", i, ok)
		}
	}
	if msg := tr.Check(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestMinMaxFloorCeil(t *testing.T) {
	tr := New[int, string]()
	for _, k := range []int{40, 10, 30, 20} {
		tr.Set(k, "v")
	}
	if k, _, _ := tr.Min(); k != 10 {
		t.Fatalf("Min = %d", k)
	}
	if k, _, _ := tr.Max(); k != 40 {
		t.Fatalf("Max = %d", k)
	}
	if k, _, ok := tr.Floor(25); !ok || k != 20 {
		t.Fatalf("Floor(25) = %d,%v", k, ok)
	}
	if k, _, ok := tr.Floor(20); !ok || k != 20 {
		t.Fatalf("Floor(20) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Floor(5); ok {
		t.Fatal("Floor(5) found something")
	}
	if k, _, ok := tr.Ceil(25); !ok || k != 30 {
		t.Fatalf("Ceil(25) = %d,%v", k, ok)
	}
	if k, _, ok := tr.Ceil(30); !ok || k != 30 {
		t.Fatalf("Ceil(30) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Ceil(45); ok {
		t.Fatal("Ceil(45) found something")
	}
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	tr := New[int, int]()
	r := sim.NewRNG(1)
	for i := 0; i < 500; i++ {
		tr.Set(r.Intn(10000), i)
	}
	var keys []int
	tr.Ascend(func(k, _ int) bool { keys = append(keys, k); return true })
	if !sort.IntsAreSorted(keys) {
		t.Fatal("Ascend out of order")
	}
	if len(keys) != tr.Len() {
		t.Fatalf("Ascend visited %d of %d", len(keys), tr.Len())
	}
	n := 0
	tr.Ascend(func(int, int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New[int, int]()
	for i := 0; i < 100; i++ {
		tr.Set(i, i)
	}
	var got []int
	tr.AscendRange(25, 30, func(k, _ int) bool { got = append(got, k); return true })
	want := []int{25, 26, 27, 28, 29}
	if len(got) != len(want) {
		t.Fatalf("AscendRange got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendRange got %v, want %v", got, want)
		}
	}
	// Early stop inside a range.
	n := 0
	tr.AscendRange(0, 100, func(int, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("range early stop visited %d", n)
	}
}

func TestClear(t *testing.T) {
	tr := New[int, int]()
	for i := 0; i < 10; i++ {
		tr.Set(i, i)
	}
	tr.Clear()
	if tr.Len() != 0 || tr.Has(3) {
		t.Fatal("Clear left entries behind")
	}
	tr.Set(1, 1)
	if tr.Len() != 1 {
		t.Fatal("tree unusable after Clear")
	}
}

func TestDepthLogarithmic(t *testing.T) {
	tr := New[int, int]()
	const n = 1 << 14
	for i := 0; i < n; i++ {
		tr.Set(i, i) // worst case: sorted insertion
	}
	// 2*log2(n+1) = 30 for n=16384
	if d := tr.Depth(); d > 30 {
		t.Fatalf("depth %d exceeds red-black bound", d)
	}
	if msg := tr.Check(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

// TestInvariantsProperty drives random insert/delete mixes and verifies
// the red-black invariants and model equivalence against a map.
func TestInvariantsProperty(t *testing.T) {
	f := func(seed uint64, ops uint16) bool {
		r := sim.NewRNG(seed)
		tr := New[int, int]()
		model := map[int]int{}
		n := int(ops)%500 + 50
		for i := 0; i < n; i++ {
			k := r.Intn(100)
			if r.Bool(0.6) {
				tr.Set(k, i)
				model[k] = i
			} else {
				okT := tr.Delete(k)
				_, okM := model[k]
				if okT != okM {
					return false
				}
				delete(model, k)
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return tr.Check() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKeys(t *testing.T) {
	tr := New[string, int]()
	tr.Set("b", 2)
	tr.Set("a", 1)
	tr.Set("c", 3)
	keys := tr.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
}

func BenchmarkSet(b *testing.B) {
	tr := New[int, int]()
	r := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Set(r.Intn(1<<20), i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[int, int]()
	r := sim.NewRNG(1)
	for i := 0; i < 1<<16; i++ {
		tr.Set(r.Intn(1<<20), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(r.Intn(1 << 20))
	}
}
