package netsim

import (
	"kloc/internal/kstate"
	"kloc/internal/pressure"
)

// skbuffShrinker exposes queued ingress packets to the pressure plane.
// Under reclaim the oldest undelivered packets are dropped (their
// skbuff and rx-buffer objects freed) — the kernel's answer when
// receive backlogs hold memory hostage; peers retransmit, so this is
// degradation, not loss.
type skbuffShrinker struct{ n *Net }

func (s skbuffShrinker) Name() string { return "net.skbuff" }

func (s skbuffShrinker) Count() int {
	total := 0
	for _, ino := range s.n.sockOrder {
		total += len(s.n.sockets[ino].rxQueue)
	}
	return total
}

func (s skbuffShrinker) Scan(ctx *kstate.Ctx, want int) int {
	n := s.n
	freed := 0
	for _, ino := range n.sockOrder {
		if freed >= want {
			break
		}
		sock := n.sockets[ino]
		for len(sock.rxQueue) > 0 && freed < want {
			p := sock.rxQueue[0]
			sock.rxQueue = sock.rxQueue[1:]
			n.freePacket(ctx, p)
			n.Stats.Drops++
			n.Stats.ReclaimedPackets++
			freed++
		}
	}
	return freed
}

// SkbuffShrinker exposes the receive backlogs to the pressure plane.
func (n *Net) SkbuffShrinker() pressure.Shrinker { return skbuffShrinker{n} }
