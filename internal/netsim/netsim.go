// Package netsim simulates the networking stack of the paper's §4.2.3:
// sockets (which are inodes — everything is a file), skbuff packet
// headers, packet data buffers, and receive-side driver buffers, with
// the layered ingress problem the paper highlights: the driver receives
// packets asynchronously and does not know the owning socket until the
// TCP layer demultiplexes — unless the KLOC extension extracts the
// socket in the driver via the 8-byte skbuff field.
package netsim

import (
	"fmt"

	"kloc/internal/alloc"
	"kloc/internal/fault"
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/pressure"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

// Cost constants for the networking paths.
const (
	// syscallEntryCost per socket syscall.
	syscallEntryCost sim.Duration = 100
	// nicPerPacket is the fixed NIC processing cost per packet.
	nicPerPacket sim.Duration = 300
	// nicBandwidth in bytes/ns (10 GbE = 1.25 B/ns).
	nicBandwidth = 1.25
	// driverExtractCost: identifying the socket inside the driver using
	// the extended skbuff field (cheap — the paper's design).
	driverExtractCost sim.Duration = 300
	// tcpDemuxCost: full TCP-stack traversal to find the socket
	// (the baseline's expensive late association).
	tcpDemuxCost sim.Duration = 1800
	// mtu caps per-packet payload bytes.
	mtu = 1500
)

// Stats tracks network activity.
type Stats struct {
	SocketsCreated, SocketsClosed uint64
	PacketsTx, PacketsRx          uint64
	BytesTx, BytesRx              uint64
	DriverDemux, TCPDemux         uint64
	Drops                         uint64
	// InjectedDrops counts Drops caused by the fault plane.
	InjectedDrops uint64
	// ReclaimedPackets counts queued packets dropped by the skbuff
	// shrinker under memory pressure (a subset of Drops).
	ReclaimedPackets uint64
	ObjAllocs        [16]uint64
	ObjLive          [16]int64
}

// Packet is one in-flight ingress packet.
type Packet struct {
	skb, data, rxbuf *kobj.Object
	size             int
	demuxed          bool
}

// Socket is an open socket endpoint.
type Socket struct {
	Ino     uint64
	sockObj *kobj.Object
	rxQueue []*Packet
	Open    bool
}

// QueuedPackets reports the ingress backlog.
func (s *Socket) QueuedPackets() int { return len(s.rxQueue) }

// Net is the simulated network stack.
type Net struct {
	Mem    *memsim.Memory
	Hooks  kstate.Hooks
	ObjIDs *kstate.IDGen
	InoGen *kstate.IDGen

	Pager *alloc.PageAllocator
	slabs map[kobj.Type]*alloc.SlabCache
	klocs map[kobj.Type]*alloc.SlabCache
	// arenas are per-socket KLOC allocation regions (§4.4).
	arenas map[uint64]*alloc.Arena

	sockets map[uint64]*Socket
	// sockOrder keeps creation-order iteration over sockets for the
	// skbuff shrinker; Go map order would break determinism.
	sockOrder []uint64
	// rxBacklogLimit drops ingress packets beyond this per-socket
	// backlog, like a full receive buffer.
	rxBacklogLimit int
	// Pressure, when non-nil, is the kernel's memory-pressure plane:
	// allocation failures enter direct reclaim through its shrinker
	// registry, and the ingress path runs in atomic context so it can
	// draw on the watermark reserve (GFP_ATOMIC, as in a real driver).
	Pressure *pressure.Plane

	// Trace, when non-nil, records alloc.slab / alloc.page / obj.free /
	// net.rx / net.tx events from the socket paths. Strictly passive.
	Trace *trace.Tracer

	// San, when non-nil, is the KASAN/kmemleak-analog sanitizer: the
	// object paths report every alloc, free, and access to it. Strictly
	// passive; nil disables sanitizing.
	San *alloc.Sanitizer

	Stats Stats
}

// New builds the network stack.
func New(mem *memsim.Memory, hooks kstate.Hooks, objIDs, inoGen *kstate.IDGen) *Net {
	return &Net{
		Mem:            mem,
		Hooks:          hooks,
		ObjIDs:         objIDs,
		InoGen:         inoGen,
		Pager:          &alloc.PageAllocator{Mem: mem},
		slabs:          make(map[kobj.Type]*alloc.SlabCache),
		klocs:          make(map[kobj.Type]*alloc.SlabCache),
		arenas:         make(map[uint64]*alloc.Arena),
		sockets:        make(map[uint64]*Socket),
		rxBacklogLimit: 1024,
	}
}

func (n *Net) slabFor(t kobj.Type, relocatable bool) (*alloc.SlabCache, error) {
	m := n.slabs
	if relocatable {
		m = n.klocs
	}
	c := m[t]
	if c == nil {
		var err error
		if relocatable {
			c, err = alloc.NewKlocCache(n.Mem, t.String()+"-kloc", t.Info().Size)
		} else {
			c, err = alloc.NewSlabCache(n.Mem, t.String(), t.Info().Size)
		}
		if err != nil {
			return nil, err
		}
		m[t] = c
	}
	return c, nil
}

func (n *Net) allocObj(ctx *kstate.Ctx, t kobj.Type, ino uint64) (*kobj.Object, error) {
	o, err := n.allocObjOnce(ctx, t, ino)
	if err == memsim.ErrNoMemory && n.Pressure != nil {
		if n.Pressure.DirectReclaim(ctx) > 0 {
			o, err = n.allocObjOnce(ctx, t, ino)
		}
	}
	return o, err
}

func (n *Net) allocObjOnce(ctx *kstate.Ctx, t kobj.Type, ino uint64) (*kobj.Object, error) {
	order := n.Hooks.PlaceKernel(ctx, t, ino)
	id := kobj.ID(n.ObjIDs.Next())
	var o *kobj.Object
	if t.Info().Alloc == kobj.AllocSlab {
		if n.Hooks.UseKlocAllocator(t) && ino != 0 {
			arena := n.arenas[ino]
			if arena == nil {
				arena = alloc.NewArena(n.Mem, 0)
				n.arenas[ino] = arena
			}
			slot, cost, err := arena.Alloc(order, t.Info().Size, ctx.Now)
			if err != nil {
				return nil, err
			}
			ctx.Charge(cost)
			o = kobj.NewObject(id, t, slot.Frame, ctx.Now, func() { arena.Free(slot) })
		} else {
			cache, err := n.slabFor(t, n.Hooks.UseKlocAllocator(t))
			if err != nil {
				return nil, err
			}
			slot, cost, err := cache.Alloc(order, ctx.Now)
			if err != nil {
				return nil, err
			}
			ctx.Charge(cost)
			o = kobj.NewObject(id, t, slot.Frame, ctx.Now, func() { cache.Free(slot) })
		}
	} else {
		frame, cost, err := n.Pager.Alloc(order, memsim.ClassCache, ctx.Now)
		if err != nil {
			return nil, err
		}
		ctx.Charge(cost)
		o = kobj.NewObject(id, t, frame, ctx.Now, func() { n.Pager.Free(frame) })
		n.Hooks.PageAllocated(ctx, frame)
	}
	if t.Info().Alloc == kobj.AllocPage {
		n.Trace.Emit(trace.AllocPage, ctx.Now, ino, uint64(id), t.String(), int(o.Frame.Node), int64(o.Size))
	} else {
		n.Trace.Emit(trace.AllocSlab, ctx.Now, ino, uint64(id), t.String(), int(o.Frame.Node), int64(o.Size))
	}
	n.Stats.ObjAllocs[t]++
	n.Stats.ObjLive[t]++
	// Initialization writes the object's memory (tier-sensitive).
	ctx.Charge(n.Mem.Access(ctx.CPU, o.Frame, o.Size, true, ctx.Now))
	n.San.TrackAlloc(uint64(id), t.String(), ino, int64(o.Size), ctx.Now)
	n.Hooks.ObjectCreated(ctx, ino, o)
	return o, nil
}

func (n *Net) freeObj(ctx *kstate.Ctx, o *kobj.Object) {
	if o == nil {
		return
	}
	n.San.TrackFree(uint64(o.ID), ctx.Now)
	node := -1
	if o.Frame != nil {
		node = int(o.Frame.Node)
	}
	n.Trace.Emit(trace.ObjFree, ctx.Now, o.Knode, uint64(o.ID), o.Type.String(), node, int64(o.Size))
	n.Stats.ObjLive[o.Type]--
	n.Hooks.ObjectFreed(ctx, o)
	if o.Type.Info().Alloc == kobj.AllocPage && o.Frame != nil {
		n.Hooks.PageFreed(ctx, o.Frame)
	}
	o.Release()
}

func (n *Net) touchObj(ctx *kstate.Ctx, o *kobj.Object, bytes int, write bool) {
	if o == nil {
		return
	}
	n.San.CheckAccess(uint64(o.ID), ctx.Now)
	if o.Frame == nil {
		return
	}
	if bytes <= 0 {
		bytes = o.Size
	}
	ctx.Charge(n.Mem.Access(ctx.CPU, o.Frame, bytes, write, ctx.Now))
}

// MarkReachable marks every object the network stack still references
// — each open socket's object plus its queued ingress packets — for
// the sanitizer's kmemleak-style teardown scan.
func (n *Net) MarkReachable(s *alloc.Sanitizer) {
	if s == nil {
		return
	}
	for _, ino := range n.sockOrder {
		sk, ok := n.sockets[ino]
		if !ok {
			continue
		}
		if sk.sockObj != nil {
			s.MarkReachable(uint64(sk.sockObj.ID))
		}
		for _, p := range sk.rxQueue {
			for _, o := range []*kobj.Object{p.skb, p.data, p.rxbuf} {
				if o != nil {
					s.MarkReachable(uint64(o.ID))
				}
			}
		}
	}
}

// Sockets reports open sockets.
func (n *Net) Sockets() int { return len(n.sockets) }

// Socket returns a socket by inode.
func (n *Net) Socket(ino uint64) (*Socket, bool) {
	s, ok := n.sockets[ino]
	return s, ok
}

// SocketCreate opens a socket: an inode is born (sockets are files) and
// the sock object is allocated.
func (n *Net) SocketCreate(ctx *kstate.Ctx) (*Socket, error) {
	ctx.Charge(syscallEntryCost)
	ino := n.InoGen.Next()
	n.Hooks.InodeCreated(ctx, ino, true)
	sockObj, err := n.allocObj(ctx, kobj.Sock, ino)
	if err != nil {
		return nil, err
	}
	s := &Socket{Ino: ino, sockObj: sockObj, Open: true}
	n.sockets[ino] = s
	n.sockOrder = append(n.sockOrder, ino)
	n.Hooks.InodeOpened(ctx, ino)
	n.Stats.SocketsCreated++
	return s, nil
}

// SocketClose tears the socket down: queued packets and the sock object
// are deallocated and the inode dies.
func (n *Net) SocketClose(ctx *kstate.Ctx, s *Socket) {
	if !s.Open {
		return
	}
	ctx.Charge(syscallEntryCost)
	s.Open = false
	for _, p := range s.rxQueue {
		n.freePacket(ctx, p)
	}
	s.rxQueue = nil
	n.freeObj(ctx, s.sockObj)
	s.sockObj = nil
	delete(n.sockets, s.Ino)
	for i, ino := range n.sockOrder {
		if ino == s.Ino {
			n.sockOrder = append(n.sockOrder[:i], n.sockOrder[i+1:]...)
			break
		}
	}
	delete(n.arenas, s.Ino) // all objects freed: the arena is empty
	n.Hooks.InodeClosed(ctx, s.Ino)
	n.Hooks.InodeDeleted(ctx, s.Ino)
	n.Stats.SocketsClosed++
}

func (n *Net) freePacket(ctx *kstate.Ctx, p *Packet) {
	n.freeObj(ctx, p.skb)
	n.freeObj(ctx, p.data)
	n.freeObj(ctx, p.rxbuf)
}

// Send transmits bytes on the socket: one skbuff + data buffer per MTU
// segment, copied from userspace, pushed through the NIC, and freed on
// completion (the short-lived egress population).
func (n *Net) Send(ctx *kstate.Ctx, s *Socket, bytes int) error {
	if !s.Open {
		return fmt.Errorf("netsim: send on closed socket %d: %w", s.Ino, fault.EBADF)
	}
	ctx.Charge(syscallEntryCost)
	n.touchObj(ctx, s.sockObj, 0, true)
	for sent := 0; sent < bytes; sent += mtu {
		seg := bytes - sent
		if seg > mtu {
			seg = mtu
		}
		skb, err := n.allocObj(ctx, kobj.SkBuff, s.Ino)
		if err != nil {
			return err
		}
		data, err := n.allocObj(ctx, kobj.SkBuffData, s.Ino)
		if err != nil {
			n.freeObj(ctx, skb)
			return err
		}
		n.touchObj(ctx, skb, 0, true)
		n.touchObj(ctx, data, seg, true) // copy from user
		ctx.Charge(nicPerPacket + sim.Duration(float64(seg)/nicBandwidth))
		n.Trace.Emit(trace.NetTx, ctx.Now, s.Ino, uint64(skb.ID), "segment", -1, int64(seg))
		n.Stats.PacketsTx++
		n.Stats.BytesTx += uint64(seg)
		n.freeObj(ctx, skb)
		n.freeObj(ctx, data)
	}
	return nil
}

// Deliver models asynchronous packet ingress (NAPI): the driver
// allocates an rx buffer and skbuff for each MTU segment. With driver
// extraction (the KLOC design) the socket is identified immediately and
// the objects are associated with its KLOC; otherwise association waits
// for the TCP layer at Recv time.
//
// Deliver runs in softirq context: ctx should be a daemon/interrupt
// context, not a user operation's.
func (n *Net) Deliver(ctx *kstate.Ctx, s *Socket, bytes int) error {
	if !s.Open {
		n.Stats.Drops++
		return nil
	}
	// Softirq context cannot sleep: ingress allocations are GFP_ATOMIC
	// and may dip into the watermark reserve rather than fail.
	exitAtomic := n.Mem.EnterAtomic()
	defer exitAtomic()
	for recvd := 0; recvd < bytes; recvd += mtu {
		seg := bytes - recvd
		if seg > mtu {
			seg = mtu
		}
		if len(s.rxQueue) >= n.rxBacklogLimit {
			n.Stats.Drops++
			continue
		}
		// Injected ingress drop: the NIC ring overflowed or the DMA
		// failed; the segment is lost (EAGAIN territory — the peer would
		// retransmit) but delivery of later segments continues.
		if e := n.Mem.Fault.Check(fault.RxDrop, ctx.Now); e != 0 {
			n.Stats.Drops++
			n.Stats.InjectedDrops++
			continue
		}
		driverKnows := n.Hooks.DriverSockExtract()
		ownerIno := uint64(0)
		if driverKnows {
			ownerIno = s.Ino
		}
		rxbuf, err := n.allocObj(ctx, kobj.RxBuf, ownerIno)
		if err != nil {
			return err
		}
		skb, err := n.allocObj(ctx, kobj.SkBuff, ownerIno)
		if err != nil {
			n.freeObj(ctx, rxbuf)
			return err
		}
		n.touchObj(ctx, rxbuf, seg, true) // DMA landing
		n.touchObj(ctx, skb, 0, true)
		p := &Packet{skb: skb, rxbuf: rxbuf, size: seg}
		if driverKnows {
			ctx.Charge(driverExtractCost)
			p.demuxed = true
			n.Stats.DriverDemux++
		}
		s.rxQueue = append(s.rxQueue, p)
		n.Trace.Emit(trace.NetRx, ctx.Now, s.Ino, uint64(skb.ID), "segment",
			int(skb.Frame.Node), int64(seg))
		n.Stats.PacketsRx++
		n.Stats.BytesRx += uint64(seg)
	}
	return nil
}

// Recv consumes up to maxBytes from the socket's ingress queue,
// performing late TCP demux (and late KLOC association) for packets the
// driver could not attribute. Returns bytes received.
func (n *Net) Recv(ctx *kstate.Ctx, s *Socket, maxBytes int) (int, error) {
	if !s.Open {
		return 0, fmt.Errorf("netsim: recv on closed socket %d: %w", s.Ino, fault.EBADF)
	}
	ctx.Charge(syscallEntryCost)
	n.touchObj(ctx, s.sockObj, 0, false)
	got := 0
	for len(s.rxQueue) > 0 && got < maxBytes {
		p := s.rxQueue[0]
		s.rxQueue = s.rxQueue[1:]
		if !p.demuxed {
			// Walk the TCP stack to find the socket, then associate the
			// kernel objects with the KLOC (late association).
			ctx.Charge(tcpDemuxCost)
			n.Stats.TCPDemux++
			p.demuxed = true
			n.Hooks.ObjectAssociated(ctx, s.Ino, p.skb)
			n.Hooks.ObjectAssociated(ctx, s.Ino, p.rxbuf)
		}
		n.touchObj(ctx, p.skb, 0, false)
		n.touchObj(ctx, p.rxbuf, p.size, false) // copy to user
		got += p.size
		n.freePacket(ctx, p)
	}
	return got, nil
}
