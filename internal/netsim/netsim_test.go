package netsim

import (
	"testing"
	"testing/quick"

	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

type netHooks struct {
	kstate.NopHooks
	driverExtract bool
	created       []uint64 // inodes of ObjectCreated calls
	associated    int
	sockInodes    []uint64
}

func (h *netHooks) DriverSockExtract() bool { return h.driverExtract }
func (h *netHooks) InodeCreated(_ *kstate.Ctx, ino uint64, sock bool) {
	if sock {
		h.sockInodes = append(h.sockInodes, ino)
	}
}
func (h *netHooks) ObjectCreated(_ *kstate.Ctx, ino uint64, _ *kobj.Object) {
	h.created = append(h.created, ino)
}
func (h *netHooks) ObjectAssociated(*kstate.Ctx, uint64, *kobj.Object) { h.associated++ }

func newNet(t *testing.T, h kstate.Hooks) (*Net, *memsim.Memory) {
	t.Helper()
	mem := memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 512, SlowPages: 2048,
		FastBandwidth: 30, BandwidthRatio: 4, CPUs: 2,
	})
	if h == nil {
		h = kstate.NopHooks{}
	}
	var objIDs, inoGen kstate.IDGen
	return New(mem, h, &objIDs, &inoGen), mem
}

func ctx() *kstate.Ctx { return &kstate.Ctx{CPU: 0, Now: 0} }

func TestSocketLifecycle(t *testing.T) {
	h := &netHooks{}
	n, mem := newNet(t, h)
	c := ctx()
	s, err := n.SocketCreate(c)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Open || s.Ino == 0 {
		t.Fatalf("socket state: %+v", s)
	}
	if len(h.sockInodes) != 1 || h.sockInodes[0] != s.Ino {
		t.Fatal("socket inode creation hook wrong")
	}
	if n.Sockets() != 1 {
		t.Fatal("socket not registered")
	}
	if n.Stats.ObjAllocs[kobj.Sock] != 1 {
		t.Fatal("no sock object allocated")
	}
	n.SocketClose(c, s)
	if n.Sockets() != 0 || s.Open {
		t.Fatal("close failed")
	}
	if mem.Frames() != 0 {
		t.Fatal("socket close leaked frames")
	}
	n.SocketClose(c, s) // double close is a no-op
	if n.Stats.SocketsClosed != 1 {
		t.Fatal("double close counted twice")
	}
}

func TestSendSegmentsAndFrees(t *testing.T) {
	n, mem := newNet(t, nil)
	c := ctx()
	s, _ := n.SocketCreate(c)
	if err := n.Send(c, s, 4000); err != nil { // 3 MTU segments
		t.Fatal(err)
	}
	if n.Stats.PacketsTx != 3 || n.Stats.BytesTx != 4000 {
		t.Fatalf("tx stats: %+v", n.Stats)
	}
	if n.Stats.ObjLive[kobj.SkBuff] != 0 || n.Stats.ObjLive[kobj.SkBuffData] != 0 {
		t.Fatal("egress objects leaked")
	}
	if c.Cost <= 0 {
		t.Fatal("send was free")
	}
	n.SocketClose(c, s)
	if mem.Frames() != 0 {
		t.Fatal("frames leaked")
	}
}

func TestSendOnClosedSocket(t *testing.T) {
	n, _ := newNet(t, nil)
	c := ctx()
	s, _ := n.SocketCreate(c)
	n.SocketClose(c, s)
	if err := n.Send(c, s, 100); err == nil {
		t.Fatal("send on closed socket succeeded")
	}
	if _, err := n.Recv(c, s, 100); err == nil {
		t.Fatal("recv on closed socket succeeded")
	}
}

func TestIngressDriverExtraction(t *testing.T) {
	h := &netHooks{driverExtract: true}
	n, _ := newNet(t, h)
	c := ctx()
	s, _ := n.SocketCreate(c)
	h.created = nil // ignore the sock object
	if err := n.Deliver(c, s, 3000); err != nil {
		t.Fatal(err)
	}
	if n.Stats.DriverDemux != 2 || n.Stats.TCPDemux != 0 {
		t.Fatalf("demux stats: %+v", n.Stats)
	}
	// With driver extraction, ingress objects are created already
	// attributed to the socket's inode.
	for _, ino := range h.created {
		if ino != s.Ino {
			t.Fatalf("ingress object created with ino %d, want %d", ino, s.Ino)
		}
	}
	if s.QueuedPackets() != 2 {
		t.Fatalf("queued = %d", s.QueuedPackets())
	}
	got, err := n.Recv(c, s, 1<<20)
	if err != nil || got != 3000 {
		t.Fatalf("recv: %d %v", got, err)
	}
	if h.associated != 0 {
		t.Fatal("late association fired despite driver extraction")
	}
}

func TestIngressLateTCPDemux(t *testing.T) {
	h := &netHooks{driverExtract: false}
	n, _ := newNet(t, h)
	c := ctx()
	s, _ := n.SocketCreate(c)
	h.created = nil
	n.Deliver(c, s, 1500)
	// Without driver extraction, objects are created unattributed.
	for _, ino := range h.created {
		if ino != 0 {
			t.Fatalf("ingress object created with ino %d, want 0", ino)
		}
	}
	recvCtx := ctx()
	n.Recv(recvCtx, s, 1<<20)
	if n.Stats.TCPDemux != 1 || n.Stats.DriverDemux != 0 {
		t.Fatalf("demux stats: %+v", n.Stats)
	}
	if h.associated != 2 { // skb + rxbuf
		t.Fatalf("associated = %d", h.associated)
	}
}

func TestDemuxCostDifference(t *testing.T) {
	run := func(driver bool) sim.Duration {
		h := &netHooks{driverExtract: driver}
		n, _ := newNet(t, h)
		setup := ctx()
		s, _ := n.SocketCreate(setup)
		var total sim.Duration
		for i := 0; i < 50; i++ {
			d := ctx()
			n.Deliver(d, s, 1500)
			r := ctx()
			n.Recv(r, s, 1<<20)
			total += d.Cost + r.Cost
		}
		return total
	}
	withDriver := run(true)
	withTCP := run(false)
	if withDriver >= withTCP {
		t.Fatalf("driver extraction (%v) not cheaper than TCP demux (%v)", withDriver, withTCP)
	}
}

func TestBacklogDrops(t *testing.T) {
	n, _ := newNet(t, nil)
	n.rxBacklogLimit = 2
	c := ctx()
	s, _ := n.SocketCreate(c)
	n.Deliver(c, s, 1500*5)
	if s.QueuedPackets() != 2 {
		t.Fatalf("queued = %d", s.QueuedPackets())
	}
	if n.Stats.Drops != 3 {
		t.Fatalf("drops = %d", n.Stats.Drops)
	}
}

func TestDeliverToClosedSocketDrops(t *testing.T) {
	n, _ := newNet(t, nil)
	c := ctx()
	s, _ := n.SocketCreate(c)
	n.SocketClose(c, s)
	if err := n.Deliver(c, s, 1500); err != nil {
		t.Fatal(err)
	}
	if n.Stats.Drops != 1 || n.Stats.PacketsRx != 0 {
		t.Fatalf("stats: %+v", n.Stats)
	}
}

func TestRecvRespectsMaxBytes(t *testing.T) {
	n, _ := newNet(t, nil)
	c := ctx()
	s, _ := n.SocketCreate(c)
	n.Deliver(c, s, 1500*4)
	got, _ := n.Recv(c, s, 2000)
	if got != 3000 { // two whole packets to exceed 2000
		t.Fatalf("got %d", got)
	}
	if s.QueuedPackets() != 2 {
		t.Fatalf("remaining = %d", s.QueuedPackets())
	}
}

func TestSocketCloseFreesQueuedPackets(t *testing.T) {
	n, mem := newNet(t, nil)
	c := ctx()
	s, _ := n.SocketCreate(c)
	n.Deliver(c, s, 1500*3)
	n.SocketClose(c, s)
	if n.Stats.ObjLive[kobj.SkBuff] != 0 || n.Stats.ObjLive[kobj.RxBuf] != 0 {
		t.Fatal("queued packet objects leaked")
	}
	if mem.Frames() != 0 {
		t.Fatal("frames leaked")
	}
}

func TestKlocAllocatorForNetworkObjects(t *testing.T) {
	h := &netHooks{}
	n, _ := newNet(t, allKlocHooks{})
	c := ctx()
	s, _ := n.SocketCreate(c)
	if s.sockObj.Frame.Pinned {
		t.Fatal("sock object pinned despite KLOC allocator")
	}
	_ = h
}

type allKlocHooks struct{ kstate.NopHooks }

func (allKlocHooks) UseKlocAllocator(kobj.Type) bool { return true }

// TestNetInvariantsProperty drives random socket traffic and checks
// structural invariants: live-object accounting never goes negative,
// ingress queue membership matches live rx objects, and closing
// everything returns all frames.
func TestNetInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		mem := memsim.NewTwoTier(memsim.TwoTierConfig{
			FastPages: 256, SlowPages: 1024,
			FastBandwidth: 30, BandwidthRatio: 4, CPUs: 2,
		})
		var objIDs, inoGen kstate.IDGen
		n := New(mem, kstate.NopHooks{}, &objIDs, &inoGen)
		c := &kstate.Ctx{CPU: 0}
		var socks []*Socket
		for i := 0; i < 300; i++ {
			c.Now = sim.Time(i) * 1000
			switch r.Intn(5) {
			case 0:
				if s, err := n.SocketCreate(c); err == nil {
					socks = append(socks, s)
				}
			case 1:
				if len(socks) > 0 {
					n.Deliver(c, socks[r.Intn(len(socks))], r.Intn(4000)+1)
				}
			case 2:
				if len(socks) > 0 {
					n.Recv(c, socks[r.Intn(len(socks))], 1<<16)
				}
			case 3:
				if len(socks) > 0 {
					n.Send(c, socks[r.Intn(len(socks))], r.Intn(4000)+1)
				}
			case 4:
				if len(socks) > 0 {
					j := r.Intn(len(socks))
					n.SocketClose(c, socks[j])
					socks = append(socks[:j], socks[j+1:]...)
				}
			}
			for _, live := range n.Stats.ObjLive {
				if live < 0 {
					return false
				}
			}
		}
		// Queued packets across sockets == live skbuff headers on the
		// ingress path (each queued packet holds exactly one skb).
		queued := 0
		for _, s := range socks {
			queued += s.QueuedPackets()
		}
		if int64(queued) != n.Stats.ObjLive[kobj.SkBuff] {
			return false
		}
		// Drain everything: no frames left.
		for _, s := range socks {
			n.SocketClose(c, s)
		}
		return mem.Frames() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
