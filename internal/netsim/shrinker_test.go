package netsim

import (
	"testing"

	"kloc/internal/fault"
	"kloc/internal/memsim"
)

func TestSkbuffShrinkerCountScan(t *testing.T) {
	n, mem := newNet(t, nil)
	c := ctx()
	s1, _ := n.SocketCreate(c)
	s2, _ := n.SocketCreate(c)
	n.Deliver(c, s1, 1500*3)
	n.Deliver(c, s2, 1500*3)

	sh := n.SkbuffShrinker()
	if sh.Name() != "net.skbuff" {
		t.Fatalf("name = %s", sh.Name())
	}
	if sh.Count() != 6 {
		t.Fatalf("count = %d, want 6 queued packets", sh.Count())
	}
	framesBefore := mem.Frames()
	if freed := sh.Scan(c, 4); freed != 4 {
		t.Fatalf("scan freed %d, want 4", freed)
	}
	// Socket-creation order is scan order: s1 drained first.
	if s1.QueuedPackets() != 0 || s2.QueuedPackets() != 2 {
		t.Fatalf("queues = %d/%d, want 0/2", s1.QueuedPackets(), s2.QueuedPackets())
	}
	if n.Stats.ReclaimedPackets != 4 || n.Stats.Drops != 4 {
		t.Fatalf("stats: %+v", n.Stats)
	}
	if mem.Frames() >= framesBefore {
		t.Fatal("reclaim freed no memory")
	}
	// The surviving backlog is still deliverable to the app.
	got, err := n.Recv(c, s2, 1<<20)
	if err != nil || got != 3000 {
		t.Fatalf("recv after shrink: %d bytes, %v", got, err)
	}
}

func TestSkbuffShrinkerSkipsClosedSockets(t *testing.T) {
	n, _ := newNet(t, nil)
	c := ctx()
	s, _ := n.SocketCreate(c)
	n.Deliver(c, s, 1500*2)
	n.SocketClose(c, s) // frees the backlog with the socket
	sh := n.SkbuffShrinker()
	if sh.Count() != 0 {
		t.Fatalf("count = %d after close", sh.Count())
	}
	if freed := sh.Scan(c, 10); freed != 0 {
		t.Fatalf("scan on closed sockets freed %d", freed)
	}
}

func TestRxDropFaultPoint(t *testing.T) {
	n, mem := newNet(t, nil)
	mem.Fault = fault.NewPlane(fault.Config{
		Seed:  7,
		Rules: map[fault.Point]fault.Rule{fault.RxDrop: {Prob: 1}},
	})
	c := ctx()
	s, _ := n.SocketCreate(c)
	if err := n.Deliver(c, s, 1500*4); err != nil {
		t.Fatalf("injected drops must not error the rx path: %v", err)
	}
	if n.Stats.InjectedDrops != 4 || n.Stats.Drops != 4 || n.Stats.PacketsRx != 0 {
		t.Fatalf("stats: %+v", n.Stats)
	}
	if s.QueuedPackets() != 0 {
		t.Fatalf("queued = %d after total loss", s.QueuedPackets())
	}
	// The app-side read sees an empty queue — the would-block (EAGAIN)
	// path, not an error.
	got, err := n.Recv(c, s, 1<<20)
	if err != nil || got != 0 {
		t.Fatalf("recv on drained socket: %d, %v", got, err)
	}
	if mem.Fault.InjectedAt(fault.RxDrop) != 4 {
		t.Fatalf("trace counted %d rxdrops", mem.Fault.InjectedAt(fault.RxDrop))
	}
}

func TestRxDropFaultDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, int) {
		n, mem := newNet(t, nil)
		mem.Fault = fault.NewPlane(fault.Config{
			Seed:  seed,
			Rules: map[fault.Point]fault.Rule{fault.RxDrop: {Prob: 0.5}},
		})
		c := ctx()
		s, _ := n.SocketCreate(c)
		for i := 0; i < 20; i++ {
			n.Deliver(c, s, 1500)
		}
		return n.Stats.InjectedDrops, s.QueuedPackets()
	}
	d1, q1 := run(11)
	d2, q2 := run(11)
	if d1 != d2 || q1 != q2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, q1, d2, q2)
	}
	if d1 == 0 || d1 == 20 {
		t.Fatalf("p=0.5 injected %d/20 — stream looks degenerate", d1)
	}
}

func TestDeliverDipsIntoReserveUnderWatermark(t *testing.T) {
	n, mem := newNet(t, nil)
	wm := memsim.Watermarks{Min: 64, Low: 80, High: 96}
	mem.Node(memsim.FastNode).SetWatermarks(wm)
	// Pin the fast node at its Min watermark.
	for mem.Node(memsim.FastNode).Free() > wm.Min {
		if _, err := mem.Alloc(memsim.FastNode, memsim.ClassApp, 0); err != nil {
			t.Fatal(err)
		}
	}
	c := ctx()
	s, _ := n.SocketCreate(c)
	// Ingress is GFP_ATOMIC: it must succeed from the reserve, not
	// fail with ENOMEM.
	if err := n.Deliver(c, s, 1500*2); err != nil {
		t.Fatalf("rx path failed at the watermark: %v", err)
	}
	if s.QueuedPackets() != 2 {
		t.Fatalf("queued = %d", s.QueuedPackets())
	}
	if mem.Stats.ReserveDips == 0 {
		t.Fatal("ingress allocations did not dip into the reserve")
	}
}
