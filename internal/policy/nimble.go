package policy

import (
	"kloc/internal/kernel"
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// nimbleScanPeriod is the hotness-scan cadence. The point of §3.3 is
// that this cadence — fine for application pages with minutes-long
// lifetimes — is far longer than kernel-object lifetimes (36 ms slab /
// 160 ms page cache), so scan-based policies are structurally late for
// kernel objects.
const nimbleScanPeriod = 10 * sim.Millisecond

// Nimble is the prior-art baseline: application pages tier between fast
// and slow memory with parallelized page copies; kernel objects are
// allocated entirely in slow memory and never migrate (§3.2's
// description of two-tier prior work).
type Nimble struct {
	Base
	engine *tierEngine
	// kernelClasses configures which frame classes the scan engine
	// tiers: Nimble tiers only app pages; Nimble++ adds kernel pages.
	kernelPages bool
	// kernelAlloc is the fixed fallback order for kernel objects.
	kernelAlloc []memsim.NodeID
}

// NewNimble returns the Nimble baseline.
func NewNimble() *Nimble {
	return &Nimble{
		Base:        Base{name: "nimble", period: nimbleScanPeriod},
		kernelAlloc: slowOnly(),
	}
}

// NewNimblePP returns Nimble++: Nimble's machinery extended to identify
// and migrate kernel pages, still without the KLOC abstraction. Kernel
// pages start in slow memory and rely on scans to be promoted — which
// usually happens after the object is already dead.
func NewNimblePP() *Nimble {
	return &Nimble{
		Base:        Base{name: "nimble++", period: nimbleScanPeriod},
		kernelPages: true,
		kernelAlloc: slowFirst(),
	}
}

// Attach builds the scan engine.
func (n *Nimble) Attach(k *kernel.Kernel) {
	n.Base.Attach(k)
	classes := []memsim.Class{memsim.ClassApp}
	if n.kernelPages {
		classes = append(classes, memsim.ClassCache, memsim.ClassKloc)
	}
	n.engine = newTierEngine(k.Mem, 4, classes...)
}

// PlaceApp: fast first.
func (n *Nimble) PlaceApp(*kstate.Ctx) []memsim.NodeID { return fastFirst() }

// PlaceKernel: slow memory (prior art ignores kernel-object tiering at
// allocation time).
func (n *Nimble) PlaceKernel(*kstate.Ctx, kobj.Type, uint64) []memsim.NodeID {
	return n.kernelAlloc
}

// PageAllocated tracks the frame in the scan engine.
func (n *Nimble) PageAllocated(ctx *kstate.Ctx, f *memsim.Frame) { n.engine.onAlloc(ctx, f) }

// PageAccessed refreshes LRU state.
func (n *Nimble) PageAccessed(ctx *kstate.Ctx, f *memsim.Frame) { n.engine.onAccess(ctx, f) }

// PageFreed forgets the frame.
func (n *Nimble) PageFreed(ctx *kstate.Ctx, f *memsim.Frame) { n.engine.onFree(ctx, f) }

// Tick runs the scan/migrate pass.
func (n *Nimble) Tick(now sim.Time) sim.Duration { return n.engine.tick(now) }

// Engine exposes the tier engine for tests and stats.
func (n *Nimble) Engine() (demoted, promoted uint64) {
	return n.engine.DemotedPages, n.engine.PromotedPages
}

var _ kernel.Policy = (*Nimble)(nil)
