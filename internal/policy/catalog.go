package policy

import (
	"fmt"

	"kloc/internal/kernel"
)

// ByName constructs a policy from its Table-5 name.
func ByName(name string) (kernel.Policy, error) {
	switch name {
	// Two-tier platform (Table 5, top half).
	case "all-fast":
		return AllFast(), nil
	case "all-slow":
		return AllSlow(), nil
	case "naive":
		return Naive(), nil
	case "nimble":
		return NewNimble(), nil
	case "nimble++":
		return NewNimblePP(), nil
	case "klocs":
		return NewKLOCs(DefaultKLOCConfig()), nil
	case "klocs-nomigration":
		cfg := DefaultKLOCConfig()
		cfg.Migration = false
		return NewKLOCs(cfg), nil
	// Optane Memory-Mode platform (Table 5, bottom half).
	case "all-remote":
		return NewAllRemote(), nil
	case "all-local":
		return NewAllLocal(), nil
	case "autonuma":
		return NewAutoNUMA(), nil
	case "nimble-numa":
		return NewNimbleNUMA(), nil
	case "autonuma+klocs":
		return NewAutoNUMAKlocs(), nil
	default:
		return nil, fmt.Errorf("policy: unknown strategy %q", name)
	}
}

// TwoTierNames lists the two-tier strategies in Fig 4's bar order.
func TwoTierNames() []string {
	return []string{"naive", "nimble", "nimble++", "klocs-nomigration", "klocs", "all-fast"}
}

// OptaneNames lists the Memory-Mode strategies in Fig 5a's order.
func OptaneNames() []string {
	return []string{"autonuma", "nimble-numa", "autonuma+klocs", "all-local"}
}
