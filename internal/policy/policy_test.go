package policy

import (
	"testing"

	"kloc/internal/kernel"
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

func twoTierKernel(t *testing.T, pol kernel.Policy) (*kernel.Kernel, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	mem := memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 512, SlowPages: 4096, FastBandwidth: 30, BandwidthRatio: 4, CPUs: 4,
	})
	return kernel.New(eng, mem, pol), eng
}

func TestCatalogCoversTableFive(t *testing.T) {
	names := append(TwoTierNames(), OptaneNames()...)
	names = append(names, "all-slow", "all-remote")
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		want := n
		if n == "nimble-numa" {
			want = "nimble" // Fig 5a labels it as Nimble
		}
		if p.Name() != want {
			t.Fatalf("policy %q reports name %q", n, p.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestStaticPlacements(t *testing.T) {
	cases := []struct {
		name      string
		firstApp  memsim.NodeID
		firstKern memsim.NodeID
	}{
		{"all-fast", memsim.FastNode, memsim.FastNode},
		{"all-slow", memsim.SlowNode, memsim.SlowNode},
		{"naive", memsim.FastNode, memsim.FastNode},
	}
	for _, c := range cases {
		p, _ := ByName(c.name)
		ctx := &kstate.Ctx{}
		if got := p.PlaceApp(ctx)[0]; got != c.firstApp {
			t.Errorf("%s app order starts at %v", c.name, got)
		}
		if got := p.PlaceKernel(ctx, kobj.Inode, 1)[0]; got != c.firstKern {
			t.Errorf("%s kernel order starts at %v", c.name, got)
		}
	}
	// The ideal bound models the best-case kernel.
	if p, _ := ByName("all-fast"); !p.DriverSockExtract() {
		t.Error("all-fast should use driver extraction")
	}
	if p, _ := ByName("all-slow"); p.DriverSockExtract() {
		t.Error("all-slow should model the stock kernel")
	}
}

func TestNimbleKernelObjectsGoSlow(t *testing.T) {
	n := NewNimble()
	twoTierKernel(t, n)
	ctx := &kstate.Ctx{}
	order := n.PlaceKernel(ctx, kobj.PageCache, 1)
	if order[0] != memsim.SlowNode || len(order) != 1 {
		t.Fatalf("nimble kernel order = %v; prior art allocates kernel objects in slow memory", order)
	}
	if n.PlaceApp(ctx)[0] != memsim.FastNode {
		t.Fatal("nimble app pages should prefer fast memory")
	}
	if n.UseKlocAllocator(kobj.Dentry) {
		t.Fatal("nimble must use the classic slab")
	}
}

func TestNimbleAppTiering(t *testing.T) {
	n := NewNimble()
	k, _ := twoTierKernel(t, n)
	ctx := k.NewCtx(0)
	// Fill fast with app pages, then stop touching most of them.
	frames, err := k.AppAlloc(ctx, 500)
	if err != nil {
		t.Fatal(err)
	}
	hot := frames[:16]
	for now := sim.Time(0); now < sim.Time(100*sim.Millisecond); now += sim.Time(5 * sim.Millisecond) {
		c := &kstate.Ctx{CPU: 0, Now: now}
		for _, f := range hot {
			k.Mem.Access(0, f, 64, false, now)
			n.PageAccessed(c, f)
		}
		n.Tick(now)
	}
	dem, _ := n.Engine()
	if dem == 0 {
		t.Fatal("nimble never demoted cold app pages under pressure")
	}
	// Hot frames should have survived in fast memory.
	for _, f := range hot {
		if f.Node != memsim.FastNode {
			t.Fatalf("hot frame demoted to %v", f.Node)
		}
	}
}

func TestNimblePPTracksKernelPages(t *testing.T) {
	npp := NewNimblePP()
	k, _ := twoTierKernel(t, npp)
	ctx := k.NewCtx(0)
	f, err := k.FS.Create(ctx, "/x")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.FS.Write(ctx, f, 0); err != nil {
		t.Fatal(err)
	}
	// Kernel cache pages land slow-first under nimble++ and are tracked
	// by the scan engine for promotion.
	if !npp.engine.classes[memsim.ClassCache] {
		t.Fatal("nimble++ must track cache pages")
	}
	if NewNimble().kernelPages {
		t.Fatal("plain nimble must not track kernel pages")
	}
}

func TestKLOCsLifecycle(t *testing.T) {
	p := NewKLOCs(DefaultKLOCConfig())
	k, _ := twoTierKernel(t, p)
	ctx := k.NewCtx(0)
	file, err := k.FS.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.FS.Write(ctx, file, 0); err != nil {
		t.Fatal(err)
	}
	ino := file.Inode.Ino
	kn, ok := p.Reg.Get(ino)
	if !ok {
		t.Fatal("no knode for created file")
	}
	if !kn.Active {
		t.Fatal("knode of open file inactive")
	}
	c, s := kn.Objects()
	if c == 0 || s == 0 {
		t.Fatalf("knode trees empty: cache=%d slab=%d", c, s)
	}
	k.FS.Close(ctx, file)
	if kn.Active {
		t.Fatal("knode still active after close")
	}
	if len(p.demoteQueue) == 0 {
		t.Fatal("close did not queue demotion")
	}
	// Reopen reactivates.
	if _, err := k.FS.Open(ctx, "/f"); err != nil {
		t.Fatal(err)
	}
	if !kn.Active {
		t.Fatal("reopen did not reactivate the knode")
	}
	// Unlink after close deletes the knode.
	k.FS.Close(ctx, file)
	if err := k.FS.Unlink(ctx, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Reg.Get(ino); ok {
		t.Fatal("knode survived inode deletion")
	}
}

func TestKLOCsPlacement(t *testing.T) {
	p := NewKLOCs(DefaultKLOCConfig())
	k, _ := twoTierKernel(t, p)
	ctx := k.NewCtx(0)
	file, _ := k.FS.Create(ctx, "/f")
	ino := file.Inode.Ino
	// Active knode: fast-first.
	if order := p.PlaceKernel(ctx, kobj.PageCache, ino); order[0] != memsim.FastNode {
		t.Fatalf("active knode placed %v", order)
	}
	k.FS.Close(ctx, file)
	// Inactive knode: slow-first.
	if order := p.PlaceKernel(ctx, kobj.PageCache, ino); order[0] != memsim.SlowNode {
		t.Fatalf("inactive knode placed %v", order)
	}
	// Unknown owner: fast-first.
	if order := p.PlaceKernel(ctx, kobj.RxBuf, 0); order[0] != memsim.FastNode {
		t.Fatalf("unowned object placed %v", order)
	}
}

func TestKLOCsDemotionMovesCachePagesOnly(t *testing.T) {
	p := NewKLOCs(DefaultKLOCConfig())
	k, _ := twoTierKernel(t, p)
	ctx := k.NewCtx(0)
	file, _ := k.FS.Create(ctx, "/f")
	for i := int64(0); i < 32; i++ {
		if err := k.FS.Write(ctx, file, i); err != nil {
			t.Fatal(err)
		}
	}
	// Create fast-memory pressure so demotion fires.
	if _, err := k.AppAlloc(ctx, k.Mem.Node(memsim.FastNode).Free()-10); err != nil {
		t.Fatal(err)
	}
	kn, _ := p.Reg.Get(file.Inode.Ino)
	k.FS.Close(ctx, file)
	var now sim.Time
	for i := 0; i < 20; i++ {
		now = now.Add(klocTickPeriod)
		p.Tick(now)
	}
	slowCache, fastKloc := 0, 0
	kn.IterCache(func(o *kobj.Object) bool {
		if o.Frame.Node == memsim.SlowNode {
			slowCache++
		}
		return true
	})
	kn.IterSlab(func(o *kobj.Object) bool {
		if o.Frame.Node == memsim.FastNode {
			fastKloc++
		}
		return true
	})
	if slowCache == 0 {
		t.Fatal("inactive knode's cache pages were not demoted")
	}
	if p.KnodeDemotions == 0 {
		t.Fatal("demotion counter not incremented")
	}
}

func TestKLOCsNoMigrationVariant(t *testing.T) {
	cfg := DefaultKLOCConfig()
	cfg.Migration = false
	p := NewKLOCs(cfg)
	if p.Name() != "klocs-nomigration" {
		t.Fatalf("name = %s", p.Name())
	}
	k, _ := twoTierKernel(t, p)
	ctx := k.NewCtx(0)
	file, _ := k.FS.Create(ctx, "/f")
	k.FS.Close(ctx, file)
	if len(p.demoteQueue) != 0 {
		t.Fatal("nomigration variant queued a demotion")
	}
	p.Tick(sim.Time(klocTickPeriod))
	if p.KnodeDemotions != 0 {
		t.Fatal("nomigration variant migrated")
	}
}

func TestKLOCsGroupFilter(t *testing.T) {
	cfg := DefaultKLOCConfig()
	cfg.IncludedGroups = []kobj.Group{kobj.GroupPageCache}
	p := NewKLOCs(cfg)
	k, _ := twoTierKernel(t, p)
	ctx := k.NewCtx(0)
	file, _ := k.FS.Create(ctx, "/f")
	k.FS.Write(ctx, file, 0)
	kn, _ := p.Reg.Get(file.Inode.Ino)
	c, s := kn.Objects()
	if c == 0 {
		t.Fatal("included page-cache objects not tracked")
	}
	// The page-cache group also covers radix-tree nodes (slab-class);
	// everything else (inode, dentry, extent, journal) must be absent.
	onlyRadix := true
	kn.IterSlab(func(o *kobj.Object) bool {
		if o.Type != kobj.RadixNode {
			onlyRadix = false
		}
		return true
	})
	if !onlyRadix {
		t.Fatalf("excluded slab objects tracked (%d slab entries)", s)
	}
	// Excluded types always place fast.
	k.FS.Close(ctx, file)
	if order := p.PlaceKernel(ctx, kobj.Journal, file.Inode.Ino); order[0] != memsim.FastNode {
		t.Fatal("excluded type not pinned to fast memory")
	}
	if p.UseKlocAllocator(kobj.Journal) {
		t.Fatal("excluded type routed to the KLOC allocator")
	}
}

func TestKLOCsRelocatableSlabsAblation(t *testing.T) {
	cfg := DefaultKLOCConfig()
	cfg.RelocatableSlabs = false
	p := NewKLOCs(cfg)
	if p.UseKlocAllocator(kobj.Dentry) {
		t.Fatal("pinned-slabs variant still uses the KLOC allocator")
	}
	full := NewKLOCs(DefaultKLOCConfig())
	if !full.UseKlocAllocator(kobj.Dentry) {
		t.Fatal("full design must use the relocatable allocator")
	}
}

func TestKLOCsMetadataAccounting(t *testing.T) {
	p := NewKLOCs(DefaultKLOCConfig())
	k, _ := twoTierKernel(t, p)
	ctx := k.NewCtx(0)
	file, _ := k.FS.Create(ctx, "/f")
	k.FS.Write(ctx, file, 0)
	if p.MetadataBytes() <= 0 {
		t.Fatal("no metadata accounted")
	}
}

// --- Optane/NUMA policies ---

func optaneKernel(t *testing.T, pol kernel.Policy) (*kernel.Kernel, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	mem := memsim.NewOptane(memsim.DefaultOptane(512))
	return kernel.New(eng, mem, pol), eng
}

func TestAllRemotePinsToOriginalSocket(t *testing.T) {
	p := NewAllRemote()
	k, _ := optaneKernel(t, p)
	ctx := k.NewCtx(0)
	if order := p.PlaceApp(ctx); order[0] != memsim.Socket0Node {
		t.Fatalf("all-remote placed %v", order)
	}
	// The placement is PINNED: it does not follow the task, which is
	// what makes every access remote after the interference move.
	k.SetTaskSocket(1)
	if order := p.PlaceApp(ctx); order[0] != memsim.Socket0Node {
		t.Fatal("all-remote placement followed the task")
	}
	if order := p.PlaceKernel(ctx, kobj.Sock, 1); order[0] != memsim.Socket0Node {
		t.Fatal("kernel placement not pinned")
	}
}

func TestAllLocalTeleports(t *testing.T) {
	p := NewAllLocal()
	k, _ := optaneKernel(t, p)
	ctx := k.NewCtx(0)
	frames, err := k.AppAlloc(ctx, 50)
	if err != nil {
		t.Fatal(err)
	}
	k.SetTaskSocket(1)
	p.Tick(1000)
	for _, f := range frames {
		if f.Node != memsim.Socket1Node {
			t.Fatalf("oracle left a frame on %v", f.Node)
		}
	}
	if !p.DriverSockExtract() {
		t.Fatal("ideal bound should model the best-case kernel")
	}
}

func TestAutoNUMAMigratesAppOnly(t *testing.T) {
	p := NewAutoNUMA()
	k, _ := optaneKernel(t, p)
	ctx := k.NewCtx(0)
	frames, err := k.AppAlloc(ctx, 50)
	if err != nil {
		t.Fatal(err)
	}
	file, _ := k.FS.Create(ctx, "/f")
	k.FS.Write(ctx, file, 0)

	k.SetTaskSocket(1)
	// Touch the app pages from the new socket, then let the sampler run.
	now := sim.Time(10 * sim.Millisecond)
	for _, f := range frames {
		k.Mem.Access(k.CPUFor(0), f, 64, false, now)
	}
	p.Tick(now.Add(1000))
	if p.MigratedApp == 0 {
		t.Fatal("autonuma migrated no app pages after the task moved")
	}
	if p.MigratedKernel != 0 {
		t.Fatal("vanilla autonuma migrated kernel pages")
	}
	// Kernel page stayed on socket 0.
	var kernFrame *memsim.Frame
	for _, o := range file.Inode.Objects() {
		if o.Type == kobj.PageCache {
			kernFrame = o.Frame
		}
	}
	if kernFrame == nil || kernFrame.Node != memsim.Socket0Node {
		t.Fatal("kernel page should be stranded on socket 0 under vanilla autonuma")
	}
}

func TestAutoNUMAKlocsMovesKernelObjects(t *testing.T) {
	p := NewAutoNUMAKlocs()
	k, _ := optaneKernel(t, p)
	ctx := k.NewCtx(0)
	file, _ := k.FS.Create(ctx, "/f")
	for i := int64(0); i < 8; i++ {
		k.FS.Write(ctx, file, i)
	}
	k.SetTaskSocket(1)
	// Tick well past the young-frame threshold (one scan period).
	p.Tick(sim.Time(200 * sim.Millisecond))
	if p.MigratedKernel == 0 {
		t.Fatal("autonuma+klocs moved no kernel objects")
	}
	moved := 0
	for _, o := range file.Inode.Objects() {
		if o.Frame != nil && o.Frame.Node == memsim.Socket1Node {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no kernel object followed the task")
	}
}

func TestNimbleNUMAIsFaster(t *testing.T) {
	a, n := NewAutoNUMA(), NewNimbleNUMA()
	if n.TickPeriod() >= a.TickPeriod() {
		t.Fatal("nimble's machinery should scan more often than autonuma")
	}
	if n.Name() != "nimble" {
		t.Fatalf("name = %s", n.Name())
	}
}

func TestKLOCsFastMemLimit(t *testing.T) {
	cfg := DefaultKLOCConfig()
	cfg.FastMemLimitPages = 4 // absurdly small cap
	p := NewKLOCs(cfg)
	k, _ := twoTierKernel(t, p)
	ctx := k.NewCtx(0)
	file, _ := k.FS.Create(ctx, "/f")
	for i := int64(0); i < 16; i++ {
		if err := k.FS.Write(ctx, file, i); err != nil {
			t.Fatal(err)
		}
	}
	// Once past the cap, tracked kernel objects must place slow-first.
	if order := p.PlaceKernel(ctx, kobj.PageCache, file.Inode.Ino); order[0] != memsim.SlowNode {
		t.Fatalf("sys_kloc_memsize cap ignored: %v (kernel used: %d)",
			order, k.Mem.KernelUsed(memsim.FastNode))
	}
	p.SetFastMemLimit(0) // lift the cap
	if order := p.PlaceKernel(ctx, kobj.PageCache, file.Inode.Ino); order[0] != memsim.FastNode {
		t.Fatal("lifted cap still routes slow")
	}
}

func TestKLOCsFineGrainedSparesHotObjects(t *testing.T) {
	cfg := DefaultKLOCConfig()
	cfg.FineGrained = true
	p := NewKLOCs(cfg)
	k, _ := twoTierKernel(t, p)
	ctx := k.NewCtx(0)
	file, _ := k.FS.Create(ctx, "/f")
	for i := int64(0); i < 16; i++ {
		k.FS.Write(ctx, file, i)
	}
	// Pressure so demotion fires.
	if _, err := k.AppAlloc(ctx, k.Mem.Node(memsim.FastNode).Free()-8); err != nil {
		t.Fatal(err)
	}
	kn, _ := p.Reg.Get(file.Inode.Ino)
	k.FS.Close(ctx, file)
	// Touch page 0 "now"; the rest of the knode is cold.
	now := sim.Time(200 * sim.Millisecond)
	var hot *memsim.Frame
	kn.IterCache(func(o *kobj.Object) bool { hot = o.Frame; return false })
	k.Mem.Access(0, hot, 64, false, now)
	for i := 0; i < 15; i++ {
		now = now.Add(klocTickPeriod)
		p.Tick(now)
	}
	if hot.Node != memsim.FastNode {
		t.Fatal("fine-grained mode demoted a hot object")
	}
	demotedAny := false
	kn.IterCache(func(o *kobj.Object) bool {
		if o.Frame.Node == memsim.SlowNode {
			demotedAny = true
		}
		return true
	})
	if !demotedAny {
		t.Fatal("fine-grained mode demoted nothing at all")
	}
}
