package policy

import (
	"kloc/internal/kernel"
	"kloc/internal/kloc"
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// KLOC daemon tuning.
const (
	// klocTickPeriod: the KLOC daemon runs an order of magnitude more
	// often than scan-based policies because it does no scanning — it
	// reacts to the demotion/promotion queues the syscall hooks feed.
	klocTickPeriod = 1 * sim.Millisecond
	// klocAgeEvery runs knode aging + the app-page scan every N ticks
	// (bringing those back to the ~100 ms cadence).
	klocAgeEvery = 10
	// klocAgeThreshold: active knodes aged past this are demoted.
	klocAgeThreshold = 3
	// klocDemoteFreeFrac: demote only while fast free space is below
	// this fraction (demotion relieves real pressure, §4.4).
	klocDemoteFreeFrac = 0.15
	// klocKnodesPerTick bounds queue processing per tick.
	klocKnodesPerTick = 64
)

// KLOCConfig selects the KLOC policy variant; the zero value is not
// useful — start from DefaultKLOCConfig.
type KLOCConfig struct {
	// Migration enables kernel-object migration; false gives the
	// paper's KLOCs-nomigration bar.
	Migration bool
	// IncludedGroups limits which Table-1 object groups are tracked by
	// KLOCs (Fig 5c); nil includes everything. Excluded objects are
	// always placed in fast memory, per the paper's methodology.
	IncludedGroups []kobj.Group
	// DriverExtract enables socket extraction in the driver (§4.2.3);
	// disabling it is the late-association ablation.
	DriverExtract bool
	// FastPath enables the per-CPU knode lists (§4.3 ablation).
	FastPath bool
	// SplitTrees enables the rbtree-cache/rbtree-slab split (§4.2.3
	// ablation).
	SplitTrees bool
	// RelocatableSlabs routes slab-class objects through the KLOC
	// allocation interface so they can migrate (§4.4 ablation).
	RelocatableSlabs bool
	// FastMemLimitPages caps the fast-tier pages KLOC-managed kernel
	// objects may occupy (Table 2's sys_kloc_memsize; 0 = unlimited).
	FastMemLimitPages int
	// FineGrained migrates individual cold objects instead of whole
	// knodes (the §4.4 future-work design, kept for the ablation
	// bench). Coarse knode-granularity tracking is the paper's default.
	FineGrained bool
}

// DefaultKLOCConfig is the full paper design.
func DefaultKLOCConfig() KLOCConfig {
	return KLOCConfig{
		Migration:        true,
		DriverExtract:    true,
		FastPath:         true,
		SplitTrees:       true,
		RelocatableSlabs: true,
	}
}

// KLOCs is the paper's policy: kernel objects of active knodes allocate
// directly to fast memory; when a knode turns cold (close or aging) its
// objects are identified through the knode — no page-table scan — and
// migrated en masse; reactivated knodes promote back. Application pages
// use the Nimble machinery (§4.5).
type KLOCs struct {
	Base
	cfg KLOCConfig
	Reg *kloc.Registry

	engine *tierEngine // app pages only
	mig    *memsim.Migrator

	included map[kobj.Group]bool // nil = all

	demoteQueue  []*kloc.Knode
	promoteQueue []*kloc.Knode
	queued       map[kloc.KnodeID]bool
	ticks        int

	// KnodeDemotions/KnodePromotions count en-masse KLOC migrations.
	KnodeDemotions, KnodePromotions uint64
	// MigrationRetries counts knodes requeued after an injected EBUSY.
	MigrationRetries uint64
}

// NewKLOCs builds the policy.
func NewKLOCs(cfg KLOCConfig) *KLOCs {
	name := "klocs"
	if !cfg.Migration {
		name = "klocs-nomigration"
	}
	p := &KLOCs{
		Base:   Base{name: name, period: klocTickPeriod},
		cfg:    cfg,
		queued: make(map[kloc.KnodeID]bool),
	}
	if cfg.IncludedGroups != nil {
		p.included = make(map[kobj.Group]bool)
		for _, g := range cfg.IncludedGroups {
			p.included[g] = true
		}
	}
	return p
}

// Attach creates the registry and the app-page engine.
func (p *KLOCs) Attach(k *kernel.Kernel) {
	p.Base.Attach(k)
	p.Reg = kloc.NewRegistry(k.Mem, k.Mem.NumCPUs())
	p.Reg.FastPathEnabled = p.cfg.FastPath
	p.Reg.SplitTrees = p.cfg.SplitTrees
	p.engine = newTierEngine(k.Mem, 4, memsim.ClassApp)
	p.mig = &memsim.Migrator{Mem: k.Mem, FixedPerPage: migFixedPerPage, Parallelism: 4}
}

// OOMVictimFrames nominates the OOM victim for the kernel's
// last-resort degradation path: the knode with the largest
// footprint-on-node × staleness score, preferring inactive (closed)
// contexts; an active knode is only sacrificed when no inactive one
// holds frames on the pressured node. Knode iteration is kmap order,
// and ties keep the first (lowest-ID) candidate, so the choice is
// deterministic.
func (p *KLOCs) OOMVictimFrames(node memsim.NodeID, now sim.Time) []*memsim.Frame {
	if p.Reg == nil {
		return nil
	}
	pick := func(includeActive bool) []*memsim.Frame {
		var bestFrames []*memsim.Frame
		var best uint64
		for _, kn := range p.Reg.ColdKnodes(0) { // threshold 0: every knode
			if kn.Active && !includeActive {
				continue
			}
			var onNode []*memsim.Frame
			for _, f := range kn.MovableFrames() {
				if f.Node == node {
					onNode = append(onNode, f)
				}
			}
			if len(onNode) == 0 {
				continue
			}
			score := uint64(len(onNode)) * uint64(kn.Age+1)
			if score > best {
				best, bestFrames = score, onNode
			}
		}
		return bestFrames
	}
	if frames := pick(false); len(frames) > 0 {
		return frames
	}
	return pick(true)
}

var _ kernel.OOMVictimChooser = (*KLOCs)(nil)

func (p *KLOCs) includes(t kobj.Type) bool {
	if p.included == nil {
		return true
	}
	return p.included[kobj.GroupOf(t)]
}

// --- placement ---

// PlaceApp: fast first (KLOCs prioritize application pages, §4.2.2).
func (p *KLOCs) PlaceApp(*kstate.Ctx) []memsim.NodeID { return fastFirst() }

// PlaceKernel: objects of active knodes allocate directly to fast
// memory; objects of inactive knodes go to slow; untracked types go
// fast (Fig 5c methodology). A configured sys_kloc_memsize limit caps
// how much fast memory KLOC-managed objects may take.
func (p *KLOCs) PlaceKernel(ctx *kstate.Ctx, t kobj.Type, ino uint64) []memsim.NodeID {
	if !p.includes(t) || ino == 0 {
		return fastFirst()
	}
	ctx.Charge(50) // inode flag check (§5: "a fast operation")
	if p.cfg.FastMemLimitPages > 0 &&
		p.K.Mem.KernelUsed(memsim.FastNode) >= p.cfg.FastMemLimitPages {
		return slowFirst()
	}
	if kn, ok := p.Reg.Get(ino); ok && !kn.Active {
		return slowFirst()
	}
	return fastFirst()
}

// SetFastMemLimit adjusts the sys_kloc_memsize cap at runtime (Table 2:
// an administrator operation).
func (p *KLOCs) SetFastMemLimit(pages int) { p.cfg.FastMemLimitPages = pages }

// UseKlocAllocator: tracked slab objects come from the relocatable
// interface.
func (p *KLOCs) UseKlocAllocator(t kobj.Type) bool {
	return p.cfg.RelocatableSlabs && p.includes(t)
}

// DriverSockExtract per config.
func (p *KLOCs) DriverSockExtract() bool { return p.cfg.DriverExtract }

// --- lifecycle hooks ---

// InodeCreated maps a knode (knodes always allocate to fast memory,
// §4.2.2).
func (p *KLOCs) InodeCreated(ctx *kstate.Ctx, ino uint64, _ bool) {
	_, cost, err := p.Reg.MapKnode(ino, fastFirst(), ctx.Now)
	ctx.Charge(cost)
	_ = err // allocation failure degrades to untracked inode
}

// InodeOpened reactivates the knode and queues promotion of any of its
// objects that were demoted.
func (p *KLOCs) InodeOpened(ctx *kstate.Ctx, ino uint64) {
	kn, ok := p.Reg.Activate(ctx.CPU, ino, ctx.Now)
	if !ok || !p.cfg.Migration {
		return
	}
	for _, f := range kn.MovableFrames() {
		if f.Node == memsim.SlowNode {
			p.enqueue(&p.promoteQueue, kn)
			break
		}
	}
}

// InodeClosed deactivates the knode; its objects are immediately
// queued for demotion — the short-circuit that scan-based policies
// lack.
func (p *KLOCs) InodeClosed(ctx *kstate.Ctx, ino uint64) {
	kn, ok := p.Reg.Deactivate(ino, ctx.Now)
	if !ok || !p.cfg.Migration {
		return
	}
	p.enqueue(&p.demoteQueue, kn)
}

// InodeDeleted drops the knode (objects are deallocated by their
// subsystems; §3.2 rule two — no migration of dying objects).
func (p *KLOCs) InodeDeleted(ctx *kstate.Ctx, ino uint64) {
	ctx.Charge(p.Reg.Delete(ino))
}

// ObjectCreated indexes the object under its knode.
func (p *KLOCs) ObjectCreated(ctx *kstate.Ctx, ino uint64, o *kobj.Object) {
	if ino == 0 || !p.includes(o.Type) {
		return
	}
	ctx.Charge(p.Reg.AddObject(ctx.CPU, ino, o, ctx.Now))
	if o.Frame != nil && o.Knode != 0 {
		o.Frame.Knode = o.Knode
	}
}

// ObjectAssociated handles late demux association.
func (p *KLOCs) ObjectAssociated(ctx *kstate.Ctx, ino uint64, o *kobj.Object) {
	p.ObjectCreated(ctx, ino, o)
}

// ObjectFreed unindexes the object.
func (p *KLOCs) ObjectFreed(ctx *kstate.Ctx, o *kobj.Object) {
	ctx.Charge(p.Reg.RemoveObject(o))
}

// --- page hooks (app-page machinery + knode recency) ---

// PageAllocated tracks app frames.
func (p *KLOCs) PageAllocated(ctx *kstate.Ctx, f *memsim.Frame) { p.engine.onAlloc(ctx, f) }

// PageAccessed refreshes app LRU state and knode recency.
func (p *KLOCs) PageAccessed(ctx *kstate.Ctx, f *memsim.Frame) {
	p.engine.onAccess(ctx, f)
	if f.Knode != 0 {
		p.Reg.TouchID(kloc.KnodeID(f.Knode), ctx.CPU, ctx.Now)
	}
}

// PageFreed forgets the frame.
func (p *KLOCs) PageFreed(ctx *kstate.Ctx, f *memsim.Frame) { p.engine.onFree(ctx, f) }

// --- daemon ---

func (p *KLOCs) enqueue(q *[]*kloc.Knode, kn *kloc.Knode) {
	if p.queued[kn.ID] {
		return
	}
	p.queued[kn.ID] = true
	*q = append(*q, kn)
}

// Tick processes the demotion/promotion queues every period and runs
// aging plus the app-page scan at the slower cadence.
func (p *KLOCs) Tick(now sim.Time) sim.Duration {
	var cost sim.Duration
	p.ticks++
	if p.cfg.Migration {
		cost += p.processDemotions(now)
		cost += p.processPromotions(now)
	}
	if p.ticks%klocAgeEvery == 0 {
		cost += p.Reg.AgeScan()
		if p.cfg.Migration {
			for _, kn := range p.Reg.ColdKnodes(klocAgeThreshold) {
				p.enqueue(&p.demoteQueue, kn)
			}
			// Opportunistic reverse migration: recently-touched active
			// KLOCs with objects stranded in slow memory promote (§4.4:
			// 4-12% of migrations are slow-to-fast, mainly cache pages).
			for _, kn := range p.Reg.ActiveKnodes() {
				if kn.Age > 1 {
					continue
				}
				for _, f := range kn.MovableFrames() {
					if (f.Class == memsim.ClassCache || f.Class == memsim.ClassKloc) &&
						f.Node == memsim.SlowNode {
						p.enqueue(&p.promoteQueue, kn)
						break
					}
				}
			}
		}
		cost += p.engine.tick(now)
		p.Reg.SetMigrationListLen(len(p.demoteQueue) + len(p.promoteQueue))
	}
	return cost
}

func (p *KLOCs) processDemotions(now sim.Time) sim.Duration {
	fast := p.K.Mem.Node(memsim.FastNode)
	var cost sim.Duration
	n := len(p.demoteQueue)
	if n > klocKnodesPerTick {
		n = klocKnodesPerTick
	}
	batch := p.demoteQueue[:n]
	p.demoteQueue = p.demoteQueue[n:]
	for _, kn := range batch {
		delete(p.queued, kn.ID)
		// A knode reactivated while queued is skipped.
		if kn.Active && kn.Age < klocAgeThreshold {
			continue
		}
		// Demotion only relieves real pressure.
		if float64(fast.Free()) > klocDemoteFreeFrac*float64(fast.Capacity) {
			continue
		}
		// Page-cache frames are per-file; slab-class objects live in
		// per-KLOC arena frames (ClassKloc) — both migrate with the
		// knode. Shared (pinned) slab frames never move.
		var victims []*memsim.Frame
		cutoff := now.Add(-sim.Duration(klocAgeEvery) * klocTickPeriod)
		for _, f := range kn.MovableFrames() {
			if (f.Class != memsim.ClassCache && f.Class != memsim.ClassKloc) ||
				f.Node != memsim.FastNode || f.Migrations >= pingPongLimit {
				continue
			}
			if p.cfg.FineGrained && f.LastAccess >= cutoff {
				// Fine-grained mode spares individually-hot objects of a
				// cold knode; the default migrates the KLOC as a unit.
				continue
			}
			victims = append(victims, f)
		}
		if len(victims) == 0 {
			continue
		}
		moved, faulted, c := p.mig.Migrate(victims, memsim.SlowNode, now)
		cost += c
		if moved > 0 {
			p.KnodeDemotions++
		}
		if faulted > 0 {
			// EBUSY pages stayed on the fast node: requeue the knode so
			// the next tick retries them.
			p.MigrationRetries++
			p.enqueue(&p.demoteQueue, kn)
		}
	}
	return cost
}

func (p *KLOCs) processPromotions(now sim.Time) sim.Duration {
	fast := p.K.Mem.Node(memsim.FastNode)
	var cost sim.Duration
	n := len(p.promoteQueue)
	if n > klocKnodesPerTick {
		n = klocKnodesPerTick
	}
	batch := p.promoteQueue[:n]
	p.promoteQueue = p.promoteQueue[n:]
	for _, kn := range batch {
		delete(p.queued, kn.ID)
		if !kn.Active {
			continue
		}
		if float64(fast.Free()) < highWaterFrac*float64(fast.Capacity) {
			continue
		}
		var movers []*memsim.Frame
		for _, f := range kn.MovableFrames() {
			if (f.Class == memsim.ClassCache || f.Class == memsim.ClassKloc) &&
				f.Node == memsim.SlowNode {
				movers = append(movers, f)
			}
		}
		if len(movers) == 0 {
			continue
		}
		moved, faulted, c := p.mig.Migrate(movers, memsim.FastNode, now)
		cost += c
		if moved > 0 {
			p.KnodePromotions++
		}
		if faulted > 0 {
			p.MigrationRetries++
			p.enqueue(&p.promoteQueue, kn)
		}
	}
	return cost
}

// MetadataBytes reports Table 6's KLOC memory overhead.
func (p *KLOCs) MetadataBytes() int { return p.Reg.MetadataBytes() }

var _ kernel.Policy = (*KLOCs)(nil)
