package policy

import (
	"kloc/internal/kernel"
	"kloc/internal/kloc"
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// NUMA policy tuning.
const (
	// autoNUMAScanPeriod: AutoNUMA's address-space sampling cadence.
	autoNUMAScanPeriod = 50 * sim.Millisecond
	// nimbleNUMAScanPeriod: Nimble's faster machinery.
	nimbleNUMAScanPeriod = 10 * sim.Millisecond
	// numaBatch pages migrated per pass.
	numaBatch = 512
)

// localNode returns the memory node of the task's current socket
// (node IDs equal socket IDs on the Optane platform).
func localNode(k *kernel.Kernel) memsim.NodeID { return memsim.NodeID(k.TaskSocket()) }

func otherNode(k *kernel.Kernel) memsim.NodeID { return memsim.NodeID(1 - k.TaskSocket()) }

// AllRemote is Fig 5a's worst-case normalization baseline: every page
// is pinned to the task's ORIGINAL socket and nothing ever migrates, so
// once interference pushes the task to the other socket every access
// pays the interconnect.
type AllRemote struct{ Base }

// NewAllRemote returns the worst-case bound.
func NewAllRemote() *AllRemote { return &AllRemote{Base{name: "all-remote"}} }

// PlaceApp pins data to socket 0, where the task starts.
func (p *AllRemote) PlaceApp(*kstate.Ctx) []memsim.NodeID {
	return []memsim.NodeID{memsim.Socket0Node, memsim.Socket1Node}
}

// PlaceKernel pins data to socket 0.
func (p *AllRemote) PlaceKernel(*kstate.Ctx, kobj.Type, uint64) []memsim.NodeID {
	return []memsim.NodeID{memsim.Socket0Node, memsim.Socket1Node}
}

// AllLocal is the ideal: pages allocate locally and follow the task
// instantly and freely when it moves — Fig 5a's "all accesses local"
// bound.
type AllLocal struct{ Base }

// NewAllLocal returns the ideal bound.
func NewAllLocal() *AllLocal {
	return &AllLocal{Base{name: "all-local", period: 1 * sim.Millisecond}}
}

// DriverSockExtract: the ideal bound gets the best-case kernel.
func (p *AllLocal) DriverSockExtract() bool { return true }

// PlaceApp places locally.
func (p *AllLocal) PlaceApp(*kstate.Ctx) []memsim.NodeID {
	return []memsim.NodeID{localNode(p.K), otherNode(p.K)}
}

// PlaceKernel places locally.
func (p *AllLocal) PlaceKernel(*kstate.Ctx, kobj.Type, uint64) []memsim.NodeID {
	return []memsim.NodeID{localNode(p.K), otherNode(p.K)}
}

// Tick teleports every remote frame to the local node at zero cost —
// an oracle, not a mechanism.
func (p *AllLocal) Tick(now sim.Time) sim.Duration {
	local := localNode(p.K)
	remote := p.K.Mem.Node(otherNode(p.K))
	if remote.Used() == 0 {
		return 0
	}
	// Teleport by direct frame moves without cost or busy marking. A
	// move that fails (destination filled mid-scan) is simply skipped;
	// the oracle retries on its next tick.
	for _, f := range framesOn(p.K.Mem, otherNode(p.K)) {
		if p.K.Mem.CanMigrate(f, local) {
			//klocs:ignore-errno best-effort teleport; a failed move is retried on the next tick
			_, _ = p.K.Mem.MoveFrame(f, local, 0)
		}
	}
	return 0
}

// framesOn snapshots the frames on a node. The memory system does not
// index frames by node, so policies that need it (the oracle and the
// NUMA scanners) track allocations via hooks; the oracle instead scans
// the tracked sets of the kernel, which is acceptable for a bound.
func framesOn(m *memsim.Memory, node memsim.NodeID) []*memsim.Frame {
	return m.FramesOn(node)
}

// AutoNUMA approximates Linux's NUMA balancing: it periodically samples
// the task's application pages, fault-marks them, and migrates pages
// that fault remotely to the task's socket. Kernel pages are never
// migrated — the gap KLOCs fill (§4.5).
type AutoNUMA struct {
	Base
	// tracked app frames, insertion-ordered for deterministic scans.
	frames []*memsim.Frame
	member map[memsim.FrameID]int
	mig    *memsim.Migrator
	// moveKernel extends migration to kernel objects via the KLOC
	// registry (the AutoNUMA+KLOCs configuration).
	moveKernel bool
	Reg        *kloc.Registry

	MigratedApp, MigratedKernel uint64
}

// NewAutoNUMA returns vanilla AutoNUMA.
func NewAutoNUMA() *AutoNUMA {
	return &AutoNUMA{
		Base:   Base{name: "autonuma", period: autoNUMAScanPeriod},
		member: make(map[memsim.FrameID]int),
	}
}

// NewNimbleNUMA returns Nimble on the Optane platform: the same
// app-page-only migration with a faster cadence and parallel copies.
func NewNimbleNUMA() *AutoNUMA {
	p := NewAutoNUMA()
	p.name = "nimble"
	p.period = nimbleNUMAScanPeriod
	return p
}

// NewAutoNUMAKlocs returns AutoNUMA enhanced with KLOCs: active knodes'
// kernel objects are checked for remote placement and migrated with the
// task (§4.5).
func NewAutoNUMAKlocs() *AutoNUMA {
	p := NewAutoNUMA()
	p.name = "autonuma+klocs"
	p.moveKernel = true
	return p
}

// Attach sets up the migrator (and registry for the KLOC variant).
func (p *AutoNUMA) Attach(k *kernel.Kernel) {
	p.Base.Attach(k)
	parallel := 1
	if p.name != "autonuma" {
		parallel = 4 // Nimble's parallel copies
	}
	p.mig = &memsim.Migrator{Mem: k.Mem, FixedPerPage: migFixedPerPage, Parallelism: parallel}
	if p.moveKernel {
		p.Reg = kloc.NewRegistry(k.Mem, k.Mem.NumCPUs())
	}
}

// PlaceApp allocates on the local socket.
func (p *AutoNUMA) PlaceApp(*kstate.Ctx) []memsim.NodeID {
	return []memsim.NodeID{localNode(p.K), otherNode(p.K)}
}

// PlaceKernel allocates on the socket of the allocating CPU (what
// modern OSes do, §3.3).
func (p *AutoNUMA) PlaceKernel(ctx *kstate.Ctx, _ kobj.Type, _ uint64) []memsim.NodeID {
	sock := memsim.NodeID(p.K.Mem.SocketOf(ctx.CPU))
	return []memsim.NodeID{sock, 1 - sock}
}

// UseKlocAllocator: the KLOC variant needs relocatable kernel objects.
func (p *AutoNUMA) UseKlocAllocator(kobj.Type) bool { return p.moveKernel }

// DriverSockExtract mirrors the KLOC design when kernel objects move.
func (p *AutoNUMA) DriverSockExtract() bool { return p.moveKernel }

// PageAllocated tracks app pages for the sampler.
func (p *AutoNUMA) PageAllocated(_ *kstate.Ctx, f *memsim.Frame) {
	if f.Class != memsim.ClassApp {
		return
	}
	p.member[f.ID] = len(p.frames)
	p.frames = append(p.frames, f)
}

// PageFreed forgets the frame.
func (p *AutoNUMA) PageFreed(_ *kstate.Ctx, f *memsim.Frame) {
	i, ok := p.member[f.ID]
	if !ok {
		return
	}
	last := len(p.frames) - 1
	p.frames[i] = p.frames[last]
	p.member[p.frames[i].ID] = i
	p.frames = p.frames[:last]
	delete(p.member, f.ID)
}

// KLOC bookkeeping hooks (only live in the +KLOCs variant).

// InodeCreated maps a knode.
func (p *AutoNUMA) InodeCreated(ctx *kstate.Ctx, ino uint64, _ bool) {
	if p.Reg == nil {
		return
	}
	//klocs:ignore-errno lifecycle hooks have no error path; a mapping fault only leaves the knode unmapped
	_, cost, _ := p.Reg.MapKnode(ino, p.PlaceKernel(ctx, kobj.Inode, ino), ctx.Now)
	ctx.Charge(cost)
}

// InodeOpened reactivates.
func (p *AutoNUMA) InodeOpened(ctx *kstate.Ctx, ino uint64) {
	if p.Reg != nil {
		p.Reg.Activate(ctx.CPU, ino, ctx.Now)
	}
}

// InodeClosed deactivates.
func (p *AutoNUMA) InodeClosed(ctx *kstate.Ctx, ino uint64) {
	if p.Reg != nil {
		p.Reg.Deactivate(ino, ctx.Now)
	}
}

// InodeDeleted unmaps.
func (p *AutoNUMA) InodeDeleted(ctx *kstate.Ctx, ino uint64) {
	if p.Reg != nil {
		ctx.Charge(p.Reg.Delete(ino))
	}
}

// ObjectCreated indexes under the knode.
func (p *AutoNUMA) ObjectCreated(ctx *kstate.Ctx, ino uint64, o *kobj.Object) {
	if p.Reg == nil || ino == 0 {
		return
	}
	ctx.Charge(p.Reg.AddObject(ctx.CPU, ino, o, ctx.Now))
}

// ObjectAssociated indexes late.
func (p *AutoNUMA) ObjectAssociated(ctx *kstate.Ctx, ino uint64, o *kobj.Object) {
	p.ObjectCreated(ctx, ino, o)
}

// ObjectFreed unindexes.
func (p *AutoNUMA) ObjectFreed(ctx *kstate.Ctx, o *kobj.Object) {
	if p.Reg != nil {
		ctx.Charge(p.Reg.RemoveObject(o))
	}
}

// Tick samples app pages (and active knodes in the KLOC variant) and
// migrates remote ones to the task's socket.
func (p *AutoNUMA) Tick(now sim.Time) sim.Duration {
	local := localNode(p.K)
	var cost sim.Duration

	// App pages: sample up to numaBatch recently used remote frames.
	var victims []*memsim.Frame
	for _, f := range p.frames {
		if len(victims) >= numaBatch {
			break
		}
		cost += 2 * sim.Microsecond / 10 // fault sampling tax per page
		if f.Node != local && now.Sub(f.LastAccess) < sim.Duration(2*p.period) {
			victims = append(victims, f)
		}
	}
	moved, _, c := p.mig.Migrate(victims, local, now)
	p.MigratedApp += uint64(moved)
	cost += c

	// Kernel objects via KLOCs (the §4.5 enhancement). Short-lived
	// frames (younger than a scan period) are skipped: transient packet
	// buffers die before a cross-socket copy pays off (§4.4's "direct
	// allocation ... reduces the cost of moving kernel objects").
	if p.Reg != nil {
		young := now.Add(-p.period)
		for _, kn := range p.Reg.ActiveKnodes() {
			var remote []*memsim.Frame
			for _, f := range kn.MovableFrames() {
				if f.Node != local && f.Allocated < young {
					remote = append(remote, f)
				}
			}
			if len(remote) == 0 {
				continue
			}
			moved, _, c := p.mig.Migrate(remote, local, now)
			p.MigratedKernel += uint64(moved)
			cost += c
		}
	}
	return cost
}

var (
	_ kernel.Policy = (*AllRemote)(nil)
	_ kernel.Policy = (*AllLocal)(nil)
	_ kernel.Policy = (*AutoNUMA)(nil)
)
