// Package policy implements Table 5's memory-management strategies:
//
// Two-tier platform:
//   - AllSlow / AllFast — the pessimistic and ideal bounds;
//   - Naive — greedy first-come-first-served fast-memory allocation,
//     no migration;
//   - Nimble — OS-controlled application-page tiering with parallel
//     page migration (Yan et al., ASPLOS'19); kernel objects live
//     entirely in slow memory, as prior two-tier work does (§3.2);
//   - Nimble++ — Nimble extended to migrate kernel pages through the
//     same scan-based machinery, without the KLOC abstraction;
//   - KLOCs / KLOCs-nomigration — the paper's contribution.
//
// Optane Memory-Mode platform:
//   - AllRemote / AllLocal — bounds;
//   - AutoNUMA — sampled cross-socket migration of application pages;
//   - NimbleNUMA — faster app-page migration, kernel pages ignored;
//   - AutoNUMA+KLOCs — kernel objects follow the task across sockets.
package policy

import (
	"kloc/internal/kernel"
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// Base supplies the boilerplate shared by all policies.
type Base struct {
	kstate.NopHooks
	K      *kernel.Kernel
	name   string
	period sim.Duration
}

// Name returns the strategy name.
func (b *Base) Name() string { return b.name }

// Attach wires the policy to its kernel.
func (b *Base) Attach(k *kernel.Kernel) { b.K = k }

// Tick does nothing by default.
func (b *Base) Tick(sim.Time) sim.Duration { return 0 }

// TickPeriod returns the daemon cadence (0 = no daemon).
func (b *Base) TickPeriod() sim.Duration { return b.period }

// Static is a placement-only policy: fixed fallback orders, no daemon.
// AllFast, AllSlow, and Naive are Static instances.
type Static struct {
	Base
	appOrder, kernOrder []memsim.NodeID
	// driverExtract marks ideal-bound configurations that get the
	// best-case kernel (driver-level socket demux) so they upper-bound
	// every real policy, including the KLOC ones.
	driverExtract bool
}

// DriverSockExtract reports whether this static bound models the
// best-case kernel.
func (s *Static) DriverSockExtract() bool { return s.driverExtract }

// NewStatic builds a placement-only policy.
func NewStatic(name string, appOrder, kernOrder []memsim.NodeID) *Static {
	return &Static{
		Base:      Base{name: name},
		appOrder:  appOrder,
		kernOrder: kernOrder,
	}
}

// PlaceApp returns the fixed application-page order.
func (s *Static) PlaceApp(*kstate.Ctx) []memsim.NodeID { return s.appOrder }

// PlaceKernel returns the fixed kernel-object order.
func (s *Static) PlaceKernel(*kstate.Ctx, kobj.Type, uint64) []memsim.NodeID {
	return s.kernOrder
}

// Two-tier convenience constructors (Table 5).

// AllFast places everything fast-first. Run it on a platform whose fast
// tier holds the whole footprint to get the paper's ideal bound.
func AllFast() *Static {
	p := NewStatic("all-fast", fastFirst(), fastFirst())
	p.driverExtract = true
	return p
}

// AllSlow places everything in slow memory.
func AllSlow() *Static {
	return NewStatic("all-slow", slowOnly(), slowOnly())
}

// Naive greedily fills fast memory first and never migrates.
func Naive() *Static {
	return NewStatic("naive", fastFirst(), fastFirst())
}

func fastFirst() []memsim.NodeID { return []memsim.NodeID{memsim.FastNode, memsim.SlowNode} }
func slowOnly() []memsim.NodeID  { return []memsim.NodeID{memsim.SlowNode} }
func slowFirst() []memsim.NodeID { return []memsim.NodeID{memsim.SlowNode, memsim.FastNode} }

var _ kernel.Policy = (*Static)(nil)
