package policy

import (
	"kloc/internal/kstate"
	"kloc/internal/lru"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// Tiering knobs shared by the scan-based two-tier policies.
const (
	// lowWaterFrac: demote when fast free space falls below this.
	lowWaterFrac = 0.08
	// highWaterFrac: promote only while fast free space stays above this.
	highWaterFrac = 0.15
	// scanBatch pages inspected per daemon pass.
	scanBatch = 512
	// migrateBatch pages moved per daemon pass.
	migrateBatch = 256
	// migFixedPerPage covers page-table rewrite + TLB shootdown.
	migFixedPerPage sim.Duration = 3 * sim.Microsecond
	// pingPongLimit: frames migrated this many times are retained in
	// fast memory (the paper's 8-bit anti-thrash counters, §4.5).
	pingPongLimit = 8
)

// tierEngine is the app/kernel page LRU + migration machinery shared by
// Nimble, Nimble++, and the app-page half of the KLOC policies. It
// tracks frames of the configured classes in per-node LRU lists and
// rebalances between the fast and slow nodes on each tick.
type tierEngine struct {
	mem     *memsim.Memory
	mig     *memsim.Migrator
	classes map[memsim.Class]bool
	lists   map[memsim.NodeID]*lru.Lists

	// promoteWindow: pages accessed within this window of a tick are
	// promotion candidates.
	promoteWindow sim.Duration

	// Scanned/Migrated for introspection.
	DemotedPages, PromotedPages uint64
}

func newTierEngine(mem *memsim.Memory, parallelism int, classes ...memsim.Class) *tierEngine {
	e := &tierEngine{
		mem: mem,
		mig: &memsim.Migrator{
			Mem:          mem,
			FixedPerPage: migFixedPerPage,
			Parallelism:  parallelism,
		},
		classes:       make(map[memsim.Class]bool),
		lists:         make(map[memsim.NodeID]*lru.Lists),
		promoteWindow: 20 * sim.Millisecond,
	}
	for _, c := range classes {
		e.classes[c] = true
	}
	for _, n := range mem.Nodes {
		e.lists[n.ID] = lru.New()
	}
	return e
}

func (e *tierEngine) tracks(f *memsim.Frame) bool { return e.classes[f.Class] }

// onAlloc / onAccess / onFree are the hook bodies.
func (e *tierEngine) onAlloc(ctx *kstate.Ctx, f *memsim.Frame) {
	if e.tracks(f) {
		e.lists[f.Node].Add(f, ctx.Now)
	}
}

func (e *tierEngine) onAccess(ctx *kstate.Ctx, f *memsim.Frame) {
	if e.tracks(f) {
		e.lists[f.Node].MarkAccessed(f, ctx.Now)
	}
}

func (e *tierEngine) onFree(ctx *kstate.Ctx, f *memsim.Frame) {
	if l, ok := e.lists[f.Node]; ok {
		l.Remove(f)
	}
}

// moveTracked migrates a batch and keeps list membership coherent.
func (e *tierEngine) moveTracked(frames []*memsim.Frame, dst memsim.NodeID, now sim.Time) (int, sim.Duration) {
	src := make(map[memsim.FrameID]memsim.NodeID, len(frames))
	for _, f := range frames {
		src[f.ID] = f.Node
	}
	// Frames whose move faulted (EBUSY) stay in their source LRU list,
	// so the next tick's scan naturally retries them.
	moved, _, cost := e.mig.Migrate(frames, dst, now)
	for _, f := range frames {
		if f.Node == dst && src[f.ID] != dst {
			if l, ok := e.lists[src[f.ID]]; ok {
				l.Remove(f)
			}
			if e.tracks(f) {
				e.lists[dst].Add(f, now)
			}
		}
	}
	return moved, cost
}

// tick runs one pass of balance + demotion + promotion between the
// two-tier nodes, returning the virtual cost.
func (e *tierEngine) tick(now sim.Time) sim.Duration {
	fast := e.mem.Node(memsim.FastNode)
	var cost sim.Duration
	fastList := e.lists[memsim.FastNode]
	slowList := e.lists[memsim.SlowNode]

	cost += fastList.Balance(2, now)
	cost += slowList.Balance(2, now)

	// Demote cold fast pages when fast memory is tight.
	if float64(fast.Free()) < lowWaterFrac*float64(fast.Capacity) {
		cold, scanCost := fastList.ScanInactive(scanBatch, now)
		cost += scanCost
		victims := cold
		if len(victims) > migrateBatch {
			victims = victims[:migrateBatch]
		}
		// Retain ping-ponging pages in fast memory.
		kept := victims[:0]
		for _, f := range victims {
			if f.Migrations < pingPongLimit {
				kept = append(kept, f)
			}
		}
		moved, migCost := e.moveTracked(kept, memsim.SlowNode, now)
		e.DemotedPages += uint64(moved)
		cost += migCost
	}

	// Promote recently hot slow pages while fast has headroom.
	if float64(fast.Free()) > highWaterFrac*float64(fast.Capacity) {
		cutoff := now.Add(-e.promoteWindow)
		if cutoff < 0 {
			cutoff = 0
		}
		hot, scanCost := slowList.HottestActive(migrateBatch, cutoff)
		cost += scanCost
		// No ping-pong filter on promotion: the paper's 8-bit counters
		// retain pages in FAST memory; they never strand them in slow.
		moved, migCost := e.moveTracked(hot, memsim.FastNode, now)
		e.PromotedPages += uint64(moved)
		cost += migCost
	}
	return cost
}
