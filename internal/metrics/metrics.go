// Package metrics collects the counters and distributions the paper's
// evaluation reports: allocation counts by object type (Fig 2a/2b),
// memory-reference splits (Fig 2c), object lifetimes (Fig 2d),
// slow-memory allocation and migration counts (Fig 5b), and KLOC
// metadata overhead (Table 6).
//
// All statistics are keyed by small enums or strings and accumulate in
// plain integers — the simulator is single-goroutine, so no locking is
// needed, and snapshots are cheap value copies.
//
// The package also defines Mode, the module-wide accounting-path
// selector: subsystems with hot-path counters (memsim, trace, kernel,
// kloc) consult a Mode to choose between the legacy per-event stores
// and the batched/pooled/indexed fast paths that PERFORMANCE.md
// benchmarks. The contract every implementation must keep: accounting
// is invisible to the simulation (it charges no virtual cost and
// influences no control flow), and any value a reader can observe is
// exact at the moment of reading — batched stores flush before a read
// (memsim.SyncStats, trace.Tracer.Stats), so no caller ever sees a
// counter mid-batch.
package metrics

import (
	"fmt"
	"sort"

	"kloc/internal/sim"
)

// Counter is a monotonically increasing count. Each counter belongs
// to the kernel instance (and so the lane) that meters through it.
//
//klocs:owner=lane
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Distribution accumulates scalar samples and reports summary
// statistics. It keeps all samples when small and switches to a
// log-scale histogram beyond a threshold so lifetime tracking of
// millions of kernel objects stays O(1) per sample.
// Observe mutates every field from the metering lane, so the whole
// struct is lane-confined.
type Distribution struct {
	//klocs:owner=lane
	count uint64
	//klocs:owner=lane
	sum float64
	//klocs:owner=lane
	min float64
	//klocs:owner=lane
	max float64
	//klocs:owner=lane
	samples []float64 // exact, until histogram mode
	//klocs:owner=lane
	buckets []uint64 // log2 buckets once exact storage is abandoned
}

const exactLimit = 1 << 14

// Observe records a sample.
func (d *Distribution) Observe(v float64) {
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if d.count == 0 || v > d.max {
		d.max = v
	}
	d.count++
	d.sum += v
	if d.buckets == nil && len(d.samples) < exactLimit {
		d.samples = append(d.samples, v)
		return
	}
	if d.buckets == nil {
		// Convert to histogram mode.
		d.buckets = make([]uint64, 64)
		for _, s := range d.samples {
			d.buckets[bucketOf(s)]++
		}
		d.samples = nil
	}
	d.buckets[bucketOf(v)]++
}

func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	b := 0
	for v >= 2 && b < 63 {
		v /= 2
		b++
	}
	return b
}

// Count returns the number of samples.
func (d *Distribution) Count() uint64 { return d.count }

// Mean returns the arithmetic mean (0 with no samples).
func (d *Distribution) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Min returns the smallest sample.
func (d *Distribution) Min() float64 { return d.min }

// Max returns the largest sample.
func (d *Distribution) Max() float64 { return d.max }

// Quantile returns the q-quantile (0 <= q <= 1). In histogram mode the
// value is the lower bound of the containing log2 bucket, which is
// sufficient for the paper's order-of-magnitude lifetime plot.
func (d *Distribution) Quantile(q float64) float64 {
	if d.count == 0 {
		return 0
	}
	if d.buckets == nil {
		s := append([]float64(nil), d.samples...)
		sort.Float64s(s)
		idx := int(q * float64(len(s)-1))
		return s[idx]
	}
	target := uint64(q * float64(d.count-1))
	var cum uint64
	for b, n := range d.buckets {
		cum += n
		if cum > target {
			if b == 0 {
				return 0
			}
			return float64(uint64(1) << uint(b))
		}
	}
	return d.max
}

// LifetimeTracker measures object lifetimes per class: Fig 2d plots the
// mean lifetime of application pages vs slab objects vs page cache
// pages on a log axis.
type LifetimeTracker struct {
	//klocs:owner=lane
	born map[uint64]sim.Time
	//klocs:owner=lane
	dist map[string]*Distribution
}

// NewLifetimeTracker returns an empty tracker.
func NewLifetimeTracker() *LifetimeTracker {
	return &LifetimeTracker{
		born: make(map[uint64]sim.Time),
		dist: make(map[string]*Distribution),
	}
}

// Born records that object id came to life at t.
func (lt *LifetimeTracker) Born(id uint64, t sim.Time) { lt.born[id] = t }

// Died records death of object id at t, attributing the lifetime to
// class. Unknown ids are ignored (objects born before tracking began).
func (lt *LifetimeTracker) Died(id uint64, class string, t sim.Time) {
	b, ok := lt.born[id]
	if !ok {
		return
	}
	delete(lt.born, id)
	d := lt.dist[class]
	if d == nil {
		d = &Distribution{}
		lt.dist[class] = d
	}
	d.Observe(float64(t.Sub(b)))
}

// Live reports how many tracked objects are currently alive.
func (lt *LifetimeTracker) Live() int { return len(lt.born) }

// Class returns the lifetime distribution for a class (nil if the class
// never recorded a death).
func (lt *LifetimeTracker) Class(class string) *Distribution { return lt.dist[class] }

// Classes returns class names in sorted order.
func (lt *LifetimeTracker) Classes() []string {
	out := make([]string, 0, len(lt.dist))
	for k := range lt.dist {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MeanLifetime returns the mean lifetime for class as a sim.Duration.
func (lt *LifetimeTracker) MeanLifetime(class string) sim.Duration {
	d := lt.dist[class]
	if d == nil {
		return 0
	}
	return sim.Duration(d.Mean())
}

// Set is a bag of named counters used for ad-hoc accounting (syscall
// counts, rbtree accesses, prefetch hits...).
type Set struct {
	//klocs:owner=lane
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{counters: make(map[string]*Counter)} }

// Counter returns (creating if needed) the named counter.
func (s *Set) Counter(name string) *Counter {
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Value returns the named counter's value (0 if absent).
func (s *Set) Value(name string) uint64 {
	if c := s.counters[name]; c != nil {
		return c.Value()
	}
	return 0
}

// Names returns counter names in sorted order.
func (s *Set) Names() []string {
	out := make([]string, 0, len(s.counters))
	for k := range s.counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the set for debugging.
func (s *Set) String() string {
	out := ""
	for _, n := range s.Names() {
		out += fmt.Sprintf("%s=%d ", n, s.Value(n))
	}
	return out
}
