package metrics

import "strings"

// Mode selects the accounting implementation the hot paths use. It is
// a bitmask of independent optimizations so the perf harness
// (internal/perfbench, PERFORMANCE.md) can A/B each one against the
// legacy per-event path under the same workload:
//
//   - ModeBatched: per-CPU/net-delta batched counters (percpu.
//     Accumulator in memsim, run-length summary commits in trace)
//     instead of a shared-store write per event.
//   - ModePooled: freelist-recycled hot-path records (memsim frames,
//     kernel syscall contexts) instead of a heap allocation per op.
//   - ModeIndexed: dense slice indices (node-, class- and knode-ID-
//     indexed arrays) instead of a per-op map lookup.
//
// The zero Mode means "unset" and resolves to DefaultMode, so zero
// configs everywhere in the module get the fast path. The legacy
// per-event path is only reachable by asking for it explicitly via
// LegacyMode — it exists as the benchmark baseline, not as a
// supported configuration.
//
// Every mode produces byte-identical simulation results: the knobs
// change how accounting is stored between reads, never what a read
// observes (flush points are chosen so any reader sees exact values;
// see DESIGN.md §13 for the determinism argument).
type Mode uint8

// Mode bits. modeExplicit distinguishes LegacyMode (all optimizations
// off, explicitly) from the zero value (unset, resolves to default).
const (
	ModeBatched Mode = 1 << iota
	ModePooled
	ModeIndexed
	modeExplicit
)

// DefaultMode is the accounting path production runs use: batched,
// pooled, and indexed all on.
func DefaultMode() Mode { return modeExplicit | ModeBatched | ModePooled | ModeIndexed }

// LegacyMode is the pre-optimization per-event accounting path, kept
// reachable as the perf harness's baseline variant. Or bits onto it
// to enable single optimizations: LegacyMode()|ModeBatched is the
// "batched only" variant.
func LegacyMode() Mode { return modeExplicit }

// Resolve maps the unset zero value to DefaultMode and returns any
// explicit mode unchanged.
func (m Mode) Resolve() Mode {
	if m == 0 {
		return DefaultMode()
	}
	return m
}

// Batched reports whether batched accounting is on (after resolving).
func (m Mode) Batched() bool { return m.Resolve()&ModeBatched != 0 }

// Pooled reports whether record pooling is on (after resolving).
func (m Mode) Pooled() bool { return m.Resolve()&ModePooled != 0 }

// Indexed reports whether dense indexing is on (after resolving).
func (m Mode) Indexed() bool { return m.Resolve()&ModeIndexed != 0 }

// String renders the mode for reports: "baseline" for the legacy
// path, "default" for the full fast path, else the enabled bits
// joined by "+" ("batched+indexed").
func (m Mode) String() string {
	r := m.Resolve()
	if r == DefaultMode() {
		return "default"
	}
	var parts []string
	if r&ModeBatched != 0 {
		parts = append(parts, "batched")
	}
	if r&ModePooled != 0 {
		parts = append(parts, "pooled")
	}
	if r&ModeIndexed != 0 {
		parts = append(parts, "indexed")
	}
	if len(parts) == 0 {
		return "baseline"
	}
	return strings.Join(parts, "+")
}
