package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"kloc/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 6 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestDistributionExact(t *testing.T) {
	var d Distribution
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	if d.Count() != 100 {
		t.Fatalf("count = %d", d.Count())
	}
	if d.Min() != 1 || d.Max() != 100 {
		t.Fatalf("min/max = %v/%v", d.Min(), d.Max())
	}
	if m := d.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	if q := d.Quantile(0.5); q < 49 || q > 52 {
		t.Fatalf("median = %v", q)
	}
	if q := d.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := d.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.Quantile(0.5) != 0 || d.Count() != 0 {
		t.Fatal("empty distribution not zero")
	}
}

func TestDistributionHistogramMode(t *testing.T) {
	var d Distribution
	n := exactLimit * 2
	for i := 0; i < n; i++ {
		d.Observe(1000) // all samples identical
	}
	if d.Count() != uint64(n) {
		t.Fatalf("count = %d", d.Count())
	}
	if m := d.Mean(); m != 1000 {
		t.Fatalf("mean = %v", m)
	}
	// Histogram quantile is a power-of-two lower bound: 512 <= q <= 1024.
	q := d.Quantile(0.5)
	if q < 512 || q > 1024 {
		t.Fatalf("histogram median = %v", q)
	}
}

// TestDistributionSwitchover pins the behaviour at the exact-samples →
// log-histogram transition: the last exact observation reports true
// order statistics, the first observation past exactLimit converts to
// histogram mode, and afterwards quantiles degrade gracefully to the
// containing log2 bucket's lower bound — within (q/2, q] of the exact
// value — while min/max stay exact forever.
func TestDistributionSwitchover(t *testing.T) {
	var d Distribution
	for i := 1; i <= exactLimit; i++ {
		d.Observe(float64(i))
	}
	if d.buckets != nil {
		t.Fatal("converted to histogram mode at exactLimit, want at exactLimit+1")
	}
	// Exact mode: true order statistics of 1..exactLimit.
	exactQ := map[float64]float64{0: 1, 0.25: 4096, 0.5: 8192, 0.75: 12288, 1: 16384}
	for q, want := range exactQ {
		if got := d.Quantile(q); got != want {
			t.Fatalf("exact Quantile(%v) = %v, want %v", q, got, want)
		}
	}

	d.Observe(3) // crosses the threshold
	if d.buckets == nil || d.samples != nil {
		t.Fatal("did not convert to histogram mode past exactLimit")
	}
	if d.Count() != exactLimit+1 {
		t.Fatalf("count = %d across switchover", d.Count())
	}
	// Histogram mode: each quantile is the containing log2 bucket's
	// lower bound, i.e. within (exact/2, exact] of the true value.
	for q, want := range exactQ {
		got := d.Quantile(q)
		if q == 1 {
			// The top quantile saturates to the exact max.
			if got != d.Max() {
				t.Fatalf("histogram Quantile(1) = %v, want max %v", got, d.Max())
			}
			continue
		}
		// Bucket 0 spans [0, 2), so its lower bound is 0.
		if got > want || (got <= want/2 && got != 0) {
			t.Fatalf("histogram Quantile(%v) = %v, want in (%v, %v] or 0", q, got, want/2, want)
		}
	}
	// Min/max stay exact in histogram mode, including values far
	// outside the observed range and below bucket resolution.
	if d.Min() != 1 || d.Max() != 16384 {
		t.Fatalf("min/max = %v/%v across switchover", d.Min(), d.Max())
	}
	d.Observe(0.25)
	d.Observe(1e9)
	if d.Min() != 0.25 || d.Max() != 1e9 {
		t.Fatalf("min/max = %v/%v after histogram observations", d.Min(), d.Max())
	}
}

// TestDistributionQuantileAccuracyProperty compares histogram-mode
// quantiles against an exact reference over random sample sets that
// cross the switchover: the histogram answer must always be the log2
// lower bound of the exact one.
func TestDistributionQuantileAccuracyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		n := exactLimit + 1 + int(r.Uint64()%1000)
		var d Distribution
		ref := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := 1 + r.Float64()*1e6
			ref = append(ref, v)
			d.Observe(v)
		}
		var e Distribution // exact reference, never switched
		e.samples = ref
		e.count = uint64(len(ref))
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99} {
			exact := e.Quantile(q)
			got := d.Quantile(q)
			if got > exact || (got <= exact/2 && got != 0) {
				return false
			}
		}
		return d.Min() == e.minOf() && d.Max() == e.maxOf()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func (d *Distribution) minOf() float64 {
	m := d.samples[0]
	for _, v := range d.samples {
		if v < m {
			m = v
		}
	}
	return m
}

func (d *Distribution) maxOf() float64 {
	m := d.samples[0]
	for _, v := range d.samples {
		if v > m {
			m = v
		}
	}
	return m
}

func TestDistributionMeanProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		r := sim.NewRNG(seed)
		n := int(nRaw)%1000 + 1
		var d Distribution
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Float64() * 1e6
			sum += v
			d.Observe(v)
		}
		return math.Abs(d.Mean()-sum/float64(n)) < 1e-6*sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {0.5, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1024, 10}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLifetimeTracker(t *testing.T) {
	lt := NewLifetimeTracker()
	lt.Born(1, 100)
	lt.Born(2, 200)
	lt.Born(3, 300)
	lt.Died(1, "slab", 150)
	lt.Died(2, "cache", 1200)
	if lt.Live() != 1 {
		t.Fatalf("live = %d", lt.Live())
	}
	if m := lt.MeanLifetime("slab"); m != 50 {
		t.Fatalf("slab mean = %v", m)
	}
	if m := lt.MeanLifetime("cache"); m != 1000 {
		t.Fatalf("cache mean = %v", m)
	}
	if m := lt.MeanLifetime("missing"); m != 0 {
		t.Fatalf("missing class mean = %v", m)
	}
	// Death of unknown id is ignored.
	lt.Died(99, "slab", 500)
	if lt.Class("slab").Count() != 1 {
		t.Fatal("unknown id death was recorded")
	}
	classes := lt.Classes()
	if len(classes) != 2 || classes[0] != "cache" || classes[1] != "slab" {
		t.Fatalf("classes = %v", classes)
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("a").Inc()
	s.Counter("a").Inc()
	s.Counter("b").Add(10)
	if s.Value("a") != 2 || s.Value("b") != 10 || s.Value("zzz") != 0 {
		t.Fatalf("set values wrong: %s", s)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}
