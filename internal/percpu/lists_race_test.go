package percpu

import (
	"sync"
	"testing"
)

// TestListsConcurrentTouchCounters drives every CPU's list from its
// own goroutine. The list bodies are per-CPU (each goroutine touches
// only items private to its CPU, so the where-map keys never collide),
// while Hits/Misses aggregate cross-lane through sync/atomic — the
// satellite-1 conversion this test pins under -race, mirroring
// TestAccumulatorConcurrentLanes.
func TestListsConcurrentTouchCounters(t *testing.T) {
	const (
		cpus   = 8
		rounds = 5000
	)
	l := New[int](cpus, 4)
	// Pre-populate each CPU's private key range single-threaded so the
	// where map gains no new keys during the concurrent phase (map
	// writes are lane-unsafe by design; only the counters are shared).
	for cpu := 0; cpu < cpus; cpu++ {
		for k := 0; k < 4; k++ {
			l.Touch(cpu, cpu*1000+k)
		}
	}
	seeded := l.MissCount()
	var wg sync.WaitGroup
	for cpu := 0; cpu < cpus; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				l.Touch(cpu, cpu*1000+i%4)
			}
		}(cpu)
	}
	wg.Wait()

	if got, want := l.HitCount(), uint64(cpus*rounds); got != want {
		t.Errorf("hits = %d after concurrent touches, want %d", got, want)
	}
	if got := l.MissCount(); got != seeded {
		t.Errorf("misses = %d, want %d (no new misses in the hit phase)", got, seeded)
	}
	if r := l.HitRate(); r <= 0 || r >= 1 {
		t.Errorf("hit rate %v out of range", r)
	}
}
