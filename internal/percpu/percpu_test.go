package percpu

import (
	"testing"
	"testing/quick"

	"kloc/internal/sim"
)

func TestTouchHitMiss(t *testing.T) {
	l := New[int](2, 4)
	if l.Touch(0, 1) {
		t.Fatal("first touch reported hit")
	}
	if !l.Touch(0, 1) {
		t.Fatal("second touch reported miss")
	}
	if l.HitCount() != 1 || l.MissCount() != 1 {
		t.Fatalf("hits=%d misses=%d", l.HitCount(), l.MissCount())
	}
	if r := l.HitRate(); r != 0.5 {
		t.Fatalf("hit rate %v", r)
	}
}

func TestHitRateEmpty(t *testing.T) {
	l := New[int](1, 1)
	if l.HitRate() != 0 {
		t.Fatal("empty hit rate nonzero")
	}
}

func TestCapacityEviction(t *testing.T) {
	l := New[int](1, 3)
	for i := 1; i <= 4; i++ {
		l.Touch(0, i)
	}
	if l.Len(0) != 3 {
		t.Fatalf("len = %d", l.Len(0))
	}
	if l.Contains(0, 1) {
		t.Fatal("oldest entry not evicted")
	}
	for i := 2; i <= 4; i++ {
		if !l.Contains(0, i) {
			t.Fatalf("entry %d missing", i)
		}
	}
	if l.CachedAnywhere(1) {
		t.Fatal("evicted entry still tracked")
	}
}

func TestRecencyOrderAfterTouch(t *testing.T) {
	l := New[int](1, 3)
	l.Touch(0, 1)
	l.Touch(0, 2)
	l.Touch(0, 3)
	l.Touch(0, 1) // 1 back to front
	l.Touch(0, 4) // evicts 2 (now the tail)
	if l.Contains(0, 2) {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if !l.Contains(0, 1) || !l.Contains(0, 3) || !l.Contains(0, 4) {
		t.Fatal("wrong eviction victim")
	}
}

func TestMultiCPUCoherence(t *testing.T) {
	l := New[string](4, 8)
	l.Touch(0, "knode-a")
	l.Touch(2, "knode-a")
	l.Touch(3, "knode-b")
	if !l.CachedAnywhere("knode-a") {
		t.Fatal("knode-a lost")
	}
	if cpu := l.LastCPU("knode-a"); cpu != 2 {
		t.Fatalf("LastCPU = %d", cpu)
	}
	if cpu := l.LastCPU("missing"); cpu != -1 {
		t.Fatalf("LastCPU(missing) = %d", cpu)
	}
	l.Invalidate("knode-a")
	if l.CachedAnywhere("knode-a") || l.Contains(0, "knode-a") || l.Contains(2, "knode-a") {
		t.Fatal("invalidate left stale entries")
	}
	if !l.Contains(3, "knode-b") {
		t.Fatal("invalidate removed an unrelated entry")
	}
	l.Invalidate("missing") // no-op
}

func TestAgeScanAndColdest(t *testing.T) {
	l := New[int](1, 8)
	l.Touch(0, 1)
	l.Touch(0, 2)
	ages := map[int]int{}
	for i := 0; i < 3; i++ {
		l.AgeScan(0, func(item, age int) { ages[item] = age })
	}
	if ages[1] != 3 || ages[2] != 3 {
		t.Fatalf("ages = %v", ages)
	}
	// A touch resets the age.
	l.Touch(0, 1)
	l.AgeScan(0, func(item, age int) { ages[item] = age })
	if ages[1] != 1 || ages[2] != 4 {
		t.Fatalf("ages after touch = %v", ages)
	}
	cold := l.ColdestOn(0, 4)
	if len(cold) != 1 || cold[0] != 2 {
		t.Fatalf("coldest = %v", cold)
	}
	l.AgeScan(0, nil) // nil fn allowed
}

func TestClampedConstruction(t *testing.T) {
	l := New[int](0, 0)
	if l.CPUs() != 1 {
		t.Fatalf("cpus = %d", l.CPUs())
	}
	l.Touch(0, 1)
	l.Touch(0, 2)
	if l.Len(0) != 1 {
		t.Fatalf("capacity clamp failed: len=%d", l.Len(0))
	}
}

// Property: the where-index always agrees with the list contents.
func TestIndexConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		l := New[int](4, 5)
		for i := 0; i < 1000; i++ {
			switch r.Intn(3) {
			case 0, 1:
				l.Touch(r.Intn(4), r.Intn(20))
			case 2:
				l.Invalidate(r.Intn(20))
			}
		}
		// Rebuild the index from the lists and compare.
		for cpu := 0; cpu < 4; cpu++ {
			for _, e := range l.lists[cpu] {
				if !l.Contains(cpu, e.Item) {
					return false
				}
			}
		}
		for item, set := range l.where {
			for cpu := range set {
				found := false
				for _, e := range l.lists[cpu] {
					if e.Item == item {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
