package percpu

import "testing"

func TestAccumulatorExactValues(t *testing.T) {
	a := NewAccumulator(4, 3, 100)
	for cpu := 0; cpu < 4; cpu++ {
		for i := 0; i < 7; i++ {
			a.Inc(cpu, 0)
		}
		a.Add(cpu, 1, 50)
		a.Add(cpu, 2, -2)
		a.Add(cpu, 2, 5)
	}
	if got := a.Value(0); got != 28 {
		t.Fatalf("cell 0 = %d, want 28", got)
	}
	if got := a.Value(1); got != 200 {
		t.Fatalf("cell 1 = %d, want 200", got)
	}
	if got := a.Value(2); got != 12 {
		t.Fatalf("cell 2 = %d, want 12 (net of negative deltas)", got)
	}
}

func TestAccumulatorThresholdCommit(t *testing.T) {
	a := NewAccumulator(1, 1, 10)
	for i := 0; i < 9; i++ {
		a.Inc(0, 0)
	}
	if a.Commits != 0 {
		t.Fatalf("committed %d times below threshold", a.Commits)
	}
	a.Inc(0, 0) // hits threshold
	if a.Commits != 1 {
		t.Fatalf("commits = %d after threshold, want 1", a.Commits)
	}
	if a.store[0] != 10 {
		t.Fatalf("store = %d, want 10", a.store[0])
	}
	// A large single delta commits immediately.
	a.Add(0, 0, 1000)
	if a.Commits != 2 || a.store[0] != 1010 {
		t.Fatalf("commits=%d store=%d after large delta", a.Commits, a.store[0])
	}
	// Negative magnitude also triggers.
	a.Add(0, 0, -11)
	if a.Commits != 3 {
		t.Fatalf("commits = %d after negative threshold, want 3", a.Commits)
	}
	if got := a.Value(0); got != 999 {
		t.Fatalf("value = %d, want 999", got)
	}
}

func TestAccumulatorFlush(t *testing.T) {
	a := NewAccumulator(2, 2, 1000)
	a.Add(0, 0, 3)
	a.Add(1, 0, 4)
	a.Add(1, 1, 5)
	a.Flush()
	if a.Commits != 3 {
		t.Fatalf("flush commits = %d, want 3 (one per dirty lane-cell)", a.Commits)
	}
	// Flushing clean lanes commits nothing — Commits stays a
	// deterministic function of the update sequence.
	a.Flush()
	if a.Commits != 3 {
		t.Fatalf("idle flush added commits: %d", a.Commits)
	}
	if a.Value(0) != 7 || a.Value(1) != 5 {
		t.Fatalf("values = %d,%d want 7,5", a.Value(0), a.Value(1))
	}
	if a.Adds != 3 {
		t.Fatalf("adds = %d, want 3", a.Adds)
	}
}

func TestAccumulatorDefaults(t *testing.T) {
	a := NewAccumulator(0, 1, 0)
	if a.CPUs() != 1 || a.Cells() != 1 {
		t.Fatalf("cpus=%d cells=%d", a.CPUs(), a.Cells())
	}
	if a.threshold != DefaultCommitThreshold {
		t.Fatalf("threshold = %d", a.threshold)
	}
}
