package percpu

import (
	"sync"
	"testing"
)

// TestAccumulatorConcurrentLanes drives every lane from its own
// goroutine with a tiny commit threshold so threshold commits hammer
// the shared store concurrently, then flushes and checks net-delta
// conservation: the store must hold exactly what the lanes contributed.
// Under -race (make race, CI) this pins the ownership split the
// readiness inventory documents — lanes plain and owner-only, store
// and meters through sync/atomic.
func TestAccumulatorConcurrentLanes(t *testing.T) {
	const (
		cpus   = 8
		cells  = 4
		rounds = 5000
	)
	a := NewAccumulator(cpus, cells, 3) // tiny threshold: constant commits
	var wg sync.WaitGroup
	for cpu := 0; cpu < cpus; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				cell := i % cells
				a.Add(cpu, cell, int64(cpu+1))
				if i%7 == 0 {
					a.Add(cpu, cell, -1)
				}
			}
		}(cpu)
	}
	wg.Wait()
	a.Flush()

	var want [cells]uint64
	for cpu := 0; cpu < cpus; cpu++ {
		for i := 0; i < rounds; i++ {
			cell := i % cells
			want[cell] += uint64(cpu + 1)
			if i%7 == 0 {
				want[cell]--
			}
		}
	}
	for cell := 0; cell < cells; cell++ {
		if got := a.Value(cell); got != want[cell] {
			t.Errorf("cell %d = %d after concurrent commits, want %d", cell, got, want[cell])
		}
	}
	adds, commits := a.Counters()
	wantAdds := uint64(cpus * (rounds + (rounds+6)/7))
	if adds != wantAdds {
		t.Errorf("adds = %d, want %d", adds, wantAdds)
	}
	if commits == 0 {
		t.Error("no commits despite the tiny threshold")
	}
}
