// Package percpu implements the per-CPU fast-path lists of §4.3: each
// CPU keeps a bounded, recency-ordered list of knodes it touched, with
// an age counter per entry. The lists act as a software cache of the
// global kmap — hits avoid red-black tree traversals (the paper reports
// a 54% reduction in rbtree-cache/rbtree-slab accesses).
//
// The same knode can appear on several CPUs' lists; Invalidate provides
// the coherence hook Linux's per-CPU list APIs give the real kernel.
//
// The package also provides Accumulator, the per-CPU batched counter
// engine behind metrics.ModeBatched: counter updates land in per-CPU
// lanes and commit net deltas to the shared store at a threshold
// (DESIGN.md §13). See the Accumulator type for the flush/ordering
// contract — in short, Add is lane-owner-only, Flush/Value are
// coordinator-only and always yield exact values, and only
// commutative counters may be batched.
package percpu

import "sync/atomic"

// Entry is one cached item with its age. Age is reset on every touch
// and incremented by LRU scans that decline to evict (§4.3). Entries
// live in one CPU's list, touched only by that CPU's lane.
type Entry[T comparable] struct {
	Item T
	//klocs:owner=lane
	Age int
}

// Lists is a set of per-CPU bounded recency lists.
type Lists[T comparable] struct {
	cap   int
	lists [][]Entry[T] // index 0 = most recently touched
	// where[item] = set of CPUs caching it, for O(#CPUs) invalidation.
	where map[T]map[int]struct{}

	// Hits/Misses count Touch operations that found/missed the item —
	// the ablation metric for the fast path. Touch runs on every lane,
	// so they aggregate cross-lane and go through sync/atomic, the same
	// treatment as Accumulator's store: write via atomic adds in Touch,
	// read via HitCount/MissCount/HitRate. Exported for the ablation
	// tables; direct field access is rejected by the lockcheck
	// atomic-mixing rule.
	//klocs:owner=atomic
	Hits, Misses uint64
}

// New creates per-CPU lists for cpus CPUs with the given per-CPU
// capacity.
func New[T comparable](cpus, capacity int) *Lists[T] {
	if cpus < 1 {
		cpus = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Lists[T]{
		cap:   capacity,
		lists: make([][]Entry[T], cpus),
		where: make(map[T]map[int]struct{}),
	}
}

// CPUs reports the number of CPUs.
func (l *Lists[T]) CPUs() int { return len(l.lists) }

// Touch records that cpu accessed item: the entry moves to the front of
// cpu's list with age zero, evicting the list's tail if full. It
// reports whether the item was already cached on that CPU.
func (l *Lists[T]) Touch(cpu int, item T) bool {
	list := l.lists[cpu]
	for i := range list {
		if list[i].Item == item {
			e := list[i]
			e.Age = 0
			copy(list[1:i+1], list[:i])
			list[0] = e
			atomic.AddUint64(&l.Hits, 1)
			return true
		}
	}
	atomic.AddUint64(&l.Misses, 1)
	e := Entry[T]{Item: item}
	if len(list) >= l.cap {
		// Evict the tail.
		tail := list[len(list)-1].Item
		l.forget(cpu, tail)
		list = list[:len(list)-1]
	}
	list = append([]Entry[T]{e}, list...)
	l.lists[cpu] = list
	set := l.where[item]
	if set == nil {
		set = make(map[int]struct{})
		l.where[item] = set
	}
	set[cpu] = struct{}{}
	return false
}

func (l *Lists[T]) forget(cpu int, item T) {
	if set := l.where[item]; set != nil {
		delete(set, cpu)
		if len(set) == 0 {
			delete(l.where, item)
		}
	}
}

// Contains reports whether cpu's list caches item.
func (l *Lists[T]) Contains(cpu int, item T) bool {
	set := l.where[item]
	if set == nil {
		return false
	}
	_, ok := set[cpu]
	return ok
}

// CachedAnywhere reports whether any CPU caches item.
func (l *Lists[T]) CachedAnywhere(item T) bool { return len(l.where[item]) > 0 }

// LastCPU returns some CPU currently caching item (find_cpu in
// Table 2), or -1.
func (l *Lists[T]) LastCPU(item T) int {
	set := l.where[item]
	best := -1
	//klocs:unordered max reduction is order-insensitive
	for cpu := range set {
		if cpu > best {
			best = cpu
		}
	}
	return best
}

// Invalidate removes item from every CPU list (coherence on knode
// deletion).
func (l *Lists[T]) Invalidate(item T) {
	set := l.where[item]
	if set == nil {
		return
	}
	//klocs:unordered each iteration edits a distinct CPU's private list
	for cpu := range set {
		list := l.lists[cpu]
		for i := range list {
			if list[i].Item == item {
				l.lists[cpu] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	delete(l.where, item)
}

// AgeScan increments the age of every entry on cpu's list and calls fn
// for each (item, newAge). This is the LRU engine's pass over the
// per-CPU lists (§4.3): entries it does not evict get older.
func (l *Lists[T]) AgeScan(cpu int, fn func(item T, age int)) {
	list := l.lists[cpu]
	for i := range list {
		list[i].Age++
		if fn != nil {
			fn(list[i].Item, list[i].Age)
		}
	}
}

// ColdestOn returns the entries on cpu's list with age >= threshold.
func (l *Lists[T]) ColdestOn(cpu, threshold int) []T {
	var out []T
	for _, e := range l.lists[cpu] {
		if e.Age >= threshold {
			out = append(out, e.Item)
		}
	}
	return out
}

// Len reports the length of cpu's list.
func (l *Lists[T]) Len(cpu int) int { return len(l.lists[cpu]) }

// HitCount reports Touch operations that found their item cached.
func (l *Lists[T]) HitCount() uint64 { return atomic.LoadUint64(&l.Hits) }

// MissCount reports Touch operations that missed.
func (l *Lists[T]) MissCount() uint64 { return atomic.LoadUint64(&l.Misses) }

// HitRate returns Hits/(Hits+Misses), or 0 with no traffic.
func (l *Lists[T]) HitRate() float64 {
	hits := atomic.LoadUint64(&l.Hits)
	total := hits + atomic.LoadUint64(&l.Misses)
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
