package percpu

import "sync/atomic"

// Accumulator is a set of per-CPU counter lanes over a shared dense
// store — the VSA-style batched accounting engine behind
// metrics.ModeBatched (DESIGN.md §13). Each lane accumulates signed
// net deltas locally and commits a cell to the shared store only when
// the cell's pending magnitude reaches the commit threshold, so a
// stream of N per-event increments costs N lane writes but roughly
// N/threshold shared-store writes. On today's single-goroutine engine
// the lanes buy locality; on the planned sharded engine (ROADMAP item
// 2) they are what keeps hot counters off shared cachelines.
//
// Contract (who may touch what):
//
//   - Add is owner-only: on a parallel engine, only the goroutine
//     driving cpu's lane may Add to it. The single-goroutine simulator
//     trivially satisfies this. Lane storage is therefore plain; the
//     shared store and the Adds/Commits counters go through sync/atomic
//     so concurrent commits from distinct lanes are race-free (the
//     TestAccumulatorConcurrentLanes -race stress test pins this).
//   - Flush, FlushCell, and Value are coordinator-only: they walk every
//     lane, so they must run at a quiescent point (snapshot and stats
//     boundaries in the harness). Value flushes its cell first and is
//     therefore always exact — no reader can observe a mid-batch count.
//   - Ordering: a commit transfers only the net sum of a lane's pending
//     deltas, so batching is valid exactly for commutative counters
//     (counts, byte totals). Anything order- or interleaving-sensitive
//     must not go through an Accumulator.
//
// Adds and Commits are themselves deterministic functions of the event
// sequence (same seed → same counts); the perf harness reports their
// ratio as the shared-store write reduction.
type Accumulator struct {
	threshold int64
	//klocs:owner=lane
	lanes [][]int64 // [cpu][cell] pending net delta; owner-only plain access
	//klocs:owner=atomic
	store []uint64 // committed values; sync/atomic access after init

	// Adds counts every Add call; Commits counts shared-store writes
	// (threshold-triggered plus non-empty flushes). Both are exact and
	// deterministic — BENCH_perf.json reports Commits/Adds. Mutated
	// through sync/atomic (Add runs on every lane); read via Counters.
	//klocs:owner=atomic
	Adds, Commits uint64
}

// DefaultCommitThreshold batches small-delta counters well (refs
// commit every 1<<15 events) while keeping large-delta counters
// (byte totals) committing every few events — commits are a single
// add, so frequency only matters for the shared-store write rate.
const DefaultCommitThreshold = 1 << 15

// NewAccumulator builds an accumulator with cpus lanes of cells
// counters each. threshold <= 0 selects DefaultCommitThreshold.
func NewAccumulator(cpus, cells int, threshold int64) *Accumulator {
	if cpus < 1 {
		cpus = 1
	}
	if threshold <= 0 {
		threshold = DefaultCommitThreshold
	}
	lanes := make([][]int64, cpus)
	for i := range lanes {
		lanes[i] = make([]int64, cells)
	}
	return &Accumulator{threshold: threshold, lanes: lanes, store: make([]uint64, cells)}
}

// CPUs reports the lane count.
func (a *Accumulator) CPUs() int { return len(a.lanes) }

// Cells reports the per-lane cell count.
func (a *Accumulator) Cells() int { return len(a.store) }

// Add accumulates delta into cpu's lane for cell, committing the
// cell's net pending to the shared store once its magnitude reaches
// the threshold. Owner-only (see the type contract).
func (a *Accumulator) Add(cpu, cell int, delta int64) {
	atomic.AddUint64(&a.Adds, 1)
	lane := a.lanes[cpu]
	lane[cell] += delta
	if p := lane[cell]; p >= a.threshold || -p >= a.threshold {
		atomic.AddUint64(&a.store[cell], uint64(p))
		lane[cell] = 0
		atomic.AddUint64(&a.Commits, 1)
	}
}

// Inc is Add(cpu, cell, 1).
func (a *Accumulator) Inc(cpu, cell int) { a.Add(cpu, cell, 1) }

// FlushCell commits every lane's pending deltas for one cell.
// Coordinator-only.
func (a *Accumulator) FlushCell(cell int) {
	for _, lane := range a.lanes {
		if p := lane[cell]; p != 0 {
			atomic.AddUint64(&a.store[cell], uint64(p))
			lane[cell] = 0
			atomic.AddUint64(&a.Commits, 1)
		}
	}
}

// Flush commits all pending deltas in every lane. Coordinator-only;
// the harness calls it (via memsim.SyncStats) at snapshot and collect
// boundaries so direct Stats reads are exact.
func (a *Accumulator) Flush() {
	for _, lane := range a.lanes {
		for cell, p := range lane {
			if p != 0 {
				atomic.AddUint64(&a.store[cell], uint64(p))
				lane[cell] = 0
				atomic.AddUint64(&a.Commits, 1)
			}
		}
	}
}

// Value returns cell's exact current value, flushing the cell's
// pending deltas first. Coordinator-only. The store is a modular
// uint64 sum, so negative net deltas are fine as long as the true
// running value never goes below zero (true for every counter the
// module batches).
func (a *Accumulator) Value(cell int) uint64 {
	a.FlushCell(cell)
	return atomic.LoadUint64(&a.store[cell])
}

// Counters returns the Adds and Commits counts through sync/atomic, so
// callers never mix plain reads with the atomic increments in Add.
func (a *Accumulator) Counters() (adds, commits uint64) {
	return atomic.LoadUint64(&a.Adds), atomic.LoadUint64(&a.Commits)
}
