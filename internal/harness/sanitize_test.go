package harness

import (
	"testing"

	"kloc/internal/sim"
	"kloc/internal/trace"
)

func sanitizeTestConfig() RunConfig {
	return RunConfig{
		PolicyName: "klocs",
		Workload:   "rocksdb",
		Duration:   20 * sim.Millisecond,
	}
}

// TestSanitizedRunIsClean: the simulator's own object lifecycles must
// produce a clean report — no double frees, no use-after-free, and
// every tracked-live object reachable from the kernel's roots.
func TestSanitizedRunIsClean(t *testing.T) {
	for _, wl := range []string{"rocksdb", "redis"} {
		cfg := sanitizeTestConfig()
		cfg.Workload = wl
		cfg.Sanitize = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sanitize == nil {
			t.Fatalf("%s: sanitized run returned no report", wl)
		}
		if !res.Sanitize.Clean() {
			t.Fatalf("%s: sanitizer dirty:\n%s", wl, res.Sanitize)
		}
		if res.Sanitize.TrackedLive == 0 {
			t.Fatalf("%s: sanitizer tracked nothing", wl)
		}
	}
}

// TestSanitizerIsPassive: a sanitized run must be bit-identical to an
// unsanitized one at the same seed — the sanitizer charges no virtual
// cost and draws no randomness. The trace plane is armed on both runs
// so the comparison covers the full event stream, not just the summary
// counters.
func TestSanitizerIsPassive(t *testing.T) {
	run := func(sanitize bool) *Result {
		cfg := sanitizeTestConfig()
		cfg.Trace = &trace.Config{}
		cfg.Sanitize = sanitize
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, sanitized := run(false), run(true)
	if plain.Ops != sanitized.Ops || plain.VirtualTime != sanitized.VirtualTime ||
		plain.Throughput != sanitized.Throughput {
		t.Fatalf("sanitizing perturbed the run: ops %d vs %d, vt %v vs %v",
			plain.Ops, sanitized.Ops, plain.VirtualTime, sanitized.VirtualTime)
	}
	if plain.Mem.Refs != sanitized.Mem.Refs || plain.FS != sanitized.FS {
		t.Fatal("sanitizing perturbed subsystem stats")
	}
	if plain.Trace.TextString() != sanitized.Trace.TextString() {
		t.Fatal("sanitizing perturbed the trace event stream")
	}
	if plain.Sanitize != nil {
		t.Fatal("unsanitized run carries a report")
	}
}
