package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows/series a paper table
// or figure reports.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// f2 formats a float with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f1 formats a float with 1 decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// count formats an integer count.
func count(v uint64) string { return fmt.Sprintf("%d", v) }
