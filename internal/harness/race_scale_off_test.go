//go:build !race

package harness

// raceDetectorEnabled: see race_scale_on_test.go.
const raceDetectorEnabled = false
