// Sharded execution: RunShards drives several independent simulations
// ("shards") concurrently under sim.Lanes, the deterministic epoch/
// barrier executor (ROADMAP item 2). Each shard is a full kernel stack
// on its own engine with its own forked seed, so shard results are
// byte-identical to running each shard alone with Run — worker count
// and GOMAXPROCS change wall-clock only, never results. The lane
// determinism tests pin exactly that.
package harness

import (
	"fmt"

	"kloc/internal/sim"
	"kloc/internal/trace"
)

// ShardsConfig describes a sharded fleet run.
type ShardsConfig struct {
	// Base is the per-shard run configuration. Policies and workloads
	// must be named (PolicyName/Workload), not pre-built instances: a
	// shared Policy object would couple the shards.
	Base RunConfig
	// Shards is the number of logical CPUs (independent simulations).
	// Defaults to 1.
	Shards int
	// Workers is the number of OS goroutines driving the shards.
	// Defaults to 1; results never depend on it.
	Workers int
	// Quantum is the barrier epoch width in virtual time (default one
	// virtual millisecond). Results never depend on it either — shards
	// exchange no mid-run mail — but it sets barrier overhead.
	Quantum sim.Duration
	// EngineTrace, when non-nil, arms a dedicated coordinator tracer
	// recording sim.barrier / sim.lane.drain events. It is separate
	// from the per-shard tracers (Base.Trace) precisely so arming it
	// cannot perturb shard results.
	EngineTrace *trace.Config
}

// ShardsResult is the fleet outcome.
type ShardsResult struct {
	// Results holds one Result per shard, in shard order. Results[i]
	// is byte-identical to Run with Base.Seed replaced by
	// ShardSeed(seed, i).
	Results []*Result
	// Lanes reports the executor's epoch/delivery/fired counters.
	Lanes sim.LaneStats
	// EngineTrace is the coordinator tracer (nil unless armed).
	EngineTrace *trace.Tracer
}

// ShardSeed derives shard s's root seed from the fleet seed: shard 0
// keeps the fleet seed (a 1-shard fleet is exactly Run), later shards
// get splitmix64-scrambled streams so neighboring shards share no
// correlated randomness.
func ShardSeed(seed uint64, shard int) uint64 {
	if shard == 0 {
		return seed
	}
	z := seed + uint64(shard)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		// Seed 0 means "default" to withDefaults; keep derived seeds
		// out of that collision.
		z = 0x9e3779b97f4a7c15
	}
	return z
}

// RunShards executes Shards independent simulations concurrently on
// Workers lanes and collects their Results in shard order.
func RunShards(cfg ShardsConfig) (*ShardsResult, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Base.Policy != nil {
		return nil, fmt.Errorf("harness: RunShards requires PolicyName, not a shared Policy instance")
	}
	base := cfg.Base.withDefaults()

	lanes := sim.NewLanes(cfg.Workers, cfg.Quantum)
	var engTracer *trace.Tracer
	if cfg.EngineTrace != nil {
		engTracer = trace.New(*cfg.EngineTrace)
		lanes.AtBarrier(func(info sim.BarrierInfo) {
			engTracer.Emit(trace.SimBarrier, info.Now, info.Epoch,
				uint64(info.Delivered), "barrier", -1, int64(info.Delivered))
			for _, shard := range info.NewlyDrained {
				engTracer.Emit(trace.SimLaneDrain, info.Now, info.Epoch,
					uint64(shard), "lane", shard, 0)
			}
		})
	}

	runs := make([]*preparedRun, cfg.Shards)
	for s := range runs {
		scfg := base
		scfg.Seed = ShardSeed(base.Seed, s)
		p, err := prepare(scfg, sim.NewEngine())
		if err != nil {
			return nil, fmt.Errorf("harness: shard %d: %w", s, err)
		}
		lanes.Attach(p.eng)
		runs[s] = p
	}
	lanes.Run()

	out := &ShardsResult{Lanes: lanes.Stats(), EngineTrace: engTracer}
	for s, p := range runs {
		res, err := p.finish()
		if err != nil {
			return nil, fmt.Errorf("harness: shard %d: %w", s, err)
		}
		out.Results = append(out.Results, res)
	}
	return out, nil
}
