package harness

import (
	"reflect"
	"testing"

	"kloc/internal/fault"
)

// TestFaultRateZeroBitIdentical: arming a rate-0 plane must leave the
// run bit-identical to an unfaulted one — the plane draws no randomness
// and injects nothing, so every metric matches exactly.
func TestFaultRateZeroBitIdentical(t *testing.T) {
	base := quickRun(RunConfig{PolicyName: "klocs", Workload: "rocksdb"})
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := fault.Uniform(7, 0)
	base.Fault = &fcfg
	armed, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if armed.FaultsInjected != 0 || armed.FaultTrace != "" {
		t.Fatalf("rate-0 plane injected: %d (%q)", armed.FaultsInjected, armed.FaultTrace)
	}
	if !reflect.DeepEqual(plain, armed) {
		t.Fatalf("rate-0 run diverged from unfaulted run:\nplain: %+v\narmed: %+v", plain, armed)
	}
}

// TestFaultDeterminism: the same seed and fault config must reproduce
// the run exactly — byte-identical fault trace, identical metrics.
func TestFaultDeterminism(t *testing.T) {
	fcfg := fault.Uniform(42, 1e-3)
	cfg := quickRun(RunConfig{PolicyName: "klocs", Workload: "rocksdb", Fault: &fcfg})
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultsInjected == 0 {
		t.Fatal("rate 1e-3 never injected; test has no power")
	}
	if a.FaultTrace != b.FaultTrace {
		t.Fatalf("fault traces diverged:\n%s\n---\n%s", a.FaultTrace, b.FaultTrace)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("metrics diverged across identical runs:\na: %+v\nb: %+v", a, b)
	}
	// A different fault seed must produce a different trace.
	fcfg2 := fault.Uniform(43, 1e-3)
	cfg.Fault = &fcfg2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.FaultTrace == a.FaultTrace && c.FaultsInjected == a.FaultsInjected {
		t.Fatal("fault seed had no effect on the trace")
	}
}

// TestFaultSweepSurvives: every strategy must absorb a high fault rate
// without aborting — errnos degrade individual operations, never the
// run.
func TestFaultSweepSurvives(t *testing.T) {
	for _, pol := range []string{"naive", "nimble", "nimble++", "klocs"} {
		fcfg := fault.Uniform(42, 1e-3)
		res, err := Run(quickRun(RunConfig{PolicyName: pol, Workload: "filebench", Fault: &fcfg}))
		if err != nil {
			t.Fatalf("%s did not survive injection: %v", pol, err)
		}
		if res.Ops <= 0 {
			t.Fatalf("%s made no progress under faults", pol)
		}
		if res.FaultsInjected == 0 {
			t.Fatalf("%s: plane never fired at rate 1e-3", pol)
		}
	}
}

// TestFaultsExperimentRuns: the sweep table builds with the right shape.
func TestFaultsExperimentRuns(t *testing.T) {
	o := quick()
	o.Workloads = []string{"filebench"}
	tb, err := Faults(o)
	if err != nil {
		t.Fatal(err)
	}
	// 1 workload x 4 strategies x 3 rates.
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatalf("row shape: %v", row)
		}
	}
	// Rate-0 rows must show zero injections; the 1e-3 rows must not.
	if tb.Rows[0][5] != "0" {
		t.Fatalf("rate-0 row injected: %v", tb.Rows[0])
	}
	if tb.Rows[2][5] == "0" {
		t.Fatalf("rate-1e-3 row never injected: %v", tb.Rows[2])
	}
}
