//go:build race

package harness

// raceDetectorEnabled scales the sharded determinism tests down under
// `go test -race`: the race detector costs ~7-10x wall on the
// event-dense full-stack runs, and the properties under test
// (byte-identity across worker counts and GOMAXPROCS) are
// duration-independent — every epoch exercises the same barrier and
// mail machinery.
const raceDetectorEnabled = true
