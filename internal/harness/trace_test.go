package harness

import (
	"strings"
	"testing"

	"kloc/internal/sim"
	"kloc/internal/trace"
)

func traceTestConfig() RunConfig {
	return RunConfig{
		PolicyName: "klocs",
		Workload:   "rocksdb",
		Duration:   20 * sim.Millisecond,
	}
}

// TestTracingIsPassive: a traced run must be bit-identical to an
// untraced one — the tracer charges no virtual cost and draws no
// randomness, so arming it cannot perturb the simulation.
func TestTracingIsPassive(t *testing.T) {
	plain, err := Run(traceTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := traceTestConfig()
	cfg.Trace = &trace.Config{}
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Ops != traced.Ops || plain.VirtualTime != traced.VirtualTime ||
		plain.Throughput != traced.Throughput {
		t.Fatalf("tracing perturbed the run: ops %d vs %d, vt %v vs %v",
			plain.Ops, traced.Ops, plain.VirtualTime, traced.VirtualTime)
	}
	if plain.Mem.MigratedPages != traced.Mem.MigratedPages ||
		plain.Mem.Refs != traced.Mem.Refs {
		t.Fatalf("tracing perturbed memory stats:\n%+v\n%+v", plain.Mem, traced.Mem)
	}
	if plain.FS != traced.FS {
		t.Fatalf("tracing perturbed FS stats:\n%+v\n%+v", plain.FS, traced.FS)
	}
	if traced.TraceStats.Emitted == 0 {
		t.Fatal("traced run emitted no events")
	}
	if plain.Trace != nil || plain.TraceStats.Emitted != 0 {
		t.Fatal("untraced run carries a tracer")
	}
}

// TestTraceExportsAreReproducible: two same-seed runs must produce
// byte-identical trace files in both export formats.
func TestTraceExportsAreReproducible(t *testing.T) {
	run := func() (*Result, error) {
		cfg := traceTestConfig()
		cfg.Trace = &trace.Config{Events: []string{"alloc.*", "memsim.migrate"}}
		return Run(cfg)
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.TextString() != b.Trace.TextString() {
		t.Fatal("text trace differs between same-seed runs")
	}
	var ja, jb strings.Builder
	if err := a.Trace.WriteChrome(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.Trace.WriteChrome(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Fatal("chrome trace differs between same-seed runs")
	}
	// The enable patterns really filtered: only alloc.* and
	// memsim.migrate names appear.
	for _, nc := range a.TraceStats.ByName {
		name := string(nc.Name)
		if !strings.HasPrefix(name, "alloc.") && name != "memsim.migrate" {
			t.Fatalf("disabled event %q was recorded", name)
		}
	}
}
