package harness

import (
	"strings"
	"testing"

	"kloc/internal/memsim"
	"kloc/internal/policy"
	"kloc/internal/sim"
)

// quick returns fast-running options for tests.
func quick() Options {
	return Options{ScaleDiv: 256, Duration: 10 * sim.Millisecond, Seed: 42}
}

func quickRun(cfg RunConfig) RunConfig {
	cfg.ScaleDiv = 256
	cfg.Duration = 10 * sim.Millisecond
	return cfg
}

func TestRunBasics(t *testing.T) {
	res, err := Run(quickRun(RunConfig{PolicyName: "naive", Workload: "rocksdb"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops <= 0 || res.Throughput <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Policy != "naive" || res.Workload != "rocksdb" {
		t.Fatalf("identity: %s/%s", res.Policy, res.Workload)
	}
	if res.KernRefs == 0 {
		t.Fatal("no kernel references recorded")
	}
	if res.VirtualTime < 10*sim.Millisecond {
		t.Fatalf("virtual time %v below requested duration", res.VirtualTime)
	}
}

func TestRunUnknownNamesFail(t *testing.T) {
	if _, err := Run(quickRun(RunConfig{PolicyName: "bogus", Workload: "rocksdb"})); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Run(quickRun(RunConfig{PolicyName: "naive", Workload: "bogus"})); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestRunDeterminismAtScale re-runs redis+klocs at the experiment
// scale (ScaleDiv 64, 60 ms). The longer window drives enough
// checkpoint unlink churn to catch map-iteration-order leaks in the
// inode teardown path that the small quickRun configuration never
// reaches (regression: destroyInode used to free radix nodes in map
// order, perturbing slab state).
func TestRunDeterminismAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := RunConfig{
		PolicyName: "klocs", Workload: "redis",
		ScaleDiv: 64, Duration: 60 * sim.Millisecond,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || a.VirtualTime != b.VirtualTime || a.Mem.MigratedPages != b.Mem.MigratedPages {
		t.Fatalf("nondeterministic at scale: ops %d/%d vt %v/%v migr %d/%d",
			a.Ops, b.Ops, a.VirtualTime, b.VirtualTime, a.Mem.MigratedPages, b.Mem.MigratedPages)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := quickRun(RunConfig{PolicyName: "klocs", Workload: "redis"})
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || a.VirtualTime != b.VirtualTime || a.Mem.MigratedPages != b.Mem.MigratedPages {
		t.Fatalf("nondeterministic: ops %d/%d vt %v/%v migr %d/%d",
			a.Ops, b.Ops, a.VirtualTime, b.VirtualTime, a.Mem.MigratedPages, b.Mem.MigratedPages)
	}
	// A different seed must change the run.
	cfg.Seed = 43
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops == a.Ops && c.Mem.Refs == a.Mem.Refs {
		t.Fatal("seed had no effect")
	}
}

func TestAllFastGrowsFastTier(t *testing.T) {
	cfg := quickRun(RunConfig{PolicyName: "all-fast", Workload: "filebench"})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 6; c++ {
		if res.SlowAllocsByClass[c] != 0 {
			t.Fatalf("all-fast allocated class %d in slow memory", c)
		}
	}
}

func TestOptaneRunWithTaskMove(t *testing.T) {
	res, err := Run(quickRun(RunConfig{
		Platform: Optane, PolicyName: "autonuma", Workload: "cassandra",
		MoveTaskAtFrac: 0.2,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.L4Hits == 0 {
		t.Fatal("memory-mode L4 cache never hit")
	}
}

func TestPolicyOverride(t *testing.T) {
	cfg := policy.DefaultKLOCConfig()
	cfg.FastPath = false
	res, err := Run(quickRun(RunConfig{
		Policy: policy.NewKLOCs(cfg), PolicyName: "klocs", Workload: "rocksdb",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.FastPathHitRate != 0 {
		t.Fatalf("fast path disabled but hit rate %v", res.FastPathHitRate)
	}
}

func TestSpeedupOrderingHolds(t *testing.T) {
	// The paper's central ordering on a kernel-heavy workload: all-slow
	// <= nimble-family < klocs <= all-fast. Run at reduced scale.
	thr := map[string]float64{}
	for _, pol := range []string{"all-slow", "nimble", "klocs", "all-fast"} {
		res, err := Run(RunConfig{
			PolicyName: pol, Workload: "filebench",
			ScaleDiv: 64, Duration: 40 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		thr[pol] = res.Throughput
	}
	if !(thr["all-slow"] <= thr["nimble"]*1.05) {
		t.Errorf("nimble (%.0f) below all-slow (%.0f)", thr["nimble"], thr["all-slow"])
	}
	if thr["klocs"] <= thr["nimble"] {
		t.Errorf("klocs (%.0f) not above nimble (%.0f)", thr["klocs"], thr["nimble"])
	}
	if thr["all-fast"] <= thr["klocs"] {
		t.Errorf("all-fast (%.0f) not the ceiling (klocs %.0f)", thr["all-fast"], thr["klocs"])
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Note:   "n",
		Header: []string{"a", "bb"},
	}
	tb.AddRow("x", "y")
	out := tb.String()
	for _, want := range []string{"== T ==", "n", "a", "bb", "x", "y", "--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFig2aRuns(t *testing.T) {
	o := quick()
	o.Workloads = []string{"filebench"}
	tb, err := Fig2a(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Filebench is the purest kernel workload: OS share must dominate.
	if !strings.Contains(tb.Rows[0][1], "0.0%") && tb.Rows[0][1] != "0.0%" {
		// app% may be tiny but nonzero; just sanity check format
	}
	if len(tb.Rows[0]) != 5 {
		t.Fatalf("row shape: %v", tb.Rows[0])
	}
}

func TestFig2dShortLifetimes(t *testing.T) {
	o := quick()
	o.Workloads = []string{"rocksdb"}
	tb, err := Fig2d(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFig4QuickShape(t *testing.T) {
	o := quick()
	o.Workloads = []string{"redis"}
	tb, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != len(tb.Header) {
		t.Fatalf("table shape: %v", tb.Rows)
	}
}

func TestTable6Runs(t *testing.T) {
	o := quick()
	o.Workloads = []string{"redis"}
	tb, err := Table6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFig5cConfigsCumulative(t *testing.T) {
	configs := fig5cConfigs()
	if len(configs) != 6 {
		t.Fatalf("configs = %d, want app-only + 5 groups", len(configs))
	}
	if configs[0].Name != "app-only" || len(configs[0].Groups) != 0 {
		t.Fatalf("first config: %+v", configs[0])
	}
	for i := 1; i < len(configs); i++ {
		if len(configs[i].Groups) != i {
			t.Fatalf("config %d has %d groups", i, len(configs[i].Groups))
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	for _, name := range ExperimentNames() {
		if Experiments[name] == nil {
			t.Fatalf("experiment %q not registered", name)
		}
	}
	if len(Experiments) != len(ExperimentNames()) {
		t.Fatal("registry and name list out of sync")
	}
}

func TestSlowNodeOf(t *testing.T) {
	if slowNodeOf(RunConfig{Platform: TwoTier}) != memsim.SlowNode {
		t.Fatal("two-tier slow node wrong")
	}
	if slowNodeOf(RunConfig{Platform: Optane}) != memsim.Socket1Node {
		t.Fatal("optane remote node wrong")
	}
}
