package harness

import (
	"encoding/json"
	"fmt"

	"kloc/internal/cluster"
	"kloc/internal/sim"
)

// ClusterBenchRow is one cluster sweep point in the machine-readable
// report (BENCH_cluster.json).
type ClusterBenchRow struct {
	Route      string  `json:"route"`
	Arrival    string  `json:"arrival"`
	Load       float64 `json:"load"`
	RatePerSec float64 `json:"rate_per_sec"`

	OfferedPerSec float64 `json:"offered_per_sec"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	MeanLatencyUs float64 `json:"mean_latency_us"`
	P50Us         float64 `json:"p50_us"`
	P99Us         float64 `json:"p99_us"`

	Arrivals  uint64 `json:"arrivals"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Shed      uint64 `json:"shed"`
	ShedCold  uint64 `json:"shed_cold"`
	Retries   uint64 `json:"retries"`
	Timeouts  uint64 `json:"timeouts"`
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	Wasted    uint64 `json:"wasted_work"`
	Crashes   uint64 `json:"crashes"`

	Availability      float64 `json:"availability"`
	FaultAvailability float64 `json:"fault_availability"`
}

// BenchSchemaVersion stamps the machine-readable bench reports
// (BENCH_*.json) so downstream consumers can detect shape changes.
const BenchSchemaVersion = 1

// ClusterBenchReport is the full machine-readable cluster sweep.
type ClusterBenchReport struct {
	SchemaVersion int    `json:"schema_version"`
	Experiment    string `json:"experiment"`
	Workload      string `json:"workload"`
	Policy        string `json:"policy"`
	Machines      int    `json:"machines"`
	Workers       int    `json:"workers"`
	Seed          uint64 `json:"seed"`
	// ServiceCostNs is the calibrated mean per-request service cost;
	// CapacityPerSec the fleet capacity derived from it (the rate the
	// load factors multiply).
	ServiceCostNs  int64   `json:"service_cost_ns"`
	CapacityPerSec float64 `json:"capacity_per_sec"`
	// KneeLoad maps each route to the highest swept load factor it
	// absorbed at >= 95% availability — past it the capacity knee.
	KneeLoad map[string]float64 `json:"knee_load"`

	Rows []ClusterBenchRow `json:"rows"`
}

// JSON renders the report deterministically (two same-seed sweeps are
// byte-identical).
func (r *ClusterBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// clusterLoads are the sweep's offered-load factors (fractions of the
// calibrated fleet capacity): two below the knee, one at it, two past
// (affinity routing keeps most service hot, so the KLOC-aware route's
// effective capacity sits above the cold-calibrated estimate and its
// knee arrives later than round-robin's).
var clusterLoads = []float64{0.3, 0.6, 0.9, 1.2, 1.5}

// ClusterBench sweeps the cluster serving plane: offered load versus
// routing policy with a crash and a degrade window in every run, plus
// the non-Poisson arrival shapes on the KLOC-aware route. It reports
// the rendered table and the machine-readable report klocbench writes
// to BENCH_cluster.json.
func ClusterBench(o Options) (*Table, *ClusterBenchReport, error) {
	base := cluster.Config{
		ScaleDiv: o.ScaleDiv,
		Seed:     o.Seed,
		// The serving plane drives far more requests per virtual second
		// than the closed-loop experiments drive ops; half the batch
		// duration keeps the sweep's wall time in the same ballpark.
		Duration: o.Duration / 2,
	}
	base = baseWithFaults(base)
	cost, err := cluster.EstimateServiceCost(base)
	if err != nil {
		return nil, nil, err
	}
	capacity := float64(base.Machines*base.Workers) / cost.Seconds()

	rep := &ClusterBenchReport{
		SchemaVersion:  BenchSchemaVersion,
		Experiment:     "cluster",
		Workload:       base.Workload,
		Policy:         base.Policy,
		Machines:       base.Machines,
		Workers:        base.Workers,
		Seed:           o.Seed,
		ServiceCostNs:  int64(cost),
		CapacityPerSec: capacity,
		KneeLoad:       make(map[string]float64, 3),
	}
	t := &Table{
		Title: "Cluster serving plane — p99 and goodput vs offered load, through fault windows",
		Note: fmt.Sprintf("%d machines x %d workers, %s/%s; calibrated capacity %.0f req/s; "+
			"crash at 40%% and fast-tier degrade at 60%% of every run",
			rep.Machines, rep.Workers, rep.Workload, rep.Policy, capacity),
		Header: []string{"route", "arrival", "load", "goodput/s", "avail", "fault-avail",
			"p50", "p99", "shed", "retries", "hedges", "timeouts"},
	}

	addRow := func(route, arrival string, load float64) error {
		cfg := base
		cfg.Route = route
		cfg.Arrival = arrival
		cfg.Rate = load * capacity
		r, err := runCluster(cfg)
		if err != nil {
			return err
		}
		s := r.Stats
		t.AddRow(route, arrival, f2(load), f1(r.GoodputPerSec),
			pct(r.Availability), pct(r.FaultAvailability),
			r.P50.String(), r.P99.String(),
			count(s.Shed), count(s.Retries), count(s.Hedges), count(s.Timeouts))
		rep.Rows = append(rep.Rows, ClusterBenchRow{
			Route: route, Arrival: arrival, Load: load, RatePerSec: cfg.Rate,
			OfferedPerSec: r.OfferedPerSec, GoodputPerSec: r.GoodputPerSec,
			MeanLatencyUs: float64(r.MeanLatency) / float64(sim.Microsecond),
			P50Us:         float64(r.P50) / float64(sim.Microsecond),
			P99Us:         float64(r.P99) / float64(sim.Microsecond),
			Arrivals:      s.Arrivals, Completed: s.Completed, Failed: s.Failed,
			Shed: s.Shed, ShedCold: s.ShedCold, Retries: s.Retries,
			Timeouts: s.Timeouts, Hedges: s.Hedges, HedgeWins: s.HedgeWins,
			Wasted: s.WastedWork, Crashes: s.Crashes,
			Availability: r.Availability, FaultAvailability: r.FaultAvailability,
		})
		if r.Availability >= 0.95 && load > rep.KneeLoad[route] {
			rep.KneeLoad[route] = load
		}
		return nil
	}

	for _, load := range clusterLoads {
		for _, route := range cluster.RouteNames() {
			if err := addRow(route, "poisson", load); err != nil {
				return nil, nil, err
			}
		}
	}
	// Arrival-shape sensitivity at the knee, on the KLOC-aware route:
	// the same mean rate arriving in bursts or diurnal swings stresses
	// shedding and hedging harder than Poisson.
	for _, arrival := range []string{"bursty", "diurnal"} {
		if err := addRow("kloc", arrival, 0.9); err != nil {
			return nil, nil, err
		}
	}
	return t, rep, nil
}

// baseWithFaults resolves the fleet shape and arms the sweep's fault
// schedule: every run crashes machine 1 at 40% of the measured window
// and degrades machine 2's fast tier at 60%, with downtime and
// degradation windows sized to the run.
func baseWithFaults(cfg cluster.Config) cluster.Config {
	cfg = cfg.WithDefaults()
	cfg.Faults = []cluster.MachineFault{
		{Machine: 1, Kind: cluster.FaultCrash, At: sim.Duration(float64(cfg.Duration) * 0.4)},
		{Machine: 2, Kind: cluster.FaultDegrade, At: sim.Duration(float64(cfg.Duration) * 0.6)},
	}
	cfg.RestartDelay = cfg.Duration / 8
	cfg.DegradeFor = cfg.Duration / 8
	return cfg
}

// runCluster builds and runs one cluster configuration.
func runCluster(cfg cluster.Config) (*cluster.Report, error) {
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	return c.Run()
}
