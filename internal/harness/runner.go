// Package harness drives measured simulation runs and regenerates the
// paper's tables and figures (DESIGN.md §4 maps each experiment to its
// function here).
//
// Run executes one measured run from a RunConfig — platform, policy,
// workload, seed, duration, plus the optional planes (Fault, Pressure,
// Trace) — with a warmup phase so policies are judged at steady state,
// and returns a Result carrying the measured-window counters every
// table is built from. Experiments maps the paper's figure/table names
// to batch drivers over Run; Options trades fidelity for wall time
// (quick mode). Determinism is inherited from the substrate: the same
// RunConfig always yields the same Result.
package harness

import (
	"fmt"

	"kloc/internal/alloc"
	"kloc/internal/fault"
	"kloc/internal/fs"
	"kloc/internal/kernel"
	"kloc/internal/memsim"
	"kloc/internal/metrics"
	"kloc/internal/netsim"
	"kloc/internal/policy"
	"kloc/internal/pressure"
	"kloc/internal/sim"
	"kloc/internal/trace"
	"kloc/internal/workload"
)

// Platform selects the Table-4 machine.
type Platform int

// Platforms.
const (
	TwoTier Platform = iota
	Optane
)

// RunConfig describes one measured run.
type RunConfig struct {
	Platform Platform
	// TwoTier / Optane override the default (scaled) platform configs.
	TwoTier *memsim.TwoTierConfig
	Optane  *memsim.OptaneConfig
	// ScaleDiv applies when no explicit platform config is given, and
	// always scales the workload.
	ScaleDiv int

	PolicyName string
	// Policy overrides PolicyName with a pre-built policy instance
	// (used by experiments that need non-catalog configurations, e.g.
	// the Fig 5c group sweep and the ablation benches).
	Policy kernel.Policy

	Workload string
	WLConfig workload.Config

	// KlocPrefetch enables the KLOC-aware readahead integration (§4.4).
	KlocPrefetch bool
	// ReadaheadWindow overrides the FS readahead window (-1 disables,
	// 0 keeps the default).
	ReadaheadWindow int

	Seed uint64
	// MoveTaskAtFrac, on the Optane platform, moves the task to socket
	// 1 after this fraction of the measured duration (the §6.2
	// interference scenario). 0 disables.
	MoveTaskAtFrac float64

	// Duration is the measured virtual run length; throughput is ops
	// completed within it. Default 400 ms of virtual time. The
	// workload's TotalOps acts as a safety cap.
	Duration sim.Duration
	// Warmup runs the workload (and daemons) before measurement begins
	// so policies are judged at steady state. Default Duration/2.
	Warmup sim.Duration

	// Fault arms a deterministic fault-injection plane for the run.
	// The plane attaches after workload setup, so setup is never
	// perturbed and a rate-0 plane leaves the run bit-identical to an
	// unfaulted one. Nil runs without injection.
	Fault *fault.Config

	// FaultSchedule arms an exact-time fault schedule (the chaos
	// engine's replayable form) with offsets rebased onto the measured
	// window's start, so the same schedule means the same thing across
	// runs whose setup phases differ. Mutually exclusive with Fault.
	FaultSchedule *fault.Schedule

	// CrashReplay runs the crash-consistency oracle after the measured
	// window: crash the FS, check the in-memory image tore down clean,
	// replay the journal, and check the durable image was rebuilt
	// exactly. The verdict lands on Result.CrashViolation; the run's
	// other counters are collected before the crash and are unaffected.
	CrashReplay bool

	// Pressure configures the memory-pressure plane: watermarks on the
	// fast node (enabling the emergency-reserve gate) and, with a
	// nonzero KswapdPeriod, the background reclaimer. Applied after
	// workload setup, like Fault. Nil leaves watermarks off — direct
	// reclaim through the shrinker registry still works; only the
	// reserve gate and kswapd stay disabled.
	Pressure *pressure.Config

	// Trace arms the tracepoint-analog observability plane for the run
	// (OBSERVABILITY.md). The tracer attaches before workload setup —
	// it is strictly passive, so setup stays bit-identical — and is
	// returned on Result.Trace for export. Nil runs without tracing.
	Trace *trace.Config

	// Sanitize arms the KASAN/kmemleak-analog runtime sanitizer for the
	// run. Like the tracer it attaches before setup and is strictly
	// passive — a sanitized run is bit-identical to an unsanitized one
	// at the same seed. The end-of-run report (double frees,
	// use-after-free accesses, leaked objects grouped by KLOC context)
	// is returned on Result.Sanitize.
	Sanitize bool

	// Accounting selects the hot-path accounting mode (DESIGN.md §13).
	// The zero value resolves to metrics.DefaultMode (batched + pooled
	// + indexed); the perf harness passes metrics.LegacyMode-derived
	// variants for its A/B sweeps. Every mode yields byte-identical
	// simulation results — this knob trades only bookkeeping cost.
	Accounting metrics.Mode
}

// Result is one run's outcome.
type Result struct {
	Policy, Workload string
	Ops              int
	VirtualTime      sim.Duration
	// Throughput in operations per virtual second.
	Throughput float64

	Mem      memsim.Stats
	AppRefs  uint64
	KernRefs uint64

	// Allocation counts by class (pages), summed over nodes, and the
	// slow/remote-node slice of them. These are measured-window deltas;
	// TotalAllocsByClass covers the whole run including setup (the
	// footprint-characterization view of Fig 2).
	AllocsByClass      [6]uint64
	SlowAllocsByClass  [6]uint64
	TotalAllocsByClass [6]uint64

	// Lifetime means.
	AppLifetime, SlabLifetime, CacheLifetime sim.Duration

	// KlocMetadataBytes is nonzero for KLOC policies (Table 6).
	KlocMetadataBytes int

	// ReadaheadIssued/Hits for the prefetch study.
	ReadaheadIssued, ReadaheadHits uint64

	// FastPathHitRate for the §4.3 ablation (KLOC policies).
	FastPathHitRate float64

	// FS / Net expose subsystem stats for the characterization tables.
	FS  fs.Stats
	Net netsim.Stats
	// DevBusy is the storage device's total busy horizon (I/O pressure).
	DevBusy sim.Duration
	// OpCost summarizes per-operation virtual costs.
	OpCost metrics.Distribution

	// Fault-injection outcomes (zero when no plane was armed).
	// FaultsInjected is the plane's total injection count; FaultTrace
	// is its deterministic, replayable record (one line per injection).
	FaultsInjected uint64
	FaultTrace     string
	// DegradedOps counts workload steps that absorbed an errno-style
	// failure and continued instead of aborting the run.
	DegradedOps uint64
	// IORetries / IOHardFailures are the block layer's re-drive and
	// retry-budget-exhaustion counts.
	IORetries      uint64
	IOHardFailures uint64

	// Memory-pressure outcomes (nonzero only when the run hit
	// pressure). Pressure mirrors the plane's counters — direct-reclaim
	// invocations and pages, kswapd wakeups and pages, OOM evictions
	// and spilled pages, aborted reclaim rounds. ReserveDips counts
	// atomic allocations that drew on the watermark emergency reserve,
	// and ShrinkerStats breaks reclaimed objects/pages down per
	// registered shrinker in scan order.
	Pressure      pressure.Stats
	ReserveDips   uint64
	ShrinkerStats []pressure.ShrinkerStat

	// Trace is the run's armed tracer (nil when tracing was off);
	// callers export it via WriteText / WriteChrome. TraceStats
	// summarizes per-event-name totals and per-KLOC-context activity
	// over virtual-time windows; it covers every emitted event even
	// when the ring buffer dropped some.
	Trace      *trace.Tracer
	TraceStats trace.Stats

	// Perf reports the run's hot-path accounting meters (DESIGN.md
	// §13): deterministic evidence of how much bookkeeping the active
	// Accounting mode actually did — accumulator adds vs committed net
	// deltas, frame/ctx pool recycling, trace summary commits. Purely
	// informational; every mode produces identical simulation results.
	Perf PerfMeters

	// Sanitize is the runtime sanitizer's end-of-run report (nil when
	// RunConfig.Sanitize was off).
	Sanitize *alloc.SanReport

	// CrashReplayed is set when the CrashReplay oracle ran;
	// CrashViolation names the first violated crash-consistency
	// invariant (empty means the crash/replay cycle was clean).
	CrashReplayed  bool
	CrashViolation string
}

func (c RunConfig) withDefaults() RunConfig {
	if c.ScaleDiv <= 0 {
		c.ScaleDiv = 64
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Duration <= 0 {
		c.Duration = 400 * sim.Millisecond
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Duration / 2
	}
	c.WLConfig.ScaleDiv = c.ScaleDiv
	return c
}

func (c RunConfig) buildMemory() *memsim.Memory {
	switch c.Platform {
	case Optane:
		cfg := memsim.DefaultOptane(c.ScaleDiv)
		if c.Optane != nil {
			cfg = *c.Optane
		}
		return memsim.NewOptane(cfg)
	default:
		cfg := memsim.DefaultTwoTier(c.ScaleDiv)
		if c.TwoTier != nil {
			cfg = *c.TwoTier
		}
		if c.PolicyName == "all-fast" {
			// The ideal bound: fast memory big enough for everything.
			cfg.FastPages = cfg.SlowPages
		}
		return memsim.NewTwoTier(cfg)
	}
}

// Run executes one measured simulation run.
func Run(cfg RunConfig) (*Result, error) {
	p, err := prepare(cfg, sim.NewEngine())
	if err != nil {
		return nil, err
	}
	p.eng.Run()
	return p.finish()
}

// preparedRun is one shard's fully-scheduled simulation: everything
// Run does before driving the engine, captured so RunShards can build
// several shards and drive them together under sim.Lanes. All fields
// (and the state the scheduled closures mutate) belong to the one
// goroutine driving p.eng — lane-confined under the sharded plan.
type preparedRun struct {
	cfg    RunConfig
	eng    *sim.Engine
	k      *kernel.Kernel
	pol    kernel.Policy
	wl     workload.Workload
	tracer *trace.Tracer
	plane  *fault.Plane
	start  sim.Time

	threads     int
	done        int
	globalOps   int
	degradedOps uint64
	stepErr     error
	opCosts     metrics.Distribution
	base        statSnapshot
}

// prepare builds the kernel stack for cfg on eng and schedules the
// workload threads, leaving the engine ready to Run. It performs the
// setup-phase warp (RunUntil the storage horizon) on the calling
// goroutine, so it is init-phase: call it before the lanes start.
func prepare(cfg RunConfig, eng *sim.Engine) (*preparedRun, error) {
	cfg = cfg.withDefaults()
	mem := cfg.buildMemory()
	mem.SetMode(cfg.Accounting)
	pol := cfg.Policy
	if pol == nil {
		var err error
		pol, err = policy.ByName(cfg.PolicyName)
		if err != nil {
			return nil, err
		}
	}
	wl, err := workload.ByName(cfg.Workload, cfg.WLConfig)
	if err != nil {
		return nil, err
	}

	k := kernel.New(eng, mem, pol)
	k.FS.KlocAwareReadahead = cfg.KlocPrefetch
	if cfg.ReadaheadWindow != 0 {
		w := cfg.ReadaheadWindow
		if w < 0 {
			w = 0
		}
		k.FS.ReadaheadWindow = w
	}
	// Attach the tracer before setup: the plane is strictly passive, so
	// a traced run is bit-identical to an untraced one, and setup-phase
	// allocations (the long-lived object population) appear in the
	// trace.
	var tracer *trace.Tracer
	if cfg.Trace != nil {
		tc := *cfg.Trace
		if tc.Mode == 0 {
			// The run's accounting mode governs the tracer too, unless
			// the trace config pinned one explicitly (the perf A/B runs
			// do both together).
			tc.Mode = cfg.Accounting
		}
		tracer = trace.New(tc)
		k.AttachTracer(tracer)
	}
	// The sanitizer attaches before setup for the same reason: it is
	// strictly passive, and setup-phase allocations must be tracked or
	// the teardown leak scan would miss the long-lived population.
	if cfg.Sanitize {
		k.AttachSanitizer(alloc.NewSanitizer())
	}
	root := sim.NewRNG(cfg.Seed)
	if err := wl.Setup(k, root); err != nil {
		return nil, fmt.Errorf("harness: setup %s: %w", wl.Name(), err)
	}
	// Warp past the setup phase's storage backlog: the measured window
	// starts with an idle device, as the paper's warmed-up runs do.
	if horizon := sim.Time(k.FS.MQ.Dev.BusyUntil()); horizon > eng.Now() {
		eng.RunUntil(horizon)
	}
	setupEnd := eng.Now()
	start := setupEnd.Add(cfg.Warmup)
	// Arm the fault plane only now: setup ran clean, and the plane's
	// per-point RNG streams start from the configured seed regardless of
	// how long setup took, so traces are comparable across policies.
	var plane *fault.Plane
	if cfg.Fault != nil && cfg.FaultSchedule != nil {
		return nil, fmt.Errorf("harness: Fault and FaultSchedule are mutually exclusive: %w", fault.EINVAL)
	}
	if cfg.Fault != nil {
		plane = fault.NewPlane(*cfg.Fault)
	} else if cfg.FaultSchedule != nil {
		plane = fault.NewPlane(cfg.FaultSchedule.Config(cfg.Seed, -1, start))
	}
	if plane != nil {
		k.InjectFaults(plane)
	}
	// Configure pressure before Start so kswapd is armed when the
	// daemons launch. Setup ran without the reserve gate for the same
	// reason the fault plane attaches late: a configured run's setup is
	// bit-identical to an unconfigured one's.
	if cfg.Pressure != nil {
		k.Pressure.Configure(*cfg.Pressure)
	}
	k.Start()

	p := &preparedRun{
		cfg: cfg, eng: eng, k: k, pol: pol, wl: wl,
		tracer: tracer, plane: plane, start: start,
		threads: wl.Threads(),
	}
	perThread := wl.TotalOps() / p.threads
	if perThread < 1 {
		perThread = 1
	}
	deadline := start.Add(cfg.Duration)
	if cfg.Platform == Optane && cfg.MoveTaskAtFrac > 0 {
		moveAt := start.Add(sim.Duration(cfg.MoveTaskAtFrac * float64(cfg.Duration)))
		eng.Schedule(moveAt, func(*sim.Engine) { k.SetTaskSocket(1) })
	}

	eng.Schedule(start, func(*sim.Engine) { p.base = snapshot(k) })
	for t := 0; t < p.threads; t++ {
		t := t
		rng := root.Fork()
		remaining := perThread
		var step func(*sim.Engine)
		finish := func(e *sim.Engine) {
			p.done++
			if p.done == p.threads {
				// All threads retired: stop the policy daemons too.
				e.Halt()
			}
		}
		step = func(e *sim.Engine) {
			if p.stepErr != nil || remaining == 0 || e.Now() >= deadline {
				finish(e)
				return
			}
			remaining--
			if e.Now() >= start {
				p.globalOps++
			}
			ctx := k.NewCtx(t)
			if err := wl.Step(k, ctx, t, rng); err != nil {
				if (plane != nil || cfg.Pressure != nil) && fault.IsErrno(err) {
					// Graceful degradation: an injected (or induced)
					// errno fails this operation, not the run. The op
					// still pays the virtual time it consumed.
					p.degradedOps++
				} else {
					p.stepErr = fmt.Errorf("harness: %s thread %d: %w", wl.Name(), t, err)
					finish(e)
					return
				}
			}
			cost := ctx.Cost
			// The op has retired and nothing downstream retains ctx, so
			// it can go back to the pool (no-op unless ModePooled).
			k.PutCtx(ctx)
			if cost < 100 {
				cost = 100
			}
			if e.Now() >= start {
				p.opCosts.Observe(float64(cost))
			}
			e.After(cost, step)
		}
		// Stagger thread starts to avoid artificial convoys.
		eng.Schedule(setupEnd.Add(sim.Duration(t)), step)
	}
	return p, nil
}

// finish collects the run's Result after the engine drained. It runs
// on the coordinator once the shard's lane is quiescent (barrier- or
// init-phase).
func (p *preparedRun) finish() (*Result, error) {
	if p.stepErr != nil {
		return nil, p.stepErr
	}
	if p.done != p.threads {
		return nil, fmt.Errorf("harness: %d/%d threads finished", p.done, p.threads)
	}
	cfg, k := p.cfg, p.k
	res := collect(cfg, k, p.pol, p.wl, p.globalOps, p.start, p.base)
	res.OpCost = p.opCosts
	res.DegradedOps = p.degradedOps
	if p.plane != nil {
		res.FaultsInjected = p.plane.Injected()
		res.FaultTrace = p.plane.TraceString()
	}
	res.IORetries = k.FS.MQ.Retries
	res.IOHardFailures = k.FS.MQ.HardFailures
	res.Pressure = k.Pressure.Stats
	res.ReserveDips = k.Mem.Stats.ReserveDips
	res.ShrinkerStats = k.Pressure.ShrinkerStats()
	res.Trace = p.tracer
	res.TraceStats = p.tracer.Stats()
	res.Perf = PerfMeters{Mem: k.Mem.PerfCounters(), TraceCommits: p.tracer.SummaryCommits()}
	res.Perf.CtxFresh, res.Perf.CtxReused = k.CtxPoolCounters()
	res.Sanitize = k.SanitizeReport(p.eng.Now())
	if cfg.CrashReplay {
		res.CrashReplayed = true
		res.CrashViolation = crashReplayCheck(k)
	}
	return res, nil
}

// PerfMeters are one run's hot-path accounting meters (DESIGN.md §13):
// Mem carries the per-CPU accumulator and frame-pool counters,
// TraceCommits the tracer's batched summary commits (zero when tracing
// was off), and CtxFresh/CtxReused the op-context pool's behavior.
// All are deterministic at a given seed and mode.
type PerfMeters struct {
	Mem                 memsim.PerfCounters
	TraceCommits        uint64
	CtxFresh, CtxReused uint64
}

// crashReplayCheck crashes the FS and replays its journal, returning
// the first violated crash-consistency invariant (empty when clean).
// The fault plane is disarmed first: leftover scheduled injections
// must not fire inside the recovery path the oracle is judging.
func crashReplayCheck(k *kernel.Kernel) string {
	k.InjectFaults(nil)
	ctx := k.NewCtx(0)
	k.FS.Crash(ctx)
	if n := k.FS.Inodes(); n != 0 {
		return fmt.Sprintf("post-crash: %d in-memory inodes survived the teardown", n)
	}
	if n := k.FS.JournalPending(); n != 0 {
		return fmt.Sprintf("post-crash: %d uncommitted journal records survived", n)
	}
	if err := k.FS.Replay(ctx); err != nil {
		return fmt.Sprintf("replay failed: %v", err)
	}
	if n := k.FS.JournalPending(); n != 0 {
		return fmt.Sprintf("post-replay: %d journal records left pending", n)
	}
	if got, want := k.FS.Inodes(), k.FS.DurableInodes(); got != want {
		return fmt.Sprintf("post-replay: %d inodes materialized, durable image holds %d", got, want)
	}
	return ""
}

// statSnapshot captures the counters that are reported as
// measured-window deltas.
type statSnapshot struct {
	refs         [6]uint64
	allocsByNode map[memsim.NodeID][6]uint64
	migrated     uint64
	demotions    uint64
	promotions   uint64
	l4Hits       uint64
	l4Misses     uint64
	raIssued     uint64
	raHits       uint64
}

func snapshot(k *kernel.Kernel) statSnapshot {
	// Batched/indexed accounting lags the shared Stats between flushes;
	// materialize before reading so measured-window deltas are exact.
	k.Mem.SyncStats()
	st := statSnapshot{
		refs:         k.Mem.Stats.Refs,
		allocsByNode: make(map[memsim.NodeID][6]uint64),
		migrated:     k.Mem.Stats.MigratedPages,
		demotions:    k.Mem.Stats.Demotions,
		promotions:   k.Mem.Stats.Promotions,
		l4Hits:       k.Mem.Stats.L4Hits,
		l4Misses:     k.Mem.Stats.L4Misses,
		raIssued:     k.FS.Stats.ReadaheadIssued,
		raHits:       k.FS.Stats.ReadaheadHits,
	}
	for node, counts := range k.Mem.Stats.AllocsByClassNode {
		st.allocsByNode[node] = *counts
	}
	return st
}

func collect(cfg RunConfig, k *kernel.Kernel, pol kernel.Policy, wl workload.Workload, ops int, start sim.Time, base statSnapshot) *Result {
	mem := k.Mem
	mem.SyncStats()
	res := &Result{
		Policy:      pol.Name(),
		Workload:    wl.Name(),
		Ops:         ops,
		VirtualTime: k.Eng.Now().Sub(start),
		Mem:         mem.Stats,
	}
	if res.VirtualTime > 0 {
		res.Throughput = float64(ops) / res.VirtualTime.Seconds()
	}
	res.Mem.MigratedPages -= base.migrated
	res.Mem.Demotions -= base.demotions
	res.Mem.Promotions -= base.promotions
	res.Mem.L4Hits -= base.l4Hits
	res.Mem.L4Misses -= base.l4Misses
	slow := slowNodeOf(cfg)
	for class := 0; class < 6; class++ {
		c := memsim.Class(class)
		refs := mem.Stats.Refs[class] - base.refs[class]
		if c.Kernel() {
			res.KernRefs += refs
		} else if c == memsim.ClassApp {
			res.AppRefs += refs
		}
		for node, counts := range mem.Stats.AllocsByClassNode {
			delta := counts[class] - base.allocsByNode[node][class]
			res.AllocsByClass[class] += delta
			res.TotalAllocsByClass[class] += counts[class]
			if slow == node {
				res.SlowAllocsByClass[class] += delta
			}
		}
	}
	res.AppLifetime = k.Lifetimes.MeanLifetime("app")
	res.SlabLifetime = k.Lifetimes.MeanLifetime("slab")
	res.CacheLifetime = k.Lifetimes.MeanLifetime("cache")
	res.ReadaheadIssued = k.FS.Stats.ReadaheadIssued - base.raIssued
	res.ReadaheadHits = k.FS.Stats.ReadaheadHits - base.raHits
	res.FS = k.FS.Stats
	res.Net = k.Net.Stats
	res.DevBusy = sim.Duration(k.FS.MQ.Dev.BusyUntil())
	if kp, ok := pol.(*policy.KLOCs); ok {
		res.KlocMetadataBytes = kp.MetadataBytes()
		res.FastPathHitRate = kp.Reg.FastPathHitRate()
	}
	return res
}

// slowNodeOf identifies the "slow"/remote node for allocation slicing:
// the slow tier on two-tier, socket 1 on Optane (the socket the task
// does not start on).
func slowNodeOf(cfg RunConfig) memsim.NodeID {
	if cfg.Platform == Optane {
		return memsim.Socket1Node
	}
	return memsim.SlowNode
}
