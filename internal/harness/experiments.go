package harness

import (
	"fmt"

	"kloc/internal/fault"
	"kloc/internal/kobj"
	"kloc/internal/memsim"
	"kloc/internal/policy"
	"kloc/internal/pressure"
	"kloc/internal/sim"
	"kloc/internal/workload"
)

// Options tunes an experiment batch. Durations are virtual time; wall
// time scales with them roughly linearly.
type Options struct {
	ScaleDiv int
	Duration sim.Duration
	Seed     uint64
	// Workloads restricts the workload set (nil = the experiment's
	// default set).
	Workloads []string
}

// DefaultOptions runs at full experiment fidelity.
func DefaultOptions() Options {
	return Options{ScaleDiv: 64, Duration: 200 * sim.Millisecond, Seed: 42}
}

// QuickOptions trades fidelity for wall time (bench/CI mode).
func QuickOptions() Options {
	return Options{ScaleDiv: 64, Duration: 60 * sim.Millisecond, Seed: 42}
}

func (o Options) workloads(def []string) []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return def
}

// perfWorkloads are the Fig 4/5/6 set (§6.1 excludes Spark from the
// performance studies).
var perfWorkloads = []string{"filebench", "rocksdb", "redis", "cassandra"}

// allWorkloads are the Fig 2 characterization set.
var allWorkloads = []string{"filebench", "rocksdb", "redis", "cassandra", "spark"}

func (o Options) run(cfg RunConfig) (*Result, error) {
	cfg.ScaleDiv = o.ScaleDiv
	cfg.Duration = o.Duration
	cfg.Seed = o.Seed
	return Run(cfg)
}

// --- Fig 2: characterization ---

// Fig2a reproduces Figure 2a: the memory-footprint split between
// application pages, page-cache pages, and slab allocations, plus raw
// page-allocation counts.
func Fig2a(o Options) (*Table, error) {
	t := &Table{
		Title:  "Figure 2a — memory footprint: kernel objects vs application pages (large inputs)",
		Note:   "shares of total page allocations; raw counts in thousands of pages (scaled platform)",
		Header: []string{"workload", "app%", "page-cache%", "slab%", "total-Kpages"},
	}
	for _, wl := range o.workloads(allWorkloads) {
		res, err := o.run(RunConfig{PolicyName: "naive", Workload: wl})
		if err != nil {
			return nil, err
		}
		app := float64(res.TotalAllocsByClass[memsim.ClassApp])
		cache := float64(res.TotalAllocsByClass[memsim.ClassCache])
		slab := float64(res.TotalAllocsByClass[memsim.ClassSlab] +
			res.TotalAllocsByClass[memsim.ClassKloc] + res.TotalAllocsByClass[memsim.ClassMeta])
		total := app + cache + slab
		if total == 0 {
			total = 1
		}
		t.AddRow(wl, pct(app/total), pct(cache/total), pct(slab/total),
			f1(total/1000))
	}
	return t, nil
}

// Fig2b reproduces Figure 2b: OS vs application page-allocation shares
// for small (10 GB-class) and large (40 GB-class) inputs.
func Fig2b(o Options) (*Table, error) {
	t := &Table{
		Title:  "Figure 2b — OS vs application page allocations, small and large inputs",
		Header: []string{"workload", "small-OS%", "small-app%", "large-OS%", "large-app%"},
	}
	for _, wl := range o.workloads(allWorkloads) {
		row := []string{wl}
		for _, small := range []bool{true, false} {
			res, err := o.run(RunConfig{
				PolicyName: "naive", Workload: wl,
				WLConfig: workload.Config{Small: small},
			})
			if err != nil {
				return nil, err
			}
			app := float64(res.TotalAllocsByClass[memsim.ClassApp])
			os := float64(res.TotalAllocsByClass[memsim.ClassCache] +
				res.TotalAllocsByClass[memsim.ClassSlab] +
				res.TotalAllocsByClass[memsim.ClassKloc] + res.TotalAllocsByClass[memsim.ClassMeta])
			total := app + os
			if total == 0 {
				total = 1
			}
			row = append(row, pct(os/total), pct(app/total))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig2c reproduces Figure 2c: the share of memory references hitting
// kernel objects versus application pages.
func Fig2c(o Options) (*Table, error) {
	t := &Table{
		Title:  "Figure 2c — memory references: kernel objects vs application pages",
		Header: []string{"workload", "kernel-refs%", "app-refs%"},
	}
	for _, wl := range o.workloads(allWorkloads) {
		res, err := o.run(RunConfig{PolicyName: "naive", Workload: wl})
		if err != nil {
			return nil, err
		}
		total := float64(res.KernRefs + res.AppRefs)
		if total == 0 {
			total = 1
		}
		t.AddRow(wl, pct(float64(res.KernRefs)/total), pct(float64(res.AppRefs)/total))
	}
	return t, nil
}

// Fig2d reproduces Figure 2d: mean lifetimes of application pages, slab
// objects, and page-cache pages (log-scale in the paper; we print the
// means).
func Fig2d(o Options) (*Table, error) {
	t := &Table{
		Title:  "Figure 2d — object lifetimes (mean)",
		Note:   "kernel objects live orders of magnitude shorter than application pages (§3.3)",
		Header: []string{"workload", "app-pages", "slab-objects", "page-cache"},
	}
	for _, wl := range o.workloads([]string{"rocksdb", "redis"}) {
		res, err := o.run(RunConfig{PolicyName: "naive", Workload: wl})
		if err != nil {
			return nil, err
		}
		app := res.AppLifetime.String()
		if res.AppLifetime == 0 {
			app = ">run (never freed)"
		}
		t.AddRow(wl, app, res.SlabLifetime.String(), res.CacheLifetime.String())
	}
	return t, nil
}

// --- Fig 4: two-tier speedups ---

// Fig4 reproduces Figure 4: speedup over All-Slow-Mem for every
// two-tier strategy on every performance workload.
func Fig4(o Options) (*Table, error) {
	cols := append([]string{"workload"}, policy.TwoTierNames()...)
	t := &Table{
		Title:  "Figure 4 — two-tier platform speedups (normalized to All Slow Mem)",
		Header: cols,
	}
	for _, wl := range o.workloads(perfWorkloads) {
		base, err := o.run(RunConfig{PolicyName: "all-slow", Workload: wl})
		if err != nil {
			return nil, err
		}
		row := []string{wl}
		for _, pol := range policy.TwoTierNames() {
			res, err := o.run(RunConfig{PolicyName: pol, Workload: wl})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(res.Throughput/base.Throughput))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// --- Table 6: KLOC metadata overhead ---

// Table6 reproduces Table 6: the memory-usage increase from KLOC
// metadata, reported at full (unscaled) size.
func Table6(o Options) (*Table, error) {
	t := &Table{
		Title:  "Table 6 — KLOC metadata memory overhead",
		Note:   "simulated metadata bytes scaled back to the paper's full-size platform",
		Header: []string{"workload", "overhead-MB(full-scale)", "overhead-vs-fast-mem"},
	}
	for _, wl := range o.workloads(allWorkloads) {
		res, err := o.run(RunConfig{PolicyName: "klocs", Workload: wl})
		if err != nil {
			return nil, err
		}
		fullBytes := float64(res.KlocMetadataBytes) * float64(o.ScaleDiv)
		fastBytes := 8e9 // 8 GB fast tier
		t.AddRow(wl, f1(fullBytes/1e6), pct(fullBytes/fastBytes))
	}
	return t, nil
}

// --- Fig 5a: Optane Memory Mode ---

// Fig5a reproduces Figure 5a: Memory-Mode speedups over the all-remote
// worst case, with the task migrating sockets mid-run.
func Fig5a(o Options) (*Table, error) {
	cols := append([]string{"workload"}, policy.OptaneNames()...)
	t := &Table{
		Title:  "Figure 5a — Optane Memory Mode speedups (normalized to all-remote)",
		Header: cols,
	}
	for _, wl := range o.workloads(perfWorkloads) {
		base, err := o.run(RunConfig{
			Platform: Optane, PolicyName: "all-remote", Workload: wl, MoveTaskAtFrac: 0.1,
		})
		if err != nil {
			return nil, err
		}
		row := []string{wl}
		for _, pol := range policy.OptaneNames() {
			res, err := o.run(RunConfig{
				Platform: Optane, PolicyName: pol, Workload: wl, MoveTaskAtFrac: 0.1,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(res.Throughput/base.Throughput))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// --- Fig 5b: sources of improvement ---

// Fig5b reproduces Figure 5b: RocksDB pages allocated in slow memory
// (page cache and slab) and pages migrated, per strategy.
func Fig5b(o Options) (*Table, error) {
	t := &Table{
		Title:  "Figure 5b — RocksDB: slow-memory allocations and migrations (two-tier)",
		Header: []string{"strategy", "slow-cache-Kpages", "slow-slab-Kpages", "migrated-Kpages", "demoted", "promoted"},
	}
	for _, pol := range []string{"naive", "nimble", "nimble++", "klocs"} {
		res, err := o.run(RunConfig{PolicyName: pol, Workload: "rocksdb"})
		if err != nil {
			return nil, err
		}
		slowSlab := res.SlowAllocsByClass[memsim.ClassSlab] +
			res.SlowAllocsByClass[memsim.ClassKloc] + res.SlowAllocsByClass[memsim.ClassMeta]
		t.AddRow(pol,
			f1(float64(res.SlowAllocsByClass[memsim.ClassCache])/1000),
			f1(float64(slowSlab)/1000),
			f1(float64(res.Mem.MigratedPages)/1000),
			count(res.Mem.Demotions), count(res.Mem.Promotions))
	}
	return t, nil
}

// --- Fig 5c: object-type sensitivity ---

// fig5cConfigs returns the cumulative group sets of §7.3: app-only,
// then +page-cache, +journal, +slab, +socket-buffers, +block-io.
func fig5cConfigs() []struct {
	Name   string
	Groups []kobj.Group
} {
	cum := []kobj.Group{}
	out := []struct {
		Name   string
		Groups []kobj.Group
	}{{"app-only", []kobj.Group{}}}
	for _, g := range kobj.Groups() {
		cum = append(append([]kobj.Group{}, cum...), g)
		out = append(out, struct {
			Name   string
			Groups []kobj.Group
		}{"+" + g.String(), cum})
	}
	return out
}

// Fig5c reproduces Figure 5c: the contribution of each kernel-object
// group to KLOC performance, normalized to tiering application pages
// only (excluded objects stay in fast memory).
func Fig5c(o Options) (*Table, error) {
	configs := fig5cConfigs()
	cols := []string{"workload"}
	for _, c := range configs {
		cols = append(cols, c.Name)
	}
	t := &Table{
		Title:  "Figure 5c — incremental kernel-object group contribution (speedup vs app-only KLOCs)",
		Header: cols,
	}
	wls := o.workloads([]string{"rocksdb", "redis"})
	for _, wl := range wls {
		row := []string{wl}
		var base float64
		for i, c := range configs {
			kcfg := policy.DefaultKLOCConfig()
			kcfg.IncludedGroups = c.Groups
			res, err := o.run(RunConfig{
				Policy: policy.NewKLOCs(kcfg), PolicyName: "klocs", Workload: wl,
			})
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = res.Throughput
			}
			row = append(row, f2(res.Throughput/base))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// --- Fig 6: capacity and bandwidth sensitivity ---

// Fig6 reproduces Figure 6: average speedup over All-Slow-Mem across
// workloads, sweeping fast-memory capacity {4,8,32 GB} and fast:slow
// bandwidth ratio {8,4,2}, with min/max variance across workloads.
func Fig6(o Options) (*Table, error) {
	t := &Table{
		Title:  "Figure 6 — sensitivity to fast-memory capacity and bandwidth differential",
		Note:   "avg [min..max] speedup vs All Slow Mem across workloads",
		Header: []string{"capacity", "bw-ratio", "nimble", "nimble++", "klocs"},
	}
	pols := []string{"nimble", "nimble++", "klocs"}
	wls := o.workloads(perfWorkloads)
	for _, capGB := range []float64{4, 8, 32} {
		for _, ratio := range []float64{8, 4, 2} {
			ttCfg := memsim.DefaultTwoTier(o.ScaleDiv)
			ttCfg.FastPages = memsim.GB(capGB) / o.ScaleDiv
			ttCfg.BandwidthRatio = ratio
			ttCfg.SlowLatency = 0 // derive from ratio

			cells := []string{fmt.Sprintf("%.0fGB", capGB), fmt.Sprintf("1:%.0f", ratio)}
			bases := make(map[string]float64)
			for _, wl := range wls {
				cfg := ttCfg
				base, err := o.run(RunConfig{PolicyName: "all-slow", Workload: wl, TwoTier: &cfg})
				if err != nil {
					return nil, err
				}
				bases[wl] = base.Throughput
			}
			for _, pol := range pols {
				sum, minS, maxS := 0.0, 0.0, 0.0
				for i, wl := range wls {
					cfg := ttCfg
					res, err := o.run(RunConfig{PolicyName: pol, Workload: wl, TwoTier: &cfg})
					if err != nil {
						return nil, err
					}
					s := res.Throughput / bases[wl]
					sum += s
					if i == 0 || s < minS {
						minS = s
					}
					if i == 0 || s > maxS {
						maxS = s
					}
				}
				cells = append(cells, fmt.Sprintf("%.2f [%.2f..%.2f]", sum/float64(len(wls)), minS, maxS))
			}
			t.AddRow(cells...)
		}
	}
	return t, nil
}

// --- §7.3 prefetch integration ---

// Prefetch reproduces the §7.3 readahead study: no readahead, plain
// readahead, and KLOC-aware readahead under the KLOCs policy, on a
// memory-pressured platform (total memory below the dataset) so that
// cold reads actually reach the device and prefetching has latency to
// hide.
func Prefetch(o Options) (*Table, error) {
	t := &Table{
		Title:  "§7.3 — KLOC-aware I/O prefetching (RocksDB, memory-pressured platform)",
		Header: []string{"config", "throughput", "speedup", "readahead-issued", "readahead-hits"},
	}
	// Slow tier shrunk so the page cache cannot hold the dataset.
	ttCfg := memsim.DefaultTwoTier(o.ScaleDiv)
	ttCfg.SlowPages = memsim.GB(12) / o.ScaleDiv
	configs := []struct {
		name   string
		window int
		klocRA bool
	}{
		{"no-readahead", -1, false},
		{"readahead", 8, false},
		{"readahead+KLOCs", 8, true},
	}
	var base float64
	for _, c := range configs {
		cfg := ttCfg
		res, err := o.run(RunConfig{
			PolicyName: "klocs", Workload: "rocksdb",
			TwoTier: &cfg, KlocPrefetch: c.klocRA, ReadaheadWindow: c.window,
		})
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.Throughput
		}
		t.AddRow(c.name, f1(res.Throughput), f2(res.Throughput/base),
			count(res.ReadaheadIssued), count(res.ReadaheadHits))
	}
	return t, nil
}

// --- design ablations (DESIGN.md §4) ---

// Ablations evaluates the design choices §4 calls out: the per-CPU
// fast path, the split rbtree, driver-level socket extraction, and the
// relocatable KLOC allocator.
func Ablations(o Options) (*Table, error) {
	t := &Table{
		Title:  "Design ablations — KLOCs variants (throughput relative to the full design)",
		Header: []string{"variant", "workload", "relative-throughput", "fastpath-hit-rate"},
	}
	type variant struct {
		name string
		mod  func(*policy.KLOCConfig)
		wl   string
	}
	variants := []variant{
		{"full-design", func(*policy.KLOCConfig) {}, "rocksdb"},
		{"no-percpu-fastpath", func(c *policy.KLOCConfig) { c.FastPath = false }, "rocksdb"},
		{"single-rbtree", func(c *policy.KLOCConfig) { c.SplitTrees = false }, "rocksdb"},
		{"pinned-slabs", func(c *policy.KLOCConfig) { c.RelocatableSlabs = false }, "rocksdb"},
		{"full-design", func(*policy.KLOCConfig) {}, "redis"},
		{"tcp-layer-demux", func(c *policy.KLOCConfig) { c.DriverExtract = false }, "redis"},
	}
	base := map[string]float64{}
	for _, v := range variants {
		cfg := policy.DefaultKLOCConfig()
		v.mod(&cfg)
		res, err := o.run(RunConfig{
			Policy: policy.NewKLOCs(cfg), PolicyName: "klocs", Workload: v.wl,
		})
		if err != nil {
			return nil, err
		}
		if v.name == "full-design" {
			base[v.wl] = res.Throughput
		}
		t.AddRow(v.name, v.wl, f2(res.Throughput/base[v.wl]), f2(res.FastPathHitRate))
	}
	return t, nil
}

// --- robustness: fault-injection sweep ---

// Faults sweeps a uniform per-consult fault probability across every
// injection point (block I/O, slab/page allocation, migration, packet
// ingress) for the two-tier strategies. Rate 0 arms the plane but never
// fires, demonstrating bit-identical behaviour to an unfaulted run;
// higher rates exercise the errno propagation, retry/backoff, and
// graceful-degradation paths end to end — no run may abort.
func Faults(o Options) (*Table, error) {
	t := &Table{
		Title: "Robustness — deterministic fault-injection sweep (two-tier)",
		Note:  "uniform fault probability per consult at every injection point; same seed ⇒ same trace",
		Header: []string{"workload", "strategy", "rate", "throughput", "degraded-ops",
			"injected", "io-retries", "io-hard-fails", "alloc-faults", "mig-faults", "rx-drops",
			"direct-reclaims"},
	}
	rates := []float64{0, 1e-4, 1e-3}
	for _, wl := range o.workloads([]string{"rocksdb", "redis"}) {
		for _, pol := range []string{"naive", "nimble", "nimble++", "klocs"} {
			for _, rate := range rates {
				fcfg := fault.Uniform(o.Seed, rate)
				res, err := o.run(RunConfig{PolicyName: pol, Workload: wl, Fault: &fcfg})
				if err != nil {
					return nil, err
				}
				t.AddRow(wl, pol, fmt.Sprintf("%.0e", rate), f1(res.Throughput),
					count(res.DegradedOps), count(res.FaultsInjected),
					count(res.IORetries), count(res.IOHardFailures),
					count(res.Mem.AllocFaults), count(res.Mem.MigrationFaults),
					count(res.Net.InjectedDrops), count(res.Pressure.DirectReclaims))
			}
		}
	}
	return t, nil
}

// --- robustness: memory-pressure sweep ---

// Pressure reproduces graceful degradation under capacity pressure: the
// fast tier is sized to a fraction of each workload's dataset footprint
// and the full pressure plane is armed — min/low/high watermarks on the
// fast node, the kswapd-analog background reclaimer, bounded direct
// reclaim through the shrinker registry, and OOM-grade context eviction
// as the last resort. Every configuration must complete: pressure costs
// throughput, never correctness, and the same seed yields the same
// counters.
func Pressure(o Options) (*Table, error) {
	t := &Table{
		Title: "Robustness — memory-pressure sweep (fast tier sized as a fraction of the dataset)",
		Note:  "watermarks + kswapd armed; shrinker reclaim and OOM eviction keep every run completing",
		Header: []string{"workload", "fast/dataset", "fast-pages", "throughput", "degraded-ops",
			"direct-reclaims", "kswapd-pages", "oom-evictions", "reserve-dips", "wm-blocks"},
	}
	fracs := []float64{0.50, 0.75, 0.90}
	for _, wl := range o.workloads([]string{"rocksdb", "redis"}) {
		// Probe the workload's scaled footprint to size the fast tier.
		probe, err := workload.ByName(wl, workload.Config{ScaleDiv: o.ScaleDiv})
		if err != nil {
			return nil, err
		}
		sized, ok := probe.(workload.Sized)
		if !ok {
			return nil, fmt.Errorf("pressure: workload %q does not report a dataset size", wl)
		}
		dataset := sized.DatasetPages()
		for _, frac := range fracs {
			ttCfg := memsim.DefaultTwoTier(o.ScaleDiv)
			ttCfg.FastPages = int(frac * float64(dataset))
			// Size total memory to 9/8 of the dataset: setup fits,
			// but steady-state churn (WAL rotation, checkpoints,
			// compaction transients, slab growth) overruns the slack
			// and has to be paid for by kswapd and direct reclaim.
			ttCfg.SlowPages = dataset + dataset/32 - ttCfg.FastPages
			pcfg := pressure.Config{KswapdPeriod: sim.Millisecond}
			res, err := o.run(RunConfig{
				PolicyName: "klocs", Workload: wl,
				TwoTier: &ttCfg, Pressure: &pcfg,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(wl, pct(frac), count(uint64(ttCfg.FastPages)), f1(res.Throughput),
				count(res.DegradedOps), count(res.Pressure.DirectReclaims),
				count(res.Pressure.KswapdPages), count(res.Pressure.OOMEvictions),
				count(res.ReserveDips), count(res.Mem.WatermarkBlocks))
		}
	}
	return t, nil
}

// Experiments maps experiment IDs to their functions.
var Experiments = map[string]func(Options) (*Table, error){
	"fig2a":     Fig2a,
	"fig2b":     Fig2b,
	"fig2c":     Fig2c,
	"fig2d":     Fig2d,
	"fig4":      Fig4,
	"table6":    Table6,
	"fig5a":     Fig5a,
	"fig5b":     Fig5b,
	"fig5c":     Fig5c,
	"fig6":      Fig6,
	"prefetch":  Prefetch,
	"ablations": Ablations,
	"faults":    Faults,
	"pressure":  Pressure,
}

// ExperimentNames lists experiments in presentation order.
func ExperimentNames() []string {
	return []string{"fig2a", "fig2b", "fig2c", "fig2d", "fig4", "table6",
		"fig5a", "fig5b", "fig5c", "fig6", "prefetch", "ablations", "faults", "pressure"}
}
