package harness

import (
	"reflect"
	"strings"
	"testing"

	"kloc/internal/memsim"
	"kloc/internal/pressure"
	"kloc/internal/sim"
	"kloc/internal/workload"
)

// pressured returns a quick run config with the full plane armed:
// watermarks (derived) and the kswapd daemon.
func pressured(wl string) RunConfig {
	return quickRun(RunConfig{
		PolicyName: "klocs", Workload: wl,
		Pressure: &pressure.Config{KswapdPeriod: sim.Millisecond},
	})
}

// TestPressureRunDeterminism: with watermarks and kswapd armed, two
// same-seed runs must agree on every metric — including the reclaim
// counters, which would drift first if any reclaim path consulted map
// order or shared RNG state.
func TestPressureRunDeterminism(t *testing.T) {
	cfg := pressured("rocksdb")
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("pressured run nondeterministic:\na: %+v\nb: %+v", a, b)
	}
}

// TestPressureTightFastTierCompletes is the headline robustness claim:
// a workload whose dataset is 2x the fast tier — with total memory only
// 9/8 of the dataset — runs to completion under watermarks + kswapd,
// with no panic and bounded degradation.
func TestPressureTightFastTierCompletes(t *testing.T) {
	for _, wl := range []string{"rocksdb", "redis"} {
		probe, err := workload.ByName(wl, workload.Config{ScaleDiv: 256})
		if err != nil {
			t.Fatal(err)
		}
		dataset := probe.(workload.Sized).DatasetPages()
		tt := memsim.DefaultTwoTier(256)
		tt.FastPages = dataset / 2
		tt.SlowPages = dataset + dataset/8 - tt.FastPages
		cfg := pressured(wl)
		cfg.TwoTier = &tt
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s under 2x pressure: %v", wl, err)
		}
		if res.Ops <= 0 || res.Throughput <= 0 {
			t.Fatalf("%s made no progress: %+v", wl, res)
		}
		// Degradation is bounded: the overwhelming majority of ops
		// complete normally.
		if res.DegradedOps*10 > uint64(res.Ops) {
			t.Fatalf("%s: %d/%d ops degraded", wl, res.DegradedOps, res.Ops)
		}
		// The plane actually engaged.
		if res.Pressure.KswapdWakeups == 0 && res.Pressure.DirectReclaims == 0 &&
			res.Mem.WatermarkBlocks == 0 {
			t.Fatalf("%s: pressure plane never engaged: %+v", wl, res.Pressure)
		}
	}
}

// TestPressureShrinkerStatsReported: per-shrinker accounting reaches
// the result, in registration order.
func TestPressureShrinkerStatsReported(t *testing.T) {
	res, err := Run(pressured("rocksdb"))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(res.ShrinkerStats))
	for i, s := range res.ShrinkerStats {
		names[i] = s.Name
	}
	want := []string{"fs.pagecache", "fs.dentry", "net.skbuff"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("shrinker stats = %v, want %v", names, want)
	}
}

// TestPressureExperimentRuns: the sweep table builds with the right
// shape and the pressure counters land in the columns.
func TestPressureExperimentRuns(t *testing.T) {
	o := quick()
	o.Workloads = []string{"rocksdb"}
	tbl, err := Pressure(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want one per fraction", len(tbl.Rows))
	}
	rendered := tbl.String()
	for _, col := range []string{"fast/dataset", "direct-reclaims", "kswapd-pages",
		"oom-evictions", "reserve-dips"} {
		if !strings.Contains(rendered, col) {
			t.Fatalf("missing column %q in:\n%s", col, rendered)
		}
	}
}
