package harness

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"

	"kloc/internal/memsim"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

func shardTestConfig() ShardsConfig {
	// Byte-identity across worker counts holds per epoch, so the
	// virtual duration only buys more of the same coverage — shrink it
	// under the race detector to keep the package inside the default
	// test timeout on slow hosts.
	duration := 20 * sim.Millisecond
	if raceDetectorEnabled {
		duration = 5 * sim.Millisecond
	}
	return ShardsConfig{
		Base: RunConfig{
			PolicyName: "klocs",
			Workload:   "rocksdb",
			Seed:       42,
			Duration:   duration,
			Trace:      &trace.Config{Events: []string{"alloc.*", "memsim.migrate"}},
		},
		Shards:  3,
		Workers: 2,
	}
}

// fingerprint renders a Result's full observable surface (pointer
// fields rendered through their exports) so runs can be compared
// byte-for-byte.
func fingerprint(r *Result) string {
	traceText := ""
	if r.Trace != nil {
		traceText = r.Trace.TextString()
	}
	clone := *r
	clone.Trace = nil
	// AllocsByClassNode maps to pointers; render the pointees (sorted
	// by node) or %+v would fingerprint heap addresses.
	var allocs strings.Builder
	nodes := make([]int, 0, len(clone.Mem.AllocsByClassNode))
	for n := range clone.Mem.AllocsByClassNode {
		nodes = append(nodes, int(n))
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		fmt.Fprintf(&allocs, "node%d:%v ", n, *clone.Mem.AllocsByClassNode[memsim.NodeID(n)])
	}
	clone.Mem.AllocsByClassNode = nil
	return fmt.Sprintf("%+v\n--allocs--\n%s\n--trace--\n%s", clone, allocs.String(), traceText)
}

// TestRunShardsMatchesSoloRuns: shard i of a fleet must be
// byte-identical to a solo Run at ShardSeed(seed, i) — the sharded
// executor changes scheduling, never results.
func TestRunShardsMatchesSoloRuns(t *testing.T) {
	cfg := shardTestConfig()
	fleet, err := RunShards(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Results) != cfg.Shards {
		t.Fatalf("got %d results, want %d", len(fleet.Results), cfg.Shards)
	}
	for s, got := range fleet.Results {
		solo := cfg.Base
		solo.Seed = ShardSeed(cfg.Base.Seed, s)
		want, err := Run(solo)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(got) != fingerprint(want) {
			t.Fatalf("shard %d diverged from its solo run", s)
		}
	}
}

// TestRunShardsWorkerCountInvariance: worker count is a wall-clock
// knob only; per-shard results and traces must be byte-identical at
// 1, 2, and 4 workers.
func TestRunShardsWorkerCountInvariance(t *testing.T) {
	prints := func(workers int) []string {
		cfg := shardTestConfig()
		cfg.Workers = workers
		fleet, err := RunShards(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(fleet.Results))
		for s, r := range fleet.Results {
			out[s] = fingerprint(r)
		}
		return out
	}
	want := prints(1)
	for _, workers := range []int{2, 4} {
		if got := prints(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d produced different shard results than workers=1", workers)
		}
	}
}

// TestShardedDeterminismAcrossGOMAXPROCS is the satellite-2 gate: the
// same seed at GOMAXPROCS=1, 2, and NumCPU must produce byte-identical
// per-shard results and trace exports. (The perfbench suite pins the
// same property for BENCH_perf.json rows, and the eval byte-stability
// tests pin it for eval output.)
func TestShardedDeterminismAcrossGOMAXPROCS(t *testing.T) {
	run := func() []string {
		cfg := shardTestConfig()
		cfg.Workers = 4
		fleet, err := RunShards(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(fleet.Results))
		for s, r := range fleet.Results {
			out[s] = fingerprint(r)
		}
		return out
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	want := run()
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		if got := run(); !reflect.DeepEqual(got, want) {
			t.Fatalf("GOMAXPROCS=%d changed shard results", procs)
		}
	}
}

// TestRunShardsEngineTrace: the coordinator tracer records barrier and
// drain events without perturbing shard results, and is itself
// deterministic.
func TestRunShardsEngineTrace(t *testing.T) {
	cfg := shardTestConfig()
	plain, err := RunShards(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EngineTrace = &trace.Config{}
	traced, err := RunShards(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range plain.Results {
		if fingerprint(plain.Results[s]) != fingerprint(traced.Results[s]) {
			t.Fatalf("engine tracer perturbed shard %d", s)
		}
	}
	if traced.EngineTrace == nil {
		t.Fatal("engine tracer missing")
	}
	st := traced.EngineTrace.Stats()
	var barriers, drains uint64
	for _, nc := range st.ByName {
		switch nc.Name {
		case trace.SimBarrier:
			barriers = nc.Count
		case trace.SimLaneDrain:
			drains = nc.Count
		}
	}
	if barriers == 0 {
		t.Fatal("no sim.barrier events recorded")
	}
	if barriers != traced.Lanes.Epochs {
		t.Fatalf("sim.barrier count %d != epochs %d", barriers, traced.Lanes.Epochs)
	}
	if drains != uint64(cfg.Shards) {
		t.Fatalf("sim.lane.drain count %d, want %d (one per shard)", drains, cfg.Shards)
	}
	// Same fleet, same seed: the coordinator trace is byte-stable too.
	again, err := RunShards(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if traced.EngineTrace.TextString() != again.EngineTrace.TextString() {
		t.Fatal("coordinator trace differs between same-seed fleets")
	}
}
