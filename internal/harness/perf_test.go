package harness

import (
	"strings"
	"testing"

	"kloc/internal/metrics"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

func perfTestConfig(mode metrics.Mode) RunConfig {
	return RunConfig{
		PolicyName: "klocs",
		Workload:   "rocksdb",
		Duration:   20 * sim.Millisecond,
		Accounting: mode,
		Trace:      &trace.Config{},
	}
}

// TestAccountingModesAreInvisible: the batched+pooled+indexed default
// accounting path must be pure bookkeeping — a run under LegacyMode
// (per-event counters, no recycling, map indices) and a run under
// DefaultMode at the same seed must agree on every simulation result,
// down to byte-identical trace exports. This is the contract that lets
// the fast path be the default (DESIGN.md §13).
func TestAccountingModesAreInvisible(t *testing.T) {
	legacy, err := Run(perfTestConfig(metrics.LegacyMode()))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(perfTestConfig(metrics.DefaultMode()))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Ops != fast.Ops || legacy.VirtualTime != fast.VirtualTime ||
		legacy.Throughput != fast.Throughput {
		t.Fatalf("accounting mode perturbed the run: ops %d vs %d, vt %v vs %v",
			legacy.Ops, fast.Ops, legacy.VirtualTime, fast.VirtualTime)
	}
	if legacy.Mem.Refs != fast.Mem.Refs || legacy.Mem.MigratedPages != fast.Mem.MigratedPages ||
		legacy.Mem.Demotions != fast.Mem.Demotions || legacy.Mem.Promotions != fast.Mem.Promotions {
		t.Fatalf("accounting mode perturbed memory stats:\n%+v\n%+v", legacy.Mem, fast.Mem)
	}
	if legacy.FS != fast.FS {
		t.Fatalf("accounting mode perturbed FS stats:\n%+v\n%+v", legacy.FS, fast.FS)
	}
	if legacy.Trace.TextString() != fast.Trace.TextString() {
		t.Fatal("text trace differs between legacy and default accounting")
	}
	var jl, jf strings.Builder
	if err := legacy.Trace.WriteChrome(&jl); err != nil {
		t.Fatal(err)
	}
	if err := fast.Trace.WriteChrome(&jf); err != nil {
		t.Fatal(err)
	}
	if jl.String() != jf.String() {
		t.Fatal("chrome trace differs between legacy and default accounting")
	}
}

// TestPerfMetersReportBookkeeping: the default mode must actually take
// the fast paths — recycled ctxs and frames, batched commits — and the
// legacy mode must not, so the perf meters are evidence, not noise.
func TestPerfMetersReportBookkeeping(t *testing.T) {
	legacy, err := Run(perfTestConfig(metrics.LegacyMode()))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(perfTestConfig(metrics.DefaultMode()))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Perf.CtxReused == 0 {
		t.Fatal("default mode reused no ctx records")
	}
	if fast.Perf.Mem.FramesReused == 0 {
		t.Fatal("default mode reused no frames")
	}
	if fast.Perf.Mem.AccCommits == 0 || fast.Perf.Mem.AccAdds == 0 {
		t.Fatal("default mode committed no batched accumulator deltas")
	}
	if legacy.Perf.CtxReused != 0 || legacy.Perf.Mem.FramesReused != 0 ||
		legacy.Perf.Mem.AccCommits != 0 {
		t.Fatalf("legacy mode took fast paths: %+v", legacy.Perf)
	}
}
