// Package trace is the simulator's tracepoint-analog observability
// plane. The paper's characterization figures (Fig 2's footprints and
// lifetimes, Fig 4/5's placement and migration behaviour) were produced
// by instrumenting Linux allocation sites; this package gives the
// simulation the same first-class lens. Each subsystem declares named
// trace events — the analog of Linux tracepoints like kmem:kmalloc or
// block:block_rq_issue — and emits them from the code path that models
// the corresponding kernel site, carrying the virtual timestamp, the
// KLOC context (inode/socket number), the object class, the memory
// node/tier, and a size.
//
// Events land in a bounded ring buffer (like ftrace's per-CPU rings):
// memory stays fixed no matter how long the run is, and once the ring
// wraps the oldest events are overwritten and counted as dropped.
// Independent of the ring, the tracer keeps incremental per-event-name
// and per-context counters bucketed into virtual-time windows, so
// summary statistics cover the whole run even after drops.
//
// Like the fault and pressure planes, the tracer is nil-safe: every
// subsystem holds a possibly-nil *Tracer and calls Emit
// unconditionally. The plane is strictly passive — emitting charges no
// virtual cost and draws no randomness — so a run with tracing
// disabled (or enabled) is bit-identical to a run with no tracer at
// all, and two same-seed runs produce byte-identical trace files.
//
// The event catalog, field semantics, and export formats are documented
// in OBSERVABILITY.md; DESIGN.md §9 covers the model.
package trace

import (
	"path"
	"sort"

	"kloc/internal/metrics"
	"kloc/internal/sim"
)

// Name identifies one trace event type, dotted subsystem-first like a
// Linux tracepoint ("alloc.slab" ~ kmem:kmalloc).
type Name string

// The trace event catalog. Emitting sites and field semantics are
// documented per event in OBSERVABILITY.md.
const (
	// AllocSlab: a slab-class kernel object was allocated (fs, netsim).
	AllocSlab Name = "alloc.slab"
	// AllocPage: a page-class allocation — page-cache/driver-buffer
	// kernel objects (fs, netsim) or application pages (kernel).
	AllocPage Name = "alloc.page"
	// ObjFree: a kernel object or application page was freed.
	ObjFree Name = "obj.free"
	// JournalCommit: the filesystem journal committed a transaction.
	JournalCommit Name = "fs.journal.commit"
	// BlockDispatch: the blk_mq layer dispatched a storage command.
	BlockDispatch Name = "blockdev.dispatch"
	// Migrate: one page frame moved between memory nodes.
	Migrate Name = "memsim.migrate"
	// NetRx: one ingress segment was delivered to a socket backlog.
	NetRx Name = "net.rx"
	// NetTx: one egress segment left through the NIC.
	NetTx Name = "net.tx"
	// KswapdWake: the background reclaimer woke below the low watermark.
	KswapdWake Name = "pressure.kswapd.wake"
	// DirectReclaim: an allocation slow path entered direct reclaim.
	DirectReclaim Name = "pressure.direct_reclaim"
	// OOMSpill: the OOM-grade degradation path evicted a KLOC context.
	OOMSpill Name = "oom.spill"
	// LBRoute: the cluster load balancer dispatched a request (or a
	// retry of one) to a backend machine.
	LBRoute Name = "lb.route"
	// LBRetry: a failed or timed-out request was scheduled for another
	// attempt after backoff.
	LBRetry Name = "lb.retry"
	// LBHedge: a hedged duplicate of a slow request was dispatched.
	LBHedge Name = "lb.hedge"
	// LBShed: admission control rejected a request at overload.
	LBShed Name = "lb.shed"
	// LBBreaker: a per-backend circuit breaker changed state.
	LBBreaker Name = "lb.breaker"
	// MachineCrash: a simulated machine crashed or restarted cold.
	MachineCrash Name = "machine.crash"
	// MachineHealth: the health checker ejected or re-admitted a
	// machine, or a machine's degradation state changed.
	MachineHealth Name = "machine.health"
	// ChaosSchedule: a chaos campaign armed a fault schedule for a run
	// (size = injection count; ctx = the schedule hash).
	ChaosSchedule Name = "chaos.schedule"
	// ChaosViolation: an invariant oracle rejected a run (class = the
	// oracle id).
	ChaosViolation Name = "chaos.violation"
	// ChaosMinimize: the delta-debugging minimizer finished shrinking a
	// violating schedule (size = minimal injection count).
	ChaosMinimize Name = "chaos.minimize"
	// SimBarrier: the sharded executor's coordinator completed an epoch
	// barrier (ctx = epoch index, obj/size = cross-lane posts delivered
	// at it).
	SimBarrier Name = "sim.barrier"
	// SimLaneDrain: one event lane ran out of work at a barrier (ctx =
	// epoch index, obj/node = the drained shard).
	SimLaneDrain Name = "sim.lane.drain"
)

// Names lists the catalog in stable (documentation) order.
func Names() []Name {
	return []Name{AllocSlab, AllocPage, ObjFree, JournalCommit, BlockDispatch,
		Migrate, NetRx, NetTx, KswapdWake, DirectReclaim, OOMSpill,
		LBRoute, LBRetry, LBHedge, LBShed, LBBreaker, MachineCrash, MachineHealth,
		ChaosSchedule, ChaosViolation, ChaosMinimize, SimBarrier, SimLaneDrain}
}

// Event is one emitted trace record.
type Event struct {
	// Seq is the event's global emission sequence number (0-based,
	// counted across drops — the ring may no longer hold earlier Seqs).
	Seq uint64
	// At is the virtual time of emission.
	At sim.Time
	// Name is the catalog event name.
	Name Name
	// Ctx is the KLOC context — the owning file or socket inode number
	// (0 = no context / not yet associated).
	Ctx uint64
	// Obj is an event-specific identifier: the kernel-object or frame
	// ID for allocation/free/migration events, the attempt count for
	// block dispatches, the reclaim target for pressure events.
	Obj uint64
	// Class is the event-specific object class ("dentry", "app",
	// "read", "write", ...).
	Class string
	// Node is the memory node / tier the event concerns (-1 = none;
	// the software queue index for block dispatches).
	Node int
	// Size is the event's payload size — bytes for allocations and
	// I/O, pages for migration and reclaim events.
	Size int64
}

// Config arms a Tracer. The zero value enables the full catalog with
// default buffer and window sizes.
type Config struct {
	// BufferEvents bounds the ring buffer (default 65536 events).
	// Older events are overwritten — and counted as dropped — once the
	// ring wraps.
	BufferEvents int
	// Events enables only the event names matching at least one
	// pattern ("alloc.slab", "alloc.*", "pressure.*"). Empty enables
	// everything. Patterns use path.Match syntax over the dotted name.
	Events []string
	// SummaryWindow is the virtual-time bucket for per-context summary
	// counts (default 10 ms).
	SummaryWindow sim.Duration
	// Mode selects the summary-accounting path (DESIGN.md §13). The
	// zero value resolves to metrics.DefaultMode: one merged name-state
	// lookup per event (ModeIndexed) and run-length batched context/
	// window commits (ModeBatched). Every mode records byte-identical
	// events and summaries; only the per-event bookkeeping cost
	// differs. The ring buffer is natively pooled in every mode — it
	// is a fixed preallocated array reused in overwrite order — which
	// is what keeps steady-state Emit at zero heap allocations.
	Mode metrics.Mode
}

// Defaults for zero Config fields.
const (
	DefaultBufferEvents  = 1 << 16
	DefaultSummaryWindow = 10 * sim.Millisecond
	// maxSummaryWindows bounds per-context window slices; events past
	// the last window accumulate there (a run longer than
	// SummaryWindow × maxSummaryWindows keeps bounded memory).
	maxSummaryWindows = 1 << 12
	// maxStatsContexts bounds the contexts a Stats report carries.
	maxStatsContexts = 16
)

// ctxStat is one context's incremental accounting. Mutated on the
// emit path by the lane driving the tracer's kernel instance.
type ctxStat struct {
	//klocs:owner=lane
	total uint64
	//klocs:owner=lane
	windows []uint64
}

// nameState is the merged per-name record of the ModeIndexed fast
// path: one map lookup answers both "is this name enabled" and "where
// does its count live".
type nameState struct {
	enabled bool
	//klocs:owner=lane
	count uint64
}

// Tracer is an armed tracing plane. A nil *Tracer is valid and records
// nothing, so subsystems hold a possibly-nil Tracer and call Emit
// unconditionally — the same discipline as fault.Plane.
// A Tracer is attached to one kernel instance and mutates on every
// Emit, so its mutable state is confined to the lane driving that
// instance's timeline partition.
type Tracer struct {
	cfg Config
	// enabled/byName are the legacy per-name stores (two lookups per
	// event); names merges them under ModeIndexed (one lookup, usually
	// zero thanks to the lastName MRU register).
	//klocs:owner=lane
	enabled map[Name]bool
	//klocs:owner=lane
	byName map[Name]uint64
	//klocs:owner=lane
	names map[Name]*nameState

	//klocs:owner=lane
	ring []Event
	// next is the ring write index; filled counts live entries.
	//klocs:owner=lane
	next, filled int
	//klocs:owner=lane
	seq, dropped uint64

	//klocs:owner=lane
	byCtx map[uint64]*ctxStat

	// batched selects run-length context/window commits (ModeBatched):
	// consecutive events against the same context in the same summary
	// window accumulate in the registers below and commit as one net
	// delta when the run breaks (or on Stats). summaryCommits counts
	// those commits — the deterministic write-reduction meter.
	batched bool
	//klocs:owner=lane
	lastName Name
	//klocs:owner=lane
	lastState *nameState
	//klocs:owner=lane
	pCtx uint64
	//klocs:owner=lane
	pStat *ctxStat
	//klocs:owner=lane
	pWin int
	//klocs:owner=lane
	pPending uint64
	//klocs:owner=lane
	summaryCommits uint64
}

// New arms a tracer from a config.
func New(cfg Config) *Tracer {
	if cfg.BufferEvents <= 0 {
		cfg.BufferEvents = DefaultBufferEvents
	}
	if cfg.SummaryWindow <= 0 {
		cfg.SummaryWindow = DefaultSummaryWindow
	}
	t := &Tracer{
		cfg:     cfg,
		ring:    make([]Event, 0, cfg.BufferEvents),
		byCtx:   make(map[uint64]*ctxStat),
		batched: cfg.Mode.Batched(),
	}
	if cfg.Mode.Indexed() {
		t.names = make(map[Name]*nameState)
	} else {
		t.enabled = make(map[Name]bool)
		t.byName = make(map[Name]uint64)
	}
	return t
}

// nameState returns (creating if needed) the merged record for a name.
func (t *Tracer) nameState(name Name) *nameState {
	ns := t.names[name]
	if ns == nil {
		ns = &nameState{enabled: matchAny(t.cfg.Events, string(name))}
		t.names[name] = ns
	}
	return ns
}

// ctxState returns (creating if needed) a context's accounting.
func (t *Tracer) ctxState(ctx uint64) *ctxStat {
	cs := t.byCtx[ctx]
	if cs == nil {
		cs = &ctxStat{}
		t.byCtx[ctx] = cs
	}
	return cs
}

// flushPending commits the batched registers' run-length count into
// its context's summary. Idempotent; called on a run break and before
// any summary read, so readers always see exact totals.
func (t *Tracer) flushPending() {
	if t.pStat == nil || t.pPending == 0 {
		return
	}
	t.pStat.total += t.pPending
	for len(t.pStat.windows) <= t.pWin {
		t.pStat.windows = append(t.pStat.windows, 0)
	}
	t.pStat.windows[t.pWin] += t.pPending
	t.pPending = 0
	t.summaryCommits++
}

// nameCounts lists per-event-name totals in name order, reading
// whichever per-name store the mode keeps. Names with zero emissions
// are enablement memos, not counts, and are skipped — the legacy
// byName map only ever holds emitted names, and the two stores must
// summarize identically.
func (t *Tracer) nameCounts() []NameCount {
	var out []NameCount
	if t.names != nil {
		for name, ns := range t.names {
			if ns.count > 0 {
				out = append(out, NameCount{Name: name, Count: ns.count})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		return out
	}
	for name, n := range t.byName {
		out = append(out, NameCount{Name: name, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SummaryCommits reports the batched path's context-summary commits
// (0 in legacy mode, where every event writes through). Deterministic:
// a pure function of the emitted event sequence.
func (t *Tracer) SummaryCommits() uint64 {
	if t == nil {
		return 0
	}
	return t.summaryCommits
}

// Enabled reports whether events of the given name are recorded.
// Nil-safe: a nil tracer records nothing.
func (t *Tracer) Enabled(name Name) bool {
	if t == nil {
		return false
	}
	if t.names != nil {
		return t.nameState(name).enabled
	}
	on, ok := t.enabled[name]
	if !ok {
		on = matchAny(t.cfg.Events, string(name))
		t.enabled[name] = on
	}
	return on
}

// matchAny reports whether s matches at least one pattern (empty
// pattern set matches everything). Malformed patterns fall back to
// literal comparison.
func matchAny(patterns []string, s string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if ok, err := path.Match(p, s); err == nil && ok {
			return true
		} else if err != nil && p == s {
			return true
		}
	}
	return false
}

// Emit records one event. Nil-safe and strictly passive: no virtual
// cost, no randomness, no observable effect on the simulation. The
// recorded events and summary totals are byte-identical in every
// accounting mode; the fast paths only change how many shared-store
// writes the bookkeeping costs (DESIGN.md §13).
//
// The phase pin below asserts per-instance confinement: a Tracer is
// only ever driven by the goroutine that owns its attached kernel (or,
// for the harness's dedicated engine tracer, by the coordinator), so
// even though Emit is reachable from both lane and barrier callers,
// each *instance* sees a single caller phase and its plain counters
// are safe (DESIGN.md §15).
//
//klocs:phase=lane
func (t *Tracer) Emit(name Name, at sim.Time, ctx, obj uint64, class string, node int, size int64) {
	if t == nil {
		return
	}
	// Per-name accounting: merged single-lookup state under
	// ModeIndexed (with an MRU register, since emission is bursty), the
	// legacy enabled+byName map pair otherwise.
	var ns *nameState
	if t.names != nil {
		if name == t.lastName && t.lastState != nil {
			ns = t.lastState
		} else {
			ns = t.nameState(name)
			t.lastName, t.lastState = name, ns
		}
		if !ns.enabled {
			return
		}
	} else if !t.Enabled(name) {
		return
	}
	e := Event{Seq: t.seq, At: at, Name: name, Ctx: ctx, Obj: obj,
		Class: class, Node: node, Size: size}
	t.seq++

	// Ring: grow until capacity, then overwrite oldest (counted as a
	// drop, like ftrace's overwrite mode).
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		t.filled++
	} else {
		t.ring[t.next] = e
		t.dropped++
	}
	t.next = (t.next + 1) % cap(t.ring)

	// Incremental summaries survive ring drops.
	if ns != nil {
		ns.count++
	} else {
		t.byName[name]++
	}
	w := int(at / sim.Time(t.cfg.SummaryWindow))
	if w >= maxSummaryWindows {
		w = maxSummaryWindows - 1
	}
	if t.batched {
		// Run-length commit: same context, same window — just extend
		// the pending run; the net delta commits when the run breaks.
		if t.pStat != nil && ctx == t.pCtx && w == t.pWin {
			t.pPending++
			return
		}
		t.flushPending()
		t.pCtx, t.pStat, t.pWin, t.pPending = ctx, t.ctxState(ctx), w, 1
		return
	}
	cs := t.ctxState(ctx)
	cs.total++
	for len(cs.windows) <= w {
		cs.windows = append(cs.windows, 0)
	}
	cs.windows[w]++
}

// Emitted reports the total events recorded (including dropped ones).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.seq
}

// Dropped reports events overwritten after the ring wrapped.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the buffered events oldest-first. The slice is a copy;
// mutating it does not disturb the ring.
func (t *Tracer) Events() []Event {
	if t == nil || t.filled == 0 {
		return nil
	}
	out := make([]Event, 0, t.filled)
	start := 0
	if t.filled == cap(t.ring) {
		start = t.next
	}
	for i := 0; i < t.filled; i++ {
		out = append(out, t.ring[(start+i)%cap(t.ring)])
	}
	return out
}

// NameCount is one event name's total.
type NameCount struct {
	Name  Name
	Count uint64
}

// ContextSummary is one KLOC context's event activity over the run.
type ContextSummary struct {
	// Ctx is the context id (inode/socket number; 0 = unattributed).
	Ctx uint64
	// Total counts every event emitted against the context.
	Total uint64
	// Windows counts events per SummaryWindow slice of virtual time,
	// starting at time zero.
	Windows []uint64
}

// Stats is the tracer's run summary: totals per event name and the
// most active KLOC contexts bucketed into virtual-time windows. It is
// computed from incremental counters, so it covers every emitted event
// even when the ring dropped some.
type Stats struct {
	Emitted, Dropped uint64
	// Window is the virtual-time bucket width for context windows.
	Window sim.Duration
	// ByName lists per-event-name totals in catalog-name order.
	ByName []NameCount
	// Contexts lists the most active contexts, busiest first (ties
	// break toward the lower context id), capped at 16 entries.
	Contexts []ContextSummary
}

// Stats summarizes the run so far. Deterministic: sorted output,
// independent of map iteration order.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.flushPending()
	s := Stats{Emitted: t.seq, Dropped: t.dropped, Window: t.cfg.SummaryWindow}
	s.ByName = t.nameCounts()
	for ctx, cs := range t.byCtx {
		s.Contexts = append(s.Contexts, ContextSummary{
			Ctx: ctx, Total: cs.total,
			Windows: append([]uint64(nil), cs.windows...),
		})
	}
	sort.Slice(s.Contexts, func(i, j int) bool {
		if s.Contexts[i].Total != s.Contexts[j].Total {
			return s.Contexts[i].Total > s.Contexts[j].Total
		}
		return s.Contexts[i].Ctx < s.Contexts[j].Ctx
	})
	if len(s.Contexts) > maxStatsContexts {
		s.Contexts = s.Contexts[:maxStatsContexts]
	}
	return s
}
