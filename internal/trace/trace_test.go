package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"kloc/internal/sim"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(AllocSlab, 100, 1, 2, "dentry", 0, 192)
	if tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}
	if tr.Enabled(AllocSlab) {
		t.Fatal("nil tracer claims events enabled")
	}
	s := tr.Stats()
	if s.Emitted != 0 || len(s.ByName) != 0 || len(s.Contexts) != 0 {
		t.Fatalf("nil tracer stats = %+v", s)
	}
}

func TestRingBoundsAndDropCounting(t *testing.T) {
	tr := New(Config{BufferEvents: 4})
	for i := 0; i < 10; i++ {
		tr.Emit(NetRx, sim.Time(i*100), 7, uint64(i), "seg", 0, 1500)
	}
	if tr.Emitted() != 10 {
		t.Fatalf("emitted = %d", tr.Emitted())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("buffered = %d, want 4", len(events))
	}
	// Oldest-first, the last 4 emitted survive.
	for i, e := range events {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("event[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	// Summary counters are drop-independent.
	if s := tr.Stats(); s.ByName[0].Count != 10 || s.Contexts[0].Total != 10 {
		t.Fatalf("stats lost dropped events: %+v", s)
	}
}

func TestEnableGlobs(t *testing.T) {
	cases := []struct {
		patterns []string
		name     Name
		want     bool
	}{
		{nil, AllocSlab, true},
		{[]string{"alloc.*"}, AllocSlab, true},
		{[]string{"alloc.*"}, AllocPage, true},
		{[]string{"alloc.*"}, NetRx, false},
		{[]string{"net.rx"}, NetRx, true},
		{[]string{"net.rx"}, NetTx, false},
		{[]string{"pressure.*", "oom.*"}, KswapdWake, true},
		{[]string{"pressure.*", "oom.*"}, OOMSpill, true},
		{[]string{"fs.journal.commit"}, JournalCommit, true},
		{[]string{"*"}, BlockDispatch, true},
		{[]string{"nomatch"}, Migrate, false},
	}
	for _, c := range cases {
		tr := New(Config{Events: c.patterns})
		if got := tr.Enabled(c.name); got != c.want {
			t.Errorf("Enabled(%q) with %v = %v, want %v", c.name, c.patterns, got, c.want)
		}
		tr.Emit(c.name, 0, 0, 0, "x", -1, 0)
		if got := tr.Emitted() == 1; got != c.want {
			t.Errorf("Emit(%q) with %v recorded=%v, want %v", c.name, c.patterns, got, c.want)
		}
	}
}

func TestDisabledNamesCostNothing(t *testing.T) {
	tr := New(Config{Events: []string{"net.rx"}, BufferEvents: 2})
	tr.Emit(AllocSlab, 1, 1, 1, "dentry", 0, 192)
	tr.Emit(AllocPage, 2, 1, 2, "page_cache", 0, 4096)
	if tr.Emitted() != 0 || len(tr.Events()) != 0 {
		t.Fatal("disabled events were recorded")
	}
}

func TestContextWindowSummary(t *testing.T) {
	tr := New(Config{SummaryWindow: 100})
	// Context 5: two events in window 0, one in window 2.
	tr.Emit(AllocSlab, 10, 5, 1, "inode", 0, 600)
	tr.Emit(AllocSlab, 90, 5, 2, "dentry", 0, 192)
	tr.Emit(ObjFree, 250, 5, 1, "inode", 0, 600)
	// Context 9: one event in window 1.
	tr.Emit(NetRx, 150, 9, 3, "seg", 1, 1500)
	s := tr.Stats()
	if s.Window != 100 {
		t.Fatalf("window = %v", s.Window)
	}
	if len(s.Contexts) != 2 || s.Contexts[0].Ctx != 5 || s.Contexts[0].Total != 3 {
		t.Fatalf("contexts = %+v", s.Contexts)
	}
	if w := s.Contexts[0].Windows; len(w) != 3 || w[0] != 2 || w[1] != 0 || w[2] != 1 {
		t.Fatalf("ctx 5 windows = %v", w)
	}
	if w := s.Contexts[1].Windows; len(w) != 2 || w[1] != 1 {
		t.Fatalf("ctx 9 windows = %v", w)
	}
	// Per-name totals sorted by name.
	if len(s.ByName) != 3 || s.ByName[0].Name != AllocSlab || s.ByName[0].Count != 2 {
		t.Fatalf("byName = %+v", s.ByName)
	}
}

// fill emits a fixed deterministic sequence.
func fill(tr *Tracer) {
	tr.Emit(AllocSlab, 100, 1, 10, "inode", 0, 600)
	tr.Emit(AllocPage, 230, 1, 11, "page_cache", 0, 4096)
	tr.Emit(BlockDispatch, 400, 0, 1, "write", 2, 8192)
	tr.Emit(Migrate, 900, 1, 11, "cache", 1, 1)
	tr.Emit(ObjFree, 1500, 1, 10, "inode", 0, 600)
}

func TestExportsAreDeterministic(t *testing.T) {
	a, b := New(Config{}), New(Config{})
	fill(a)
	fill(b)
	if a.TextString() != b.TextString() {
		t.Fatal("text export differs between identical tracers")
	}
	var ja, jb strings.Builder
	if err := a.WriteChrome(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChrome(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Fatal("chrome export differs between identical tracers")
	}
}

func TestTextFormat(t *testing.T) {
	tr := New(Config{})
	fill(tr)
	text := tr.TextString()
	if !strings.HasPrefix(text, "# kloc trace: events=5 buffered=5 dropped=0\n") {
		t.Fatalf("bad header:\n%s", text)
	}
	if !strings.Contains(text, "0 100 alloc.slab ctx=1 obj=10 class=inode node=0 size=600\n") {
		t.Fatalf("missing alloc.slab line:\n%s", text)
	}
	if !strings.Contains(text, "3 900 memsim.migrate ctx=1 obj=11 class=cache node=1 size=1\n") {
		t.Fatalf("missing migrate line:\n%s", text)
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	tr := New(Config{})
	fill(tr)
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   float64         `json:"ts"`
			Pid  int             `json:"pid"`
			Tid  uint64          `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, b.String())
	}
	// 5 instant events + 2 thread_name metadata rows (ctx 0 and 1).
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("traceEvents = %d, want 7", len(doc.TraceEvents))
	}
	var instants, metas int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "i":
			instants++
		case "M":
			metas++
		}
	}
	if instants != 5 || metas != 2 {
		t.Fatalf("instants=%d metas=%d", instants, metas)
	}
	// ts is virtual microseconds: the alloc.slab at 100 ns is 0.1 µs.
	for _, e := range doc.TraceEvents {
		if e.Name == "alloc.slab" && e.Ts != 0.1 {
			t.Fatalf("alloc.slab ts = %v, want 0.1", e.Ts)
		}
	}
}

func TestChromeExportEmptyIsValidJSON(t *testing.T) {
	tr := New(Config{})
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("empty chrome export invalid: %v\n%s", err, b.String())
	}
}

func TestStatsContextCap(t *testing.T) {
	tr := New(Config{})
	for c := uint64(1); c <= 40; c++ {
		for i := uint64(0); i < c; i++ { // context c emits c events
			tr.Emit(AllocSlab, sim.Time(c*100+i), c, i, "inode", 0, 600)
		}
	}
	s := tr.Stats()
	if len(s.Contexts) != 16 {
		t.Fatalf("contexts = %d, want capped at 16", len(s.Contexts))
	}
	// Busiest first: context 40 with 40 events.
	if s.Contexts[0].Ctx != 40 || s.Contexts[0].Total != 40 {
		t.Fatalf("top context = %+v", s.Contexts[0])
	}
}
