package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteText writes the buffered events as a human-readable log, one
// event per line in a stable format:
//
//	seq at name ctx=<ino> obj=<id> class=<class> node=<node> size=<size>
//
// The header comment records the schema and the drop count so a reader
// knows whether the ring wrapped. Output is byte-identical across
// same-seed runs.
func (t *Tracer) WriteText(w io.Writer) error {
	events := t.Events()
	if _, err := fmt.Fprintf(w,
		"# kloc trace: events=%d buffered=%d dropped=%d\n"+
			"# schema: seq at(ns) name ctx obj class node size\n",
		t.Emitted(), len(events), t.Dropped()); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%d %d %s ctx=%d obj=%d class=%s node=%d size=%d\n",
			e.Seq, int64(e.At), e.Name, e.Ctx, e.Obj, e.Class, e.Node, e.Size); err != nil {
			return err
		}
	}
	return nil
}

// TextString renders WriteText to a string (tests, small traces).
func (t *Tracer) TextString() string {
	var b strings.Builder
	t.WriteText(&b) //klocs:ignore-errno strings.Builder writes cannot fail
	return b.String()
}

// WriteChrome writes the buffered events in the Chrome trace-event JSON
// format, loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
// Every event becomes an instant event ("ph":"i") on pid 1 with the
// KLOC context id as tid, so the viewer groups the timeline by context;
// a thread_name metadata record labels each context row. Timestamps
// are virtual microseconds (the format's unit), emitted with fixed
// 3-digit precision so output is byte-identical across same-seed runs.
//
// The JSON is written by hand rather than via encoding/json to keep
// field order and float formatting stable.
func (t *Tracer) WriteChrome(w io.Writer) error {
	events := t.Events()
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	// Context rows, labeled and sorted for determinism.
	ctxs := make(map[uint64]bool)
	for _, e := range events {
		ctxs[e.Ctx] = true
	}
	ids := make([]uint64, 0, len(ctxs))
	for c := range ctxs {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	first := true
	for _, c := range ids {
		label := fmt.Sprintf("kloc-ctx-%d", c)
		if c == 0 {
			label = "no-context"
		}
		if err := writeRecord(w, &first, fmt.Sprintf(
			`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`,
			c, label)); err != nil {
			return err
		}
	}
	for _, e := range events {
		ts := strconv.FormatFloat(float64(int64(e.At))/1000.0, 'f', 3, 64)
		rec := fmt.Sprintf(
			`{"name":%q,"cat":"kloc","ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,`+
				`"args":{"seq":%d,"ctx":%d,"obj":%d,"class":%q,"node":%d,"size":%d}}`,
			string(e.Name), ts, e.Ctx, e.Seq, e.Ctx, e.Obj, e.Class, e.Node, e.Size)
		if err := writeRecord(w, &first, rec); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"emitted\":\"%d\",\"dropped\":\"%d\"}}\n",
		t.Emitted(), t.Dropped())
	return err
}

func writeRecord(w io.Writer, first *bool, rec string) error {
	sep := ",\n"
	if *first {
		sep = ""
		*first = false
	}
	_, err := io.WriteString(w, sep+rec)
	return err
}
