package trace

import (
	"testing"

	"kloc/internal/metrics"
	"kloc/internal/sim"
)

// TestEmitSteadyStateAllocFree: once the ring and the per-context
// tables are warm, Emit under the default accounting mode must not
// touch the heap — the ring recycles Event slots, the merged
// name-state table and MRU register avoid per-event map inserts, and
// summary counts commit in run lengths. This pins the perfbench
// alloc-churn result (allocs/op ~ 0 on the trace path) as a
// regression test.
func TestEmitSteadyStateAllocFree(t *testing.T) {
	tr := New(Config{Mode: metrics.DefaultMode(), BufferEvents: 1 << 10})
	// Warm up: touch every context, name, and ring slot the measured
	// loop will use, past the ring's wrap point.
	var now sim.Time
	warm := func() {
		for i := 0; i < 1<<12; i++ {
			now += 100
			tr.Emit(AllocSlab, now, uint64(1+i&7), uint64(i), "inode", 0, 600)
		}
	}
	warm()
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		for j := 0; j < 64; j++ {
			now += 100
			tr.Emit(AllocSlab, now, uint64(1+i&7), uint64(i), "inode", 0, 600)
			i++
		}
	})
	if avg != 0 {
		t.Fatalf("Emit allocated %.2f objects per 64-event burst in steady state", avg)
	}
}

// TestEmitLegacyStillBounded: the legacy mode keeps exact per-event
// summary counting; it may allocate while tables grow but must also
// settle once contexts and names are warm (the ring is recycled in
// every mode).
func TestEmitLegacyStillBounded(t *testing.T) {
	tr := New(Config{Mode: metrics.LegacyMode(), BufferEvents: 1 << 10})
	var now sim.Time
	for i := 0; i < 1<<12; i++ {
		now += 100
		tr.Emit(AllocSlab, now, uint64(1+i&7), uint64(i), "inode", 0, 600)
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		for j := 0; j < 64; j++ {
			now += 100
			tr.Emit(AllocSlab, now, uint64(1+i&7), uint64(i), "inode", 0, 600)
			i++
		}
	})
	if avg > 1 {
		t.Fatalf("legacy Emit allocated %.2f objects per 64-event burst in steady state", avg)
	}
}
