package alloc

import (
	"fmt"

	"kloc/internal/fault"
)

// Buddy is a binary buddy allocator over an abstract page-index space
// [0, size). The block layer uses it for physically contiguous DMA ring
// allocations (blk_mq, §4.2.3); it also documents why slab frames are
// non-relocatable — they are handed out by physical index.
//
// size must be a power of two. Orders run from 0 (one page) up to
// log2(size).
type Buddy struct {
	size     int
	maxOrder int
	// free[o] holds base indexes of free blocks of order o.
	free [][]int
	// inFree tracks which (base,order) blocks sit in the free lists so
	// coalescing can find buddies in O(1).
	inFree map[int]int // base -> order
	// allocated maps base -> order for live blocks.
	allocated map[int]int
}

// NewBuddy creates a buddy allocator over size pages (power of two).
func NewBuddy(size int) (*Buddy, error) {
	if size <= 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("alloc: buddy size %d not a power of two: %w", size, fault.EINVAL)
	}
	maxOrder := 0
	for 1<<maxOrder < size {
		maxOrder++
	}
	b := &Buddy{
		size:      size,
		maxOrder:  maxOrder,
		free:      make([][]int, maxOrder+1),
		inFree:    map[int]int{0: maxOrder},
		allocated: map[int]int{},
	}
	b.free[maxOrder] = []int{0}
	return b, nil
}

// Alloc returns the base index of a free 2^order block, or an error
// when fragmentation or occupancy prevents it.
func (b *Buddy) Alloc(order int) (int, error) {
	if order < 0 || order > b.maxOrder {
		return 0, fmt.Errorf("alloc: order %d out of range: %w", order, fault.EINVAL)
	}
	// Find the smallest order with a free block.
	o := order
	for o <= b.maxOrder && len(b.free[o]) == 0 {
		o++
	}
	if o > b.maxOrder {
		return 0, fmt.Errorf("alloc: no free block of order %d: %w", order, fault.ENOMEM)
	}
	base := b.free[o][len(b.free[o])-1]
	b.free[o] = b.free[o][:len(b.free[o])-1]
	delete(b.inFree, base)
	// Split down to the requested order, freeing the upper halves.
	for o > order {
		o--
		upper := base + (1 << o)
		b.free[o] = append(b.free[o], upper)
		b.inFree[upper] = o
	}
	b.allocated[base] = order
	return base, nil
}

// Free returns a block. base/order must match a prior Alloc.
func (b *Buddy) Free(base int) error {
	order, ok := b.allocated[base]
	if !ok {
		return fmt.Errorf("alloc: free of unallocated base %d: %w", base, fault.EINVAL)
	}
	delete(b.allocated, base)
	// Coalesce with the buddy while possible.
	for order < b.maxOrder {
		buddy := base ^ (1 << order)
		bo, free := b.inFree[buddy]
		if !free || bo != order {
			break
		}
		// Remove buddy from its free list.
		delete(b.inFree, buddy)
		lst := b.free[order]
		for i, v := range lst {
			if v == buddy {
				b.free[order] = append(lst[:i], lst[i+1:]...)
				break
			}
		}
		if buddy < base {
			base = buddy
		}
		order++
	}
	b.free[order] = append(b.free[order], base)
	b.inFree[base] = order
	return nil
}

// FreePages reports the number of free pages.
func (b *Buddy) FreePages() int {
	n := 0
	for o, lst := range b.free {
		n += len(lst) << o
	}
	return n
}

// LargestFree returns the order of the biggest allocatable block, or -1
// when full.
func (b *Buddy) LargestFree() int {
	for o := b.maxOrder; o >= 0; o-- {
		if len(b.free[o]) > 0 {
			return o
		}
	}
	return -1
}

// Fragmentation returns 1 - largestFreeBlock/freePages: 0 means all
// free space is one contiguous run.
func (b *Buddy) Fragmentation() float64 {
	free := b.FreePages()
	if free == 0 {
		return 0
	}
	lo := b.LargestFree()
	return 1 - float64(int(1)<<lo)/float64(free)
}
