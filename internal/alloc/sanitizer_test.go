package alloc

import (
	"strings"
	"testing"

	"kloc/internal/sim"
)

func TestSanitizerDoubleFree(t *testing.T) {
	s := NewSanitizer()
	s.TrackAlloc(1, "slab", 10, 64, 0)
	s.TrackFree(1, 5)
	s.TrackFree(1, 9)
	s.BeginScan()
	r := s.Report(10)
	if r.Clean() {
		t.Fatal("double free not reported")
	}
	if r.TotalFindings != 1 {
		t.Fatalf("TotalFindings = %d, want 1", r.TotalFindings)
	}
	f := r.Findings[0]
	if f.Kind != SanDoubleFree || f.ID != 1 || f.Ctx != 10 || f.At != 9 || f.Freed != 5 {
		t.Fatalf("finding = %+v", f)
	}
	if !strings.Contains(f.String(), "double-free") {
		t.Fatalf("String() = %q", f.String())
	}
}

func TestSanitizerUseAfterFree(t *testing.T) {
	s := NewSanitizer()
	s.TrackAlloc(7, "cache", 3, 4096, 1)
	s.CheckAccess(7, 2) // live: fine
	s.TrackFree(7, 4)
	s.CheckAccess(7, 6)
	s.BeginScan()
	r := s.Report(10)
	if r.TotalFindings != 1 {
		t.Fatalf("TotalFindings = %d, want 1", r.TotalFindings)
	}
	f := r.Findings[0]
	if f.Kind != SanUseAfterFree || f.ID != 7 || f.Class != "cache" || f.At != 6 || f.Freed != 4 {
		t.Fatalf("finding = %+v", f)
	}
}

func TestSanitizerLeakGrouping(t *testing.T) {
	s := NewSanitizer()
	// Two leaks in ctx 5, one in ctx 2, one reachable object, one freed.
	s.TrackAlloc(1, "slab", 5, 100, 0)
	s.TrackAlloc(2, "slab", 5, 200, 0)
	s.TrackAlloc(3, "cache", 2, 50, 0)
	s.TrackAlloc(4, "slab", 9, 10, 0)
	s.TrackAlloc(5, "slab", 9, 10, 0)
	s.TrackFree(5, 1)
	s.BeginScan()
	s.MarkReachable(4)
	r := s.Report(10)
	if r.TotalLeaks != 3 || r.LeakBytes != 350 {
		t.Fatalf("TotalLeaks = %d LeakBytes = %d, want 3/350", r.TotalLeaks, r.LeakBytes)
	}
	if r.TrackedLive != 4 {
		t.Fatalf("TrackedLive = %d, want 4", r.TrackedLive)
	}
	// Sorted by ctx then ID: ctx 2 first, then ctx 5 (IDs 1, 2).
	wantIDs := []uint64{3, 1, 2}
	for i, f := range r.Leaks {
		if f.Kind != SanLeak || f.ID != wantIDs[i] {
			t.Fatalf("leak[%d] = %+v, want ID %d", i, f, wantIDs[i])
		}
	}
	if len(r.LeakGroups) != 2 {
		t.Fatalf("LeakGroups = %+v", r.LeakGroups)
	}
	if g := r.LeakGroups[0]; g.Ctx != 2 || g.Count != 1 || g.Bytes != 50 {
		t.Fatalf("group[0] = %+v", g)
	}
	if g := r.LeakGroups[1]; g.Ctx != 5 || g.Count != 2 || g.Bytes != 300 {
		t.Fatalf("group[1] = %+v", g)
	}
}

func TestSanitizerAssociateRecontexts(t *testing.T) {
	s := NewSanitizer()
	s.TrackAlloc(1, "skbuff", 0, 64, 0)
	s.Associate(1, 42) // late demux binds the skb to its socket KLOC
	s.BeginScan()
	r := s.Report(5)
	if len(r.Leaks) != 1 || r.Leaks[0].Ctx != 42 {
		t.Fatalf("leaks = %+v, want ctx 42", r.Leaks)
	}
}

func TestSanitizerQuarantineBound(t *testing.T) {
	s := NewSanitizer()
	n := sanQuarantine + 10
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		s.TrackAlloc(id, "slab", 0, 8, 0)
		s.TrackFree(id, 1)
	}
	if len(s.freed) != sanQuarantine {
		t.Fatalf("quarantine holds %d, want %d", len(s.freed), sanQuarantine)
	}
	// The oldest IDs were recycled: re-freeing them is not detectable
	// (matching KASAN's quarantine semantics), the newest still are.
	s.TrackFree(1, 2)
	s.TrackFree(uint64(n), 2)
	s.BeginScan()
	r := s.Report(3)
	if r.TotalFindings != 1 {
		t.Fatalf("TotalFindings = %d, want 1 (only the quarantined ID)", r.TotalFindings)
	}
}

func TestSanitizerFindingCap(t *testing.T) {
	s := NewSanitizer()
	s.TrackAlloc(1, "slab", 0, 8, 0)
	s.TrackFree(1, 1)
	for i := 0; i < sanMaxFindings+50; i++ {
		s.TrackFree(1, sim.Time(i+2))
	}
	s.BeginScan()
	r := s.Report(0)
	if len(r.Findings) != sanMaxFindings {
		t.Fatalf("len(Findings) = %d, want cap %d", len(r.Findings), sanMaxFindings)
	}
	if r.TotalFindings != sanMaxFindings+50 {
		t.Fatalf("TotalFindings = %d, want uncapped %d", r.TotalFindings, sanMaxFindings+50)
	}
	if !strings.Contains(r.String(), "more findings") {
		t.Fatalf("String() lacks overflow note:\n%s", r.String())
	}
}

func TestSanitizerNilSafe(t *testing.T) {
	var s *Sanitizer
	s.TrackAlloc(1, "slab", 0, 8, 0)
	s.Associate(1, 2)
	s.TrackFree(1, 1)
	s.CheckAccess(1, 2)
	s.BeginScan()
	s.MarkReachable(1)
	if r := s.Report(3); r != nil {
		t.Fatalf("nil sanitizer Report = %+v, want nil", r)
	}
	var r *SanReport
	if !r.Clean() {
		t.Fatal("nil report must be Clean")
	}
	if !strings.Contains(r.String(), "not armed") {
		t.Fatalf("nil report String() = %q", r.String())
	}
}

func TestSanitizerUnknownFreeIgnored(t *testing.T) {
	s := NewSanitizer()
	// Freeing an ID never tracked (allocated before attach) is not a
	// finding.
	s.TrackFree(99, 1)
	s.BeginScan()
	if r := s.Report(2); !r.Clean() {
		t.Fatalf("report = %+v, want clean", r)
	}
}
