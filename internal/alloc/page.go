package alloc

import (
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// PageAllocator wraps the memory system's frame allocation with the
// page_alloc cost model. Pages from here are relocatable.
type PageAllocator struct {
	Mem *memsim.Memory
}

// Alloc returns one relocatable frame of the given class.
func (p *PageAllocator) Alloc(order []memsim.NodeID, class memsim.Class, now sim.Time) (*memsim.Frame, sim.Duration, error) {
	f, err := p.Mem.AllocFallback(order, class, now)
	if err != nil {
		return nil, 0, err
	}
	return f, PageAllocCost, nil
}

// Free releases a frame.
func (p *PageAllocator) Free(f *memsim.Frame) sim.Duration {
	p.Mem.Free(f)
	return PageFreeCost
}

// VmallocRegion is a virtually contiguous, physically scattered
// multi-page allocation. Relocatable, but expensive to create: each
// page needs a page-table mapping (§3.3).
type VmallocRegion struct {
	Frames []*memsim.Frame
}

// Vmalloc allocates pages frames of the given class across the node
// fallback order. On partial failure it unwinds.
func Vmalloc(mem *memsim.Memory, order []memsim.NodeID, class memsim.Class, pages int, now sim.Time) (*VmallocRegion, sim.Duration, error) {
	r := &VmallocRegion{Frames: make([]*memsim.Frame, 0, pages)}
	var cost sim.Duration
	for i := 0; i < pages; i++ {
		f, err := mem.AllocFallback(order, class, now)
		if err != nil {
			for _, g := range r.Frames {
				mem.Free(g)
			}
			return nil, 0, err
		}
		r.Frames = append(r.Frames, f)
		cost += VmallocCostPer
	}
	return r, cost, nil
}

// Release frees the region.
func (r *VmallocRegion) Release(mem *memsim.Memory) sim.Duration {
	for _, f := range r.Frames {
		mem.Free(f)
	}
	r.Frames = nil
	return VmallocTeardown
}
