package alloc

import (
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// Arena is a per-KLOC allocation region: the simulation's rendering of
// the paper's new allocation interface, which backs kernel objects with
// anonymous-VMA-style regions so they can migrate (§4.4). Unlike a
// shared slab cache, an arena belongs to ONE file or socket, so its
// frames never mix objects from different KLOCs and can be demoted or
// promoted with the owning knode without collateral damage.
//
// Allocation is a bump pointer within the current frame; frames are
// relocatable (not pinned) and carry ClassKloc. A frame is returned to
// the memory system when its last object dies.
type Arena struct {
	Mem *memsim.Memory

	// Owner is stamped on every frame the arena creates so migration
	// machinery can attribute them (knode id; 0 until associated).
	Owner uint64

	frames  map[memsim.FrameID]*arenaFrame
	current *arenaFrame
}

type arenaFrame struct {
	frame *memsim.Frame
	used  int // bytes bumped
	live  int // live objects
}

// ArenaSlot is one object allocation inside an arena.
type ArenaSlot struct {
	Frame *memsim.Frame
	arena *Arena
	fid   memsim.FrameID
	freed bool
}

// NewArena creates an empty arena over the memory system.
func NewArena(mem *memsim.Memory, owner uint64) *Arena {
	return &Arena{Mem: mem, Owner: owner, frames: make(map[memsim.FrameID]*arenaFrame)}
}

// Alloc carves size bytes, pulling a fresh relocatable frame (trying
// nodes in order) when the current one is exhausted.
func (a *Arena) Alloc(order []memsim.NodeID, size int, now sim.Time) (*ArenaSlot, sim.Duration, error) {
	if size <= 0 || size > memsim.PageSize {
		size = memsim.PageSize
	}
	cost := KlocAllocCost
	if a.current == nil || a.current.used+size > memsim.PageSize {
		frame, err := a.Mem.AllocFallback(order, memsim.ClassKloc, now)
		if err != nil {
			return nil, 0, err
		}
		frame.Knode = a.Owner
		af := &arenaFrame{frame: frame}
		a.frames[frame.ID] = af
		a.current = af
		cost += slabNewFrameCost
	}
	af := a.current
	af.used += size
	af.live++
	return &ArenaSlot{Frame: af.frame, arena: a, fid: af.frame.ID}, cost, nil
}

// Free releases a slot; the frame returns to the memory system when its
// last object dies. Idempotent.
func (a *Arena) Free(s *ArenaSlot) sim.Duration {
	if s == nil || s.freed || s.arena != a {
		return 0
	}
	s.freed = true
	af, ok := a.frames[s.fid]
	if !ok {
		return 0
	}
	af.live--
	if af.live == 0 {
		delete(a.frames, s.fid)
		if a.current == af {
			a.current = nil
		}
		a.Mem.Free(af.frame)
	}
	return KlocFreeCost
}

// Frames reports live arena frames.
func (a *Arena) Frames() int { return len(a.frames) }

// LiveObjects reports live allocations.
func (a *Arena) LiveObjects() int {
	n := 0
	for _, af := range a.frames {
		n += af.live
	}
	return n
}

// SetOwner stamps the owner (knode) onto the arena and its frames —
// used when association happens after allocation (late demux).
func (a *Arena) SetOwner(owner uint64) {
	a.Owner = owner
	//klocs:unordered every iteration stamps the same owner onto a distinct frame
	for _, af := range a.frames {
		af.frame.Knode = owner
	}
}
