package alloc

import (
	"testing"
	"testing/quick"

	"kloc/internal/memsim"
	"kloc/internal/sim"
)

func mem() *memsim.Memory {
	return memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 64, SlowPages: 256,
		FastBandwidth: 30, BandwidthRatio: 4, CPUs: 2,
	})
}

var order = []memsim.NodeID{memsim.FastNode, memsim.SlowNode}

func TestSlabPacking(t *testing.T) {
	m := mem()
	c, err := NewSlabCache(m, "dentry", 192)
	if err != nil {
		t.Fatal(err)
	}
	per := c.ObjectsPerFrame()
	if per != memsim.PageSize/192 {
		t.Fatalf("objects per frame = %d", per)
	}
	var slots []*Slot
	for i := 0; i < per; i++ {
		s, _, err := c.Alloc(order, 0)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if c.Frames() != 1 {
		t.Fatalf("one frame should hold %d objects, used %d frames", per, c.Frames())
	}
	s, _, err := c.Alloc(order, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Frames() != 2 {
		t.Fatalf("overflow object should open frame 2, got %d", c.Frames())
	}
	if c.LiveObjects() != per+1 {
		t.Fatalf("live = %d", c.LiveObjects())
	}
	// Free everything; frames return to the memory system.
	c.Free(s)
	for _, s := range slots {
		c.Free(s)
	}
	if c.Frames() != 0 || m.Node(memsim.FastNode).Used() != 0 {
		t.Fatal("slab frames leaked")
	}
}

func TestSlabFramesArePinned(t *testing.T) {
	c, _ := NewSlabCache(mem(), "inode", 600)
	s, _, _ := c.Alloc(order, 0)
	if !s.Frame.Pinned {
		t.Fatal("slab frame not pinned")
	}
	if s.Frame.Class != memsim.ClassSlab {
		t.Fatalf("slab frame class = %v", s.Frame.Class)
	}
}

func TestKlocCacheRelocatable(t *testing.T) {
	m := mem()
	c, _ := NewKlocCache(m, "inode-kloc", 600)
	s, cost, _ := c.Alloc(order, 0)
	if s.Frame.Pinned {
		t.Fatal("KLOC allocator must produce relocatable frames")
	}
	if s.Frame.Class != memsim.ClassKloc {
		t.Fatalf("class = %v", s.Frame.Class)
	}
	if cost < SlabAllocCost {
		t.Fatal("KLOC alloc should not be cheaper than slab")
	}
	if !m.CanMigrate(s.Frame, memsim.SlowNode) {
		t.Fatal("KLOC frame should be migratable")
	}
}

func TestSlabCostOrdering(t *testing.T) {
	// §4.4: slab < kloc < page < vmalloc.
	if !(SlabAllocCost < KlocAllocCost && KlocAllocCost < PageAllocCost && PageAllocCost < VmallocCostPer) {
		t.Fatal("allocation cost ordering violates the paper's model")
	}
}

func TestSlabDoubleFree(t *testing.T) {
	c, _ := NewSlabCache(mem(), "x", 1024)
	s, _, _ := c.Alloc(order, 0)
	if c.Free(s) == 0 {
		t.Fatal("first free had no cost")
	}
	if c.Free(s) != 0 {
		t.Fatal("double free should be a no-op")
	}
	if c.Free(nil) != 0 {
		t.Fatal("nil free should be a no-op")
	}
}

func TestSlabPartialReuse(t *testing.T) {
	c, _ := NewSlabCache(mem(), "x", 2048) // 2 per frame
	a, _, _ := c.Alloc(order, 0)
	b, _, _ := c.Alloc(order, 0)
	if a.Frame.ID != b.Frame.ID {
		t.Fatal("two objects should share one frame")
	}
	c.Free(a)
	d, _, _ := c.Alloc(order, 0)
	if d.Frame.ID != b.Frame.ID {
		t.Fatal("freed slot not reused")
	}
}

func TestSlabFullObjectPerFrame(t *testing.T) {
	c, _ := NewSlabCache(mem(), "page-sized", memsim.PageSize)
	if c.ObjectsPerFrame() != 1 {
		t.Fatalf("page-sized slab packs %d", c.ObjectsPerFrame())
	}
	a, _, _ := c.Alloc(order, 0)
	b, _, _ := c.Alloc(order, 0)
	if a.Frame.ID == b.Frame.ID {
		t.Fatal("page-sized objects must not share frames")
	}
}

func TestSlabExhaustion(t *testing.T) {
	m := memsim.NewTwoTier(memsim.TwoTierConfig{FastPages: 1, SlowPages: 1, FastBandwidth: 30, CPUs: 1})
	c, _ := NewSlabCache(m, "x", memsim.PageSize)
	if _, _, err := c.Alloc(order, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Alloc(order, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Alloc(order, 0); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
}

func TestPageAllocator(t *testing.T) {
	m := mem()
	p := &PageAllocator{Mem: m}
	f, cost, err := p.Alloc(order, memsim.ClassCache, 5)
	if err != nil || cost != PageAllocCost {
		t.Fatalf("alloc: %v cost=%v", err, cost)
	}
	if f.Pinned {
		t.Fatal("page-allocated frame pinned")
	}
	p.Free(f)
	if m.Frames() != 0 {
		t.Fatal("page leaked")
	}
}

func TestVmalloc(t *testing.T) {
	m := mem()
	r, cost, err := Vmalloc(m, order, memsim.ClassKloc, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Frames) != 10 || cost != 10*VmallocCostPer {
		t.Fatalf("frames=%d cost=%v", len(r.Frames), cost)
	}
	r.Release(m)
	if m.Frames() != 0 {
		t.Fatal("vmalloc leaked")
	}
}

func TestVmallocPartialFailureUnwinds(t *testing.T) {
	m := memsim.NewTwoTier(memsim.TwoTierConfig{FastPages: 3, SlowPages: 0, FastBandwidth: 30, CPUs: 1})
	_, _, err := Vmalloc(m, []memsim.NodeID{memsim.FastNode}, memsim.ClassKloc, 5, 0)
	if err == nil {
		t.Fatal("oversized vmalloc succeeded")
	}
	if m.Frames() != 0 {
		t.Fatal("failed vmalloc leaked frames")
	}
}

func TestBuddyBasic(t *testing.T) {
	b, err := NewBuddy(16)
	if err != nil {
		t.Fatal(err)
	}
	if b.FreePages() != 16 || b.LargestFree() != 4 {
		t.Fatalf("fresh buddy: free=%d largest=%d", b.FreePages(), b.LargestFree())
	}
	base, err := b.Alloc(2) // 4 pages
	if err != nil {
		t.Fatal(err)
	}
	if b.FreePages() != 12 {
		t.Fatalf("free after alloc = %d", b.FreePages())
	}
	if err := b.Free(base); err != nil {
		t.Fatal(err)
	}
	if b.FreePages() != 16 || b.LargestFree() != 4 {
		t.Fatal("coalescing failed to restore the full block")
	}
}

func TestBuddyErrors(t *testing.T) {
	if _, err := NewBuddy(12); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := NewBuddy(0); err == nil {
		t.Fatal("zero size accepted")
	}
	b, _ := NewBuddy(8)
	if _, err := b.Alloc(10); err == nil {
		t.Fatal("oversized order accepted")
	}
	if _, err := b.Alloc(-1); err == nil {
		t.Fatal("negative order accepted")
	}
	if err := b.Free(3); err == nil {
		t.Fatal("free of unallocated block accepted")
	}
}

func TestBuddyExhaustionAndFragmentation(t *testing.T) {
	b, _ := NewBuddy(8)
	var bases []int
	for i := 0; i < 8; i++ {
		base, err := b.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		bases = append(bases, base)
	}
	if _, err := b.Alloc(0); err == nil {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if b.LargestFree() != -1 {
		t.Fatal("full buddy reports free block")
	}
	if b.Fragmentation() != 0 {
		t.Fatal("full buddy should report 0 fragmentation")
	}
	// Free alternating pages: fragmented free space.
	for i := 0; i < 8; i += 2 {
		if err := b.Free(bases[i]); err != nil {
			t.Fatal(err)
		}
	}
	if b.FreePages() != 4 || b.LargestFree() != 0 {
		t.Fatalf("free=%d largest=%d", b.FreePages(), b.LargestFree())
	}
	if frag := b.Fragmentation(); frag <= 0.5 {
		t.Fatalf("fragmentation = %v, want > 0.5", frag)
	}
	if _, err := b.Alloc(1); err == nil {
		t.Fatal("order-1 alloc should fail under fragmentation")
	}
}

// Property: random alloc/free sequences conserve pages and coalesce
// back to a single block once everything is freed.
func TestBuddyConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		b, _ := NewBuddy(64)
		live := map[int]bool{}
		for i := 0; i < 500; i++ {
			if r.Bool(0.6) {
				if base, err := b.Alloc(r.Intn(3)); err == nil {
					live[base] = true
				}
			} else if len(live) > 0 {
				for base := range live {
					if b.Free(base) != nil {
						return false
					}
					delete(live, base)
					break
				}
			}
		}
		for base := range live {
			if b.Free(base) != nil {
				return false
			}
		}
		return b.FreePages() == 64 && b.LargestFree() == 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestArenaBumpAllocation(t *testing.T) {
	m := mem()
	a := NewArena(m, 7)
	// 2048-byte objects: two per frame.
	s1, c1, err := a.Alloc(order, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c1 <= KlocAllocCost {
		t.Fatal("first alloc should pay the frame-fill cost")
	}
	s2, c2, _ := a.Alloc(order, 2048, 0)
	if c2 != KlocAllocCost {
		t.Fatal("second alloc should reuse the frame")
	}
	if s1.Frame.ID != s2.Frame.ID {
		t.Fatal("bump allocation split across frames prematurely")
	}
	s3, _, _ := a.Alloc(order, 2048, 0)
	if s3.Frame.ID == s1.Frame.ID {
		t.Fatal("overflow object did not open a new frame")
	}
	if a.Frames() != 2 || a.LiveObjects() != 3 {
		t.Fatalf("frames=%d live=%d", a.Frames(), a.LiveObjects())
	}
	// Frames carry the owner stamp and are relocatable ClassKloc.
	if s1.Frame.Knode != 7 || s1.Frame.Pinned || s1.Frame.Class != memsim.ClassKloc {
		t.Fatalf("frame attrs: %+v", s1.Frame)
	}
}

func TestArenaFreeReclaimsFrames(t *testing.T) {
	m := mem()
	a := NewArena(m, 1)
	s1, _, _ := a.Alloc(order, 2048, 0)
	s2, _, _ := a.Alloc(order, 2048, 0)
	a.Free(s1)
	if a.Frames() != 1 {
		t.Fatal("frame freed while objects remain")
	}
	a.Free(s2)
	if a.Frames() != 0 || m.Frames() != 0 {
		t.Fatal("empty arena kept frames")
	}
	if a.Free(s2) != 0 {
		t.Fatal("double free did work")
	}
	// The arena is reusable after draining.
	if _, _, err := a.Alloc(order, 100, 0); err != nil {
		t.Fatal(err)
	}
}

func TestArenaSetOwner(t *testing.T) {
	m := mem()
	a := NewArena(m, 0)
	s, _, _ := a.Alloc(order, 512, 0)
	if s.Frame.Knode != 0 {
		t.Fatal("unowned arena stamped a knode")
	}
	a.SetOwner(42)
	if s.Frame.Knode != 42 {
		t.Fatal("SetOwner did not restamp live frames")
	}
}

func TestArenaOversizeClamps(t *testing.T) {
	m := mem()
	a := NewArena(m, 1)
	s, _, err := a.Alloc(order, memsim.PageSize*4, 0)
	if err != nil || s == nil {
		t.Fatal("oversize alloc should clamp to one page")
	}
	if a.LiveObjects() != 1 || a.Frames() != 1 {
		t.Fatal("clamped alloc accounting wrong")
	}
}
