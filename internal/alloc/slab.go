// Package alloc implements the kernel allocation interfaces the paper
// contrasts in §3.3 and §4.4:
//
//   - the slab allocator (kmalloc / kmem_cache_alloc): fast, physically
//     contiguous, NOT relocatable — slab frames are pinned;
//   - the page allocator (page_alloc): one relocatable frame at a time;
//   - vmalloc: multi-page, virtually mapped, relocatable, slow;
//   - the KLOC allocator: the paper's new interface — nearly slab-fast,
//     but backed by anonymous-VMA-style mappings so the objects it hands
//     out CAN migrate (the paper redirected 400+ kernel allocation sites
//     to it);
//   - a buddy allocator for physically contiguous multi-order requests
//     (block-layer DMA rings).
//
// All allocators return virtual-time costs; placement (which node) is
// the caller's/policy's decision via a fallback order.
package alloc

import (
	"fmt"

	"kloc/internal/fault"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// Cost constants for the allocation fast paths. Relative order is what
// matters: slab < kloc < page < vmalloc (§4.2.2, §4.4).
const (
	SlabAllocCost    sim.Duration = 100
	SlabFreeCost     sim.Duration = 80
	KlocAllocCost    sim.Duration = 180
	KlocFreeCost     sim.Duration = 120
	PageAllocCost    sim.Duration = 300
	PageFreeCost     sim.Duration = 200
	VmallocCostPer   sim.Duration = 1200 // per page: page-table setup
	VmallocTeardown  sim.Duration = 600
	slabNewFrameCost sim.Duration = 400 // refilling a slab from the page allocator
)

// Slot is one object-sized allocation inside a slab or KLOC cache
// frame.
type Slot struct {
	Frame *memsim.Frame
	cache *SlabCache
}

// slabFrame tracks per-frame occupancy inside a cache.
type slabFrame struct {
	frame *memsim.Frame
	used  int
}

// SlabCache is a kmem_cache: fixed-size objects packed into pinned
// frames. Objects from a slab cannot migrate; that is the paper's core
// criticism of using slab allocation for kernel objects that need
// tiering (§3.3).
type SlabCache struct {
	Mem     *memsim.Memory
	Name    string
	ObjSize int
	// Class of frames this cache allocates (ClassSlab for the classic
	// slab; the KLOC allocator reuses this machinery with ClassKloc and
	// unpinned frames).
	Class memsim.Class
	// Pinned controls frame relocatability; true for real slabs.
	Pinned bool
	// AllocCost/FreeCost per object.
	AllocCost, FreeCost sim.Duration

	perFrame int
	partial  []*slabFrame // frames with free slots
	byFrame  map[memsim.FrameID]*slabFrame
}

// NewSlabCache returns a classic (pinned) slab cache for objects of the
// given size. Object sizes outside (0, PageSize] yield EINVAL.
func NewSlabCache(mem *memsim.Memory, name string, objSize int) (*SlabCache, error) {
	return newCache(mem, name, objSize, memsim.ClassSlab, true, SlabAllocCost, SlabFreeCost)
}

// NewKlocCache returns the paper's KLOC allocation interface: same
// packing discipline, but frames are relocatable (anonymous-VMA-backed)
// and the per-object cost is slightly higher than slab. Object sizes
// outside (0, PageSize] yield EINVAL.
func NewKlocCache(mem *memsim.Memory, name string, objSize int) (*SlabCache, error) {
	return newCache(mem, name, objSize, memsim.ClassKloc, false, KlocAllocCost, KlocFreeCost)
}

func newCache(mem *memsim.Memory, name string, objSize int, class memsim.Class, pinned bool, ac, fc sim.Duration) (*SlabCache, error) {
	if objSize <= 0 || objSize > memsim.PageSize {
		return nil, fmt.Errorf("alloc: cache %q object size %d out of range: %w", name, objSize, fault.EINVAL)
	}
	per := memsim.PageSize / objSize
	if per < 1 {
		per = 1
	}
	return &SlabCache{
		Mem: mem, Name: name, ObjSize: objSize, Class: class, Pinned: pinned,
		AllocCost: ac, FreeCost: fc,
		perFrame: per,
		byFrame:  make(map[memsim.FrameID]*slabFrame),
	}, nil
}

// ObjectsPerFrame reports the packing density.
func (c *SlabCache) ObjectsPerFrame() int { return c.perFrame }

// Alloc carves one object slot, pulling a fresh frame from the memory
// system (trying nodes in order) when no partial frame has space.
func (c *SlabCache) Alloc(order []memsim.NodeID, now sim.Time) (*Slot, sim.Duration, error) {
	cost := c.AllocCost
	// Prefer the most-recently added partial frame (LIFO keeps slabs
	// warm, like the real allocator's per-CPU freelists).
	for len(c.partial) > 0 {
		sf := c.partial[len(c.partial)-1]
		if sf.used < c.perFrame {
			sf.used++
			if sf.used == c.perFrame {
				c.partial = c.partial[:len(c.partial)-1]
			}
			return &Slot{Frame: sf.frame, cache: c}, cost, nil
		}
		c.partial = c.partial[:len(c.partial)-1]
	}
	frame, err := c.Mem.AllocFallback(order, c.Class, now)
	if err != nil {
		return nil, 0, err
	}
	frame.Pinned = c.Pinned
	sf := &slabFrame{frame: frame, used: 1}
	c.byFrame[frame.ID] = sf
	if c.perFrame > 1 {
		c.partial = append(c.partial, sf)
	}
	return &Slot{Frame: frame, cache: c}, cost + slabNewFrameCost, nil
}

// Free returns a slot; the backing frame is released when its last
// object dies. Returns the virtual cost.
func (c *SlabCache) Free(s *Slot) sim.Duration {
	if s == nil || s.cache != c {
		return 0
	}
	sf := c.byFrame[s.Frame.ID]
	if sf == nil {
		return 0
	}
	wasFull := sf.used == c.perFrame
	sf.used--
	if sf.used == 0 {
		delete(c.byFrame, s.Frame.ID)
		c.removePartial(sf)
		c.Mem.Free(sf.frame)
	} else if wasFull && c.perFrame > 1 {
		c.partial = append(c.partial, sf)
	}
	s.cache = nil
	return c.FreeCost
}

func (c *SlabCache) removePartial(sf *slabFrame) {
	for i, p := range c.partial {
		if p == sf {
			c.partial = append(c.partial[:i], c.partial[i+1:]...)
			return
		}
	}
}

// Frames reports how many frames the cache currently holds.
func (c *SlabCache) Frames() int { return len(c.byFrame) }

// LiveObjects reports the number of live slots.
func (c *SlabCache) LiveObjects() int {
	n := 0
	for _, sf := range c.byFrame {
		n += sf.used
	}
	return n
}

// FootprintPages is the page footprint (== Frames, one page per slab).
func (c *SlabCache) FootprintPages() int { return len(c.byFrame) }
