package alloc

import (
	"fmt"
	"sort"
	"strings"

	"kloc/internal/sim"
)

// Sanitizer is the runtime complement of the kloclint analyzers: a
// KASAN/kmemleak analog over the simulated allocators. Subsystems
// report every allocation, free, and object access to it; the
// sanitizer keeps freed IDs in a poison quarantine to catch double
// frees and use-after-free accesses as they happen, and at teardown
// runs a kmemleak-style reachability scan — the kernel marks every
// object still referenced from its roots (inodes, journal, sockets,
// app page tables) and whatever live object goes unmarked is a leak,
// reported grouped by KLOC context.
//
// A nil *Sanitizer is valid and inert: every method no-ops, so
// subsystems call unconditionally (the fault/trace plane discipline).
// The sanitizer is strictly passive — it never charges virtual time,
// draws randomness, or touches simulation state — so a sanitized run
// is bit-identical to an unsanitized one at the same seed.
type Sanitizer struct {
	live  map[uint64]*sanObject
	freed map[uint64]*sanObject
	// fifo bounds the quarantine: oldest freed IDs are forgotten first,
	// like KASAN's quarantine recycling.
	fifo     []uint64
	findings []SanFinding
	total    int
	reached  map[uint64]bool
}

// sanObject is the tracked metadata of one allocation.
type sanObject struct {
	id    uint64
	class string
	ctx   uint64
	size  int64
	born  sim.Time
	freed sim.Time
}

// sanQuarantine bounds the freed-ID poison set.
const sanQuarantine = 1 << 16

// sanMaxFindings bounds the per-kind finding lists; totals keep
// counting past the cap.
const sanMaxFindings = 256

// NewSanitizer returns an armed sanitizer.
func NewSanitizer() *Sanitizer {
	return &Sanitizer{
		live:  make(map[uint64]*sanObject),
		freed: make(map[uint64]*sanObject),
	}
}

// SanKind classifies a finding.
type SanKind uint8

// Finding kinds.
const (
	SanDoubleFree SanKind = iota
	SanUseAfterFree
	SanLeak
)

func (k SanKind) String() string {
	switch k {
	case SanDoubleFree:
		return "double-free"
	case SanUseAfterFree:
		return "use-after-free"
	default:
		return "leak"
	}
}

// SanFinding is one detected violation.
type SanFinding struct {
	Kind SanKind
	// ID is the object ID (app pages carry the high app bit).
	ID uint64
	// Class is the object's type/class string as traced.
	Class string
	// Ctx is the object's KLOC context (inode/knode; 0 = unassociated).
	Ctx uint64
	// Size in bytes.
	Size int64
	// At is the virtual time of detection (teardown time for leaks).
	At sim.Time
	// Born is the allocation time; Freed the original free time for
	// double-free and use-after-free findings.
	Born  sim.Time
	Freed sim.Time
}

func (f SanFinding) String() string {
	switch f.Kind {
	case SanLeak:
		return fmt.Sprintf("%s: obj=%d class=%s ctx=%d size=%d born=%d", f.Kind, f.ID, f.Class, f.Ctx, f.Size, int64(f.Born))
	default:
		return fmt.Sprintf("%s: obj=%d class=%s ctx=%d size=%d at=%d first-freed=%d", f.Kind, f.ID, f.Class, f.Ctx, f.Size, int64(f.At), int64(f.Freed))
	}
}

// LeakGroup aggregates leaked objects sharing a KLOC context.
type LeakGroup struct {
	Ctx   uint64
	Count int
	Bytes int64
}

// SanReport is the end-of-run sanitizer summary.
type SanReport struct {
	// Findings holds the double-free and use-after-free events in
	// detection order, capped at sanMaxFindings; TotalFindings keeps
	// the uncapped count.
	Findings      []SanFinding
	TotalFindings int
	// Leaks lists objects live but unreachable at teardown, sorted by
	// context then ID, capped like Findings.
	Leaks      []SanFinding
	TotalLeaks int
	LeakBytes  int64
	// LeakGroups aggregates the leaks per KLOC context (ascending).
	LeakGroups []LeakGroup
	// TrackedLive counts all objects live at teardown, reachable or
	// not.
	TrackedLive int
}

// Clean reports whether the run had no findings of any kind.
func (r *SanReport) Clean() bool {
	return r == nil || (r.TotalFindings == 0 && r.TotalLeaks == 0)
}

// String renders the report in the trace plane's text style.
func (r *SanReport) String() string {
	if r == nil {
		return "sanitizer: not armed\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sanitizer: %d findings, %d leaked objects (%d bytes), %d live at teardown\n",
		r.TotalFindings, r.TotalLeaks, r.LeakBytes, r.TrackedLive)
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	if r.TotalFindings > len(r.Findings) {
		fmt.Fprintf(&b, "  ... %d more findings\n", r.TotalFindings-len(r.Findings))
	}
	for _, g := range r.LeakGroups {
		fmt.Fprintf(&b, "  leak-group: ctx=%d count=%d bytes=%d\n", g.Ctx, g.Count, g.Bytes)
	}
	for _, f := range r.Leaks {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	if r.TotalLeaks > len(r.Leaks) {
		fmt.Fprintf(&b, "  ... %d more leaks\n", r.TotalLeaks-len(r.Leaks))
	}
	return b.String()
}

// TrackAlloc records an allocation. Class and ctx mirror what the
// trace plane would emit for the object.
func (s *Sanitizer) TrackAlloc(id uint64, class string, ctx uint64, size int64, at sim.Time) {
	if s == nil {
		return
	}
	// Reallocation of a quarantined ID would be an allocator bug; the
	// simulator's ID generators are monotonic, so simply un-poison.
	delete(s.freed, id)
	s.live[id] = &sanObject{id: id, class: class, ctx: ctx, size: size, born: at}
}

// Associate updates the object's KLOC context after late demux.
func (s *Sanitizer) Associate(id, ctx uint64) {
	if s == nil {
		return
	}
	if o, ok := s.live[id]; ok {
		o.ctx = ctx
	}
}

// TrackFree records a free, detecting double frees against the poison
// quarantine.
func (s *Sanitizer) TrackFree(id uint64, at sim.Time) {
	if s == nil {
		return
	}
	if o, ok := s.freed[id]; ok {
		s.report(SanFinding{Kind: SanDoubleFree, ID: id, Class: o.class, Ctx: o.ctx,
			Size: o.size, At: at, Born: o.born, Freed: o.freed})
		return
	}
	o, ok := s.live[id]
	if !ok {
		// Unknown ID: allocated before the sanitizer attached (or
		// quarantine already recycled it). Nothing to check.
		return
	}
	delete(s.live, id)
	o.freed = at
	s.freed[id] = o
	s.fifo = append(s.fifo, id)
	if len(s.fifo) > sanQuarantine {
		delete(s.freed, s.fifo[0])
		s.fifo = s.fifo[1:]
	}
}

// CheckAccess flags accesses to quarantined (freed) objects.
func (s *Sanitizer) CheckAccess(id uint64, at sim.Time) {
	if s == nil {
		return
	}
	if o, ok := s.freed[id]; ok {
		s.report(SanFinding{Kind: SanUseAfterFree, ID: id, Class: o.class, Ctx: o.ctx,
			Size: o.size, At: at, Born: o.born, Freed: o.freed})
	}
}

func (s *Sanitizer) report(f SanFinding) {
	s.total++
	if len(s.findings) < sanMaxFindings {
		s.findings = append(s.findings, f)
	}
}

// BeginScan starts a kmemleak-style reachability scan: the owner marks
// every object reachable from its roots, then calls Report.
func (s *Sanitizer) BeginScan() {
	if s == nil {
		return
	}
	s.reached = make(map[uint64]bool, len(s.live))
}

// MarkReachable marks one live object as referenced from a root.
func (s *Sanitizer) MarkReachable(id uint64) {
	if s == nil || s.reached == nil {
		return
	}
	s.reached[id] = true
}

// Report closes the scan: every live object not marked reachable is a
// leak. The report is deterministic — leaks sort by context then ID.
func (s *Sanitizer) Report(at sim.Time) *SanReport {
	if s == nil {
		return nil
	}
	r := &SanReport{
		Findings:      s.findings,
		TotalFindings: s.total,
		TrackedLive:   len(s.live),
	}
	var leaked []*sanObject
	for id, o := range s.live {
		if !s.reached[id] {
			leaked = append(leaked, o)
		}
	}
	sort.Slice(leaked, func(i, j int) bool {
		if leaked[i].ctx != leaked[j].ctx {
			return leaked[i].ctx < leaked[j].ctx
		}
		return leaked[i].id < leaked[j].id
	})
	for _, o := range leaked {
		r.TotalLeaks++
		r.LeakBytes += o.size
		if len(r.LeakGroups) == 0 || r.LeakGroups[len(r.LeakGroups)-1].Ctx != o.ctx {
			r.LeakGroups = append(r.LeakGroups, LeakGroup{Ctx: o.ctx})
		}
		g := &r.LeakGroups[len(r.LeakGroups)-1]
		g.Count++
		g.Bytes += o.size
		if len(r.Leaks) < sanMaxFindings {
			r.Leaks = append(r.Leaks, SanFinding{Kind: SanLeak, ID: o.id, Class: o.class,
				Ctx: o.ctx, Size: o.size, At: at, Born: o.born})
		}
	}
	s.reached = nil
	return r
}
