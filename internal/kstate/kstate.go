// Package kstate holds the small shared vocabulary between the
// simulated kernel subsystems (fs, netsim) and the policy layer that
// steers them: the per-operation context, inode/object ID generators,
// and the Hooks interface — the simulation's equivalent of the paper's
// 400+ redirected allocation sites and system-call intercepts (§4.2).
package kstate

import (
	"kloc/internal/kobj"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// Ctx is the execution context of one kernel operation: the CPU it runs
// on, the virtual time it started, and the cost accumulated so far.
// Subsystems Charge costs as they touch memory and devices; the driver
// loop advances virtual time by the total when the operation retires.
type Ctx struct {
	CPU  int
	Now  sim.Time
	Cost sim.Duration
}

// Charge adds virtual cost to the operation.
func (c *Ctx) Charge(d sim.Duration) {
	if d > 0 {
		c.Cost += d
	}
}

// IDGen hands out monotonically increasing IDs (object IDs, inode
// numbers). The zero value is ready to use; the first ID is 1, so 0
// can mean "none".
type IDGen struct{ next uint64 }

// Next returns the next ID.
func (g *IDGen) Next() uint64 {
	g.next++
	return g.next
}

// Hooks is how the kernel subsystems consult the active tiering policy
// and report lifecycle events. A policy implements Hooks; NopHooks is
// the do-nothing base to embed.
type Hooks interface {
	// PlaceKernel returns the node fallback order for a kernel-object
	// allocation of type t belonging to inode ino (0 when the owner is
	// not yet known, e.g. an undemuxed ingress packet).
	PlaceKernel(ctx *Ctx, t kobj.Type, ino uint64) []memsim.NodeID
	// PlaceApp returns the fallback order for application pages.
	PlaceApp(ctx *Ctx) []memsim.NodeID
	// UseKlocAllocator reports whether slab-class objects of type t
	// should come from the relocatable KLOC allocation interface
	// instead of the pinned slab (§4.4).
	UseKlocAllocator(t kobj.Type) bool
	// DriverSockExtract reports whether ingress packets are associated
	// with their socket inside the device driver (the paper's 8-byte
	// skbuff extension, §4.2.3) rather than high in the TCP stack.
	DriverSockExtract() bool

	// Lifecycle notifications.
	InodeCreated(ctx *Ctx, ino uint64, sock bool)
	InodeOpened(ctx *Ctx, ino uint64)
	InodeClosed(ctx *Ctx, ino uint64)
	InodeDeleted(ctx *Ctx, ino uint64)
	ObjectCreated(ctx *Ctx, ino uint64, o *kobj.Object)
	// ObjectAssociated fires when a late demux resolves an object's
	// owner (ingress path without driver extraction).
	ObjectAssociated(ctx *Ctx, ino uint64, o *kobj.Object)
	ObjectFreed(ctx *Ctx, o *kobj.Object)

	// Page-level notifications for the LRU machinery.
	PageAllocated(ctx *Ctx, f *memsim.Frame)
	PageAccessed(ctx *Ctx, f *memsim.Frame)
	PageFreed(ctx *Ctx, f *memsim.Frame)
}

// NopHooks implements Hooks with defaults: allocate everywhere in node
// order, classic slab, TCP-layer demux, ignore all notifications.
// Embed it to implement only what a policy needs.
type NopHooks struct {
	// Order is the default fallback order returned by both placement
	// hooks; nil means node 0 then node 1.
	Order []memsim.NodeID
}

func (n NopHooks) defaultOrder() []memsim.NodeID {
	if n.Order != nil {
		return n.Order
	}
	return []memsim.NodeID{0, 1}
}

// PlaceKernel returns the default order.
func (n NopHooks) PlaceKernel(*Ctx, kobj.Type, uint64) []memsim.NodeID { return n.defaultOrder() }

// PlaceApp returns the default order.
func (n NopHooks) PlaceApp(*Ctx) []memsim.NodeID { return n.defaultOrder() }

// UseKlocAllocator is false: classic slab.
func (n NopHooks) UseKlocAllocator(kobj.Type) bool { return false }

// DriverSockExtract is false: demux at the TCP layer.
func (n NopHooks) DriverSockExtract() bool { return false }

// InodeCreated does nothing.
func (n NopHooks) InodeCreated(*Ctx, uint64, bool) {}

// InodeOpened does nothing.
func (n NopHooks) InodeOpened(*Ctx, uint64) {}

// InodeClosed does nothing.
func (n NopHooks) InodeClosed(*Ctx, uint64) {}

// InodeDeleted does nothing.
func (n NopHooks) InodeDeleted(*Ctx, uint64) {}

// ObjectCreated does nothing.
func (n NopHooks) ObjectCreated(*Ctx, uint64, *kobj.Object) {}

// ObjectAssociated does nothing.
func (n NopHooks) ObjectAssociated(*Ctx, uint64, *kobj.Object) {}

// ObjectFreed does nothing.
func (n NopHooks) ObjectFreed(*Ctx, *kobj.Object) {}

// PageAllocated does nothing.
func (n NopHooks) PageAllocated(*Ctx, *memsim.Frame) {}

// PageAccessed does nothing.
func (n NopHooks) PageAccessed(*Ctx, *memsim.Frame) {}

// PageFreed does nothing.
func (n NopHooks) PageFreed(*Ctx, *memsim.Frame) {}

var _ Hooks = NopHooks{}
