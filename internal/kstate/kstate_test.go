package kstate

import (
	"testing"

	"kloc/internal/kobj"
	"kloc/internal/memsim"
)

func TestCtxCharge(t *testing.T) {
	c := &Ctx{CPU: 1, Now: 100}
	c.Charge(10)
	c.Charge(5)
	c.Charge(-3) // negative charges ignored
	if c.Cost != 15 {
		t.Fatalf("cost = %v", c.Cost)
	}
}

func TestIDGen(t *testing.T) {
	var g IDGen
	if g.Next() != 1 || g.Next() != 2 || g.Next() != 3 {
		t.Fatal("IDs not sequential from 1")
	}
}

func TestNopHooksDefaults(t *testing.T) {
	h := NopHooks{}
	order := h.PlaceKernel(nil, kobj.Inode, 0)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("default order = %v", order)
	}
	if h.UseKlocAllocator(kobj.Dentry) || h.DriverSockExtract() {
		t.Fatal("NopHooks should default to classic kernel behaviour")
	}
	custom := NopHooks{Order: []memsim.NodeID{1}}
	if o := custom.PlaceApp(nil); len(o) != 1 || o[0] != 1 {
		t.Fatalf("custom order = %v", o)
	}
	// Notifications must be safe no-ops.
	h.InodeCreated(nil, 1, false)
	h.InodeOpened(nil, 1)
	h.InodeClosed(nil, 1)
	h.InodeDeleted(nil, 1)
	h.ObjectCreated(nil, 1, nil)
	h.ObjectAssociated(nil, 1, nil)
	h.ObjectFreed(nil, nil)
	h.PageAllocated(nil, nil)
	h.PageAccessed(nil, nil)
	h.PageFreed(nil, nil)
}
