package fs

import (
	"testing"

	"kloc/internal/blockdev"
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

type recordingHooks struct {
	kstate.NopHooks
	created, opened, closed, deleted []uint64
	objsCreated, objsFreed           int
	pagesAllocated, pagesFreed       int
	useKloc                          bool
}

func (h *recordingHooks) UseKlocAllocator(kobj.Type) bool { return h.useKloc }
func (h *recordingHooks) InodeCreated(_ *kstate.Ctx, ino uint64, _ bool) {
	h.created = append(h.created, ino)
}
func (h *recordingHooks) InodeOpened(_ *kstate.Ctx, ino uint64) { h.opened = append(h.opened, ino) }
func (h *recordingHooks) InodeClosed(_ *kstate.Ctx, ino uint64) { h.closed = append(h.closed, ino) }
func (h *recordingHooks) InodeDeleted(_ *kstate.Ctx, ino uint64) {
	h.deleted = append(h.deleted, ino)
}
func (h *recordingHooks) ObjectCreated(*kstate.Ctx, uint64, *kobj.Object) { h.objsCreated++ }
func (h *recordingHooks) ObjectFreed(*kstate.Ctx, *kobj.Object)           { h.objsFreed++ }
func (h *recordingHooks) PageAllocated(*kstate.Ctx, *memsim.Frame)        { h.pagesAllocated++ }
func (h *recordingHooks) PageFreed(*kstate.Ctx, *memsim.Frame)            { h.pagesFreed++ }

func newFS(t *testing.T, hooks kstate.Hooks) (*FS, *memsim.Memory) {
	t.Helper()
	mem := memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 512, SlowPages: 4096,
		FastBandwidth: 30, BandwidthRatio: 4, CPUs: 4,
	})
	mq := blockdev.NewMQ(blockdev.DefaultNVMe(), 4)
	if hooks == nil {
		hooks = kstate.NopHooks{}
	}
	var objIDs, inoGen kstate.IDGen
	return New(mem, mq, hooks, &objIDs, &inoGen), mem
}

func ctxAt(now sim.Time) *kstate.Ctx { return &kstate.Ctx{CPU: 0, Now: now} }

func TestCreateAllocatesTableOneObjects(t *testing.T) {
	h := &recordingHooks{}
	f, _ := newFS(t, h)
	ctx := ctxAt(0)
	file, err := f.Create(ctx, "/a")
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Cost <= 0 {
		t.Fatal("create was free")
	}
	if len(h.created) != 1 || len(h.opened) != 1 {
		t.Fatalf("hooks: created=%v opened=%v", h.created, h.opened)
	}
	// inode + dentry + journal record.
	if f.Stats.ObjAllocs[kobj.Inode] != 1 || f.Stats.ObjAllocs[kobj.Dentry] != 1 || f.Stats.ObjAllocs[kobj.Journal] != 1 {
		t.Fatalf("object allocs: %v", f.Stats.ObjAllocs)
	}
	if file.Inode.Path != "/a" || file.Inode.Refs != 1 {
		t.Fatalf("inode: %+v", file.Inode)
	}
	if f.Inodes() != 1 {
		t.Fatal("inode not registered")
	}
}

func TestCreateExistingOpens(t *testing.T) {
	f, _ := newFS(t, nil)
	f.Create(ctxAt(0), "/a")
	file, err := f.Create(ctxAt(1), "/a")
	if err != nil {
		t.Fatal(err)
	}
	if f.Inodes() != 1 {
		t.Fatal("duplicate inode created")
	}
	if file.Inode.Refs != 2 {
		t.Fatalf("refs = %d", file.Inode.Refs)
	}
}

func TestOpenMissingFails(t *testing.T) {
	f, _ := newFS(t, nil)
	if _, err := f.Open(ctxAt(0), "/missing"); err == nil {
		t.Fatal("open of missing path succeeded")
	}
}

func TestWriteBuildsPageCacheAndJournal(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/db")
	for i := int64(0); i < 10; i++ {
		if err := f.Write(ctx, file, i); err != nil {
			t.Fatal(err)
		}
	}
	if file.Inode.CachedPages() != 10 {
		t.Fatalf("cached pages = %d", file.Inode.CachedPages())
	}
	if f.Stats.ObjAllocs[kobj.PageCache] != 10 {
		t.Fatalf("page cache allocs = %d", f.Stats.ObjAllocs[kobj.PageCache])
	}
	if f.Stats.ObjAllocs[kobj.Extent] == 0 || f.Stats.ObjAllocs[kobj.RadixNode] == 0 {
		t.Fatal("no extent/radix objects")
	}
	if f.JournalPending() == 0 {
		t.Fatal("no journal records pending")
	}
	if file.Inode.SizePages != 10 {
		t.Fatalf("size = %d", file.Inode.SizePages)
	}
	// Rewrite is a cache hit and does not grow the cache.
	f.Write(ctx, file, 3)
	if file.Inode.CachedPages() != 10 || f.Stats.CacheHits == 0 {
		t.Fatal("rewrite missed the cache")
	}
}

func TestReadHitVsMissCost(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/data")
	f.Write(ctx, file, 0)

	hit := ctxAt(10)
	if err := f.Read(hit, file, 0); err != nil {
		t.Fatal(err)
	}
	miss := ctxAt(sim.Time(1 * sim.Second)) // idle device
	if err := f.Read(miss, file, 40); err != nil {
		t.Fatal(err)
	}
	if hit.Cost >= miss.Cost {
		t.Fatalf("cache hit (%v) not cheaper than miss (%v)", hit.Cost, miss.Cost)
	}
	if f.Stats.CacheHits == 0 || f.Stats.CacheMisses == 0 {
		t.Fatalf("hit/miss stats: %+v", f.Stats)
	}
}

func TestSequentialReadahead(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/seq")
	// Sequential reads trigger prefetch after a streak of 2.
	for i := int64(0); i < 4; i++ {
		c := ctxAt(sim.Time(i) * sim.Time(sim.Millisecond))
		if err := f.Read(c, file, i); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats.ReadaheadIssued == 0 {
		t.Fatal("no readahead on a sequential streak")
	}
	// The prefetched page is already cached: this read is a hit.
	c := ctxAt(sim.Time(100 * sim.Millisecond))
	before := f.Stats.CacheMisses
	f.Read(c, file, 4)
	if f.Stats.CacheMisses != before {
		t.Fatal("prefetched page missed")
	}
}

func TestRandomReadsNoReadahead(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/rand")
	for _, idx := range []int64{10, 3, 77, 21, 50} {
		f.Read(ctxAt(ctx.Now), file, idx)
	}
	if f.Stats.ReadaheadIssued != 0 {
		t.Fatalf("readahead on random reads: %d", f.Stats.ReadaheadIssued)
	}
}

func TestReadaheadDisabled(t *testing.T) {
	f, _ := newFS(t, nil)
	f.ReadaheadWindow = 0
	file, _ := f.Create(ctxAt(0), "/x")
	for i := int64(0); i < 6; i++ {
		f.Read(ctxAt(0), file, i)
	}
	if f.Stats.ReadaheadIssued != 0 {
		t.Fatal("disabled readahead still issued")
	}
}

func TestFsyncCommitsJournalAndWritesBack(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/wal")
	for i := int64(0); i < 20; i++ {
		f.Write(ctx, file, i)
	}
	sync := ctxAt(sim.Time(10 * sim.Millisecond))
	if err := f.Fsync(sync, file); err != nil {
		t.Fatal(err)
	}
	if sync.Cost <= 0 {
		t.Fatal("fsync was free")
	}
	if f.JournalPending() != 0 {
		t.Fatal("journal not committed")
	}
	if f.Stats.WritebackPages != 20 {
		t.Fatalf("writeback pages = %d", f.Stats.WritebackPages)
	}
	// bios and blk_mq objects were allocated and freed.
	if f.Stats.ObjAllocs[kobj.Block] == 0 || f.Stats.ObjAllocs[kobj.BlkMQ] == 0 {
		t.Fatal("no block-layer objects")
	}
	if f.Stats.ObjLive[kobj.Block] != 0 || f.Stats.ObjLive[kobj.BlkMQ] != 0 {
		t.Fatal("block-layer objects leaked")
	}
	// Second fsync with nothing dirty is cheap.
	sync2 := ctxAt(sim.Time(20 * sim.Millisecond))
	f.Fsync(sync2, file)
	if sync2.Cost >= sync.Cost {
		t.Fatal("clean fsync as expensive as dirty fsync")
	}
}

func TestJournalAutoCommitAtLimit(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/j")
	for i := int64(0); i < int64(DefaultJournalMaxPending)+10; i++ {
		f.Write(ctx, file, i)
	}
	if f.Stats.JournalCommits == 0 {
		t.Fatal("journal never force-committed")
	}
	if f.JournalPending() >= DefaultJournalMaxPending {
		t.Fatalf("pending = %d", f.JournalPending())
	}
}

func TestCloseFiresInodeClosedAtZeroRefs(t *testing.T) {
	h := &recordingHooks{}
	f, _ := newFS(t, h)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/c")
	file2, _ := f.Open(ctx, "/c")
	f.Close(ctx, file)
	if len(h.closed) != 0 {
		t.Fatal("InodeClosed fired while refs remain")
	}
	f.Close(ctx, file2)
	if len(h.closed) != 1 {
		t.Fatal("InodeClosed not fired at zero refs")
	}
	// Page cache survives close — that is the whole point.
	if f.Inodes() != 1 {
		t.Fatal("inode destroyed on close")
	}
}

func TestUnlinkDeallocatesEverything(t *testing.T) {
	h := &recordingHooks{}
	f, mem := newFS(t, h)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/tmp")
	for i := int64(0); i < 8; i++ {
		f.Write(ctx, file, i)
	}
	f.Fsync(ctx, file)
	f.Close(ctx, file)
	if err := f.Unlink(ctx, "/tmp"); err != nil {
		t.Fatal(err)
	}
	f.SyncJournal(ctx) // flush the unlink's own journal record
	if f.Inodes() != 0 {
		t.Fatal("inode survived unlink")
	}
	if len(h.deleted) != 1 {
		t.Fatal("InodeDeleted not fired")
	}
	// All object classes drained.
	for typ := range f.Stats.ObjLive {
		if f.Stats.ObjLive[typ] != 0 {
			t.Fatalf("type %s leaked %d objects", kobj.Type(typ), f.Stats.ObjLive[typ])
		}
	}
	if mem.Frames() != 0 {
		t.Fatalf("%d frames leaked", mem.Frames())
	}
}

func TestUnlinkOpenFileDefersDestroy(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/held")
	if err := f.Unlink(ctx, "/held"); err != nil {
		t.Fatal(err)
	}
	if f.Inodes() != 1 {
		t.Fatal("open inode destroyed by unlink")
	}
	// POSIX semantics: destroy happens when last ref drops... our sim
	// destroys lazily at next unlink check; Close alone keeps it. The
	// inode is at least unreachable by path.
	if _, err := f.Open(ctxAt(1), "/held"); err == nil {
		t.Fatal("unlinked path still opens")
	}
	_ = file
}

func TestUnlinkMissing(t *testing.T) {
	f, _ := newFS(t, nil)
	if err := f.Unlink(ctxAt(0), "/nope"); err == nil {
		t.Fatal("unlink of missing file succeeded")
	}
}

func TestEvictFrame(t *testing.T) {
	f, mem := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/evict")
	f.Write(ctx, file, 0) // dirty page
	var frame *memsim.Frame
	file.Inode.pages.Ascend(func(_ int64, p *Page) bool { frame = p.Obj.Frame; return false })
	evictCtx := ctxAt(sim.Time(5 * sim.Millisecond))
	if !f.EvictFrame(evictCtx, frame) {
		t.Fatal("evict failed")
	}
	if evictCtx.Cost <= 0 {
		t.Fatal("dirty eviction without writeback cost")
	}
	if file.Inode.CachedPages() != 0 {
		t.Fatal("page survived eviction")
	}
	// Unknown frame.
	foreign, _ := mem.Alloc(memsim.FastNode, memsim.ClassApp, 0)
	if f.EvictFrame(ctxAt(0), foreign) {
		t.Fatal("evicted a frame the FS does not own")
	}
}

func TestDropCleanPages(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/drop")
	for i := int64(0); i < 10; i++ {
		f.Write(ctx, file, i)
	}
	f.Fsync(ctx, file) // all clean now
	dropped := f.DropCleanPages(ctx, file.Inode, 4)
	if dropped != 4 || file.Inode.CachedPages() != 6 {
		t.Fatalf("dropped=%d cached=%d", dropped, file.Inode.CachedPages())
	}
	// Dirty pages are not droppable.
	f.Write(ctx, file, 20)
	before := file.Inode.CachedPages()
	f.DropCleanPages(ctx, file.Inode, 100)
	if file.Inode.CachedPages() != before-(before-1) {
		// all clean pages dropped, dirty one remains
	}
	remaining := 0
	file.Inode.pages.Ascend(func(_ int64, p *Page) bool {
		if p.Dirty {
			remaining++
		}
		return true
	})
	if remaining != 1 {
		t.Fatalf("dirty pages after drop: %d", remaining)
	}
}

func TestKlocAllocatorRouting(t *testing.T) {
	h := &recordingHooks{useKloc: true}
	f, _ := newFS(t, h)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/k")
	// Slab-class objects (inode, dentry) should be relocatable now.
	for _, o := range file.Inode.Objects() {
		if o.Type.Info().Alloc == kobj.AllocSlab {
			if o.Frame.Pinned {
				t.Fatalf("%s object pinned despite KLOC allocator", o.Type)
			}
			if o.Frame.Class != memsim.ClassKloc {
				t.Fatalf("%s frame class = %v", o.Type, o.Frame.Class)
			}
		}
	}
}

func TestDentryCacheHitPath(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/hot")
	f.Close(ctx, file)
	f.Open(ctxAt(1), "/hot")
	if f.Stats.DentryHits == 0 {
		t.Fatal("no dentry cache hit on reopen")
	}
}

func TestObjectsEnumeration(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/enum")
	f.Write(ctx, file, 0)
	objs := file.Inode.Objects()
	types := map[kobj.Type]int{}
	for _, o := range objs {
		types[o.Type]++
	}
	for _, want := range []kobj.Type{kobj.Inode, kobj.Dentry, kobj.PageCache, kobj.RadixNode, kobj.Extent} {
		if types[want] == 0 {
			t.Fatalf("missing %s in Objects()", want)
		}
	}
}

func TestMemoryPressurePropagates(t *testing.T) {
	// Tiny memory: writes must eventually fail with ErrNoMemory rather
	// than wedging.
	mem := memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 8, SlowPages: 8, FastBandwidth: 30, BandwidthRatio: 4, CPUs: 1,
	})
	var objIDs, inoGen kstate.IDGen
	f := New(mem, blockdev.NewMQ(blockdev.DefaultNVMe(), 1), kstate.NopHooks{}, &objIDs, &inoGen)
	ctx := ctxAt(0)
	file, err := f.Create(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := int64(0); i < 64; i++ {
		if lastErr = f.Write(ctx, file, i); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("writes never hit memory pressure")
	}
}
