package fs

import (
	"kloc/internal/kobj"
	"kloc/internal/kstate"
)

// Rename moves a file to a new path: the dentry cache is updated, the
// old dentry is invalidated, and the metadata update is journalled.
// Renaming over an existing file unlinks the target first (POSIX).
func (f *FS) Rename(ctx *kstate.Ctx, oldPath, newPath string) error {
	ctx.Charge(syscallEntryCost)
	if oldPath == newPath {
		return nil
	}
	ino, ok := f.dcache[oldPath]
	if !ok {
		var exists bool
		if ino, exists = f.findByPath(oldPath); !exists {
			return errNotFound(oldPath)
		}
	}
	ind := f.inodes[ino]
	// Replace semantics.
	if _, exists := f.dcache[newPath]; exists {
		if err := f.Unlink(ctx, newPath); err != nil {
			return err
		}
	}
	delete(f.dcache, oldPath)
	ind.Path = newPath
	f.dcache[newPath] = ino
	f.touchObj(ctx, ind.dentry, 0, true)
	f.Stats.Renames++
	return f.journalRecord(ctx, journalOp{kind: opRename, ino: ino, path: newPath})
}

// Truncate shrinks (or logically grows) a file to sizePages. Shrinking
// drops page-cache pages and extent mappings beyond the new size and
// journals the metadata change — the path RocksDB-style WAL recycling
// exercises.
func (f *FS) Truncate(ctx *kstate.Ctx, file *File, sizePages int64) error {
	ctx.Charge(syscallEntryCost)
	ind := file.Inode
	if sizePages < 0 {
		sizePages = 0
	}
	if sizePages >= ind.SizePages {
		// Logical extension: just metadata.
		ind.SizePages = sizePages
		f.touchObj(ctx, ind.inodeObj, 0, true)
		return f.journalRecord(ctx, journalOp{kind: opTruncate, ino: ind.Ino, idx: sizePages})
	}
	// Collect victims beyond the new size.
	var victims []*Page
	ind.pages.AscendRange(sizePages, 1<<62, func(_ int64, p *Page) bool {
		victims = append(victims, p)
		return true
	})
	for _, p := range victims {
		ind.pages.Delete(p.Idx)
		delete(ind.frameIndex, p.Obj.Frame.ID)
		delete(f.frameOwner, p.Obj.Frame.ID)
		f.freeObj(ctx, p.Obj)
	}
	// Drop extents fully beyond the new size.
	firstKeptExtent := (sizePages + extentSpan - 1) / extentSpan
	var extVictims []int64
	ind.extents.AscendRange(firstKeptExtent, 1<<62, func(base int64, _ *kobj.Object) bool {
		extVictims = append(extVictims, base)
		return true
	})
	for _, base := range extVictims {
		if o, ok := ind.extents.Get(base); ok {
			f.freeObj(ctx, o)
		}
		ind.extents.Delete(base)
	}
	ind.SizePages = sizePages
	f.touchObj(ctx, ind.inodeObj, 0, true)
	f.Stats.Truncates++
	return f.journalRecord(ctx, journalOp{kind: opTruncate, ino: ind.Ino, idx: sizePages})
}
