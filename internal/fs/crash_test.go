package fs

import (
	"fmt"
	"testing"

	"kloc/internal/kobj"
	"kloc/internal/sim"
)

// refInode is the test's independent model of one committed inode. The
// reference commit semantics are re-implemented here (not shared with
// applyDurable) so bookkeeping drift in the journal layer is caught.
type refInode struct {
	path    string
	size    int64
	extents map[int64]bool
}

// refOp mirrors one journal record the test believes the FS logged.
type refOp struct {
	kind journalOpKind
	ino  uint64
	path string
	idx  int64
}

func refApply(model map[uint64]*refInode, op refOp) {
	switch op.kind {
	case opCreate:
		model[op.ino] = &refInode{path: op.path, extents: make(map[int64]bool)}
	case opUnlink:
		delete(model, op.ino)
	case opRename:
		if d := model[op.ino]; d != nil {
			d.path = op.path
		}
	case opTruncate:
		if d := model[op.ino]; d != nil {
			d.size = op.idx
			firstDropped := (op.idx + extentSpan - 1) / extentSpan
			for base := range d.extents {
				if base >= firstDropped {
					delete(d.extents, base)
				}
			}
		}
	case opBlock:
		if d := model[op.ino]; d != nil {
			d.extents[op.idx/extentSpan] = true
			if op.idx+1 > d.size {
				d.size = op.idx + 1
			}
		}
	}
}

// TestCrashReplayMetadataConsistent is the crash-recovery property test:
// a randomized operation sequence with tiny journal transactions,
// crashed at an arbitrary point, must replay to exactly the committed
// metadata — no more, no less — and must leak no kernel objects.
func TestCrashReplayMetadataConsistent(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			f, _ := newFS(t, nil)
			f.JournalMaxPending = 4 // force frequent partial commits
			rng := sim.NewRNG(seed)
			now := sim.Time(0)

			var log []refOp
			open := make(map[string]*File)  // one handle per path
			live := make(map[string]uint64) // mirror of path -> ino

			paths := make([]string, 8)
			for i := range paths {
				paths[i] = fmt.Sprintf("/f%d", i)
			}
			pick := func() string { return paths[rng.Intn(len(paths))] }

			// unlinkRecords mirrors Unlink's journal effect on a path.
			unlinkRecords := func(path string) {
				if ino, ok := live[path]; ok {
					log = append(log, refOp{kind: opUnlink, ino: ino})
					delete(live, path)
				}
			}

			ops := 60 + rng.Intn(240) // crash point varies per seed
			for i := 0; i < ops; i++ {
				ctx := ctxAt(now)
				switch r := rng.Intn(100); {
				case r < 30: // create (or open-existing)
					p := pick()
					wasNew := live[p] == 0
					file, err := f.Create(ctx, p)
					if err != nil {
						t.Fatalf("create %s: %v", p, err)
					}
					if wasNew {
						live[p] = file.Inode.Ino
						log = append(log, refOp{kind: opCreate, ino: file.Inode.Ino, path: p})
					}
					if prev, ok := open[p]; ok {
						f.Close(ctx, prev)
					}
					open[p] = file
				case r < 65: // write a page
					p := pick()
					file, ok := open[p]
					if !ok {
						continue
					}
					idx := int64(rng.Intn(16))
					_, cached := file.Inode.pages.Get(idx)
					if err := f.Write(ctx, file, idx); err != nil {
						t.Fatalf("write %s@%d: %v", p, idx, err)
					}
					if !cached {
						log = append(log, refOp{kind: opBlock, ino: file.Inode.Ino, idx: idx})
					}
				case r < 75: // truncate
					p := pick()
					file, ok := open[p]
					if !ok {
						continue
					}
					size := int64(rng.Intn(12))
					if err := f.Truncate(ctx, file, size); err != nil {
						t.Fatalf("truncate %s: %v", p, err)
					}
					log = append(log, refOp{kind: opTruncate, ino: file.Inode.Ino, idx: size})
				case r < 85: // rename (replace semantics)
					oldP, newP := pick(), pick()
					if oldP == newP || live[oldP] == 0 {
						continue
					}
					ino := live[oldP]
					unlinkRecords(newP) // Rename unlinks an existing target first
					if err := f.Rename(ctx, oldP, newP); err != nil {
						t.Fatalf("rename %s -> %s: %v", oldP, newP, err)
					}
					delete(live, oldP)
					live[newP] = ino
					log = append(log, refOp{kind: opRename, ino: ino, path: newP})
					if file, ok := open[newP]; ok {
						f.Close(ctx, file)
						delete(open, newP)
					}
					if file, ok := open[oldP]; ok {
						open[newP] = file
						delete(open, oldP)
					}
				case r < 93: // unlink
					p := pick()
					if live[p] == 0 {
						continue
					}
					if file, ok := open[p]; ok {
						f.Close(ctx, file)
						delete(open, p)
					}
					if err := f.Unlink(ctx, p); err != nil {
						t.Fatalf("unlink %s: %v", p, err)
					}
					unlinkRecords(p)
				default: // fsync (commits the journal)
					p := pick()
					if file, ok := open[p]; ok {
						if err := f.Fsync(ctx, file); err != nil {
							t.Fatalf("fsync %s: %v", p, err)
						}
					}
				}
				now = now.Add(sim.Duration(1000) + ctx.Cost)
			}

			// What the test believes is durable: everything the journal
			// committed before the crash, i.e. all records minus pending.
			committed := len(log) - f.JournalPending()
			if committed < 0 {
				t.Fatalf("model logged %d records but %d pending", len(log), f.JournalPending())
			}
			model := make(map[uint64]*refInode)
			for _, op := range log[:committed] {
				refApply(model, op)
			}

			ctx := ctxAt(now)
			f.Crash(ctx)

			// A crash must tear down every in-memory object: nothing may
			// survive except the durable image.
			if f.Inodes() != 0 || f.JournalPending() != 0 {
				t.Fatalf("post-crash: %d inodes, %d pending", f.Inodes(), f.JournalPending())
			}
			for typ, live := range f.Stats.ObjLive {
				if live != 0 {
					t.Fatalf("post-crash: %d leaked %v objects", live, kobj.Type(typ))
				}
			}

			if err := f.Replay(ctx); err != nil {
				t.Fatalf("replay: %v", err)
			}

			// The replayed metadata must exactly match the reference model.
			if f.Inodes() != len(model) || f.DurableInodes() != len(model) {
				t.Fatalf("replayed %d inodes (durable %d), model has %d",
					f.Inodes(), f.DurableInodes(), len(model))
			}
			wantExtents := 0
			for ino, ref := range model {
				ind, ok := f.InodeByNum(ino)
				if !ok {
					t.Fatalf("inode %d missing after replay", ino)
				}
				if ind.Path != ref.path {
					t.Fatalf("inode %d path %q, want %q", ino, ind.Path, ref.path)
				}
				if ind.SizePages != ref.size {
					t.Fatalf("inode %d size %d, want %d", ino, ind.SizePages, ref.size)
				}
				if ind.Extents() != len(ref.extents) {
					t.Fatalf("inode %d has %d extents, want %d", ino, ind.Extents(), len(ref.extents))
				}
				wantExtents += len(ref.extents)
			}
			// Object accounting must match the rebuilt image: one inode +
			// one dentry per file, the durable extents, and zero journal
			// buffers (none may leak across a crash).
			if got := f.Stats.ObjLive[kobj.Inode]; got != int64(len(model)) {
				t.Fatalf("live inode objects %d, want %d", got, len(model))
			}
			if got := f.Stats.ObjLive[kobj.Dentry]; got != int64(len(model)) {
				t.Fatalf("live dentry objects %d, want %d", got, len(model))
			}
			if got := f.Stats.ObjLive[kobj.Extent]; got != int64(wantExtents) {
				t.Fatalf("live extent objects %d, want %d", got, wantExtents)
			}
			if got := f.Stats.ObjLive[kobj.Journal]; got != 0 {
				t.Fatalf("live journal objects %d after replay", got)
			}

			// The remounted filesystem must be usable: every durable path
			// opens and serves I/O.
			for _, ref := range model {
				file, err := f.Open(ctx, ref.path)
				if err != nil {
					t.Fatalf("open %s after replay: %v", ref.path, err)
				}
				if ref.size > 0 {
					if err := f.Read(ctx, file, 0); err != nil {
						t.Fatalf("read %s after replay: %v", ref.path, err)
					}
				}
				if err := f.Write(ctx, file, ref.size); err != nil {
					t.Fatalf("write %s after replay: %v", ref.path, err)
				}
				f.Close(ctx, file)
			}
		})
	}
}
