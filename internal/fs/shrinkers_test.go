package fs

import (
	"testing"

	"kloc/internal/kobj"
	"kloc/internal/sim"
)

func TestPageCacheShrinkerCountScan(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/a")
	for i := int64(0); i < 16; i++ {
		f.Write(ctx, file, i)
	}
	f.Fsync(ctx, file) // clean pages: reclaimable
	f.Close(ctx, file)

	sh := f.PageCacheShrinker()
	if sh.Name() != "fs.pagecache" {
		t.Fatalf("name = %s", sh.Name())
	}
	if sh.Count() != f.CachePages() || sh.Count() == 0 {
		t.Fatalf("count = %d, cache = %d", sh.Count(), f.CachePages())
	}
	before := f.CachePages()
	if freed := sh.Scan(ctx, 8); freed != 8 {
		t.Fatalf("scan freed %d, want 8", freed)
	}
	if f.CachePages() != before-8 {
		t.Fatalf("cache pages = %d, want %d", f.CachePages(), before-8)
	}
}

func TestDentryShrinkerFreesDentriesAndIcache(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	// Two closed files: one with cached pages (only its dentry is
	// freeable), one without (fully evictable from the icache).
	withPages, _ := f.Create(ctx, "/with-pages")
	for i := int64(0); i < 4; i++ {
		f.Write(ctx, withPages, i)
	}
	f.Fsync(ctx, withPages)
	f.Close(ctx, withPages)
	bare, _ := f.Create(ctx, "/bare")
	f.Fsync(ctx, bare)
	f.Close(ctx, bare)

	sh := f.DentryShrinker()
	if sh.Name() != "fs.dentry" {
		t.Fatalf("name = %s", sh.Name())
	}
	dentriesBefore := f.Stats.ObjLive[kobj.Dentry]
	inodesBefore := f.Stats.ObjLive[kobj.Inode]
	if sh.Count() < 2 {
		t.Fatalf("count = %d, want at least the two dentries", sh.Count())
	}
	freed := sh.Scan(ctx, 1<<20)
	if freed == 0 {
		t.Fatal("scan freed nothing")
	}
	if got := f.Stats.ObjLive[kobj.Dentry]; got != dentriesBefore-2 {
		t.Fatalf("dentries live = %d, want %d", got, dentriesBefore-2)
	}
	// The page-less inode lost its icache object too; the one with
	// cached pages kept it.
	if got := f.Stats.ObjLive[kobj.Inode]; got != inodesBefore-1 {
		t.Fatalf("inodes live = %d, want %d", got, inodesBefore-1)
	}

	// Both files reopen fine — eviction dropped caches, not data.
	for _, path := range []string{"/with-pages", "/bare"} {
		g, err := f.Open(ctx, path)
		if err != nil {
			t.Fatalf("reopen %s after shrink: %v", path, err)
		}
		f.Close(ctx, g)
	}
}

func TestDentryShrinkerSkipsOpenFiles(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/held")
	f.Fsync(ctx, file) // still open

	sh := f.DentryShrinker()
	if sh.Count() != 0 {
		t.Fatalf("count = %d for an open file", sh.Count())
	}
	if freed := sh.Scan(ctx, 100); freed != 0 {
		t.Fatalf("scan freed %d objects of an open file", freed)
	}
}

func TestOOMVictimFramesPicksColdestLargest(t *testing.T) {
	f, mem := newFS(t, nil)
	// Old, big, closed file: the obvious victim.
	ctx := ctxAt(0)
	cold, _ := f.Create(ctx, "/cold")
	for i := int64(0); i < 8; i++ {
		f.Write(ctx, cold, i)
	}
	f.Fsync(ctx, cold)
	f.Close(ctx, cold)
	// Recently-touched small file.
	later := ctxAt(sim.Time(0).Add(10 * sim.Millisecond))
	hot, _ := f.Create(later, "/hot")
	f.Write(later, hot, 0)
	f.Fsync(later, hot)
	f.Close(later, hot)

	_, firstPage, ok := f.inodes[cold.Inode.Ino].pages.Min()
	if !ok {
		t.Fatal("cold file has no cached pages")
	}
	node := firstPage.Obj.Frame.Node
	frames := f.OOMVictimFrames(node, sim.Time(0).Add(20*sim.Millisecond))
	if len(frames) == 0 {
		t.Fatal("no victim nominated")
	}
	for _, fr := range frames {
		if fr.Node != node {
			t.Fatalf("victim frame on node %d, want %d", fr.Node, node)
		}
	}
	// All frames belong to the cold file: count matches its pages on
	// that node.
	want := 0
	f.inodes[cold.Inode.Ino].pages.Ascend(func(_ int64, p *Page) bool {
		if p.Obj.Frame.Node == node {
			want++
		}
		return true
	})
	if len(frames) != want {
		t.Fatalf("victim frames = %d, want the cold file's %d", len(frames), want)
	}
	_ = mem
}

func TestOOMVictimFramesEmptyFS(t *testing.T) {
	f, _ := newFS(t, nil)
	if frames := f.OOMVictimFrames(0, 0); frames != nil {
		t.Fatalf("victim on an empty FS: %v", frames)
	}
}
