package fs

import (
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// Write writes one page at pageIdx through the page cache: radix-tree
// lookup/insert, page allocation on miss, extent mapping, and a journal
// record for the metadata update (the Fig 3b write path).
func (f *FS) Write(ctx *kstate.Ctx, file *File, pageIdx int64) error {
	ctx.Charge(syscallEntryCost)
	ind := file.Inode
	ind.lastUsed = ctx.Now
	f.Stats.Writes++
	if _, err := f.radixNode(ctx, ind, pageIdx); err != nil {
		return err
	}
	// Block mapping consults the extent tree on every write.
	if _, err := f.extentFor(ctx, ind, pageIdx); err != nil {
		return err
	}
	p, ok := ind.pages.Get(pageIdx)
	if !ok {
		obj, err := f.allocObj(ctx, kobj.PageCache, ind.Ino)
		if err != nil {
			return err
		}
		p = &Page{Obj: obj, Idx: pageIdx}
		ind.pages.Set(pageIdx, p)
		ind.frameIndex[obj.Frame.ID] = pageIdx
		f.frameOwner[obj.Frame.ID] = ind.Ino
		if _, err := f.extentFor(ctx, ind, pageIdx); err != nil {
			return err
		}
		if err := f.journalRecord(ctx, journalOp{kind: opBlock, ino: ind.Ino, idx: pageIdx}); err != nil {
			return err
		}
		if pageIdx >= ind.SizePages {
			ind.SizePages = pageIdx + 1
		}
	} else {
		f.Stats.CacheHits++
	}
	p.Dirty = true
	// copy_from_user into the cache page, then journal/bookkeeping
	// re-reads it (§3.1: writes are even more memory-intensive).
	f.touchObj(ctx, p.Obj, memsim.PageSize, true)
	f.touchObj(ctx, p.Obj, memsim.PageSize, false)
	f.Hooks.PageAccessed(ctx, p.Obj.Frame)
	f.touchObj(ctx, ind.inodeObj, 0, true)
	return nil
}

// Read reads one page at pageIdx. Cache hits cost a memory access;
// misses pay the block device and trigger adaptive readahead on
// sequential streaks (§4.4).
func (f *FS) Read(ctx *kstate.Ctx, file *File, pageIdx int64) error {
	ctx.Charge(syscallEntryCost)
	ind := file.Inode
	ind.lastUsed = ctx.Now
	f.Stats.Reads++
	// atime update + permission checks touch the inode.
	f.touchObj(ctx, ind.inodeObj, 0, true)
	if _, err := f.radixNode(ctx, ind, pageIdx); err != nil {
		return err
	}
	p, ok := ind.pages.Get(pageIdx)
	if ok {
		f.Stats.CacheHits++
		if p.Prefetched {
			// First demand touch of a prefetched page.
			f.Stats.ReadaheadHits++
			p.Prefetched = false
		}
		// Page-cache read: lookup touch + copy_to_user streams the page
		// out of the cache (two passes over the data in the kernel's
		// cache-cold case, §3.1).
		f.touchObj(ctx, p.Obj, memsim.PageSize, false)
		f.touchObj(ctx, p.Obj, memsim.PageSize, false)
		f.Hooks.PageAccessed(ctx, p.Obj.Frame)
		f.updateStreak(ind, pageIdx)
		return nil
	}
	f.Stats.CacheMisses++
	p, err := f.fillPage(ctx, ind, pageIdx, true, false)
	if err != nil {
		return err
	}
	f.touchObj(ctx, p.Obj, memsim.PageSize, false)
	f.Hooks.PageAccessed(ctx, p.Obj.Frame)
	f.updateStreak(ind, pageIdx)
	f.maybeReadahead(ctx, ind, pageIdx)
	return nil
}

// fillPage allocates a cache page and reads it from the device. When
// demand is false the device transfer is issued asynchronously: the
// device busy horizon advances, but the caller is not charged the
// latency (that is what makes prefetching worthwhile). viaKnode marks
// KLOC-aware prefetch issuance: the knode's object index supplies the
// block mapping directly, skipping the per-page extent walk (§4.4).
func (f *FS) fillPage(ctx *kstate.Ctx, ind *Inode, pageIdx int64, demand, viaKnode bool) (*Page, error) {
	obj, err := f.allocObj(ctx, kobj.PageCache, ind.Ino)
	if err != nil {
		return nil, err
	}
	p := &Page{Obj: obj, Idx: pageIdx}
	ind.pages.Set(pageIdx, p)
	ind.frameIndex[obj.Frame.ID] = pageIdx
	f.frameOwner[obj.Frame.ID] = ind.Ino
	if viaKnode {
		ctx.Charge(60) // knode rbtree-cache lookup replaces the extent walk
	} else if _, err := f.extentFor(ctx, ind, pageIdx); err != nil {
		return nil, err
	}
	sequential := pageIdx == ind.lastRead+1
	lat, err := f.MQ.Submit(ctx.CPU, ctx.Now, memsim.PageSize, sequential, false)
	if demand {
		ctx.Charge(lat)
	}
	if err != nil {
		// Hard read failure: unwind the page insertion — the cache must
		// not serve a page whose fill never completed.
		ind.pages.Delete(pageIdx)
		delete(ind.frameIndex, obj.Frame.ID)
		delete(f.frameOwner, obj.Frame.ID)
		f.freeObj(ctx, obj)
		return nil, err
	}
	if pageIdx >= ind.SizePages {
		ind.SizePages = pageIdx + 1
	}
	return p, nil
}

func (f *FS) updateStreak(ind *Inode, pageIdx int64) {
	if pageIdx == ind.lastRead+1 {
		ind.streak++
	} else {
		ind.streak = 0
	}
	ind.lastRead = pageIdx
}

// maybeReadahead prefetches up to ReadaheadWindow pages ahead of a
// sequential streak. With KlocAwareReadahead the prefetcher also warms
// the inode's metadata objects (radix nodes, extents) — the paper's
// KLOC-prefetch integration.
func (f *FS) maybeReadahead(ctx *kstate.Ctx, ind *Inode, pageIdx int64) {
	if f.ReadaheadWindow <= 0 || ind.streak < 2 {
		return
	}
	issued := 0
	for i := int64(1); i <= int64(f.ReadaheadWindow); i++ {
		idx := pageIdx + i
		if _, ok := ind.pages.Get(idx); ok {
			continue
		}
		p, err := f.fillPage(ctx, ind, idx, false, f.KlocAwareReadahead)
		if err != nil {
			break // memory pressure: stop prefetching
		}
		p.Prefetched = true
		issued++
	}
	f.Stats.ReadaheadIssued += uint64(issued)
}

// Fsync commits the journal and writes back the inode's dirty pages
// through the block layer (allocating Block and BlkMQ objects for the
// dispatch, per Table 1).
func (f *FS) Fsync(ctx *kstate.Ctx, file *File) error {
	ctx.Charge(syscallEntryCost)
	ind := file.Inode
	f.Stats.Syncs++
	if err := f.journalCommit(ctx); err != nil {
		return err
	}
	return f.writebackInode(ctx, ind)
}

// writebackInode flushes dirty pages in index order, batching
// contiguous runs into single block-layer submissions.
func (f *FS) writebackInode(ctx *kstate.Ctx, ind *Inode) error {
	var dirty []*Page
	ind.pages.Ascend(func(_ int64, p *Page) bool {
		if p.Dirty {
			dirty = append(dirty, p)
		}
		return true
	})
	if len(dirty) == 0 {
		return nil
	}
	// One bio (Block object) + blk_mq request per run of up to 256
	// contiguous pages. All runs are submitted asynchronously and the
	// caller waits for the slowest completion, so the charge is the MAX
	// completion latency, not the sum.
	var wait sim.Duration
	var firstErr error
	runStart := 0
	for i := 1; i <= len(dirty); i++ {
		endOfRun := i == len(dirty) ||
			dirty[i].Idx != dirty[i-1].Idx+1 || i-runStart >= 256
		if !endOfRun {
			continue
		}
		run := dirty[runStart:i]
		bio, err := f.allocObj(ctx, kobj.Block, ind.Ino)
		if err != nil {
			return err
		}
		mqObj, err := f.allocObj(ctx, kobj.BlkMQ, ind.Ino)
		if err != nil {
			return err
		}
		f.touchObj(ctx, bio, 0, true)
		bytes := len(run) * memsim.PageSize
		lat, err := f.MQ.Submit(ctx.CPU, ctx.Now, bytes, len(run) > 1, true)
		if lat > wait {
			wait = lat
		}
		if err != nil {
			// Hard write failure: the run's pages stay dirty for a later
			// writeback attempt; surface the first error after all runs.
			if firstErr == nil {
				firstErr = err
			}
		} else {
			for _, p := range run {
				// Reading the page for the DMA copy.
				f.touchObj(ctx, p.Obj, memsim.PageSize, false)
				p.Dirty = false
				f.Stats.WritebackPages++
			}
		}
		// bio and blk_mq request die at completion: the short-lifetime
		// population of Fig 2d.
		f.freeObj(ctx, bio)
		f.freeObj(ctx, mqObj)
		runStart = i
	}
	ctx.Charge(wait)
	return firstErr
}

// EvictFrame drops the page-cache page backed by the given frame
// (called by reclaim when memory pressure demands freeing rather than
// migrating). Dirty pages are written back first. Reports whether the
// frame belonged to this FS.
func (f *FS) EvictFrame(ctx *kstate.Ctx, frame *memsim.Frame) bool {
	ino, ok := f.frameOwner[frame.ID]
	if !ok {
		return false
	}
	ind, ok := f.inodes[ino]
	if !ok {
		return false
	}
	idx, ok := ind.frameIndex[frame.ID]
	if !ok {
		return false
	}
	p, ok := ind.pages.Get(idx)
	if !ok || p.Obj.Frame.ID != frame.ID {
		return false
	}
	if p.Dirty {
		lat, err := f.MQ.Submit(ctx.CPU, ctx.Now, memsim.PageSize, false, true)
		ctx.Charge(lat)
		if err != nil {
			// Writeback failed: the dirty page must not be dropped.
			return false
		}
		f.Stats.WritebackPages++
	}
	ind.pages.Delete(idx)
	delete(ind.frameIndex, frame.ID)
	delete(f.frameOwner, frame.ID)
	f.freeObj(ctx, p.Obj)
	return true
}

// DropCleanPages evicts up to n clean page-cache pages of an inode
// (used when a file closes under pressure). Returns pages dropped.
func (f *FS) DropCleanPages(ctx *kstate.Ctx, ind *Inode, n int) int {
	var victims []*Page
	ind.pages.Ascend(func(_ int64, p *Page) bool {
		if !p.Dirty {
			victims = append(victims, p)
		}
		return len(victims) < n
	})
	for _, p := range victims {
		ind.pages.Delete(p.Idx)
		delete(ind.frameIndex, p.Obj.Frame.ID)
		delete(f.frameOwner, p.Obj.Frame.ID)
		f.freeObj(ctx, p.Obj)
	}
	return len(victims)
}
