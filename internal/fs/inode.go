package fs

import (
	"sort"

	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/rbtree"
	"kloc/internal/sim"
)

// Page is one page-cache entry: the PageCache object plus writeback
// state.
type Page struct {
	Obj   *kobj.Object
	Idx   int64
	Dirty bool
	// Prefetched marks pages brought in by readahead and not yet
	// demanded (readahead-hit accounting).
	Prefetched bool
}

// Inode is a simulated in-memory inode with its attached kernel
// objects: the inode slab object itself, its dentry, the radix-tree
// page cache, radix-tree interior nodes, and the extent map.
type Inode struct {
	Ino  uint64
	Path string
	// Refs counts open file descriptions; Nlink counts directory links.
	Refs, Nlink int

	inodeObj *kobj.Object
	dentry   *kobj.Object

	pages      *rbtree.Tree[int64, *Page]
	radixNodes map[int64]*kobj.Object // radix subtree index -> node object
	extents    *rbtree.Tree[int64, *kobj.Object]

	// frameIndex maps cache frames back to page indexes so policies can
	// evict by frame.
	frameIndex map[memsim.FrameID]int64

	// Readahead state: last sequentially read index and streak length.
	lastRead int64
	streak   int

	// lastUsed is the most recent open/read/write time — the coldness
	// input to OOM victim scoring.
	lastUsed sim.Time

	// SizePages is the logical file size in pages.
	SizePages int64
}

// newInode builds an empty in-memory inode (no kernel objects yet).
func newInode(ino uint64, path string) *Inode {
	return &Inode{
		Ino: ino, Path: path, Nlink: 1,
		pages:      rbtree.New[int64, *Page](),
		radixNodes: make(map[int64]*kobj.Object),
		extents:    rbtree.New[int64, *kobj.Object](),
		frameIndex: make(map[memsim.FrameID]int64),
		lastRead:   -2,
	}
}

// Open file handle.
type File struct {
	Inode *Inode
	fs    *FS
}

// CachedPages reports the inode's page-cache population.
func (ind *Inode) CachedPages() int { return ind.pages.Len() }

// Extents reports the inode's extent-mapping count (tests).
func (ind *Inode) Extents() int { return ind.extents.Len() }

// Objects returns all kernel objects currently attached to the inode
// (for accounting and tests).
func (ind *Inode) Objects() []*kobj.Object {
	var out []*kobj.Object
	if ind.inodeObj != nil {
		out = append(out, ind.inodeObj)
	}
	if ind.dentry != nil {
		out = append(out, ind.dentry)
	}
	slots := make([]int64, 0, len(ind.radixNodes))
	for idx := range ind.radixNodes {
		slots = append(slots, idx)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, idx := range slots {
		out = append(out, ind.radixNodes[idx])
	}
	ind.pages.Ascend(func(_ int64, p *Page) bool { out = append(out, p.Obj); return true })
	ind.extents.Ascend(func(_ int64, o *kobj.Object) bool { out = append(out, o); return true })
	return out
}

// Create creates a new file: inode + dentry objects, a journal record
// for the metadata update, and the creation hooks (Fig 3b).
func (f *FS) Create(ctx *kstate.Ctx, path string) (*File, error) {
	ctx.Charge(syscallEntryCost)
	if ind, ok := f.lookupPath(ctx, path); ok {
		// Exists: behave like O_CREAT on an existing file.
		return f.openInode(ctx, ind), nil
	}
	ino := f.InoGen.Next()
	ind := newInode(ino, path)
	f.inodes[ino] = ind
	f.inodeOrder = append(f.inodeOrder, ino)
	f.dcache[path] = ino
	f.Hooks.InodeCreated(ctx, ino, false)

	var err error
	if ind.inodeObj, err = f.allocObj(ctx, kobj.Inode, ino); err != nil {
		return nil, err
	}
	if ind.dentry, err = f.allocObj(ctx, kobj.Dentry, ino); err != nil {
		return nil, err
	}
	f.touchObj(ctx, ind.inodeObj, 0, true)
	f.touchObj(ctx, ind.dentry, 0, true)
	if err := f.journalRecord(ctx, journalOp{kind: opCreate, ino: ino, path: path}); err != nil {
		return nil, err
	}
	f.Stats.Creates++
	return f.openInode(ctx, ind), nil
}

// Open opens an existing file.
func (f *FS) Open(ctx *kstate.Ctx, path string) (*File, error) {
	ctx.Charge(syscallEntryCost)
	ind, ok := f.lookupPath(ctx, path)
	if !ok {
		// Dentry miss: the path walk either finds the inode on "disk"
		// (we keep all inodes in memory; a real miss would re-read the
		// inode) or fails.
		ino, exists := f.findByPath(path)
		if !exists {
			return nil, errNotFound(path)
		}
		ind = f.inodes[ino]
		// Re-populate the dentry and inode caches (the inode object may
		// have been evicted by the dentry/inode shrinker).
		var err error
		if ind.inodeObj == nil {
			if ind.inodeObj, err = f.allocObj(ctx, kobj.Inode, ind.Ino); err != nil {
				return nil, err
			}
		}
		if ind.dentry == nil {
			if ind.dentry, err = f.allocObj(ctx, kobj.Dentry, ind.Ino); err != nil {
				return nil, err
			}
		}
		f.dcache[path] = ind.Ino
	}
	f.Stats.Opens++
	return f.openInode(ctx, ind), nil
}

func (f *FS) findByPath(path string) (uint64, bool) {
	// Creation-order scan: live paths are unique, so the order only
	// decides determinism of the walk itself.
	for _, ino := range f.inodeOrder {
		if ind, ok := f.inodes[ino]; ok && ind.Path == path {
			return ino, true
		}
	}
	return 0, false
}

func (f *FS) openInode(ctx *kstate.Ctx, ind *Inode) *File {
	ind.Refs++
	ind.lastUsed = ctx.Now
	f.touchObj(ctx, ind.inodeObj, 0, false)
	f.Hooks.InodeOpened(ctx, ind.Ino)
	return &File{Inode: ind, fs: f}
}

// Close drops one reference; at zero the inode's KLOC turns cold
// (§3.2's first coldness trigger).
func (f *FS) Close(ctx *kstate.Ctx, file *File) {
	ctx.Charge(syscallEntryCost)
	ind := file.Inode
	if ind.Refs > 0 {
		ind.Refs--
	}
	f.Stats.Closes++
	if ind.Refs == 0 {
		f.Hooks.InodeClosed(ctx, ind.Ino)
	}
}

// Unlink removes the path; when the last link and last open reference
// are gone the inode's objects are deallocated — NOT migrated (§3.2's
// second rule).
func (f *FS) Unlink(ctx *kstate.Ctx, path string) error {
	ctx.Charge(syscallEntryCost)
	ino, ok := f.dcache[path]
	if !ok {
		var exists bool
		if ino, exists = f.findByPath(path); !exists {
			return errNotFound(path)
		}
	}
	ind := f.inodes[ino]
	delete(f.dcache, path)
	if ind.Nlink > 0 {
		ind.Nlink--
	}
	if ind.Nlink == 0 {
		// Fully unlinked: unreachable by path even while held open.
		ind.Path = ""
	}
	if err := f.journalRecord(ctx, journalOp{kind: opUnlink, ino: ino}); err != nil {
		return err
	}
	f.Stats.Unlinks++
	if ind.Nlink == 0 && ind.Refs == 0 {
		f.destroyInode(ctx, ind)
	}
	return nil
}

// destroyInode frees every kernel object attached to the inode.
func (f *FS) destroyInode(ctx *kstate.Ctx, ind *Inode) {
	ind.pages.Ascend(func(_ int64, p *Page) bool {
		delete(f.frameOwner, p.Obj.Frame.ID)
		f.freeObj(ctx, p.Obj)
		return true
	})
	ind.pages.Clear()
	// Free radix interior nodes in slot order: slab free order decides
	// partial-list state and hence where future allocations land, so
	// map-iteration order here would leak into simulation state.
	slots := make([]int64, 0, len(ind.radixNodes))
	for idx := range ind.radixNodes {
		slots = append(slots, idx)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, idx := range slots {
		f.freeObj(ctx, ind.radixNodes[idx])
		delete(ind.radixNodes, idx)
	}
	ind.extents.Ascend(func(_ int64, o *kobj.Object) bool {
		f.freeObj(ctx, o)
		return true
	})
	ind.extents.Clear()
	f.freeObj(ctx, ind.dentry)
	f.freeObj(ctx, ind.inodeObj)
	ind.dentry, ind.inodeObj = nil, nil
	ind.frameIndex = make(map[memsim.FrameID]int64)
	delete(f.arenas, ind.Ino) // all objects freed above: the arena is empty
	delete(f.inodes, ind.Ino)
	for i, ino := range f.inodeOrder {
		if ino == ind.Ino {
			f.inodeOrder = append(f.inodeOrder[:i], f.inodeOrder[i+1:]...)
			break
		}
	}
	f.Hooks.InodeDeleted(ctx, ind.Ino)
}

// radixNode returns (allocating on demand) the radix-tree node covering
// a page index, charging the traversal.
func (f *FS) radixNode(ctx *kstate.Ctx, ind *Inode, idx int64) (*kobj.Object, error) {
	slot := idx / radixFanout
	if o, ok := ind.radixNodes[slot]; ok {
		f.touchObj(ctx, o, 64, false)
		return o, nil
	}
	o, err := f.allocObj(ctx, kobj.RadixNode, ind.Ino)
	if err != nil {
		return nil, err
	}
	ind.radixNodes[slot] = o
	f.touchObj(ctx, o, 64, true)
	return o, nil
}

// extentFor returns (allocating on demand) the extent mapping covering
// a page index.
func (f *FS) extentFor(ctx *kstate.Ctx, ind *Inode, idx int64) (*kobj.Object, error) {
	base := idx / extentSpan
	if o, ok := ind.extents.Get(base); ok {
		f.touchObj(ctx, o, 0, false)
		return o, nil
	}
	o, err := f.allocObj(ctx, kobj.Extent, ind.Ino)
	if err != nil {
		return nil, err
	}
	ind.extents.Set(base, o)
	f.touchObj(ctx, o, 0, true)
	return o, nil
}
