package fs

import (
	"testing"

	"kloc/internal/alloc"
	"kloc/internal/kobj"
)

// scanFS runs the kmemleak-style teardown scan over the filesystem's
// roots alone (the kernel normally drives this across all subsystems).
func scanFS(f *FS, san *alloc.Sanitizer) *alloc.SanReport {
	san.BeginScan()
	f.MarkReachable(san)
	return san.Report(100)
}

func TestSanitizerCleanOnNormalLifecycle(t *testing.T) {
	f, _ := newFS(t, nil)
	san := alloc.NewSanitizer()
	f.San = san
	ctx := ctxAt(0)
	file, err := f.Create(ctx, "/clean")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if err := f.Write(ctx, file, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Read(ctx, file, 3); err != nil {
		t.Fatal(err)
	}
	f.Close(ctx, file)
	if r := scanFS(f, san); !r.Clean() {
		t.Fatalf("clean lifecycle reported dirty:\n%s", r)
	}
}

func TestSanitizerCatchesSeededDoubleFreeAndUAF(t *testing.T) {
	f, _ := newFS(t, nil)
	san := alloc.NewSanitizer()
	f.San = san
	file, err := f.Create(ctxAt(0), "/bug")
	if err != nil {
		t.Fatal(err)
	}
	ino := file.Inode.Ino
	var dentry *kobj.Object
	for _, o := range file.Inode.Objects() {
		if o.Type == kobj.Dentry {
			dentry = o
		}
	}
	if dentry == nil {
		t.Fatal("no dentry on fresh inode")
	}
	// The seeded bug: free the dentry out from under the inode, touch
	// it, then free it again.
	f.freeObj(ctxAt(10), dentry)
	f.touchObj(ctxAt(20), dentry, 0, false)
	f.freeObj(ctxAt(30), dentry)

	r := scanFS(f, san)
	if r.TotalFindings != 2 {
		t.Fatalf("TotalFindings = %d, want 2:\n%s", r.TotalFindings, r)
	}
	uaf, df := r.Findings[0], r.Findings[1]
	if uaf.Kind != alloc.SanUseAfterFree || uaf.At != 20 || uaf.Freed != 10 {
		t.Fatalf("findings[0] = %+v, want use-after-free at 20", uaf)
	}
	if df.Kind != alloc.SanDoubleFree || df.At != 30 || df.Freed != 10 {
		t.Fatalf("findings[1] = %+v, want double-free at 30", df)
	}
	// Both findings carry the KLOC context the object belonged to.
	for _, fd := range r.Findings {
		if fd.Ctx != ino || fd.Class != "dentry" {
			t.Fatalf("finding %+v lacks KLOC context ino=%d class=dentry", fd, ino)
		}
	}
}

func TestSanitizerCatchesSeededLeakWithContext(t *testing.T) {
	f, _ := newFS(t, nil)
	san := alloc.NewSanitizer()
	f.San = san
	file, err := f.Create(ctxAt(0), "/leak")
	if err != nil {
		t.Fatal(err)
	}
	ino := file.Inode.Ino
	// The seeded bug: allocate an extent for the inode but drop it on
	// the floor — no inode reference, never freed.
	if _, err := f.allocObjOnce(ctxAt(5), kobj.Extent, ino); err != nil {
		t.Fatal(err)
	}
	r := scanFS(f, san)
	if r.TotalLeaks != 1 {
		t.Fatalf("TotalLeaks = %d, want 1:\n%s", r.TotalLeaks, r)
	}
	leak := r.Leaks[0]
	if leak.Kind != alloc.SanLeak || leak.Ctx != ino || leak.Class != "extent" {
		t.Fatalf("leak = %+v, want extent leaked in KLOC ctx %d", leak, ino)
	}
	if len(r.LeakGroups) != 1 || r.LeakGroups[0].Ctx != ino || r.LeakGroups[0].Count != 1 {
		t.Fatalf("LeakGroups = %+v", r.LeakGroups)
	}
}
