package fs

import (
	"sort"

	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/trace"
)

// DefaultJournalMaxPending bounds the in-memory journal before a forced
// commit, like jbd2's transaction size limit. FS.JournalMaxPending
// overrides it (crash-recovery tests force tiny transactions).
const DefaultJournalMaxPending = 128

// journal state lives on FS to keep the struct count down; these
// methods are the jbd2-like layer.
//
// The journal is typed: every record describes one metadata update
// (create, unlink, rename, truncate, block mapping). On commit the
// records are applied to the FS's durable state — the metadata image
// that survives a crash. Crash drops everything not committed; Replay
// rebuilds the in-memory metadata from the durable image.

type journalOpKind uint8

const (
	opCreate journalOpKind = iota
	opUnlink
	opRename
	opTruncate
	opBlock
)

// journalOp is one logged metadata update plus its in-memory Journal
// buffer object (whose death at commit is most of the short slab
// lifetime population in Fig 2d).
type journalOp struct {
	kind journalOpKind
	ino  uint64
	// path is the durable path for opCreate/opRename.
	path string
	// idx is the page index for opBlock and the new size for opTruncate.
	idx int64
	obj *kobj.Object
}

// durableInode is the committed (crash-surviving) metadata of one
// inode.
type durableInode struct {
	path      string
	nlink     int
	sizePages int64
	// extents marks the extent bases with durable block mappings.
	extents map[int64]bool
}

func (f *FS) journalLimit() int {
	if f.JournalMaxPending > 0 {
		return f.JournalMaxPending
	}
	return DefaultJournalMaxPending
}

// journalRecord logs one metadata update: a Journal buffer object is
// allocated, written, and queued for the next commit. The buffer
// allocation runs in atomic context — losing a journal record to a
// transient pressure spike would corrupt metadata ordering, so it may
// draw on the watermark emergency reserve (GFP_NOFAIL in spirit).
func (f *FS) journalRecord(ctx *kstate.Ctx, op journalOp) error {
	exitAtomic := f.Mem.EnterAtomic()
	o, err := f.allocObj(ctx, kobj.Journal, op.ino)
	exitAtomic()
	if err != nil {
		return err
	}
	op.obj = o
	f.touchObj(ctx, o, journalRecordBytes, true)
	f.journalPending = append(f.journalPending, op)
	if len(f.journalPending) >= f.journalLimit() {
		return f.journalCommit(ctx)
	}
	return nil
}

// journalCommit writes the pending journal buffers sequentially to the
// device, applies the records to the durable metadata image, and
// releases the buffers. If the device fails the commit write (EIO after
// the block layer's retries), the transaction stays pending — nothing
// is durable, nothing is freed — and a later commit retries it.
func (f *FS) journalCommit(ctx *kstate.Ctx) error {
	if len(f.journalPending) == 0 {
		return nil
	}
	bytes := 0
	for _, op := range f.journalPending {
		f.touchObj(ctx, op.obj, journalRecordBytes, false)
		bytes += journalRecordBytes
	}
	lat, err := f.MQ.Submit(ctx.CPU, ctx.Now, bytes, true, true)
	ctx.Charge(lat)
	if err != nil {
		f.Stats.JournalCommitFails++
		return err
	}
	f.Trace.Emit(trace.JournalCommit, ctx.Now, 0, uint64(len(f.journalPending)),
		"commit", -1, int64(bytes))
	for _, op := range f.journalPending {
		f.applyDurable(op)
		f.freeObj(ctx, op.obj)
	}
	f.journalPending = f.journalPending[:0]
	f.Stats.JournalCommits++
	return nil
}

// applyDurable folds one committed record into the durable image.
// Records are applied in log order, so a create always precedes the
// operations on its inode.
func (f *FS) applyDurable(op journalOp) {
	switch op.kind {
	case opCreate:
		f.durable[op.ino] = &durableInode{
			path: op.path, nlink: 1, extents: make(map[int64]bool),
		}
	case opUnlink:
		if d := f.durable[op.ino]; d != nil {
			d.nlink--
			if d.nlink <= 0 {
				delete(f.durable, op.ino)
			}
		}
	case opRename:
		if d := f.durable[op.ino]; d != nil {
			d.path = op.path
		}
	case opTruncate:
		if d := f.durable[op.ino]; d != nil {
			d.sizePages = op.idx
			firstDropped := (op.idx + extentSpan - 1) / extentSpan
			for base := range d.extents {
				if base >= firstDropped {
					delete(d.extents, base)
				}
			}
		}
	case opBlock:
		if d := f.durable[op.ino]; d != nil {
			d.extents[op.idx/extentSpan] = true
			if op.idx+1 > d.sizePages {
				d.sizePages = op.idx + 1
			}
		}
	}
}

// JournalPending reports queued journal records (tests).
func (f *FS) JournalPending() int { return len(f.journalPending) }

// DurableInodes reports the number of inodes in the committed image
// (tests).
func (f *FS) DurableInodes() int { return len(f.durable) }

// SyncJournal forces a commit of pending journal buffers (the jbd2
// commit timer; kernel daemons call this periodically).
func (f *FS) SyncJournal(ctx *kstate.Ctx) error { return f.journalCommit(ctx) }

// Crash simulates a kernel crash at the current virtual time: every
// uncommitted journal record is lost and all in-memory filesystem state
// — inodes, dentries, page cache, radix nodes, extents, per-KLOC arenas
// — is torn down through the normal free paths, so the memory model and
// the policy layer stay consistent. Only the durable image (committed
// transactions) survives. Callers follow with Replay to remount.
func (f *FS) Crash(ctx *kstate.Ctx) {
	f.Stats.Crashes++
	// Uncommitted transactions vanish.
	for _, op := range f.journalPending {
		f.freeObj(ctx, op.obj)
	}
	f.journalPending = f.journalPending[:0]
	// Tear down every inode. destroyInode mutates inodeOrder, so walk a
	// copy; zeroing Refs/Nlink reflects that open handles died with the
	// kernel.
	order := append([]uint64(nil), f.inodeOrder...)
	for _, ino := range order {
		ind, ok := f.inodes[ino]
		if !ok {
			continue
		}
		ind.Refs, ind.Nlink = 0, 0
		f.destroyInode(ctx, ind)
	}
	f.dcache = make(map[string]uint64)
	f.frameOwner = make(map[memsim.FrameID]uint64)
}

// Replay remounts after a Crash: the journal is read back sequentially
// and the durable image is materialized as fresh in-memory inodes with
// their dentry and extent objects. Data pages are not restored — the
// page cache refills on demand — but the metadata (paths, link counts,
// sizes, extent mappings) exactly matches the committed transactions.
func (f *FS) Replay(ctx *kstate.Ctx) error {
	// One sequential journal scan: inode blocks plus one record per
	// durable extent.
	records := 0
	inos := make([]uint64, 0, len(f.durable))
	for ino, d := range f.durable {
		inos = append(inos, ino)
		records += 1 + len(d.extents)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	if records > 0 {
		lat, err := f.MQ.Submit(ctx.CPU, ctx.Now, records*journalRecordBytes, true, false)
		ctx.Charge(lat)
		if err != nil {
			return err
		}
	}
	for _, ino := range inos {
		if _, err := f.materializeInode(ctx, ino, f.durable[ino]); err != nil {
			return err
		}
		f.Stats.ReplayedInodes++
	}
	return nil
}

// materializeInode rebuilds one inode (and its kernel objects) from its
// durable metadata.
func (f *FS) materializeInode(ctx *kstate.Ctx, ino uint64, d *durableInode) (*Inode, error) {
	ind := newInode(ino, d.path)
	ind.Nlink = d.nlink
	ind.SizePages = d.sizePages
	f.inodes[ino] = ind
	f.inodeOrder = append(f.inodeOrder, ino)
	if d.path != "" {
		f.dcache[d.path] = ino
	}
	f.Hooks.InodeCreated(ctx, ino, false)
	var err error
	if ind.inodeObj, err = f.allocObj(ctx, kobj.Inode, ino); err != nil {
		return nil, err
	}
	if ind.dentry, err = f.allocObj(ctx, kobj.Dentry, ino); err != nil {
		return nil, err
	}
	bases := make([]int64, 0, len(d.extents))
	for base := range d.extents {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, base := range bases {
		o, err := f.allocObj(ctx, kobj.Extent, ino)
		if err != nil {
			return nil, err
		}
		ind.extents.Set(base, o)
	}
	return ind, nil
}
