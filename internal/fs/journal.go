package fs

import (
	"kloc/internal/kobj"
	"kloc/internal/kstate"
)

// journalMaxPending bounds the in-memory journal before a forced
// commit, like jbd2's transaction size limit.
const journalMaxPending = 128

// journal state lives on FS to keep the struct count down; these
// methods are the jbd2-like layer.

// journalRecord logs one metadata update: a Journal buffer object is
// allocated, written, and queued for the next commit.
func (f *FS) journalRecord(ctx *kstate.Ctx, ino uint64) error {
	o, err := f.allocObj(ctx, kobj.Journal, ino)
	if err != nil {
		return err
	}
	f.touchObj(ctx, o, journalRecordBytes, true)
	f.journalPending = append(f.journalPending, o)
	if len(f.journalPending) >= journalMaxPending {
		return f.journalCommit(ctx)
	}
	return nil
}

// journalCommit writes the pending journal buffers sequentially to the
// device and releases them (their death is most of the short slab
// lifetime population in Fig 2d).
func (f *FS) journalCommit(ctx *kstate.Ctx) error {
	if len(f.journalPending) == 0 {
		return nil
	}
	bytes := 0
	for _, o := range f.journalPending {
		f.touchObj(ctx, o, journalRecordBytes, false)
		bytes += journalRecordBytes
	}
	ctx.Charge(f.MQ.Submit(ctx.CPU, ctx.Now, bytes, true, true))
	for _, o := range f.journalPending {
		f.freeObj(ctx, o)
	}
	f.journalPending = f.journalPending[:0]
	f.Stats.JournalCommits++
	return nil
}

// JournalPending reports queued journal buffers (tests).
func (f *FS) JournalPending() int { return len(f.journalPending) }

// SyncJournal forces a commit of pending journal buffers (the jbd2
// commit timer; kernel daemons call this periodically).
func (f *FS) SyncJournal(ctx *kstate.Ctx) error { return f.journalCommit(ctx) }
