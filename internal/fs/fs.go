// Package fs simulates the filesystem stack the paper instruments: a
// VFS layer (inodes, a dentry cache), an ext4-like body (extent maps, a
// jbd2-style journal), a radix-tree page cache with adaptive readahead,
// and writeback through the blk_mq block layer.
//
// Every kernel object from Table 1's FS rows is allocated through the
// real (simulated) allocator suite, reported to the policy layer via
// kstate.Hooks, and charged to virtual time, so the characterization
// figures (2a-2d) and the placement results (Fig 4-6) all emerge from
// the same code paths.
package fs

import (
	"fmt"

	"kloc/internal/alloc"
	"kloc/internal/blockdev"
	"kloc/internal/fault"
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/pressure"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

// Cost constants for FS code paths.
const (
	// pathWalkCost per path component on a dentry-cache miss.
	pathWalkCost sim.Duration = 600
	// syscallEntryCost models mode switch + argument checking.
	syscallEntryCost sim.Duration = 100
	// radixFanout pages per radix-tree node.
	radixFanout = 64
	// extentSpan pages per extent mapping.
	extentSpan = 32
	// journalRecordBytes logged per metadata update.
	journalRecordBytes = 512
)

// Stats tracks FS-level activity.
type Stats struct {
	Creates, Opens, Closes, Unlinks uint64
	Renames, Truncates              uint64
	Reads, Writes, Syncs            uint64
	CacheHits, CacheMisses          uint64
	DentryHits, DentryMisses        uint64
	ReadaheadIssued, ReadaheadHits  uint64
	WritebackPages                  uint64
	JournalCommits                  uint64
	JournalCommitFails              uint64
	Crashes                         uint64
	ReplayedInodes                  uint64
	ReclaimedPages                  uint64
	// ObjAllocs counts kernel-object allocations by type (Fig 2a).
	ObjAllocs [16]uint64
	// ObjLive tracks live objects by type.
	ObjLive [16]int64
}

// FS is the simulated filesystem instance.
type FS struct {
	Mem   *memsim.Memory
	MQ    *blockdev.MQ
	Hooks kstate.Hooks
	// ObjIDs and InoGen are shared with the network stack so object and
	// inode namespaces are global (everything is a file).
	ObjIDs *kstate.IDGen
	InoGen *kstate.IDGen

	Pager *alloc.PageAllocator
	slabs map[kobj.Type]*alloc.SlabCache
	klocs map[kobj.Type]*alloc.SlabCache
	// arenas are per-inode KLOC allocation regions (§4.4): slab-class
	// objects of a file live in frames private to its KLOC, so they can
	// migrate with the knode without dragging other files' objects.
	arenas map[uint64]*alloc.Arena

	inodes map[uint64]*Inode
	dcache map[string]uint64 // path -> ino
	// inodeOrder keeps deterministic (creation-order) iteration for
	// reclaim; Go map iteration order would break reproducibility.
	inodeOrder []uint64
	// frameOwner maps cache frames to owning inodes for O(1) eviction.
	frameOwner map[memsim.FrameID]uint64

	// ReadaheadWindow is the max pages prefetched on a sequential
	// streak; 0 disables readahead.
	ReadaheadWindow int
	// KlocAwareReadahead extends readahead to the inode's kernel
	// objects (§4.4 "Making KLOCs amenable to I/O prefetching").
	KlocAwareReadahead bool
	// JournalMaxPending bounds the in-memory journal before a forced
	// commit; 0 means DefaultJournalMaxPending.
	JournalMaxPending int

	// Pressure, when non-nil, is the kernel's memory-pressure plane:
	// allocation failures enter direct reclaim through it (scanning
	// every registered shrinker) instead of the FS-local page-cache
	// fallback, and journal commits run in atomic context so they can
	// draw on the watermark reserve.
	Pressure *pressure.Plane

	// Trace, when non-nil, records alloc.slab / alloc.page / obj.free /
	// fs.journal.commit events from the FS object paths. Strictly
	// passive; nil disables tracing.
	Trace *trace.Tracer

	// San, when non-nil, is the KASAN/kmemleak-analog sanitizer: the
	// object paths report every alloc, free, and access to it. Strictly
	// passive; nil disables sanitizing.
	San *alloc.Sanitizer

	journalPending []journalOp
	// durable is the committed metadata image — what a crash preserves
	// and Replay rebuilds.
	durable    map[uint64]*durableInode
	reclaiming bool

	Stats Stats
}

// New builds a filesystem over the given memory and block layers.
func New(mem *memsim.Memory, mq *blockdev.MQ, hooks kstate.Hooks, objIDs, inoGen *kstate.IDGen) *FS {
	f := &FS{
		Mem:             mem,
		MQ:              mq,
		Hooks:           hooks,
		ObjIDs:          objIDs,
		InoGen:          inoGen,
		Pager:           &alloc.PageAllocator{Mem: mem},
		slabs:           make(map[kobj.Type]*alloc.SlabCache),
		klocs:           make(map[kobj.Type]*alloc.SlabCache),
		arenas:          make(map[uint64]*alloc.Arena),
		inodes:          make(map[uint64]*Inode),
		dcache:          make(map[string]uint64),
		frameOwner:      make(map[memsim.FrameID]uint64),
		durable:         make(map[uint64]*durableInode),
		ReadaheadWindow: 8,
	}
	return f
}

func (f *FS) slabFor(t kobj.Type, relocatable bool) (*alloc.SlabCache, error) {
	m := f.slabs
	if relocatable {
		m = f.klocs
	}
	c := m[t]
	if c == nil {
		var err error
		if relocatable {
			c, err = alloc.NewKlocCache(f.Mem, t.String()+"-kloc", t.Info().Size)
		} else {
			c, err = alloc.NewSlabCache(f.Mem, t.String(), t.Info().Size)
		}
		if err != nil {
			return nil, err
		}
		m[t] = c
	}
	return c, nil
}

// allocObj allocates a kernel object of type t for inode ino through
// whichever allocator the policy selects, charges the cost, and fires
// the creation hook. Under memory exhaustion it enters direct reclaim
// and retries once per round of progress.
func (f *FS) allocObj(ctx *kstate.Ctx, t kobj.Type, ino uint64) (*kobj.Object, error) {
	o, err := f.allocObjOnce(ctx, t, ino)
	if err == memsim.ErrNoMemory {
		if f.reclaimForAlloc(ctx) > 0 {
			o, err = f.allocObjOnce(ctx, t, ino)
		}
	}
	return o, err
}

// reclaimForAlloc routes an allocation failure into reclaim: through
// the pressure plane's full shrinker registry when one is wired, or
// the FS-local page-cache reclaim when the filesystem runs standalone
// (tests). Returns pages freed.
func (f *FS) reclaimForAlloc(ctx *kstate.Ctx) int {
	if f.Pressure != nil {
		return f.Pressure.DirectReclaim(ctx)
	}
	return f.Reclaim(ctx, reclaimBatch)
}

func (f *FS) allocObjOnce(ctx *kstate.Ctx, t kobj.Type, ino uint64) (*kobj.Object, error) {
	order := f.Hooks.PlaceKernel(ctx, t, ino)
	id := kobj.ID(f.ObjIDs.Next())
	var o *kobj.Object
	if t.Info().Alloc == kobj.AllocSlab {
		if f.Hooks.UseKlocAllocator(t) && ino != 0 {
			// Per-KLOC region: migratable without cross-file aliasing.
			arena := f.arenas[ino]
			if arena == nil {
				arena = alloc.NewArena(f.Mem, 0)
				f.arenas[ino] = arena
			}
			slot, cost, err := arena.Alloc(order, t.Info().Size, ctx.Now)
			if err != nil {
				return nil, err
			}
			ctx.Charge(cost)
			o = kobj.NewObject(id, t, slot.Frame, ctx.Now, func() { arena.Free(slot) })
		} else {
			cache, err := f.slabFor(t, f.Hooks.UseKlocAllocator(t))
			if err != nil {
				return nil, err
			}
			slot, cost, err := cache.Alloc(order, ctx.Now)
			if err != nil {
				return nil, err
			}
			ctx.Charge(cost)
			o = kobj.NewObject(id, t, slot.Frame, ctx.Now, func() { cache.Free(slot) })
		}
	} else {
		frame, cost, err := f.Pager.Alloc(order, memsim.ClassCache, ctx.Now)
		if err != nil {
			return nil, err
		}
		ctx.Charge(cost)
		o = kobj.NewObject(id, t, frame, ctx.Now, func() { f.Pager.Free(frame) })
		f.Hooks.PageAllocated(ctx, frame)
	}
	if t.Info().Alloc == kobj.AllocPage {
		f.Trace.Emit(trace.AllocPage, ctx.Now, ino, uint64(id), t.String(), int(o.Frame.Node), int64(o.Size))
	} else {
		f.Trace.Emit(trace.AllocSlab, ctx.Now, ino, uint64(id), t.String(), int(o.Frame.Node), int64(o.Size))
	}
	f.Stats.ObjAllocs[t]++
	f.Stats.ObjLive[t]++
	// Initialization writes the new object's memory: allocation cost is
	// tier-sensitive, which is why direct placement matters (§3.2).
	ctx.Charge(f.Mem.Access(ctx.CPU, o.Frame, o.Size, true, ctx.Now))
	f.San.TrackAlloc(uint64(id), t.String(), ino, int64(o.Size), ctx.Now)
	f.Hooks.ObjectCreated(ctx, ino, o)
	return o, nil
}

// reclaimBatch pages dropped per reclaim round.
const reclaimBatch = 64

// Reclaim drops up to n page-cache pages, oldest inode first (a
// deterministic kswapd stand-in). Clean pages go first; if none exist,
// dirty pages are written back and dropped. Reports pages freed.
// Re-entrant calls (writeback allocating under pressure, the kernel's
// PF_MEMALLOC situation) return 0 immediately.
func (f *FS) Reclaim(ctx *kstate.Ctx, n int) int {
	if f.reclaiming {
		return 0
	}
	f.reclaiming = true
	defer func() { f.reclaiming = false }()
	freed := 0
	for pass := 0; pass < 2 && freed == 0; pass++ {
		for _, ino := range f.inodeOrder {
			if freed >= n {
				break
			}
			ind, ok := f.inodes[ino]
			if !ok {
				continue
			}
			if pass == 0 {
				freed += f.DropCleanPages(ctx, ind, n-freed)
				continue
			}
			// Second pass: write back then drop.
			if err := f.writebackInode(ctx, ind); err == nil {
				freed += f.DropCleanPages(ctx, ind, n-freed)
			}
		}
	}
	f.Stats.ReclaimedPages += uint64(freed)
	return freed
}

// freeObj releases an object, firing hooks.
func (f *FS) freeObj(ctx *kstate.Ctx, o *kobj.Object) {
	if o == nil {
		return
	}
	f.San.TrackFree(uint64(o.ID), ctx.Now)
	node := -1
	if o.Frame != nil {
		node = int(o.Frame.Node)
	}
	f.Trace.Emit(trace.ObjFree, ctx.Now, o.Knode, uint64(o.ID), o.Type.String(), node, int64(o.Size))
	f.Stats.ObjLive[o.Type]--
	f.Hooks.ObjectFreed(ctx, o)
	if o.Type.Info().Alloc == kobj.AllocPage && o.Frame != nil {
		f.Hooks.PageFreed(ctx, o.Frame)
	}
	o.Release()
}

// touchObj charges a memory access to the object's frame.
func (f *FS) touchObj(ctx *kstate.Ctx, o *kobj.Object, bytes int, write bool) {
	if o == nil {
		return
	}
	f.San.CheckAccess(uint64(o.ID), ctx.Now)
	if o.Frame == nil {
		return
	}
	if bytes <= 0 {
		bytes = o.Size
	}
	ctx.Charge(f.Mem.Access(ctx.CPU, o.Frame, bytes, write, ctx.Now))
}

// MarkReachable marks every object the filesystem still references —
// each live inode's object tree plus the uncommitted journal buffers —
// for the sanitizer's kmemleak-style teardown scan.
func (f *FS) MarkReachable(s *alloc.Sanitizer) {
	if s == nil {
		return
	}
	f.ForEachInode(func(ind *Inode) bool {
		for _, o := range ind.Objects() {
			s.MarkReachable(uint64(o.ID))
		}
		return true
	})
	for _, op := range f.journalPending {
		if op.obj != nil {
			s.MarkReachable(uint64(op.obj.ID))
		}
	}
}

// Inodes reports the live inode count.
func (f *FS) Inodes() int { return len(f.inodes) }

// Lookup resolves a path to an inode via the dentry cache.
func (f *FS) lookupPath(ctx *kstate.Ctx, path string) (*Inode, bool) {
	if ino, ok := f.dcache[path]; ok {
		ind := f.inodes[ino]
		if ind != nil {
			f.Stats.DentryHits++
			// Dentry cache hit: touch the dentry object.
			f.touchObj(ctx, ind.dentry, 0, false)
			return ind, true
		}
	}
	f.Stats.DentryMisses++
	ctx.Charge(pathWalkCost)
	return nil, false
}

// Inode returns the inode for a path (test/inspection helper).
func (f *FS) Inode(path string) (*Inode, bool) {
	ino, ok := f.dcache[path]
	if !ok {
		return nil, false
	}
	ind, ok := f.inodes[ino]
	return ind, ok
}

// InodeByNum returns an inode by number.
func (f *FS) InodeByNum(ino uint64) (*Inode, bool) {
	ind, ok := f.inodes[ino]
	return ind, ok
}

// errNotFound reports a missing path.
func errNotFound(path string) error {
	return fmt.Errorf("fs: %s: no such file: %w", path, fault.ENOENT)
}

// CachePages reports total page-cache pages across all inodes.
func (f *FS) CachePages() int {
	n := 0
	//klocs:unordered commutative sum of per-inode page counts
	for _, ind := range f.inodes {
		n += ind.pages.Len()
	}
	return n
}

// ForEachInode visits inodes in creation order (deterministic).
func (f *FS) ForEachInode(fn func(*Inode) bool) {
	for _, ino := range f.inodeOrder {
		ind, ok := f.inodes[ino]
		if !ok {
			continue
		}
		if !fn(ind) {
			return
		}
	}
}
