// FS-side shrinkers for the memory-pressure plane: the page cache and
// the dentry/inode caches expose Linux-style count/scan reclaim, and
// the filesystem can nominate an OOM victim (coldest inode by
// footprint × idle time) for the last-resort degradation path.
package fs

import (
	"sort"

	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/pressure"
	"kloc/internal/sim"
)

// pageCacheShrinker reclaims page-cache pages via FS.Reclaim.
type pageCacheShrinker struct{ f *FS }

func (s pageCacheShrinker) Name() string { return "fs.pagecache" }

func (s pageCacheShrinker) Count() int { return s.f.CachePages() }

func (s pageCacheShrinker) Scan(ctx *kstate.Ctx, n int) int {
	return s.f.Reclaim(ctx, n)
}

// PageCacheShrinker exposes the page cache to the pressure plane.
func (f *FS) PageCacheShrinker() pressure.Shrinker { return pageCacheShrinker{f} }

// dentryShrinker evicts dentries of unreferenced inodes, and — when an
// inode also has no cached pages — its icache presence: the inode
// object, radix interior nodes, and extent maps. The file itself
// survives (durable metadata is untouched); a later Open re-allocates
// the objects, exactly like a real icache miss.
type dentryShrinker struct{ f *FS }

func (s dentryShrinker) Name() string { return "fs.dentry" }

func (s dentryShrinker) Count() int {
	n := 0
	for _, ino := range s.f.inodeOrder {
		ind, ok := s.f.inodes[ino]
		if !ok || ind.Refs > 0 {
			continue
		}
		if ind.dentry != nil {
			n++
		}
		if ind.inodeObj != nil && ind.pages.Len() == 0 {
			n += 1 + len(ind.radixNodes) + ind.extents.Len()
		}
	}
	return n
}

func (s dentryShrinker) Scan(ctx *kstate.Ctx, n int) int {
	f := s.f
	freed := 0
	for _, ino := range f.inodeOrder {
		if freed >= n {
			break
		}
		ind, ok := f.inodes[ino]
		if !ok || ind.Refs > 0 {
			continue
		}
		if ind.dentry != nil {
			if f.dcache[ind.Path] == ind.Ino {
				delete(f.dcache, ind.Path)
			}
			f.freeObj(ctx, ind.dentry)
			ind.dentry = nil
			freed++
		}
		if ind.inodeObj == nil || ind.pages.Len() > 0 {
			continue
		}
		// Full icache eviction: radix nodes in slot order (slab free
		// order is simulation state), then extents, then the inode.
		slots := make([]int64, 0, len(ind.radixNodes))
		for idx := range ind.radixNodes {
			slots = append(slots, idx)
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		for _, idx := range slots {
			f.freeObj(ctx, ind.radixNodes[idx])
			delete(ind.radixNodes, idx)
			freed++
		}
		ind.extents.Ascend(func(_ int64, o *kobj.Object) bool {
			f.freeObj(ctx, o)
			freed++
			return true
		})
		ind.extents.Clear()
		f.freeObj(ctx, ind.inodeObj)
		ind.inodeObj = nil
		freed++
	}
	return freed
}

// DentryShrinker exposes the dentry/inode caches to the pressure
// plane.
func (f *FS) DentryShrinker() pressure.Shrinker { return dentryShrinker{f} }

// OOMVictimFrames nominates the filesystem's OOM victim: the inode
// with the largest (pages on the pressured node) × (idle time) score.
// Returns its page-cache frames on that node, for the evictor to spill
// or free. Open files are fair game — under OOM everything is — but
// referenced inodes score at one tick of idleness, so cold files go
// first.
func (f *FS) OOMVictimFrames(node memsim.NodeID, now sim.Time) []*memsim.Frame {
	var victim *Inode
	var best uint64
	for _, ino := range f.inodeOrder {
		ind, ok := f.inodes[ino]
		if !ok {
			continue
		}
		onNode := 0
		ind.pages.Ascend(func(_ int64, p *Page) bool {
			if p.Obj.Frame.Node == node {
				onNode++
			}
			return true
		})
		if onNode == 0 {
			continue
		}
		idle := uint64(1)
		if ind.Refs == 0 && now > ind.lastUsed {
			idle += uint64(now.Sub(ind.lastUsed))
		}
		score := uint64(onNode) * idle
		if score > best {
			best = score
			victim = ind
		}
	}
	if victim == nil {
		return nil
	}
	var frames []*memsim.Frame
	victim.pages.Ascend(func(_ int64, p *Page) bool {
		if p.Obj.Frame.Node == node {
			frames = append(frames, p.Obj.Frame)
		}
		return true
	})
	return frames
}
