package fs

import (
	"testing"
	"testing/quick"

	"kloc/internal/blockdev"
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

func TestRename(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/a")
	f.Write(ctx, file, 0)
	if err := f.Rename(ctx, "/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Open(ctxAt(1), "/a"); err == nil {
		t.Fatal("old path still resolves")
	}
	g, err := f.Open(ctxAt(2), "/b")
	if err != nil {
		t.Fatal(err)
	}
	if g.Inode != file.Inode {
		t.Fatal("rename changed identity")
	}
	if g.Inode.CachedPages() != 1 {
		t.Fatal("rename lost page cache")
	}
	if f.Stats.Renames != 1 {
		t.Fatal("rename not counted")
	}
	// Rename to self is a no-op.
	if err := f.Rename(ctx, "/b", "/b"); err != nil {
		t.Fatal(err)
	}
	// Rename of a missing path fails.
	if err := f.Rename(ctx, "/missing", "/x"); err == nil {
		t.Fatal("rename of missing file succeeded")
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	a, _ := f.Create(ctx, "/a")
	b, _ := f.Create(ctx, "/b")
	f.Close(ctx, b)
	if err := f.Rename(ctx, "/a", "/b"); err != nil {
		t.Fatal(err)
	}
	got, err := f.Open(ctxAt(1), "/b")
	if err != nil {
		t.Fatal(err)
	}
	if got.Inode != a.Inode {
		t.Fatal("replace-rename did not install the source inode")
	}
	if f.Stats.Unlinks != 1 {
		t.Fatal("replaced target not unlinked")
	}
}

func TestTruncateShrink(t *testing.T) {
	f, mem := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/t")
	for i := int64(0); i < 100; i++ {
		f.Write(ctx, file, i)
	}
	f.Fsync(ctx, file)
	framesBefore := mem.Frames()
	if err := f.Truncate(ctx, file, 10); err != nil {
		t.Fatal(err)
	}
	if file.Inode.SizePages != 10 {
		t.Fatalf("size = %d", file.Inode.SizePages)
	}
	if got := file.Inode.CachedPages(); got != 10 {
		t.Fatalf("cached pages after truncate = %d", got)
	}
	if mem.Frames() >= framesBefore {
		t.Fatal("truncate freed no frames")
	}
	// Extents beyond the new size are gone; the first survives.
	if file.Inode.extents.Len() != 1 {
		t.Fatalf("extents = %d", file.Inode.extents.Len())
	}
	// Reading past EOF repopulates from "disk" (new page).
	if err := f.Read(ctxAt(10), file, 50); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateExtend(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/t")
	f.Write(ctx, file, 0)
	if err := f.Truncate(ctx, file, 100); err != nil {
		t.Fatal(err)
	}
	if file.Inode.SizePages != 100 || file.Inode.CachedPages() != 1 {
		t.Fatal("logical extension should not allocate pages")
	}
	// Negative clamps to zero.
	if err := f.Truncate(ctx, file, -5); err != nil {
		t.Fatal(err)
	}
	if file.Inode.SizePages != 0 {
		t.Fatalf("size = %d", file.Inode.SizePages)
	}
}

// TestFSInvariantsProperty drives random FS operation mixes and checks
// structural invariants: frame ownership maps agree with page caches,
// live-object counts never go negative, and no frames leak relative to
// live state.
func TestFSInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		fsys, mem := newFSQuiet()
		ctx := ctxAt(0)
		var open []*File
		paths := []string{"/p0", "/p1", "/p2", "/p3"}
		for i := 0; i < 400; i++ {
			ctx.Now = sim.Time(i) * 1000
			switch r.Intn(8) {
			case 0:
				if fl, err := fsys.Create(ctx, paths[r.Intn(len(paths))]); err == nil {
					open = append(open, fl)
				}
			case 1:
				if len(open) > 0 {
					fl := open[r.Intn(len(open))]
					fsys.Write(ctx, fl, r.Int63n(64))
				}
			case 2:
				if len(open) > 0 {
					fl := open[r.Intn(len(open))]
					fsys.Read(ctx, fl, r.Int63n(64))
				}
			case 3:
				if len(open) > 0 {
					j := r.Intn(len(open))
					fsys.Close(ctx, open[j])
					open = append(open[:j], open[j+1:]...)
				}
			case 4:
				fsys.Unlink(ctx, paths[r.Intn(len(paths))])
			case 5:
				fsys.Rename(ctx, paths[r.Intn(len(paths))], paths[r.Intn(len(paths))])
			case 6:
				if len(open) > 0 {
					fsys.Truncate(ctx, open[r.Intn(len(open))], r.Int63n(32))
				}
			case 7:
				if len(open) > 0 {
					fsys.Fsync(ctx, open[r.Intn(len(open))])
				}
			}
		}
		// Invariant 1: every frameOwner entry points at a live inode
		// holding that frame.
		for fid, ino := range fsys.frameOwner {
			ind, ok := fsys.inodes[ino]
			if !ok {
				return false
			}
			if _, ok := ind.frameIndex[fid]; !ok {
				return false
			}
		}
		// Invariant 2: per-inode frameIndex matches the page tree.
		bad := false
		fsys.ForEachInode(func(ind *Inode) bool {
			if ind.pages.Len() != len(ind.frameIndex) {
				bad = true
				return false
			}
			ind.pages.Ascend(func(idx int64, p *Page) bool {
				if got, ok := ind.frameIndex[p.Obj.Frame.ID]; !ok || got != idx {
					bad = true
					return false
				}
				return true
			})
			return !bad
		})
		if bad {
			return false
		}
		// Invariant 3: live-object accounting is non-negative.
		for _, n := range fsys.Stats.ObjLive {
			if n < 0 {
				return false
			}
		}
		_ = mem
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// newFSQuiet builds an FS without a testing.T (for property functions).
func newFSQuiet() (*FS, *memsim.Memory) {
	mem := memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 512, SlowPages: 4096,
		FastBandwidth: 30, BandwidthRatio: 4, CPUs: 4,
	})
	mq := blockdev.NewMQ(blockdev.SimNVMe(), 4)
	var objIDs, inoGen kstate.IDGen
	return New(mem, mq, kstate.NopHooks{}, &objIDs, &inoGen), mem
}

func TestTruncateTypesStayBalanced(t *testing.T) {
	f, _ := newFS(t, nil)
	ctx := ctxAt(0)
	file, _ := f.Create(ctx, "/bal")
	for i := int64(0); i < 64; i++ {
		f.Write(ctx, file, i)
	}
	f.Truncate(ctx, file, 0)
	if live := f.Stats.ObjLive[kobj.PageCache]; live != 0 {
		t.Fatalf("page-cache objects leaked: %d", live)
	}
	if live := f.Stats.ObjLive[kobj.Extent]; live != 0 {
		t.Fatalf("extents leaked: %d", live)
	}
}
