// Package kernel assembles the simulated OS: the memory system, the
// filesystem, the network stack, application-page management, lifetime
// accounting, and the policy daemon loop. Workloads talk to a Kernel;
// policies steer it through the kstate.Hooks they implement.
package kernel

import (
	"kloc/internal/alloc"
	"kloc/internal/blockdev"
	"kloc/internal/fault"
	"kloc/internal/fs"
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/metrics"
	"kloc/internal/netsim"
	"kloc/internal/pressure"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

// appIDBit distinguishes app-page frame IDs from kernel-object IDs in
// the lifetime tracker's shared keyspace.
const appIDBit = uint64(1) << 63

// Policy is what a tiering strategy must provide beyond the kernel
// hooks: identity, attachment, and a periodic daemon tick.
type Policy interface {
	kstate.Hooks
	Name() string
	// Attach wires the policy to the kernel before the run starts.
	Attach(k *Kernel)
	// Tick runs the policy's background daemon work (LRU scans,
	// migrations) and returns the virtual time it consumed. The daemon
	// reschedules itself after max(period, cost).
	Tick(now sim.Time) sim.Duration
	// TickPeriod is the daemon cadence.
	TickPeriod() sim.Duration
}

// Stats aggregates kernel-level accounting. The counters are bumped on
// the op hot path by whichever lane drives this kernel instance, so
// they are lane-confined (one kernel = one lane's timeline partition
// under ROADMAP item 2).
type Stats struct {
	//klocs:owner=lane
	AppPagesAllocated uint64
	//klocs:owner=lane
	AppPagesFreed uint64
	//klocs:owner=lane
	AppAccesses uint64
	Syscalls    uint64
}

// Kernel is the assembled simulated OS instance.
type Kernel struct {
	Eng *sim.Engine
	Mem *memsim.Memory
	FS  *fs.FS
	Net *netsim.Net

	// Pressure is the memory-pressure plane: the shrinker registry is
	// the kernel's single reclaim entry point (fs and netsim route
	// their allocation slow paths through it).
	Pressure *pressure.Plane

	Policy Policy

	// Trace is the armed tracing plane (nil when tracing is off); see
	// AttachTracer. Kernel-level events (app pages, oom.spill) emit
	// through it directly. Rewired only between runs, at quiescence.
	//klocs:owner=epoch
	Trace *trace.Tracer

	// San is the armed runtime sanitizer (nil when sanitizing is off);
	// see AttachSanitizer. Kernel-level app-page alloc/free/access
	// report through it directly. Rewired only between runs.
	//klocs:owner=epoch
	San *alloc.Sanitizer

	// Lifetimes records object/page lifetimes by class (Fig 2d).
	Lifetimes *metrics.LifetimeTracker

	// taskSocket is the socket the workload currently runs on (Optane
	// experiments migrate the task mid-run). The migration is a
	// scheduled event on this kernel's own engine, so the write runs
	// on the lane that owns the kernel — each shard constructs its
	// own Kernel, making the field lane-confined like the rest of the
	// per-shard state.
	//klocs:owner=lane
	taskSocket int

	//klocs:owner=lane
	objIDs kstate.IDGen
	inoGen kstate.IDGen

	//klocs:owner=lane
	appPages map[memsim.FrameID]*memsim.Frame

	// ctxPool recycles retired op contexts under metrics.ModePooled
	// (see NewCtx/PutCtx). ctxFresh/ctxReused meter the pool.
	//klocs:owner=lane
	ctxPool             []*kstate.Ctx
	ctxPooled           bool
	ctxFresh, ctxReused uint64

	//klocs:owner=lane
	Stats Stats
}

// New assembles a kernel over a memory platform with the given policy.
func New(eng *sim.Engine, mem *memsim.Memory, pol Policy) *Kernel {
	k := &Kernel{
		Eng:       eng,
		Mem:       mem,
		Policy:    pol,
		Lifetimes: metrics.NewLifetimeTracker(),
		appPages:  make(map[memsim.FrameID]*memsim.Frame),
		ctxPooled: mem.Mode().Pooled(),
	}
	hooks := &muxHooks{kernel: k, policy: pol}
	mq := blockdev.NewMQ(blockdev.SimNVMe(), mem.NumCPUs())
	k.FS = fs.New(mem, mq, hooks, &k.objIDs, &k.inoGen)
	k.Net = netsim.New(mem, hooks, &k.objIDs, &k.inoGen)
	// The pressure plane is the single reclaim entry point: every
	// subsystem's allocation slow path goes through its shrinker
	// registry (page cache, dentry/inode caches, skbuff backlogs), and
	// the OOM evictor degrades gracefully when the caches run dry.
	k.Pressure = pressure.NewPlane(mem, memsim.FastNode)
	k.Pressure.Register(k.FS.PageCacheShrinker())
	k.Pressure.Register(k.FS.DentryShrinker())
	k.Pressure.Register(k.Net.SkbuffShrinker())
	k.Pressure.OOM = &oomEvictor{k: k}
	k.FS.Pressure = k.Pressure
	k.Net.Pressure = k.Pressure
	pol.Attach(k)
	return k
}

// InjectFaults arms a fault-injection plane across every subsystem:
// the memory system (allocation + migration points), the storage
// device (blockdev.io), and — because netsim consults the plane
// through the shared Memory — packet ingress. Passing nil disarms.
func (k *Kernel) InjectFaults(p *fault.Plane) {
	k.Mem.Fault = p
	k.FS.MQ.Dev.Fault = p
}

// FaultPlane returns the armed plane, if any.
func (k *Kernel) FaultPlane() *fault.Plane { return k.Mem.Fault }

// AttachTracer arms a tracing plane across every subsystem that emits
// trace events: the filesystem and network object paths, the blk_mq
// dispatch layer, the memory system's migrator, the pressure plane,
// and the kernel's own app-page and OOM paths. The tracer is strictly
// passive, so attaching (or passing nil to detach) never perturbs the
// simulation.
func (k *Kernel) AttachTracer(t *trace.Tracer) {
	k.Trace = t
	k.FS.Trace = t
	k.Net.Trace = t
	k.FS.MQ.Trace = t
	k.Mem.Trace = t
	k.Pressure.Trace = t
}

// AttachSanitizer arms the KASAN/kmemleak-analog runtime sanitizer
// across every subsystem that allocates tracked objects: the
// filesystem and network object paths plus the kernel's own app-page
// path. Like the tracer, the sanitizer is strictly passive — it never
// charges virtual time or perturbs allocator state — so a sanitized
// run is bit-identical to an unsanitized one at the same seed.
// Passing nil detaches.
func (k *Kernel) AttachSanitizer(s *alloc.Sanitizer) {
	k.San = s
	k.FS.San = s
	k.Net.San = s
}

// SanitizeReport runs the kmemleak-style teardown scan and returns the
// sanitizer's report: the kernel marks every object reachable from its
// roots (live inodes' object trees, pending journal buffers, open
// sockets and their ingress queues, mapped app pages), and whatever
// tracked-live object goes unmarked is reported as a leak grouped by
// KLOC context. Returns nil when no sanitizer is attached.
func (k *Kernel) SanitizeReport(at sim.Time) *alloc.SanReport {
	if k.San == nil {
		return nil
	}
	k.San.BeginScan()
	k.FS.MarkReachable(k.San)
	k.Net.MarkReachable(k.San)
	//klocs:unordered marking reachability is idempotent; scan order cannot affect the report
	for id := range k.appPages {
		k.San.MarkReachable(appIDBit | uint64(id))
	}
	return k.San.Report(at)
}

// Start launches the policy daemon (and, when configured, the kswapd
// background reclaimer) on the engine.
func (k *Kernel) Start() {
	k.Pressure.StartKswapd(k.Eng)
	period := k.Policy.TickPeriod()
	if period <= 0 {
		return
	}
	var tick func(*sim.Engine)
	tick = func(e *sim.Engine) {
		cost := k.Policy.Tick(e.Now())
		next := period
		if cost > next {
			next = cost
		}
		e.After(next, tick)
	}
	k.Eng.After(period, tick)
}

// TaskSocket reports the socket the workload runs on.
func (k *Kernel) TaskSocket() int { return k.taskSocket }

// SetTaskSocket moves the workload's execution to another socket
// (the Optane interference scenario, §6.2).
func (k *Kernel) SetTaskSocket(s int) { k.taskSocket = s }

// CPUFor maps a workload thread to a CPU on the current task socket.
func (k *Kernel) CPUFor(thread int) int {
	var local []int
	for cpu, sock := range k.Mem.CPUSocket {
		if sock == k.taskSocket {
			local = append(local, cpu)
		}
	}
	if len(local) == 0 {
		return thread % k.Mem.NumCPUs()
	}
	return local[thread%len(local)]
}

// NewCtx builds an operation context for a workload thread at the
// current virtual time. Under metrics.ModePooled a retired context
// (see PutCtx) is recycled instead of allocated; the reset writes
// every field, so a recycled context is indistinguishable from a
// fresh one.
func (k *Kernel) NewCtx(thread int) *kstate.Ctx {
	k.Stats.Syscalls++
	if last := len(k.ctxPool) - 1; last >= 0 {
		c := k.ctxPool[last]
		k.ctxPool = k.ctxPool[:last]
		*c = kstate.Ctx{CPU: k.CPUFor(thread), Now: k.Eng.Now()}
		k.ctxReused++
		return c
	}
	k.ctxFresh++
	return &kstate.Ctx{CPU: k.CPUFor(thread), Now: k.Eng.Now()}
}

// PutCtx returns a retired op context to the pool. Callers must not
// retain or read ctx afterwards — NewCtx may hand the same struct to
// the next operation. A no-op (safe to call unconditionally) when
// pooling is off or ctx is nil.
func (k *Kernel) PutCtx(c *kstate.Ctx) {
	if c == nil || !k.ctxPooled {
		return
	}
	k.ctxPool = append(k.ctxPool, c)
}

// CtxPoolCounters reports how many op contexts were freshly allocated
// vs recycled — a deterministic pool-effectiveness meter for the perf
// harness.
func (k *Kernel) CtxPoolCounters() (fresh, reused uint64) {
	return k.ctxFresh, k.ctxReused
}

// --- application pages ---

// appReclaimRetries bounds AppAlloc's direct-reclaim attempts: each
// round that makes progress earns one more allocation retry; a round
// with no progress gives up immediately.
const appReclaimRetries = 4

// AppAlloc allocates n application pages placed by the policy,
// returning the frames. Under exhaustion it enters direct reclaim
// (watermark-derived target, bounded retries) before failing.
func (k *Kernel) AppAlloc(ctx *kstate.Ctx, n int) ([]*memsim.Frame, error) {
	order := k.Policy.PlaceApp(ctx)
	out := make([]*memsim.Frame, 0, n)
	for i := 0; i < n; i++ {
		f, err := k.Mem.AllocFallback(order, memsim.ClassApp, ctx.Now)
		for try := 0; err == memsim.ErrNoMemory && try < appReclaimRetries; try++ {
			if k.Pressure.DirectReclaim(ctx) == 0 {
				break // no progress: more retries cannot help
			}
			f, err = k.Mem.AllocFallback(order, memsim.ClassApp, ctx.Now)
		}
		if err != nil {
			return out, err
		}
		ctx.Charge(300) // page fault + zeroing fast path
		k.Trace.Emit(trace.AllocPage, ctx.Now, 0, uint64(f.ID), "app",
			int(f.Node), int64(f.Pages())*memsim.PageSize)
		k.appPages[f.ID] = f
		k.Lifetimes.Born(appIDBit|uint64(f.ID), ctx.Now)
		k.San.TrackAlloc(appIDBit|uint64(f.ID), "app", 0, int64(f.Pages())*memsim.PageSize, ctx.Now)
		k.Stats.AppPagesAllocated++
		k.Policy.PageAllocated(ctx, f)
		out = append(out, f)
	}
	return out, nil
}

// hugeOrder is the transparent-huge-page order (2 MB).
const hugeOrder = 9

// AppAllocHuge allocates n transparent huge pages (2 MB compound
// frames) placed by the policy. THP regions tier as single units, which
// is how §5 expects KLOCs to compose with multi-page sizes.
func (k *Kernel) AppAllocHuge(ctx *kstate.Ctx, n int) ([]*memsim.Frame, error) {
	order := k.Policy.PlaceApp(ctx)
	out := make([]*memsim.Frame, 0, n)
	for i := 0; i < n; i++ {
		var f *memsim.Frame
		var err error
		for _, node := range order {
			if f, err = k.Mem.AllocOrder(node, memsim.ClassApp, hugeOrder, ctx.Now); err == nil {
				break
			}
		}
		if err != nil {
			return out, err
		}
		ctx.Charge(1200) // huge-page fault: clearing + mapping
		k.Trace.Emit(trace.AllocPage, ctx.Now, 0, uint64(f.ID), "app",
			int(f.Node), int64(f.Pages())*memsim.PageSize)
		k.appPages[f.ID] = f
		k.Lifetimes.Born(appIDBit|uint64(f.ID), ctx.Now)
		k.San.TrackAlloc(appIDBit|uint64(f.ID), "app", 0, int64(f.Pages())*memsim.PageSize, ctx.Now)
		k.Stats.AppPagesAllocated += uint64(f.Pages())
		k.Policy.PageAllocated(ctx, f)
		out = append(out, f)
	}
	return out, nil
}

// AppAccess touches an application page.
func (k *Kernel) AppAccess(ctx *kstate.Ctx, f *memsim.Frame, bytes int, write bool) {
	if bytes <= 0 {
		bytes = memsim.PageSize
	}
	k.San.CheckAccess(appIDBit|uint64(f.ID), ctx.Now)
	ctx.Charge(k.Mem.Access(ctx.CPU, f, bytes, write, ctx.Now))
	k.Stats.AppAccesses++
	k.Policy.PageAccessed(ctx, f)
}

// AppFree releases application pages.
func (k *Kernel) AppFree(ctx *kstate.Ctx, frames []*memsim.Frame) {
	for _, f := range frames {
		if _, ok := k.appPages[f.ID]; !ok {
			continue
		}
		delete(k.appPages, f.ID)
		k.San.TrackFree(appIDBit|uint64(f.ID), ctx.Now)
		k.Trace.Emit(trace.ObjFree, ctx.Now, 0, uint64(f.ID), "app",
			int(f.Node), int64(f.Pages())*memsim.PageSize)
		k.Lifetimes.Died(appIDBit|uint64(f.ID), "app", ctx.Now)
		k.Policy.PageFreed(ctx, f)
		k.Mem.Free(f)
		k.Stats.AppPagesFreed++
	}
}

// AppPages reports the live app-page count.
func (k *Kernel) AppPages() int { return len(k.appPages) }

// ObjIDs exposes the shared object-ID generator (tests).
func (k *Kernel) ObjIDs() *kstate.IDGen { return &k.objIDs }

// lifetimeClass buckets object types the way Fig 2d reports them.
func lifetimeClass(t kobj.Type) string {
	if t.Info().Alloc == kobj.AllocSlab {
		return "slab"
	}
	return "cache"
}

// muxHooks fans kernel-internal accounting and the policy's hooks out
// of one Hooks implementation handed to fs and netsim.
type muxHooks struct {
	kernel *Kernel
	policy Policy
}

func (m *muxHooks) PlaceKernel(ctx *kstate.Ctx, t kobj.Type, ino uint64) []memsim.NodeID {
	return m.policy.PlaceKernel(ctx, t, ino)
}
func (m *muxHooks) PlaceApp(ctx *kstate.Ctx) []memsim.NodeID { return m.policy.PlaceApp(ctx) }
func (m *muxHooks) UseKlocAllocator(t kobj.Type) bool        { return m.policy.UseKlocAllocator(t) }
func (m *muxHooks) DriverSockExtract() bool                  { return m.policy.DriverSockExtract() }

func (m *muxHooks) InodeCreated(ctx *kstate.Ctx, ino uint64, sock bool) {
	m.policy.InodeCreated(ctx, ino, sock)
}
func (m *muxHooks) InodeOpened(ctx *kstate.Ctx, ino uint64)  { m.policy.InodeOpened(ctx, ino) }
func (m *muxHooks) InodeClosed(ctx *kstate.Ctx, ino uint64)  { m.policy.InodeClosed(ctx, ino) }
func (m *muxHooks) InodeDeleted(ctx *kstate.Ctx, ino uint64) { m.policy.InodeDeleted(ctx, ino) }

func (m *muxHooks) ObjectCreated(ctx *kstate.Ctx, ino uint64, o *kobj.Object) {
	m.kernel.Lifetimes.Born(uint64(o.ID), ctx.Now)
	m.policy.ObjectCreated(ctx, ino, o)
}
func (m *muxHooks) ObjectAssociated(ctx *kstate.Ctx, ino uint64, o *kobj.Object) {
	m.kernel.San.Associate(uint64(o.ID), ino)
	m.policy.ObjectAssociated(ctx, ino, o)
}
func (m *muxHooks) ObjectFreed(ctx *kstate.Ctx, o *kobj.Object) {
	m.kernel.Lifetimes.Died(uint64(o.ID), lifetimeClass(o.Type), ctx.Now)
	m.policy.ObjectFreed(ctx, o)
}

func (m *muxHooks) PageAllocated(ctx *kstate.Ctx, f *memsim.Frame) { m.policy.PageAllocated(ctx, f) }
func (m *muxHooks) PageAccessed(ctx *kstate.Ctx, f *memsim.Frame)  { m.policy.PageAccessed(ctx, f) }
func (m *muxHooks) PageFreed(ctx *kstate.Ctx, f *memsim.Frame)     { m.policy.PageFreed(ctx, f) }

var _ kstate.Hooks = (*muxHooks)(nil)
