package kernel

import (
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

// oomFixedPerPage is the spill migration's per-page fixed cost
// (page-table rewrite + TLB shootdown), matching the policy layer's
// migration model.
const oomFixedPerPage = 3 * sim.Microsecond

// OOMVictimChooser is implemented by policies that can nominate an
// OOM victim: the worst-scoring KLOC context's relocatable frames on
// the pressured node. Policies without the method fall back to the
// filesystem's coldest-inode scoring.
type OOMVictimChooser interface {
	OOMVictimFrames(node memsim.NodeID, now sim.Time) []*memsim.Frame
}

// oomEvictor is the kernel's last-resort degradation path, invoked by
// the pressure plane when every shrinker has run dry and the pressured
// node sits below its Min watermark. It picks the worst offender
// (footprint × coldness), spills its relocatable frames to the tier
// with the most headroom, and frees outright what cannot move — the
// run degrades instead of dying.
type oomEvictor struct{ k *Kernel }

// EvictWorst implements pressure.OOMEvictor. Returns the pressured
// node's free-page growth.
func (o *oomEvictor) EvictWorst(ctx *kstate.Ctx, node memsim.NodeID) int {
	k := o.k
	var frames []*memsim.Frame
	if ch, ok := k.Policy.(OOMVictimChooser); ok {
		frames = ch.OOMVictimFrames(node, ctx.Now)
	}
	if len(frames) == 0 {
		frames = k.FS.OOMVictimFrames(node, ctx.Now)
	}
	if len(frames) == 0 {
		return 0
	}
	before := k.Mem.Node(node).Free()
	if dst, ok := k.spillNode(node); ok {
		mig := &memsim.Migrator{Mem: k.Mem, FixedPerPage: oomFixedPerPage, Parallelism: 4}
		_, _, cost := mig.Migrate(frames, dst, ctx.Now)
		ctx.Charge(cost)
	}
	// Frames still on the node could not migrate (pinned, or no tier
	// has room): evict FS-owned cache pages outright.
	for _, f := range frames {
		if f.Node == node && f.Class == memsim.ClassCache {
			k.FS.EvictFrame(ctx, f)
		}
	}
	freed := k.Mem.Node(node).Free() - before
	if freed < 0 {
		freed = 0
	}
	k.Trace.Emit(trace.OOMSpill, ctx.Now, frames[0].Knode, uint64(len(frames)),
		"spill", int(node), int64(freed))
	return freed
}

// spillNode picks the node with the most free pages other than the
// pressured one (ties break toward the lower ID via strict >).
func (k *Kernel) spillNode(node memsim.NodeID) (memsim.NodeID, bool) {
	best, bestFree, ok := memsim.NodeID(0), 0, false
	for _, n := range k.Mem.Nodes {
		if n.ID == node {
			continue
		}
		if n.Free() > bestFree {
			best, bestFree, ok = n.ID, n.Free(), true
		}
	}
	return best, ok
}
