package kernel

import (
	"testing"

	"kloc/internal/alloc"
	"kloc/internal/memsim"
)

func TestSanitizeReportNilWithoutSanitizer(t *testing.T) {
	k, _, eng := newTestKernel(0)
	if r := k.SanitizeReport(eng.Now()); r != nil {
		t.Fatalf("report without sanitizer = %+v, want nil", r)
	}
}

func TestSanitizerCatchesAppPageBugs(t *testing.T) {
	k, _, _ := newTestKernel(0)
	k.AttachSanitizer(alloc.NewSanitizer())
	ctx := k.NewCtx(0)
	frames, err := k.AppAlloc(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Use-after-free: keep touching a page after returning it.
	k.AppFree(ctx, frames[:1])
	k.AppAccess(ctx, frames[0], 0, false)
	// Leak: drop the kernel's reference without freeing (the seeded
	// bug — a real caller loses the frame slice).
	leaked := frames[1]
	delete(k.appPages, leaked.ID)

	r := k.SanitizeReport(k.Eng.Now())
	if r.Clean() {
		t.Fatal("seeded app-page bugs not reported")
	}
	if r.TotalFindings != 1 || r.Findings[0].Kind != alloc.SanUseAfterFree {
		t.Fatalf("findings = %+v, want one use-after-free", r.Findings)
	}
	if r.Findings[0].ID != appIDBit|uint64(frames[0].ID) {
		t.Fatalf("finding ID = %d, want app-page keyspace", r.Findings[0].ID)
	}
	if r.TotalLeaks != 1 {
		t.Fatalf("TotalLeaks = %d, want 1:\n%s", r.TotalLeaks, r)
	}
	leak := r.Leaks[0]
	if leak.ID != appIDBit|uint64(leaked.ID) || leak.Class != "app" {
		t.Fatalf("leak = %+v, want app page %d", leak, leaked.ID)
	}
	if leak.Size != int64(leaked.Pages())*memsim.PageSize {
		t.Fatalf("leak size = %d", leak.Size)
	}
	// The still-mapped page is reachable, not leaked.
	if r.TrackedLive != 2 {
		t.Fatalf("TrackedLive = %d, want 2", r.TrackedLive)
	}
}

func TestSanitizerCleanKernelLifecycle(t *testing.T) {
	k, _, _ := newTestKernel(0)
	k.AttachSanitizer(alloc.NewSanitizer())
	ctx := k.NewCtx(0)
	frames, err := k.AppAlloc(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		k.AppAccess(ctx, f, 0, true)
	}
	k.AppFree(ctx, frames[:2])
	file, err := k.FS.Create(ctx, "/sane")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.FS.Write(ctx, file, 0); err != nil {
		t.Fatal(err)
	}
	k.FS.Close(ctx, file)
	if r := k.SanitizeReport(k.Eng.Now()); !r.Clean() {
		t.Fatalf("clean lifecycle dirty:\n%s", r)
	}
}
