package kernel

import (
	"testing"

	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// testPolicy is a minimal policy recording daemon ticks.
type testPolicy struct {
	kstate.NopHooks
	k      *Kernel
	ticks  int
	period sim.Duration
	cost   sim.Duration
}

func (p *testPolicy) Name() string               { return "test" }
func (p *testPolicy) Attach(k *Kernel)           { p.k = k }
func (p *testPolicy) TickPeriod() sim.Duration   { return p.period }
func (p *testPolicy) Tick(sim.Time) sim.Duration { p.ticks++; return p.cost }

func newTestKernel(period sim.Duration) (*Kernel, *testPolicy, *sim.Engine) {
	eng := sim.NewEngine()
	mem := memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 256, SlowPages: 1024, FastBandwidth: 30, BandwidthRatio: 4, CPUs: 4,
	})
	pol := &testPolicy{period: period}
	k := New(eng, mem, pol)
	return k, pol, eng
}

func TestKernelAssembly(t *testing.T) {
	k, pol, _ := newTestKernel(0)
	if k.FS == nil || k.Net == nil || k.Mem == nil {
		t.Fatal("kernel missing subsystems")
	}
	if pol.k != k {
		t.Fatal("policy not attached")
	}
	if k.Pressure == nil {
		t.Fatal("pressure plane not assembled")
	}
	names := k.Pressure.ShrinkerNames()
	want := []string{"fs.pagecache", "fs.dentry", "net.skbuff"}
	if len(names) != len(want) {
		t.Fatalf("shrinkers = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("shrinkers = %v, want %v", names, want)
		}
	}
	if k.FS.Pressure != k.Pressure || k.Net.Pressure != k.Pressure {
		t.Fatal("subsystem reclaim not routed through the pressure plane")
	}
}

func TestAppPageLifecycle(t *testing.T) {
	k, _, _ := newTestKernel(0)
	ctx := k.NewCtx(0)
	frames, err := k.AppAlloc(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 10 || k.AppPages() != 10 {
		t.Fatalf("allocated %d, tracked %d", len(frames), k.AppPages())
	}
	if ctx.Cost <= 0 {
		t.Fatal("allocation was free")
	}
	for _, f := range frames {
		if f.Class != memsim.ClassApp {
			t.Fatalf("class = %v", f.Class)
		}
	}
	k.AppAccess(ctx, frames[0], 512, true)
	if k.Stats.AppAccesses != 1 {
		t.Fatal("access not counted")
	}
	k.AppFree(ctx, frames)
	if k.AppPages() != 0 || k.Mem.Frames() != 0 {
		t.Fatal("free leaked")
	}
	// Lifetime recorded under "app".
	if k.Lifetimes.Class("app") == nil || k.Lifetimes.Class("app").Count() != 10 {
		t.Fatal("app lifetimes not recorded")
	}
	// Double free is a no-op.
	k.AppFree(ctx, frames)
	if k.Stats.AppPagesFreed != 10 {
		t.Fatal("double free counted")
	}
}

func TestDaemonScheduling(t *testing.T) {
	k, pol, eng := newTestKernel(10 * sim.Millisecond)
	k.Start()
	eng.RunUntil(sim.Time(0).Add(55 * sim.Millisecond))
	if pol.ticks != 5 {
		t.Fatalf("ticks = %d, want 5", pol.ticks)
	}
}

func TestDaemonBackoffWhenBusy(t *testing.T) {
	k, pol, eng := newTestKernel(10 * sim.Millisecond)
	pol.cost = 30 * sim.Millisecond // each tick takes 3 periods
	k.Start()
	eng.RunUntil(sim.Time(0).Add(100 * sim.Millisecond))
	// First at 10ms, then every max(period,cost)=30ms: 40, 70, 100.
	if pol.ticks < 3 || pol.ticks > 4 {
		t.Fatalf("busy daemon ticked %d times", pol.ticks)
	}
}

func TestNoDaemonForZeroPeriod(t *testing.T) {
	k, _, eng := newTestKernel(0)
	k.Start()
	if eng.Pending() != 0 {
		t.Fatal("zero-period policy scheduled a daemon")
	}
}

func TestTaskSocketAndCPUMapping(t *testing.T) {
	eng := sim.NewEngine()
	mem := memsim.NewOptane(memsim.DefaultOptane(256))
	pol := &testPolicy{}
	k := New(eng, mem, pol)
	// All thread CPUs start on socket 0.
	for thread := 0; thread < 8; thread++ {
		if s := mem.SocketOf(k.CPUFor(thread)); s != 0 {
			t.Fatalf("thread %d on socket %d before move", thread, s)
		}
	}
	k.SetTaskSocket(1)
	if k.TaskSocket() != 1 {
		t.Fatal("task socket not updated")
	}
	for thread := 0; thread < 8; thread++ {
		if s := mem.SocketOf(k.CPUFor(thread)); s != 1 {
			t.Fatalf("thread %d on socket %d after move", thread, s)
		}
	}
}

func TestObjectLifetimesViaHooks(t *testing.T) {
	k, _, _ := newTestKernel(0)
	ctx := k.NewCtx(0)
	f, err := k.FS.Create(ctx, "/x")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.FS.Write(ctx, f, 0); err != nil {
		t.Fatal(err)
	}
	k.FS.Close(ctx, f)
	later := &kstate.Ctx{CPU: 0, Now: 1000000}
	if err := k.FS.Unlink(later, "/x"); err != nil {
		t.Fatal(err)
	}
	// Slab objects (inode, dentry, extent...) and cache pages died.
	if k.Lifetimes.Class("slab") == nil || k.Lifetimes.Class("slab").Count() == 0 {
		t.Fatal("no slab lifetimes recorded")
	}
	if k.Lifetimes.Class("cache") == nil || k.Lifetimes.Class("cache").Count() == 0 {
		t.Fatal("no cache lifetimes recorded")
	}
}

func TestLifetimeClassMapping(t *testing.T) {
	if lifetimeClass(kobj.Dentry) != "slab" || lifetimeClass(kobj.PageCache) != "cache" {
		t.Fatal("lifetime class mapping wrong")
	}
}

func TestAppAllocReclaimsUnderPressure(t *testing.T) {
	eng := sim.NewEngine()
	mem := memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 32, SlowPages: 32, FastBandwidth: 30, BandwidthRatio: 4, CPUs: 1,
	})
	k := New(eng, mem, &testPolicy{})
	ctx := k.NewCtx(0)
	// Fill memory with clean page cache.
	f, err := k.FS.Create(ctx, "/fill")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); ; i++ {
		if err := k.FS.Write(ctx, f, i); err != nil {
			break
		}
	}
	k.FS.Fsync(ctx, f) // clean pages: reclaimable
	// App allocation should succeed by reclaiming cache.
	if _, err := k.AppAlloc(ctx, 8); err != nil {
		t.Fatalf("app alloc did not reclaim: %v", err)
	}
}

// TestAppAllocReclaimTargetBeyondOldBatch is the regression test for
// the old slow path, which reclaimed a hardcoded 64 pages exactly once
// and failed any allocation needing more. The bounded retry loop with
// a watermark-derived target must satisfy a demand several batches
// deep.
func TestAppAllocReclaimTargetBeyondOldBatch(t *testing.T) {
	eng := sim.NewEngine()
	mem := memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 256, SlowPages: 256, FastBandwidth: 30, BandwidthRatio: 4, CPUs: 1,
	})
	k := New(eng, mem, &testPolicy{})
	ctx := k.NewCtx(0)
	// Fill all 512 pages with clean, reclaimable page cache.
	f, err := k.FS.Create(ctx, "/fill")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); ; i++ {
		if err := k.FS.Write(ctx, f, i); err != nil {
			break
		}
	}
	k.FS.Fsync(ctx, f)
	k.FS.Close(ctx, f)
	// 200 pages needs >3 of the old 64-page one-shot batches.
	frames, err := k.AppAlloc(ctx, 200)
	if err != nil {
		t.Fatalf("alloc needing multiple reclaim batches failed: %v", err)
	}
	if len(frames) != 200 {
		t.Fatalf("got %d frames", len(frames))
	}
	if k.Pressure.Stats.DirectReclaims == 0 {
		t.Fatal("allocation succeeded without entering direct reclaim")
	}
}

// TestAppAllocStopsOnNoProgress pins the other half of the retry-loop
// contract: when nothing is reclaimable, the loop must give up after
// one fruitless round instead of burning its whole retry budget.
func TestAppAllocStopsOnNoProgress(t *testing.T) {
	eng := sim.NewEngine()
	mem := memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 64, SlowPages: 64, FastBandwidth: 30, BandwidthRatio: 4, CPUs: 1,
	})
	k := New(eng, mem, &testPolicy{})
	ctx := k.NewCtx(0)
	// Fill with app pages — not reclaimable by any shrinker.
	if _, err := k.AppAlloc(ctx, 128); err != nil {
		t.Fatal(err)
	}
	if _, err := k.AppAlloc(ctx, 1); err != memsim.ErrNoMemory {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
	if got := k.Pressure.Stats.DirectReclaims; got != 1 {
		t.Fatalf("direct reclaims = %d, want 1 (stop on no progress)", got)
	}
}

func TestAppAllocHuge(t *testing.T) {
	k, _, _ := newTestKernel(0)
	ctx := k.NewCtx(0)
	frames, err := k.AppAllocHuge(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	for _, f := range frames {
		if f.Order != 9 || f.Pages() != 512 {
			t.Fatalf("not a 2MB compound page: order=%d", f.Order)
		}
	}
	// Occupancy counts base pages, not frames.
	fast := k.Mem.Node(memsim.FastNode)
	slow := k.Mem.Node(memsim.SlowNode)
	if fast.Used()+slow.Used() != 1024 {
		t.Fatalf("occupancy = %d, want 1024 base pages", fast.Used()+slow.Used())
	}
	k.AppFree(ctx, frames)
	if fast.Used()+slow.Used() != 0 {
		t.Fatal("huge free leaked occupancy")
	}
}

func TestAppAllocHugeExhaustion(t *testing.T) {
	eng := sim.NewEngine()
	mem := memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 100, SlowPages: 100, FastBandwidth: 30, BandwidthRatio: 4, CPUs: 1,
	})
	k := New(eng, mem, &testPolicy{})
	ctx := k.NewCtx(0)
	if _, err := k.AppAllocHuge(ctx, 1); err == nil {
		t.Fatal("512-page compound alloc fit in a 100-page node")
	}
}
