package lru

import (
	"testing"

	"kloc/internal/memsim"
	"kloc/internal/sim"
)

func frames(n int) []*memsim.Frame {
	out := make([]*memsim.Frame, n)
	for i := range out {
		out[i] = &memsim.Frame{ID: memsim.FrameID(i + 1)}
	}
	return out
}

func TestAddRemoveContains(t *testing.T) {
	l := New()
	fs := frames(3)
	for _, f := range fs {
		l.Add(f, 0)
	}
	a, i := l.Len()
	if a != 0 || i != 3 {
		t.Fatalf("len = %d/%d", a, i)
	}
	if !l.Contains(fs[0]) {
		t.Fatal("missing member")
	}
	l.Add(fs[0], 5) // duplicate add is a no-op
	if _, i := l.Len(); i != 3 {
		t.Fatal("duplicate add changed length")
	}
	l.Remove(fs[1])
	if l.Contains(fs[1]) {
		t.Fatal("removed frame still present")
	}
	l.Remove(fs[1]) // double remove is a no-op
}

func TestMarkAccessedActivates(t *testing.T) {
	l := New()
	f := frames(1)[0]
	l.Add(f, 0)
	l.MarkAccessed(f, 10)
	a, i := l.Len()
	if a != 1 || i != 0 {
		t.Fatalf("after activation: %d/%d", a, i)
	}
	l.MarkAccessed(f, 20) // already active: just refreshes
	if a, _ := l.Len(); a != 1 {
		t.Fatal("double activation duplicated entry")
	}
	l.MarkAccessed(&memsim.Frame{ID: 99}, 5) // unknown frame: no-op
}

func TestScanInactiveColdDetection(t *testing.T) {
	l := New()
	fs := frames(4)
	for _, f := range fs {
		l.Add(f, 0)
	}
	// Touch two frames after their Add-time snapshot.
	fs[0].LastAccess = 50
	fs[2].LastAccess = 60
	cold, cost := l.ScanInactive(4, 100)
	if cost != 4*ScanCostPerPage {
		t.Fatalf("cost = %v", cost)
	}
	if len(cold) != 2 {
		t.Fatalf("cold = %d frames", len(cold))
	}
	for _, f := range cold {
		if f.ID == fs[0].ID || f.ID == fs[2].ID {
			t.Fatal("referenced frame reported cold")
		}
	}
	// Referenced frames moved to active.
	a, i := l.Len()
	if a != 2 || i != 2 {
		t.Fatalf("after scan: %d/%d", a, i)
	}
	if l.ScannedPages != 4 {
		t.Fatalf("scanned = %d", l.ScannedPages)
	}
}

func TestScanInactiveSecondRoundStillCold(t *testing.T) {
	l := New()
	f := frames(1)[0]
	l.Add(f, 0)
	cold, _ := l.ScanInactive(1, 10)
	if len(cold) != 1 {
		t.Fatal("untouched frame not cold")
	}
	// Untouched again: still cold on the next scan.
	cold, _ = l.ScanInactive(1, 20)
	if len(cold) != 1 {
		t.Fatal("frame stopped being cold without a reference")
	}
	// Touch it: next scan rescues it.
	f.LastAccess = 30
	cold, _ = l.ScanInactive(1, 40)
	if len(cold) != 0 {
		t.Fatal("referenced frame evicted")
	}
}

func TestScanEmptyList(t *testing.T) {
	l := New()
	cold, cost := l.ScanInactive(10, 0)
	if len(cold) != 0 || cost != 0 {
		t.Fatal("scan of empty list did work")
	}
}

func TestBalanceDeactivates(t *testing.T) {
	l := New()
	fs := frames(10)
	for _, f := range fs {
		l.Add(f, 0)
		l.MarkAccessed(f, 1) // all active
	}
	cost := l.Balance(2, 100)
	if cost == 0 {
		t.Fatal("balance did no work")
	}
	a, i := l.Len()
	if a+i != 10 {
		t.Fatalf("frames lost: %d/%d", a, i)
	}
	if float64(a) > 2*float64(i+1) {
		t.Fatalf("still unbalanced: %d/%d", a, i)
	}
}

func TestBalanceRespectsRecentReference(t *testing.T) {
	l := New()
	fs := frames(6)
	for _, f := range fs {
		l.Add(f, 0)
		l.MarkAccessed(f, 1)
	}
	// Touch every frame after activation; balance should rotate, not
	// deactivate, hot pages — but must still terminate.
	for _, f := range fs {
		f.LastAccess = 50
	}
	l.Balance(1, 100)
	a, i := l.Len()
	if a+i != 6 {
		t.Fatalf("frames lost: %d/%d", a, i)
	}
}

func TestBalanceZeroRatioDefaults(t *testing.T) {
	l := New()
	for _, f := range frames(4) {
		l.Add(f, 0)
		l.MarkAccessed(f, 1)
	}
	l.Balance(0, 10) // should not loop forever or panic
}

func TestOldestInactive(t *testing.T) {
	l := New()
	fs := frames(5)
	for _, f := range fs {
		l.Add(f, 0)
	}
	old := l.OldestInactive(2)
	if len(old) != 2 {
		t.Fatalf("got %d", len(old))
	}
	// Oldest = first added (tail of the list).
	if old[0].ID != fs[0].ID || old[1].ID != fs[1].ID {
		t.Fatalf("wrong order: %v %v", old[0].ID, old[1].ID)
	}
	if n := len(l.OldestInactive(100)); n != 5 {
		t.Fatalf("overscan returned %d", n)
	}
}

func TestScanCostMatchesPaper(t *testing.T) {
	// 1 M pages must cost ~2 s of virtual time (§3.3).
	total := sim.Duration(1_000_000) * ScanCostPerPage
	if total != 2*sim.Second {
		t.Fatalf("1M-page scan costs %v, want 2s", total)
	}
}

func TestHottestActive(t *testing.T) {
	l := New()
	fs := frames(5)
	for i, f := range fs {
		l.Add(f, 0)
		f.LastAccess = sim.Time(10 * (i + 1))
		l.MarkAccessed(f, f.LastAccess)
	}
	// Active front = most recently activated = fs[4] (LastAccess 50).
	hot, cost := l.HottestActive(10, 30)
	if cost == 0 {
		t.Fatal("hottest scan was free")
	}
	if len(hot) != 3 { // LastAccess 50, 40, 30
		t.Fatalf("hot = %d frames", len(hot))
	}
	for _, f := range hot {
		if f.LastAccess < 30 {
			t.Fatalf("cold frame %v in hot set", f.LastAccess)
		}
	}
	// Limit respected.
	hot, _ = l.HottestActive(1, 0)
	if len(hot) != 1 {
		t.Fatalf("limit ignored: %d", len(hot))
	}
}
