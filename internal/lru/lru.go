// Package lru models the kernel's page-reclaim LRU machinery (§3.3,
// §4.5): separate active and inactive lists, a second-chance promotion
// on reference, and a scan cost of 2 µs per page (the paper measures
// 2 seconds to scan one million pages on their Xeon platform).
//
// The tiering policies drive these lists to pick demotion victims; the
// central result of §3.3 is that this machinery is fast enough for
// long-lived application pages but too slow for kernel objects whose
// lifetimes (36 ms slab, 160 ms page cache) are shorter than a scan
// period — which is exactly what the simulation reproduces.
package lru

import (
	"container/list"

	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// ScanCostPerPage is the virtual cost of inspecting one page during an
// LRU scan (2 s / 1 M pages).
const ScanCostPerPage sim.Duration = 2 * sim.Microsecond

type entry struct {
	frame *memsim.Frame
	// seen is the LastAccess value observed at the previous scan; a
	// frame is "referenced" when LastAccess moved past it.
	seen   sim.Time
	active bool
	elem   *list.Element
}

// Lists is one LRU domain (typically one per memory node).
type Lists struct {
	active   *list.List // front = most recently activated
	inactive *list.List
	member   map[memsim.FrameID]*entry

	// ScannedPages counts LRU work for cost accounting.
	ScannedPages uint64
}

// New returns empty lists.
func New() *Lists {
	return &Lists{
		active:   list.New(),
		inactive: list.New(),
		member:   make(map[memsim.FrameID]*entry),
	}
}

// Len reports (active, inactive) lengths.
func (l *Lists) Len() (int, int) { return l.active.Len(), l.inactive.Len() }

// Contains reports membership.
func (l *Lists) Contains(f *memsim.Frame) bool {
	_, ok := l.member[f.ID]
	return ok
}

// Add inserts a frame (new pages start on the inactive list, like
// Linux; a subsequent reference activates them).
func (l *Lists) Add(f *memsim.Frame, now sim.Time) {
	if _, ok := l.member[f.ID]; ok {
		return
	}
	e := &entry{frame: f, seen: now}
	e.elem = l.inactive.PushFront(e)
	l.member[f.ID] = e
}

// Remove drops a frame (page freed or migrated out of this domain).
func (l *Lists) Remove(f *memsim.Frame) {
	e, ok := l.member[f.ID]
	if !ok {
		return
	}
	if e.active {
		l.active.Remove(e.elem)
	} else {
		l.inactive.Remove(e.elem)
	}
	delete(l.member, f.ID)
}

// MarkAccessed promotes a referenced inactive page to the active list
// (mark_page_accessed).
func (l *Lists) MarkAccessed(f *memsim.Frame, now sim.Time) {
	e, ok := l.member[f.ID]
	if !ok {
		return
	}
	e.seen = now
	if e.active {
		l.active.MoveToFront(e.elem)
		return
	}
	l.inactive.Remove(e.elem)
	e.active = true
	e.elem = l.active.PushFront(e)
}

// ScanInactive examines up to n pages from the inactive tail. Pages
// referenced since their last scan rotate to the active list; the rest
// are returned as cold candidates (still listed — the caller removes
// them if it evicts/migrates). The returned cost is the scan tax the
// caller must charge to virtual time.
func (l *Lists) ScanInactive(n int, now sim.Time) (cold []*memsim.Frame, cost sim.Duration) {
	for i := 0; i < n; i++ {
		back := l.inactive.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		l.ScannedPages++
		cost += ScanCostPerPage
		if e.frame.LastAccess > e.seen {
			// Referenced since we last looked: second chance.
			e.seen = now
			l.inactive.Remove(e.elem)
			e.active = true
			e.elem = l.active.PushFront(e)
			continue
		}
		// Cold: rotate to the front so the scan window advances, and
		// report it.
		e.seen = now
		l.inactive.MoveToFront(e.elem)
		cold = append(cold, e.frame)
	}
	return cold, cost
}

// Balance deactivates pages from the active tail until the active list
// is at most ratio times the inactive list (Linux keeps the lists
// roughly balanced; unreferenced active pages age out). Returns the
// scan cost.
func (l *Lists) Balance(ratio float64, now sim.Time) sim.Duration {
	if ratio <= 0 {
		ratio = 2
	}
	var cost sim.Duration
	for float64(l.active.Len()) > ratio*float64(l.inactive.Len()+1) {
		back := l.active.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		l.ScannedPages++
		cost += ScanCostPerPage
		if e.frame.LastAccess > e.seen {
			// Recently referenced: rotate to front instead.
			e.seen = now
			l.active.MoveToFront(e.elem)
			continue
		}
		l.active.Remove(e.elem)
		e.active = false
		e.seen = now
		e.elem = l.inactive.PushFront(e)
	}
	return cost
}

// OldestInactive returns up to n frames from the inactive tail without
// the referenced-check (used by policies that trust their own signal).
func (l *Lists) OldestInactive(n int) []*memsim.Frame {
	out := make([]*memsim.Frame, 0, n)
	for e := l.inactive.Back(); e != nil && len(out) < n; e = e.Prev() {
		out = append(out, e.Value.(*entry).frame)
	}
	return out
}

// HottestActive returns up to n frames from the active head whose last
// access is at or after the cutoff — promotion candidates for tiering
// policies. Each inspection costs a scan; the returned cost must be
// charged by the caller.
func (l *Lists) HottestActive(n int, cutoff sim.Time) ([]*memsim.Frame, sim.Duration) {
	out := make([]*memsim.Frame, 0, n)
	var cost sim.Duration
	for e := l.active.Front(); e != nil && len(out) < n; e = e.Next() {
		l.ScannedPages++
		cost += ScanCostPerPage
		f := e.Value.(*entry).frame
		if f.LastAccess >= cutoff {
			out = append(out, f)
		} else {
			// The active list is recency-ordered from the front; once
			// entries fall below the cutoff, the rest will too.
			break
		}
	}
	return out, cost
}
