// Package fault is the simulator's deterministic fault-injection
// plane. Real tiered-memory stacks spend most of their complexity on
// the unhappy paths — allocation failure, transient I/O errors, busy
// migrations, dropped packets — yet a simulator that only models the
// happy path cannot say anything about how a placement policy behaves
// under stress. This package gives every subsystem a named fault point
// it consults before committing work; a Plane decides, deterministically,
// whether that consult fails and with which errno.
//
// Determinism: each fault point draws from its own RNG stream, forked
// from the plane seed and the point name. Adding or removing a rule for
// one point therefore never perturbs another point's fault sequence,
// and no draw ever touches the workload's RNG — a run with a fault
// plane at probability zero is bit-identical to a run with no plane at
// all. Identical seed + identical rules ⇒ identical fault trace.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"kloc/internal/sim"
)

// Errno is the simulator's errno-style typed error. Subsystems return
// these (possibly wrapped) instead of panicking, so callers can pattern
// match on the failure class the way kernel code does.
type Errno uint8

// The errno values the simulated kernel surfaces.
const (
	// ENOMEM: allocation failed (node full or injected exhaustion).
	ENOMEM Errno = iota + 1
	// EIO: the storage device failed the command.
	EIO
	// EAGAIN: transient condition — retry later (dropped ingress
	// packet, momentary allocation failure).
	EAGAIN
	// EBUSY: the resource is busy; the operation should be retried
	// (a page whose migration lost the race).
	EBUSY
	// EINVAL: invalid argument (e.g. a slab object size out of range).
	EINVAL
	// ENOENT: no such entry (a path lookup missed, an inode number is
	// not allocated).
	ENOENT
	// EBADF: operation on a closed or invalid descriptor (socket or
	// file already torn down).
	EBADF
	// ETIMEDOUT: the operation's deadline expired before it completed
	// (a cluster request whose backend did not answer in time).
	ETIMEDOUT
)

func (e Errno) Error() string {
	switch e {
	case ENOMEM:
		return "ENOMEM: out of memory"
	case EIO:
		return "EIO: I/O error"
	case EAGAIN:
		return "EAGAIN: resource temporarily unavailable"
	case EBUSY:
		return "EBUSY: device or resource busy"
	case EINVAL:
		return "EINVAL: invalid argument"
	case ENOENT:
		return "ENOENT: no such file or directory"
	case EBADF:
		return "EBADF: bad file descriptor"
	case ETIMEDOUT:
		return "ETIMEDOUT: operation timed out"
	default:
		return fmt.Sprintf("errno(%d)", uint8(e))
	}
}

// String returns the short errno name ("EIO"), used in fault traces.
func (e Errno) String() string {
	s := e.Error()
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i]
	}
	return s
}

// Errnos lists every errno value in declaration order.
func Errnos() []Errno {
	return []Errno{ENOMEM, EIO, EAGAIN, EBUSY, EINVAL, ENOENT, EBADF, ETIMEDOUT}
}

// ErrnoByName resolves a short errno name ("EIO") back to its value —
// the inverse of String, used when deserializing fault schedules.
func ErrnoByName(name string) (Errno, bool) {
	for _, e := range Errnos() {
		if e.String() == name {
			return e, true
		}
	}
	return 0, false
}

// MarshalJSON serializes the errno as its short name so schedule and
// replay artifacts stay human-readable ("EIO", not 2).
func (e Errno) MarshalJSON() ([]byte, error) {
	return json.Marshal(e.String())
}

// UnmarshalJSON accepts the short name ("EIO") or a raw numeric value.
func (e *Errno) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, ok := ErrnoByName(s)
		if !ok {
			return fmt.Errorf("fault: unknown errno %q", s)
		}
		*e = v
		return nil
	}
	var n uint8
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("fault: errno must be a name or number: %s", data)
	}
	*e = Errno(n)
	return nil
}

// AsErrno extracts an Errno from err, unwrapping as needed.
func AsErrno(err error) (Errno, bool) {
	var e Errno
	if errors.As(err, &e) {
		return e, true
	}
	return 0, false
}

// IsErrno reports whether err carries an Errno anywhere in its chain —
// i.e. whether the failure is a modeled kernel error (recoverable,
// degradable) rather than a harness or programming error.
func IsErrno(err error) bool {
	_, ok := AsErrno(err)
	return ok
}

// Point names one fault-injection site. Subsystems consult their point
// via Plane.Check before committing the guarded operation.
type Point string

// The fault points the simulated kernel consults.
const (
	// BlockIO fails a storage-device command (transient EIO; the blk_mq
	// layer retries with backoff).
	BlockIO Point = "blockdev.io"
	// AllocSlab fails a slab-class page allocation (slab, KLOC-arena,
	// and metadata frames).
	AllocSlab Point = "alloc.slab"
	// AllocPage fails an app/page-cache page allocation.
	AllocPage Point = "alloc.page"
	// Migrate fails one page migration (the frame stays put and is
	// retried on a later tick).
	Migrate Point = "memsim.migrate"
	// RxDrop drops one ingress packet segment in the driver.
	RxDrop Point = "netsim.rxdrop"
	// Reclaim fails one reclaim round (direct or kswapd): the shrinkers
	// are not scanned and the round makes no progress.
	Reclaim Point = "pressure.reclaim"
	// MachineCrash fails one whole simulated machine in a cluster: the
	// machine drops its queue and in-flight work, loses its caches, and
	// restarts cold after the configured downtime. Consulted by the
	// cluster plane at service starts and health probes, so a scheduled
	// crash fires within one probe period even on an idle machine.
	MachineCrash Point = "cluster.crash"
	// MachineDegrade degrades one machine's fast tier for a window: the
	// machine stays up but serves every request at slow-tier speed.
	MachineDegrade Point = "cluster.degrade"
)

// Points lists every fault point in stable order.
func Points() []Point {
	return []Point{BlockIO, AllocSlab, AllocPage, Migrate, RxDrop, Reclaim,
		MachineCrash, MachineDegrade}
}

// DefaultErrno is the canonical errno each point injects when its rule
// does not name one.
func DefaultErrno(pt Point) Errno {
	switch pt {
	case BlockIO:
		return EIO
	case AllocSlab, AllocPage:
		return ENOMEM
	case Migrate:
		return EBUSY
	case RxDrop:
		return EAGAIN
	case Reclaim:
		return ENOMEM
	case MachineCrash:
		return EIO
	case MachineDegrade:
		return EAGAIN
	default:
		return EIO
	}
}

// Rule configures injection at one point. Probability and schedule
// compose: scheduled times fire exactly once each (on the first consult
// at or after the time), probability applies to every other consult.
type Rule struct {
	// Prob is the per-consult injection probability in [0, 1].
	Prob float64
	// Times schedules exact virtual-time injections; must be ascending.
	// The first consult at or after each time injects once, with the
	// rule's Err.
	Times []sim.Time
	// Timed schedules exact virtual-time injections that carry their own
	// errno (zero falls back to the rule's Err, then the point default).
	// Chaos schedules compose into these; Times and Timed merge into one
	// time-ordered sequence when the plane is armed.
	Timed []TimedInjection
	// Err is the injected errno; zero means the point's DefaultErrno.
	Err Errno
}

// TimedInjection is one exact-virtual-time scheduled injection with an
// optional per-injection errno.
type TimedInjection struct {
	// At is the virtual time; the first consult at or after it injects.
	At sim.Time
	// Err is the injected errno (zero = the rule's Err / point default).
	Err Errno
}

// Config seeds a Plane. The zero value (no rules) injects nothing.
type Config struct {
	// Seed drives every point's private RNG stream.
	Seed uint64
	// Rules maps points to their injection rules.
	Rules map[Point]Rule
}

// Uniform returns a Config injecting each point's canonical errno with
// the same per-consult probability at every fault point — the shape the
// fault-rate sweep experiment uses.
func Uniform(seed uint64, prob float64) Config {
	c := Config{Seed: seed, Rules: make(map[Point]Rule, len(Points()))}
	for _, pt := range Points() {
		c.Rules[pt] = Rule{Prob: prob}
	}
	return c
}

// Record is one injected fault in the trace.
type Record struct {
	// Seq is the injection's global sequence number (0-based).
	Seq uint64
	// At is the virtual time of the consult that faulted.
	At sim.Time
	// Point is the site that faulted.
	Point Point
	// Err is the injected errno.
	Err Errno
}

func (r Record) String() string {
	return fmt.Sprintf("%d %d %s %s", r.Seq, int64(r.At), r.Point, r.Err)
}

// pointState is one point's live injection state. sched is the
// normalized, time-ordered merge of the rule's Times and Timed entries
// with every errno resolved.
type pointState struct {
	rule  Rule
	sched []TimedInjection
	// rng drives this point's probabilistic draws; consulted only by
	// the lane running the plane's kernel instance.
	//klocs:owner=lane
	rng       *sim.RNG
	nextSched int
	consults  uint64
	injected  uint64
}

// Plane is an armed fault-injection plane. A nil *Plane is valid and
// injects nothing, so subsystems hold a possibly-nil Plane and call
// Check unconditionally.
type Plane struct {
	points map[Point]*pointState
	trace  []Record
	seq    uint64
}

// NewPlane arms a plane from a config. Points without rules never
// fault and never draw randomness.
func NewPlane(cfg Config) *Plane {
	p := &Plane{points: make(map[Point]*pointState, len(cfg.Rules))}
	//klocs:unordered arming writes one independent entry per point; RNG streams are seeded by point name
	for pt, rule := range cfg.Rules {
		if rule.Err == 0 {
			rule.Err = DefaultErrno(pt)
		}
		sched := make([]TimedInjection, 0, len(rule.Times)+len(rule.Timed))
		for _, at := range rule.Times {
			sched = append(sched, TimedInjection{At: at, Err: rule.Err})
		}
		for _, ti := range rule.Timed {
			if ti.Err == 0 {
				ti.Err = rule.Err
			}
			sched = append(sched, ti)
		}
		sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
		p.points[pt] = &pointState{
			rule:  rule,
			sched: sched,
			// A private stream per point: seed mixed with the point name
			// so streams are independent and stable.
			rng: sim.NewRNG(cfg.Seed ^ fnv64(string(pt))),
		}
	}
	return p
}

// fnv64 is the FNV-1a hash, used to derive per-point RNG seeds.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Check consults a fault point at the given virtual time. It returns 0
// (no fault) or the errno to inject. Nil-safe: a nil plane never
// faults. Points with probability-0 rules and no schedule return 0
// without drawing randomness.
func (p *Plane) Check(pt Point, now sim.Time) Errno {
	if p == nil {
		return 0
	}
	st := p.points[pt]
	if st == nil {
		return 0
	}
	st.consults++
	// Scheduled injections take precedence and fire exactly once each.
	if st.nextSched < len(st.sched) && now >= st.sched[st.nextSched].At {
		errno := st.sched[st.nextSched].Err
		st.nextSched++
		return p.inject(pt, st, now, errno)
	}
	if st.rule.Prob > 0 && st.rng.Float64() < st.rule.Prob {
		return p.inject(pt, st, now, st.rule.Err)
	}
	return 0
}

func (p *Plane) inject(pt Point, st *pointState, now sim.Time, errno Errno) Errno {
	st.injected++
	p.trace = append(p.trace, Record{Seq: p.seq, At: now, Point: pt, Err: errno})
	p.seq++
	return errno
}

// Injected reports the total number of injected faults.
func (p *Plane) Injected() uint64 {
	if p == nil {
		return 0
	}
	return p.seq
}

// InjectedAt reports the number of faults injected at one point.
func (p *Plane) InjectedAt(pt Point) uint64 {
	if p == nil || p.points[pt] == nil {
		return 0
	}
	return p.points[pt].injected
}

// Consults reports how many times a point was consulted.
func (p *Plane) Consults(pt Point) uint64 {
	if p == nil || p.points[pt] == nil {
		return 0
	}
	return p.points[pt].consults
}

// Trace returns the injected-fault records in injection order.
func (p *Plane) Trace() []Record {
	if p == nil {
		return nil
	}
	return p.trace
}

// TraceString serializes the fault trace, one record per line, in a
// stable format ("seq time point errno"). Two runs with the same seed
// and rules produce byte-identical trace strings.
func (p *Plane) TraceString() string {
	if p == nil || len(p.trace) == 0 {
		return ""
	}
	var b strings.Builder
	for _, r := range p.trace {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
