package fault

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"
)

// declaredPoints parses fault.go and returns every package-level
// constant of type Point, name -> string value. The cluster points
// were once wired into Points()/DefaultErrno by hand; this walk makes
// forgetting a new one impossible.
func declaredPoints(t *testing.T) map[string]Point {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fault.go", nil, 0)
	if err != nil {
		t.Fatalf("parse fault.go: %v", err)
	}
	pts := make(map[string]Point)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			id, ok := vs.Type.(*ast.Ident)
			if !ok || id.Name != "Point" {
				continue
			}
			for i, name := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Fatalf("Point const %s is not a string literal", name.Name)
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("unquote %s: %v", lit.Value, err)
				}
				pts[name.Name] = Point(val)
			}
		}
	}
	if len(pts) == 0 {
		t.Fatal("no Point constants found in fault.go")
	}
	return pts
}

// defaultErrnoCases parses the DefaultErrno switch and returns the set
// of Point constant names it matches explicitly (the default case does
// not count as coverage).
func defaultErrnoCases(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fault.go", nil, 0)
	if err != nil {
		t.Fatalf("parse fault.go: %v", err)
	}
	cases := make(map[string]bool)
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "DefaultErrno" {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok {
				return true
			}
			for _, expr := range cc.List {
				if id, ok := expr.(*ast.Ident); ok {
					cases[id.Name] = true
				}
			}
			return true
		})
	}
	if len(cases) == 0 {
		t.Fatal("no explicit cases found in DefaultErrno")
	}
	return cases
}

// TestCatalogComplete: every declared Point constant must appear in
// Points() and be matched by an explicit DefaultErrno case. A new
// point added without either would previously be forgotten silently —
// invisible to Uniform sweeps and injecting a fallback errno.
func TestCatalogComplete(t *testing.T) {
	declared := declaredPoints(t)
	listed := make(map[Point]bool, len(Points()))
	for _, pt := range Points() {
		listed[pt] = true
	}
	if len(listed) != len(Points()) {
		t.Fatalf("Points() holds duplicates: %v", Points())
	}
	for name, pt := range declared {
		if !listed[pt] {
			t.Errorf("point constant %s (%q) missing from Points()", name, pt)
		}
	}
	if len(declared) != len(listed) {
		t.Errorf("Points() lists %d points but fault.go declares %d", len(listed), len(declared))
	}
	cases := defaultErrnoCases(t)
	for name, pt := range declared {
		if !cases[name] {
			t.Errorf("point constant %s (%q) has no explicit DefaultErrno case (would inject the fallback)", name, pt)
		}
	}
}
