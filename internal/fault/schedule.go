package fault

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"kloc/internal/sim"
)

// Schedule is a serializable fault schedule: a list of exact-time
// injections sampled by the chaos generator (internal/chaos) and
// replayed from CHAOS_repro_*.json artifacts. Injection times are
// offsets from a base the executing harness supplies (the measured
// window's start), so the same schedule means the same thing across
// runs whose setup phases take different amounts of virtual time.
//
// A Schedule is pure data — no RNG state, no probabilities — which is
// what makes delta-debugging minimization sound: removing an injection
// from the list never perturbs when the remaining ones fire.
type Schedule struct {
	Injections []Injection `json:"injections"`
}

// Injection is one scheduled fault in a chaos schedule.
type Injection struct {
	// Point is the fault point to fire.
	Point Point `json:"point"`
	// Machine targets one fleet machine for cluster runs (kernel-level
	// points inject into that machine's kernel; cluster.crash/degrade
	// hit that machine). Single-machine harnesses ignore it.
	Machine int `json:"machine"`
	// At is the injection time as a virtual-time offset (nanoseconds)
	// from the schedule base.
	At sim.Duration `json:"at_ns"`
	// Err is the injected errno; zero means the point's DefaultErrno.
	Err Errno `json:"errno,omitempty"`
	// Burst is how many consecutive consults of the point fail starting
	// at At (0 and 1 both mean a single injection).
	Burst int `json:"burst,omitempty"`
}

// String renders one injection compactly ("alloc.page@2.5ms m1 ENOMEM x3").
func (in Injection) String() string {
	s := fmt.Sprintf("%s@%s m%d", in.Point, in.At, in.Machine)
	if in.Err != 0 {
		s += " " + in.Err.String()
	}
	if in.Burst > 1 {
		s += fmt.Sprintf(" x%d", in.Burst)
	}
	return s
}

// burst returns the effective burst length (>= 1).
func (in Injection) burst() int {
	if in.Burst < 1 {
		return 1
	}
	return in.Burst
}

// Normalize returns the schedule in canonical order — sorted by time,
// then point, machine, errno, burst — with burst lengths clamped to at
// least 1. Two schedules with the same injections serialize and hash
// identically after normalization.
func (s Schedule) Normalize() Schedule {
	out := Schedule{Injections: make([]Injection, len(s.Injections))}
	copy(out.Injections, s.Injections)
	for i := range out.Injections {
		out.Injections[i].Burst = out.Injections[i].burst()
	}
	sort.SliceStable(out.Injections, func(i, j int) bool {
		a, b := out.Injections[i], out.Injections[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Err != b.Err {
			return a.Err < b.Err
		}
		return a.Burst < b.Burst
	})
	return out
}

// String renders the schedule one injection per line, in canonical
// order (artifact and log form).
func (s Schedule) String() string {
	n := s.Normalize()
	if len(n.Injections) == 0 {
		return "(empty schedule)"
	}
	parts := make([]string, len(n.Injections))
	for i, in := range n.Injections {
		parts[i] = in.String()
	}
	return strings.Join(parts, "\n")
}

// Hash is a stable FNV-1a fingerprint of the canonical schedule, used
// to name replay artifacts (CHAOS_repro_<hash>.json).
func (s Schedule) Hash() uint64 {
	return fnv64(s.String())
}

// MarshalJSON serializes the canonical form, so artifacts round-trip
// byte-identically regardless of generation order.
func (s Schedule) MarshalJSON() ([]byte, error) {
	n := s.Normalize()
	type plain Schedule // avoid recursing into this method
	return json.Marshal(plain(n))
}

// Rules compiles the schedule into per-point plane rules for one
// machine, with injection offsets rebased onto the given absolute
// start time. Bursts expand into equal-time entries: the plane fires
// one per consult, so a burst of N fails N consecutive consults.
// Injections for other machines are skipped; machine < 0 compiles the
// whole schedule (the single-machine harness view).
func (s Schedule) Rules(machine int, base sim.Time) map[Point]Rule {
	rules := make(map[Point]Rule)
	for _, in := range s.Normalize().Injections {
		if machine >= 0 && in.Machine != machine {
			continue
		}
		r := rules[in.Point]
		at := base.Add(in.At)
		errno := in.Err
		if errno == 0 {
			errno = DefaultErrno(in.Point)
		}
		for i := 0; i < in.burst(); i++ {
			r.Timed = append(r.Timed, TimedInjection{At: at, Err: errno})
		}
		rules[in.Point] = r
	}
	if len(rules) == 0 {
		return nil
	}
	return rules
}

// Config compiles the schedule into a full plane config for one
// machine (see Rules). The seed only matters if rules with
// probabilities are later merged in; pure schedules never draw.
func (s Schedule) Config(seed uint64, machine int, base sim.Time) Config {
	return Config{Seed: seed, Rules: s.Rules(machine, base)}
}

// Without returns a copy of the schedule with the injections at the
// given canonical indices removed — the delta-debugging minimizer's
// reduction step.
func (s Schedule) Without(drop map[int]bool) Schedule {
	n := s.Normalize()
	out := Schedule{}
	for i, in := range n.Injections {
		if !drop[i] {
			out.Injections = append(out.Injections, in)
		}
	}
	return out
}

// ParseSchedule deserializes a schedule from its JSON form.
func ParseSchedule(data []byte) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return Schedule{}, fmt.Errorf("fault: parse schedule: %w", err)
	}
	for _, in := range s.Injections {
		if !knownPoint(in.Point) {
			return Schedule{}, fmt.Errorf("fault: schedule names unknown point %q: %w", in.Point, EINVAL)
		}
		if in.At < 0 {
			return Schedule{}, fmt.Errorf("fault: schedule injection %s before base: %w", in, EINVAL)
		}
	}
	return s.Normalize(), nil
}

// knownPoint reports whether pt is in the catalog.
func knownPoint(pt Point) bool {
	for _, p := range Points() {
		if p == pt {
			return true
		}
	}
	return false
}
