package fault

import (
	"errors"
	"fmt"
	"testing"

	"kloc/internal/sim"
)

func TestErrnoStrings(t *testing.T) {
	cases := []struct {
		e    Errno
		name string
	}{
		{ENOMEM, "ENOMEM"}, {EIO, "EIO"}, {EAGAIN, "EAGAIN"},
		{EBUSY, "EBUSY"}, {EINVAL, "EINVAL"},
	}
	for _, c := range cases {
		if c.e.String() != c.name {
			t.Errorf("String() = %q, want %q", c.e.String(), c.name)
		}
	}
}

func TestAsErrnoUnwraps(t *testing.T) {
	wrapped := fmt.Errorf("submit block 7: %w", EIO)
	e, ok := AsErrno(wrapped)
	if !ok || e != EIO {
		t.Fatalf("AsErrno(wrapped EIO) = %v, %v", e, ok)
	}
	if !errors.Is(wrapped, EIO) {
		t.Fatal("errors.Is should match the wrapped errno")
	}
	if IsErrno(errors.New("plain")) {
		t.Fatal("plain error must not be an errno")
	}
	if IsErrno(nil) {
		t.Fatal("nil must not be an errno")
	}
}

func TestNilPlaneNeverFaults(t *testing.T) {
	var p *Plane
	for i := 0; i < 100; i++ {
		if e := p.Check(BlockIO, sim.Time(i)); e != 0 {
			t.Fatalf("nil plane injected %v", e)
		}
	}
	if p.Injected() != 0 || p.Trace() != nil || p.TraceString() != "" {
		t.Fatal("nil plane must report zero state")
	}
}

func TestUnruledPointNeverFaults(t *testing.T) {
	p := NewPlane(Config{Seed: 1, Rules: map[Point]Rule{BlockIO: {Prob: 1}}})
	for i := 0; i < 100; i++ {
		if e := p.Check(AllocSlab, sim.Time(i)); e != 0 {
			t.Fatalf("unruled point injected %v", e)
		}
	}
	if p.Consults(AllocSlab) != 0 {
		t.Fatal("unruled point should not track consults")
	}
}

func TestProbabilityOneAlwaysFaults(t *testing.T) {
	p := NewPlane(Uniform(42, 1))
	for i := 0; i < 10; i++ {
		if e := p.Check(BlockIO, sim.Time(i)); e != EIO {
			t.Fatalf("consult %d: got %v, want EIO", i, e)
		}
	}
	if got := p.InjectedAt(BlockIO); got != 10 {
		t.Fatalf("InjectedAt = %d, want 10", got)
	}
	// Canonical errnos per point.
	if e := p.Check(AllocSlab, 0); e != ENOMEM {
		t.Fatalf("alloc.slab injects %v, want ENOMEM", e)
	}
	if e := p.Check(Migrate, 0); e != EBUSY {
		t.Fatalf("memsim.migrate injects %v, want EBUSY", e)
	}
	if e := p.Check(RxDrop, 0); e != EAGAIN {
		t.Fatalf("netsim.rxdrop injects %v, want EAGAIN", e)
	}
}

func TestZeroProbabilityDrawsNothing(t *testing.T) {
	// A probability-0 rule must not consume RNG state, so arming the
	// plane at rate 0 is indistinguishable from no plane at all.
	p := NewPlane(Uniform(7, 0))
	for i := 0; i < 1000; i++ {
		if e := p.Check(AllocPage, sim.Time(i)); e != 0 {
			t.Fatalf("rate-0 plane injected %v", e)
		}
	}
	if p.Injected() != 0 {
		t.Fatal("rate-0 plane injected faults")
	}
	if p.Consults(AllocPage) != 1000 {
		t.Fatalf("consults = %d, want 1000", p.Consults(AllocPage))
	}
}

func TestScheduledInjection(t *testing.T) {
	p := NewPlane(Config{Seed: 3, Rules: map[Point]Rule{
		BlockIO: {Times: []sim.Time{100, 250}},
	}})
	type step struct {
		at   sim.Time
		want Errno
	}
	steps := []step{
		{10, 0},    // before first schedule
		{99, 0},    // still before
		{120, EIO}, // first consult at/after t=100
		{130, 0},   // fired once, not again
		{250, EIO}, // exactly at second schedule
		{300, 0},   // exhausted
	}
	for _, s := range steps {
		if got := p.Check(BlockIO, s.at); got != s.want {
			t.Fatalf("Check at %d = %v, want %v", s.at, got, s.want)
		}
	}
	if p.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", p.Injected())
	}
}

func TestRuleErrOverride(t *testing.T) {
	p := NewPlane(Config{Seed: 9, Rules: map[Point]Rule{
		BlockIO: {Prob: 1, Err: EAGAIN},
	}})
	if e := p.Check(BlockIO, 0); e != EAGAIN {
		t.Fatalf("got %v, want overridden EAGAIN", e)
	}
}

// TestDeterministicTrace: same seed + same rules ⇒ byte-identical
// traces; a different seed diverges.
func TestDeterministicTrace(t *testing.T) {
	run := func(seed uint64) string {
		p := NewPlane(Uniform(seed, 0.05))
		for i := 0; i < 2000; i++ {
			for _, pt := range Points() {
				p.Check(pt, sim.Time(i))
			}
		}
		return p.TraceString()
	}
	a, b := run(1234), run(1234)
	if a == "" {
		t.Fatal("expected some injections at prob 0.05 over 10000 consults")
	}
	if a != b {
		t.Fatal("same seed produced different fault traces")
	}
	if c := run(5678); c == a {
		t.Fatal("different seed produced identical fault trace")
	}
}

// TestPointStreamIndependence: adding a rule for one point must not
// change another point's injection sequence.
func TestPointStreamIndependence(t *testing.T) {
	trace := func(cfg Config) []Record {
		p := NewPlane(cfg)
		for i := 0; i < 5000; i++ {
			p.Check(BlockIO, sim.Time(i))
			p.Check(AllocPage, sim.Time(i))
		}
		var only []Record
		for _, r := range p.Trace() {
			if r.Point == BlockIO {
				only = append(only, Record{At: r.At, Point: r.Point, Err: r.Err})
			}
		}
		return only
	}
	base := trace(Config{Seed: 77, Rules: map[Point]Rule{BlockIO: {Prob: 0.02}}})
	with := trace(Config{Seed: 77, Rules: map[Point]Rule{
		BlockIO:   {Prob: 0.02},
		AllocPage: {Prob: 0.5},
	}})
	if len(base) == 0 {
		t.Fatal("expected BlockIO injections")
	}
	if len(base) != len(with) {
		t.Fatalf("BlockIO trace length changed: %d vs %d", len(base), len(with))
	}
	for i := range base {
		if base[i] != with[i] {
			t.Fatalf("BlockIO record %d changed: %+v vs %+v", i, base[i], with[i])
		}
	}
}

func TestProbabilityRoughlyCalibrated(t *testing.T) {
	p := NewPlane(Uniform(11, 0.1))
	const n = 20000
	for i := 0; i < n; i++ {
		p.Check(BlockIO, sim.Time(i))
	}
	got := float64(p.InjectedAt(BlockIO)) / n
	if got < 0.08 || got > 0.12 {
		t.Fatalf("injection rate %.4f too far from 0.1", got)
	}
}
