package fault

import (
	"encoding/json"
	"testing"

	"kloc/internal/sim"
)

func TestScheduleNormalizeAndHash(t *testing.T) {
	a := Schedule{Injections: []Injection{
		{Point: RxDrop, At: 5 * sim.Millisecond, Burst: 2},
		{Point: BlockIO, At: sim.Millisecond, Err: EIO},
	}}
	b := Schedule{Injections: []Injection{
		{Point: BlockIO, At: sim.Millisecond, Err: EIO, Burst: 1},
		{Point: RxDrop, At: 5 * sim.Millisecond, Burst: 2},
	}}
	if a.Hash() != b.Hash() {
		t.Fatalf("order-insensitive hash differs:\n%s\nvs\n%s", a, b)
	}
	if a.String() != b.String() {
		t.Fatalf("canonical strings differ:\n%s\nvs\n%s", a, b)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("canonical JSON differs:\n%s\nvs\n%s", ja, jb)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Schedule{Injections: []Injection{
		{Point: AllocPage, Machine: 1, At: 2 * sim.Millisecond, Err: ENOMEM, Burst: 3},
		{Point: MachineCrash, Machine: 0, At: 4 * sim.Millisecond},
	}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != s.String() {
		t.Fatalf("round trip changed the schedule:\n%s\nvs\n%s", got, s)
	}
	// Errnos serialize as names, not numbers.
	if want := `"errno": "ENOMEM"`; !jsonContains(data, want) {
		t.Fatalf("errno not serialized by name: %s", data)
	}
	if _, err := ParseSchedule([]byte(`{"injections":[{"point":"no.such.point","at_ns":0}]}`)); err == nil {
		t.Fatal("unknown point accepted")
	}
	if _, err := ParseSchedule([]byte(`{"injections":[{"point":"blockdev.io","at_ns":-5}]}`)); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func jsonContains(data []byte, want string) bool {
	var buf []byte
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return false
	}
	buf, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return false
	}
	return contains(string(buf), want)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestScheduleBurstFiresConsecutively: a burst of N fails exactly the
// N consecutive consults starting at the first consult at or after the
// injection time, each with the injection's errno.
func TestScheduleBurstFiresConsecutively(t *testing.T) {
	s := Schedule{Injections: []Injection{
		{Point: BlockIO, At: 10 * sim.Microsecond, Err: EAGAIN, Burst: 3},
	}}
	p := NewPlane(s.Config(1, -1, 0))
	if got := p.Check(BlockIO, sim.Time(5*sim.Microsecond)); got != 0 {
		t.Fatalf("injected %v before the scheduled time", got)
	}
	for i := 0; i < 3; i++ {
		if got := p.Check(BlockIO, sim.Time(12*sim.Microsecond)); got != EAGAIN {
			t.Fatalf("burst consult %d returned %v, want EAGAIN", i, got)
		}
	}
	if got := p.Check(BlockIO, sim.Time(13*sim.Microsecond)); got != 0 {
		t.Fatalf("burst overran: consult 4 returned %v", got)
	}
	if p.Injected() != 3 {
		t.Fatalf("injected %d faults, want 3", p.Injected())
	}
}

// TestScheduleRulesPerMachine: machine filtering and rebasing.
func TestScheduleRulesPerMachine(t *testing.T) {
	s := Schedule{Injections: []Injection{
		{Point: AllocSlab, Machine: 0, At: sim.Millisecond},
		{Point: AllocSlab, Machine: 1, At: 2 * sim.Millisecond, Err: EAGAIN},
		{Point: MachineCrash, Machine: 1, At: 3 * sim.Millisecond},
	}}
	base := sim.Time(10 * sim.Millisecond)
	r0 := s.Rules(0, base)
	if len(r0) != 1 || len(r0[AllocSlab].Timed) != 1 {
		t.Fatalf("machine 0 rules: %+v", r0)
	}
	if at := r0[AllocSlab].Timed[0].At; at != base.Add(sim.Millisecond) {
		t.Fatalf("machine 0 injection at %v, want rebased %v", at, base.Add(sim.Millisecond))
	}
	r1 := s.Rules(1, base)
	if len(r1) != 2 {
		t.Fatalf("machine 1 rules: %+v", r1)
	}
	if errno := r1[AllocSlab].Timed[0].Err; errno != EAGAIN {
		t.Fatalf("machine 1 alloc errno %v, want EAGAIN", errno)
	}
	if errno := r1[MachineCrash].Timed[0].Err; errno != DefaultErrno(MachineCrash) {
		t.Fatalf("crash errno %v, want point default", errno)
	}
	// machine -1 compiles everything.
	all := s.Rules(-1, 0)
	if len(all[AllocSlab].Timed) != 2 {
		t.Fatalf("unfiltered rules dropped injections: %+v", all)
	}
}

// TestTimedAndTimesCompose: legacy Times entries and Timed entries
// merge into one time-ordered sequence on the same point.
func TestTimedAndTimesCompose(t *testing.T) {
	p := NewPlane(Config{Seed: 1, Rules: map[Point]Rule{
		BlockIO: {
			Times: []sim.Time{sim.Time(20)},
			Timed: []TimedInjection{{At: sim.Time(10), Err: EAGAIN}},
			Err:   EIO,
		},
	}})
	if got := p.Check(BlockIO, sim.Time(15)); got != EAGAIN {
		t.Fatalf("first injection %v, want EAGAIN (the earlier Timed entry)", got)
	}
	if got := p.Check(BlockIO, sim.Time(25)); got != EIO {
		t.Fatalf("second injection %v, want EIO (the Times entry)", got)
	}
	if got := p.Check(BlockIO, sim.Time(30)); got != 0 {
		t.Fatalf("third consult injected %v", got)
	}
}
