package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The parallel-readiness fixtures: each carries deliberate
// violations plus the clean shapes the analyzer must not flag.
func TestOwnershipFixture(t *testing.T)  { checkModuleFixture(t, Ownership, "ownership") }
func TestLockCheckFixture(t *testing.T)  { checkModuleFixture(t, LockCheck, "lockcheck") }
func TestRNGFlowFixture(t *testing.T)    { checkModuleFixture(t, RNGFlow, "rngflow") }
func TestPhaseCheckFixture(t *testing.T) { checkModuleFixture(t, PhaseCheck, "phasecheck") }

// metaModuleFixture asserts the want harness fails in both directions
// for a module analyzer (the wantmeta pattern): the fixture carries
// one real diagnostic under a non-matching pattern and one phantom
// expectation, so exactly three problems must surface — the
// unexpected diagnostic and both unmatched wants.
func metaModuleFixture(t *testing.T, a *ModuleAnalyzer, name string) {
	t.Helper()
	problems, err := CheckModuleExpectations([]*Package{loadFixturePkg(t, name)}, a)
	if err != nil {
		t.Fatalf("CheckModuleExpectations: %v", err)
	}
	if len(problems) != 3 {
		t.Fatalf("got %d problems, want 3:\n%s", len(problems), strings.Join(problems, "\n"))
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		"unexpected diagnostic",
		`"this pattern matches nothing"`,
		"phantom",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("problems lack %s:\n%s", want, joined)
		}
	}
}

func TestOwnershipWantHarness(t *testing.T)  { metaModuleFixture(t, Ownership, "ownershipmeta") }
func TestLockCheckWantHarness(t *testing.T)  { metaModuleFixture(t, LockCheck, "lockcheckmeta") }
func TestRNGFlowWantHarness(t *testing.T)    { metaModuleFixture(t, RNGFlow, "rngflowmeta") }
func TestPhaseCheckWantHarness(t *testing.T) { metaModuleFixture(t, PhaseCheck, "phasecheckmeta") }

// TestOwnershipReportStable pins the determinism contract: two
// independently built Module views of the same source must render
// byte-identical readiness reports (CI double-runs the generator and
// cmps, so any map-order leak fails loudly here first).
func TestOwnershipReportStable(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs := loadModulePackages(t)
	first := OwnershipReport(NewModule(pkgs))
	second := OwnershipReport(NewModule(pkgs))
	if !bytes.Equal(first, second) {
		t.Fatalf("OwnershipReport is not deterministic across module builds:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if !bytes.Contains(first, []byte("## Summary")) {
		t.Fatalf("report lacks the summary section:\n%s", first)
	}
}

// TestReadinessReportCurrent fails when the checked-in
// PARALLEL_READINESS.md drifts from the code: the report is generated,
// reviewed, and committed, and `make readiness` refreshes it.
func TestReadinessReportCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs := loadModulePackages(t)
	got := OwnershipReport(NewModule(pkgs))
	path := filepath.Join(testLoader(t).ModuleDir, "PARALLEL_READINESS.md")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v (generate it with `make readiness`)", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("PARALLEL_READINESS.md is stale: regenerate it with `make readiness`")
	}
}
