// Package fixture carries deliberate errnoflow violations for the
// interprocedural analyzer tests; the go tool never builds testdata
// trees. The fixture/ import path opts the package into the errno
// boundary scope.
package fixture

import (
	"errors"
	"fmt"
	"strconv"

	"kloc/internal/fault"
)

// Naked constructs the error at the boundary with no errno cause.
func Naked() error {
	return fmt.Errorf("boom") // want "fmt.Errorf without %w severs the errno chain"
}

// Anon launders through errors.New.
func Anon() error {
	return errors.New("anon") // want "errors.New creates an anonymous error"
}

// ViaVar flows the naked error through a local before returning it.
func ViaVar() error {
	err := fmt.Errorf("no cause")
	return err // want "fmt.Errorf without %w severs the errno chain"
}

// TwoFaults produces two diagnostics on one return line: the harness
// matches one `// want` pattern per diagnostic.
func TwoFaults() (error, error) {
	return errors.New("left"), fmt.Errorf("right") // want "errors.New creates an anonymous error" "fmt.Errorf without %w severs the errno chain"
}

// helper is unexported but feeds the exported boundary below, so it
// is boundary-reaching and the report lands on its own return site.
func helper() error {
	return fmt.Errorf("inner failure") // want "fmt.Errorf without %w severs the errno chain"
}

// Outer forwards helper's dirt: suppressed here, reported in helper.
func Outer() error {
	return helper()
}

// External forwards an error from outside the module untouched.
func External() error {
	_, err := strconv.Atoi("nope")
	return err // want "error from external call Atoi not wrapped with a fault errno"
}

// Wrapped derives from the vocabulary through %w: no diagnostic.
func Wrapped() error {
	return fmt.Errorf("op failed: %w", fault.EINVAL)
}

// Joined derives from two errnos: no diagnostic.
func Joined() error {
	return errors.Join(fault.EINVAL, fault.ENOMEM)
}

// Passthrough returns a caller-supplied error: unknown provenance
// stays quiet. No diagnostic.
func Passthrough(err error) error {
	return err
}

// Sunk documents the deliberate anonymous error with the marker.
func Sunk() error {
	//klocs:ignore-errno fixture: decorative error, never fault-counted
	return errors.New("decorative")
}
