// Package fixture carries deliberate nodeterminism violations for the
// analyzer tests; the go tool never builds testdata trees.
package fixture

import (
	"math/rand" // want "ambient randomness breaks run reproducibility"
	"sort"
	"time"
)

var sink []string

func wallClock() int64 {
	t := time.Now()              // want "the simulator runs in virtual time"
	time.Sleep(time.Millisecond) // want "the simulator runs in virtual time"
	return t.UnixNano() + int64(rand.Int())
}

func escapingOrder(m map[string]int) {
	for k := range m { // want "range over map"
		sink = append(sink, k)
	}
}

// collectThenSort is the sanctioned idiom: the loop only collects, the
// very next statement sorts.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// filteredCollect is the sanctioned idiom with a pure filter wrapped
// around the append.
func filteredCollect(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// commutativeSum is order-insensitive: every iteration folds into the
// same accumulator.
func commutativeSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// keyedWrites are order-safe: each iteration writes a distinct element.
func keyedWrites(m map[string]int, out map[string]int) {
	for k, v := range m {
		out[k] = v * 2
	}
}

// measuredClock would be flagged, but the wallclock marker vouches for
// it: perf-measurement clock reads are the one sanctioned time.Now.
func measuredClock() int64 {
	//klocs:wallclock fixture: measurement clock, never simulation state
	return time.Now().UnixNano()
}

// sleepStaysForbidden: the wallclock marker only pardons time.Now;
// sleeps and timers have no measurement use.
func sleepStaysForbidden() {
	//klocs:wallclock fixture: must not suppress a sleep
	time.Sleep(time.Millisecond) // want "the simulator runs in virtual time"
}

// annotated would be flagged, but the marker vouches for it.
func annotated(m map[string]int) {
	//klocs:unordered fixture: order deliberately unspecified here
	for k := range m {
		sink = append(sink, k)
	}
}
