// Package fixture carries deliberate tracereach violations for the
// interprocedural analyzer tests; the go tool never builds testdata
// trees.
package fixture

import "kloc/internal/trace"

// The catalog under audit: constants of type trace.Name.
const (
	evAlive  trace.Name = "fixture.alive"
	evDead   trace.Name = "fixture.dead"   // want "has no reachable Tracer.Emit site"
	evBuried trace.Name = "fixture.buried" // want "has no reachable Tracer.Emit site"
	//klocs:ignore-tracereach fixture: reserved for the in-flight subsystem
	evReserved trace.Name = "fixture.reserved"
	// A serving-plane-style event that was cataloged but never wired to
	// the balancer: exactly the regression the cluster lb.* constants
	// would hit if an Emit call were dropped.
	evLBStale trace.Name = "fixture.lb.stale" // want "has no reachable Tracer.Emit site"
)

// Publish is exported, so its Emit site is reachable and keeps
// evAlive live.
func Publish(t *trace.Tracer) {
	t.Emit(evAlive, 0, 0, 0, "fixture", 0, 0)
}

// buried emits evBuried, but nothing reachable calls it: an Emit site
// in dead code does not keep its catalog entry alive.
func buried(t *trace.Tracer) {
	t.Emit(evBuried, 0, 0, 0, "fixture", 0, 0)
}
