// Package fixture carries deliberate tracenames violations for the
// analyzer tests; the go tool never builds testdata trees. It imports
// the real trace package so Emit resolves to the real method.
package fixture

import (
	"kloc/internal/sim"
	"kloc/internal/trace"
)

func emits(tr *trace.Tracer, now sim.Time) {
	tr.Emit(trace.AllocSlab, now, 1, 2, "inode", 0, 64)   // registered constant: ok
	tr.Emit("alloc.bogus", now, 1, 2, "inode", 0, 64)     // want "unregistered event name \"alloc.bogus\""
	tr.Emit("alloc.slab "+"x", now, 1, 2, "inode", 0, 64) // want "unregistered event name"
	name := trace.Name("alloc.slab")
	tr.Emit(name, now, 1, 2, "inode", 0, 64) // want "non-constant event name"
}
