// Package fixture carries deliberate RNG stream-discipline violations
// for the rngflow analyzer: an unannotated retained stream, a stream
// annotated with the forbidden shared owner, composite-literal
// construction that bypasses seeding, and flow violations (a stream
// handed to two owners, drawn after handoff, double-retained through
// interface dispatch) — plus the sanctioned shapes: fork-per-owner,
// reseeding, and a justified suppression. The go tool never builds
// testdata trees.
package fixture

import "kloc/internal/sim"

// Holder retains a stream without declaring who draws from it.
type Holder struct {
	r *sim.RNG // want "fixture.Holder.r retains a sim.RNG stream without an owner"
}

// Lane declares its owner inline, silent.
type Lane struct {
	r *sim.RNG //klocs:owner=lane forked per lane by the spawner
}

// Shared declares the one forbidden owner class.
type Shared struct {
	//klocs:owner=shared
	r *sim.RNG // want "fixture.Shared.r is annotated //klocs:owner=shared but RNG streams must never be shared"
}

// FromLiteral assembles a stream by hand, bypassing the seeding path.
func FromLiteral() *sim.RNG {
	return &sim.RNG{} // want "sim.RNG composite literal bypasses the seeding discipline"
}

// keep stores its argument: the canonical retaining callee.
func keep(h *Holder, r *sim.RNG) {
	h.r = r
}

// DoubleOwner hands one stream to two owners instead of forking.
func DoubleOwner(a, b *Holder) {
	r := sim.NewRNG(1)
	keep(a, r)
	keep(b, r) // want "RNG stream r is handed to a second owner"
}

// UseAfterGive draws from a stream another owner already took.
func UseAfterGive(h *Holder) uint64 {
	r := sim.NewRNG(2)
	h.r = r
	return r.Uint64() // want "RNG stream r is used after fixture.Holder.r took ownership"
}

// ForkedHandoff is the sanctioned pattern: each owner gets a child
// stream, the parent keeps drawing. Silent.
func ForkedHandoff(a, b *Holder) uint64 {
	root := sim.NewRNG(3)
	keep(a, root.Fork())
	keep(b, root.Fork())
	return root.Uint64()
}

// Reseeded hands off, rebinds to a fresh stream, and continues:
// the definition resets ownership. Silent.
func Reseeded(h *Holder) uint64 {
	r := sim.NewRNG(4)
	h.r = r
	r = sim.NewRNG(5)
	return r.Uint64()
}

// Sink dispatches through an interface; the retaining implementation
// makes every dispatch a retain.
type Sink interface {
	Feed(r *sim.RNG)
}

type fieldSink struct {
	r *sim.RNG //klocs:owner=lane owned by the feeding lane
}

// Feed stores the stream: the interface summary joins this.
func (s *fieldSink) Feed(r *sim.RNG) { s.r = r }

// FeedTwice hands the same stream through the interface twice.
func FeedTwice(s Sink) {
	r := sim.NewRNG(6)
	s.Feed(r)
	s.Feed(r) // want "RNG stream r is handed to a second owner"
}

// UseSink keeps the dispatch grounded with a concrete impl.
func UseSink() {
	FeedTwice(&fieldSink{})
}

// Registered is a justified double-handoff: the marker suppresses it.
func Registered(a, b *Holder) {
	r := sim.NewRNG(7)
	keep(a, r)
	//klocs:ignore-rngflow the two holders are one lane's double-buffer
	keep(b, r)
}
