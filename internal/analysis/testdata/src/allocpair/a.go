// Package fixture carries deliberate allocpair violations for the
// analyzer tests; the go tool never builds testdata trees. It imports
// the real kobj package so NewObject and Release resolve for real.
package fixture

import "kloc/internal/kobj"

// leakyPool allocates but has no give-back path.
type leakyPool struct{ next uint64 }

func (p *leakyPool) AllocBuffer(n int) uint64 { // want "leakyPool declares AllocBuffer but no Free"
	p.next++
	return p.next
}

// pairedPool is well-formed: Alloc has a matching Free.
type pairedPool struct{ next uint64 }

func (p *pairedPool) AllocBuffer(n int) uint64 { p.next++; return p.next }
func (p *pairedPool) FreeBuffer(id uint64)     {}

// externalPool's teardown genuinely lives elsewhere; the marker
// vouches for it.
type externalPool struct{}

//klocs:ignore-allocpair fixture: slots are torn down by the harness
func (p *externalPool) AllocSlot() int { return 0 }

// makeOrphan passes a nil release callback: the object's storage never
// returns to its allocator.
func makeOrphan(id kobj.ID, born uint64) *kobj.Object {
	return kobj.NewObject(id, kobj.Inode, nil, 0, nil) // want "nil release callback"
}

// teardown and hooks give the package its free path, so the
// package-level Release/ObjectFreed diagnostics stay quiet and the
// test isolates the nil-callback one.
func teardown(o *kobj.Object) { o.Release() }

type hooks struct{}

func (hooks) ObjectFreed(o *kobj.Object) {}

var mux hooks

func fireFreed(o *kobj.Object) { mux.ObjectFreed(o) }
