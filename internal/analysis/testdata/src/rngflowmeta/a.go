// Package fixture proves the module-analyzer want harness fails
// loudly for rngflow: the expectations below are deliberately wrong,
// and the meta test asserts every mismatch is reported. It is never
// checked for zero problems the way the other fixtures are.
package fixture

import "kloc/internal/sim"

// Holder really triggers the unannotated-owner diagnostic, but the
// pattern below does not match it.
type Holder struct {
	r *sim.RNG // want "this pattern matches nothing"
}

// Draw is clean — drawing from a parameter stream is a plain use —
// so the expectation below is a phantom the harness must flag.
func Draw(r *sim.RNG) uint64 {
	return r.Uint64() // want "phantom rngflow diagnostic expected here"
}
