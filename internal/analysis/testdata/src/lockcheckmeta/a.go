// Package fixture proves the module-analyzer want harness fails
// loudly for lockcheck: the expectations below are deliberately
// wrong, and the meta test asserts every mismatch is reported. It is
// never checked for zero problems the way the other fixtures are.
package fixture

import "sync"

var mu sync.Mutex

// Leak really leaks the lock on the early return, but the pattern
// below does not match the diagnostic.
func Leak(fail bool) {
	mu.Lock() // want "this pattern matches nothing"
	if fail {
		return
	}
	mu.Unlock()
}

// Balanced is clean: the expectation below is a phantom the harness
// must flag.
func Balanced() {
	mu.Lock() // want "phantom lockcheck diagnostic expected here"
	mu.Unlock()
}
