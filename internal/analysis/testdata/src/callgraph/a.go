// Package fixture exercises the call graph's resolution strategies —
// static calls, interface dispatch, method values, function-typed
// fields — and gives the CFG/dataflow tests small known shapes. The go
// tool never builds testdata trees.
package fixture

// Closer is the dispatch interface.
type Closer interface{ Close() int }

type fileObj struct{ n int }

func (f *fileObj) Close() int { return f.n }

type sockObj struct{}

func (sockObj) Close() int { return 0 }

// CloseAll dispatches through the interface: class-hierarchy analysis
// resolves both implementations as callees.
func CloseAll(cs []Closer) int {
	total := 0
	for _, c := range cs {
		total += c.Close()
	}
	return total
}

// hooks is the function-typed-field shape (RunConfig-style).
type hooks struct {
	onEvent func() int
}

// Fire calls through the field: dynamic, no callees.
func Fire(h *hooks) int { return h.onEvent() }

// helper is only reachable through the references TakeRefs takes.
func helper() int { return 1 }

// TakeRefs takes a method value and a function value without calling
// either: both targets become Refs of this function.
func TakeRefs(f *fileObj) (func() int, func() int) {
	mv := f.Close
	return mv, helper
}

// Direct is a plain static call.
func Direct() int { return helper() }

// even and odd are mutually recursive: one strongly connected
// component, emitted callee-first ahead of Parity.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// Parity calls into the cycle.
func Parity(n int) bool { return even(n) }

// Branchy is the reaching-definitions and liveness specimen: two
// definitions of x merge at the return.
func Branchy(flag bool) int {
	x := 1
	if flag {
		x = 2
	}
	return x
}
