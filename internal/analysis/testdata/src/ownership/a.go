// Package fixture carries deliberate ownership violations for the
// ownership analyzer: unannotated shared-mutable state, an init
// annotation contradicted by a runtime writer, an overclaimed lane
// annotation, and — as silent rows — correctly annotated state plus
// the inference patterns (init-helper promotion, local-alias write
// attribution, by-value copy discard) the classifier must get right.
// The go tool never builds testdata trees.
package fixture

// totalOps is package-level, unannotated, and bumped by an exported
// (entry-surface-reachable) function: the canonical diagnostic.
var totalOps int // want "fixture.totalOps is shared-mutable \(unannotated\): written outside the init phase by fixture.Record"

// Record is the reachable writer of totalOps.
func Record() { totalOps++ }

// seedDefault is assigned only in its initializer: inferred init,
// silent.
var seedDefault = uint64(42)

// epochGen is annotated and mutated by a reachable writer: the
// annotation is the classification, silent.
var epochGen int //klocs:owner=epoch bumped only at barrier quiescence

// AdvanceEpoch mutates epochGen at the barrier.
func AdvanceEpoch() int { epochGen++; return epochGen + int(seedDefault) }

// Counter's field is unannotated with a reachable method writer; the
// diagnostic names the writer and its reachability.
type Counter struct {
	n int // want "fixture.Counter.n is shared-mutable \(unannotated\).*the writer is reachable from the engine entry surface"
}

// Bump is exported, hence on the entry surface.
func (c *Counter) Bump() { c.n++ }

// Shadow's writer is unexported and never called: still a post-init
// writer, but the reachability suffix must be absent.
type Shadow struct {
	hits int // want "fixture.Shadow.hits is shared-mutable \(unannotated\): written outside the init phase by fixture.touchShadow — classify"
}

func touchShadow(s *Shadow) { s.hits++ }

// Cursor takes a struct-level default: every field is lane-confined.
type Cursor struct { //klocs:owner=lane the engine loop's per-lane state
	now int
	seq int
}

// Step mutates both lane fields; the struct-level annotation covers
// them, silent.
func (c *Cursor) Step() { c.now++; c.seq++ }

// Pool mixes a struct-level default with a per-field override.
type Pool struct { //klocs:owner=epoch merged when lanes are quiescent
	stats int
	//klocs:owner=init
	capac int
}

// NewPool writes capac during construction only: legal for init.
func NewPool(n int) *Pool {
	p := &Pool{}
	p.capac = n
	return p
}

// Merge mutates the epoch-owned field, silent.
func (p *Pool) Merge() { p.stats++ }

// Late claims immutability it does not have: the violation reports at
// the write site.
type Late struct {
	//klocs:owner=init
	limit int
}

// Tune writes the init-annotated field at runtime.
func (l *Late) Tune(v int) {
	l.limit = v // want "fixture.Late.limit is annotated //klocs:owner=init \(immutable after init\) but fixture.Late.Tune writes it outside the init phase"
}

// Frozen overclaims mutability: nothing writes id after init, so the
// lane annotation is rot waiting to happen.
type Frozen struct {
	//klocs:owner=lane
	id int // want "fixture.Frozen.id is annotated //klocs:owner=lane but has no detectable post-init writer"
}

// Table is built through an unexported helper called only from the
// constructor: the helper inherits init phase, so rows is inferred
// init, silent.
type Table struct {
	rows []int
}

// NewTable constructs through fill.
func NewTable(n int) *Table {
	t := &Table{}
	t.fill(n)
	return t
}

func (t *Table) fill(n int) { t.rows = make([]int, n) }

// Grid mutates its backing store through a local alias; the write
// still attributes to the field.
type Grid struct {
	cells []int // want "fixture.Grid.cells is shared-mutable \(unannotated\): written outside the init phase by fixture.Grid.Set"
}

// Set writes through the alias idiom.
func (g *Grid) Set(i, v int) {
	row := g.cells
	row[i] = v
}

// Config is passed by value: a write to the copy is not a state
// write, silent.
type Config struct {
	Mode int
}

// WithMode mutates only its local copy.
func WithMode(c Config, m int) Config {
	c.Mode = m
	return c
}

// Index mutates a map field through the delete builtin.
type Index struct {
	byID map[int]string // want "fixture.Index.byID is shared-mutable \(unannotated\)"
}

// Drop is the builtin-mediated writer.
func (x *Index) Drop(id int) { delete(x.byID, id) }

// Gauge has a pointer-receiver mutator; calling it through a struct
// field is a write to that field.
type Gauge struct {
	v int64 //klocs:owner=epoch merged at flush
}

// Inc mutates the gauge.
func (g *Gauge) Inc() { g.v++ }

// Stats holds a gauge by value; Touch's method call writes Hits.
type Stats struct {
	//klocs:owner=epoch
	Hits Gauge
}

// Touch calls the pointer-receiver method on the addressable field.
func (s *Stats) Touch() { s.Hits.Inc() }
