// Package fixture exists to prove the `// want` harness itself fails
// loudly: the expectations below are deliberately wrong, and the meta
// test asserts CheckExpectations reports every mismatch. It is never
// checked for zero problems the way the other fixtures are.
package fixture

import "errors"

var errStub = errors.New("stub")

func mayFail() error { return errStub }

// drops produces a real diagnostic, but the pattern below does not
// match it: the harness must report both the unexpected diagnostic
// and the unmatched expectation.
func drops() {
	mayFail() // want "this pattern matches nothing"
}

// clean produces no diagnostic, so the expectation below is a phantom
// the harness must flag.
func clean() error {
	return mayFail() // want "phantom diagnostic expected here"
}
