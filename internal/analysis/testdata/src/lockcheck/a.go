// Package fixture carries deliberate lock-discipline violations for
// the lockcheck analyzer: an AB/BA order inversion, a cycle threaded
// through interface dispatch, self-deadlocks direct and through a
// callee, a lock leaked on one path, and plain access to storage used
// atomically elsewhere — plus the clean shapes (defer unlock,
// init-phase construction, justified suppression) that must stay
// silent. The go tool never builds testdata trees.
package fixture

import (
	"sync"
	"sync/atomic"
)

var (
	muA    sync.Mutex
	muB    sync.Mutex
	muC    sync.Mutex
	muD    sync.Mutex
	muE    sync.Mutex
	muSelf sync.Mutex
)

// LockAB establishes the order muA -> muB.
func LockAB() {
	muA.Lock()
	muB.Lock() // want "lock order cycle: fixture.muB acquired while holding fixture.muA"
	muB.Unlock()
	muA.Unlock()
}

// LockBA inverts it: together with LockAB this is a deadlock-shaped
// cycle, reported at both witnessing edges.
func LockBA() {
	muB.Lock()
	muA.Lock() // want "lock order cycle: fixture.muA acquired while holding fixture.muB"
	muA.Unlock()
	muB.Unlock()
}

// DoubleLock re-acquires a lock it already holds.
func DoubleLock() {
	muSelf.Lock()
	muSelf.Lock() // want "acquiring fixture.muSelf while already holding it: self-deadlock"
	muSelf.Unlock()
	muSelf.Unlock()
}

// Recurse deadlocks through a callee: relock's may-acquire summary
// carries muSelf back to the held-lock check.
func Recurse() {
	muSelf.Lock()
	relock() // want "calling fixture.relock while holding fixture.muSelf: the callee may acquire fixture.muSelf again"
	muSelf.Unlock()
}

func relock() {
	muSelf.Lock()
	muSelf.Unlock()
}

// LeakOnError forgets the unlock on the early return: reported at the
// acquisition site.
func LeakOnError(fail bool) {
	muC.Lock() // want "fixture.muC acquired here is not released on every path out of fixture.LeakOnError"
	if fail {
		return
	}
	muC.Unlock()
}

// DeferredOK releases through defer on every path, silent.
func DeferredOK(fail bool) {
	muC.Lock()
	defer muC.Unlock()
	if fail {
		return
	}
}

// Stage is dispatched through an interface, so the muE -> muD edge
// below exists only via class-hierarchy resolution of Work.
type Stage interface {
	Work()
}

type stageImpl struct{}

// Work acquires muD; the value flows into RunUnder's dispatch.
func (stageImpl) Work() {
	muD.Lock()
	muD.Unlock()
}

// RunUnder dispatches while holding muE: the interface summary
// contributes the muE -> muD order edge.
func RunUnder(s Stage) {
	muE.Lock()
	s.Work() // want "lock order cycle: fixture.muD acquired while holding fixture.muE"
	muE.Unlock()
}

// UseStage keeps the dispatch reachable with a concrete impl.
func UseStage() {
	RunUnder(stageImpl{})
}

// Inverted takes the same pair directly in the opposite order,
// closing the cycle.
func Inverted() {
	muD.Lock()
	muE.Lock() // want "lock order cycle: fixture.muE acquired while holding fixture.muD"
	muE.Unlock()
	muD.Unlock()
}

// Acc mirrors the per-CPU accumulator shape: cells committed through
// sync/atomic element-granular, total through a whole-cell atomic.
type Acc struct {
	cells []uint64
	total uint64
}

// NewAcc touches the storage plainly during construction: legal, the
// object is unshared at birth.
func NewAcc(n int) *Acc {
	a := &Acc{}
	a.cells = make([]uint64, n)
	a.total = 0
	return a
}

// Commit is the sanctioned atomic path.
func (a *Acc) Commit(i int, v uint64) {
	atomic.AddUint64(&a.cells[i], v)
	atomic.AddUint64(&a.total, v)
}

// PeekCells reads an element plainly: races with Commit.
func (a *Acc) PeekCells(i int) uint64 {
	return a.cells[i] // want "fixture.Acc.cells element access mixes with sync/atomic use of the same storage elsewhere"
}

// PeekTotal reads the whole-cell target plainly.
func (a *Acc) PeekTotal() uint64 {
	return a.total // want "fixture.Acc.total plain access mixes with sync/atomic use of the same storage elsewhere"
}

// Reset writes elements plainly outside init; the index-only range
// header itself reads just the length and stays silent.
func (a *Acc) Reset() {
	for i := range a.cells {
		a.cells[i] = 0 // want "fixture.Acc.cells element access mixes with sync/atomic use of the same storage elsewhere"
	}
}

// Snapshot documents a quiescent read: the marker suppresses the
// mixing diagnostic.
func (a *Acc) Snapshot(i int) uint64 {
	//klocs:ignore-lockcheck quiescent read: all committers are parked
	return a.cells[i]
}
