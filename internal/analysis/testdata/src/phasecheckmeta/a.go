// Package fixture proves the module-analyzer want harness fails
// loudly for phasecheck: the expectations below are deliberately
// wrong, and the meta test asserts every mismatch is reported. It is
// never checked for zero problems the way the other fixtures are.
package fixture

import "kloc/internal/sim"

type state struct {
	//klocs:owner=epoch
	mode int
}

var s state

// tick really triggers the epoch-touch diagnostic, but the pattern
// below does not match it.
func tick(e *sim.Engine) {
	s.mode++ // want "this pattern matches nothing"
}

// Quiet is clean, so the expectation below is a phantom the harness
// must flag.
func Quiet() {} // want "phantom phasecheck diagnostic expected here"
