// Package fixture carries deliberate lane/epoch phase-discipline
// violations for the phasecheck analyzer: epoch state touched from
// lane-phase event callbacks (directly, through an inherited helper,
// and through interface dispatch), a barrier function called from a
// lane and its value taken by a lane, a phase-ambiguous lane-state
// write, and lane-owned pointers published to shared state, package
// vars, channels, and retaining callees — plus the sanctioned shapes:
// barrier hooks writing epoch state, a pinned both-phase helper, a
// justified suppression, and in-place mutation of a lane buffer by a
// non-retaining callee. The go tool never builds testdata trees.
package fixture

import "kloc/internal/sim"

// Shard is one lane's private state plus the coordinator's knob.
type Shard struct {
	//klocs:owner=lane
	ops int
	//klocs:owner=lane
	buf []int
	//klocs:owner=epoch
	mode int
}

var shard Shard

// laneTick is an engine event callback — lane phase by shape — and
// touches the coordinator's epoch state.
func laneTick(e *sim.Engine) {
	shard.ops++
	shard.mode = 1 // want "fixture.Shard.mode \(owner=epoch\) is touched by fixture.laneTick, which runs in lane phase"
	bumpMode()
}

// bumpMode inherits lane phase from its caller.
func bumpMode() {
	shard.mode++ // want "fixture.Shard.mode \(owner=epoch\) is touched by fixture.bumpMode"
}

// Merge is the coordinator's barrier work: writing epoch and lane
// state here is legal, because every lane is parked.
//
//klocs:phase=barrier
func Merge() {
	shard.mode++
	shard.ops = 0
}

// laneCallsBarrier runs the barrier from inside a lane.
func laneCallsBarrier(e *sim.Engine) {
	Merge() // want "fixture.Merge \(declared //klocs:phase=barrier\) is called from lane-phase code \(fixture.laneCallsBarrier\)"
}

// laneStores takes the barrier's value from lane phase: the stored
// hook could fire mid-epoch.
func laneStores(e *sim.Engine) { // want "lane-phase fixture.laneStores takes the value of fixture.Merge"
	hook = Merge
}

var hook func()

// reset is reachable from both phases without a pin: its lane-state
// write is phase-ambiguous.
func reset() {
	shard.ops = 0 // want "fixture.Shard.ops \(owner=lane\) is written by fixture.reset, which is reachable from both lane and barrier phase"
}

func laneReset(e *sim.Engine) { reset() }

//klocs:phase=barrier
func BarrierReset() { reset() }

// record is also called from both phases, but the pin resolves the
// ambiguity: the coordinator acts for the parked lane. Silent.
//
//klocs:phase=lane
func record() { shard.ops++ }

func laneRecord(e *sim.Engine) { record() }

//klocs:phase=barrier
func BarrierRecord() { record() }

// ArmBarrier registers a hook literal: barrier phase by registration,
// so its epoch and lane writes are both legal. Silent.
func ArmBarrier(l *sim.Lanes) {
	l.AtBarrier(func(info sim.BarrierInfo) {
		shard.mode++
		shard.ops = 0
	})
}

// mergeHook is barrier phase through the named registration below.
func mergeHook(info sim.BarrierInfo) {
	shard.mode++
}

// ArmNamed registers the named hook. Silent.
func ArmNamed(l *sim.Lanes) { l.AtBarrier(mergeHook) }

// stepper dispatches lane work through an interface; phase inherits
// across the dispatch into every implementation.
type stepper interface{ step() }

type fastStepper struct{}

func (fastStepper) step() {
	shard.mode = 3 // want "fixture.Shard.mode \(owner=epoch\) is touched by fixture.fastStepper.step"
}

var impl stepper = fastStepper{}

func laneDispatch(e *sim.Engine) { impl.step() }

// Sink is the coordinator's merge target.
type Sink struct {
	//klocs:owner=shared
	slot []int
}

var sink Sink

var escaped []int

var bufCh = make(chan []int, 1)

// keep retains its argument in shared state: the canonical
// publishing callee.
func keep(b []int) { sink.slot = b }

// scratch mutates the buffer in place without retaining it:
// same-lane use, no publication.
func scratch(b []int) {
	if len(b) > 0 {
		b[0] = 1
	}
}

// lanePublish leaks the lane-owned buffer four ways; the scratch
// call is the clean shape.
func lanePublish(e *sim.Engine) {
	sink.slot = shard.buf // want "lane-owned pointer fixture.Shard.buf is published to fixture.Sink.slot"
	b := shard.buf
	escaped = b // want "lane-owned pointer fixture.Shard.buf is published to fixture.escaped"
	keep(b)     // want "lane-owned pointer fixture.Shard.buf is passed to a callee that publishes it"
	scratch(b)
}

// laneSend leaks through a channel.
func laneSend(e *sim.Engine) {
	bufCh <- shard.buf // want "lane-owned pointer fixture.Shard.buf is sent on a channel"
}

// laneSuppressed documents a bring-up exception: the audited marker
// silences the epoch-touch diagnostic. Silent.
func laneSuppressed(e *sim.Engine) {
	//klocs:ignore-phasecheck migration shim: this knob is coordinator-owned during bring-up
	shard.mode = 2
}
