// Package fixture proves the module-analyzer want harness fails
// loudly for ownership: the expectations below are deliberately
// wrong, and the meta test asserts every mismatch is reported. It is
// never checked for zero problems the way the other fixtures are.
package fixture

// leak really is flagged as unannotated shared-mutable state, but the
// pattern below does not match the diagnostic.
var leak int // want "this pattern matches nothing"

// Grow is the post-init writer.
func Grow() { leak++ }

// frozen is only written by its initializer, so no diagnostic fires:
// the expectation below is a phantom the harness must flag.
var frozen = 7 // want "phantom ownership diagnostic expected here"
