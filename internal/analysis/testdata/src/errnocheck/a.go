// Package fixture carries deliberate errnocheck violations for the
// analyzer tests; the go tool never builds testdata trees.
package fixture

import "errors"

var errBusy = errors.New("EBUSY")

func mayFail() error { return errBusy }

func allocate() (int, error) { return 0, errBusy }

type device struct{}

func (d *device) Submit() error { return errBusy }

func dropsError() {
	mayFail() // want "error result of mayFail discarded"
}

func dropsMethodError(d *device) {
	d.Submit() // want "error result of device.Submit discarded"
}

func blanksError() int {
	n, _ := allocate() // want "error result of allocate assigned to _"
	return n
}

func deferred() {
	defer mayFail() // want "discarded by defer"
}

func inGoroutine() {
	go mayFail() // want "discarded by go statement"
}

// propagates handles every error: no diagnostics.
func propagates() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := allocate()
	if err != nil {
		return err
	}
	_ = n
	return nil
}

// sunkExplicitly documents the deliberate drop with the marker.
func sunkExplicitly() {
	//klocs:ignore-errno fixture: best-effort warmup, failure is benign
	mayFail()
}
