// Package fixture carries deliberate lifecycle violations for the
// interprocedural analyzer tests; the go tool never builds testdata
// trees.
package fixture

// Buf is the tracked object shape: allocators hand out pointers.
type Buf struct {
	data []byte
	next *Buf
}

var pool []*Buf

// AllocBuf follows the allocator naming convention.
func AllocBuf() *Buf { return &Buf{} }

// AllocChecked is an allocator with a companion error result.
func AllocChecked() (*Buf, error) { return &Buf{}, nil }

// FreeBuf follows the teardown naming convention.
func FreeBuf(b *Buf) {
	pool = append(pool, b)
}

// consume is not named like a teardown: callers learn that it frees
// its argument only through its computed summary.
func consume(b *Buf) {
	FreeBuf(b)
}

// newWrapped launders the allocator through a helper: the bottom-up
// summary still marks its result as a fresh allocation.
func newWrapped() *Buf {
	return AllocBuf()
}

// doubleFree releases the same buffer twice on a straight-line path.
func doubleFree() {
	b := AllocBuf()
	FreeBuf(b)
	FreeBuf(b) // want "double free of b: already freed"
}

// doubleFreeViaHelper frees through the helper's summary, then again
// directly.
func doubleFreeViaHelper() {
	b := AllocBuf()
	consume(b)
	FreeBuf(b) // want "double free of b: already freed"
}

// freedOnSomePaths frees only on the flush branch, so the join at the
// return sees both a freed and a live state.
func freedOnSomePaths(flush bool) {
	b := AllocBuf()
	if flush {
		FreeBuf(b)
	}
	return // want "is freed on only some paths reaching this return"
}

// leakOnEarlyReturn forgets the buffer on the error exit.
func leakOnEarlyReturn(n int) int {
	b := AllocBuf()
	if n < 0 {
		return 0 // want "leaks on this return path"
	}
	FreeBuf(b)
	return n
}

// leakViaHelper leaks a buffer allocated through newWrapped: the
// allocator property crosses the call boundary.
func leakViaHelper(n int) int {
	w := newWrapped()
	if n > 0 {
		return n // want "leaks on this return path"
	}
	FreeBuf(w)
	return 0
}

// checkedPath handles the failure branch: the err-link refinement
// keeps the early error return from reporting a leak. No diagnostics.
func checkedPath() error {
	b, err := AllocChecked()
	if err != nil {
		return err
	}
	FreeBuf(b)
	return nil
}

// escaped hands the buffer to package state: tracking drops it, so
// the return is not a leak. No diagnostics.
func escaped(head *Buf) {
	b := AllocBuf()
	head.next = b
	return
}

// parked leaks by design; the marker documents the external teardown.
func parked(n int) int {
	b := AllocBuf()
	if n == 0 {
		//klocs:ignore-lifecycle fixture: teardown owned by the harness
		return 0
	}
	FreeBuf(b)
	return n
}
