package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Ownership is the parallel-readiness classifier gating the sharded
// engine refactor (ROADMAP item 2): before `internal/sim` may run
// logical CPUs on concurrent goroutines, every piece of mutable state
// the engine can reach must say who owns it. The analyzer inventories
// every package-level var and struct field declared in the engine
// packages (sim, kernel, memsim, percpu, metrics, trace) and
// classifies each into one of four ownership classes, driven by a
// `//klocs:owner=<lane|epoch|init|shared>` annotation on the
// declaration (or, as a default, on the enclosing `type` line) plus
// write-site inference over the whole module:
//
//   - lane:   per-CPU-confined — only the goroutine driving one lane
//     touches it (percpu.Accumulator lanes, the engine loop's cursor);
//   - epoch:  epoch-guarded — mutated only at barrier/epoch boundaries
//     where all lanes are quiescent (snapshot flushes, stats merges);
//   - init:   immutable after init — written only during construction
//     (New*/new*/init functions and their private helpers);
//   - shared: shared-mutable — concurrently reachable and mutable; the
//     refactor must synchronize it, so the class is an explicit debt
//     acknowledgement, never a default.
//
// Unannotated state with a post-init writer is the diagnostic: nothing
// may stay shared-mutable by omission. Unannotated state nothing
// writes after init is inferred `init` silently. Two honesty checks
// keep annotations from rotting: `owner=init` state with a post-init
// writer is a violation at the write site, and a lane/epoch/shared
// annotation on state with no detectable post-init writer is flagged
// as overclaiming (use owner=init or drop it).
//
// Write inference is syntactic but module-wide and alias-aware:
// assignment LHS chains, ++/--, address-of, delete/copy builtins, and
// pointer-receiver method calls on addressable values all count, and
// the `lane := a.lanes[cpu]; lane[cell]++` idiom attributes through
// the local alias. Writes landing in by-value copies of structs are
// discarded; writes through untracked raw pointers are (knowingly)
// invisible, as are mutations a callee performs on a slice passed by
// value — the checked-in PARALLEL_READINESS.md report this analyzer
// generates is reviewed, not trusted blind.
var Ownership = &ModuleAnalyzer{
	Name: "ownership",
	Doc:  "classify engine-reachable state into lane/epoch/init/shared ownership classes",
	Run:  runOwnership,
}

// ownerClass is one parallel-readiness ownership class.
type ownerClass uint8

const (
	ownerUnclassified ownerClass = iota
	ownerLane
	ownerEpoch
	ownerInit
	ownerShared
	// ownerInferredInit is unannotated state with no post-init writer.
	ownerInferredInit
	// ownerAtomic is shared state accessed lock-free through
	// sync/atomic: cross-lane by design, already synchronized. The
	// annotation is honest only if the accesses really go through
	// sync/atomic — runOwnership cross-checks against the lockcheck
	// atomic-cell inventory, and the lockcheck atomic-mixing rule
	// rejects plain access.
	ownerAtomic
)

func (c ownerClass) String() string {
	switch c {
	case ownerLane:
		return "lane (per-CPU-confined)"
	case ownerEpoch:
		return "epoch (epoch-guarded)"
	case ownerInit:
		return "init (immutable after init)"
	case ownerInferredInit:
		return "init (inferred: no post-init writer)"
	case ownerShared:
		return "shared (needs synchronization)"
	case ownerAtomic:
		return "atomic (lock-free: sync/atomic)"
	}
	return "UNCLASSIFIED (shared-mutable, unannotated)"
}

// ownerMarkers maps marker names to classes, in lookup priority order.
var ownerMarkers = [...]struct {
	name  string
	class ownerClass
}{
	{"owner=lane", ownerLane},
	{"owner=epoch", ownerEpoch},
	{"owner=init", ownerInit},
	{"owner=shared", ownerShared},
	{"owner=atomic", ownerAtomic},
}

// ownershipScopePaths are the engine packages whose declared state the
// analyzer classifies (writes are still collected module-wide).
var ownershipScopePaths = map[string]bool{
	"kloc/internal/sim":     true,
	"kloc/internal/kernel":  true,
	"kloc/internal/memsim":  true,
	"kloc/internal/percpu":  true,
	"kloc/internal/metrics": true,
	"kloc/internal/trace":   true,
}

func ownershipInScope(path string) bool {
	return ownershipScopePaths[path] || strings.HasPrefix(path, "fixture/")
}

// A writerRef is one deduplicated post-init writer of a state entry.
type writerRef struct {
	label string
	pos   token.Pos
	// reachable reports whether the writer is reachable from the
	// module's entry surface — the refactor cares most about these.
	reachable bool
}

// A stateEntry is one classified package-level var or struct field.
type stateEntry struct {
	v       *types.Var
	pkgPath string
	// owner is the declaring type's name; empty for package vars.
	owner string
	label string
	pos   token.Pos
	// typePos is the enclosing type declaration, consulted for a
	// struct-level default annotation; NoPos for package vars.
	typePos   token.Pos
	class     ownerClass
	annotated bool
	// writers lists post-init writers in source order.
	writers []writerRef
}

func runOwnership(pass *ModulePass) error {
	entries := ownershipInventory(pass.Module, pass.Marked)
	atomicCells := collectAtomicCells(pass.Module)
	for i := range entries {
		e := &entries[i]
		if e.class == ownerAtomic {
			// Honesty check: the annotation claims sync/atomic access,
			// so the lockcheck atomic-cell inventory must know the var.
			if _, ok := atomicCells[e.v]; !ok {
				pass.Reportf(e.pos, "%s is annotated //klocs:owner=atomic but no sync/atomic access to it exists — route its accesses through sync/atomic or re-classify it", e.label)
			}
			continue
		}
		switch {
		case e.class == ownerUnclassified:
			w := e.writers[0]
			for _, cand := range e.writers {
				if cand.reachable {
					w = cand
					break
				}
			}
			reach := ""
			if w.reachable {
				reach = "; the writer is reachable from the engine entry surface"
			}
			pass.Reportf(e.pos, "%s is shared-mutable (unannotated): written outside the init phase by %s%s — classify it with //klocs:owner=<lane|epoch|init|shared>", e.label, w.label, reach)
		case e.class == ownerInit && len(e.writers) > 0:
			w := e.writers[0]
			pass.Reportf(w.pos, "%s is annotated //klocs:owner=init (immutable after init) but %s writes it outside the init phase", e.label, w.label)
		case e.annotated && len(e.writers) == 0 && e.class != ownerInit:
			pass.Reportf(e.pos, "%s is annotated //klocs:%s but has no detectable post-init writer — annotate it owner=init or drop the annotation", e.label, ownerMarkerName(e.class))
		}
	}
	return nil
}

// ownerMarkerName returns the marker spelling for an annotated class.
func ownerMarkerName(c ownerClass) string {
	for _, om := range ownerMarkers {
		if om.class == c {
			return om.name
		}
	}
	return "owner=?"
}

// ownershipInventory builds and classifies the state inventory. marked
// is the annotation lookup (ModulePass.Marked in analyzer runs, so
// annotation hits feed the suppression audit).
func ownershipInventory(m *Module, marked func(name string, pos token.Pos) bool) []stateEntry {
	writes := collectStateWrites(m)
	initFns := initPhaseNodes(m.Graph)
	reached := m.Graph.Reachable(entrySurface(m.Graph))

	var entries []stateEntry
	pkgs := append([]*Package(nil), m.Packages...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	for _, pkg := range pkgs {
		if !ownershipInScope(pkg.Path) {
			continue
		}
		pkgName := pkg.Types.Name()
		scope := pkg.Types.Scope()
		names := scope.Names()
		// Package vars first, then types in name order (fields follow
		// declaration order) — the report reads in this order.
		for _, name := range names {
			v, ok := scope.Lookup(name).(*types.Var)
			if !ok {
				continue
			}
			entries = append(entries, stateEntry{
				v:       v,
				pkgPath: pkg.Path,
				label:   pkgName + "." + name,
				pos:     v.Pos(),
			})
		}
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				entries = append(entries, stateEntry{
					v:       f,
					pkgPath: pkg.Path,
					owner:   name,
					label:   pkgName + "." + name + "." + f.Name(),
					pos:     f.Pos(),
					typePos: tn.Pos(),
				})
			}
		}
	}
	for i := range entries {
		classifyEntry(&entries[i], marked, writes, initFns, reached)
	}
	return entries
}

// classifyEntry resolves one entry's annotation, post-init writers,
// and final class.
func classifyEntry(e *stateEntry, marked func(string, token.Pos) bool, writes map[*types.Var][]stateWrite, initFns map[*FuncNode]bool, reached map[*FuncNode]bool) {
	for _, om := range ownerMarkers {
		if marked(om.name, e.pos) {
			e.class, e.annotated = om.class, true
			break
		}
	}
	if !e.annotated && e.typePos.IsValid() {
		// Struct-level default on the `type Foo struct {` line.
		for _, om := range ownerMarkers {
			if marked(om.name, e.typePos) {
				e.class, e.annotated = om.class, true
				break
			}
		}
	}
	ws := append([]stateWrite(nil), writes[e.v]...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].pos < ws[j].pos })
	byLabel := make(map[string]int)
	for _, w := range ws {
		if w.fn == nil || initFns[w.fn] {
			continue // init-phase write
		}
		label := w.fn.String()
		if idx, ok := byLabel[label]; ok {
			if reached[w.fn] {
				e.writers[idx].reachable = true
			}
			continue
		}
		byLabel[label] = len(e.writers)
		e.writers = append(e.writers, writerRef{label: label, pos: w.pos, reachable: reached[w.fn]})
	}
	if !e.annotated {
		if len(e.writers) == 0 {
			e.class = ownerInferredInit
		} else {
			e.class = ownerUnclassified
		}
	}
}

// entrySurface returns the module's entry-surface roots — exported
// functions and methods, main, and init — shared by tracereach and the
// parallel-readiness analyzers. Package-level initializer references
// are rooted by Reachable itself.
func entrySurface(g *CallGraph) []*FuncNode {
	var roots []*FuncNode
	for _, n := range g.Nodes {
		if n.Obj == nil {
			continue
		}
		if n.Obj.Exported() || n.Obj.Name() == "main" || n.Obj.Name() == "init" {
			roots = append(roots, n)
		}
	}
	return roots
}

// initPhaseNodes identifies the functions whose writes count as
// initialization: New*/new* constructors and init functions, function
// literals lexically inside them, and — by closure over the call graph
// — unexported helpers called exclusively from init-phase functions
// whose value is never taken (a stored hook runs at an unknown time,
// so taken functions never inherit init phase). A constructor called
// at runtime still counts as init: a freshly constructed object is
// unshared at birth.
func initPhaseNodes(g *CallGraph) map[*FuncNode]bool {
	isInit := make(map[*FuncNode]bool)
	for _, n := range g.Nodes {
		if n.Obj == nil {
			continue
		}
		name := n.Obj.Name()
		if !strings.HasPrefix(name, "New") && !strings.HasPrefix(name, "new") && name != "init" {
			continue
		}
		isInit[n] = true
		if body := n.Body(); body != nil {
			ast.Inspect(body, func(m ast.Node) bool {
				if lit, ok := m.(*ast.FuncLit); ok {
					if ln := g.NodeOfLit(lit); ln != nil {
						isInit[ln] = true
					}
				}
				return true
			})
		}
	}
	callers := make(map[*FuncNode][]*FuncNode)
	refTaken := make(map[*FuncNode]bool)
	for _, n := range g.Nodes {
		for _, site := range n.Calls {
			for _, m := range site.Callees {
				callers[m] = append(callers[m], n)
			}
		}
		for _, m := range n.Refs {
			refTaken[m] = true
		}
	}
	for _, m := range g.PackageRefs {
		refTaken[m] = true
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if isInit[n] || refTaken[n] || n.Obj == nil || n.Obj.Exported() || n.Obj.Name() == "main" {
				continue
			}
			cs := callers[n]
			if len(cs) == 0 {
				continue
			}
			all := true
			for _, c := range cs {
				if !isInit[c] {
					all = false
					break
				}
			}
			if all {
				isInit[n] = true
				changed = true
			}
		}
	}
	return isInit
}

// A stateWrite is one detected write (or address exposure) of a
// package var or struct field. fn is nil for writes in package-level
// initializer expressions (always init-phase).
type stateWrite struct {
	fn  *FuncNode
	pos token.Pos
}

// collectStateWrites walks every function body in the module and
// attributes writes to the package vars and struct fields they land
// in.
func collectStateWrites(m *Module) map[*types.Var][]stateWrite {
	writes := make(map[*types.Var][]stateWrite)
	g := m.Graph
	seenLit := make(map[*ast.FuncLit]bool)
	for _, n := range g.Nodes {
		if n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		walkWrites(g, n.Pkg.Info, n, n.Decl.Body, writes, seenLit)
	}
	// Function literals at package scope (var hooks) have no enclosing
	// decl; outer literals sort before their nested ones, so each is
	// walked exactly once.
	for _, n := range g.Nodes {
		if n.Lit != nil && !seenLit[n.Lit] {
			seenLit[n.Lit] = true
			walkWrites(g, n.Pkg.Info, n, n.Lit.Body, writes, seenLit)
		}
	}
	return writes
}

// walkWrites records the writes in one body, switching attribution at
// nested function literal boundaries.
func walkWrites(g *CallGraph, info *types.Info, cur *FuncNode, body ast.Node, writes map[*types.Var][]stateWrite, seenLit map[*ast.FuncLit]bool) {
	aliases := localStateAliases(info, body)
	record := func(fn *FuncNode, pos token.Pos, vars []*types.Var) {
		for _, v := range vars {
			writes[v] = append(writes[v], stateWrite{fn: fn, pos: pos})
		}
	}
	var walk func(n ast.Node, fn *FuncNode) bool
	walk = func(n ast.Node, fn *FuncNode) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			seenLit[x] = true
			target := g.NodeOfLit(x)
			if target == nil {
				target = fn
			}
			ast.Inspect(x.Body, func(m ast.Node) bool { return walk(m, target) })
			return false
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				record(fn, lhs.Pos(), stateRefs(info, aliases, lhs, false))
			}
		case *ast.IncDecStmt:
			record(fn, x.Pos(), stateRefs(info, aliases, x.X, false))
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				record(fn, x.Pos(), stateRefs(info, aliases, x.X, false))
			}
		case *ast.CallExpr:
			recordCallWrites(info, aliases, fn, x, record)
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n, cur) })
}

// recordCallWrites handles the two call forms that mutate state:
// delete/copy builtins and pointer-receiver method calls on
// addressable non-pointer bases (k.Stats.Allocs.Inc()).
func recordCallWrites(info *types.Info, aliases map[*types.Var][]*types.Var, fn *FuncNode, call *ast.CallExpr, record func(*FuncNode, token.Pos, []*types.Var)) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[f].(*types.Builtin); ok && (b.Name() == "delete" || b.Name() == "copy") && len(call.Args) > 0 {
			record(fn, call.Pos(), stateRefs(info, aliases, call.Args[0], true))
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[f]
		if !ok || sel.Kind() != types.MethodVal {
			return
		}
		mfn, ok := sel.Obj().(*types.Func)
		if !ok {
			return
		}
		sig, ok := mfn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return
		}
		if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
			return
		}
		baseT := info.TypeOf(f.X)
		if baseT == nil {
			return
		}
		if _, isPtr := baseT.Underlying().(*types.Pointer); isPtr {
			return
		}
		record(fn, call.Pos(), stateRefs(info, aliases, f.X, false))
	}
}

// isPackageVar reports whether v is a package-level variable.
func isPackageVar(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// stateRefs resolves an lvalue (assignment LHS, ++/-- operand,
// &-operand, mutated call argument) to the package vars and struct
// fields whose stored state the write lands in. Selector chains
// through struct values attribute to every enclosing field; chains
// stopping at a pointer attribute through a local alias when one is
// known. indexed marks that the write mutates element contents
// (backing arrays are shared even through by-value copies); a plain
// value-typed local root otherwise means the write lands in a local
// copy and the refs are discarded.
func stateRefs(info *types.Info, aliases map[*types.Var][]*types.Var, e ast.Expr, indexed bool) []*types.Var {
	var out []*types.Var
	discard := false
	var walk func(e ast.Expr, indexed bool)
	walk = func(e ast.Expr, indexed bool) {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			walk(x.X, true)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				walk(x.X, indexed)
			}
		case *ast.StarExpr:
			// Write through a raw pointer: target unknown.
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				v, ok := sel.Obj().(*types.Var)
				if !ok {
					return
				}
				out = append(out, v)
				if bt := info.TypeOf(x.X); bt != nil {
					if _, isStruct := bt.Underlying().(*types.Struct); isStruct {
						// The field's storage lives inline in the base
						// value: the write mutates it too.
						walk(x.X, indexed)
						return
					}
				}
				// Pointer (or other indirected) base: attribute through
				// a local alias when the base is one.
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if bv, ok := info.Uses[id].(*types.Var); ok {
						out = append(out, aliases[bv]...)
					}
				}
				return
			}
			// Qualified package var: pkg.Var.
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && isPackageVar(v) {
				out = append(out, v)
			}
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok {
				return
			}
			if isPackageVar(v) {
				out = append(out, v)
				return
			}
			if extra, ok := aliases[v]; ok {
				out = append(out, extra...)
				return
			}
			switch v.Type().Underlying().(type) {
			case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
				// Reference-typed local with unknown origin: the write
				// may land in shared heap we cannot attribute.
			default:
				if !indexed {
					// Plain value local: the write mutates a copy.
					discard = true
				}
			}
		}
	}
	walk(e, indexed)
	if discard {
		return nil
	}
	return out
}

// localStateAliases maps reference-typed locals (pointers, slices,
// maps) to the state refs of their defining expressions, so writes
// through the `lane := a.lanes[cpu]; lane[cell]++` idiom still
// attribute to the field. A local with conflicting or unattributable
// definitions resolves to nothing.
func localStateAliases(info *types.Info, body ast.Node) map[*types.Var][]*types.Var {
	aliases := make(map[*types.Var][]*types.Var)
	conflicted := make(map[*types.Var]bool)
	add := func(id *ast.Ident, src ast.Expr) {
		if id == nil || id.Name == "_" {
			return
		}
		var v *types.Var
		if d, ok := info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v == nil || conflicted[v] || v.IsField() || isPackageVar(v) {
			return
		}
		switch v.Type().Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map:
		default:
			return
		}
		var refs []*types.Var
		if src != nil {
			refs = stateRefs(info, nil, src, true)
		}
		if prev, ok := aliases[v]; ok {
			if !sameVars(prev, refs) {
				conflicted[v] = true
				delete(aliases, v)
			}
			return
		}
		if len(refs) > 0 {
			refs = refs[:1:1] // innermost field only: the element/pointee holder
			aliases[v] = refs
		} else {
			conflicted[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					add(id, s.Rhs[i])
				}
			}
		case *ast.GenDecl:
			for _, spec := range s.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					add(name, vs.Values[i])
				}
			}
		case *ast.RangeStmt:
			if id, ok := s.Value.(*ast.Ident); ok {
				add(id, s.X)
			}
		}
		return true
	})
	return aliases
}

func sameVars(a, b []*types.Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OwnershipReport renders the deterministic PARALLEL_READINESS.md
// inventory: the reviewed spec the sharded-engine refactor implements
// against. Output depends only on module source, so a doubled run is
// byte-identical and CI can cmp code against the checked-in report.
func OwnershipReport(m *Module) []byte {
	pass := &ModulePass{Analyzer: Ownership, Module: m}
	entries := ownershipInventory(m, pass.Marked)

	var b bytes.Buffer
	b.WriteString("# Parallel readiness — ownership inventory\n\n")
	b.WriteString("Generated by `kloclint -ownership-report` (regenerate with `make readiness`).\n")
	b.WriteString("DO NOT EDIT: `make lint` fails when this file drifts from the code.\n\n")
	b.WriteString("This inventory classifies every package-level var and struct field\n")
	b.WriteString("declared in the engine packages (sim, kernel, memsim, percpu, metrics,\n")
	b.WriteString("trace) by who may mutate it once the engine shards into per-CPU lanes\n")
	b.WriteString("(ROADMAP item 2). It is the spec that refactor implements against:\n")
	b.WriteString("`lane` state moves into per-lane shards, `epoch` state is only touched\n")
	b.WriteString("at barrier quiescence, `init` state needs no synchronization, and every\n")
	b.WriteString("`shared` entry is an explicit synchronization work item. The `ownership`\n")
	b.WriteString("analyzer rejects unannotated mutable state, so this table is exhaustive.\n\n")
	b.WriteString("## Ownership classes\n\n")
	b.WriteString("| class | meaning | refactor obligation |\n|---|---|---|\n")
	b.WriteString("| `lane` | per-CPU-confined: only the owning lane's goroutine touches it | move into the lane shard |\n")
	b.WriteString("| `epoch` | mutated only at epoch/barrier quiescence points | guard with the epoch barrier |\n")
	b.WriteString("| `init` | immutable after construction (annotated or inferred) | share freely |\n")
	b.WriteString("| `atomic` | cross-lane by design, accessed lock-free via `sync/atomic` | already synchronized |\n")
	b.WriteString("| `shared` | concurrently reachable and mutable | synchronize explicitly |\n\n")

	counts := map[ownerClass]int{}
	byPkg := make(map[string][]*stateEntry)
	var pkgOrder []string
	for i := range entries {
		e := &entries[i]
		counts[e.class]++
		if _, ok := byPkg[e.pkgPath]; !ok {
			pkgOrder = append(pkgOrder, e.pkgPath)
		}
		byPkg[e.pkgPath] = append(byPkg[e.pkgPath], e)
	}
	b.WriteString("## Summary\n\n| class | entries |\n|---|---:|\n")
	for _, c := range []ownerClass{ownerLane, ownerEpoch, ownerInit, ownerInferredInit, ownerAtomic, ownerShared, ownerUnclassified} {
		if c == ownerUnclassified && counts[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "| %s | %d |\n", c, counts[c])
	}
	b.WriteString("\n")

	for _, path := range pkgOrder {
		fmt.Fprintf(&b, "## %s\n\n", path)
		b.WriteString("| state | class | post-init writers |\n|---|---|---|\n")
		for _, e := range byPkg[path] {
			label := "`" + e.label + "`"
			if e.owner == "" {
				label += " (var)"
			}
			fmt.Fprintf(&b, "| %s | %s | %s |\n", label, e.class, writerCell(e.writers))
		}
		b.WriteString("\n")
	}

	b.WriteString("## RNG streams\n\n")
	rngs := collectRNGFieldReport(m, pass.Marked)
	if len(rngs) == 0 {
		b.WriteString("No struct fields hold `*sim.RNG` streams.\n\n")
	} else {
		b.WriteString("Every `*sim.RNG`-typed field module-wide, with its lane-confinement\n")
		b.WriteString("owner (the `rngflow` analyzer forbids unannotated or shared streams):\n\n")
		b.WriteString("| field | owner |\n|---|---|\n")
		for _, r := range rngs {
			fmt.Fprintf(&b, "| `%s` | %s |\n", r.label, r.owner)
		}
		b.WriteString("\n")
	}

	b.WriteString("## Synchronization inventory\n\n")
	mutexes := collectMutexClasses(m)
	if len(mutexes) == 0 {
		b.WriteString("Mutex classes: none — the simulation core is lock-free by design;\n")
		b.WriteString("lanes plus epoch barriers replace locking (`lockcheck` keeps it that way).\n")
	} else {
		b.WriteString("Mutex classes (lock-order cycles rejected by `lockcheck`):\n\n")
		for _, mu := range mutexes {
			fmt.Fprintf(&b, "- `%s`\n", mu)
		}
	}
	b.WriteString("\n")
	atomics := collectAtomicTargets(m)
	if len(atomics) == 0 {
		b.WriteString("Atomic cells: none.\n")
	} else {
		b.WriteString("Atomic cells (accessed via `sync/atomic`; plain post-init access to\n")
		b.WriteString("the same storage is rejected by `lockcheck`):\n\n")
		for _, at := range atomics {
			fmt.Fprintf(&b, "- `%s`\n", at)
		}
	}
	return b.Bytes()
}

// writerCell formats a writers column: up to three labels plus a
// count, em-dash when none.
func writerCell(ws []writerRef) string {
	if len(ws) == 0 {
		return "—"
	}
	var parts []string
	for i, w := range ws {
		if i == 3 {
			parts = append(parts, fmt.Sprintf("(+%d more)", len(ws)-3))
			break
		}
		parts = append(parts, "`"+w.label+"`")
	}
	return strings.Join(parts, ", ")
}

// OwnershipSharedCount is the parallel-readiness ratchet metric: the
// number of inventory entries still classified shared or unclassified
// — the state the sharded engine has no story for yet. kloclint
// -ownership-ratchet compares it against the checked-in baseline and
// fails when it grows; lowering the baseline is the only allowed
// direction.
func OwnershipSharedCount(m *Module) int {
	pass := &ModulePass{Analyzer: Ownership, Module: m}
	n := 0
	for _, e := range ownershipInventory(m, pass.Marked) {
		if e.class == ownerShared || e.class == ownerUnclassified {
			n++
		}
	}
	return n
}
