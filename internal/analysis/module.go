package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// This file is the whole-module layer of the framework: where an
// Analyzer sees one package at a time, a ModuleAnalyzer sees every
// loaded package plus the call graph over them, so it can reason
// across call boundaries (alloc in one helper, free in another; an
// errno laundered two packages away from the boundary it escapes).
// The driver loads the module once, builds one Module, and runs the
// interprocedural suite over it.

// A Module is the whole-program view: every loaded package and the
// call graph connecting them.
type Module struct {
	Packages []*Package
	Graph    *CallGraph
	Fset     *token.FileSet

	// fileOwner maps each source filename to its package, so marker
	// lookups can resolve any position.
	fileOwner map[string]*Package
}

// NewModule builds the module view (including the call graph) over
// the loaded packages.
func NewModule(pkgs []*Package) *Module {
	m := &Module{Packages: pkgs, Graph: BuildCallGraph(pkgs), fileOwner: make(map[string]*Package)}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			m.fileOwner[pkg.Fset.Position(file.Pos()).Filename] = pkg
		}
	}
	return m
}

// PackageAt returns the package owning pos.
func (m *Module) PackageAt(pos token.Pos) *Package {
	return m.fileOwner[m.Fset.Position(pos).Filename]
}

// A ModuleAnalyzer describes one whole-module invariant check.
type ModuleAnalyzer struct {
	// Name identifies the analyzer in diagnostics and -only flags.
	Name string
	// Doc is the one-line description shown by kloclint -list.
	Doc string
	// Run executes the check over the module.
	Run func(pass *ModulePass) error
}

// A ModulePass connects one module analyzer to one loaded module.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Module   *Module

	diags *[]Diagnostic
	audit *MarkerAudit
	// markers caches per-package marker tables by marker name.
	markers map[*Package]map[string]markerTable
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Module.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Marked reports whether a "//klocs:<name>" marker covers the line of
// pos, with the same placement rules as Pass.Marked. A positive
// answer is recorded with the pass's audit (when armed): the marker
// suppressed a diagnostic and is therefore not stale.
func (p *ModulePass) Marked(name string, pos token.Pos) bool {
	pkg := p.Module.PackageAt(pos)
	if pkg == nil {
		return false
	}
	if p.markers == nil {
		p.markers = make(map[*Package]map[string]markerTable)
	}
	byName, ok := p.markers[pkg]
	if !ok {
		byName = make(map[string]markerTable)
		p.markers[pkg] = byName
	}
	table, ok := byName[name]
	if !ok {
		table = collectMarkerTable(pkg, name)
		byName[name] = table
	}
	at := p.Module.Fset.Position(pos)
	markerAt, covered := table[markerKey{file: at.Filename, line: at.Line}]
	if covered {
		p.audit.hit(markerAt)
	}
	return covered
}

// RunModuleAnalyzers applies the module analyzers and returns the
// combined diagnostics in deterministic order. audit may be nil.
func RunModuleAnalyzers(m *Module, analyzers []*ModuleAnalyzer, audit *MarkerAudit) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &ModulePass{Analyzer: a, Module: m, diags: &diags, audit: audit}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// AllModule returns the module-analyzer suite in documentation order.
func AllModule() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{Lifecycle, ErrnoFlow, TraceReach, Ownership, LockCheck, RNGFlow, PhaseCheck}
}

// sortDiagnostics orders diagnostics by position then analyzer name.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
