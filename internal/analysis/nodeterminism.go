package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoDeterminism forbids the three ways wall-clock or scheduler
// nondeterminism leaks into the simulation, whose figures must be
// byte-identical at a fixed seed (the property PR 1 repaired after a
// map-order leak made redis+klocs runs vary, and the trace plane's
// exports promise outright):
//
//   - wall-clock time: time.Now, time.Sleep, and friends — the
//     simulator runs in virtual time only. The single sanctioned
//     exception is a time.Now call under a //klocs:wallclock marker:
//     the perf harness (PERFORMANCE.md) must read the wall clock to
//     measure real throughput, and injects that reading through a
//     clock function so measurement never leaks into simulation state;
//   - ambient randomness: importing math/rand or math/rand/v2 —
//     internal/sim's seeded RNG is the only sanctioned source;
//   - map-iteration order: ranging over a map is flagged unless the
//     loop provably cannot let the order escape — the body is a
//     commutative accumulation, or it only collects elements that the
//     very next statement sorts — or the site carries a
//     //klocs:unordered marker with its justification.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock time, global math/rand, and map-iteration order escaping into state or output",
	Run:  runNoDeterminism,
}

// forbiddenTimeFuncs are the wall-clock and real-sleep entry points of
// package time. Types (time.Duration) and pure constructors remain
// usable.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

func runNoDeterminism(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(), "import of %s: ambient randomness breaks run reproducibility; draw from internal/sim's seeded RNG instead", imp.Path.Value)
			}
		}
	}
	inspectFiles(pass.Pkg, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		if forbiddenTimeFuncs[fn.Name()] {
			// Marked comes last, and only for time.Now: the diagnostic is
			// certain here, so a positive answer proves the marker still
			// suppresses something (the suppression audit depends on that
			// ordering). Sleeps and timers have no measurement use and stay
			// forbidden outright.
			if fn.Name() == "Now" && pass.Marked("wallclock", sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(), "call to time.%s: the simulator runs in virtual time (sim.Engine); wall-clock reads are nondeterministic", fn.Name())
		}
		return true
	})
	checkMapRanges(pass)
	return nil
}

// checkMapRanges walks statement lists so each range statement can see
// its successor (the collect-then-sort idiom needs it).
func checkMapRanges(pass *Pass) {
	inspectFiles(pass.Pkg, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i, stmt := range list {
			rs, ok := stmt.(*ast.RangeStmt)
			if !ok {
				continue
			}
			tv, ok := pass.Pkg.Info.Types[rs.X]
			if !ok {
				continue
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				continue
			}
			var next ast.Stmt
			if i+1 < len(list) {
				next = list[i+1]
			}
			checkOneMapRange(pass, rs, next)
		}
		return true
	})
}

func checkOneMapRange(pass *Pass, rs *ast.RangeStmt, next ast.Stmt) {
	c := &orderChecker{info: pass.Pkg.Info, locals: make(map[types.Object]bool)}
	c.noteRangeVars(rs)
	if c.commutativeBody(rs.Body) {
		return
	}
	// Collect-then-sort: the body only appends map elements to slices,
	// and the statement immediately after the loop sorts.
	if c.collectBody(rs.Body) && isSortCall(pass.Pkg.Info, next) {
		return
	}
	// Marked comes last: the diagnostic is certain here, so a positive
	// answer proves the marker still suppresses something (the
	// suppression audit depends on that ordering).
	if pass.Marked("unordered", rs.Pos()) {
		return
	}
	pass.Reportf(rs.Pos(), "range over map: iteration order is nondeterministic and the body lets it escape; sort the keys first, keep the body commutative, or annotate //klocs:unordered with a justification")
}

// orderChecker decides whether a map-range body is provably
// order-insensitive.
type orderChecker struct {
	info *types.Info
	// locals are objects assignable freely inside the body: the range
	// variables and anything the body itself declares.
	locals map[types.Object]bool
	// key is the range key object, if any: plain assignment to an index
	// expression is order-safe only when the index depends on it
	// (distinct iterations write distinct elements).
	key types.Object
}

func (c *orderChecker) noteRangeVars(rs *ast.RangeStmt) {
	if rs.Tok != token.DEFINE {
		return
	}
	if id, ok := rs.Key.(*ast.Ident); ok {
		if obj := c.info.Defs[id]; obj != nil {
			c.locals[obj] = true
			c.key = obj
		}
	}
	if id, ok := rs.Value.(*ast.Ident); ok {
		if obj := c.info.Defs[id]; obj != nil {
			c.locals[obj] = true
		}
	}
}

// commutativeBody reports whether every statement is an
// order-insensitive update: commutative compound assignments,
// assignments to body-locals or key-indexed elements, deletes, and
// pure control flow around them.
func (c *orderChecker) commutativeBody(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if !c.okStmt(s) {
			return false
		}
	}
	return true
}

func (c *orderChecker) okStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return c.okAssign(s)
	case *ast.IncDecStmt:
		return c.pure(s.X)
	case *ast.ExprStmt:
		// delete(m, k) is the one call statement that commutes (distinct
		// keys, distinct entries).
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := c.info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return c.pureAll(call.Args)
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !c.okStmt(s.Init) {
			return false
		}
		if !c.pure(s.Cond) || !c.commutativeBody(s.Body) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return c.commutativeBody(e)
		case *ast.IfStmt:
			return c.okStmt(e)
		}
		return false
	case *ast.BlockStmt:
		return c.commutativeBody(s)
	case *ast.BranchStmt:
		return s.Label == nil && (s.Tok == token.BREAK || s.Tok == token.CONTINUE)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || !c.pureAll(vs.Values) {
				return false
			}
			for _, name := range vs.Names {
				if obj := c.info.Defs[name]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return true
	}
	return false
}

func (c *orderChecker) okAssign(s *ast.AssignStmt) bool {
	if !c.pureAll(s.Rhs) {
		return false
	}
	switch s.Tok {
	case token.DEFINE:
		for _, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				return false
			}
			if obj := c.info.Defs[id]; obj != nil {
				c.locals[obj] = true
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative/associative folds: every iteration contributes to
		// the same accumulator regardless of order. The targets' index
		// expressions must still be pure.
		return c.pureAll(s.Lhs)
	case token.ASSIGN:
		for _, lhs := range s.Lhs {
			if !c.okPlainTarget(lhs) {
				return false
			}
		}
		return true
	}
	return false
}

// okPlainTarget allows `x = v` only where x is a body-local (dies with
// the iteration) or an element keyed by the range key (each iteration
// writes a distinct element).
func (c *orderChecker) okPlainTarget(lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := c.info.Uses[lhs]
		return obj != nil && c.locals[obj]
	case *ast.IndexExpr:
		return c.pure(lhs.X) && c.pure(lhs.Index) && c.mentionsKey(lhs.Index)
	}
	return false
}

func (c *orderChecker) mentionsKey(e ast.Expr) bool {
	if c.key == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.info.Uses[id] == c.key {
			found = true
		}
		return !found
	})
	return found
}

// collectBody reports whether the body only gathers elements into
// slices via append — possibly behind pure `if` filters — plus
// order-insensitive statements, the shape the sorted-next-statement
// escape hatch accepts.
func (c *orderChecker) collectBody(body *ast.BlockStmt) bool {
	ok, saw := c.collectStmts(body.List)
	return ok && saw
}

func (c *orderChecker) collectStmts(list []ast.Stmt) (ok, sawAppend bool) {
	for _, s := range list {
		stOK, stSaw := c.collectStmt(s)
		if !stOK {
			return false, false
		}
		sawAppend = sawAppend || stSaw
	}
	return true, sawAppend
}

func (c *orderChecker) collectStmt(s ast.Stmt) (ok, sawAppend bool) {
	if c.okStmt(s) {
		return true, false
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false, false
		}
		call, isCall := s.Rhs[0].(*ast.CallExpr)
		if !isCall {
			return false, false
		}
		id, isIdent := call.Fun.(*ast.Ident)
		if !isIdent {
			return false, false
		}
		if b, isBuiltin := c.info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "append" {
			return false, false
		}
		return c.pureAll(call.Args), true
	case *ast.IfStmt:
		// A pure filter around collection: `if cond { out = append(..) }`.
		if s.Init != nil && !c.okStmt(s.Init) {
			return false, false
		}
		if !c.pure(s.Cond) {
			return false, false
		}
		okThen, sawThen := c.collectStmts(s.Body.List)
		if !okThen {
			return false, false
		}
		switch e := s.Else.(type) {
		case nil:
			return true, sawThen
		case *ast.BlockStmt:
			okElse, sawElse := c.collectStmts(e.List)
			return okElse, sawThen || sawElse
		case *ast.IfStmt:
			okElse, sawElse := c.collectStmt(e)
			return okElse, sawThen || sawElse
		}
		return false, false
	case *ast.BlockStmt:
		return c.collectStmts(s.List)
	}
	return false, false
}

// pure reports whether evaluating e involves no function calls other
// than builtins and type conversions — i.e. nothing whose side effects
// or results could depend on iteration order beyond the operands
// themselves.
func (c *orderChecker) pure(e ast.Expr) bool {
	if e == nil {
		return true
	}
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return ok
		}
		// Type conversions are value operations.
		if tv, has := c.info.Types[call.Fun]; has && tv.IsType() {
			return ok
		}
		if id, isIdent := call.Fun.(*ast.Ident); isIdent {
			if _, isBuiltin := c.info.Uses[id].(*types.Builtin); isBuiltin {
				return ok
			}
		}
		ok = false
		return false
	})
	return ok
}

func (c *orderChecker) pureAll(exprs []ast.Expr) bool {
	for _, e := range exprs {
		if !c.pure(e) {
			return false
		}
	}
	return true
}

// isSortCall reports whether stmt is a call into package sort or
// slices — the tail of the collect-then-sort idiom.
func isSortCall(info *types.Info, stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices"
}
