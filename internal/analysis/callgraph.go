package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the whole-module call graph the interprocedural
// analyzers (lifecycle, errnoflow, tracereach) run over. The graph is
// source-level, matching the loader: nodes are the module's declared
// functions, methods, and function literals; edges are resolved per
// call site. Three resolution strategies cover the module's idioms:
//
//   - static: direct calls to a named function or method;
//   - interface: calls through an interface-typed receiver resolve,
//     class-hierarchy-analysis style, to every module type whose
//     method set implements the interface (this is how the pressure
//     plane's Shrinker registrations and kobj release callbacks stay
//     visible to the analyzers);
//   - dynamic: calls through function-typed values (RunConfig hooks,
//     struct fields, locals). These get no callee edges; instead every
//     function whose value is taken somewhere is recorded as a Ref of
//     the taking function, so reachability treats storing a hook as
//     keeping its target alive — the same over-approximation Go's
//     deadcode tool makes.
//
// Bottom-up traversal for summary fixpoints comes from Tarjan SCCs,
// which this implementation emits callee-first.

// CallKind classifies how a call site was resolved.
type CallKind uint8

// Call site kinds.
const (
	// CallStatic is a direct call to a known function or method.
	CallStatic CallKind = iota
	// CallInterface is a call through an interface method, resolved to
	// the module implementations by class-hierarchy analysis.
	CallInterface
	// CallDynamic is a call through a function-typed value; targets are
	// unknown (covered by Refs-based reachability).
	CallDynamic
	// CallExternal targets a function outside the analyzed module
	// (standard library or unexported runtime machinery).
	CallExternal
)

// A FuncNode is one function in the module call graph: a declared
// function or method (Obj/Decl set) or a function literal (Lit set).
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *Package

	// Calls lists the node's call sites in source order.
	Calls []*CallSite
	// Refs lists module functions whose value this function takes
	// without calling (method values, hook assignments, func idents
	// passed as arguments).
	Refs []*FuncNode
}

// A CallSite is one resolved call expression inside a function.
type CallSite struct {
	Call   *ast.CallExpr
	Caller *FuncNode
	Kind   CallKind
	// Callees are the resolved module targets: exactly one for
	// CallStatic, zero or more for CallInterface, none for
	// CallDynamic/CallExternal.
	Callees []*FuncNode
}

// Body returns the function's body block (nil for bodyless decls).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// Pos returns the function's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// String labels the node for diagnostics: "pkg.Func", "pkg.T.Method",
// or "pkg.func@line" for literals.
func (n *FuncNode) String() string {
	pkgName := ""
	if n.Pkg != nil {
		pkgName = n.Pkg.Types.Name() + "."
	}
	if n.Lit != nil {
		pos := n.Pkg.Fset.Position(n.Lit.Pos())
		return fmt.Sprintf("%sfunc@%d", pkgName, pos.Line)
	}
	if n.Obj != nil {
		if sig, ok := n.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			return pkgName + recvTypeName(sig) + "." + n.Obj.Name()
		}
		return pkgName + n.Obj.Name()
	}
	return pkgName + "?"
}

// recvTypeName names a method's receiver type, pointer stripped.
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// A CallGraph holds the module's functions and resolved call edges.
type CallGraph struct {
	// Nodes lists every function in deterministic (file, offset) order.
	Nodes []*FuncNode
	// PackageRefs are functions referenced from package-level
	// initializers (var blocks): alive as soon as the package loads.
	PackageRefs []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	// namedTypes are the module's package-level named types, for
	// class-hierarchy interface resolution.
	namedTypes []*types.Named
}

// NodeOf returns the graph node for a declared function or method.
func (g *CallGraph) NodeOf(obj *types.Func) *FuncNode { return g.byObj[obj] }

// NodeOfLit returns the graph node for a function literal.
func (g *CallGraph) NodeOfLit(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// BuildCallGraph constructs the call graph over the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byObj: make(map[*types.Func]*FuncNode),
		byLit: make(map[*ast.FuncLit]*FuncNode),
	}
	// Pass 1: nodes for every declared function and literal, and the
	// named-type universe for interface resolution.
	for _, pkg := range pkgs {
		g.collectNodes(pkg)
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				g.namedTypes = append(g.namedTypes, named)
			}
		}
	}
	sort.Slice(g.Nodes, func(i, j int) bool {
		a, b := g.Nodes[i].Pkg.Fset.Position(g.Nodes[i].Pos()), g.Nodes[j].Pkg.Fset.Position(g.Nodes[j].Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	// Pass 2: edges.
	for _, pkg := range pkgs {
		g.collectEdges(pkg)
	}
	return g
}

// collectNodes creates FuncNodes for every FuncDecl and FuncLit of pkg.
func (g *CallGraph) collectNodes(pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					return true
				}
				node := &FuncNode{Obj: obj, Decl: fn, Pkg: pkg}
				g.byObj[obj] = node
				g.Nodes = append(g.Nodes, node)
			case *ast.FuncLit:
				node := &FuncNode{Lit: fn, Pkg: pkg}
				g.byLit[fn] = node
				g.Nodes = append(g.Nodes, node)
			}
			return true
		})
	}
}

// collectEdges walks each file attributing calls and references to the
// innermost enclosing function node (or to PackageRefs at file scope).
func (g *CallGraph) collectEdges(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
				if !ok || d.Body == nil {
					continue
				}
				if node := g.byObj[obj]; node != nil {
					g.walkBody(pkg, node, d.Body)
				}
			case *ast.GenDecl:
				// Package-level initializers: function values referenced
				// here are alive from package load.
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						g.walkBody(pkg, nil, v)
					}
				}
			}
		}
	}
}

// walkBody visits one function body (or initializer expression),
// descending into nested literals with their own nodes.
func (g *CallGraph) walkBody(pkg *Package, node *FuncNode, root ast.Node) {
	// calleeIdents marks the exact identifier used as the callee of a
	// direct call, so it is not double-counted as a value reference.
	calleeIdents := make(map[*ast.Ident]bool)
	// ref attributes a taken function value to the innermost enclosing
	// function, or to the package's load-time references at file scope.
	ref := func(cur, target *FuncNode) {
		if target == nil {
			return
		}
		if cur == nil {
			g.PackageRefs = append(g.PackageRefs, target)
			return
		}
		cur.Refs = append(cur.Refs, target)
	}
	var walk func(n ast.Node, cur *FuncNode) bool
	walk = func(n ast.Node, cur *FuncNode) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := g.byLit[n]
			// The literal itself is a value the enclosing function takes.
			ref(cur, lit)
			ast.Inspect(n.Body, func(m ast.Node) bool { return walk(m, lit) })
			return false
		case *ast.CallExpr:
			g.resolveCall(pkg, cur, n, calleeIdents)
			return true
		case *ast.Ident:
			if calleeIdents[n] {
				return true
			}
			if fn, ok := pkg.Info.Uses[n].(*types.Func); ok {
				ref(cur, g.byObj[fn])
			}
			return true
		}
		return true
	}
	ast.Inspect(root, func(n ast.Node) bool { return walk(n, node) })
}

// resolveCall classifies one call site and attaches it to cur (calls
// at package scope only contribute refs through their arguments).
func (g *CallGraph) resolveCall(pkg *Package, cur *FuncNode, call *ast.CallExpr, calleeIdents map[*ast.Ident]bool) {
	site := &CallSite{Call: call, Caller: cur}
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		calleeIdents[f] = true
		switch obj := pkg.Info.Uses[f].(type) {
		case *types.Func:
			if target := g.byObj[obj]; target != nil {
				site.Kind, site.Callees = CallStatic, []*FuncNode{target}
			} else {
				site.Kind = CallExternal
			}
		case *types.Var:
			site.Kind = CallDynamic
		default:
			// Builtin, type conversion, or unresolved: not a call edge.
			return
		}
	case *ast.SelectorExpr:
		calleeIdents[f.Sel] = true
		if sel, ok := pkg.Info.Selections[f]; ok {
			switch sel.Kind() {
			case types.FieldVal:
				site.Kind = CallDynamic
			case types.MethodVal, types.MethodExpr:
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return
				}
				if types.IsInterface(sel.Recv()) {
					site.Kind = CallInterface
					site.Callees = g.implementersOf(sel.Recv(), fn.Name())
				} else if target := g.byObj[fn]; target != nil {
					site.Kind, site.Callees = CallStatic, []*FuncNode{target}
				} else {
					site.Kind = CallExternal
				}
			}
		} else {
			// Package-qualified: pkg.F(...) or pkg.Var(...).
			switch obj := pkg.Info.Uses[f.Sel].(type) {
			case *types.Func:
				if target := g.byObj[obj]; target != nil {
					site.Kind, site.Callees = CallStatic, []*FuncNode{target}
				} else {
					site.Kind = CallExternal
				}
			case *types.Var:
				site.Kind = CallDynamic
			default:
				return
			}
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: edge added after the walk reaches
		// the literal (its node exists already).
		if target := g.byLit[f]; target != nil {
			site.Kind, site.Callees = CallStatic, []*FuncNode{target}
		}
	default:
		// Conversions, index expressions over func slices, etc.
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return // type conversion
		}
		site.Kind = CallDynamic
	}
	if cur != nil {
		cur.Calls = append(cur.Calls, site)
	}
}

// implementersOf resolves an interface method to every module named
// type implementing the interface, class-hierarchy style.
func (g *CallGraph) implementersOf(recv types.Type, method string) []*FuncNode {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var targets []*FuncNode
	for _, named := range g.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			if target := g.byObj[fn]; target != nil {
				targets = append(targets, target)
			}
		}
	}
	return targets
}

// SCCs returns the strongly connected components of the call edges in
// bottom-up (callee-first) order — the traversal order for summary
// fixpoints. Tarjan's algorithm emits components in reverse
// topological order of the condensation, which is exactly that.
func (g *CallGraph) SCCs() [][]*FuncNode {
	index := make(map[*FuncNode]int, len(g.Nodes))
	lowlink := make(map[*FuncNode]int, len(g.Nodes))
	onStack := make(map[*FuncNode]bool, len(g.Nodes))
	var stack []*FuncNode
	var sccs [][]*FuncNode
	next := 0

	var strongconnect func(n *FuncNode)
	strongconnect = func(n *FuncNode) {
		index[n] = next
		lowlink[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, site := range n.Calls {
			for _, m := range site.Callees {
				if _, seen := index[m]; !seen {
					strongconnect(m)
					if lowlink[m] < lowlink[n] {
						lowlink[n] = lowlink[m]
					}
				} else if onStack[m] && index[m] < lowlink[n] {
					lowlink[n] = index[m]
				}
			}
		}
		if lowlink[n] == index[n] {
			var scc []*FuncNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range g.Nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}

// Reachable computes the functions reachable from roots, following
// call edges and value references (a stored hook keeps its target
// reachable). PackageRefs are implicitly rooted: package initializers
// run whenever the package loads.
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]bool {
	reached := make(map[*FuncNode]bool)
	var work []*FuncNode
	add := func(n *FuncNode) {
		if n != nil && !reached[n] {
			reached[n] = true
			work = append(work, n)
		}
	}
	for _, n := range roots {
		add(n)
	}
	for _, n := range g.PackageRefs {
		add(n)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, site := range n.Calls {
			for _, m := range site.Callees {
				add(m)
			}
		}
		for _, m := range n.Refs {
			add(m)
		}
	}
	return reached
}
