package analysis

import (
	"path/filepath"
	"sync"
	"testing"
)

// The loader type-checks the standard library from GOROOT sources, so
// all tests share one instance: dependencies check once per process.
var sharedLoader struct {
	once   sync.Once
	loader *Loader
	err    error
}

func testLoader(t *testing.T) *Loader {
	t.Helper()
	sharedLoader.once.Do(func() {
		sharedLoader.loader, sharedLoader.err = NewLoader(".")
	})
	if sharedLoader.err != nil {
		t.Fatalf("NewLoader: %v", sharedLoader.err)
	}
	return sharedLoader.loader
}

// checkFixture loads testdata/src/<name> and diffs the analyzer's
// diagnostics against the fixture's `// want` comments.
func checkFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.Load(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	problems, err := CheckExpectations(pkg, a)
	if err != nil {
		t.Fatalf("check fixture %s: %v", name, err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestNoDeterminismFixture(t *testing.T) { checkFixture(t, NoDeterminism, "nodeterminism") }
func TestErrnoCheckFixture(t *testing.T)    { checkFixture(t, ErrnoCheck, "errnocheck") }
func TestTraceNamesFixture(t *testing.T)    { checkFixture(t, TraceNames, "tracenames") }
func TestAllocPairFixture(t *testing.T)     { checkFixture(t, AllocPair, "allocpair") }

// TestModuleTargets checks the module enumeration finds the load-
// bearing packages and skips fixture trees.
func TestModuleTargets(t *testing.T) {
	l := testLoader(t)
	targets, err := ModuleTargets(l.ModuleDir, l.ModulePath)
	if err != nil {
		t.Fatalf("ModuleTargets: %v", err)
	}
	byPath := make(map[string]bool, len(targets))
	for _, tgt := range targets {
		byPath[tgt.ImportPath] = true
		if filepath.Base(filepath.Dir(tgt.Dir)) == "testdata" {
			t.Errorf("target %s is inside a testdata tree", tgt.Dir)
		}
	}
	for _, want := range []string{"kloc", "kloc/internal/fs", "kloc/internal/alloc", "kloc/cmd/klocbench", "kloc/cmd/kloclint"} {
		if !byPath[want] {
			t.Errorf("ModuleTargets missing %s (got %d targets)", want, len(targets))
		}
	}
}

// TestModuleIsClean runs the full suite — per-package analyzers, the
// interprocedural module analyzers, and the suppression audit — over
// every lintable package of the module: the in-test equivalent of
// `make lint` passing.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs := loadModulePackages(t)
	audit := NewMarkerAudit()
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := RunAnalyzersAudited(pkg, All(), audit)
		if err != nil {
			t.Fatalf("run %s: %v", pkg.Path, err)
		}
		all = append(all, diags...)
	}
	m := NewModule(pkgs)
	diags, err := RunModuleAnalyzers(m, AllModule(), audit)
	if err != nil {
		t.Fatalf("run module analyzers: %v", err)
	}
	all = append(all, diags...)
	all = append(all, AuditSuppressions(pkgs, audit)...)
	for _, d := range all {
		t.Errorf("%s", d)
	}
}

// TestMarkerCoversNextLine pins the marker placement rule the
// analyzers rely on: a standalone marker annotates the following line.
func TestMarkerCoversNextLine(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.Load(filepath.Join("testdata", "src", "nodeterminism"), "fixture/markers")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	pass := &Pass{Analyzer: NoDeterminism, Pkg: pkg, diags: new([]Diagnostic)}
	found := false
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !found && len(c.Text) > 2 && c.Text[:2] == "//" && containsMarker(c.Text) {
					if !pass.Marked("unordered", c.Pos()) {
						t.Errorf("marker does not cover its own line")
					}
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("fixture has no //klocs:unordered marker to test against")
	}
}

func containsMarker(text string) bool {
	const want = "//klocs:unordered"
	return len(text) >= len(want) && text[:len(want)] == want
}
