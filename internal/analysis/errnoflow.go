package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrnoFlow is the provenance half of the errno discipline. Where
// errnocheck (per-package) forbids *dropping* an error, this analyzer
// proves that every error which can escape one of the module's
// errno-speaking boundaries *derives from* the internal/fault
// vocabulary: it is a fault.Errno, a fault-plane constructor result,
// or a %w-wrap / errors.Join over such errors. A naked fmt.Errorf or
// errors.New at (or flowing to) a boundary launders an injected fault
// into an anonymous string — fault.IsErrno stops matching, the
// harness stops counting the operation as degraded-but-accounted, and
// the pressure plane's errno-keyed accounting goes blind. This is the
// sparse __must_check flow analog: the type system says "error", the
// analyzer proves which errors.
//
// Scope: the packages that speak errno (alloc, blockdev, fs, kernel,
// memsim, netsim, pressure). Reports land on the return statement
// that constructs or forwards the underivable error, which is where
// the fix goes. Deliberate exceptions carry //klocs:ignore-errno with
// a justification.
var ErrnoFlow = &ModuleAnalyzer{
	Name: "errnoflow",
	Doc:  "prove errors escaping errno-speaking boundaries derive from the internal/fault vocabulary",
	Run:  runErrnoFlow,
}

// errnoScopePaths lists the module packages whose API boundaries must
// speak errno. Test fixtures opt in through the "fixture/" prefix.
var errnoScopePaths = map[string]bool{
	"kloc/internal/alloc":    true,
	"kloc/internal/blockdev": true,
	"kloc/internal/cluster":  true,
	"kloc/internal/fs":       true,
	"kloc/internal/kernel":   true,
	"kloc/internal/memsim":   true,
	"kloc/internal/netsim":   true,
	"kloc/internal/pressure": true,
}

const faultPkgPath = "kloc/internal/fault"

func errnoInScope(path string) bool {
	return errnoScopePaths[path] || strings.HasPrefix(path, "fixture/") || strings.HasPrefix(path, "fixture.")
}

// errnoSummary says whether every error an escape path of the
// function produces derives from the fault vocabulary.
type errnoSummary struct {
	returnsError bool
	clean        bool
}

func errnoSummaryChanged(a, b errnoSummary) bool { return a != b }

// dirt explains why one return expression is not errno-derived.
type dirt struct {
	// local is a human-readable reason rooted in this function (naked
	// fmt.Errorf, external call, out-of-scope callee). Empty when the
	// only dirt flows from in-scope module callees.
	local string
	// callees are in-scope module functions whose dirty summaries the
	// expression forwards; their own return sites carry the report.
	callees []*FuncNode
}

func (d *dirt) isClean() bool { return d.local == "" && len(d.callees) == 0 }

func (d *dirt) merge(other dirt) {
	if d.local == "" {
		d.local = other.local
	}
	d.callees = append(d.callees, other.callees...)
}

func runErrnoFlow(pass *ModulePass) error {
	g := pass.Module.Graph
	compute := func(n *FuncNode, get func(*FuncNode) (errnoSummary, bool)) errnoSummary {
		ea := newErrnoAnalysis(n, get)
		if ea == nil {
			return errnoSummary{}
		}
		return ea.summarize()
	}
	summaries := FixpointSummaries(g, compute, errnoSummaryChanged)
	getFinal := func(n *FuncNode) (errnoSummary, bool) {
		s, ok := summaries[n]
		return s, ok
	}

	// A function's dirty returns matter only when its error can reach
	// an errno-speaking boundary: exported functions of the in-scope
	// packages seed the set, and every error-returning callee of a
	// boundary-reaching function joins it.
	reaching := boundaryReaching(g)

	for _, n := range g.Nodes {
		if n.Pkg == nil || !errnoInScope(n.Pkg.Path) || !reaching[n] {
			continue
		}
		ea := newErrnoAnalysis(n, getFinal)
		if ea == nil {
			continue
		}
		for _, site := range ea.returnSites() {
			d := ea.classifyExpr(site.expr, 0)
			if d.isClean() {
				continue
			}
			if d.local == "" {
				// Dirt flows only from in-scope, boundary-reaching module
				// callees: their own return sites carry the report.
				forwarded := true
				for _, callee := range d.callees {
					if callee.Pkg == nil || !errnoInScope(callee.Pkg.Path) || !reaching[callee] {
						forwarded = false
						d.local = fmt.Sprintf("error forwarded from %s, which does not carry an errno", callee.String())
						break
					}
				}
				if forwarded {
					continue
				}
			}
			if pass.Marked(errnoMarker, site.stmt.Pos()) {
				continue
			}
			pass.Reportf(site.stmt.Pos(), "error escaping errno boundary does not derive from the internal/fault vocabulary: %s (wrap the cause with a fault errno via %%w, or annotate //klocs:ignore-errno)", d.local)
		}
	}
	return nil
}

// boundaryReaching computes the functions whose error results can
// flow to an in-scope exported boundary, over-approximating by
// following static and interface call edges from the boundaries.
func boundaryReaching(g *CallGraph) map[*FuncNode]bool {
	reaching := make(map[*FuncNode]bool)
	var work []*FuncNode
	add := func(n *FuncNode) {
		if n != nil && !reaching[n] {
			reaching[n] = true
			work = append(work, n)
		}
	}
	for _, n := range g.Nodes {
		if n.Obj == nil || n.Pkg == nil || !errnoInScope(n.Pkg.Path) {
			continue
		}
		if n.Obj.Exported() && funcReturnsError(n.Obj) {
			add(n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, site := range n.Calls {
			for _, m := range site.Callees {
				if m.Obj != nil && funcReturnsError(m.Obj) {
					add(m)
				} else if m.Lit != nil && funcLitReturnsError(m) {
					add(m)
				}
			}
		}
	}
	return reaching
}

func funcReturnsError(fn *types.Func) bool { return errorResultIndex(fn) >= 0 }

func funcLitReturnsError(n *FuncNode) bool {
	if n.Lit == nil || n.Lit.Type.Results == nil {
		return false
	}
	info := n.Pkg.Info
	for _, f := range n.Lit.Type.Results.List {
		if tv, ok := info.Types[f.Type]; ok && isErrorType(tv.Type) {
			return true
		}
	}
	return false
}

// errnoAnalysis classifies error provenance within one function.
type errnoAnalysis struct {
	n    *FuncNode
	info *types.Info
	cfg  *CFG
	rd   *ReachingDefs
	get  func(*FuncNode) (errnoSummary, bool)

	// allDefs is the flow-insensitive fallback for identifiers whose
	// precise program point is unavailable (definitions referenced from
	// other definitions' right-hand sides).
	allDefs map[*types.Var][]*Def
	// visiting breaks provenance cycles (err = fmt.Errorf("…: %w", err)
	// inside a loop): an in-progress definition is optimistically clean,
	// the standard treatment for derives-from fixpoints.
	visiting map[*Def]bool
	memo     map[*Def]dirt
}

func newErrnoAnalysis(n *FuncNode, get func(*FuncNode) (errnoSummary, bool)) *errnoAnalysis {
	body := n.Body()
	if body == nil {
		return nil
	}
	cfg := NewCFG(body)
	if !cfg.OK {
		return nil
	}
	var ftype *ast.FuncType
	var recv *ast.FieldList
	if n.Decl != nil {
		ftype, recv = n.Decl.Type, n.Decl.Recv
	} else if n.Lit != nil {
		ftype = n.Lit.Type
	}
	ea := &errnoAnalysis{
		n:        n,
		info:     n.Pkg.Info,
		cfg:      cfg,
		rd:       NewReachingDefs(cfg, n.Pkg.Info, ftype, recv),
		get:      get,
		allDefs:  make(map[*types.Var][]*Def),
		visiting: make(map[*Def]bool),
		memo:     make(map[*Def]dirt),
	}
	for _, b := range cfg.Blocks {
		for _, s := range b.Stmts {
			// Shares the reaching-defs cache so *Def identities line up
			// with At/AtExit results (memoization depends on it).
			for _, d := range ea.rd.stmtDefsCached(s) {
				ea.allDefs[d.Var] = append(ea.allDefs[d.Var], d)
			}
		}
	}
	return ea
}

// errnoReturnSite is one return statement's error-typed expression.
type errnoReturnSite struct {
	stmt *ast.ReturnStmt
	expr ast.Expr
}

// returnSites collects the error-typed expressions of every return.
func (ea *errnoAnalysis) returnSites() []errnoReturnSite {
	var sites []errnoReturnSite
	for _, b := range ea.cfg.Blocks {
		if b.Return == nil {
			continue
		}
		for _, e := range b.Return.Results {
			tv, ok := ea.info.Types[e]
			if !ok || !isErrorType(tv.Type) {
				continue
			}
			sites = append(sites, errnoReturnSite{stmt: b.Return, expr: e})
		}
	}
	return sites
}

// summarize derives the function's errno summary.
func (ea *errnoAnalysis) summarize() errnoSummary {
	sites := ea.returnSites()
	sum := errnoSummary{returnsError: len(sites) > 0, clean: true}
	for _, site := range sites {
		d := ea.classifyExpr(site.expr, 0)
		if !d.isClean() {
			sum.clean = false
			return sum
		}
	}
	return sum
}

const errnoMaxDepth = 24

// classifyExpr decides whether e provably derives from the fault
// vocabulary, and if not, why.
func (ea *errnoAnalysis) classifyExpr(e ast.Expr, depth int) dirt {
	if e == nil || depth > errnoMaxDepth {
		return dirt{}
	}
	e = ast.Unparen(e)
	// A value whose static type is fault.Errno is the vocabulary.
	if tv, ok := ea.info.Types[e]; ok && isFaultErrno(tv.Type) {
		return dirt{}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if _, isNil := ea.info.Uses[e].(*types.Nil); isNil {
			return dirt{}
		}
		v, _ := ea.info.Uses[e].(*types.Var)
		if v == nil {
			return dirt{}
		}
		return ea.classifyVarUse(e, v, depth)
	case *ast.CallExpr:
		return ea.classifyCall(e, depth)
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.TypeAssertExpr, *ast.StarExpr:
		// Field loads and friends: provenance unknown; stay quiet rather
		// than flag what the analysis cannot see.
		return dirt{}
	}
	return dirt{}
}

// classifyVarUse resolves an identifier through reaching definitions:
// flow-sensitive at its use point, flow-insensitive for definitions
// referenced from other definitions.
func (ea *errnoAnalysis) classifyVarUse(id *ast.Ident, v *types.Var, depth int) dirt {
	defs := ea.defsAtUse(id, v)
	if len(defs) == 0 {
		// Parameter, capture, or a point the dataflow cannot place:
		// unknown provenance stays quiet.
		return dirt{}
	}
	var d dirt
	for _, def := range defs {
		d.merge(ea.classifyDef(def, depth+1))
	}
	return d
}

// defsAtUse finds the definitions of v reaching the statement that
// contains id, falling back to every definition in the function.
func (ea *errnoAnalysis) defsAtUse(id *ast.Ident, v *types.Var) []*Def {
	for _, b := range ea.cfg.Blocks {
		for i, s := range b.Stmts {
			if s.Pos() <= id.Pos() && id.End() <= s.End() {
				return ea.rd.At(b, i, v)
			}
		}
		if b.Cond != nil && b.Cond.Pos() <= id.Pos() && id.End() <= b.Cond.End() {
			return ea.rd.AtExit(b, v)
		}
	}
	return ea.allDefs[v]
}

// classifyDef decides whether one definition is errno-derived.
func (ea *errnoAnalysis) classifyDef(def *Def, depth int) dirt {
	if d, ok := ea.memo[def]; ok {
		return d
	}
	if ea.visiting[def] {
		return dirt{} // optimistic: cycles resolve clean
	}
	ea.visiting[def] = true
	var d dirt
	switch {
	case def.Zero:
		// var err error / parameter: nil or caller-supplied — quiet.
	case def.Call != nil:
		d = ea.classifyCall(def.Call, depth+1)
	case def.Rhs != nil:
		d = ea.classifyExpr(def.Rhs, depth+1)
	}
	delete(ea.visiting, def)
	ea.memo[def] = d
	return d
}

// classifyCall decides whether a call's error result is errno-derived.
func (ea *errnoAnalysis) classifyCall(call *ast.CallExpr, depth int) dirt {
	if tv, ok := ea.info.Types[call]; ok && isFaultErrno(tv.Type) {
		return dirt{}
	}
	fn := calleeFunc(ea.info, call)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case faultPkgPath:
			// Every fault-plane constructor speaks errno by construction.
			return dirt{}
		case "fmt":
			if fn.Name() == "Errorf" {
				return ea.classifyErrorf(call, depth)
			}
		case "errors":
			switch fn.Name() {
			case "New":
				return dirt{local: "errors.New creates an anonymous error"}
			case "Join":
				return ea.classifyErrorArgs(call, depth)
			}
		}
	}
	// Module callees: defer to their summaries.
	site := ea.siteFor(call)
	if site != nil {
		switch site.Kind {
		case CallStatic, CallInterface:
			if len(site.Callees) == 0 {
				return dirt{local: fmt.Sprintf("error from unresolvable interface call %s", calleeName(call))}
			}
			var d dirt
			for _, callee := range site.Callees {
				sum, ok := ea.get(callee)
				if !ok {
					continue // in-cycle: optimistic
				}
				if !sum.clean {
					d.callees = append(d.callees, callee)
				}
			}
			return d
		case CallDynamic:
			// Hook or stored func value: provenance unknown — quiet, the
			// hook's own body is analyzed where it is defined.
			return dirt{}
		}
	}
	if fn != nil {
		return dirt{local: fmt.Sprintf("error from external call %s not wrapped with a fault errno", calleeLabel(fn))}
	}
	return dirt{}
}

// classifyErrorf handles fmt.Errorf: with a %w verb it derives from
// its error operands; without one it launders them into a string.
func (ea *errnoAnalysis) classifyErrorf(call *ast.CallExpr, depth int) dirt {
	if len(call.Args) == 0 {
		return dirt{local: "fmt.Errorf without arguments"}
	}
	tv, ok := ea.info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		// Non-constant format: cannot prove a %w — treat as laundering.
		return dirt{local: "fmt.Errorf with non-constant format cannot prove %w wrapping"}
	}
	format := constant.StringVal(tv.Value)
	if !strings.Contains(format, "%w") {
		return dirt{local: "fmt.Errorf without %w severs the errno chain"}
	}
	return ea.classifyErrorArgs(call, depth)
}

// classifyErrorArgs classifies every error-typed argument of a call
// (the operands a %w or errors.Join forwards).
func (ea *errnoAnalysis) classifyErrorArgs(call *ast.CallExpr, depth int) dirt {
	var d dirt
	for _, arg := range call.Args {
		tv, ok := ea.info.Types[arg]
		if !ok || !isErrorType(tv.Type) {
			continue
		}
		d.merge(ea.classifyExpr(arg, depth+1))
	}
	return d
}

// siteFor finds the resolved call site for a call expression.
func (ea *errnoAnalysis) siteFor(call *ast.CallExpr) *CallSite {
	for _, site := range ea.n.Calls {
		if site.Call == call {
			return site
		}
	}
	return nil
}

// calleeFunc resolves the called *types.Func, module or not.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isFaultErrno reports whether t is kloc/internal/fault.Errno.
func isFaultErrno(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Errno" && obj.Pkg() != nil && obj.Pkg().Path() == faultPkgPath
}
