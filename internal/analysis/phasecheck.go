package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PhaseCheck is the execution-phase discipline checker gating the
// sharded engine (DESIGN.md §15): where the ownership analyzer says
// who may touch each piece of state, phasecheck says *when* code runs
// — and rejects the combinations that would race on a parallel
// engine. Every function gets a phase mask, seeded structurally and
// propagated caller-to-callee over the whole-module call graph:
//
//   - lane:    code running on one shard's worker during an epoch.
//     Seeded by shape — any function, method, or literal with
//     signature func(*sim.Engine) is an event callback the engine
//     fires on its lane — and by a //klocs:phase=lane pin.
//   - barrier: coordinator code running between epochs while every
//     lane is quiescent. Seeded by registration — arguments to
//     (*sim.Lanes).AtBarrier — and by a //klocs:phase=barrier pin.
//   - init:    single-goroutine construction (the ownership
//     analyzer's init-phase closure: New*/new*/init and their
//     private helpers), or a //klocs:phase=init pin.
//
// A callee inherits every caller's phase, and so does a function
// whose value a phased function takes (a stored hook runs in its
// taker's phase); a declared //klocs:phase= pin stops inheritance at
// that function — the pin is an assertion, and the rules below hold
// the pinned function to it. Because phase inheritance and
// reachability are the same fixpoint, everything reachable from a
// lane root carries the lane bit by construction: there is no
// "unknown phase" escape hatch.
//
// The rules (init-phase functions are exempt from the write rules —
// a freshly constructed object is unshared at birth):
//
//  1. owner=epoch state must not be touched from lane-phase code:
//     epoch state changes only at barrier quiescence.
//  2. owner=lane state must not be written by a function reachable
//     from both lane and barrier phase without a pin: the write is
//     phase-ambiguous, so split the helper or pin it.
//  3. a declared phase=barrier function must not be called (or have
//     its value taken) from lane-phase code: barriers require every
//     lane parked, so a lane-initiated barrier is a deadlock or a
//     race by construction.
//  4. a lane-owned pointer (pointer/slice/map-typed owner=lane state)
//     must not be published from lane code to epoch or shared state,
//     package vars, channels, or callees that retain it: cross-lane
//     aliasing breaks lane confinement. Handoff belongs at a barrier.
//
// The analysis is syntactic like the ownership write inference and
// shares its machinery (state inventory, alias-aware lvalue
// resolution, init closure); publication through untracked raw
// pointers or returns is knowingly invisible. //klocs:ignore-phasecheck
// suppresses one audited diagnostic.
var PhaseCheck = &ModuleAnalyzer{
	Name: "phasecheck",
	Doc:  "enforce lane/barrier/init phase discipline over the ownership classes",
	Run:  runPhaseCheck,
}

// phaseCheckMarker suppresses one phasecheck diagnostic, audited.
const phaseCheckMarker = "ignore-phasecheck"

// phaseMask is a set of execution phases a function may run in.
type phaseMask uint8

const (
	phaseLane phaseMask = 1 << iota
	phaseBarrier
	phaseInit
)

// phaseMarkers maps pin markers to masks, in lookup priority order.
var phaseMarkers = [...]struct {
	name string
	mask phaseMask
}{
	{"phase=lane", phaseLane},
	{"phase=barrier", phaseBarrier},
	{"phase=init", phaseInit},
}

func runPhaseCheck(pass *ModulePass) error {
	m := pass.Module
	g := m.Graph

	// Declared pins: the marker covers the func/method/literal line.
	declared := make(map[*FuncNode]phaseMask)
	for _, n := range g.Nodes {
		for _, pm := range phaseMarkers {
			if pass.Marked(pm.name, n.Pos()) {
				declared[n] = pm.mask
				break
			}
		}
	}

	phases := make(map[*FuncNode]phaseMask, len(declared))
	var work []*FuncNode
	seed := func(n *FuncNode, mask phaseMask) {
		if n == nil || declared[n] != 0 {
			return
		}
		if phases[n]&mask == mask {
			return
		}
		phases[n] |= mask
		work = append(work, n)
	}

	// Structural roots: engine event callbacks are lane, AtBarrier
	// registrations are barrier, the ownership init closure is init.
	for _, n := range g.Nodes {
		if isLaneCallback(n) {
			seed(n, phaseLane)
		}
		for _, site := range n.Calls {
			if !isAtBarrierCall(n.Pkg.Info, site) {
				continue
			}
			for _, arg := range site.Call.Args {
				seed(funcArgNode(g, n.Pkg.Info, arg), phaseBarrier)
			}
		}
	}
	initFns := initPhaseNodes(g)
	for _, n := range g.Nodes {
		if initFns[n] {
			seed(n, phaseInit)
		}
	}
	for _, n := range g.Nodes {
		if mask := declared[n]; mask != 0 {
			phases[n] = mask
			work = append(work, n)
		}
	}

	// Propagate to a fixpoint: callees and taken values inherit the
	// caller's phases, stopping at declared pins.
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		mask := phases[n]
		if mask == 0 {
			continue
		}
		for _, site := range n.Calls {
			for _, c := range site.Callees {
				seed(c, mask)
			}
		}
		for _, r := range n.Refs {
			seed(r, mask)
		}
	}

	inv := ownershipInventory(m, pass.Marked)
	classOf := make(map[*types.Var]ownerClass, len(inv))
	labelOf := make(map[*types.Var]string, len(inv))
	for i := range inv {
		classOf[inv[i].v] = inv[i].class
		labelOf[inv[i].v] = inv[i].label
	}

	// Rules 1 and 2: write-site phase checks. One report per write
	// position; epoch violations outrank ambiguity when both apply.
	writes := collectStateWrites(m)
	var written []*types.Var
	for v := range writes {
		if classOf[v] == ownerLane || classOf[v] == ownerEpoch {
			written = append(written, v)
		}
	}
	sort.Slice(written, func(i, j int) bool { return written[i].Pos() < written[j].Pos() })
	reported := make(map[token.Pos]bool)
	for _, v := range written {
		class := classOf[v]
		ws := append([]stateWrite(nil), writes[v]...)
		sort.Slice(ws, func(i, j int) bool { return ws[i].pos < ws[j].pos })
		for _, w := range ws {
			if w.fn == nil || initFns[w.fn] || reported[w.pos] {
				continue
			}
			mask := phases[w.fn]
			switch {
			case class == ownerEpoch && mask&phaseLane != 0:
				reported[w.pos] = true
				if !pass.Marked(phaseCheckMarker, w.pos) {
					pass.Reportf(w.pos, "%s (owner=epoch) is touched by %s, which runs in lane phase: epoch state may change only at barrier quiescence", labelOf[v], w.fn)
				}
			case class == ownerLane && mask&phaseLane != 0 && mask&phaseBarrier != 0 && declared[w.fn] == 0:
				reported[w.pos] = true
				if !pass.Marked(phaseCheckMarker, w.pos) {
					pass.Reportf(w.pos, "%s (owner=lane) is written by %s, which is reachable from both lane and barrier phase: the write is phase-ambiguous — split the helper or pin it with //klocs:phase=<lane|barrier>", labelOf[v], w.fn)
				}
			}
		}
	}

	// Rule 3: declared barrier functions are unreachable from lanes.
	for _, n := range g.Nodes {
		if phases[n]&phaseLane == 0 || initFns[n] {
			continue
		}
		for _, site := range n.Calls {
			for _, c := range site.Callees {
				if declared[c]&phaseBarrier == 0 {
					continue
				}
				if !pass.Marked(phaseCheckMarker, site.Call.Pos()) {
					pass.Reportf(site.Call.Pos(), "%s (declared //klocs:phase=barrier) is called from lane-phase code (%s): barriers need every lane parked — post the work to the coordinator instead", c, n)
				}
			}
		}
		for _, r := range n.Refs {
			if declared[r]&phaseBarrier == 0 {
				continue
			}
			if !pass.Marked(phaseCheckMarker, n.Pos()) {
				pass.Reportf(n.Pos(), "lane-phase %s takes the value of %s (declared //klocs:phase=barrier): a stored barrier hook could fire while lanes run", n, r)
			}
		}
	}

	// Rule 4: lane-owned pointers stay on their lane.
	pubs := FixpointSummaries(g, func(n *FuncNode, get func(*FuncNode) (pubSummary, bool)) pubSummary {
		return computePubSummary(n, classOf, get)
	}, func(old, new pubSummary) bool { return !old.eq(new) })
	for _, n := range g.Nodes {
		if phases[n]&phaseLane == 0 || initFns[n] {
			continue
		}
		checkLanePublication(pass, n, classOf, labelOf, pubs)
	}
	return nil
}

// isLaneCallback reports whether n has the engine event-callback
// shape func(*sim.Engine): the engine fires these on its lane, so the
// shape itself is the phase declaration.
func isLaneCallback(n *FuncNode) bool {
	var sig *types.Signature
	if n.Obj != nil {
		sig, _ = n.Obj.Type().(*types.Signature)
	} else if n.Lit != nil {
		if t := n.Pkg.Info.TypeOf(n.Lit); t != nil {
			sig, _ = t.(*types.Signature)
		}
	}
	if sig == nil || sig.Results().Len() != 0 || sig.Params().Len() != 1 {
		return false
	}
	return isEngineType(sig.Params().At(0).Type())
}

// isEngineType reports whether t is *sim.Engine. Fixture packages may
// declare their own Engine stand-in.
func isEngineType(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isSimNamed(p.Elem(), "Engine")
}

// isSimNamed reports whether t is the named simulator type (or a
// fixture stand-in of the same name).
func isSimNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "kloc/internal/sim" || ownershipInScope(obj.Pkg().Path())
}

// isAtBarrierCall reports whether site is (*sim.Lanes).AtBarrier —
// the registration that makes its arguments barrier-phase roots.
func isAtBarrierCall(info *types.Info, site *CallSite) bool {
	sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "AtBarrier" {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	return isSimNamed(recv, "Lanes")
}

// funcArgNode resolves a call argument to the function node it names:
// a literal, a plain function ident, or a selected method value.
func funcArgNode(g *CallGraph, info *types.Info, arg ast.Expr) *FuncNode {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return g.NodeOfLit(a)
	case *ast.Ident:
		if fn, ok := info.Uses[a].(*types.Func); ok {
			return g.NodeOf(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[a.Sel].(*types.Func); ok {
			return g.NodeOf(fn)
		}
	}
	return nil
}

// phasePointerish reports whether values of t alias storage: only
// these can carry a lane's state across a publication.
func phasePointerish(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// pubSummary summarizes whether a function publishes its receiver or
// parameters — stores them into epoch/shared/package-var state, sends
// them on a channel, wraps them in a composite, or passes them to a
// callee that does. Joined bottom-up over SCCs like rngSummary.
type pubSummary struct {
	recvPub  bool
	paramPub []bool
}

func (s pubSummary) eq(o pubSummary) bool {
	if s.recvPub != o.recvPub || len(s.paramPub) != len(o.paramPub) {
		return false
	}
	for i := range s.paramPub {
		if s.paramPub[i] != o.paramPub[i] {
			return false
		}
	}
	return true
}

// funcParamVars returns n's receiver and parameter variables in
// declaration order; unnamed entries are nil (nothing to track).
func funcParamVars(n *FuncNode) (recv *types.Var, params []*types.Var) {
	info := n.Pkg.Info
	grab := func(fl *ast.FieldList) []*types.Var {
		if fl == nil {
			return nil
		}
		var out []*types.Var
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range f.Names {
				v, _ := info.Defs[name].(*types.Var)
				out = append(out, v)
			}
		}
		return out
	}
	switch {
	case n.Decl != nil:
		if rs := grab(n.Decl.Recv); len(rs) > 0 {
			recv = rs[0]
		}
		params = grab(n.Decl.Type.Params)
	case n.Lit != nil:
		params = grab(n.Lit.Type.Params)
	}
	return recv, params
}

// computePubSummary decides which of n's pointerish inputs escape into
// state another lane could reach.
func computePubSummary(n *FuncNode, classOf map[*types.Var]ownerClass, get func(*FuncNode) (pubSummary, bool)) pubSummary {
	var sum pubSummary
	recv, params := funcParamVars(n)
	sum.paramPub = make([]bool, len(params))
	body := n.Body()
	if body == nil {
		return sum
	}
	info := n.Pkg.Info
	// tracked maps a variable holding (an alias of) an input to the
	// input's index: -1 for the receiver, else the parameter slot.
	tracked := make(map[*types.Var]int)
	if recv != nil && phasePointerish(recv.Type()) {
		tracked[recv] = -1
	}
	for i, p := range params {
		if p != nil && phasePointerish(p.Type()) {
			tracked[p] = i
		}
	}
	if len(tracked) == 0 {
		return sum
	}
	mark := func(idx int) {
		if idx < 0 {
			sum.recvPub = true
		} else {
			sum.paramPub[idx] = true
		}
	}
	trackedIn := func(e ast.Expr) (int, bool) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				if idx, ok := tracked[v]; ok {
					return idx, true
				}
			}
		}
		return 0, false
	}
	sites := calleeSites(n)
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			// The literal is its own node with its own summary.
			return false
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				// Aliasing define: the new local inherits tracking.
				for i := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					if idx, ok := trackedIn(x.Rhs[i]); ok {
						if id, ok := x.Lhs[i].(*ast.Ident); ok {
							if v, ok := info.Defs[id].(*types.Var); ok {
								tracked[v] = idx
							}
						}
					}
				}
				return true
			}
			for i := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				idx, ok := trackedIn(x.Rhs[i])
				if !ok {
					continue
				}
				for _, tv := range stateRefs(info, nil, x.Lhs[i], false) {
					if isPublicationTarget(tv, classOf) {
						mark(idx)
						break
					}
				}
			}
		case *ast.SendStmt:
			if idx, ok := trackedIn(x.Value); ok {
				mark(idx)
			}
		case *ast.CompositeLit:
			// Wrapped in a value whose destiny we cannot track.
			for _, elt := range x.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if idx, ok := trackedIn(e); ok {
					mark(idx)
				}
			}
		case *ast.CallExpr:
			site := sites[x]
			if site == nil {
				return true
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					if idx, ok := trackedIn(sel.X); ok && calleesPublish(site, -1, get) {
						mark(idx)
					}
				}
			}
			for ai, arg := range x.Args {
				if idx, ok := trackedIn(arg); ok && calleesPublish(site, ai, get) {
					mark(idx)
				}
			}
		}
		return true
	})
	return sum
}

// isPublicationTarget reports whether storing into tv makes the value
// reachable outside the storing lane.
func isPublicationTarget(tv *types.Var, classOf map[*types.Var]ownerClass) bool {
	switch classOf[tv] {
	case ownerEpoch, ownerShared:
		return true
	}
	return isPackageVar(tv)
}

// calleesPublish reports whether any callee at site publishes the
// given input (arg index, or -1 for the receiver). A variadic tail
// collapses onto the callee's last parameter.
func calleesPublish(site *CallSite, idx int, get func(*FuncNode) (pubSummary, bool)) bool {
	for _, c := range site.Callees {
		sum, ok := get(c)
		if !ok {
			continue
		}
		if idx < 0 {
			if sum.recvPub {
				return true
			}
			continue
		}
		pi := idx
		if pi >= len(sum.paramPub) {
			pi = len(sum.paramPub) - 1
		}
		if pi >= 0 && sum.paramPub[pi] {
			return true
		}
	}
	return false
}

// calleeSites indexes n's call sites by their call expression.
func calleeSites(n *FuncNode) map[*ast.CallExpr]*CallSite {
	sites := make(map[*ast.CallExpr]*CallSite, len(n.Calls))
	for _, site := range n.Calls {
		sites[site.Call] = site
	}
	return sites
}

// checkLanePublication walks one lane-phase body and reports every
// point where a lane-owned pointer is published (rule 4).
func checkLanePublication(pass *ModulePass, n *FuncNode, classOf map[*types.Var]ownerClass, labelOf map[*types.Var]string, pubs map[*FuncNode]pubSummary) {
	body := n.Body()
	if body == nil {
		return
	}
	info := n.Pkg.Info
	aliases := localStateAliases(info, body)
	// laneSrc resolves an expression to the lane-owned pointerish
	// state it reads, through the same alias map the write inference
	// uses.
	laneSrc := func(e ast.Expr) *types.Var {
		if t := info.TypeOf(e); t == nil || !phasePointerish(t) {
			return nil
		}
		for _, v := range stateRefs(info, aliases, e, false) {
			if classOf[v] == ownerLane && phasePointerish(v.Type()) {
				return v
			}
		}
		return nil
	}
	sites := calleeSites(n)
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		if !pass.Marked(phaseCheckMarker, pos) {
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			// Its own node; it inherits lane phase via Refs and is
			// checked there.
			return false
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for i := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				src := laneSrc(x.Rhs[i])
				if src == nil {
					continue
				}
				for _, tv := range stateRefs(info, aliases, x.Lhs[i], false) {
					if isPublicationTarget(tv, classOf) {
						report(x.Pos(), "lane-owned pointer %s is published to %s by lane-phase %s: cross-lane aliasing breaks lane confinement — hand it off at a barrier or copy the data", labelOf[src], phaseStateLabel(tv, labelOf), n)
						break
					}
				}
			}
		case *ast.SendStmt:
			if src := laneSrc(x.Value); src != nil {
				report(x.Pos(), "lane-owned pointer %s is sent on a channel by lane-phase %s: the receiver may run on another lane — hand it off at a barrier or copy the data", labelOf[src], n)
			}
		case *ast.CallExpr:
			site := sites[x]
			if site == nil {
				return true
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					if src := laneSrc(sel.X); src != nil && calleesPublishFinal(site, -1, pubs) {
						report(x.Pos(), "lane-owned pointer %s is published by this call from lane-phase %s: the method retains its receiver beyond the lane", labelOf[src], n)
					}
				}
			}
			for ai, arg := range x.Args {
				if src := laneSrc(arg); src != nil && calleesPublishFinal(site, ai, pubs) {
					report(x.Pos(), "lane-owned pointer %s is passed to a callee that publishes it, from lane-phase %s: cross-lane aliasing breaks lane confinement", labelOf[src], n)
				}
			}
		}
		return true
	})
}

// calleesPublishFinal is calleesPublish over the completed summary
// map.
func calleesPublishFinal(site *CallSite, idx int, pubs map[*FuncNode]pubSummary) bool {
	return calleesPublish(site, idx, func(n *FuncNode) (pubSummary, bool) {
		sum, ok := pubs[n]
		return sum, ok
	})
}

// phaseStateLabel names a publication target: inventory label when
// classified, package-qualified name otherwise.
func phaseStateLabel(v *types.Var, labelOf map[*types.Var]string) string {
	if s, ok := labelOf[v]; ok {
		return s
	}
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}
