package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"

	"kloc/internal/trace"
)

// TraceNames requires every Tracer.Emit call site to pass a constant
// event name from the catalog registered in internal/trace. A typo'd
// or ad-hoc name would silently create an event no -trace-events
// pattern enables and no OBSERVABILITY.md section documents; a
// non-constant name defeats static auditing of the catalog entirely.
// The catalog is read from trace.Names() at analysis time, so adding
// an event means registering it once — the analyzer follows.
var TraceNames = &Analyzer{
	Name: "tracenames",
	Doc:  "require Tracer.Emit call sites to use constant names from the internal/trace catalog",
	Run:  runTraceNames,
}

// traceCatalog is the registered name set, materialized once from the
// live catalog so the analyzer can never drift from it.
var traceCatalog = func() map[string]bool {
	set := make(map[string]bool, len(trace.Names()))
	for _, n := range trace.Names() {
		set[string(n)] = true
	}
	return set
}()

func runTraceNames(pass *Pass) error {
	info := pass.Pkg.Info
	inspectFiles(pass.Pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || !isTracerEmit(fn) || len(call.Args) == 0 {
			return true
		}
		arg := call.Args[0]
		tv, ok := info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(arg.Pos(), "Tracer.Emit with non-constant event name: use a trace.Name constant from the internal/trace catalog so enables and documentation can find it")
			return true
		}
		name := constant.StringVal(tv.Value)
		if !traceCatalog[name] {
			pass.Reportf(arg.Pos(), "Tracer.Emit with unregistered event name %q: not in the internal/trace catalog (see trace.Names and OBSERVABILITY.md)", name)
		}
		return true
	})
	return nil
}

// isTracerEmit reports whether fn is the Emit method of
// kloc/internal/trace.Tracer.
func isTracerEmit(fn *types.Func) bool {
	if fn.Name() != "Emit" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tracer" && obj.Pkg() != nil && obj.Pkg().Path() == "kloc/internal/trace"
}
