package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("kloc/internal/fs"); testdata packages
	// get synthetic paths.
	Path string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files holds the parsed non-test sources, comments included.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module plus
// their standard-library dependencies. Module-internal imports resolve
// by path mapping against the module root; everything else goes
// through the compiler's source importer, which type-checks the
// standard library from GOROOT sources — no go tool invocation, no
// network, no export-data files. That keeps kloclint runnable in the
// same hermetic environment as the simulator itself.
type Loader struct {
	// ModuleDir is the absolute module root (the go.mod directory).
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset *token.FileSet
	std  types.ImporterFrom
	// pkgs memoizes type-checked packages by import path so shared
	// dependencies check once per loader.
	pkgs map[string]*types.Package
	// full memoizes module-internal packages with their syntax and
	// types.Info. Module packages are always checked in full so a
	// package loaded as a dependency and the same package loaded for
	// analysis share one set of type objects — the call graph resolves
	// cross-package references by object identity and would silently
	// classify every module call as external if the two loads diverged.
	full map[string]*Package
	// loading guards against import cycles.
	loading map[string]bool
}

// NewLoader builds a loader rooted at the module containing dir,
// reading the module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       make(map[string]*types.Package),
		full:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// type-checked from source under the module root; all other paths are
// delegated to the standard library's source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg := l.pkgs[path]; pkg != nil {
		return pkg, nil
	}
	moduleDir, ok := l.moduleDirOf(path)
	if !ok {
		pkg, err := l.std.ImportFrom(path, dir, mode)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	pkg, err := l.check(moduleDir, path, newTypesInfo())
	if err != nil {
		return nil, err
	}
	l.full[path] = pkg
	l.pkgs[path] = pkg.Types
	return pkg.Types, nil
}

// newTypesInfo allocates the info maps one full check populates.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// moduleDirOf maps a module-internal import path to its directory.
func (l *Loader) moduleDirOf(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Load parses and fully type-checks the package in dir as importPath,
// returning syntax and type information for analysis. Unlike Import,
// the result carries ASTs, comments, and a populated types.Info.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	// A module package already checked (directly or as a dependency of
	// an earlier target) is returned as-is: re-checking would mint a
	// second set of type objects and break cross-package identity.
	if pkg := l.full[importPath]; pkg != nil {
		return pkg, nil
	}
	pkg, err := l.check(dir, importPath, newTypesInfo())
	if err != nil {
		return nil, err
	}
	// Register so later targets importing this package reuse the
	// checked result instead of re-checking from source.
	if _, ok := l.moduleDirOf(importPath); ok {
		l.full[importPath] = pkg
		l.pkgs[importPath] = pkg.Types
	}
	return pkg, nil
}

// check parses the non-test sources of dir and type-checks them. When
// info is nil the package is being loaded as a dependency and only the
// types.Package is retained.
func (l *Loader) check(dir, importPath string, info *types.Info) (*Package, error) {
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// goFilesIn lists the buildable non-test Go files of dir in sorted
// order, applying the default build constraints.
func goFilesIn(dir string) ([]string, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	return names, nil
}

// ModuleTargets enumerates the lintable package directories of the
// module rooted at root: every directory holding buildable non-test Go
// files, skipping testdata trees (analyzer fixtures contain deliberate
// violations), hidden directories, and vendored code. Results are
// (dir, importPath) pairs in deterministic path order.
type Target struct {
	Dir        string
	ImportPath string
}

// ModuleTargets walks the module and returns its lintable packages.
func ModuleTargets(root, modPath string) ([]Target, error) {
	var targets []Target
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		name := fi.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := goFilesIn(path); err != nil {
			return nil // not a buildable package: keep walking
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		targets = append(targets, Target{Dir: path, ImportPath: ip})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return targets, nil
}
