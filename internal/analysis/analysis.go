// Package analysis is the simulator's invariant-enforcing static
// analysis suite — the checkpatch/sparse analog for this codebase. The
// whole reproduction rests on properties no compiler checks: runs must
// be deterministic in virtual time (the trace plane promises
// byte-identical exports at a fixed seed), errno-style errors from the
// fault plane must propagate instead of vanishing, trace events must
// come from the registered catalog, and every simulated allocation
// entry point needs a teardown path feeding kobj accounting.
//
// Four analyzers enforce those invariants over the module's source:
//
//   - nodeterminism: forbids wall-clock time, global math/rand, and
//     map-iteration order escaping into simulation state or output
//     (internal/sim's RNG is the only sanctioned randomness source);
//   - errnocheck: forbids silently discarding error returns from the
//     module's alloc/fs/blockdev/netsim/pressure paths;
//   - tracenames: every Tracer.Emit call site must use a constant name
//     from the catalog registered in internal/trace;
//   - allocpair: every allocation entry point has a matching
//     free/teardown path registered with kobj accounting.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic, a multichecker driver in
// cmd/kloclint, and testdata packages exercised the analysistest way)
// but is self-contained on the standard library's go/ast, go/types,
// and go/importer: the build environment is hermetic, so the suite
// must not pull module dependencies. Swapping the vendored framework
// for the x/tools one is a mechanical change if the dependency ever
// becomes available.
//
// False positives are silenced in place with marker comments, each of
// which should carry a justification:
//
//	//klocs:unordered        — this map range is order-insensitive
//	//klocs:ignore-errno     — this error is deliberately sunk
//	//klocs:ignore-allocpair — teardown happens through another path
//
// DESIGN.md §10 documents what each analyzer guards and its kernel
// analog; the runtime complement (the KASAN/kmemleak-analog sanitizer)
// lives in internal/alloc.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a loaded,
// type-checked package through the Pass and reports violations.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only flags.
	Name string
	// Doc is the one-line description shown by kloclint -list.
	Doc string
	// Run executes the check. Diagnostics go through pass.Reportf; the
	// error return is for analyzer-internal failures only.
	Run func(pass *Pass) error
}

// A Diagnostic is one reported violation, carried with its resolved
// file position so drivers can sort and print deterministically.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass connects one analyzer to one loaded package.
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the loaded package under analysis: syntax, type
	// information, and position data.
	Pkg *Package

	diags *[]Diagnostic
	// markers maps marker name -> file line numbers the marker covers,
	// built lazily from the package's comments.
	markers map[string]map[markerKey]bool
}

// markerKey identifies one covered source line.
type markerKey struct {
	file string
	line int
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Marked reports whether a "//klocs:<name>" marker comment covers the
// line of pos. A marker covers its own line (trailing comment) and,
// when it stands alone, the line after it — the same placement rules
// as nolint-style directives.
func (p *Pass) Marked(name string, pos token.Pos) bool {
	if p.markers == nil {
		p.markers = make(map[string]map[markerKey]bool)
	}
	set, ok := p.markers[name]
	if !ok {
		set = p.collectMarkers(name)
		p.markers[name] = set
	}
	at := p.Pkg.Fset.Position(pos)
	return set[markerKey{file: at.Filename, line: at.Line}]
}

func (p *Pass) collectMarkers(name string) map[markerKey]bool {
	set := make(map[markerKey]bool)
	want := "//klocs:" + name
	for _, file := range p.Pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if c.Text != want && !strings.HasPrefix(c.Text, want+" ") {
					continue
				}
				at := p.Pkg.Fset.Position(c.Pos())
				set[markerKey{file: at.Filename, line: at.Line}] = true
				// A standalone marker annotates the next line.
				set[markerKey{file: at.Filename, line: at.Line + 1}] = true
			}
		}
	}
	return set
}

// RunAnalyzers applies the analyzers to the package and returns the
// combined diagnostics sorted by position then analyzer name, so
// driver output is deterministic.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in documentation order.
func All() []*Analyzer {
	return []*Analyzer{NoDeterminism, ErrnoCheck, TraceNames, AllocPair}
}

// inspectFiles walks every file in the package.
func inspectFiles(pkg *Package, fn func(ast.Node) bool) {
	for _, file := range pkg.Files {
		ast.Inspect(file, fn)
	}
}
