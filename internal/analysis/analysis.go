// Package analysis is the simulator's invariant-enforcing static
// analysis suite — the checkpatch/sparse analog for this codebase. The
// whole reproduction rests on properties no compiler checks: runs must
// be deterministic in virtual time (the trace plane promises
// byte-identical exports at a fixed seed), errno-style errors from the
// fault plane must propagate instead of vanishing, trace events must
// come from the registered catalog, and every simulated allocation
// entry point needs a teardown path feeding kobj accounting.
//
// Four per-package analyzers enforce those invariants over one
// package at a time:
//
//   - nodeterminism: forbids wall-clock time, global math/rand, and
//     map-iteration order escaping into simulation state or output
//     (internal/sim's RNG is the only sanctioned randomness source);
//   - errnocheck: forbids silently discarding error returns from the
//     module's alloc/fs/blockdev/netsim/pressure paths;
//   - tracenames: every Tracer.Emit call site must use a constant name
//     from the catalog registered in internal/trace;
//   - allocpair: every allocation entry point has a matching
//     free/teardown path registered with kobj accounting.
//
// Three module analyzers reason across call boundaries, over a
// whole-module call graph (callgraph.go), per-function CFGs (cfg.go),
// and dataflow with bottom-up SCC summary fixpoints (dataflow.go):
//
//   - lifecycle: path-sensitive alloc/free state machine — double
//     free, free-on-some-paths-only, leak on early return, composed
//     through callee summaries;
//   - errnoflow: every error escaping an errno-speaking boundary must
//     provably derive from the internal/fault vocabulary;
//   - tracereach: every trace catalog constant must have an Emit site
//     reachable from the module's entry surface.
//
// Three more module analyzers form the parallel-readiness plane gating
// the sharded-engine refactor (DESIGN.md §14, ROADMAP item 2):
//
//   - ownership: every package-level var and struct field in the
//     engine packages carries a lane/epoch/init/shared ownership
//     class, annotated or inferred; unannotated shared-mutable state
//     is an error, and kloclint -ownership-report renders the full
//     inventory into PARALLEL_READINESS.md;
//   - lockcheck: lock-order cycles (through interface dispatch too),
//     unlock-on-all-paths via CFG may-held analysis, and atomic/plain
//     access mixing on the same storage;
//   - rngflow: sim.RNG streams are single-owner — retaining fields
//     must declare an owner, construction stays in internal/sim, and
//     a stream handed off is never drawn from again (Fork a child).
//
// A full-suite run also audits the suppression markers themselves
// (suppressaudit.go): analyzers consult Marked only once a diagnostic
// is otherwise certain, so a marker that records no hit suppressed
// nothing and is reported as stale.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic, a multichecker driver in
// cmd/kloclint, and testdata packages exercised the analysistest way)
// but is self-contained on the standard library's go/ast, go/types,
// and go/importer: the build environment is hermetic, so the suite
// must not pull module dependencies. Swapping the vendored framework
// for the x/tools one is a mechanical change if the dependency ever
// becomes available.
//
// False positives are silenced in place with marker comments, each of
// which should carry a justification:
//
//	//klocs:unordered         — this map range is order-insensitive
//	//klocs:ignore-errno      — this error is deliberately sunk or anonymous
//	//klocs:ignore-allocpair  — teardown happens through another path
//	//klocs:ignore-lifecycle  — ownership transfer the analysis cannot see
//	//klocs:ignore-tracereach — catalog entry reserved intentionally
//	//klocs:owner=<class>     — ownership class: lane, epoch, init, or shared
//	//klocs:ignore-lockcheck  — ordering/release/atomic-mix exception
//	//klocs:ignore-rngflow    — RNG confinement exception
//
// DESIGN.md §10 documents what each analyzer guards and its kernel
// analog; the runtime complement (the KASAN/kmemleak-analog sanitizer)
// lives in internal/alloc.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a loaded,
// type-checked package through the Pass and reports violations.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only flags.
	Name string
	// Doc is the one-line description shown by kloclint -list.
	Doc string
	// Run executes the check. Diagnostics go through pass.Reportf; the
	// error return is for analyzer-internal failures only.
	Run func(pass *Pass) error
}

// A Diagnostic is one reported violation, carried with its resolved
// file position so drivers can sort and print deterministically.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass connects one analyzer to one loaded package.
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the loaded package under analysis: syntax, type
	// information, and position data.
	Pkg *Package

	diags *[]Diagnostic
	audit *MarkerAudit
	// markers maps marker name -> marker table, built lazily from the
	// package's comments.
	markers map[string]markerTable
}

// markerKey identifies one source line.
type markerKey struct {
	file string
	line int
}

// A markerTable maps each covered source line to the location of the
// marker comment covering it.
type markerTable map[markerKey]markerKey

// A MarkerAudit records which marker comments actually suppressed a
// diagnostic during a run. Analyzers consult Marked only once a
// diagnostic is otherwise certain, so a marker with no recorded hit
// after the full suite has run no longer suppresses anything — it is
// stale, and the suppression audit flags it.
type MarkerAudit struct {
	used map[markerKey]bool
}

// NewMarkerAudit returns an empty audit ready to record marker hits.
func NewMarkerAudit() *MarkerAudit {
	return &MarkerAudit{used: make(map[markerKey]bool)}
}

// hit records that the marker comment at loc suppressed a diagnostic.
// Safe on a nil audit.
func (a *MarkerAudit) hit(loc markerKey) {
	if a != nil {
		a.used[loc] = true
	}
}

// Used reports whether the marker comment at file:line suppressed any
// diagnostic.
func (a *MarkerAudit) Used(file string, line int) bool {
	return a != nil && a.used[markerKey{file: file, line: line}]
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Marked reports whether a "//klocs:<name>" marker comment covers the
// line of pos. A marker covers its own line (trailing comment) and,
// when it stands alone, the line after it — the same placement rules
// as nolint-style directives. Analyzers must consult Marked only once
// a diagnostic is otherwise certain: a positive answer is recorded
// with the pass's audit (when armed) as proof the marker still earns
// its keep.
func (p *Pass) Marked(name string, pos token.Pos) bool {
	if p.markers == nil {
		p.markers = make(map[string]markerTable)
	}
	table, ok := p.markers[name]
	if !ok {
		table = collectMarkerTable(p.Pkg, name)
		p.markers[name] = table
	}
	at := p.Pkg.Fset.Position(pos)
	markerAt, covered := table[markerKey{file: at.Filename, line: at.Line}]
	if covered {
		p.audit.hit(markerAt)
	}
	return covered
}

// collectMarkerTable builds the covered-line table for one marker
// name over one package.
func collectMarkerTable(pkg *Package, name string) markerTable {
	table := make(markerTable)
	want := "//klocs:" + name
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if c.Text != want && !strings.HasPrefix(c.Text, want+" ") {
					continue
				}
				at := pkg.Fset.Position(c.Pos())
				loc := markerKey{file: at.Filename, line: at.Line}
				table[loc] = loc
				// A standalone marker annotates the next line.
				table[markerKey{file: at.Filename, line: at.Line + 1}] = loc
			}
		}
	}
	return table
}

// RunAnalyzers applies the analyzers to the package and returns the
// combined diagnostics sorted by position then analyzer name, so
// driver output is deterministic.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersAudited(pkg, analyzers, nil)
}

// RunAnalyzersAudited is RunAnalyzers with marker-hit recording: every
// suppression any analyzer honors is logged with audit, feeding the
// stale-marker report of AuditSuppressions. audit may be nil.
func RunAnalyzersAudited(pkg *Package, analyzers []*Analyzer, audit *MarkerAudit) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags, audit: audit}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// All returns the full analyzer suite in documentation order.
func All() []*Analyzer {
	return []*Analyzer{NoDeterminism, ErrnoCheck, TraceNames, AllocPair}
}

// inspectFiles walks every file in the package.
func inspectFiles(pkg *Package, fn func(ast.Node) bool) {
	for _, file := range pkg.Files {
		ast.Inspect(file, fn)
	}
}
