package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixturePkg loads one testdata package under the fixture/ import
// prefix (which opts it into the errno boundary scope).
func loadFixturePkg(t *testing.T, name string) *Package {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.Load(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return pkg
}

// checkModuleFixture wraps one fixture package in a single-package
// Module and diffs the module analyzer's diagnostics against the
// fixture's `// want` comments.
func checkModuleFixture(t *testing.T, a *ModuleAnalyzer, name string) {
	t.Helper()
	problems, err := CheckModuleExpectations([]*Package{loadFixturePkg(t, name)}, a)
	if err != nil {
		t.Fatalf("check fixture %s: %v", name, err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestLifecycleFixture(t *testing.T)  { checkModuleFixture(t, Lifecycle, "lifecycle") }
func TestErrnoFlowFixture(t *testing.T)  { checkModuleFixture(t, ErrnoFlow, "errnoflow") }
func TestTraceReachFixture(t *testing.T) { checkModuleFixture(t, TraceReach, "tracereach") }

// TestWantHarnessCatchesMismatch is the meta-test for the fixture
// harness: wrong expectations must fail in both directions — a
// diagnostic no pattern matches, and a pattern no diagnostic matches.
func TestWantHarnessCatchesMismatch(t *testing.T) {
	pkg := loadFixturePkg(t, "wantmeta")
	problems, err := CheckExpectations(pkg, ErrnoCheck)
	if err != nil {
		t.Fatalf("CheckExpectations: %v", err)
	}
	if len(problems) != 3 {
		t.Fatalf("got %d problems, want 3:\n%s", len(problems), strings.Join(problems, "\n"))
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		"unexpected diagnostic",
		`"this pattern matches nothing"`,
		`"phantom diagnostic expected here"`,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("problems lack %s:\n%s", want, joined)
		}
	}
}

// nodeNamed finds a graph node by its String() label suffix
// ("CloseAll", "fileObj.Close", ...).
func nodeNamed(t *testing.T, g *CallGraph, label string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Obj != nil && strings.HasSuffix(n.String(), "."+label) {
			return n
		}
	}
	t.Fatalf("no function %q in graph", label)
	return nil
}

func TestCallGraphResolution(t *testing.T) {
	pkg := loadFixturePkg(t, "callgraph")
	g := BuildCallGraph([]*Package{pkg})

	// Interface dispatch resolves to every implementing module type.
	closeAll := nodeNamed(t, g, "CloseAll")
	var ifaceSites []*CallSite
	for _, site := range closeAll.Calls {
		if site.Kind == CallInterface {
			ifaceSites = append(ifaceSites, site)
		}
	}
	if len(ifaceSites) != 1 {
		t.Fatalf("CloseAll has %d interface call sites, want 1", len(ifaceSites))
	}
	callees := map[string]bool{}
	for _, c := range ifaceSites[0].Callees {
		callees[c.String()] = true
	}
	for _, want := range []string{"fixture.fileObj.Close", "fixture.sockObj.Close"} {
		if !callees[want] {
			t.Errorf("interface dispatch missing callee %s (got %v)", want, callees)
		}
	}

	// A call through a function-typed field is dynamic with no callees.
	fire := nodeNamed(t, g, "Fire")
	if len(fire.Calls) != 1 || fire.Calls[0].Kind != CallDynamic || len(fire.Calls[0].Callees) != 0 {
		t.Errorf("Fire's hook call should be CallDynamic with no callees, got %+v", fire.Calls)
	}

	// Method values and function idents taken as values become Refs.
	takeRefs := nodeNamed(t, g, "TakeRefs")
	refs := map[string]bool{}
	for _, r := range takeRefs.Refs {
		refs[r.String()] = true
	}
	for _, want := range []string{"fixture.fileObj.Close", "fixture.helper"} {
		if !refs[want] {
			t.Errorf("TakeRefs missing ref %s (got %v)", want, refs)
		}
	}

	// Direct calls resolve statically.
	direct := nodeNamed(t, g, "Direct")
	if len(direct.Calls) != 1 || direct.Calls[0].Kind != CallStatic {
		t.Fatalf("Direct's call should be CallStatic, got %+v", direct.Calls)
	}
	if got := direct.Calls[0].Callees[0].String(); got != "fixture.helper" {
		t.Errorf("Direct resolves to %s, want fixture.helper", got)
	}

	// Reachability follows Refs: storing a hook keeps its target alive.
	reached := g.Reachable([]*FuncNode{takeRefs})
	for _, want := range []string{"fixture.helper", "fixture.fileObj.Close"} {
		if !reached[nodeNamed(t, g, strings.TrimPrefix(want, "fixture."))] {
			t.Errorf("%s not reachable through TakeRefs' references", want)
		}
	}
}

// TestSCCsCalleeFirst pins the bottom-up traversal order the summary
// fixpoint depends on: a recursive cycle forms one component, emitted
// before its caller.
func TestSCCsCalleeFirst(t *testing.T) {
	pkg := loadFixturePkg(t, "callgraph")
	g := BuildCallGraph([]*Package{pkg})
	even := nodeNamed(t, g, "even")
	odd := nodeNamed(t, g, "odd")
	parity := nodeNamed(t, g, "Parity")
	sccs := g.SCCs()
	idx := func(n *FuncNode) int {
		for i, scc := range sccs {
			for _, m := range scc {
				if m == n {
					return i
				}
			}
		}
		return -1
	}
	if idx(even) < 0 || idx(even) != idx(odd) {
		t.Errorf("even (scc %d) and odd (scc %d) should share one SCC", idx(even), idx(odd))
	}
	if idx(even) >= idx(parity) {
		t.Errorf("cycle SCC %d should be emitted before its caller's SCC %d", idx(even), idx(parity))
	}
}

// TestReachingDefsAndLiveness pins the dataflow layer on a known
// shape: both definitions of x reach the return, and x stays live
// after the branch assignment.
func TestReachingDefsAndLiveness(t *testing.T) {
	pkg := loadFixturePkg(t, "callgraph")
	var decl *ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "Branchy" {
				decl = fd
			}
		}
	}
	if decl == nil {
		t.Fatal("fixture lacks Branchy")
	}
	cfg := NewCFG(decl.Body)
	if cfg == nil || !cfg.OK {
		t.Fatal("CFG construction failed for Branchy")
	}
	var x *types.Var
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "x" {
			if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
				x = v
			}
		}
		return true
	})
	if x == nil {
		t.Fatal("no definition of x in Branchy")
	}
	rd := NewReachingDefs(cfg, pkg.Info, decl.Type, decl.Recv)
	foundJoin := false
	for _, b := range cfg.Blocks {
		if b.Return != nil && len(rd.At(b, 0, x)) == 2 {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Error("no return block sees both definitions of x")
	}
	live := NewLiveness(cfg, pkg.Info)
	for _, b := range cfg.Blocks {
		for _, s := range b.Stmts {
			if as, ok := s.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
				if !live.LiveOut(b, x) {
					t.Error("x should be live out of the block assigning x = 2")
				}
			}
		}
	}
}

// loadModulePackages loads every lintable package of the real module.
func loadModulePackages(t *testing.T) []*Package {
	t.Helper()
	l := testLoader(t)
	targets, err := ModuleTargets(l.ModuleDir, l.ModulePath)
	if err != nil {
		t.Fatalf("ModuleTargets: %v", err)
	}
	pkgs := make([]*Package, 0, len(targets))
	for _, tgt := range targets {
		pkg, err := l.Load(tgt.Dir, tgt.ImportPath)
		if err != nil {
			t.Fatalf("load %s: %v", tgt.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// TestShrinkerDispatchResolvesAcrossPackages pins the cross-package
// interface resolution the interprocedural analyzers rely on: the
// pressure plane's Shrinker.Scan dispatch must see the fs and netsim
// registrations.
func TestShrinkerDispatchResolvesAcrossPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	m := NewModule(loadModulePackages(t))
	calleePkgs := map[string]bool{}
	for _, n := range m.Graph.Nodes {
		if n.Pkg == nil || n.Pkg.Path != "kloc/internal/pressure" {
			continue
		}
		for _, site := range n.Calls {
			if site.Kind != CallInterface || calleeName(site.Call) != "Scan" {
				continue
			}
			for _, c := range site.Callees {
				calleePkgs[c.Pkg.Path] = true
			}
		}
	}
	if len(calleePkgs) == 0 {
		t.Fatal("no interface Scan dispatch found in kloc/internal/pressure")
	}
	for _, want := range []string{"kloc/internal/fs", "kloc/internal/netsim"} {
		if !calleePkgs[want] {
			t.Errorf("Shrinker.Scan dispatch misses implementations in %s (got %v)", want, calleePkgs)
		}
	}
}
