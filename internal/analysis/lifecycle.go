package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lifecycle is the static complement of the runtime sanitizer's
// KASAN/kmemleak findings: a path-sensitive alloc/free state machine
// run over every function's CFG, composed across call boundaries with
// bottom-up summaries. Where alloc.Sanitizer catches a double free
// only when a seed happens to drive the workload through it, this
// analyzer proves the property over all paths at lint time:
//
//   - double free: a path on which an object already released reaches
//     a second Free*/Release*/Teardown* call (directly or through a
//     helper whose summary frees its argument);
//   - free on some paths only: a return reachable with the object
//     freed on one incoming path and still live on another;
//   - leak on early return: a return path on which a locally
//     allocated object is neither freed, deferred-freed, returned,
//     nor stored anywhere.
//
// Objects enter tracking when a local is assigned from an allocator —
// a module function whose name starts with Alloc returning a pointer
// or interface, or any function summarized as returning one such
// object unconsumed. Tracking is deliberately droppable: a value that
// escapes (returned, stored into a field, captured by a closure,
// passed to a function whose summary does not account for it) leaves
// the state machine, so every report is about a provably local
// lifetime. The `if err != nil` and comma-ok idioms refine state
// along branch edges, which is what keeps early-return cleanup code
// from reporting as a leak.
//
// False positives carry a //klocs:ignore-lifecycle marker with the
// justification.
var Lifecycle = &ModuleAnalyzer{
	Name: "lifecycle",
	Doc:  "prove alloc/free pairing across call boundaries: no double free, no path-dependent free, no leak on early return",
	Run:  runLifecycle,
}

const lifecycleMarker = "ignore-lifecycle"

// freeEffect says what a callee does to one of its operands.
type freeEffect uint8

const (
	freeNone freeEffect = iota
	// freeMaybe: the callee frees the operand on some paths.
	freeMaybe
	// freeAlways: the callee frees the operand on every path.
	freeAlways
)

// paramEffect is a callee's summarized effect on one operand slot.
type paramEffect struct {
	frees freeEffect
	// escapes: the callee may retain the operand (store, return,
	// capture), so the caller can no longer reason about it.
	escapes bool
}

// lifeSummary is the interprocedural summary of one function.
type lifeSummary struct {
	// allocator: the function returns a freshly allocated tracked
	// object at result index allocResult.
	allocator   bool
	allocResult int
	// recv and params describe the function's effect on its receiver
	// and parameters.
	recv   paramEffect
	params []paramEffect
}

func lifeSummaryChanged(a, b lifeSummary) bool {
	if a.allocator != b.allocator || a.allocResult != b.allocResult || a.recv != b.recv || len(a.params) != len(b.params) {
		return true
	}
	for i := range a.params {
		if a.params[i] != b.params[i] {
			return true
		}
	}
	return false
}

// Lifecycle state bits per tracked variable.
const (
	lAlloc uint8 = 1 << iota // holds a live allocation on some path
	lFreed                   // freed on some path
	lNil                     // nil on some path (allocation failed)
)

// varOrigin says why a variable is tracked.
type varOrigin struct {
	// param index: receiver is -1, parameters are 0..n-1; locals from
	// allocator calls use paramIdx = -2.
	paramIdx int
	allocPos token.Pos
}

const originLocal = -2

// lifeState is the abstract state at one program point.
type lifeState struct {
	vars map[*types.Var]uint8
	// errLink maps an error (or ok-bool) variable to the object
	// variable defined in the same tuple assignment, for branch
	// refinement on `if err != nil` / `if !ok`.
	errLink map[*types.Var]*types.Var
}

func newLifeState() *lifeState {
	return &lifeState{vars: map[*types.Var]uint8{}, errLink: map[*types.Var]*types.Var{}}
}

func (s *lifeState) clone() *lifeState {
	out := newLifeState()
	for v, m := range s.vars {
		out.vars[v] = m
	}
	for v, o := range s.errLink {
		out.errLink[v] = o
	}
	return out
}

// join merges other into s (bitwise union per variable), returning
// whether s changed.
func (s *lifeState) join(other *lifeState) bool {
	changed := false
	//klocs:unordered bitwise union per distinct key is commutative
	for v, m := range other.vars {
		if s.vars[v]|m != s.vars[v] {
			s.vars[v] |= m
			changed = true
		}
	}
	//klocs:unordered each entry lands at its own key; links never conflict
	for v, o := range other.errLink {
		if s.errLink[v] != o {
			s.errLink[v] = o
			changed = true
		}
	}
	return changed
}

func (s *lifeState) equal(other *lifeState) bool {
	if len(s.vars) != len(other.vars) || len(s.errLink) != len(other.errLink) {
		return false
	}
	//klocs:unordered pure membership comparison
	for v, m := range s.vars {
		if other.vars[v] != m {
			return false
		}
	}
	//klocs:unordered pure membership comparison
	for v, o := range s.errLink {
		if other.errLink[v] != o {
			return false
		}
	}
	return true
}

// isFreeName reports whether a function name follows the module's
// teardown conventions (the same prefixes allocpair enforces).
func isFreeName(name string) bool {
	return strings.HasPrefix(name, "Free") || strings.HasPrefix(name, "Release") ||
		strings.HasPrefix(name, "Teardown") || strings.HasPrefix(name, "Destroy")
}

// isAllocName reports whether a function name marks an allocator.
func isAllocName(name string) bool { return strings.HasPrefix(name, "Alloc") }

// trackableType reports whether a type is worth tracking: pointers
// and interfaces (the shapes the module's allocators hand out).
func trackableType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface:
		return true
	}
	return false
}

// seedSummary overlays the naming-convention effects onto a computed
// summary: a Free*/Release*/Teardown*/Destroy* function releases its
// object operand even when its body bottoms out in map surgery the
// dataflow cannot interpret, and an Alloc* function returning a
// pointer is an allocator even when it materializes the object from a
// free list.
func seedSummary(n *FuncNode, sum lifeSummary) lifeSummary {
	if n.Obj == nil {
		return sum
	}
	sig, ok := n.Obj.Type().(*types.Signature)
	if !ok {
		return sum
	}
	name := n.Obj.Name()
	if isFreeName(name) {
		// A method with a trackable parameter frees that parameter (the
		// allocator-frees-object shape); otherwise it frees its receiver.
		slot := -1
		for i := 0; i < sig.Params().Len(); i++ {
			if trackableType(sig.Params().At(i).Type()) {
				slot = i
				break
			}
		}
		if slot >= 0 {
			for len(sum.params) <= slot {
				sum.params = append(sum.params, paramEffect{})
			}
			if sum.params[slot].frees < freeAlways {
				sum.params[slot].frees = freeAlways
			}
		} else if sig.Recv() != nil && sum.recv.frees < freeAlways {
			sum.recv.frees = freeAlways
		}
	}
	if isAllocName(name) && sig.Results().Len() > 0 && trackableType(sig.Results().At(0).Type()) {
		sum.allocator = true
		sum.allocResult = 0
	}
	return sum
}

func runLifecycle(pass *ModulePass) error {
	g := pass.Module.Graph
	compute := func(n *FuncNode, get func(*FuncNode) (lifeSummary, bool)) lifeSummary {
		la := newLifeAnalysis(pass.Module, n, get)
		if la.cfg == nil {
			return seedSummary(n, lifeSummary{})
		}
		return seedSummary(n, la.solve())
	}
	summaries := FixpointSummaries(g, compute, lifeSummaryChanged)
	// Reporting pass with the converged summaries.
	getFinal := func(n *FuncNode) (lifeSummary, bool) {
		s, ok := summaries[n]
		return s, ok
	}
	var reports []lifeReport
	for _, n := range g.Nodes {
		la := newLifeAnalysis(pass.Module, n, getFinal)
		if la.cfg == nil {
			continue
		}
		la.report = true
		la.solve()
		reports = append(reports, la.reports...)
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].pos != reports[j].pos {
			return reports[i].pos < reports[j].pos
		}
		return reports[i].msg < reports[j].msg
	})
	seen := map[string]bool{}
	for _, r := range reports {
		key := fmt.Sprintf("%d:%s", r.pos, r.msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		if pass.Marked(lifecycleMarker, r.pos) || (r.allocPos.IsValid() && pass.Marked(lifecycleMarker, r.allocPos)) {
			continue
		}
		pass.Reportf(r.pos, "%s", r.msg)
	}
	return nil
}

type lifeReport struct {
	pos      token.Pos
	allocPos token.Pos
	msg      string
}

// lifeAnalysis solves the state machine over one function.
type lifeAnalysis struct {
	mod    *Module
	n      *FuncNode
	pkg    *Package
	info   *types.Info
	cfg    *CFG
	get    func(*FuncNode) (lifeSummary, bool)
	report bool

	origins map[*types.Var]varOrigin
	in      map[*Block]*lifeState
	reports []lifeReport
}

func newLifeAnalysis(mod *Module, n *FuncNode, get func(*FuncNode) (lifeSummary, bool)) *lifeAnalysis {
	body := n.Body()
	if body == nil {
		return &lifeAnalysis{}
	}
	cfg := NewCFG(body)
	if !cfg.OK {
		return &lifeAnalysis{}
	}
	return &lifeAnalysis{
		mod:     mod,
		n:       n,
		pkg:     n.Pkg,
		info:    n.Pkg.Info,
		cfg:     cfg,
		get:     get,
		origins: map[*types.Var]varOrigin{},
		in:      map[*Block]*lifeState{},
	}
}

// solve runs the forward fixpoint and derives the function summary.
func (la *lifeAnalysis) solve() lifeSummary {
	entry := newLifeState()
	// Parameters (and the receiver) of trackable type enter as live
	// allocations owned by the caller, so the exit state yields their
	// freed/escaped effects.
	recvVar, paramVars := la.paramObjects()
	if recvVar != nil {
		la.origins[recvVar] = varOrigin{paramIdx: -1}
		entry.vars[recvVar] = lAlloc
	}
	for i, v := range paramVars {
		if v == nil {
			continue
		}
		la.origins[v] = varOrigin{paramIdx: i}
		entry.vars[v] = lAlloc
	}
	for _, b := range la.cfg.Blocks {
		la.in[b] = newLifeState()
	}
	la.in[la.cfg.Blocks[0]] = entry
	work := append([]*Block(nil), la.cfg.Blocks...)
	for iter := 0; len(work) > 0 && iter < 4*len(la.cfg.Blocks)+64; iter++ {
		b := work[0]
		work = work[1:]
		out := la.in[b].clone()
		for _, s := range b.Stmts {
			la.transferStmt(out, s)
		}
		for si, succ := range b.Succs {
			next := out
			if b.Cond != nil && si < 2 {
				next = out.clone()
				la.refine(next, b.Cond, si == 0)
			}
			if la.in[succ].join(next) {
				queued := false
				for _, w := range work {
					if w == succ {
						queued = true
						break
					}
				}
				if !queued {
					work = append(work, succ)
				}
			}
		}
	}
	return la.summarize(recvVar, paramVars)
}

// paramObjects returns the receiver and parameter variables of
// trackable type.
func (la *lifeAnalysis) paramObjects() (recv *types.Var, params []*types.Var) {
	if la.n.Decl == nil {
		return nil, nil // literals: captured state is not summarized
	}
	lookup := func(fl *ast.FieldList) []*types.Var {
		var out []*types.Var
		if fl == nil {
			return nil
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				v, ok := la.info.Defs[name].(*types.Var)
				if ok && trackableType(v.Type()) {
					out = append(out, v)
				} else {
					out = append(out, nil)
				}
			}
			if len(f.Names) == 0 {
				out = append(out, nil) // unnamed parameter
			}
		}
		return out
	}
	if la.n.Decl.Recv != nil {
		if rs := lookup(la.n.Decl.Recv); len(rs) > 0 {
			recv = rs[0]
		}
	}
	return recv, lookup(la.n.Decl.Type.Params)
}

// summarize reads the exit state into a function summary.
func (la *lifeAnalysis) summarize(recvVar *types.Var, paramVars []*types.Var) lifeSummary {
	sum := lifeSummary{params: make([]paramEffect, len(paramVars))}
	exit := la.in[la.cfg.Exit]
	effectOf := func(v *types.Var) paramEffect {
		if v == nil {
			return paramEffect{}
		}
		mask, tracked := exit.vars[v]
		if !tracked {
			// Dropped from tracking: the param escaped.
			return paramEffect{escapes: true}
		}
		switch {
		case mask&lFreed != 0 && mask&lAlloc == 0:
			return paramEffect{frees: freeAlways}
		case mask&lFreed != 0:
			return paramEffect{frees: freeMaybe}
		}
		return paramEffect{}
	}
	sum.recv = effectOf(recvVar)
	for i, v := range paramVars {
		sum.params[i] = effectOf(v)
	}
	// Allocator detection: some return hands back a live allocation.
	for _, b := range la.cfg.Blocks {
		if b.Return == nil {
			continue
		}
		state := la.stateBefore(b, b.Return)
		for i, e := range b.Return.Results {
			if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
				if callee := la.staticCallee(call); callee != nil {
					if s, ok := la.get(callee); ok && s.allocator {
						sum.allocator, sum.allocResult = true, i
					}
				}
				continue
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				v, _ := la.info.Uses[id].(*types.Var)
				if v == nil {
					continue
				}
				if o, tracked := la.origins[v]; tracked && o.paramIdx == originLocal && state.vars[v]&lAlloc != 0 {
					sum.allocator, sum.allocResult = true, i
				}
			}
		}
	}
	return sum
}

// stateBefore replays the block up to (but excluding) stmt.
func (la *lifeAnalysis) stateBefore(b *Block, stmt ast.Stmt) *lifeState {
	state := la.in[b].clone()
	for _, s := range b.Stmts {
		if s == stmt {
			break
		}
		la.transferStmt(state, s)
	}
	return state
}

// staticCallee resolves a call to its single static module target.
func (la *lifeAnalysis) staticCallee(call *ast.CallExpr) *FuncNode {
	for _, site := range la.n.Calls {
		if site.Call == call && site.Kind == CallStatic && len(site.Callees) == 1 {
			return site.Callees[0]
		}
	}
	return nil
}

// siteFor finds the resolved call site for a call expression.
func (la *lifeAnalysis) siteFor(call *ast.CallExpr) *CallSite {
	for _, site := range la.n.Calls {
		if site.Call == call {
			return site
		}
	}
	return nil
}

// transferStmt applies one statement to the state.
func (la *lifeAnalysis) transferStmt(st *lifeState, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		la.evalExpr(st, s.X, false)
	case *ast.AssignStmt:
		la.transferAssign(st, s)
	case *ast.DeclStmt:
		la.transferDecl(st, s)
	case *ast.DeferStmt:
		la.evalExpr(st, s.Call, false)
	case *ast.GoStmt:
		// Concurrent execution: everything handed to the goroutine is
		// beyond this function's reasoning.
		la.escapeAllIn(st, s.Call)
	case *ast.ReturnStmt:
		la.transferReturn(st, s)
	case *ast.SendStmt:
		la.evalExpr(st, s.Chan, false)
		la.escapeAllIn(st, s.Value)
	case *ast.RangeStmt:
		la.evalExpr(st, s.X, true)
		for _, d := range stmtDefs(la.info, s) {
			la.untrack(st, d.Var)
		}
	case *ast.IncDecStmt:
		// numeric: nothing tracked
	case *ast.LabeledStmt:
		la.transferStmt(st, s.Stmt)
	}
}

// transferAssign handles definitions: fresh allocations enter
// tracking, aliases and stores escape, everything else untracks.
func (la *lifeAnalysis) transferAssign(st *lifeState, s *ast.AssignStmt) {
	// Evaluate RHS effects first (calls consume/free/escape operands).
	for _, rhs := range s.Rhs {
		la.evalExpr(st, rhs, false)
		la.escapeAlias(st, rhs)
	}
	// Stores through non-identifier targets escape the stored values.
	for i, lhs := range s.Lhs {
		if _, ok := lhs.(*ast.Ident); ok {
			continue
		}
		la.evalExpr(st, lhs, true)
		if i < len(s.Rhs) {
			la.escapeAllIn(st, s.Rhs[i])
		} else if len(s.Rhs) == 1 {
			la.escapeAllIn(st, s.Rhs[0])
		}
	}
	la.applyDefs(st, stmtDefs(la.info, s))
}

func (la *lifeAnalysis) transferDecl(st *lifeState, s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		if vs, ok := spec.(*ast.ValueSpec); ok {
			for _, v := range vs.Values {
				la.evalExpr(st, v, false)
				la.escapeAlias(st, v)
			}
		}
	}
	la.applyDefs(st, stmtDefs(la.info, s))
}

// applyDefs installs new variable states for the statement's defs.
func (la *lifeAnalysis) applyDefs(st *lifeState, defs []*Def) {
	for _, d := range defs {
		la.untrack(st, d.Var)
	}
	// Group tuple defs by their defining call to detect allocators.
	for _, d := range defs {
		if d.Call != nil {
			callee := la.staticCallee(d.Call)
			if callee == nil {
				continue
			}
			sum, ok := la.get(callee)
			if !ok || !sum.allocator || d.Result != sum.allocResult {
				continue
			}
			la.origins[d.Var] = varOrigin{paramIdx: originLocal, allocPos: d.Pos}
			st.vars[d.Var] = lAlloc
			// Link the companion error/ok result for branch refinement.
			for _, other := range defs {
				if other.Call == d.Call && other != d && isErrOrBool(other.Var.Type()) {
					st.errLink[other.Var] = d.Var
				}
			}
			continue
		}
		if d.Rhs == nil {
			continue
		}
		if call, ok := ast.Unparen(d.Rhs).(*ast.CallExpr); ok {
			callee := la.staticCallee(call)
			if callee == nil {
				continue
			}
			if sum, ok := la.get(callee); ok && sum.allocator && sum.allocResult == 0 {
				la.origins[d.Var] = varOrigin{paramIdx: originLocal, allocPos: d.Pos}
				st.vars[d.Var] = lAlloc
			}
		}
	}
}

func isErrOrBool(t types.Type) bool {
	if isErrorType(t) {
		return true
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

// escapeAlias drops a tracked variable copied wholesale by an
// assignment (`x := o`): the alias takes over the object's lifetime.
func (la *lifeAnalysis) escapeAlias(st *lifeState, rhs ast.Expr) {
	id, ok := ast.Unparen(rhs).(*ast.Ident)
	if !ok {
		return
	}
	if v, ok := la.info.Uses[id].(*types.Var); ok {
		if _, tracked := st.vars[v]; tracked {
			la.untrack(st, v)
		}
	}
}

// untrack removes v from the state (fresh definition or lost value).
func (la *lifeAnalysis) untrack(st *lifeState, v *types.Var) {
	delete(st.vars, v)
	delete(st.errLink, v)
	for e, o := range st.errLink {
		if o == v {
			delete(st.errLink, e)
		}
	}
}

// transferReturn checks leaks at a return site, then escapes the
// returned values.
func (la *lifeAnalysis) transferReturn(st *lifeState, s *ast.ReturnStmt) {
	returned := map[*types.Var]bool{}
	for _, e := range s.Results {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := la.info.Uses[id].(*types.Var); ok {
				returned[v] = true
			}
		}
	}
	la.checkLeaks(st, s.Pos(), returned)
	for _, e := range s.Results {
		la.evalExpr(st, e, false)
		la.escapeAllIn(st, e)
	}
}

// checkLeaks reports locally allocated objects still live at a
// function exit.
func (la *lifeAnalysis) checkLeaks(st *lifeState, pos token.Pos, returned map[*types.Var]bool) {
	if !la.report {
		return
	}
	type leak struct {
		v    *types.Var
		mask uint8
	}
	var leaks []leak
	for v, mask := range st.vars {
		o, tracked := la.origins[v]
		if !tracked || o.paramIdx != originLocal || returned[v] {
			continue
		}
		if mask&lAlloc == 0 {
			continue // freed or nil everywhere
		}
		leaks = append(leaks, leak{v: v, mask: mask})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].v.Pos() < leaks[j].v.Pos() })
	for _, lk := range leaks {
		o := la.origins[lk.v]
		allocAt := la.pkg.Fset.Position(o.allocPos)
		if lk.mask&lFreed != 0 {
			la.reports = append(la.reports, lifeReport{pos: pos, allocPos: o.allocPos,
				msg: fmt.Sprintf("%s (allocated at line %d) is freed on only some paths reaching this return: free it on every path or annotate //klocs:ignore-lifecycle", lk.v.Name(), allocAt.Line)})
		} else {
			la.reports = append(la.reports, lifeReport{pos: pos, allocPos: o.allocPos,
				msg: fmt.Sprintf("%s (allocated at line %d) leaks on this return path: neither freed nor passed on (annotate //klocs:ignore-lifecycle if teardown is external)", lk.v.Name(), allocAt.Line)})
		}
	}
}

// evalExpr applies the effects of every call in e and escapes tracked
// values used in escaping positions. readOnly marks contexts (range
// sources, index bases) that cannot leak the value.
func (la *lifeAnalysis) evalExpr(st *lifeState, e ast.Expr, readOnly bool) {
	if e == nil {
		return
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Captured tracked values live beyond this function's
			// reasoning.
			la.escapeAllIn(st, n.Body)
			return false
		case *ast.CallExpr:
			la.applyCall(st, n)
			return false // applyCall walks operands itself
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				la.escapeAllIn(st, n.X)
				return false
			}
		case *ast.CompositeLit:
			la.escapeAllIn(st, n)
			return false
		}
		return true
	}
	ast.Inspect(e, visit)
	_ = readOnly
}

// applyCall transfers one call's operand effects.
func (la *lifeAnalysis) applyCall(st *lifeState, call *ast.CallExpr) {
	site := la.siteFor(call)
	// Walk nested calls in the arguments first (inner calls happen
	// before the outer one).
	for _, arg := range call.Args {
		la.evalExpr(st, arg, false)
	}
	if recv := callReceiver(call); recv != nil {
		la.evalExpr(st, recv, true)
	}
	if site == nil {
		// Type conversion or builtin: operands pass through untouched.
		return
	}
	// Resolve the per-operand effects.
	recvEffect, paramEffects, variadic := la.callEffects(site)
	if recv := callReceiver(call); recv != nil {
		la.applyOperand(st, recv, recvEffect, call)
	}
	for i, arg := range call.Args {
		eff := paramEffect{escapes: true}
		if i < len(paramEffects) {
			eff = paramEffects[i]
		} else if variadic && len(paramEffects) > 0 {
			eff = paramEffects[len(paramEffects)-1]
		}
		la.applyOperand(st, arg, eff, call)
	}
}

// callEffects derives the operand effects of a call site from the
// callee summary, the naming convention (for interface and external
// callees), or worst-case escape.
func (la *lifeAnalysis) callEffects(site *CallSite) (recv paramEffect, params []paramEffect, variadic bool) {
	worstCase := func(n int) []paramEffect {
		out := make([]paramEffect, n)
		for i := range out {
			out[i] = paramEffect{escapes: true}
		}
		return out
	}
	switch site.Kind {
	case CallStatic:
		callee := site.Callees[0]
		if sum, ok := la.get(callee); ok {
			if callee.Obj != nil {
				if sig, ok := callee.Obj.Type().(*types.Signature); ok {
					variadic = sig.Variadic()
				}
			}
			return sum.recv, sum.params, variadic
		}
		return paramEffect{escapes: true}, nil, false
	case CallInterface:
		// Join the implementations' summaries; fall back to the naming
		// convention when none resolve.
		name := calleeName(site.Call)
		if len(site.Callees) > 0 {
			joined := paramEffect{}
			var joinedParams []paramEffect
			for i, callee := range site.Callees {
				sum, ok := la.get(callee)
				if !ok {
					return paramEffect{escapes: true}, worstCase(len(site.Call.Args)), false
				}
				if i == 0 {
					joined, joinedParams = sum.recv, append([]paramEffect(nil), sum.params...)
					continue
				}
				joined = joinEffect(joined, sum.recv)
				for j := range joinedParams {
					if j < len(sum.params) {
						joinedParams[j] = joinEffect(joinedParams[j], sum.params[j])
					} else {
						joinedParams[j].escapes = true
					}
				}
			}
			return joined, joinedParams, false
		}
		if isFreeName(name) {
			return paramEffect{frees: freeAlways}, nil, false
		}
		return paramEffect{escapes: true}, worstCase(len(site.Call.Args)), false
	default: // CallDynamic, CallExternal
		name := calleeName(site.Call)
		if isFreeName(name) {
			// External/unknown teardown: treat the object operand as
			// freed, matching the naming discipline.
			eff := paramEffect{frees: freeAlways}
			if len(site.Call.Args) > 0 {
				return paramEffect{}, []paramEffect{eff}, false
			}
			return eff, nil, false
		}
		return paramEffect{escapes: true}, worstCase(len(site.Call.Args)), false
	}
}

// joinEffect merges two callee effects conservatively.
func joinEffect(a, b paramEffect) paramEffect {
	out := paramEffect{escapes: a.escapes || b.escapes}
	switch {
	case a.frees == b.frees:
		out.frees = a.frees
	case a.frees == freeNone || b.frees == freeNone:
		out.frees = freeMaybe
	default:
		out.frees = freeMaybe
	}
	return out
}

// applyOperand applies one operand's effect to a tracked variable.
func (la *lifeAnalysis) applyOperand(st *lifeState, arg ast.Expr, eff paramEffect, call *ast.CallExpr) {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return
	}
	v, _ := la.info.Uses[id].(*types.Var)
	if v == nil {
		return
	}
	mask, tracked := st.vars[v]
	if !tracked {
		return
	}
	if eff.frees != freeNone {
		if mask&lFreed != 0 && la.report {
			suffix := ""
			if mask&lAlloc != 0 {
				suffix = " on some paths reaching this call"
			}
			la.reports = append(la.reports, lifeReport{pos: call.Pos(), allocPos: la.origins[v].allocPos,
				msg: fmt.Sprintf("double free of %s: already freed%s (annotate //klocs:ignore-lifecycle if the free is idempotent)", v.Name(), suffix)})
		}
		if eff.frees == freeAlways {
			st.vars[v] = lFreed | (mask & lNil)
		} else {
			st.vars[v] = mask | lFreed
		}
		return
	}
	if eff.escapes {
		la.untrack(st, v)
	}
}

// escapeAllIn drops every tracked variable referenced under n.
func (la *lifeAnalysis) escapeAllIn(st *lifeState, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := la.info.Uses[id].(*types.Var); ok {
				if _, tracked := st.vars[v]; tracked {
					la.untrack(st, v)
				}
			}
		}
		return true
	})
}

// refine sharpens state along a branch edge for the nil-check and
// comma-ok idioms.
func (la *lifeAnalysis) refine(st *lifeState, cond ast.Expr, taken bool) {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			la.refine(st, c.X, !taken)
		}
	case *ast.Ident:
		// `if ok { ... }`: ok true means the object is valid.
		v, _ := la.info.Uses[c].(*types.Var)
		if v == nil {
			return
		}
		if obj, linked := st.errLink[v]; linked {
			la.refineObj(st, obj, taken)
		}
	case *ast.BinaryExpr:
		if c.Op != token.EQL && c.Op != token.NEQ {
			return
		}
		var other ast.Expr
		if isNilExpr(la.info, c.X) {
			other = c.Y
		} else if isNilExpr(la.info, c.Y) {
			other = c.X
		} else {
			return
		}
		id, ok := ast.Unparen(other).(*ast.Ident)
		if !ok {
			return
		}
		v, _ := la.info.Uses[id].(*types.Var)
		if v == nil {
			return
		}
		// `x != nil` taken, or `x == nil` not taken → x is valid.
		valid := (c.Op == token.NEQ) == taken
		if obj, linked := st.errLink[v]; linked {
			// err != nil → the allocation failed: the object is nil.
			la.refineObj(st, obj, !valid)
			return
		}
		if _, tracked := st.vars[v]; tracked {
			la.refineObj(st, v, valid)
		}
	}
}

// refineObj narrows a tracked object's state to the valid or nil arm.
func (la *lifeAnalysis) refineObj(st *lifeState, v *types.Var, valid bool) {
	mask, tracked := st.vars[v]
	if !tracked {
		return
	}
	if valid {
		if mask&^lNil != 0 {
			st.vars[v] = mask &^ lNil
		}
	} else {
		st.vars[v] = lNil
	}
}

// callReceiver returns the receiver expression of a method call.
func callReceiver(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// calleeName extracts the syntactic callee name for naming-convention
// fallbacks.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
