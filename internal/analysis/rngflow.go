package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// RNGFlow guards the property the whole reproduction gates on: same
// seed, byte-identical traces. That survives a sharded engine only if
// every random stream has exactly one owner — a stream drawn from two
// lanes interleaves nondeterministically even though each draw is
// individually deterministic. The analyzer enforces the chaos plane's
// per-schedule stream discipline module-wide, in three rules:
//
//   - construction: sim.RNG values are created by sim.NewRNG or
//     forked from a parent with Fork — never assembled as composite
//     literals outside package sim, which would bypass the seeding
//     path;
//   - retention: a *sim.RNG field anywhere in the module is a retained
//     stream and must declare its owner with //klocs:owner=lane (one
//     lane draws from it), owner=epoch (drawn only at barrier
//     quiescence), or owner=init (used only during construction).
//     owner=shared is rejected outright: there is no legal shared
//     stream;
//   - flow: within a function, once a stream is handed to an owner
//     (stored into a field, global, container, or channel, or passed
//     to a callee that retains it — computed bottom-up over the call
//     graph, interface calls joining all implementations), handing it
//     to a second owner or drawing from it again is a diagnostic: fork
//     a child stream instead. Events are matched in source order, an
//     approximation that is exact for the module's straight-line
//     setup code.
//
// False positives carry //klocs:ignore-rngflow with a justification.
var RNGFlow = &ModuleAnalyzer{
	Name: "rngflow",
	Doc:  "require sim.RNG streams to be forked explicitly and confined to one owner",
	Run:  runRNGFlow,
}

const rngFlowMarker = "ignore-rngflow"

// rngSummary is the bottom-up retention summary: which incoming
// streams a function stores beyond the call.
type rngSummary struct {
	recvRetains  bool
	paramRetains []bool
}

func (s rngSummary) eq(o rngSummary) bool {
	if s.recvRetains != o.recvRetains || len(s.paramRetains) != len(o.paramRetains) {
		return false
	}
	for i := range s.paramRetains {
		if s.paramRetains[i] != o.paramRetains[i] {
			return false
		}
	}
	return true
}

func runRNGFlow(pass *ModulePass) error {
	m := pass.Module
	labels := moduleStateLabels(m)

	// Rule 1: every retained stream declares its owner.
	for _, f := range collectRNGFields(m) {
		class := ownerUnclassified
		for _, om := range ownerMarkers {
			if pass.Marked(om.name, f.pos) || (f.typePos.IsValid() && pass.Marked(om.name, f.typePos)) {
				class = om.class
				break
			}
		}
		switch class {
		case ownerShared, ownerAtomic:
			if !pass.Marked(rngFlowMarker, f.pos) {
				pass.Reportf(f.pos, "%s is annotated //klocs:%s but RNG streams must never be shared: a stream drawn from two lanes breaks seed-determinism — fork per-lane child streams instead", f.label, ownerMarkerName(class))
			}
		case ownerUnclassified:
			if !pass.Marked(rngFlowMarker, f.pos) {
				pass.Reportf(f.pos, "%s retains a sim.RNG stream without an owner: annotate //klocs:owner=lane, owner=epoch, or owner=init so the sharded engine knows who may draw from it", f.label)
			}
		}
	}

	// Rule 2: no composite-literal construction outside the RNG type's
	// declaring package (its constructor is the seeding path).
	for _, pkg := range m.Packages {
		info := pkg.Info
		inspectFiles(pkg, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := info.TypeOf(lit)
			if t == nil || !isRNGType(t) || rngDeclaringPath(t) == pkg.Path {
				return true
			}
			if !pass.Marked(rngFlowMarker, lit.Pos()) {
				pass.Reportf(lit.Pos(), "sim.RNG composite literal bypasses the seeding discipline: construct streams with sim.NewRNG or parent.Fork()")
			}
			return true
		})
	}

	// Rule 3: one owner per stream, fork for the next.
	g := m.Graph
	summaries := FixpointSummaries(g, func(n *FuncNode, get func(*FuncNode) (rngSummary, bool)) rngSummary {
		return computeRNGSummary(n, g, get)
	}, func(old, new rngSummary) bool { return !old.eq(new) })
	resolver := func(n *FuncNode) func(*ast.CallExpr, int, bool) (bool, string) {
		sites := make(map[*ast.CallExpr]*CallSite, len(n.Calls))
		for _, site := range n.Calls {
			sites[site.Call] = site
		}
		return func(call *ast.CallExpr, idx int, recv bool) (bool, string) {
			site, ok := sites[call]
			if !ok {
				return false, ""
			}
			for _, callee := range site.Callees {
				sum := summaries[callee]
				if recv && sum.recvRetains {
					return true, callee.String()
				}
				if !recv && idx < len(sum.paramRetains) && sum.paramRetains[idx] {
					return true, callee.String()
				}
			}
			return false, ""
		}
	}
	for _, n := range g.Nodes {
		body := n.Body()
		if body == nil {
			continue
		}
		vars := rngLocalVars(n)
		if len(vars) == 0 {
			continue
		}
		events := collectRNGEvents(n, vars, labels, resolver(n))
		var order []*types.Var
		for v := range events {
			order = append(order, v)
		}
		sort.Slice(order, func(i, j int) bool { return order[i].Pos() < order[j].Pos() })
		for _, v := range order {
			evs := events[v]
			sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
			retainedBy := ""
			for _, ev := range evs {
				switch ev.kind {
				case rngDef:
					retainedBy = ""
				case rngRetain:
					if retainedBy != "" {
						if !pass.Marked(rngFlowMarker, ev.pos) {
							pass.Reportf(ev.pos, "RNG stream %s is handed to a second owner (%s) after %s already took it — fork the stream instead (parent.Fork())", v.Name(), ev.owner, retainedBy)
						}
						continue
					}
					retainedBy = ev.owner
				case rngUse:
					if retainedBy != "" && !pass.Marked(rngFlowMarker, ev.pos) {
						pass.Reportf(ev.pos, "RNG stream %s is used after %s took ownership of it — the owner must be the only reader; fork a child stream for this use", v.Name(), retainedBy)
					}
				}
			}
		}
	}
	return nil
}

// isRNGType reports whether t is (a pointer to) the simulator's RNG
// stream type. Fixture packages may declare their own RNG stand-in.
func isRNGType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "RNG" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "kloc/internal/sim" || strings.HasPrefix(path, "fixture/")
}

// rngDeclaringPath returns the package path declaring the RNG type
// behind t (pointer stripped). Call only after isRNGType.
func rngDeclaringPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Path()
	}
	return ""
}

// rngField is one RNG-typed struct field in the module.
type rngField struct {
	v       *types.Var
	label   string
	pos     token.Pos
	typePos token.Pos
}

// collectRNGFields finds every struct field of RNG type module-wide,
// in deterministic package/type/field order.
func collectRNGFields(m *Module) []rngField {
	var out []rngField
	pkgs := append([]*Package(nil), m.Packages...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	for _, pkg := range pkgs {
		pkgName := pkg.Types.Name()
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !isRNGType(f.Type()) {
					continue
				}
				out = append(out, rngField{
					v:       f,
					label:   pkgName + "." + name + "." + f.Name(),
					pos:     f.Pos(),
					typePos: tn.Pos(),
				})
			}
		}
	}
	return out
}

// rngFieldOwner pairs a field label with its annotated owner class for
// the readiness report.
type rngFieldOwner struct {
	label string
	owner string
}

// collectRNGFieldReport resolves each RNG field's annotation for the
// readiness report.
func collectRNGFieldReport(m *Module, marked func(string, token.Pos) bool) []rngFieldOwner {
	var out []rngFieldOwner
	for _, f := range collectRNGFields(m) {
		if strings.HasPrefix(f.label, "fixture") {
			continue
		}
		owner := "UNANNOTATED"
		for _, om := range ownerMarkers {
			if marked(om.name, f.pos) || (f.typePos.IsValid() && marked(om.name, f.typePos)) {
				owner = om.class.String()
				break
			}
		}
		out = append(out, rngFieldOwner{label: f.label, owner: owner})
	}
	return out
}

// rngLocalVars collects the RNG-typed parameters, receiver, and locals
// of one function.
func rngLocalVars(n *FuncNode) map[*types.Var]bool {
	vars := make(map[*types.Var]bool)
	info := n.Pkg.Info
	add := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if v, ok := info.Defs[id].(*types.Var); ok && isRNGType(v.Type()) {
			vars[v] = true
		}
	}
	if n.Decl != nil {
		if n.Decl.Recv != nil {
			for _, f := range n.Decl.Recv.List {
				for _, name := range f.Names {
					add(name)
				}
			}
		}
		for _, f := range n.Decl.Type.Params.List {
			for _, name := range f.Names {
				add(name)
			}
		}
	}
	if n.Lit != nil {
		for _, f := range n.Lit.Type.Params.List {
			for _, name := range f.Names {
				add(name)
			}
		}
	}
	body := n.Body()
	if body != nil {
		ast.Inspect(body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // its params/locals belong to its own node
			}
			if id, ok := m.(*ast.Ident); ok {
				add(id)
			}
			return true
		})
	}
	return vars
}

type rngEventKind uint8

const (
	rngDef rngEventKind = iota
	rngRetain
	rngUse
)

// rngEvent is one ordered event on a tracked stream variable.
type rngEvent struct {
	kind  rngEventKind
	pos   token.Pos
	owner string
}

// collectRNGEvents classifies every occurrence of the tracked vars by
// its syntactic context: definitions reset the stream, stores into
// fields/globals/containers/channels (or into callees that retain, per
// argRetains) transfer ownership, method draws and argument passes are
// uses. Occurrences inside nested function literals still count — a
// closure drawing from a stream it captured is a real use.
func collectRNGEvents(n *FuncNode, vars map[*types.Var]bool, labels map[*types.Var]string, argRetains func(call *ast.CallExpr, idx int, recv bool) (bool, string)) map[*types.Var][]rngEvent {
	info := n.Pkg.Info
	events := make(map[*types.Var][]rngEvent)
	add := func(v *types.Var, kind rngEventKind, pos token.Pos, owner string) {
		events[v] = append(events[v], rngEvent{kind: kind, pos: pos, owner: owner})
	}
	varOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := info.Uses[id].(*types.Var)
		if v == nil {
			v, _ = info.Defs[id].(*types.Var)
		}
		if v != nil && vars[v] {
			return v
		}
		return nil
	}
	// retainTargetLabel names where a store lands, for the diagnostic.
	retainTargetLabel := func(lhs ast.Expr) (string, bool) {
		refs := stateRefs(info, nil, lhs, false)
		if len(refs) > 0 {
			if l, ok := labels[refs[0]]; ok {
				return l, true
			}
			return refs[0].Name(), true
		}
		switch ast.Unparen(lhs).(type) {
		case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
			return "heap storage", true
		}
		return "", false
	}
	handleAssign := func(lhs, rhs []ast.Expr) {
		if len(lhs) != len(rhs) {
			// Tuple assignment from a call: treat RNG-typed LHS idents as
			// definitions; no tracked RHS idents to classify.
			for _, l := range lhs {
				if v := varOf(l); v != nil {
					add(v, rngDef, l.Pos(), "")
				}
			}
			return
		}
		for i := range lhs {
			if v := varOf(lhs[i]); v != nil {
				add(v, rngDef, lhs[i].Pos(), "")
			}
			if v := varOf(rhs[i]); v != nil {
				if owner, isRetain := retainTargetLabel(lhs[i]); isRetain {
					add(v, rngRetain, rhs[i].Pos(), owner)
				}
			}
		}
	}
	var walk func(m ast.Node) bool
	walk = func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			handleAssign(x.Lhs, x.Rhs)
			// Re-walk the RHS expressions themselves: a call nested in
			// the assignment still retains/uses its arguments. Bare
			// idents have no walk case, so nothing double-counts.
			for _, rhs := range x.Rhs {
				ast.Inspect(rhs, walk)
			}
			return false
		case *ast.GenDecl:
			for _, spec := range x.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Names) == len(vs.Values) {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					handleAssign(lhs, vs.Values)
				}
				for _, val := range vs.Values {
					ast.Inspect(val, walk)
				}
			}
			return false
		case *ast.SendStmt:
			if v := varOf(x.Value); v != nil {
				add(v, rngRetain, x.Value.Pos(), "a channel")
			}
		case *ast.KeyValueExpr:
			if v := varOf(x.Value); v != nil {
				add(v, rngRetain, x.Value.Pos(), "a composite literal")
			}
			return true
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if v := varOf(el); v != nil {
					add(v, rngRetain, el.Pos(), "a composite literal")
				}
			}
			return true
		case *ast.CallExpr:
			// Receiver draw: r.Uint64(), r.Fork() — a use, never a
			// retain (RNG methods do not store their receiver).
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if v := varOf(sel.X); v != nil {
					if isRNGType(info.TypeOf(sel.X)) {
						add(v, rngUse, sel.X.Pos(), "")
					} else if retains, who := argRetains(x, 0, true); retains {
						add(v, rngRetain, sel.X.Pos(), who)
					} else {
						add(v, rngUse, sel.X.Pos(), "")
					}
				}
			}
			for i, arg := range x.Args {
				if v := varOf(arg); v != nil {
					if retains, who := argRetains(x, i, false); retains {
						add(v, rngRetain, arg.Pos(), who)
					} else {
						add(v, rngUse, arg.Pos(), "")
					}
				}
			}
			// Re-walk the arguments: a nested call (keep(a, root.Fork()))
			// classifies its own receiver and arguments. Direct idents
			// were classified above and have no walk case of their own.
			for _, arg := range x.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.RangeStmt:
			if v := varOf(x.Value); v != nil {
				add(v, rngDef, x.Value.Pos(), "")
			}
		}
		return true
	}
	body := n.Body()
	if body != nil {
		ast.Inspect(body, walk)
	}
	return events
}

// computeRNGSummary derives whether a function retains its RNG-typed
// receiver or parameters, composing callee summaries through get.
func computeRNGSummary(n *FuncNode, g *CallGraph, get func(*FuncNode) (rngSummary, bool)) rngSummary {
	var sum rngSummary
	var recvVar *types.Var
	var paramVars []*types.Var
	info := n.Pkg.Info
	grab := func(fl *ast.FieldList, recv bool) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				v, _ := info.Defs[name].(*types.Var)
				if recv {
					recvVar = v
					continue
				}
				paramVars = append(paramVars, v)
			}
			if !recv && len(f.Names) == 0 {
				paramVars = append(paramVars, nil) // unnamed: cannot retain
			}
		}
	}
	if n.Decl != nil {
		grab(n.Decl.Recv, true)
		grab(n.Decl.Type.Params, false)
	}
	if n.Lit != nil {
		grab(n.Lit.Type.Params, false)
	}
	sum.paramRetains = make([]bool, len(paramVars))
	body := n.Body()
	if body == nil {
		return sum
	}
	tracked := make(map[*types.Var]bool)
	if recvVar != nil && isRNGType(recvVar.Type()) {
		tracked[recvVar] = true
	}
	for _, v := range paramVars {
		if v != nil && isRNGType(v.Type()) {
			tracked[v] = true
		}
	}
	if len(tracked) == 0 {
		return sum
	}
	sites := make(map[*ast.CallExpr]*CallSite, len(n.Calls))
	for _, site := range n.Calls {
		sites[site.Call] = site
	}
	argRetains := func(call *ast.CallExpr, idx int, recv bool) (bool, string) {
		site, ok := sites[call]
		if !ok {
			return false, ""
		}
		for _, callee := range site.Callees {
			if s, ok := get(callee); ok {
				if recv && s.recvRetains {
					return true, callee.String()
				}
				if !recv && idx < len(s.paramRetains) && s.paramRetains[idx] {
					return true, callee.String()
				}
			}
		}
		return false, ""
	}
	events := collectRNGEvents(n, tracked, nil, argRetains)
	retained := func(v *types.Var) bool {
		for _, ev := range events[v] {
			if ev.kind == rngRetain {
				return true
			}
		}
		return false
	}
	if recvVar != nil && tracked[recvVar] {
		sum.recvRetains = retained(recvVar)
	}
	for i, v := range paramVars {
		if v != nil && tracked[v] {
			sum.paramRetains[i] = retained(v)
		}
	}
	return sum
}
