package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
)

// This file is the analysistest analog for the vendored framework:
// testdata packages under testdata/src/<name> carry deliberate
// violations annotated with the x/tools "// want" convention, and
// CheckExpectations diffs an analyzer's diagnostics against them. The
// go tool never builds testdata trees, so the seeded bugs cannot leak
// into the real binaries.

// wantRe matches one expectation: `// want "pattern"` with optional
// further quoted patterns. Patterns are regular expressions matched
// against the diagnostic message, as in analysistest.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` entry.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Expectations parses the `// want` comments of a loaded package.
func Expectations(pkg *Package) ([]*expectation, error) {
	var out []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					// The quoted pattern uses Go-string-ish escaping; the
					// only escape we need is \" for embedded quotes.
					pat := strings.ReplaceAll(m[1], `\"`, `"`)
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}

// CheckExpectations runs the analyzer over the package and reports
// every mismatch between its diagnostics and the package's `// want`
// comments: unexpected diagnostics and unmatched expectations. An
// empty return means the analyzer behaved exactly as annotated.
func CheckExpectations(pkg *Package, a *Analyzer) ([]string, error) {
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		return nil, err
	}
	wants, err := Expectations(pkg)
	if err != nil {
		return nil, err
	}
	return diffExpectations(diags, wants), nil
}

// CheckModuleExpectations is CheckExpectations for module analyzers:
// it builds a Module over pkgs, runs the analyzer through the
// interprocedural driver path, and diffs the diagnostics against the
// packages' combined `// want` comments.
func CheckModuleExpectations(pkgs []*Package, a *ModuleAnalyzer) ([]string, error) {
	m := NewModule(pkgs)
	diags, err := RunModuleAnalyzers(m, []*ModuleAnalyzer{a}, nil)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		w, err := Expectations(pkg)
		if err != nil {
			return nil, err
		}
		wants = append(wants, w...)
	}
	return diffExpectations(diags, wants), nil
}

// diffExpectations matches diagnostics against expectations by file
// and line. Each expectation consumes at most one diagnostic, so a
// line that produces two diagnostics needs two `// want` patterns.
func diffExpectations(diags []Diagnostic, wants []*expectation) []string {
	var problems []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("no diagnostic matched want %q at %s:%d", w.pattern.String(), filepath.Base(w.file), w.line))
		}
	}
	return problems
}
