package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AllocPair enforces that simulated allocation entry points have
// matching teardown paths, so the kobj lifetime accounting behind the
// paper's Fig 2 (and the kmemleak-analog sanitizer's leak report)
// stays meaningful:
//
//   - a named type declaring an Alloc* method must also declare a
//     Free*/Release*/Teardown* method — an allocator with no give-back
//     path can only leak;
//   - kobj.NewObject must receive a real release callback, not a
//     literal nil — an object without one detaches its storage from
//     the accounting the moment it dies;
//   - a package that creates kernel objects (calls kobj.NewObject)
//     must also contain a free path: a call to (*kobj.Object).Release
//     and to the ObjectFreed lifecycle hook.
//
// Sites where teardown genuinely lives elsewhere carry a
// //klocs:ignore-allocpair marker with the justification.
var AllocPair = &Analyzer{
	Name: "allocpair",
	Doc:  "require every simulated alloc entry point to have a matching free/teardown path wired to kobj accounting",
	Run:  runAllocPair,
}

const allocPairMarker = "ignore-allocpair"

func runAllocPair(pass *Pass) error {
	checkAllocMethodPairs(pass)
	checkNewObjectSites(pass)
	return nil
}

// checkAllocMethodPairs inspects every package-scope named type.
func checkAllocMethodPairs(pass *Pass) {
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		var firstAlloc *types.Func
		hasTeardown := false
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			switch {
			case strings.HasPrefix(m.Name(), "Alloc"):
				if firstAlloc == nil {
					firstAlloc = m
				}
			case strings.HasPrefix(m.Name(), "Free"),
				strings.HasPrefix(m.Name(), "Release"),
				strings.HasPrefix(m.Name(), "Teardown"):
				hasTeardown = true
			}
		}
		if firstAlloc == nil || hasTeardown {
			continue
		}
		if pass.Marked(allocPairMarker, firstAlloc.Pos()) || pass.Marked(allocPairMarker, tn.Pos()) {
			continue
		}
		pass.Reportf(firstAlloc.Pos(), "%s declares %s but no Free*/Release*/Teardown* method: every allocation entry point needs a matching teardown path (annotate //klocs:ignore-allocpair if teardown lives elsewhere)", tn.Name(), firstAlloc.Name())
	}
}

// checkNewObjectSites audits kobj.NewObject calls and the package's
// free-path presence.
func checkNewObjectSites(pass *Pass) {
	info := pass.Pkg.Info
	var newObjectSites []*ast.CallExpr
	sawRelease := false
	sawObjectFreed := false
	inspectFiles(pass.Pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "kloc/internal/kobj" && fn.Name() == "NewObject":
			newObjectSites = append(newObjectSites, call)
			// Signature: NewObject(id, t, frame, born, release). A literal
			// nil release orphans the storage from the accounting.
			if len(call.Args) == 5 && isNilIdent(info, call.Args[4]) && !pass.Marked(allocPairMarker, call.Pos()) {
				pass.Reportf(call.Args[4].Pos(), "kobj.NewObject with nil release callback: the object's storage would never return to its allocator; pass the freeing closure (annotate //klocs:ignore-allocpair if teardown is truly external)")
			}
		case fn.Name() == "Release" && isKobjObjectMethod(fn):
			sawRelease = true
		case fn.Name() == "ObjectFreed":
			sawObjectFreed = true
		}
		return true
	})
	if len(newObjectSites) == 0 {
		return
	}
	first := newObjectSites[0]
	// Marked is consulted per missing path, once the diagnostic is
	// certain, so the suppression audit sees a real hit or none.
	if !sawRelease && !pass.Marked(allocPairMarker, first.Pos()) {
		pass.Reportf(first.Pos(), "package %s creates kernel objects (kobj.NewObject) but never calls (*kobj.Object).Release: allocation entry points need an in-package teardown path", pass.Pkg.Types.Name())
	}
	if !sawObjectFreed && !pass.Marked(allocPairMarker, first.Pos()) {
		pass.Reportf(first.Pos(), "package %s creates kernel objects (kobj.NewObject) but never fires the ObjectFreed lifecycle hook: frees must reach the kobj lifetime accounting", pass.Pkg.Types.Name())
	}
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// isKobjObjectMethod reports whether fn is a method of
// kloc/internal/kobj.Object.
func isKobjObjectMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Object" && obj.Pkg() != nil && obj.Pkg().Path() == "kloc/internal/kobj"
}
