package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// This file is the suppression audit: markers must earn their keep.
// Every //klocs:<name> comment exists to silence one specific
// diagnostic, with a justification. When the code under a marker is
// refactored — the map range becomes a sorted slice, the sunk error
// starts propagating — the marker survives by inertia and turns into
// misinformation: it documents a suppression that no longer happens
// and silently pre-forgives a future regression at that line.
//
// The audit closes the loop. Analyzers consult Pass.Marked /
// ModulePass.Marked only once a diagnostic is otherwise certain, and
// every positive answer is recorded against the marker comment's own
// location. After the full suite has run, a marker with no recorded
// hit suppressed nothing: AuditSuppressions reports it as stale, and
// a marker whose name is not in the known vocabulary as unknown. The
// audit is only sound over a full-suite, whole-module run (a partial
// -only run would see phantom staleness), so the driver arms it only
// then.

// SuppressAuditName labels audit diagnostics in driver output.
const SuppressAuditName = "suppressaudit"

// knownMarkers is the marker vocabulary the suite consults.
var knownMarkers = map[string]bool{
	"unordered":        true, // nodeterminism: map range is order-insensitive
	"wallclock":        true, // nodeterminism: sanctioned wall-clock read (perf measurement only)
	errnoMarker:        true, // errnocheck/errnoflow: error deliberately sunk or anonymous
	"ignore-allocpair": true, // allocpair: teardown via another path
	lifecycleMarker:    true, // lifecycle: ownership transfer the analysis cannot see
	traceReachMarker:   true, // tracereach: catalog entry reserved intentionally
	"owner=lane":       true, // ownership/rngflow: per-CPU-confined state
	"owner=epoch":      true, // ownership/rngflow: mutated only at epoch quiescence
	"owner=init":       true, // ownership/rngflow: immutable after construction
	"owner=shared":     true, // ownership: shared-mutable, synchronization debt acknowledged
	"owner=atomic":     true, // ownership: lock-free cross-lane access via sync/atomic
	lockCheckMarker:    true, // lockcheck: ordering/release/atomic-mix exception justified
	rngFlowMarker:      true, // rngflow: stream transfer the analysis cannot see
	"phase=lane":       true, // phasecheck: pin — runs on one lane's worker inside an epoch
	"phase=barrier":    true, // phasecheck: pin — coordinator code, lanes quiescent
	"phase=init":       true, // phasecheck: pin — single-goroutine construction
	phaseCheckMarker:   true, // phasecheck: phase-discipline exception justified
}

// AuditSuppressions scans every marker comment in pkgs and reports
// the ones the recorded run never needed (stale) and the ones whose
// name is not in the suite's vocabulary (unknown, likely a typo that
// silently suppresses nothing). Call it only after the full analyzer
// suite has run with audit armed.
func AuditSuppressions(pkgs []*Package, audit *MarkerAudit) []Diagnostic {
	var diags []Diagnostic
	report := func(pkg *Package, c *ast.Comment, format string, args ...any) {
		d := Diagnostic{
			Pos:      pkg.Fset.Position(c.Pos()),
			Analyzer: SuppressAuditName,
		}
		d.Message = fmt.Sprintf(format, args...)
		diags = append(diags, d)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					name, ok := markerName(c.Text)
					if !ok {
						continue
					}
					if !knownMarkers[name] {
						report(pkg, c, "unknown marker //klocs:%s: not in the suite's vocabulary (%s) — it suppresses nothing", name, knownMarkerList())
						continue
					}
					at := pkg.Fset.Position(c.Pos())
					if !audit.Used(at.Filename, at.Line) {
						report(pkg, c, "stale marker //klocs:%s: no analyzer needed this suppression — the code it excused has changed, remove the marker", name)
					}
				}
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// markerName extracts the marker name from a //klocs: comment.
func markerName(text string) (string, bool) {
	const prefix = "//klocs:"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := text[len(prefix):]
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

// knownMarkerList renders the vocabulary deterministically.
func knownMarkerList() string {
	names := make([]string, 0, len(knownMarkers))
	for name := range knownMarkers {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
