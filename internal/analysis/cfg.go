package analysis

import (
	"go/ast"
	"go/token"
)

// This file builds the per-function control-flow graphs the dataflow
// analyses (reaching definitions, liveness, the lifecycle state
// machine) run over. Blocks hold statements in execution order; a
// block that branches carries its condition so path-sensitive clients
// can refine state along the true/false edges (the `if err != nil`
// idiom is what makes the lifecycle analyzer precise enough to gate
// CI). Statements that transfer control — return, break, continue,
// fallthrough — terminate their block; `goto` is not modeled, and a
// function using it yields OK=false so clients can skip it instead of
// analyzing a wrong graph.

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists basic blocks in construction order; Blocks[0] is the
	// entry. Unreachable blocks may appear with no predecessors.
	Blocks []*Block
	// Exit is the synthetic sink every return and fall-off-end reaches.
	Exit *Block
	// OK is false when the body uses control flow the builder does not
	// model (goto); the graph is then incomplete and must not be used.
	OK bool

	// stmtBlock locates the block and in-block index of each statement.
	stmtBlock map[ast.Stmt]stmtLoc
}

type stmtLoc struct {
	block *Block
	index int
}

// A Block is one basic block.
type Block struct {
	Index int
	// Stmts are the block's statements in order. Range statements
	// appear as the last statement of their head block.
	Stmts []ast.Stmt
	// Cond, when set, is the branch condition evaluated after Stmts:
	// Succs[0] is the true edge and Succs[1] the false edge.
	Cond  ast.Expr
	Succs []*Block
	Preds []*Block
	// Return is set when the block ends with a return statement.
	Return *ast.ReturnStmt
}

// Find returns the block and statement index holding stmt.
func (c *CFG) Find(stmt ast.Stmt) (*Block, int, bool) {
	loc, ok := c.stmtBlock[stmt]
	if !ok {
		return nil, 0, false
	}
	return loc.block, loc.index, true
}

type loopCtx struct {
	label         string
	brk, cont     *Block
	isSwitchOrSel bool // break applies, continue does not
}

type cfgBuilder struct {
	cfg   *CFG
	cur   *Block
	loops []loopCtx
	// pendingLabel names the statement about to be built, so labeled
	// break/continue can find their loop.
	pendingLabel string
}

// NewCFG builds the control-flow graph of body. Check OK before use.
func NewCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{OK: true, stmtBlock: make(map[ast.Stmt]stmtLoc)}
	b := &cfgBuilder{cfg: c}
	c.Exit = b.newBlock()
	entry := b.newBlock()
	b.cur = entry
	// Entry must be Blocks[0]: swap the synthetic exit to the back.
	c.Blocks[0], c.Blocks[1] = c.Blocks[1], c.Blocks[0]
	c.Blocks[0].Index, c.Blocks[1].Index = 0, 1
	b.stmts(body.List)
	// Fall off the end of the body.
	b.edge(b.cur, c.Exit)
	return c
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends stmt to the current block.
func (b *cfgBuilder) add(stmt ast.Stmt) {
	b.cfg.stmtBlock[stmt] = stmtLoc{block: b.cur, index: len(b.cur.Stmts)}
	b.cur.Stmts = append(b.cur.Stmts, stmt)
}

// terminate ends the current block (after a jump) and starts a fresh,
// currently-unreachable one for any trailing statements.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, label)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.ReturnStmt:
		b.add(s)
		b.cur.Return = s
		b.edge(b.cur, b.cfg.Exit)
		b.terminate()
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assign, Decl, Expr, IncDec, Defer, Go, Send: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	condBlock := b.cur
	condBlock.Cond = s.Cond
	thenBlock := b.newBlock()
	join := b.newBlock()
	b.edge(condBlock, thenBlock) // true edge first
	b.cur = thenBlock
	b.stmts(s.Body.List)
	b.edge(b.cur, join)
	if s.Else != nil {
		elseBlock := b.newBlock()
		b.edge(condBlock, elseBlock) // false edge second
		b.cur = elseBlock
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(condBlock, join) // false edge second
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	body := b.newBlock()
	exit := b.newBlock()
	if s.Cond != nil {
		head.Cond = s.Cond
		b.edge(head, body) // true
		b.edge(head, exit) // false
	} else {
		b.edge(head, body)
	}
	post := head
	if s.Post != nil {
		post = b.newBlock()
		b.cur = post
		b.add(s.Post)
		b.edge(post, head)
	}
	b.loops = append(b.loops, loopCtx{label: label, brk: exit, cont: post})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, post)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	// The range statement itself sits in the head: its per-iteration
	// key/value definitions belong to every loop entry.
	b.add(s)
	body := b.newBlock()
	exit := b.newBlock()
	b.edge(head, body)
	b.edge(head, exit)
	b.loops = append(b.loops, loopCtx{label: label, brk: exit, cont: head})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, head)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = exit
}

// switchStmt builds value and type switches: init/tag (or the type-
// switch assign) in the head, one block per case, every case entered
// from the head, fallthrough chaining to the next case body.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, label string) {
	if init != nil {
		b.add(init)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	_ = tag
	exit := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, brk: exit, isSwitchOrSel: true})
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, raw := range body.List {
		clause, ok := raw.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(head, blk)
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, clause)
	}
	for i, clause := range clauses {
		b.cur = caseBlocks[i]
		// A fallthrough as the final statement chains into the next
		// case's block; stmts() adds it as a plain statement, so handle
		// the edge here.
		fallsThrough := false
		list := clause.Body
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				list = list[:n-1]
			}
		}
		b.stmts(list)
		if fallsThrough && i+1 < len(caseBlocks) {
			b.edge(b.cur, caseBlocks[i+1])
			b.terminate()
		} else {
			b.edge(b.cur, exit)
		}
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = exit
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	exit := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, brk: exit, isSwitchOrSel: true})
	for _, raw := range s.Body.List {
		clause, ok := raw.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		if clause.Comm != nil {
			b.add(clause.Comm)
		}
		b.stmts(clause.Body)
		b.edge(b.cur, exit)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = exit
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.GOTO:
		b.cfg.OK = false
		b.terminate()
		return
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt; one that reaches here is
		// in an unmodeled position.
		b.terminate()
		return
	}
	want := ""
	if s.Label != nil {
		want = s.Label.Name
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		ctx := b.loops[i]
		if want != "" && ctx.label != want {
			continue
		}
		if s.Tok == token.CONTINUE && ctx.isSwitchOrSel {
			continue // continue skips switch/select contexts
		}
		if s.Tok == token.BREAK {
			b.edge(b.cur, ctx.brk)
		} else {
			b.edge(b.cur, ctx.cont)
		}
		b.terminate()
		return
	}
	// break/continue without a matching context (malformed or labeled
	// beyond what we track): treat as jump to exit, keep OK.
	b.edge(b.cur, b.cfg.Exit)
	b.terminate()
}
