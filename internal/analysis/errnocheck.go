package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrnoCheck forbids silently discarding error returns from the
// module's own functions. The fault plane injects errno-style errors
// (ENOMEM, EIO, EAGAIN, EBUSY) at the alloc/fs/blockdev/netsim/
// pressure fault points; a dropped error there turns an injected fault
// into silent corruption instead of a degraded-but-accounted
// operation. Errors must be returned, wrapped, checked, or explicitly
// sunk with a //klocs:ignore-errno marker carrying the justification.
//
// Scope is deliberately the module (and the package under test): the
// standard library's error discipline is vetted elsewhere, and
// flagging fmt.Println would drown the real signal.
var ErrnoCheck = &Analyzer{
	Name: "errnocheck",
	Doc:  "forbid discarding error returns from the module's alloc/fs/blockdev/netsim/pressure paths",
	Run:  runErrnoCheck,
}

const errnoMarker = "ignore-errno"

func runErrnoCheck(pass *Pass) error {
	inspectFiles(pass.Pkg, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			checkDiscardedCall(pass, s.X, "discarded")
		case *ast.GoStmt:
			checkDiscardedCall(pass, s.Call, "discarded by go statement")
		case *ast.DeferStmt:
			checkDiscardedCall(pass, s.Call, "discarded by defer")
		case *ast.AssignStmt:
			checkBlankErrAssign(pass, s)
		}
		return true
	})
	return nil
}

// checkDiscardedCall flags a call statement whose module-internal
// callee returns an error that nothing receives.
func checkDiscardedCall(pass *Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := moduleCallee(pass, call)
	if fn == nil {
		return
	}
	if idx := errorResultIndex(fn); idx < 0 {
		return
	}
	if pass.Marked(errnoMarker, call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s %s: errno-style errors must propagate (return, wrap, or handle it) or be sunk explicitly with //klocs:ignore-errno", calleeLabel(fn), how)
}

// checkBlankErrAssign flags `_, err`-style tuples where the error
// position lands on the blank identifier.
func checkBlankErrAssign(pass *Pass, s *ast.AssignStmt) {
	// Only the single-call tuple form `a, b := f()` maps LHS positions
	// onto result positions.
	if len(s.Rhs) != 1 || len(s.Lhs) < 2 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := moduleCallee(pass, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(s.Lhs) {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		id, ok := s.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if pass.Marked(errnoMarker, id.Pos()) {
			continue
		}
		pass.Reportf(id.Pos(), "error result of %s assigned to _: errno-style errors must propagate or be sunk explicitly with //klocs:ignore-errno", calleeLabel(fn))
	}
}

// moduleCallee resolves the called function and returns it only when
// it belongs to this module or to the package under analysis.
func moduleCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Pkg.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if path == pass.Pkg.Path {
		return fn
	}
	if path == "kloc" || strings.HasPrefix(path, "kloc/") {
		return fn
	}
	return nil
}

// errorResultIndex returns the index of the first error-typed result,
// or -1.
func errorResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return i
		}
	}
	return -1
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

func calleeLabel(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
