package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck is the lockdep analog for the sharded-engine refactor:
// today the simulation core is deliberately lock-free (lanes plus
// epoch barriers replace locking), and once PR 10 introduces real
// concurrency every mutex and atomic that does appear must follow a
// discipline a deadlock cannot hide in. Three checks, all over the
// interprocedural engine:
//
//   - lock ordering: every acquisition while holding another lock
//     contributes an order edge (held -> acquired), composed through
//     call boundaries by bottom-up may-acquire summaries (interface
//     calls fan out class-hierarchy style, so a cycle threaded through
//     an interface method is still caught). A cycle in the order graph
//     is a potential deadlock, reported at each witnessing edge.
//     Re-acquiring a lock already held — directly or through a callee
//     that may acquire it — is a self-deadlock.
//   - unlock-on-all-paths: CFG may-held analysis (the lifecycle
//     state-machine pattern); a lock still held at function exit with
//     no deferred unlock is reported at its acquisition site.
//   - atomic/plain mixing: storage accessed through sync/atomic
//     anywhere must be accessed through sync/atomic everywhere outside
//     the init phase — one plain fast-path read next to an atomic
//     writer is a data race the race detector only finds when the
//     schedule cooperates.
//
// False positives carry //klocs:ignore-lockcheck with a justification.
var LockCheck = &ModuleAnalyzer{
	Name: "lockcheck",
	Doc:  "enforce lock ordering, unlock-on-all-paths, and atomic/plain access discipline",
	Run:  runLockCheck,
}

const lockCheckMarker = "ignore-lockcheck"

// lockOp classifies one mutex method call site.
type lockOp struct {
	v       *types.Var // lock class: the mutex-holding var or field
	acquire bool
	pos     token.Pos
}

// lockEdge is one order-graph edge: from held while acquiring to.
type lockEdge struct {
	from, to *types.Var
}

type lockChecker struct {
	pass    *ModulePass
	g       *CallGraph
	labels  map[*types.Var]string
	initFns map[*FuncNode]bool
	// acquires is the bottom-up may-acquire summary per function.
	acquires map[*FuncNode]map[*types.Var]bool
	// edges maps order edges to their earliest witness position.
	edges map[lockEdge]token.Pos
}

func runLockCheck(pass *ModulePass) error {
	lc := &lockChecker{
		pass:    pass,
		g:       pass.Module.Graph,
		labels:  moduleStateLabels(pass.Module),
		initFns: initPhaseNodes(pass.Module.Graph),
		edges:   make(map[lockEdge]token.Pos),
	}
	lc.acquires = FixpointSummaries(lc.g, lc.computeAcquires, func(old, new map[*types.Var]bool) bool {
		return len(new) > len(old)
	})
	for _, n := range lc.g.Nodes {
		lc.checkFunc(n)
	}
	lc.reportCycles()
	lc.checkAtomicMixing()
	return nil
}

// label names a lock class or atomic cell for diagnostics.
func (lc *lockChecker) label(v *types.Var) string {
	if s, ok := lc.labels[v]; ok {
		return s
	}
	return v.Name()
}

// computeAcquires derives a function's transitive may-acquire set.
func (lc *lockChecker) computeAcquires(n *FuncNode, get func(*FuncNode) (map[*types.Var]bool, bool)) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	body := n.Body()
	if body == nil {
		return out
	}
	for _, op := range lockOpsIn(n.Pkg.Info, body) {
		if op.acquire {
			out[op.v] = true
		}
	}
	for _, site := range n.Calls {
		for _, callee := range site.Callees {
			if sum, ok := get(callee); ok {
				for v := range sum {
					out[v] = true
				}
			}
		}
	}
	return out
}

// heldSet maps held lock classes to their earliest acquisition site.
type heldSet map[*types.Var]token.Pos

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for v, p := range h {
		out[v] = p
	}
	return out
}

// merge unions other into h keeping the earliest position, reporting
// growth or improvement.
func (h heldSet) merge(other heldSet) bool {
	changed := false
	//klocs:unordered min-position union per distinct key is commutative
	for v, p := range other {
		if cur, ok := h[v]; !ok || p < cur {
			h[v] = p
			changed = true
		}
	}
	return changed
}

// checkFunc runs the may-held CFG analysis over one function:
// self-deadlocks, deadlock-through-call, order edges, and
// unlock-on-all-paths.
func (lc *lockChecker) checkFunc(n *FuncNode) {
	body := n.Body()
	if body == nil {
		return
	}
	cfg := NewCFG(body)
	if !cfg.OK {
		return
	}
	info := n.Pkg.Info
	// Deferred unlocks release at every exit.
	deferred := make(map[*types.Var]bool)
	ast.Inspect(body, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if d, ok := m.(*ast.DeferStmt); ok {
			for _, op := range lockOpsIn(info, d) {
				if !op.acquire {
					deferred[op.v] = true
				}
			}
		}
		return true
	})

	in := make(map[*Block]heldSet, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		in[b] = heldSet{}
	}
	transfer := func(b *Block, state heldSet, report bool) heldSet {
		for _, s := range b.Stmts {
			if _, isDefer := s.(*ast.DeferStmt); isDefer {
				continue // releases at exit, not here
			}
			callsHeld := state
			for _, op := range lockOpsIn(info, s) {
				if op.acquire {
					if report {
						if _, held := state[op.v]; held && !lc.pass.Marked(lockCheckMarker, op.pos) {
							lc.pass.Reportf(op.pos, "acquiring %s while already holding it: self-deadlock", lc.label(op.v))
						}
						//klocs:unordered addEdge keeps the min witness position per pair: commutative
						for held := range state {
							if held != op.v {
								lc.addEdge(held, op.v, op.pos)
							}
						}
					}
					if _, ok := state[op.v]; !ok {
						state[op.v] = op.pos
					}
				} else {
					delete(state, op.v)
				}
			}
			if report && len(callsHeld) > 0 {
				lc.checkCallsUnder(n, s, callsHeld)
			}
		}
		return state
	}
	// Fixpoint, then one reporting pass (the lifecycle two-phase shape).
	work := append([]*Block(nil), cfg.Blocks...)
	for iter := 0; len(work) > 0 && iter < 4*len(cfg.Blocks)+64; iter++ {
		b := work[0]
		work = work[1:]
		out := transfer(b, in[b].clone(), false)
		for _, succ := range b.Succs {
			if in[succ].merge(out) {
				queued := false
				for _, w := range work {
					if w == succ {
						queued = true
						break
					}
				}
				if !queued {
					work = append(work, succ)
				}
			}
		}
	}
	for _, b := range cfg.Blocks {
		transfer(b, in[b].clone(), true)
	}
	// Unlock-on-all-paths: held at the synthetic exit minus deferred.
	exit := in[cfg.Exit]
	var leaked []*types.Var
	for v := range exit {
		if !deferred[v] {
			leaked = append(leaked, v)
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return exit[leaked[i]] < exit[leaked[j]] })
	for _, v := range leaked {
		pos := exit[v]
		if lc.pass.Marked(lockCheckMarker, pos) {
			continue
		}
		lc.pass.Reportf(pos, "%s acquired here is not released on every path out of %s (no unlock or defer covers some exit)", lc.label(v), n.String())
	}
}

// checkCallsUnder reports callees that may re-acquire a held lock and
// records held->acquired order edges through the call, using the
// bottom-up summaries (this is how an inversion threaded through an
// interface method is caught).
func (lc *lockChecker) checkCallsUnder(n *FuncNode, s ast.Stmt, held heldSet) {
	ast.Inspect(s, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, site := range n.Calls {
			if site.Call != call {
				continue
			}
			for _, callee := range site.Callees {
				sum := lc.acquires[callee]
				var acq []*types.Var
				for v := range sum {
					acq = append(acq, v)
				}
				sort.Slice(acq, func(i, j int) bool { return acq[i].Pos() < acq[j].Pos() })
				for _, v := range acq {
					if hp, isHeld := held[v]; isHeld {
						_ = hp
						if !lc.pass.Marked(lockCheckMarker, call.Pos()) {
							lc.pass.Reportf(call.Pos(), "calling %s while holding %s: the callee may acquire %s again — self-deadlock", callee.String(), lc.label(v), lc.label(v))
						}
						continue
					}
					//klocs:unordered addEdge keeps the min witness position per pair: commutative
					for h := range held {
						if h != v {
							lc.addEdge(h, v, call.Pos())
						}
					}
				}
			}
		}
		return true
	})
}

func (lc *lockChecker) addEdge(from, to *types.Var, pos token.Pos) {
	e := lockEdge{from: from, to: to}
	if cur, ok := lc.edges[e]; !ok || pos < cur {
		lc.edges[e] = pos
	}
}

// reportCycles finds strongly connected components of the lock-order
// graph and reports every edge inside one: each is a witness of a
// potential deadlock.
func (lc *lockChecker) reportCycles() {
	if len(lc.edges) == 0 {
		return
	}
	succs := make(map[*types.Var][]*types.Var)
	var nodes []*types.Var
	seen := make(map[*types.Var]bool)
	ordered := make([]lockEdge, 0, len(lc.edges))
	for e := range lc.edges {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool { return lc.edges[ordered[i]] < lc.edges[ordered[j]] })
	for _, e := range ordered {
		succs[e.from] = append(succs[e.from], e.to)
		for _, v := range []*types.Var{e.from, e.to} {
			if !seen[v] {
				seen[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	// Tarjan over the lock-class graph.
	index := make(map[*types.Var]int)
	lowlink := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	comp := make(map[*types.Var]int)
	var stack []*types.Var
	next, ncomp := 0, 0
	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v], lowlink[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	compSize := make(map[int]int)
	for _, c := range comp {
		compSize[c]++
	}
	for _, e := range ordered {
		if comp[e.from] != comp[e.to] || compSize[comp[e.from]] < 2 {
			continue
		}
		pos := lc.edges[e]
		if lc.pass.Marked(lockCheckMarker, pos) {
			continue
		}
		lc.pass.Reportf(pos, "lock order cycle: %s acquired while holding %s, but elsewhere the order is inverted — potential deadlock", lc.label(e.to), lc.label(e.from))
	}
}

// atomicTarget is storage accessed through sync/atomic somewhere in
// the module.
type atomicTarget struct {
	v *types.Var
	// elem marks element-granular atomics (&v[i]): bare mentions of v
	// (len, passing, re-making in init) stay legal, element access must
	// be atomic.
	elem bool
}

// checkAtomicMixing reports plain post-init access to storage that is
// accessed atomically elsewhere.
func (lc *lockChecker) checkAtomicMixing() {
	targets := collectAtomicCells(lc.pass.Module)
	if len(targets) == 0 {
		return
	}
	for _, n := range lc.g.Nodes {
		if n.Decl == nil || n.Decl.Body == nil {
			// Literals are visited through their enclosing walk below.
			continue
		}
		lc.checkAtomicBody(n, n.Decl.Body, targets)
	}
}

func (lc *lockChecker) checkAtomicBody(n *FuncNode, body ast.Node, targets map[*types.Var]atomicTarget) {
	info := n.Pkg.Info
	var walk func(m ast.Node, fn *FuncNode) bool
	walk = func(m ast.Node, fn *FuncNode) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			target := lc.g.NodeOfLit(x)
			if target == nil {
				target = fn
			}
			ast.Inspect(x.Body, func(mm ast.Node) bool { return walk(mm, target) })
			return false
		case *ast.CallExpr:
			if isAtomicCall(info, x) {
				// Sanctioned subtree: do not descend into the arguments.
				return false
			}
		case *ast.IndexExpr:
			if v := lockTargetVar(info, x.X); v != nil {
				if t, ok := targets[v]; ok && t.elem {
					lc.reportPlainAccess(fn, v, x.Pos(), "element")
					return false
				}
			}
		case *ast.RangeStmt:
			// Only an element-reading range (for i, v := range cells) touches
			// the atomic storage; an index-only range reads just the length.
			if x.Value != nil {
				if v := lockTargetVar(info, x.X); v != nil {
					if t, ok := targets[v]; ok && t.elem {
						lc.reportPlainAccess(fn, v, x.X.Pos(), "element")
						// Keep walking the body; only the ranged read is flagged.
					}
				}
			}
		case *ast.Ident, *ast.SelectorExpr:
			if v := lockTargetVar(info, x.(ast.Expr)); v != nil {
				if t, ok := targets[v]; ok && !t.elem {
					lc.reportPlainAccess(fn, v, x.Pos(), "plain")
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(body, func(m ast.Node) bool { return walk(m, n) })
}

func (lc *lockChecker) reportPlainAccess(fn *FuncNode, v *types.Var, pos token.Pos, kind string) {
	if fn != nil && lc.initFns[fn] {
		return // construction happens-before sharing
	}
	if lc.pass.Marked(lockCheckMarker, pos) {
		return
	}
	lc.pass.Reportf(pos, "%s %s access mixes with sync/atomic use of the same storage elsewhere: use atomic operations (or confine the access to the init phase)", lc.label(v), kind)
}

// collectAtomicCells finds every var/field whose storage is passed by
// address to a sync/atomic operation anywhere in the module.
func collectAtomicCells(m *Module) map[*types.Var]atomicTarget {
	out := make(map[*types.Var]atomicTarget)
	for _, pkg := range m.Packages {
		info := pkg.Info
		inspectFiles(pkg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			target := ast.Unparen(addr.X)
			elem := false
			if idx, isIdx := target.(*ast.IndexExpr); isIdx {
				target, elem = idx.X, true
			}
			if v := lockTargetVar(info, target); v != nil {
				if prev, ok := out[v]; !ok || (prev.elem && !elem) {
					out[v] = atomicTarget{v: v, elem: elem}
				}
			}
			return true
		})
	}
	return out
}

// isAtomicCall reports whether call invokes a sync/atomic function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// lockOpsIn extracts mutex Lock/RLock/Unlock/RUnlock calls in a
// subtree, in source order, without descending into nested function
// literals (which are analyzed as their own functions).
func lockOpsIn(info *types.Info, root ast.Node) []lockOp {
	var ops []lockOp
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || !isSyncLockMethod(fn) {
			return true
		}
		v := lockTargetVar(info, sel.X)
		if v == nil {
			return true
		}
		name := fn.Name()
		ops = append(ops, lockOp{v: v, acquire: name == "Lock" || name == "RLock", pos: call.Pos()})
		return true
	})
	return ops
}

// isSyncLockMethod reports whether fn is sync.Mutex/RWMutex
// (un)locking.
func isSyncLockMethod(fn *types.Func) bool {
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockTargetVar resolves the storage a mutex method or atomic operand
// is rooted in: the innermost field, a package var, or a local var.
func lockTargetVar(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.StarExpr:
		return lockTargetVar(info, x.X)
	}
	return nil
}

// moduleStateLabels names every package var ("pkg.Var") and struct
// field ("pkg.Type.field") in the module, for diagnostics and the
// readiness report.
func moduleStateLabels(m *Module) map[*types.Var]string {
	labels := make(map[*types.Var]string)
	for _, pkg := range m.Packages {
		pkgName := pkg.Types.Name()
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.Var:
				labels[obj] = pkgName + "." + name
			case *types.TypeName:
				if obj.IsAlias() {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					labels[st.Field(i)] = pkgName + "." + name + "." + st.Field(i).Name()
				}
			}
		}
	}
	return labels
}

// collectMutexClasses lists the module's mutex-typed vars and fields
// for the readiness report, sorted by label.
func collectMutexClasses(m *Module) []string {
	var out []string
	labels := moduleStateLabels(m)
	for _, pkg := range m.Packages {
		if strings.HasPrefix(pkg.Path, "fixture/") {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.Var:
				if isMutexType(obj.Type()) {
					out = append(out, labels[obj])
				}
			case *types.TypeName:
				named, ok := obj.Type().(*types.Named)
				if !ok || obj.IsAlias() {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if isMutexType(st.Field(i).Type()) {
						out = append(out, labels[st.Field(i)])
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// collectAtomicTargets lists atomic cells for the readiness report.
func collectAtomicTargets(m *Module) []string {
	labels := moduleStateLabels(m)
	cells := collectAtomicCells(m)
	var out []string
	for v, t := range cells {
		label, ok := labels[v]
		if !ok {
			continue // local atomics carry no module-level name
		}
		if t.elem {
			label += " (per-element)"
		}
		out = append(out, label)
	}
	sort.Strings(out)
	return out
}
