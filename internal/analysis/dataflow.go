package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the dataflow layer of the interprocedural engine:
// classic reaching definitions and liveness over the CFGs of cfg.go,
// plus the bottom-up summary fixpoint that lets per-function facts
// (allocates / frees / errno-clean) compose across call boundaries.
// All three are deliberately small textbook implementations — the
// module's functions have tens of blocks, not thousands, so clarity
// beats bitsets.

// A Def is one static definition of a variable.
type Def struct {
	Var *types.Var
	// Rhs is the defining expression; nil when the definition carries
	// no usable expression (range variables, zero-value declarations).
	Rhs ast.Expr
	// Call and Result identify tuple definitions `v, w := f()`: the
	// variable receives result Result of Call. Nil otherwise.
	Call   *ast.CallExpr
	Result int
	// Zero marks a zero-value declaration (`var err error`).
	Zero bool
	Pos  token.Pos
}

// defSet maps variables to the definitions that may reach a point.
type defSet map[*types.Var][]*Def

func (s defSet) clone() defSet {
	out := make(defSet, len(s))
	for v, defs := range s {
		out[v] = append([]*Def(nil), defs...)
	}
	return out
}

// merge unions other into s, returning whether s grew. Definition
// lists keep first-seen order, so iteration stays deterministic.
func (s defSet) merge(other defSet) bool {
	grew := false
	//klocs:unordered per-key union: each variable's def list is built from its own defs only
	for v, defs := range other {
		have := s[v]
		for _, d := range defs {
			found := false
			for _, h := range have {
				if h == d {
					found = true
					break
				}
			}
			if !found {
				have = append(have, d)
				grew = true
			}
		}
		s[v] = have
	}
	return grew
}

// ReachingDefs holds the per-block reaching-definition solution for
// one function.
type ReachingDefs struct {
	cfg  *CFG
	info *types.Info
	// in holds the definitions reaching each block's entry.
	in map[*Block]defSet
	// defs caches stmtDefs per statement: the fixpoint dedups defs by
	// pointer identity, so each statement must yield stable *Def values
	// across iterations.
	defs map[ast.Stmt][]*Def
}

// stmtDefsCached returns the statement's definitions with stable
// identity.
func (r *ReachingDefs) stmtDefsCached(s ast.Stmt) []*Def {
	if d, ok := r.defs[s]; ok {
		return d
	}
	d := stmtDefs(r.info, s)
	r.defs[s] = d
	return d
}

// NewReachingDefs solves reaching definitions over cfg. Parameters
// and named results of sig (if non-nil) enter the entry block as
// Zero/parameter definitions so queries distinguish "defined before
// any assignment" from "unknown variable".
func NewReachingDefs(cfg *CFG, info *types.Info, sig *ast.FuncType, recv *ast.FieldList) *ReachingDefs {
	r := &ReachingDefs{cfg: cfg, info: info, in: make(map[*Block]defSet), defs: make(map[ast.Stmt][]*Def)}
	entry := defSet{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					entry[v] = []*Def{{Var: v, Zero: true, Pos: name.Pos()}}
				}
			}
		}
	}
	addFields(recv)
	if sig != nil {
		addFields(sig.Params)
		addFields(sig.Results)
	}
	for _, b := range cfg.Blocks {
		r.in[b] = defSet{}
	}
	r.in[cfg.Blocks[0]] = entry
	// Worklist iteration to fixpoint.
	work := append([]*Block(nil), cfg.Blocks...)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := r.flow(b, r.in[b].clone())
		for _, succ := range b.Succs {
			if r.in[succ].merge(out) {
				queued := false
				for _, w := range work {
					if w == succ {
						queued = true
						break
					}
				}
				if !queued {
					work = append(work, succ)
				}
			}
		}
	}
	return r
}

// flow applies the block's definitions to state (gen/kill in order).
func (r *ReachingDefs) flow(b *Block, state defSet) defSet {
	for _, s := range b.Stmts {
		for _, d := range r.stmtDefsCached(s) {
			state[d.Var] = []*Def{d}
		}
	}
	return state
}

// At returns the definitions of v that reach statement index upto
// (exclusive) of block b.
func (r *ReachingDefs) At(b *Block, upto int, v *types.Var) []*Def {
	state := r.in[b].clone()
	for i := 0; i < upto && i < len(b.Stmts); i++ {
		for _, d := range r.stmtDefsCached(b.Stmts[i]) {
			state[d.Var] = []*Def{d}
		}
	}
	return state[v]
}

// AtExit returns the definitions of v reaching the end of block b.
func (r *ReachingDefs) AtExit(b *Block, v *types.Var) []*Def {
	return r.At(b, len(b.Stmts), v)
}

// stmtDefs extracts the variable definitions a statement performs.
// Definitions inside nested function literals belong to the literal,
// not this function, and are skipped.
func stmtDefs(info *types.Info, s ast.Stmt) []*Def {
	var defs []*Def
	addIdent := func(id *ast.Ident, rhs ast.Expr, call *ast.CallExpr, result int, zero bool) {
		if id.Name == "_" {
			return
		}
		var v *types.Var
		if d, ok := info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v == nil {
			return
		}
		defs = append(defs, &Def{Var: v, Rhs: rhs, Call: call, Result: result, Zero: zero, Pos: id.Pos()})
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
			// Tuple form: v, w := f() (or a map/type-assertion comma-ok).
			call, _ := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			for i, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					addIdent(id, nil, call, i, false)
				}
			}
			return defs
		}
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			if i < len(s.Rhs) {
				rhs = s.Rhs[i]
			}
			addIdent(id, rhs, nil, 0, false)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Names) > 1 && len(vs.Values) == 1 {
				call, _ := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
				for i, name := range vs.Names {
					addIdent(name, nil, call, i, false)
				}
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					addIdent(name, vs.Values[i], nil, 0, false)
				} else {
					addIdent(name, nil, nil, 0, true)
				}
			}
		}
	case *ast.RangeStmt:
		if s.Tok == token.DEFINE || s.Tok == token.ASSIGN {
			if id, ok := s.Key.(*ast.Ident); ok {
				addIdent(id, nil, nil, 0, false)
			}
			if id, ok := s.Value.(*ast.Ident); ok {
				addIdent(id, nil, nil, 0, false)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := s.X.(*ast.Ident); ok {
			addIdent(id, nil, nil, 0, false)
		}
	}
	return defs
}

// Liveness holds the per-block live-variable solution: LiveOut(b) is
// the set of variables whose current value may still be read on some
// path leaving b.
type Liveness struct {
	liveOut map[*Block]map[*types.Var]bool
}

// NewLiveness solves backward liveness over cfg.
func NewLiveness(cfg *CFG, info *types.Info) *Liveness {
	l := &Liveness{liveOut: make(map[*Block]map[*types.Var]bool)}
	use := make(map[*Block]map[*types.Var]bool)
	def := make(map[*Block]map[*types.Var]bool)
	liveIn := make(map[*Block]map[*types.Var]bool)
	for _, b := range cfg.Blocks {
		use[b], def[b] = blockUseDef(info, b)
		l.liveOut[b] = map[*types.Var]bool{}
		liveIn[b] = map[*types.Var]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := len(cfg.Blocks) - 1; i >= 0; i-- {
			b := cfg.Blocks[i]
			out := l.liveOut[b]
			for _, succ := range b.Succs {
				//klocs:unordered set union is commutative
				for v := range liveIn[succ] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := liveIn[b]
			//klocs:unordered set union is commutative
			for v := range use[b] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			//klocs:unordered set union minus a fixed def set is commutative
			for v := range out {
				if !def[b][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return l
}

// LiveOut reports whether v is live on exit from b.
func (l *Liveness) LiveOut(b *Block, v *types.Var) bool { return l.liveOut[b][v] }

// blockUseDef computes upward-exposed uses and definitions of b.
// Conservative for aggregates: any identifier read counts as a use.
func blockUseDef(info *types.Info, b *Block) (use, def map[*types.Var]bool) {
	use = map[*types.Var]bool{}
	def = map[*types.Var]bool{}
	record := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, isLit := m.(*ast.FuncLit); isLit {
				// A closure's reads keep captured variables live for the
				// whole enclosing function; over-approximate by counting
				// them as uses here.
				return true
			}
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && !def[v] {
					use[v] = true
				}
			}
			return true
		})
	}
	for _, s := range b.Stmts {
		// Uses before defs within the statement: visit RHS-ish children
		// first by recording the whole statement, then the defs.
		record(s)
		for _, d := range stmtDefs(info, s) {
			def[d.Var] = true
		}
	}
	if b.Cond != nil {
		record(b.Cond)
	}
	return use, def
}

// FixpointSummaries computes one summary per function, bottom-up over
// the call graph's strongly connected components. compute derives a
// function's summary from its body, reading callee summaries through
// get (which reports false for functions not yet summarized — only
// possible inside a cycle, where the fixpoint iteration supplies
// successively better approximations). changed reports whether a
// recomputed summary differs from the previous one; each SCC iterates
// until stable, with an iteration cap as a defensive bound.
func FixpointSummaries[S any](g *CallGraph, compute func(n *FuncNode, get func(*FuncNode) (S, bool)) S, changed func(old, new S) bool) map[*FuncNode]S {
	summaries := make(map[*FuncNode]S, len(g.Nodes))
	have := make(map[*FuncNode]bool, len(g.Nodes))
	get := func(n *FuncNode) (S, bool) {
		s, ok := summaries[n]
		if !have[n] {
			return s, false
		}
		return s, ok
	}
	for _, scc := range g.SCCs() {
		// One pass establishes initial summaries; cycles iterate.
		for _, n := range scc {
			summaries[n] = compute(n, get)
			have[n] = true
		}
		if len(scc) == 1 {
			selfLoop := false
			for _, site := range scc[0].Calls {
				for _, m := range site.Callees {
					if m == scc[0] {
						selfLoop = true
					}
				}
			}
			if !selfLoop {
				continue
			}
		}
		for iter := 0; iter < 32; iter++ {
			stable := true
			for _, n := range scc {
				next := compute(n, get)
				if changed(summaries[n], next) {
					stable = false
				}
				summaries[n] = next
			}
			if stable {
				break
			}
		}
	}
	return summaries
}
