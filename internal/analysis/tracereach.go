package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// TraceReach is the reverse of tracenames: where tracenames proves
// every Emit site uses a registered catalog name, this analyzer
// proves every registered catalog name still has a live Emit site. A
// catalog constant with no reachable emitter is a dead entry — it
// shows up in trace.Names(), -trace-events patterns match it, and
// OBSERVABILITY.md documents it, but no run can ever produce the
// event. That is exactly the drift a tracepoint catalog accumulates
// when subsystems are refactored and their instrumentation is
// deleted without unregistering the event.
//
// Reachability runs over the module call graph from its entry
// surface: exported functions and methods, main, init, and functions
// referenced from package-level initializers. An Emit site buried in
// an unexported function nothing calls does not keep its catalog
// entry alive. Catalog constants kept intentionally (e.g. reserved
// for an in-flight subsystem) carry //klocs:ignore-tracereach with
// the justification.
var TraceReach = &ModuleAnalyzer{
	Name: "tracereach",
	Doc:  "require every internal/trace catalog constant to be emitted from reachable code",
	Run:  runTraceReach,
}

const traceReachMarker = "ignore-tracereach"

func runTraceReach(pass *ModulePass) error {
	g := pass.Module.Graph

	// The catalog under audit: package-level constants of type
	// trace.Name declared anywhere in the analyzed packages.
	type catalogEntry struct {
		name  string
		ident string
		pos   token.Pos
	}
	var catalog []catalogEntry
	for _, pkg := range pass.Module.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !isTraceName(c.Type()) {
				continue
			}
			if c.Val().Kind() != constant.String {
				continue
			}
			catalog = append(catalog, catalogEntry{
				name:  constant.StringVal(c.Val()),
				ident: name,
				pos:   c.Pos(),
			})
		}
	}
	if len(catalog) == 0 {
		return nil
	}

	reached := g.Reachable(entrySurface(g))

	// Names emitted from reachable code.
	emitted := make(map[string]bool)
	for _, n := range g.Nodes {
		if !reached[n] {
			continue
		}
		body := n.Body()
		if body == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || !isTracerEmit(fn) || len(call.Args) == 0 {
				return true
			}
			if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				emitted[constant.StringVal(tv.Value)] = true
			}
			return true
		})
	}

	sort.Slice(catalog, func(i, j int) bool { return catalog[i].pos < catalog[j].pos })
	for _, entry := range catalog {
		if emitted[entry.name] {
			continue
		}
		if pass.Marked(traceReachMarker, entry.pos) {
			continue
		}
		pass.Reportf(entry.pos, "trace catalog constant %s (%q) has no reachable Tracer.Emit site: dead catalog entry — emit it, delete it, or annotate //klocs:ignore-tracereach", entry.ident, entry.name)
	}
	return nil
}

// isTraceName reports whether t is kloc/internal/trace.Name.
func isTraceName(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Name" && obj.Pkg() != nil && obj.Pkg().Path() == "kloc/internal/trace"
}
