package pressure

import (
	"testing"

	"kloc/internal/fault"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

func newTestMem(fast, slow int) *memsim.Memory {
	return memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: fast, SlowPages: slow,
		FastBandwidth: 30, BandwidthRatio: 4, CPUs: 1,
	})
}

// frameShrinker owns real frames on the memory and frees up to n per
// Scan, so the plane's free-page-delta progress accounting is
// exercised against actual allocator state.
type frameShrinker struct {
	name   string
	mem    *memsim.Memory
	frames []*memsim.Frame
	// perScan caps pages freed per Scan call (0 = honor n).
	perScan int
	scans   int
}

func (s *frameShrinker) fill(t *testing.T, node memsim.NodeID, pages int) {
	t.Helper()
	for i := 0; i < pages; i++ {
		f, err := s.mem.Alloc(node, memsim.ClassCache, 0)
		if err != nil {
			t.Fatalf("fill %s: %v", s.name, err)
		}
		s.frames = append(s.frames, f)
	}
}

func (s *frameShrinker) Name() string { return s.name }
func (s *frameShrinker) Count() int   { return len(s.frames) }

func (s *frameShrinker) Scan(ctx *kstate.Ctx, n int) int {
	s.scans++
	if s.perScan > 0 && n > s.perScan {
		n = s.perScan
	}
	freed := 0
	for freed < n && len(s.frames) > 0 {
		f := s.frames[len(s.frames)-1]
		s.frames = s.frames[:len(s.frames)-1]
		s.mem.Free(f)
		freed++
	}
	return freed
}

// dryShrinker claims objects but never frees anything — the
// no-progress case.
type dryShrinker struct{ scans int }

func (s *dryShrinker) Name() string                  { return "dry" }
func (s *dryShrinker) Count() int                    { return 1 << 20 }
func (s *dryShrinker) Scan(_ *kstate.Ctx, _ int) int { s.scans++; return 0 }

func TestNilPlaneNoOps(t *testing.T) {
	var p *Plane
	p.Register(&dryShrinker{})
	p.Configure(Config{})
	if got := p.DirectReclaim(&kstate.Ctx{}); got != 0 {
		t.Fatalf("nil plane reclaimed %d", got)
	}
	if p.ShrinkerNames() != nil || p.ShrinkerStats() != nil {
		t.Fatal("nil plane reported shrinkers")
	}
	if p.KswapdEnabled() {
		t.Fatal("nil plane has kswapd")
	}
}

func TestConfigureDerivesWatermarks(t *testing.T) {
	mem := newTestMem(256, 256)
	p := NewPlane(mem, memsim.FastNode)
	p.Configure(Config{})
	wm := mem.Node(memsim.FastNode).NodeWatermarks()
	want := memsim.DeriveWatermarks(256)
	if wm != want {
		t.Fatalf("derived watermarks = %+v, want %+v", wm, want)
	}
	// Explicit watermarks are installed verbatim.
	p.Configure(Config{Watermarks: memsim.Watermarks{Min: 10, Low: 20, High: 30}})
	if wm := mem.Node(memsim.FastNode).NodeWatermarks(); wm.Min != 10 || wm.High != 30 {
		t.Fatalf("explicit watermarks not installed: %+v", wm)
	}
}

func TestDirectReclaimFreesTowardTarget(t *testing.T) {
	mem := newTestMem(256, 256)
	p := NewPlane(mem, memsim.FastNode)
	sh := &frameShrinker{name: "cache", mem: mem}
	sh.fill(t, memsim.FastNode, 200)
	p.Register(sh)

	freed := p.DirectReclaim(&kstate.Ctx{})
	if freed < minReclaimTarget {
		t.Fatalf("freed %d, want at least the %d-page floor", freed, minReclaimTarget)
	}
	if p.Stats.DirectReclaims != 1 || p.Stats.DirectReclaimPages != uint64(freed) {
		t.Fatalf("stats = %+v", p.Stats)
	}
	st := p.ShrinkerStats()
	if len(st) != 1 || st[0].FreedPages != uint64(freed) || st[0].FreedObjects == 0 {
		t.Fatalf("shrinker stats = %+v", st)
	}
}

func TestDirectReclaimBoundedRetries(t *testing.T) {
	mem := newTestMem(1024, 0)
	p := NewPlane(mem, memsim.FastNode)
	// 2 pages per round against a 64-page floor: the retry budget, not
	// the target, must stop the loop.
	sh := &frameShrinker{name: "slow", mem: mem, perScan: 2}
	sh.fill(t, memsim.FastNode, 512)
	p.Register(sh)
	p.Configure(Config{DirectRetries: 3})

	freed := p.DirectReclaim(&kstate.Ctx{})
	if freed != 6 {
		t.Fatalf("freed %d pages, want 3 rounds x 2", freed)
	}
	if sh.scans != 3 {
		t.Fatalf("scans = %d, want the retry budget", sh.scans)
	}
}

func TestDirectReclaimStopsOnNoProgress(t *testing.T) {
	mem := newTestMem(256, 256)
	p := NewPlane(mem, memsim.FastNode)
	dry := &dryShrinker{}
	p.Register(dry)

	if freed := p.DirectReclaim(&kstate.Ctx{}); freed != 0 {
		t.Fatalf("dry reclaim freed %d", freed)
	}
	if dry.scans != 1 {
		t.Fatalf("scans = %d; no-progress must stop after one round", dry.scans)
	}
}

// reentrantShrinker calls back into DirectReclaim from Scan, as a
// writeback path that allocates might.
type reentrantShrinker struct {
	p     *Plane
	inner int
}

func (s *reentrantShrinker) Name() string { return "reentrant" }
func (s *reentrantShrinker) Count() int   { return 1 }

func (s *reentrantShrinker) Scan(ctx *kstate.Ctx, _ int) int {
	s.inner = s.p.DirectReclaim(ctx)
	return 0
}

func TestDirectReclaimReentrancyGuard(t *testing.T) {
	mem := newTestMem(256, 256)
	p := NewPlane(mem, memsim.FastNode)
	sh := &reentrantShrinker{p: p}
	p.Register(sh)

	p.DirectReclaim(&kstate.Ctx{})
	if sh.inner != 0 {
		t.Fatalf("recursive reclaim returned %d, want 0", sh.inner)
	}
	if p.Stats.DirectReclaims != 1 {
		t.Fatalf("recursive entry counted: %+v", p.Stats)
	}
	if mem.InAtomic() {
		t.Fatal("atomic context leaked after reclaim")
	}
}

func TestDirectReclaimRunsInAtomicContext(t *testing.T) {
	mem := newTestMem(256, 256)
	p := NewPlane(mem, memsim.FastNode)
	saw := false
	p.Register(&funcShrinker{count: 1, scan: func(*kstate.Ctx, int) int {
		saw = mem.InAtomic()
		return 0
	}})
	p.DirectReclaim(&kstate.Ctx{})
	if !saw {
		t.Fatal("shrinkers did not run under the PF_MEMALLOC reserve")
	}
}

type funcShrinker struct {
	count int
	scan  func(*kstate.Ctx, int) int
}

func (s *funcShrinker) Name() string                  { return "func" }
func (s *funcShrinker) Count() int                    { return s.count }
func (s *funcShrinker) Scan(c *kstate.Ctx, n int) int { return s.scan(c, n) }

func TestDirectReclaimFaultAborts(t *testing.T) {
	mem := newTestMem(256, 256)
	mem.Fault = fault.NewPlane(fault.Config{
		Seed:  1,
		Rules: map[fault.Point]fault.Rule{fault.Reclaim: {Prob: 1}},
	})
	p := NewPlane(mem, memsim.FastNode)
	sh := &frameShrinker{name: "cache", mem: mem}
	sh.fill(t, memsim.FastNode, 100)
	p.Register(sh)

	if freed := p.DirectReclaim(&kstate.Ctx{}); freed != 0 {
		t.Fatalf("faulted reclaim freed %d", freed)
	}
	if p.Stats.ReclaimFaults != 1 || sh.scans != 0 {
		t.Fatalf("fault did not abort before scanning: %+v scans=%d", p.Stats, sh.scans)
	}
}

// fakeOOM records eviction requests and frees pages to fake progress.
type fakeOOM struct {
	mem    *memsim.Memory
	frames []*memsim.Frame
	calls  int
}

func (o *fakeOOM) EvictWorst(_ *kstate.Ctx, node memsim.NodeID) int {
	o.calls++
	freed := 0
	for _, f := range o.frames {
		o.mem.Free(f)
		freed += f.Pages()
	}
	o.frames = nil
	return freed
}

func TestDirectReclaimOOMLastResort(t *testing.T) {
	mem := newTestMem(64, 64)
	p := NewPlane(mem, memsim.FastNode)
	p.Configure(Config{}) // derived: Min=4 for a 64-page node
	dry := &dryShrinker{}
	p.Register(dry)

	// Drain the node below Min so the OOM path is eligible.
	var frames []*memsim.Frame
	exit := mem.EnterAtomic() // dip past the reserve gate
	for i := 0; i < 62; i++ {
		f, err := mem.Alloc(memsim.FastNode, memsim.ClassApp, 0)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	exit()
	oom := &fakeOOM{mem: mem, frames: frames[:8]}
	p.OOM = oom

	freed := p.DirectReclaim(&kstate.Ctx{})
	if oom.calls != 1 || freed != 8 {
		t.Fatalf("oom calls=%d freed=%d, want 1/8", oom.calls, freed)
	}
	if p.Stats.OOMEvictions != 1 || p.Stats.OOMPagesSpilled != 8 {
		t.Fatalf("stats = %+v", p.Stats)
	}

	// Above Min, a dry reclaim must NOT invoke the OOM killer.
	oom.calls = 0
	p.DirectReclaim(&kstate.Ctx{})
	if oom.calls != 0 {
		t.Fatal("OOM invoked while above the Min watermark")
	}
}

func TestKswapdReclaimsInBackground(t *testing.T) {
	eng := sim.NewEngine()
	mem := newTestMem(256, 256)
	p := NewPlane(mem, memsim.FastNode)
	sh := &frameShrinker{name: "cache", mem: mem}
	// Node at 16 free pages — below Low (5 for cap 256? derived min=4,
	// low=5, high=6) only if we use tighter marks; install explicit
	// ones so the scenario is unambiguous.
	sh.fill(t, memsim.FastNode, 240)
	p.Register(sh)
	p.Configure(Config{
		Watermarks:   memsim.Watermarks{Min: 8, Low: 32, High: 64},
		KswapdPeriod: sim.Millisecond,
	})
	if !p.KswapdEnabled() {
		t.Fatal("kswapd not enabled")
	}
	p.StartKswapd(eng)
	eng.RunUntil(sim.Time(0).Add(10 * sim.Millisecond))

	free := mem.Node(memsim.FastNode).Free()
	if free < 64 {
		t.Fatalf("kswapd left free=%d, want >= High=64", free)
	}
	if p.Stats.KswapdWakeups == 0 || p.Stats.KswapdPages == 0 {
		t.Fatalf("kswapd stats empty: %+v", p.Stats)
	}
	// Once above Low, further ticks are no-ops.
	wakes := p.Stats.KswapdWakeups
	eng.RunUntil(sim.Time(0).Add(20 * sim.Millisecond))
	if p.Stats.KswapdWakeups != wakes {
		t.Fatalf("kswapd kept waking above Low: %d -> %d", wakes, p.Stats.KswapdWakeups)
	}
}

func TestKswapdDeterminism(t *testing.T) {
	run := func() (Stats, int) {
		eng := sim.NewEngine()
		mem := newTestMem(256, 256)
		p := NewPlane(mem, memsim.FastNode)
		sh := &frameShrinker{name: "cache", mem: mem}
		sh.fill(t, memsim.FastNode, 250)
		p.Register(sh)
		p.Configure(Config{KswapdPeriod: sim.Millisecond})
		p.StartKswapd(eng)
		eng.RunUntil(sim.Time(0).Add(5 * sim.Millisecond))
		return p.Stats, mem.Node(memsim.FastNode).Free()
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 || f1 != f2 {
		t.Fatalf("kswapd nondeterministic: %+v/%d vs %+v/%d", s1, f1, s2, f2)
	}
}

func TestShrinkerRegistrationOrderIsScanOrder(t *testing.T) {
	mem := newTestMem(256, 256)
	p := NewPlane(mem, memsim.FastNode)
	var order []string
	mk := func(name string) Shrinker {
		return &funcShrinker{count: 1, scan: func(*kstate.Ctx, int) int {
			order = append(order, name)
			return 0
		}}
	}
	p.Register(mk("a"))
	p.Register(mk("b"))
	p.Register(mk("c"))
	p.DirectReclaim(&kstate.Ctx{})
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("scan order = %v", order)
	}
}
