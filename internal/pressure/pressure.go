// Package pressure is the simulator's memory-pressure plane: the
// control loops a real kernel runs between "allocation failed" and
// "process killed". It models Linux's min/low/high zone watermarks, a
// kswapd-analog background reclaimer ticking in virtual time, a
// registry of count/scan shrinkers (page cache, dentry/inode caches,
// skbuff pools), direct reclaim with a bounded retry budget, a
// GFP_ATOMIC emergency reserve for contexts that cannot sleep (packet
// ingress, journal commits), and an OOM-grade degradation path that
// spills the worst-scoring KLOC context to the slow tier instead of
// panicking.
//
// Determinism: the plane draws no randomness of its own. Reclaim
// rounds consult the fault plane's pressure.reclaim point (its private
// RNG stream) and everything else is driven by virtual time and
// deterministic shrinker state, so two runs at the same seed produce
// byte-identical reclaim behaviour.
package pressure

import (
	"kloc/internal/fault"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

// Shrinker is the Linux count_objects/scan_objects interface: Count
// reports how many objects the cache could give back, Scan frees up to
// n of them and reports how many it actually freed. Scan must be safe
// to call re-entrantly from any kernel path (the plane guards against
// reclaim recursion itself).
type Shrinker interface {
	Name() string
	Count() int
	Scan(ctx *kstate.Ctx, n int) int
}

// OOMEvictor is the last-resort degradation path: evict the
// worst-scoring context's relocatable objects off the pressured node
// (spilling them to the slow tier, or freeing them if no tier has
// room) and report the pages recovered on that node.
type OOMEvictor interface {
	EvictWorst(ctx *kstate.Ctx, node memsim.NodeID) int
}

// ShrinkerStat is one shrinker's cumulative reclaim accounting.
type ShrinkerStat struct {
	Name string
	// Scans counts Scan invocations.
	Scans uint64
	// FreedObjects sums Scan return values.
	FreedObjects uint64
	// FreedPages sums the free-page growth attributed to this
	// shrinker's scans.
	FreedPages uint64
}

// Stats aggregates the plane's counters for harness reporting.
type Stats struct {
	// DirectReclaims counts direct-reclaim invocations (allocation
	// slow path entered).
	DirectReclaims uint64
	// DirectReclaimPages counts pages recovered by direct reclaim,
	// including OOM spills it triggered.
	DirectReclaimPages uint64
	// KswapdWakeups counts background ticks that found the node below
	// the low watermark and reclaimed.
	KswapdWakeups uint64
	// KswapdPages counts pages recovered by the background reclaimer.
	KswapdPages uint64
	// OOMEvictions / OOMPagesSpilled count last-resort context
	// evictions and the pages they recovered.
	OOMEvictions    uint64
	OOMPagesSpilled uint64
	// ReclaimFaults counts reclaim rounds aborted by the fault plane's
	// pressure.reclaim point.
	ReclaimFaults uint64
}

// Config tunes the plane. The zero value keeps the reserve gate off
// (no watermarks installed) and kswapd disabled; direct reclaim and
// the shrinker registry work regardless.
type Config struct {
	// Watermarks to install on the pressured node; zero derives them
	// from the node capacity (min ≈ capacity/64).
	Watermarks memsim.Watermarks
	// KswapdPeriod is the background reclaimer's tick period; zero
	// disables the daemon.
	KswapdPeriod sim.Duration
	// KswapdBatch bounds the reclaim rounds per wakeup (default 8).
	KswapdBatch int
	// DirectRetries bounds the shrink rounds per direct-reclaim call
	// (default 4).
	DirectRetries int
}

// defaults for zero Config fields.
const (
	defaultDirectRetries = 4
	defaultKswapdBatch   = 8
	// minReclaimTarget is the floor on a direct-reclaim page target,
	// replacing the old hardcoded one-shot FS.Reclaim(ctx, 64).
	minReclaimTarget = 64
)

type shrinkerEntry struct {
	s    Shrinker
	stat ShrinkerStat
}

// Plane is the armed pressure subsystem for one pressured node
// (the fast tier). A nil *Plane is valid: every method no-ops.
type Plane struct {
	Mem *memsim.Memory
	// Node is the pressured node whose watermarks drive reclaim.
	Node memsim.NodeID
	// OOM, when non-nil, is the last-resort eviction path.
	OOM OOMEvictor

	cfg Config
	// shrinkers in registration order — the scan order, so the order
	// of Register calls is part of the deterministic behaviour.
	shrinkers []*shrinkerEntry
	// reclaiming guards against reclaim recursion (a shrinker whose
	// writeback path allocates must not re-enter reclaim) — the
	// PF_MEMALLOC analog.
	reclaiming bool
	// kswapdOn remembers that StartKswapd armed the daemon.
	kswapdOn bool

	// Trace, when non-nil, records pressure.kswapd.wake and
	// pressure.direct_reclaim events. Strictly passive.
	Trace *trace.Tracer

	Stats Stats
}

// NewPlane builds a pressure plane for the given pressured node. The
// plane is functional immediately (direct reclaim, shrinkers, OOM);
// Configure installs watermarks and enables kswapd.
func NewPlane(mem *memsim.Memory, node memsim.NodeID) *Plane {
	return &Plane{Mem: mem, Node: node}
}

// Configure applies cfg: watermarks are installed on the pressured
// node (derived from capacity when zero), enabling the allocation
// reserve gate in memsim.
func (p *Plane) Configure(cfg Config) {
	if p == nil {
		return
	}
	n := p.Mem.Node(p.Node)
	if cfg.Watermarks.Zero() {
		cfg.Watermarks = memsim.DeriveWatermarks(n.Capacity)
	}
	n.SetWatermarks(cfg.Watermarks)
	p.cfg = cfg
}

// Register appends a shrinker to the registry. Registration order is
// scan order.
func (p *Plane) Register(s Shrinker) {
	if p == nil {
		return
	}
	p.shrinkers = append(p.shrinkers, &shrinkerEntry{s: s, stat: ShrinkerStat{Name: s.Name()}})
}

// ShrinkerNames lists registered shrinkers in scan order.
func (p *Plane) ShrinkerNames() []string {
	if p == nil {
		return nil
	}
	out := make([]string, len(p.shrinkers))
	for i, e := range p.shrinkers {
		out[i] = e.s.Name()
	}
	return out
}

// ShrinkerStats returns per-shrinker reclaim accounting in scan order.
func (p *Plane) ShrinkerStats() []ShrinkerStat {
	if p == nil {
		return nil
	}
	out := make([]ShrinkerStat, len(p.shrinkers))
	for i, e := range p.shrinkers {
		out[i] = e.stat
	}
	return out
}

// watermarks returns the operative watermarks for the pressured node:
// the installed ones, or capacity-derived defaults when the reserve
// gate is off (so reclaim targets are sensible either way).
func (p *Plane) watermarks() memsim.Watermarks {
	n := p.Mem.Node(p.Node)
	if w := n.NodeWatermarks(); !w.Zero() {
		return w
	}
	return memsim.DeriveWatermarks(n.Capacity)
}

// totalFree sums free pages across all nodes. Shrinkers free objects
// wherever they live; any freed page can satisfy a fallback-order
// retry, so progress is measured globally.
func (p *Plane) totalFree() int {
	free := 0
	for _, n := range p.Mem.Nodes {
		free += n.Free()
	}
	return free
}

// shrinkAll runs one round over the registry, asking each shrinker for
// up to want objects. Returns objects freed and the global free-page
// growth. Pages are attributed to the shrinker whose scan produced
// them.
func (p *Plane) shrinkAll(ctx *kstate.Ctx, want int) (objs, pages int) {
	for _, e := range p.shrinkers {
		avail := e.s.Count()
		if avail == 0 {
			continue
		}
		batch := want
		if batch > avail {
			batch = avail
		}
		if batch < 1 {
			batch = 1
		}
		before := p.totalFree()
		n := e.s.Scan(ctx, batch)
		delta := p.totalFree() - before
		if delta < 0 {
			delta = 0
		}
		e.stat.Scans++
		e.stat.FreedObjects += uint64(n)
		e.stat.FreedPages += uint64(delta)
		objs += n
		pages += delta
	}
	return objs, pages
}

// oomEvict runs the last-resort path and returns pages recovered.
func (p *Plane) oomEvict(ctx *kstate.Ctx) int {
	if p.OOM == nil {
		return 0
	}
	spilled := p.OOM.EvictWorst(ctx, p.Node)
	if spilled > 0 {
		p.Stats.OOMEvictions++
		p.Stats.OOMPagesSpilled += uint64(spilled)
	}
	return spilled
}

// DirectReclaim is the allocation slow path: called after an ENOMEM,
// it shrinks the registered caches toward the high watermark with a
// bounded retry budget, stopping early on no-progress, and falls back
// to the OOM evictor when the caches are dry and the node sits below
// its Min watermark. Runs in atomic context (PF_MEMALLOC): its own
// allocations (writeback bios) may dip into the reserve and never
// recurse into reclaim. Returns pages recovered (0 = give up).
func (p *Plane) DirectReclaim(ctx *kstate.Ctx) int {
	if p == nil || p.reclaiming {
		return 0
	}
	p.reclaiming = true
	exit := p.Mem.EnterAtomic()
	defer func() {
		exit()
		p.reclaiming = false
	}()
	p.Stats.DirectReclaims++

	node := p.Mem.Node(p.Node)
	wm := p.watermarks()
	target := wm.High - node.Free()
	if target < minReclaimTarget {
		target = minReclaimTarget
	}
	retries := p.cfg.DirectRetries
	if retries <= 0 {
		retries = defaultDirectRetries
	}

	freed := 0
	for round := 0; round < retries && freed < target; round++ {
		if e := p.Mem.Fault.Check(fault.Reclaim, ctx.Now); e != 0 {
			p.Stats.ReclaimFaults++
			break
		}
		objs, pages := p.shrinkAll(ctx, target-freed)
		if objs == 0 && pages == 0 {
			break // no progress: retrying cannot help
		}
		freed += pages
	}
	if freed == 0 && node.Free() <= wm.Min {
		freed += p.oomEvict(ctx)
	}
	p.Stats.DirectReclaimPages += uint64(freed)
	p.Trace.Emit(trace.DirectReclaim, ctx.Now, 0, uint64(target), "reclaim",
		int(p.Node), int64(freed))
	return freed
}

// KswapdEnabled reports whether Configure armed the background
// reclaimer.
func (p *Plane) KswapdEnabled() bool {
	return p != nil && p.cfg.KswapdPeriod > 0
}

// StartKswapd schedules the background reclaimer on the engine. Each
// tick checks the pressured node against the low watermark; below it,
// the daemon shrinks toward the high watermark in bounded rounds
// (falling back to the OOM evictor on no-progress) and reschedules
// after max(period, work cost) — the same daemon idiom as the policy
// tick, so a busy reclaimer slows itself down rather than flooding the
// event queue.
func (p *Plane) StartKswapd(e *sim.Engine) {
	if !p.KswapdEnabled() || p.kswapdOn {
		return
	}
	p.kswapdOn = true
	period := p.cfg.KswapdPeriod
	var tick func(e *sim.Engine)
	tick = func(e *sim.Engine) {
		ctx := &kstate.Ctx{CPU: 0, Now: e.Now()}
		p.kswapdTick(ctx)
		next := period
		if ctx.Cost > next {
			next = ctx.Cost
		}
		e.After(next, tick)
	}
	e.After(period, tick)
}

// kswapdTick is one background-reclaim pass.
func (p *Plane) kswapdTick(ctx *kstate.Ctx) {
	node := p.Mem.Node(p.Node)
	wm := p.watermarks()
	if node.Free() >= wm.Low {
		return
	}
	p.Stats.KswapdWakeups++
	deficit := wm.High - node.Free()
	p.reclaiming = true
	exit := p.Mem.EnterAtomic()
	defer func() {
		exit()
		p.reclaiming = false
	}()

	rounds := p.cfg.KswapdBatch
	if rounds <= 0 {
		rounds = defaultKswapdBatch
	}
	freed := 0
	for round := 0; round < rounds && node.Free() < wm.High; round++ {
		if e := p.Mem.Fault.Check(fault.Reclaim, ctx.Now); e != 0 {
			p.Stats.ReclaimFaults++
			break
		}
		want := wm.High - node.Free()
		objs, pages := p.shrinkAll(ctx, want)
		if objs == 0 && pages == 0 {
			// Caches are dry but the node is still under pressure:
			// degrade by spilling the worst context, then stop.
			if node.Free() <= wm.Min {
				freed += p.oomEvict(ctx)
			}
			break
		}
		freed += pages
	}
	p.Stats.KswapdPages += uint64(freed)
	p.Trace.Emit(trace.KswapdWake, ctx.Now, 0, uint64(deficit), "kswapd",
		int(p.Node), int64(freed))
}
