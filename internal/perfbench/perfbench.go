// Package perfbench is the variant-comparison benchmark harness behind
// `klocbench -exp perf` (PERFORMANCE.md). It runs the same workload
// sweep under named accounting variants — per-event baseline counters,
// per-CPU batched accumulators, pooled records, dense indices — and
// reports, per stage and variant, a deterministic core (events
// processed, accumulator adds vs committed net deltas, pool recycling,
// trace summary commits) plus, when a wall clock is injected, wall
// metrics (events/sec, sampled p95 ns/event, a long-block contention
// proxy, allocs/op).
//
// The sweep also carries the parallel-engine lane sweep (ROADMAP item
// 2): the same sharded fleet under worker counts 1/2/4, whose
// deterministic results must be bit-identical across rows (enforced —
// a digest mismatch fails the sweep) and whose wall section reports
// both the measured elapsed time on this host and the modeled
// critical-path "span" speedup derived from per-shard solo timings
// (see PERFORMANCE.md: on a single-CPU host the measured wall barely
// moves, and the span is the honest statement of what parallel
// hardware would buy).
//
// Determinism contract: the sweep's simulated work and every
// deterministic counter are byte-for-byte reproducible at a given seed
// — the BENCH_perf.json report is identical across two same-seed runs.
// Wall metrics are inherently machine-dependent, so they print to
// stdout but enter the JSON only when Config.IncludeWall is set (CI's
// byte-identity check runs without it). The wall clock itself is an
// injected dependency (Config.Now): this package never reads time.Now,
// keeping it usable from deterministic tests with a fake clock.
package perfbench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"

	"kloc/internal/harness"
	"kloc/internal/kloc"
	"kloc/internal/memsim"
	"kloc/internal/metrics"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

// SchemaVersion stamps BENCH_perf.json so downstream consumers can
// detect shape changes. Version 2 added the lane_sweep section.
const SchemaVersion = 2

// Config tunes a perf sweep.
type Config struct {
	// Seed drives the end-to-end stage's simulation (default 42).
	Seed uint64
	// Quick shrinks every stage (CI smoke mode).
	Quick bool
	// Now is the injected wall clock (nanoseconds, monotonic). Nil
	// disables wall metrics entirely: the sweep still executes every
	// stage identically and reports the deterministic core.
	Now func() int64
	// IncludeWall copies the wall metrics into the JSON report. Leave
	// off for byte-identical reports across runs (the default); stdout
	// gets the wall numbers either way when Now is set.
	IncludeWall bool
}

// Variant names one accounting configuration under test.
type Variant struct {
	Name string       `json:"name"`
	Mode metrics.Mode `json:"-"`
	// ModeString renders Mode for the report ("baseline", "batched",
	// "default", ...).
	ModeString string `json:"mode"`
}

// Variants is the sweep's catalog: the baseline (exact per-event
// accounting everywhere), each optimization in isolation, and the full
// default stack. PERFORMANCE.md documents how to add one.
func Variants() []Variant {
	vs := []Variant{
		{Name: "baseline", Mode: metrics.LegacyMode()},
		{Name: "batched", Mode: metrics.LegacyMode() | metrics.ModeBatched},
		{Name: "pooled", Mode: metrics.LegacyMode() | metrics.ModePooled},
		{Name: "indexed", Mode: metrics.LegacyMode() | metrics.ModeIndexed},
		{Name: "full", Mode: metrics.DefaultMode()},
	}
	for i := range vs {
		vs[i].ModeString = vs[i].Mode.String()
	}
	return vs
}

// Counters is the deterministic core every stage reports: how much
// bookkeeping the variant actually did while processing the same
// simulated work.
type Counters struct {
	AccAdds      uint64 `json:"acc_adds"`
	AccCommits   uint64 `json:"acc_commits"`
	FramesFresh  uint64 `json:"frames_fresh"`
	FramesReused uint64 `json:"frames_reused"`
	CtxFresh     uint64 `json:"ctx_fresh"`
	CtxReused    uint64 `json:"ctx_reused"`
	TraceCommits uint64 `json:"trace_commits"`
}

// WallRow is the machine-dependent section of a stage row, present
// only when a wall clock was injected AND Config.IncludeWall was set.
type WallRow struct {
	ElapsedNs    int64   `json:"elapsed_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	// P95NsPerEvent / MedianNsPerEvent summarize per-block hot-path
	// latency: each measured block's elapsed wall time divided by its
	// event count, sampled across Blocks blocks.
	P95NsPerEvent    float64 `json:"p95_ns_per_event"`
	MedianNsPerEvent float64 `json:"median_ns_per_event"`
	// LongBlocks is the contention proxy: blocks whose per-event time
	// exceeded longBlockFactor x the median (GC pauses, allocator
	// slow paths, scheduler noise).
	LongBlocks int `json:"long_blocks"`
	Blocks     int `json:"blocks"`
	// AllocsPerOp is the heap-allocation rate over the measured pass
	// (runtime.MemStats Mallocs delta / events).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// StageRow is one (stage, variant) measurement.
type StageRow struct {
	Stage   string `json:"stage"`
	Variant string `json:"variant"`
	Mode    string `json:"mode"`
	Events  uint64 `json:"events"`
	Counters
	Wall *WallRow `json:"wall,omitempty"`
}

// LaneWall is the machine-dependent section of a lane-sweep row.
// ElapsedNs/SpeedupVsSerial are measured on this host: on a 1-CPU
// container they will show no parallel win, and that is the honest
// number. SpanNs/SpanSpeedup are the modeled critical path — the
// busiest worker's summed solo-shard time under the Lanes stride
// assignment — i.e. what the epoch structure would buy on hardware
// with one core per worker, stated as a model, never as a measurement.
type LaneWall struct {
	ElapsedNs       int64   `json:"elapsed_ns"`
	SpeedupVsSerial float64 `json:"speedup_vs_workers1"`
	SpanNs          int64   `json:"span_ns"`
	SpanSpeedup     float64 `json:"span_speedup"`
}

// LaneRow is one worker-count measurement of the sharded engine. The
// deterministic fields (Ops, EventsFired, Epochs, ShardDigest) must be
// identical on every row — worker count may change wall-clock only —
// and the sweep fails if they are not.
type LaneRow struct {
	Workers     int    `json:"workers"`
	Shards      int    `json:"shards"`
	Ops         int    `json:"ops"`
	EventsFired uint64 `json:"events_fired"`
	Epochs      uint64 `json:"epochs"`
	// ShardDigest hashes per-shard (ops, events fired): the byte-level
	// witness that every worker count computed the same fleet.
	ShardDigest string    `json:"shard_digest"`
	Wall        *LaneWall `json:"wall,omitempty"`
}

// Report is the machine-readable sweep (BENCH_perf.json).
type Report struct {
	SchemaVersion int        `json:"schema_version"`
	Experiment    string     `json:"experiment"`
	Seed          uint64     `json:"seed"`
	Quick         bool       `json:"quick"`
	Variants      []Variant  `json:"variants"`
	Stages        []string   `json:"stages"`
	Rows          []StageRow `json:"rows"`
	// LaneSweep holds the parallel-engine rows (same fleet, workers
	// 1/2/4). Deterministic fields identical across rows by contract.
	LaneSweep []LaneRow `json:"lane_sweep,omitempty"`
	// SpeedupVsBaseline maps "stage/variant" to the events/sec ratio
	// against the same stage's baseline. Wall-derived, so present only
	// under IncludeWall.
	SpeedupVsBaseline map[string]float64 `json:"speedup_vs_baseline,omitempty"`

	// wallEPS keeps "stage/variant" -> events/sec in memory for
	// SanityCheck even when IncludeWall kept it out of the JSON.
	wallEPS map[string]float64
	// laneWalls mirrors LaneSweep with the wall sections kept in memory
	// for LaneLines even when IncludeWall left them out of the JSON.
	laneWalls []*LaneWall
}

// LaneLines renders one stdout summary line per lane-sweep row,
// including wall/span numbers whenever a clock was injected (they
// print even when IncludeWall kept them out of the JSON).
func (r *Report) LaneLines() []string {
	var out []string
	for i, row := range r.LaneSweep {
		line := fmt.Sprintf("lane-sweep: workers=%d shards=%d ops=%d fired=%d epochs=%d digest=%s",
			row.Workers, row.Shards, row.Ops, row.EventsFired, row.Epochs, row.ShardDigest)
		if i < len(r.laneWalls) && r.laneWalls[i] != nil {
			w := r.laneWalls[i]
			line += fmt.Sprintf(" elapsed=%.1fms wall-speedup=%.2fx span-speedup=%.2fx",
				float64(w.ElapsedNs)/1e6, w.SpeedupVsSerial, w.SpanSpeedup)
		}
		out = append(out, line)
	}
	return out
}

// JSON renders the report deterministically (map keys sort; two
// same-seed sweeps without IncludeWall are byte-identical).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// SanityCheck verifies the micro-stage speedups the optimizations must
// deliver: the full variant processes at least as many events/sec as
// baseline on every micro stage. It is a sanity gate (>= 1.0x), not a
// flaky absolute threshold; CI fails when an "optimization" regresses
// below the exact per-event path. Requires wall metrics on the rows
// (any Now-injected sweep has them in memory even without IncludeWall).
func (r *Report) SanityCheck() error {
	eps := r.wallEPS
	if len(eps) == 0 {
		return fmt.Errorf("perfbench: no wall metrics to check (inject a clock)")
	}
	for _, stage := range []string{"trace-burst", "alloc-churn", "knode-index"} {
		base, full := eps[stage+"/baseline"], eps[stage+"/full"]
		if base == 0 || full == 0 {
			return fmt.Errorf("perfbench: stage %s missing baseline/full wall metrics", stage)
		}
		if full < base {
			return fmt.Errorf("perfbench: stage %s: full variant slower than baseline (%.0f < %.0f events/sec)",
				stage, full, base)
		}
	}
	return nil
}

// longBlockFactor flags a block as "long" (contended) when its
// per-event time exceeds this multiple of the stage median.
const longBlockFactor = 4

// measureBlocks is how many timing samples each micro stage takes.
const measureBlocks = 32

// stageRun is one built, ready-to-measure stage instance: blocks
// execute the work (returning events processed), counters harvests the
// deterministic meters afterwards.
type stageRun struct {
	blocks   []func() int
	counters func() Counters
}

type stageDef struct {
	name string
	// warmup stages run a discarded 1/8-size pass on a fresh instance
	// first (JIT-warm caches, grown maps); the end-to-end stage warms
	// up inside harness.Run instead.
	warmup bool
	build  func(mode metrics.Mode, cfg Config) (*stageRun, error)
}

func stages() []stageDef {
	return []stageDef{
		{name: "trace-burst", warmup: true, build: buildTraceBurst},
		{name: "alloc-churn", warmup: true, build: buildAllocChurn},
		{name: "knode-index", warmup: true, build: buildKnodeIndex},
		{name: "end2end", warmup: false, build: buildEnd2End},
	}
}

// stageEvents picks a micro stage's total event count.
func stageEvents(cfg Config, full int) int {
	if cfg.Quick {
		return full / 4
	}
	return full
}

// microBlocks splits total events into measureBlocks closures calling
// step for each event index.
func microBlocks(total int, step func(i int)) []func() int {
	per := total / measureBlocks
	if per < 1 {
		per = 1
	}
	blocks := make([]func() int, 0, measureBlocks)
	for b := 0; b < measureBlocks; b++ {
		start := b * per
		blocks = append(blocks, func() int {
			for i := start; i < start+per; i++ {
				step(i)
			}
			return per
		})
	}
	return blocks
}

// buildTraceBurst exercises the tracer's Emit hot path: a bursty
// stream (runs of the same context, rotating event names) that the
// batched summary path can run-length compress.
func buildTraceBurst(mode metrics.Mode, cfg Config) (*stageRun, error) {
	total := stageEvents(cfg, 1<<18)
	tr := trace.New(trace.Config{Mode: mode, BufferEvents: 1 << 12})
	step := func(i int) {
		// Context changes every 256 events: long runs for the batched
		// path, but enough breaks to exercise its flush. The name
		// rotates so the merged name-state table sees more than one
		// hot entry (call sites stay constant for the trace catalog).
		ctx := uint64(1 + (i>>8)&7)
		now := sim.Time(i * 100)
		switch i & 3 {
		case 0:
			tr.Emit(trace.AllocSlab, now, ctx, uint64(i), "cache", 0, 64)
		case 1:
			tr.Emit(trace.AllocPage, now, ctx, uint64(i), "cache", 0, 64)
		case 2:
			tr.Emit(trace.ObjFree, now, ctx, uint64(i), "cache", 0, 64)
		default:
			tr.Emit(trace.NetRx, now, ctx, uint64(i), "cache", 0, 64)
		}
	}
	return &stageRun{
		blocks: microBlocks(total, step),
		counters: func() Counters {
			return Counters{TraceCommits: tr.SummaryCommits()}
		},
	}, nil
}

// buildAllocChurn exercises the frame alloc/access/free hot path over
// a sliding window of live frames: the pooled variant recycles Frame
// structs, the batched variant accumulates access stats, the indexed
// variant keeps the live table dense.
func buildAllocChurn(mode metrics.Mode, cfg Config) (*stageRun, error) {
	total := stageEvents(cfg, 1<<17)
	mem := memsim.NewTwoTier(memsim.DefaultTwoTier(1024))
	mem.SetMode(mode)
	const window = 64
	live := make([]*memsim.Frame, 0, window)
	step := func(i int) {
		f, err := mem.AllocOrder(memsim.FastNode, memsim.ClassCache, 0, sim.Time(i))
		if err != nil {
			// Capacity exhausted (cannot happen at this window size,
			// but degrade by draining rather than crashing).
			for _, g := range live {
				mem.Free(g)
			}
			live = live[:0]
			return
		}
		mem.Access(i&3, f, 256, i&1 == 0, sim.Time(i))
		live = append(live, f)
		if len(live) >= window {
			mem.Free(live[0])
			live = live[1:]
		}
	}
	return &stageRun{
		blocks: microBlocks(total, step),
		counters: func() Counters {
			pc := mem.PerfCounters()
			return Counters{AccAdds: pc.AccAdds, AccCommits: pc.AccCommits,
				FramesFresh: pc.FramesFresh, FramesReused: pc.FramesReused}
		},
	}, nil
}

// buildKnodeIndex exercises the knode registry's by-ID hot path
// (TouchID/GetByID on every page access attribution): the indexed
// variant replaces the ID map with a dense slice.
func buildKnodeIndex(mode metrics.Mode, cfg Config) (*stageRun, error) {
	total := stageEvents(cfg, 1<<17)
	mem := memsim.NewTwoTier(memsim.DefaultTwoTier(1024))
	mem.SetMode(mode)
	reg := kloc.NewRegistry(mem, 4)
	const knodes = 512
	ids := make([]kloc.KnodeID, 0, knodes)
	order := []memsim.NodeID{memsim.FastNode, memsim.SlowNode}
	for j := 0; j < knodes; j++ {
		kn, _, err := reg.MapKnode(uint64(j+1), order, 0)
		if err != nil {
			return nil, fmt.Errorf("perfbench: knode-index setup: %w", err)
		}
		ids = append(ids, kn.ID)
	}
	step := func(i int) {
		// Lookup-dominated: every event resolves an ID (the hot path
		// this stage isolates); recency bookkeeping only every 16th
		// event so TouchID's heavier work does not drown the lookup.
		id := ids[i%knodes]
		reg.GetByID(id)
		if i&15 == 0 {
			reg.TouchID(id, i&3, sim.Time(i))
		}
	}
	return &stageRun{
		blocks:   microBlocks(total, step),
		counters: func() Counters { return Counters{} },
	}, nil
}

// buildEnd2End runs one full measured simulation (policy, workload,
// daemons, tracing off) under the variant's accounting mode. It is a
// single block: harness.Run is indivisible, so p95 degenerates to the
// mean and the contention proxy stays zero for this stage.
func buildEnd2End(mode metrics.Mode, cfg Config) (*stageRun, error) {
	duration := 100 * sim.Millisecond
	if cfg.Quick {
		duration = 20 * sim.Millisecond
	}
	var meters Counters
	block := func() int {
		res, err := harness.Run(harness.RunConfig{
			PolicyName: "klocs",
			Workload:   "rocksdb",
			Seed:       cfg.Seed,
			Duration:   duration,
			Accounting: mode,
		})
		if err != nil {
			return 0
		}
		meters = Counters{
			AccAdds: res.Perf.Mem.AccAdds, AccCommits: res.Perf.Mem.AccCommits,
			FramesFresh: res.Perf.Mem.FramesFresh, FramesReused: res.Perf.Mem.FramesReused,
			CtxFresh: res.Perf.CtxFresh, CtxReused: res.Perf.CtxReused,
			TraceCommits: res.Perf.TraceCommits,
		}
		return res.Ops
	}
	return &stageRun{
		blocks:   []func() int{block},
		counters: func() Counters { return meters },
	}, nil
}

// laneSweepShards is the fleet size of the lane sweep: enough shards
// that every swept worker count (1, 2, 4) divides the fleet evenly.
const laneSweepShards = 4

// laneWorkerCounts is the sweep axis: serial, half, and one worker per
// shard.
var laneWorkerCounts = []int{1, 2, 4}

// laneDigest hashes per-shard (ops, events fired) with FNV-1a: the
// determinism witness compared across worker counts.
func laneDigest(rs *harness.ShardsResult) string {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for s, res := range rs.Results {
		mix(uint64(s))
		mix(uint64(res.Ops))
		mix(rs.Lanes.Fired[s])
	}
	return fmt.Sprintf("%016x", h)
}

// laneSpan models the epoch-parallel critical path from solo shard
// timings: with L workers, Lanes runs shard s on worker s%L, so the
// span is the busiest worker's summed solo time. span(1) is the serial
// total; span(1)/span(L) is the modeled speedup parallel hardware
// would deliver — the honest number when the host cannot grant real
// cores (see PERFORMANCE.md).
func laneSpan(solo []int64, workers int) int64 {
	if len(solo) == 0 {
		return 0
	}
	per := make([]int64, workers)
	for s, v := range solo {
		per[s%workers] += v
	}
	var max int64
	for _, v := range per {
		if v > max {
			max = v
		}
	}
	return max
}

// laneSweep runs the same sharded fleet under each worker count,
// verifies the deterministic results are bit-identical across rows,
// and (with a clock) records measured elapsed wall plus the modeled
// span speedup from per-shard solo timings.
func laneSweep(cfg Config, rep *Report, t *harness.Table) error {
	duration := 100 * sim.Millisecond
	if cfg.Quick {
		duration = 20 * sim.Millisecond
	}
	base := harness.RunConfig{
		PolicyName: "klocs",
		Workload:   "rocksdb",
		Seed:       cfg.Seed,
		Duration:   duration,
		Accounting: metrics.DefaultMode(),
	}

	// Solo pass: each shard alone through plain harness.Run, timed.
	// These feed only the span model, so they are skipped without a
	// clock; results are discarded (the workers=1 fleet row is the
	// deterministic reference).
	var solo []int64
	if cfg.Now != nil {
		solo = make([]int64, laneSweepShards)
		for s := 0; s < laneSweepShards; s++ {
			scfg := base
			scfg.Seed = harness.ShardSeed(base.Seed, s)
			t0 := cfg.Now()
			if _, err := harness.Run(scfg); err != nil {
				return fmt.Errorf("perfbench: lane-sweep solo shard %d: %w", s, err)
			}
			solo[s] = cfg.Now() - t0
		}
	}

	digest := ""
	var serialElapsed int64
	for _, workers := range laneWorkerCounts {
		var t0 int64
		if cfg.Now != nil {
			t0 = cfg.Now()
		}
		rs, err := harness.RunShards(harness.ShardsConfig{
			Base:    base,
			Shards:  laneSweepShards,
			Workers: workers,
		})
		if err != nil {
			return fmt.Errorf("perfbench: lane-sweep workers=%d: %w", workers, err)
		}
		var elapsed int64
		if cfg.Now != nil {
			elapsed = cfg.Now() - t0
		}
		d := laneDigest(rs)
		if digest == "" {
			digest = d
		} else if d != digest {
			return fmt.Errorf("perfbench: lane-sweep: workers=%d changed the results (digest %s, want %s) — the sharded engine's determinism contract is broken", workers, d, digest)
		}
		ops := 0
		for _, res := range rs.Results {
			ops += res.Ops
		}
		var fired uint64
		for _, f := range rs.Lanes.Fired {
			fired += f
		}
		row := LaneRow{Workers: workers, Shards: laneSweepShards,
			Ops: ops, EventsFired: fired, Epochs: rs.Lanes.Epochs, ShardDigest: d}
		cells := []string{"lane-sweep", fmt.Sprintf("workers=%d", workers),
			fmt.Sprintf("%d", fired), "-", "-", "-", "-"}
		if cfg.Now != nil && elapsed > 0 {
			if workers == 1 {
				serialElapsed = elapsed
			}
			wall := &LaneWall{ElapsedNs: elapsed, SpanNs: laneSpan(solo, workers)}
			if serialElapsed > 0 {
				wall.SpeedupVsSerial = float64(serialElapsed) / float64(elapsed)
			}
			if total := laneSpan(solo, 1); total > 0 && wall.SpanNs > 0 {
				wall.SpanSpeedup = float64(total) / float64(wall.SpanNs)
			}
			rep.laneWalls = append(rep.laneWalls, wall)
			if cfg.IncludeWall {
				row.Wall = wall
			}
			cells = append(cells, fmt.Sprintf("%.0f", float64(fired)/(float64(elapsed)/1e9)),
				"-", "-", "-")
		} else {
			rep.laneWalls = append(rep.laneWalls, nil)
			cells = append(cells, "-", "-", "-", "-")
		}
		rep.LaneSweep = append(rep.LaneSweep, row)
		t.AddRow(cells...)
	}
	return nil
}

// measure executes one built stage instance, timing each block through
// the injected clock (no-op clock when nil: the work still runs so the
// deterministic counters are identical with and without timing).
func measure(run *stageRun, now func() int64) (events uint64, wall *WallRow) {
	var before, after runtime.MemStats
	if now != nil {
		runtime.ReadMemStats(&before)
	}
	var elapsed int64
	perEvent := make([]float64, 0, len(run.blocks))
	for _, block := range run.blocks {
		var t0 int64
		if now != nil {
			t0 = now()
		}
		n := block()
		if now != nil && n > 0 {
			dt := now() - t0
			elapsed += dt
			perEvent = append(perEvent, float64(dt)/float64(n))
		}
		events += uint64(n)
	}
	if now == nil || len(perEvent) == 0 || elapsed <= 0 {
		return events, nil
	}
	runtime.ReadMemStats(&after)
	sort.Float64s(perEvent)
	median := perEvent[len(perEvent)/2]
	p95 := perEvent[(len(perEvent)*95+99)/100-1]
	long := 0
	for _, v := range perEvent {
		if v > longBlockFactor*median {
			long++
		}
	}
	return events, &WallRow{
		ElapsedNs:        elapsed,
		EventsPerSec:     float64(events) / (float64(elapsed) / 1e9),
		P95NsPerEvent:    p95,
		MedianNsPerEvent: median,
		LongBlocks:       long,
		Blocks:           len(perEvent),
		AllocsPerOp:      float64(after.Mallocs-before.Mallocs) / float64(events),
	}
}

// Run executes the sweep: every stage under every variant, baseline
// first so speedups have their denominator. It returns the rendered
// table and the machine-readable report.
func Run(cfg Config) (*harness.Table, *Report, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Now == nil {
		cfg.IncludeWall = false
	}
	defs := stages()
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Experiment:    "perf",
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		Variants:      Variants(),
	}
	for _, d := range defs {
		rep.Stages = append(rep.Stages, d.name)
	}
	t := &harness.Table{
		Title: "Hot-path accounting — same simulated work under each variant",
		Note: "deterministic core always; events/sec, p95 ns/event, long blocks (contention proxy) " +
			"and allocs/op need an injected wall clock (see PERFORMANCE.md); lane-sweep rows run " +
			"the same 4-shard fleet at each worker count — results identical by contract, " +
			"wall + span detail on stdout and (with -perf-wall) in BENCH_perf.json",
		Header: []string{"stage", "variant", "events", "acc-adds", "acc-commits",
			"reused", "trc-commits", "ev/s", "p95ns", "long", "allocs/op"},
	}
	speedup := map[string]float64{}
	baselineEPS := map[string]float64{}
	for _, d := range defs {
		for _, v := range rep.Variants {
			if d.warmup {
				warm, err := d.build(v.Mode, Config{Seed: cfg.Seed, Quick: true})
				if err != nil {
					return nil, nil, err
				}
				// One discarded 1/8-size pass; its instance is dropped
				// so counters start clean on the measured build.
				for _, block := range warm.blocks[:len(warm.blocks)/8+1] {
					block()
				}
			}
			run, err := d.build(v.Mode, cfg)
			if err != nil {
				return nil, nil, err
			}
			events, wall := measure(run, cfg.Now)
			if events == 0 {
				return nil, nil, fmt.Errorf("perfbench: stage %s/%s processed no events", d.name, v.Name)
			}
			row := StageRow{Stage: d.name, Variant: v.Name, Mode: v.ModeString,
				Events: events, Counters: run.counters()}
			cells := []string{d.name, v.Name, fmt.Sprintf("%d", events),
				fmt.Sprintf("%d", row.AccAdds), fmt.Sprintf("%d", row.AccCommits),
				fmt.Sprintf("%d", row.FramesReused+row.CtxReused),
				fmt.Sprintf("%d", row.TraceCommits)}
			if wall != nil {
				if rep.wallEPS == nil {
					rep.wallEPS = map[string]float64{}
				}
				rep.wallEPS[d.name+"/"+v.Name] = wall.EventsPerSec
				if v.Name == "baseline" {
					baselineEPS[d.name] = wall.EventsPerSec
				} else if base := baselineEPS[d.name]; base > 0 {
					speedup[d.name+"/"+v.Name] = wall.EventsPerSec / base
				}
				cells = append(cells, fmt.Sprintf("%.0f", wall.EventsPerSec),
					fmt.Sprintf("%.1f", wall.P95NsPerEvent),
					fmt.Sprintf("%d", wall.LongBlocks),
					fmt.Sprintf("%.2f", wall.AllocsPerOp))
				if cfg.IncludeWall {
					row.Wall = wall
				}
			} else {
				cells = append(cells, "-", "-", "-", "-")
			}
			rep.Rows = append(rep.Rows, row)
			t.AddRow(cells...)
		}
	}
	if cfg.IncludeWall && len(speedup) > 0 {
		rep.SpeedupVsBaseline = speedup
	}
	if err := laneSweep(cfg, rep, t); err != nil {
		return nil, nil, err
	}
	return t, rep, nil
}
