package perfbench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// fakeClock returns a deterministic monotonic clock advancing by step
// nanoseconds per reading.
func fakeClock(step int64) func() int64 {
	var t int64
	return func() int64 {
		t += step
		return t
	}
}

// TestReportIsByteIdentical: two same-seed quick sweeps must serialize
// to the same bytes, even when their injected wall clocks disagree —
// machine-dependent numbers stay out of the report unless IncludeWall
// is set. This is the property the CI perf-smoke job pins with cmp.
func TestReportIsByteIdentical(t *testing.T) {
	run := func(step int64) []byte {
		_, rep, err := Run(Config{Seed: 42, Quick: true, Now: fakeClock(step)})
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := run(10)
	b := run(1000) // a very different "machine"
	if !bytes.Equal(a, b) {
		t.Fatalf("reports differ between same-seed sweeps:\n%s\n----\n%s", a, b)
	}
}

// TestReportSchemaRoundTrip: BENCH_perf.json must parse back into the
// Report shape with the schema version, full variant catalog, and one
// row per (stage, variant).
func TestReportSchemaRoundTrip(t *testing.T) {
	_, rep, err := Run(Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if got.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d, want %d", got.SchemaVersion, SchemaVersion)
	}
	if got.Experiment != "perf" {
		t.Fatalf("experiment %q, want perf", got.Experiment)
	}
	if len(got.Variants) != len(Variants()) {
		t.Fatalf("%d variants, want %d", len(got.Variants), len(Variants()))
	}
	if want := len(got.Variants) * len(got.Stages); len(got.Rows) != want {
		t.Fatalf("%d rows, want %d (stages x variants)", len(got.Rows), want)
	}
	for _, row := range got.Rows {
		if row.Events == 0 {
			t.Fatalf("row %s/%s reports zero events", row.Stage, row.Variant)
		}
		if row.Wall != nil {
			t.Fatalf("row %s/%s leaked wall metrics without IncludeWall", row.Stage, row.Variant)
		}
	}
	if got.SpeedupVsBaseline != nil {
		t.Fatal("speedups leaked without IncludeWall")
	}
}

// TestIncludeWallPublishesMetrics: opting in puts wall rows and the
// speedup map into the JSON.
func TestIncludeWallPublishesMetrics(t *testing.T) {
	_, rep, err := Run(Config{Seed: 42, Quick: true, Now: fakeClock(5), IncludeWall: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row.Wall == nil {
			t.Fatalf("row %s/%s missing wall metrics under IncludeWall", row.Stage, row.Variant)
		}
		if row.Wall.EventsPerSec <= 0 {
			t.Fatalf("row %s/%s: non-positive events/sec", row.Stage, row.Variant)
		}
	}
	if len(rep.SpeedupVsBaseline) == 0 {
		t.Fatal("no speedups computed under IncludeWall")
	}
	if err := rep.SanityCheck(); err != nil {
		// A constant-step fake clock times every block identically, so
		// full >= baseline trivially holds; failure means bookkeeping
		// broke, not noise.
		t.Fatal(err)
	}
}

// TestLaneSweep: the parallel-engine rows cover every worker count
// with identical deterministic results (the sweep itself errors on a
// digest mismatch; this pins the shape), wall sections under
// IncludeWall, and — under a constant-step fake clock, where every
// solo shard times identically — a span-model speedup exactly equal
// to the worker count.
func TestLaneSweep(t *testing.T) {
	_, rep, err := Run(Config{Seed: 42, Quick: true, Now: fakeClock(5), IncludeWall: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LaneSweep) != len(laneWorkerCounts) {
		t.Fatalf("%d lane rows, want %d", len(rep.LaneSweep), len(laneWorkerCounts))
	}
	first := rep.LaneSweep[0]
	if first.Ops == 0 || first.EventsFired == 0 {
		t.Fatalf("lane sweep did no work: %+v", first)
	}
	for i, row := range rep.LaneSweep {
		if row.Workers != laneWorkerCounts[i] {
			t.Fatalf("row %d: workers %d, want %d", i, row.Workers, laneWorkerCounts[i])
		}
		if row.Ops != first.Ops || row.EventsFired != first.EventsFired ||
			row.Epochs != first.Epochs || row.ShardDigest != first.ShardDigest {
			t.Fatalf("workers=%d row diverges from workers=%d: %+v vs %+v",
				row.Workers, first.Workers, row, first)
		}
		if row.Wall == nil {
			t.Fatalf("workers=%d: missing wall section under IncludeWall", row.Workers)
		}
		if want := float64(row.Workers); row.Wall.SpanSpeedup != want {
			t.Fatalf("workers=%d: span speedup %.2f, want exactly %.2f under a constant-step clock",
				row.Workers, row.Wall.SpanSpeedup, want)
		}
	}
	if got := len(rep.LaneLines()); got != len(rep.LaneSweep) {
		t.Fatalf("%d lane lines, want %d", got, len(rep.LaneSweep))
	}
}

// TestSanityCheckNeedsClock: without an injected clock there is
// nothing to check, and saying so beats vacuously passing.
func TestSanityCheckNeedsClock(t *testing.T) {
	_, rep, err := Run(Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.SanityCheck(); err == nil {
		t.Fatal("SanityCheck passed with no wall metrics")
	}
}

// TestVariantCatalog: the sweep must cover baseline, each optimization
// in isolation, and the full default stack (>= 4 variants per the
// experiment contract), with baseline truly legacy and full truly
// default.
func TestVariantCatalog(t *testing.T) {
	vs := Variants()
	if len(vs) < 4 {
		t.Fatalf("only %d variants", len(vs))
	}
	byName := map[string]Variant{}
	for _, v := range vs {
		byName[v.Name] = v
		if v.ModeString != v.Mode.String() {
			t.Fatalf("variant %s: mode string %q does not render its mode %q",
				v.Name, v.ModeString, v.Mode.String())
		}
	}
	for _, want := range []string{"baseline", "batched", "pooled", "indexed", "full"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("variant %s missing from catalog", want)
		}
	}
	base := byName["baseline"].Mode
	if base.Batched() || base.Pooled() || base.Indexed() {
		t.Fatal("baseline variant enables an optimization")
	}
	full := byName["full"].Mode
	if !full.Batched() || !full.Pooled() || !full.Indexed() {
		t.Fatal("full variant misses an optimization")
	}
}
