// Package blockdev models the storage stack under the filesystem: an
// NVMe-like device with distinct sequential and random bandwidth
// (Table 4: 1.2 GB/s sequential, 412 MB/s random) behind a blk_mq-style
// multi-queue dispatch layer (Table 1's blk_mq object lives here).
//
// The device is a shared resource: submissions that arrive while it is
// busy queue behind the in-flight work, so I/O-bound phases see real
// queueing delay in virtual time.
package blockdev

import (
	"kloc/internal/fault"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

// Device is the storage device cost model. NVMe devices service
// commands across parallel internal channels; a command queues behind
// the least-busy channel, so a single slow stream does not serialize
// the whole device.
type Device struct {
	Name string
	// SeqBandwidth and RandBandwidth in bytes/ns (per channel aggregate
	// share — bandwidth figures are device-wide, split across busy
	// channels implicitly by queueing).
	SeqBandwidth  float64
	RandBandwidth float64
	// CommandLatency is the fixed per-command device latency.
	CommandLatency sim.Duration
	// Channels is the internal parallelism (queue pairs); 0 means 1.
	Channels int

	// Fault, when non-nil, is consulted per command; an injected EIO
	// fails the command after it occupied the channel (the device did
	// the work and then reported failure, like a real media error).
	Fault *fault.Plane

	// busyUntil per channel: new commands start no earlier.
	busyUntil []sim.Time

	// Stats.
	Commands     uint64
	BytesRead    uint64
	BytesWritten uint64
	// IOErrors counts commands the device failed.
	IOErrors uint64
}

// DefaultNVMe mirrors Table 4's 512 GB NVMe.
func DefaultNVMe() *Device {
	return &Device{
		Name:           "nvme0",
		SeqBandwidth:   1.2,
		RandBandwidth:  0.412,
		CommandLatency: 20 * sim.Microsecond,
	}
}

// SimNVMe is the Table-4 NVMe rescaled for the simulation's compressed
// timescale. Capacities are scaled 1/64 and measured runs last hundreds
// of virtual milliseconds instead of minutes, so to preserve the
// paper's ratio of I/O volume to device bandwidth per unit run time the
// device is 8x faster than its datasheet (DESIGN.md §3, §6).
func SimNVMe() *Device {
	d := DefaultNVMe()
	d.SeqBandwidth *= 8
	d.RandBandwidth *= 8
	d.CommandLatency /= 8
	d.Channels = 8
	return d
}

// TransferCost is the raw device service time for one command,
// excluding queueing.
func (d *Device) TransferCost(bytes int, sequential bool) sim.Duration {
	bw := d.RandBandwidth
	if sequential {
		bw = d.SeqBandwidth
	}
	return d.CommandLatency + sim.Duration(float64(bytes)/bw)
}

// Submit issues a command at virtual time now and returns the latency
// until completion (queueing + service) plus a device error, if any.
// The command lands on the least-busy channel; a failed command still
// occupies the channel for its full service time (the device worked,
// then reported EIO), but its bytes do not count as transferred.
func (d *Device) Submit(now sim.Time, bytes int, sequential, write bool) (sim.Duration, error) {
	if d.busyUntil == nil {
		n := d.Channels
		if n < 1 {
			n = 1
		}
		d.busyUntil = make([]sim.Time, n)
	}
	best := 0
	for i, b := range d.busyUntil {
		if b < d.busyUntil[best] {
			best = i
		}
	}
	service := d.TransferCost(bytes, sequential)
	start := now
	if d.busyUntil[best] > start {
		start = d.busyUntil[best]
	}
	complete := start.Add(service)
	d.busyUntil[best] = complete
	d.Commands++
	if e := d.Fault.Check(fault.BlockIO, now); e != 0 {
		d.IOErrors++
		return complete.Sub(now), e
	}
	if write {
		d.BytesWritten += uint64(bytes)
	} else {
		d.BytesRead += uint64(bytes)
	}
	return complete.Sub(now), nil
}

// BusyUntil exposes the furthest channel horizon (tests and tracing).
func (d *Device) BusyUntil() sim.Time {
	var max sim.Time
	for _, b := range d.busyUntil {
		if b > max {
			max = b
		}
	}
	return max
}

// MQ is the blk_mq dispatch layer: per-CPU software queues feeding the
// device. Each submission pays a software dispatch cost and allocates a
// blk_mq request object (the caller accounts for the object via the
// kernel-object machinery; MQ only tracks counts).
type MQ struct {
	Dev *Device
	// Queues is the number of software queues (one per CPU, typically).
	Queues int
	// DispatchCost is the per-request software overhead.
	DispatchCost sim.Duration

	// Trace, when non-nil, records one blockdev.dispatch event per
	// request (the analog of block:block_rq_issue). Strictly passive.
	Trace *trace.Tracer

	// PerQueue counts dispatched requests by queue.
	PerQueue []uint64
	// Retries counts device-failed commands that were re-driven.
	Retries uint64
	// HardFailures counts requests that exhausted their retry budget
	// and surfaced EIO to the filesystem.
	HardFailures uint64
}

// blk_mq error handling: a device EIO is treated as transient and the
// request is re-driven up to ioMaxRetries times with doubling backoff,
// mirroring the kernel's SCSI/NVMe requeue path. Only after the budget
// is exhausted does EIO surface to the caller.
const (
	ioMaxRetries                = 3
	ioRetryBackoff sim.Duration = 10 * sim.Microsecond
)

// NewMQ builds the multi-queue layer.
func NewMQ(dev *Device, queues int) *MQ {
	if queues < 1 {
		queues = 1
	}
	return &MQ{
		Dev:          dev,
		Queues:       queues,
		DispatchCost: 2 * sim.Microsecond,
		PerQueue:     make([]uint64, queues),
	}
}

// Submit dispatches a request from the given CPU and returns total
// latency (dispatch + queueing + device service, including any retry
// attempts and backoff). A transient device EIO is retried up to
// ioMaxRetries times with doubling backoff; if every attempt fails the
// accumulated latency and EIO are returned together.
func (mq *MQ) Submit(cpu int, now sim.Time, bytes int, sequential, write bool) (sim.Duration, error) {
	q := 0
	if mq.Queues > 0 {
		q = cpu % mq.Queues
	}
	mq.PerQueue[q]++
	var total sim.Duration
	var err error
	backoff := ioRetryBackoff
	attempts := 0
	for {
		attempts++
		total += mq.DispatchCost
		var lat sim.Duration
		lat, err = mq.Dev.Submit(now.Add(total), bytes, sequential, write)
		total += lat
		if err == nil {
			break
		}
		if attempts > ioMaxRetries {
			mq.HardFailures++
			break
		}
		mq.Retries++
		total += backoff
		backoff *= 2
	}
	class := "read"
	if write {
		class = "write"
	}
	mq.Trace.Emit(trace.BlockDispatch, now, 0, uint64(attempts), class, q, int64(bytes))
	return total, err
}

// Requests reports total dispatched requests.
func (mq *MQ) Requests() uint64 {
	var n uint64
	for _, c := range mq.PerQueue {
		n += c
	}
	return n
}
