package blockdev

import (
	"testing"

	"kloc/internal/sim"
)

func TestTransferCostSeqVsRand(t *testing.T) {
	d := DefaultNVMe()
	seq := d.TransferCost(1<<20, true)
	rnd := d.TransferCost(1<<20, false)
	if seq >= rnd {
		t.Fatalf("sequential (%v) not faster than random (%v)", seq, rnd)
	}
	// 1 MB at 1.2 GB/s ≈ 0.87 ms + 20 µs command latency.
	if seq < 800*sim.Microsecond || seq > 1*sim.Millisecond {
		t.Fatalf("seq 1MB cost = %v, want ~0.9ms", seq)
	}
}

func TestSubmitQueueing(t *testing.T) {
	d := DefaultNVMe()
	l1, _ := d.Submit(0, 4096, true, false)
	// Second command at the same instant queues behind the first.
	l2, _ := d.Submit(0, 4096, true, false)
	if l2 <= l1 {
		t.Fatalf("queued command latency %v not greater than first %v", l2, l1)
	}
	if d.Commands != 2 {
		t.Fatalf("commands = %d", d.Commands)
	}
	// A command far in the future sees an idle device again.
	l3, _ := d.Submit(d.BusyUntil().Add(sim.Second), 4096, true, false)
	if l3 != l1 {
		t.Fatalf("idle-device latency %v, want %v", l3, l1)
	}
}

func TestReadWriteAccounting(t *testing.T) {
	d := DefaultNVMe()
	d.Submit(0, 100, true, false)
	d.Submit(0, 200, true, true)
	if d.BytesRead != 100 || d.BytesWritten != 200 {
		t.Fatalf("rw accounting: r=%d w=%d", d.BytesRead, d.BytesWritten)
	}
}

func TestMQDispatch(t *testing.T) {
	d := DefaultNVMe()
	mq := NewMQ(d, 4)
	mq.Submit(0, 0, 4096, true, false)
	mq.Submit(5, 0, 4096, true, false) // cpu 5 -> queue 1
	if mq.PerQueue[0] != 1 || mq.PerQueue[1] != 1 {
		t.Fatalf("queue distribution: %v", mq.PerQueue)
	}
	if mq.Requests() != 2 {
		t.Fatalf("requests = %d", mq.Requests())
	}
}

func TestMQAddsDispatchCost(t *testing.T) {
	d := DefaultNVMe()
	raw := d.TransferCost(4096, true)
	mq := NewMQ(DefaultNVMe(), 1)
	total, _ := mq.Submit(0, 0, 4096, true, false)
	if total != raw+mq.DispatchCost {
		t.Fatalf("total %v, want %v", total, raw+mq.DispatchCost)
	}
}

func TestMQMinimumQueues(t *testing.T) {
	mq := NewMQ(DefaultNVMe(), 0)
	if mq.Queues != 1 {
		t.Fatalf("queues = %d", mq.Queues)
	}
	mq.Submit(7, 0, 64, false, true) // must not panic on modulo
}
