package kobj

import (
	"testing"

	"kloc/internal/memsim"
)

func TestTableOneTaxonomy(t *testing.T) {
	types := Types()
	if len(types) != 12 {
		t.Fatalf("expected 12 object types (Table 1 + radix nodes), got %d", len(types))
	}
	seen := map[string]bool{}
	for _, typ := range types {
		info := typ.Info()
		if info.Name == "" {
			t.Fatalf("type %d has no name", typ)
		}
		if seen[info.Name] {
			t.Fatalf("duplicate type name %q", info.Name)
		}
		seen[info.Name] = true
		if info.Size <= 0 || info.Size > memsim.PageSize {
			t.Fatalf("%s: implausible size %d", info.Name, info.Size)
		}
	}
	// Table 1 domain spot-checks.
	if Inode.Info().Dom != DomainBoth {
		t.Fatal("inode must be fs/network (everything is a file)")
	}
	if Sock.Info().Dom != DomainNet || Journal.Info().Dom != DomainFS {
		t.Fatal("domain misassignment")
	}
	if DomainBoth.String() != "fs/network" || DomainNet.String() != "network" || DomainFS.String() != "fs" {
		t.Fatal("domain names wrong")
	}
}

func TestAllocClassMatchesPaper(t *testing.T) {
	// §3.3: short-lived small objects are slab-allocated; page cache
	// pages and packet data buffers come from the page allocator.
	slab := []Type{Inode, Block, Dentry, Extent, SkBuff, Journal, BlkMQ, Sock, RadixNode}
	page := []Type{PageCache, SkBuffData, RxBuf}
	for _, typ := range slab {
		if typ.Info().Alloc != AllocSlab {
			t.Errorf("%s should be slab-allocated", typ)
		}
	}
	for _, typ := range page {
		if typ.Info().Alloc != AllocPage {
			t.Errorf("%s should be page-allocated", typ)
		}
	}
}

func TestGroups(t *testing.T) {
	groups := Groups()
	if len(groups) != 5 {
		t.Fatalf("expected 5 sensitivity groups, got %d", len(groups))
	}
	// The paper's cumulative order: page caches, journals, slab objects,
	// socket buffers, block I/O (§7.3).
	want := []string{"page-cache", "journal", "slab", "socket-buffers", "block-io"}
	for i, g := range groups {
		if g.String() != want[i] {
			t.Fatalf("group %d = %s, want %s", i, g, want[i])
		}
	}
	// Every type belongs to exactly one group.
	for _, typ := range Types() {
		g := GroupOf(typ)
		if int(g) >= len(groups) {
			t.Fatalf("%s has invalid group", typ)
		}
	}
	if GroupOf(PageCache) != GroupPageCache || GroupOf(Sock) != GroupSockBuf ||
		GroupOf(Block) != GroupBlockIO || GroupOf(Journal) != GroupJournal ||
		GroupOf(Dentry) != GroupSlab {
		t.Fatal("group assignment wrong")
	}
}

func TestObjectLifecycle(t *testing.T) {
	frame := &memsim.Frame{ID: 1}
	released := 0
	o := NewObject(7, Dentry, frame, 100, func() { released++ })
	if o.Size != Dentry.Info().Size || o.Born != 100 {
		t.Fatalf("object misconstructed: %+v", o)
	}
	if !o.Relocatable() {
		t.Fatal("unpinned frame should be relocatable")
	}
	frame.Pinned = true
	if o.Relocatable() {
		t.Fatal("pinned frame reported relocatable")
	}
	o.Release()
	o.Release() // idempotent
	if released != 1 {
		t.Fatalf("release ran %d times", released)
	}
}

func TestObjectNilReleaseAndFrame(t *testing.T) {
	o := NewObject(1, Inode, nil, 0, nil)
	o.Release() // must not panic
	if o.Relocatable() {
		t.Fatal("frameless object reported relocatable")
	}
}
