// Package kobj defines the kernel-object taxonomy of the paper's
// Table 1: the filesystem and networking objects whose placement KLOCs
// manage, together with their size, domain, and allocation class.
//
// Objects are the unit the KLOC abstraction tracks: each live object
// references the page frame(s) it occupies and (once associated) the
// knode of the file or socket it belongs to.
package kobj

import (
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// Type enumerates Table 1's kernel object structures.
type Type uint8

// Kernel object types (Table 1).
const (
	Inode      Type = iota // per-file inode (FS + network: sockets are files)
	Block                  // block I/O structure (bio)
	Journal                // filesystem journal buffer
	PageCache              // buffer-cache page
	Dentry                 // name resolution entry
	Extent                 // contiguous-disk-block grouping
	BlkMQ                  // block-layer multi-queue structure
	Sock                   // socket object
	SkBuff                 // packet-buffer header
	SkBuffData             // packet data buffer
	RxBuf                  // network receive driver buffer
	RadixNode              // page-cache radix-tree node (§3.1)
	numTypes
)

// Domain says which subsystem an object belongs to.
type Domain uint8

// Domains.
const (
	DomainFS Domain = iota
	DomainNet
	DomainBoth
)

func (d Domain) String() string {
	switch d {
	case DomainNet:
		return "network"
	case DomainBoth:
		return "fs/network"
	default:
		return "fs"
	}
}

// AllocClass says which allocator creates objects of a type (§3.3).
type AllocClass uint8

// Allocation classes.
const (
	AllocSlab AllocClass = iota // kmalloc/kmem_cache_alloc: fast, pinned
	AllocPage                   // page allocator: relocatable
)

// Info describes a kernel object type.
type Info struct {
	Name  string
	Dom   Domain
	Size  int // bytes per object
	Alloc AllocClass
}

var infos = [numTypes]Info{
	Inode:      {"inode", DomainBoth, 600, AllocSlab},
	Block:      {"block", DomainFS, 256, AllocSlab},
	Journal:    {"journal", DomainFS, 1024, AllocSlab},
	PageCache:  {"page_cache", DomainFS, memsim.PageSize, AllocPage},
	Dentry:     {"dentry", DomainFS, 192, AllocSlab},
	Extent:     {"extent", DomainFS, 96, AllocSlab},
	BlkMQ:      {"blk_mq", DomainFS, 512, AllocSlab},
	Sock:       {"sock", DomainNet, 1024, AllocSlab},
	SkBuff:     {"skbuff", DomainNet, 232, AllocSlab},
	SkBuffData: {"skbuff_data", DomainNet, 2048, AllocPage},
	RxBuf:      {"rx_buf", DomainNet, memsim.PageSize, AllocPage},
	RadixNode:  {"radix_node", DomainFS, 576, AllocSlab},
}

// Info returns the descriptor for a type.
func (t Type) Info() Info { return infos[t] }

// String returns the Table-1 name.
func (t Type) String() string { return infos[t].Name }

// Types returns all Table-1 object types in declaration order.
func Types() []Type {
	out := make([]Type, numTypes)
	for i := range out {
		out[i] = Type(i)
	}
	return out
}

// Group buckets types for the Fig 5c sensitivity study, which
// incrementally adds KLOC support for page caches, journals, slab
// objects, socket buffers, and block I/O.
type Group uint8

// Fig 5c groups.
const (
	GroupPageCache Group = iota
	GroupJournal
	GroupSlab
	GroupSockBuf
	GroupBlockIO
	numGroups
)

func (g Group) String() string {
	switch g {
	case GroupPageCache:
		return "page-cache"
	case GroupJournal:
		return "journal"
	case GroupSlab:
		return "slab"
	case GroupSockBuf:
		return "socket-buffers"
	default:
		return "block-io"
	}
}

// Groups returns the Fig 5c groups in the paper's cumulative order.
func Groups() []Group {
	return []Group{GroupPageCache, GroupJournal, GroupSlab, GroupSockBuf, GroupBlockIO}
}

// GroupOf maps a type to its sensitivity group.
func GroupOf(t Type) Group {
	switch t {
	case PageCache, RadixNode:
		return GroupPageCache
	case Journal:
		return GroupJournal
	case Inode, Dentry, Extent:
		return GroupSlab
	case Sock, SkBuff, SkBuffData, RxBuf:
		return GroupSockBuf
	default: // Block, BlkMQ
		return GroupBlockIO
	}
}

// ID identifies a live kernel object.
type ID uint64

// Object is a live kernel object instance.
type Object struct {
	ID    ID
	Type  Type
	Size  int
	Frame *memsim.Frame
	// Knode is the owning KLOC (0 until associated).
	Knode uint64
	Born  sim.Time
	// release returns the object's storage to its allocator.
	release func()
}

// NewObject constructs an object occupying the given frame. The release
// callback (may be nil) is invoked exactly once by Release.
func NewObject(id ID, t Type, frame *memsim.Frame, born sim.Time, release func()) *Object {
	return &Object{ID: id, Type: t, Size: t.Info().Size, Frame: frame, Born: born, release: release}
}

// Release returns the object's storage. Safe to call once. The frame
// pointer is cleared so that any index entry that outlives the object
// (for example a KLOC tree slot left behind by a late re-association)
// reads "no storage" instead of aliasing a frame the allocator may
// recycle.
func (o *Object) Release() {
	if o.release != nil {
		r := o.release
		o.release = nil
		r()
	}
	o.Frame = nil
}

// Relocatable reports whether the object's storage can migrate.
func (o *Object) Relocatable() bool { return o.Frame != nil && !o.Frame.Pinned }
