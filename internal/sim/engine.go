package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events fire in (time, sequence) order,
// which makes simulation runs fully deterministic: ties in virtual time
// break by scheduling order.
type Event struct {
	at  Time
	seq uint64
	// fn and index mutate after scheduling (Cancel nils fn, the heap
	// maintains index), always from the goroutine driving the queue
	// that holds the event — per-lane state under the sharded plan.
	//klocs:owner=lane
	fn func(*Engine)
	// index in the heap, or -1 once popped/cancelled.
	//klocs:owner=lane
	index int
}

// Cancelled reports whether the event was cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index == -1 && e.fn == nil }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use; the entire simulation runs on one goroutine, which is
// what guarantees reproducibility.
// Every Engine field is the event loop's own cursor state: under the
// sharded plan (ROADMAP item 2) each lane runs its own Engine, so the
// whole struct is lane-confined.
type Engine struct {
	//klocs:owner=lane
	now Time
	//klocs:owner=lane
	seq uint64
	//klocs:owner=lane
	queue eventQueue
	//klocs:owner=lane
	fired uint64
	//klocs:owner=lane
	halted bool
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have run so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule arranges for fn to run at the given absolute time. Scheduling
// in the past panics: it indicates a broken cost model.
//
// Schedule is pinned lane-phase: it mutates the engine's own queue, so
// it runs in the phase of whoever owns the engine at the call — the
// lane's worker during an epoch, or the barrier coordinator delivering
// cross-shard mail while every lane is parked (ownership of a quiescent
// engine transfers to the coordinator; see Lanes.barrier).
//
//klocs:phase=lane
func (e *Engine) Schedule(at Time, fn func(*Engine)) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func(*Engine)) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an event that already fired
// is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.fn = nil
}

// Halt stops Run/RunUntil after the current event completes.
func (e *Engine) Halt() { e.halted = true }

// Step fires the next pending event, advancing the clock to its time.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	e.fired++
	fn(e)
	return true
}

// Run fires events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// runThrough fires events with time <= deadline, leaving later events
// queued and the clock at the last fired event (it never coasts
// forward the way RunUntil does). A halted engine stays halted and
// fires nothing. This is the epoch body of the sharded executor
// (Lanes): because the clock only moves when events fire, a shard
// driven through epoch slices ends a run with exactly the clock a
// plain Run would have produced — the byte-identity the lane
// determinism tests pin.
func (e *Engine) runThrough(deadline Time) {
	for !e.halted && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
}

// RunUntil fires events with time <= deadline, leaving later events
// queued. The clock ends at min(deadline, last event time).
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline && !e.halted {
		e.now = deadline
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
