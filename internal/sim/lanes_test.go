package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// fireLog records (shard, time, tag) tuples as events fire, so runs
// can be compared byte-for-byte.
type fireLog struct {
	lines []string
}

func (f *fireLog) add(shard int, at Time, tag string) {
	f.lines = append(f.lines, fmt.Sprintf("s%d t=%d %s", shard, at, tag))
}

// buildWorkload schedules a deterministic self-extending chain of
// events on e: each event advances a forked RNG stream and reschedules
// until steps are exhausted. It is the same workload shape harness
// threads use (closures over shard-local state only).
func buildWorkload(e *Engine, shard int, seed uint64, steps int, log *fireLog) {
	rng := NewRNG(seed)
	var step func(*Engine)
	remaining := steps
	step = func(eng *Engine) {
		log.add(shard, eng.Now(), fmt.Sprintf("step r=%d", rng.Intn(1000)))
		remaining--
		if remaining > 0 {
			eng.After(Duration(1+rng.Intn(int(3*Millisecond))), step)
		}
	}
	e.Schedule(Time(shard)*Time(Microsecond), step)
}

func TestLanesSingleShardMatchesSequential(t *testing.T) {
	seq := NewEngine()
	seqLog := &fireLog{}
	buildWorkload(seq, 0, 42, 200, seqLog)
	seq.Run()

	sharded := NewEngine()
	shLog := &fireLog{}
	buildWorkload(sharded, 0, 42, 200, shLog)
	lanes := NewLanes(1, Millisecond)
	lanes.Attach(sharded)
	lanes.Run()

	if !reflect.DeepEqual(seqLog.lines, shLog.lines) {
		t.Fatalf("sharded run diverged from sequential:\nseq: %v\nlanes: %v",
			seqLog.lines[:min(5, len(seqLog.lines))], shLog.lines[:min(5, len(shLog.lines))])
	}
	if seq.Now() != sharded.Now() || seq.Fired() != sharded.Fired() {
		t.Fatalf("clock/fired diverged: seq (%d, %d) vs lanes (%d, %d)",
			seq.Now(), seq.Fired(), sharded.Now(), sharded.Fired())
	}
}

// runFleet runs shards independent workloads under the given worker
// count and returns the per-shard logs.
func runFleet(t *testing.T, shards, workers int) [][]string {
	t.Helper()
	lanes := NewLanes(workers, Millisecond)
	logs := make([]*fireLog, shards)
	for s := 0; s < shards; s++ {
		e := NewEngine()
		logs[s] = &fireLog{}
		buildWorkload(e, s, 42+uint64(s)*977, 150, logs[s])
		lanes.Attach(e)
	}
	lanes.Run()
	out := make([][]string, shards)
	for s := range logs {
		out[s] = logs[s].lines
	}
	return out
}

func TestLanesWorkerCountInvariance(t *testing.T) {
	want := runFleet(t, 4, 1)
	for _, workers := range []int{2, 4, 8} {
		got := runFleet(t, 4, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d produced different per-shard logs than workers=1", workers)
		}
	}
}

func TestLanesGOMAXPROCSInvariance(t *testing.T) {
	want := runFleet(t, 4, 4)
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		got := runFleet(t, 4, 4)
		runtime.GOMAXPROCS(prev)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("GOMAXPROCS=%d produced different per-shard logs", procs)
		}
	}
}

func TestLanesCrossLanePosts(t *testing.T) {
	lanes := NewLanes(2, Millisecond)
	engines := make([]*Engine, 3)
	for s := range engines {
		engines[s] = NewEngine()
		lanes.Attach(engines[s])
	}
	log := &fireLog{}
	// Shards 1 and 2 both post to shard 0 during epoch 0, at a time
	// inside epoch 0: delivery must clamp to epoch 1's first tick and
	// arrive in (source shard, post order) order.
	for _, src := range []int{2, 1} {
		src := src
		engines[src].Schedule(Time(src)*10, func(eng *Engine) {
			out := lanes.Outbox(src)
			out.Post(0, eng.Now(), func(*Engine) { log.add(0, 0, fmt.Sprintf("from%d-a", src)) })
			out.Post(0, eng.Now(), func(*Engine) { log.add(0, 0, fmt.Sprintf("from%d-b", src)) })
		})
	}
	// Keep shard 0 alive into epoch 1 so delivered events have company.
	engines[0].Schedule(Time(Millisecond)+5, func(eng *Engine) { log.add(0, eng.Now(), "native") })
	lanes.Run()

	// Delivered posts all land at the epoch-1 boundary, before shard
	// 0's native event at boundary+5. Outboxes drain in shard-index
	// order: shard 1's pair, then shard 2's pair.
	want := []string{
		"s0 t=0 from1-a",
		"s0 t=0 from1-b",
		"s0 t=0 from2-a",
		"s0 t=0 from2-b",
		fmt.Sprintf("s0 t=%d native", Time(Millisecond)+5),
	}
	if !reflect.DeepEqual(log.lines, want) {
		t.Fatalf("cross-lane delivery order:\n got %v\nwant %v", log.lines, want)
	}
	if st := lanes.Stats(); st.Delivered != 4 {
		t.Fatalf("Delivered = %d, want 4", st.Delivered)
	}
}

func TestLanesBarrierHooks(t *testing.T) {
	lanes := NewLanes(1, Millisecond)
	e := NewEngine()
	lanes.Attach(e)
	// Two events one epoch apart: epoch 0 and epoch 2 (epoch 1 is
	// empty and must be skipped, not counted).
	e.Schedule(10, func(*Engine) {})
	e.Schedule(2*Time(Millisecond)+10, func(*Engine) {})
	var infos []BarrierInfo
	lanes.AtBarrier(func(info BarrierInfo) { infos = append(infos, info) })
	lanes.Run()

	if len(infos) != 2 {
		t.Fatalf("barriers fired %d times, want 2 (empty epoch must be skipped)", len(infos))
	}
	if infos[0].Epoch != 0 || infos[1].Epoch != 1 {
		t.Fatalf("epoch numbering: got %d, %d", infos[0].Epoch, infos[1].Epoch)
	}
	// After epoch 0 the queue still holds the epoch-2 event, so the
	// shard drains only at the second barrier.
	if len(infos[0].NewlyDrained) != 0 {
		t.Fatalf("NewlyDrained at first barrier = %v, want none", infos[0].NewlyDrained)
	}
	if !reflect.DeepEqual(infos[1].NewlyDrained, []int{0}) {
		t.Fatalf("NewlyDrained at last barrier = %v, want [0]", infos[1].NewlyDrained)
	}
	if st := lanes.Stats(); st.Epochs != 2 || st.Fired[0] != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLanesHalt(t *testing.T) {
	lanes := NewLanes(2, Millisecond)
	a, b := NewEngine(), NewEngine()
	lanes.Attach(a)
	lanes.Attach(b)
	var aFired, bFired int
	a.Schedule(1, func(eng *Engine) { aFired++; eng.Halt() })
	a.Schedule(2, func(*Engine) { aFired++ })
	for i := 0; i < 5; i++ {
		at := Time(i) * Time(Millisecond)
		b.Schedule(at, func(*Engine) { bFired++ })
	}
	lanes.Run()
	if aFired != 1 {
		t.Fatalf("halted shard fired %d events, want 1", aFired)
	}
	if bFired != 5 {
		t.Fatalf("live shard fired %d events, want 5", bFired)
	}
}

func TestLanesPostToDrainedShardRevives(t *testing.T) {
	lanes := NewLanes(1, Millisecond)
	a, b := NewEngine(), NewEngine()
	lanes.Attach(a)
	lanes.Attach(b)
	var got []string
	// Shard 1 drains in epoch 0; shard 0 posts to it in epoch 2.
	b.Schedule(1, func(*Engine) { got = append(got, "b-early") })
	a.Schedule(2*Time(Millisecond)+1, func(eng *Engine) {
		lanes.Outbox(0).Post(1, eng.Now(), func(*Engine) { got = append(got, "b-revived") })
	})
	lanes.Run()
	want := []string{"b-early", "b-revived"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
