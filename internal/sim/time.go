// Package sim provides the deterministic discrete-event simulation
// substrate that the rest of the library runs on: a virtual clock, a
// seedable random number generator, and an event engine with logical
// CPUs.
//
// Everything in the KLOC reproduction executes in virtual nanoseconds.
// Determinism is a hard requirement: two runs with the same seed and
// configuration produce bit-identical results, which is what makes the
// paper's figures regenerable as Go tests and benchmarks.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation. It is deliberately not time.Time: simulated time has
// no epoch and must never mix with wall-clock time.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the duration in (fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration in (fractional) milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String formats a duration with an adaptive unit, e.g. "36ms" or "2.0s".
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// String formats a time as a duration since the simulation start.
func (t Time) String() string { return Duration(t).String() }
