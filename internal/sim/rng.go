package sim

import "math"

func logf(x float64) float64 { return math.Log(x) }
func expf(x float64) float64 { return math.Exp(x) }

// RNG is a deterministic pseudo-random number generator (splitmix64 /
// xoshiro256** family). We implement it directly rather than using
// math/rand so that the simulation's stream is stable across Go
// releases: the paper's figures are regenerated as golden-shaped
// benchmarks and must not drift when the toolchain upgrades.
type RNG struct {
	// Every draw advances the state, so a stream is single-owner by
	// construction: confine each RNG to one lane and Fork children for
	// anything that must draw independently (rngflow enforces this).
	//klocs:owner=lane
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed via splitmix64,
// as recommended by the xoshiro authors.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A zero state would make the generator emit zeros forever.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n), Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator. Two forks from the same parent
// state produce distinct, deterministic streams; use one per workload
// thread so that thread interleavings do not perturb each other's draws.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

// Zipf draws Zipf-distributed ranks in [0, n) with exponent s > 1 using
// rejection-inversion (Hörmann/Derflinger). Key-value workloads in the
// paper (RocksDB, Redis, Cassandra via YCSB) are driven by skewed key
// popularity, which this models.
type Zipf struct {
	// The stream pointer is fixed at construction; draws advance the
	// RNG's own lane-confined state, not this field.
	//klocs:owner=init
	r                *RNG
	n                float64
	s                float64
	oneMinusS        float64
	hIntegralX1      float64
	hIntegralNumElem float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s (> 1).
func NewZipf(r *RNG, s float64, n int) *Zipf {
	if n <= 0 || s <= 1 {
		panic("sim: NewZipf requires n > 0 and s > 1")
	}
	z := &Zipf{r: r, n: float64(n), s: s, oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNumElem = z.hIntegral(z.n + 0.5)
	return z
}

func (z *Zipf) hIntegral(x float64) float64 {
	logX := logf(x)
	return helper2(z.oneMinusS*logX) * logX
}

func (z *Zipf) h(x float64) float64 { return expf(-z.s * logf(x)) }

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	for {
		u := z.hIntegralNumElem + z.r.Float64()*(z.hIntegralX1-z.hIntegralNumElem)
		x := z.hIntegralInverse(u)
		k := x + 0.5
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		kf := float64(int64(k))
		if u >= z.hIntegral(kf+0.5)-z.h(kf) {
			return int(kf) - 1
		}
	}
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return expf(helper1(t) * x)
}

// helper1 computes log1p(x)/x with series fallback near zero.
func helper1(x float64) float64 {
	if x > -0.5 && x < 0.5 {
		return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
	}
	return logf(1+x) / x
}

// helper2 computes expm1(x)/x with series fallback near zero.
func helper2(x float64) float64 {
	if x > -0.5 && x < 0.5 {
		return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
	}
	return (expf(x) - 1) / x
}
