package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500, "2.5us"},
		{36 * Millisecond, "36.0ms"},
		{2 * Second, "2.00s"},
		{-2500, "-2.5us"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: got %d", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %d", d)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws of 1000", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("zero seed produced %d zero draws", zeros)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation at value %d", v)
		}
		seen[v] = true
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(5)
	f1 := parent.Fork()
	f2 := parent.Fork()
	diff := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			diff++
		}
	}
	if diff < 95 {
		t.Fatalf("forked streams nearly identical: only %d/100 differ", diff)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(9)
	z := NewZipf(r, 1.2, 1000)
	counts := make([]int, 1000)
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	// Rank 0 must be the most popular, and the head must dominate.
	for i := 1; i < 1000; i++ {
		if counts[i] > counts[0] {
			t.Fatalf("rank %d (%d) more popular than rank 0 (%d)", i, counts[i], counts[0])
		}
	}
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if frac := float64(head) / draws; frac < 0.5 {
		t.Fatalf("top-10%% of keys drew only %.2f of traffic, want skew", frac)
	}
}

func TestZipfStatisticalShape(t *testing.T) {
	// The ratio of probabilities of rank 1 to rank 2 should approach 2^s.
	r := NewRNG(13)
	s := 1.5
	z := NewZipf(r, s, 100)
	var c1, c2 int
	for i := 0; i < 200000; i++ {
		switch z.Next() {
		case 0:
			c1++
		case 1:
			c2++
		}
	}
	got := float64(c1) / float64(c2)
	want := math.Pow(2, s)
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("rank1/rank2 ratio %.3f, want ~%.3f", got, want)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func(*Engine) { order = append(order, 3) })
	e.Schedule(10, func(*Engine) { order = append(order, 1) })
	e.Schedule(20, func(*Engine) { order = append(order, 2) })
	e.Schedule(10, func(*Engine) { order = append(order, 11) }) // tie: scheduled later fires later
	e.Run()
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("clock ended at %v", e.Now())
	}
}

func TestEngineAfterAndReschedule(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(*Engine)
	tick = func(en *Engine) {
		count++
		if count < 5 {
			en.After(10, tick)
		}
	}
	e.After(10, tick)
	e.Run()
	if count != 5 {
		t.Fatalf("ticked %d times", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock at %v, want 50", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func(*Engine) { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and nil cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.Schedule(at, func(en *Engine) { fired = append(fired, en.Now()) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock at %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 3 || e.Now() != 25 {
		t.Fatalf("after Run: fired=%v now=%v", fired, e.Now())
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func(en *Engine) { count++; en.Halt() })
	e.Schedule(2, func(en *Engine) { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("halt did not stop the run: count=%d", count)
	}
	e.Run() // resumes
	if count != 2 {
		t.Fatalf("resume failed: count=%d", count)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(*Engine) {})
}

func TestEngineNegativeAfterClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-5, func(*Engine) { fired = true })
	e.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
}

func TestEngineDeterminismProperty(t *testing.T) {
	// Property: a randomized schedule replayed with the same seed fires
	// in an identical order.
	run := func(seed uint64) []int {
		r := NewRNG(seed)
		e := NewEngine()
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			e.Schedule(Time(r.Intn(50)), func(*Engine) { order = append(order, i) })
		}
		e.Run()
		return order
	}
	f := func(seed uint64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
