package sim

import "sync"

// Lanes is the sharded executor of ROADMAP item 2: it drives several
// independent Engines ("shards") through lock-step virtual-time
// epochs, running shards concurrently inside an epoch and
// synchronizing at a barrier between epochs. Determinism is the
// contract — a shard driven by Lanes fires exactly the events, in
// exactly the order, at exactly the clock values, that a plain
// Engine.Run would have fired, regardless of how many OS workers the
// host grants. The only coupling between shards is the Outbox: a
// shard may post an event to another shard during an epoch, and the
// coordinator delivers all posts at the next barrier in canonical
// (shard index, post index) order, clamped to the following epoch so
// the destination never observes a time in its own past.
//
// Phase taxonomy (enforced by the phasecheck analyzer, DESIGN.md §15):
//   - lane:    code running on one lane's worker during an epoch; may
//     touch only that shard's owner=lane state.
//   - barrier: code running on the coordinator while every lane is
//     quiescent; the only place owner=epoch state may change and
//     cross-shard mail is exchanged.
//   - init:    single-goroutine construction before Run.
//
// All coordinator fields are owner=epoch: they are read by lane
// workers only via the values the coordinator hands them (engine
// pointers fixed at Attach time) and mutated only between epochs.
type Lanes struct {
	// workers is the number of OS goroutines used inside an epoch.
	// It affects wall-clock only, never results.
	//klocs:owner=init
	workers int
	// quantum is the epoch width in virtual time. Any positive value
	// is correct; it trades barrier overhead against lane slack.
	//klocs:owner=init
	quantum Duration
	//klocs:owner=epoch
	engines []*Engine
	//klocs:owner=epoch
	outboxes []*Outbox
	//klocs:owner=epoch
	barrierFns []BarrierFunc
	// finished tracks shards observed drained (or halted) at the last
	// barrier, so drains are announced once per drain.
	//klocs:owner=epoch
	finished []bool
	//klocs:owner=epoch
	epochs uint64
	//klocs:owner=epoch
	delivered uint64
}

// Outbox carries one shard's cross-lane posts for the current epoch.
// During an epoch it is written only by the goroutine running its
// shard; the coordinator drains it at the barrier, after the
// epoch-end WaitGroup join (which is the happens-before edge — no
// atomics are needed).
type Outbox struct {
	//klocs:owner=lane
	posts []laneDelivery
}

// laneDelivery is one pending cross-shard event, immutable after the
// Post that constructs it (the fields classify as inferred init).
type laneDelivery struct {
	dst int
	at  Time
	fn  func(*Engine)
}

// Post schedules fn on shard dst at virtual time at. The event is
// held until the current epoch's barrier and delivered there; if at
// falls inside the current epoch it is clamped forward to the first
// tick of the next epoch, so delivery order — (source shard, post
// order) at the barrier — is canonical and worker-count independent.
func (o *Outbox) Post(dst int, at Time, fn func(*Engine)) {
	o.posts = append(o.posts, laneDelivery{dst: dst, at: at, fn: fn})
}

// BarrierInfo is the coordinator's report to AtBarrier hooks: which
// epoch just ended, the latest shard clock, how many cross-lane posts
// were delivered at this barrier, and which shards drained during the
// epoch. NewlyDrained lists a shard again if cross-lane mail revived
// it and it drained a second time.
type BarrierInfo struct {
	Epoch uint64
	Now   Time
	// Delivered counts cross-lane posts handed over at this barrier.
	Delivered int
	// NewlyDrained lists shards that ran out of events this epoch, in
	// shard-index order.
	NewlyDrained []int
}

// BarrierFunc runs on the coordinator at every barrier, while all
// lanes are quiescent. It may touch epoch state freely; phasecheck
// treats AtBarrier arguments as barrier-phase roots.
type BarrierFunc func(BarrierInfo)

// NewLanes returns a coordinator that runs epochs of the given
// virtual-time quantum on the given number of workers. workers < 1
// and quantum <= 0 fall back to 1 and one millisecond.
func NewLanes(workers int, quantum Duration) *Lanes {
	if workers < 1 {
		workers = 1
	}
	if quantum <= 0 {
		quantum = Millisecond
	}
	return &Lanes{workers: workers, quantum: quantum}
}

// Attach registers an engine as the next shard and returns its shard
// index. Attach is init-phase: call it before Run.
func (l *Lanes) Attach(e *Engine) int {
	l.engines = append(l.engines, e)
	l.outboxes = append(l.outboxes, &Outbox{})
	l.finished = append(l.finished, false)
	return len(l.engines) - 1
}

// Shards reports how many engines are attached.
func (l *Lanes) Shards() int { return len(l.engines) }

// Workers reports the worker count results never depend on.
func (l *Lanes) Workers() int { return l.workers }

// Outbox returns the cross-lane outbox for a shard. Code running on
// that shard's engine may Post into it during an epoch.
func (l *Lanes) Outbox(shard int) *Outbox { return l.outboxes[shard] }

// AtBarrier registers fn to run at every epoch barrier. Init-phase.
func (l *Lanes) AtBarrier(fn BarrierFunc) {
	l.barrierFns = append(l.barrierFns, fn)
}

// LaneStats summarizes a Run for benchmarks and tests.
type LaneStats struct {
	// Epochs is the number of barrier intervals executed. Empty
	// stretches of virtual time are skipped, not counted.
	Epochs uint64
	// Delivered is the total number of cross-lane posts handed over.
	Delivered uint64
	// Fired is the per-shard event count.
	Fired []uint64
}

// Stats reports coordinator counters. Barrier- or init-phase only.
func (l *Lanes) Stats() LaneStats {
	s := LaneStats{Epochs: l.epochs, Delivered: l.delivered}
	for _, e := range l.engines {
		s.Fired = append(s.Fired, e.Fired())
	}
	return s
}

// pending reports the earliest queued event time across live shards
// and whether any shard has work. Halted shards are skipped: Halt is
// a shard-local stop, matching Engine.Run semantics.
func (l *Lanes) pending() (Time, bool) {
	var earliest Time
	found := false
	for _, e := range l.engines {
		if e.halted || len(e.queue) == 0 {
			continue
		}
		if at := e.queue[0].at; !found || at < earliest {
			earliest = at
			found = true
		}
	}
	return earliest, found
}

// Run drives all shards to completion: each epoch covers one quantum
// of virtual time, lanes run concurrently within it, and the
// coordinator delivers cross-lane mail and fires AtBarrier hooks
// between epochs. Run returns when every shard is drained or halted
// and no mail is pending. It is not reentrant and must not run
// concurrently with Attach/AtBarrier.
func (l *Lanes) Run() {
	for {
		earliest, ok := l.pending()
		if !ok && !l.mailPending() {
			return
		}
		if !ok {
			// Every queue is empty but mail is waiting: place the
			// barrier at the latest shard clock so deliveries clamp
			// consistently.
			earliest = l.maxNow()
		}
		// Epochs are absolute windows [k*quantum, (k+1)*quantum-1] of
		// virtual time, so the slicing depends only on event times,
		// never on worker count.
		epochIdx := earliest / Time(l.quantum)
		deadline := (epochIdx+1)*Time(l.quantum) - 1
		l.runEpoch(deadline)
		l.barrier(deadline)
	}
}

// mailPending reports whether any outbox holds undelivered posts.
func (l *Lanes) mailPending() bool {
	for _, o := range l.outboxes {
		if len(o.posts) > 0 {
			return true
		}
	}
	return false
}

// maxNow reports the latest shard clock.
func (l *Lanes) maxNow() Time {
	var max Time
	for _, e := range l.engines {
		if e.now > max {
			max = e.now
		}
	}
	return max
}

// runEpoch fires every shard's events with time <= deadline. Shard s
// runs on worker s % workers, so a single-worker run executes shards
// in index order on the calling goroutine — and because shards share
// no state inside an epoch, every schedule produces identical
// per-shard results.
func (l *Lanes) runEpoch(deadline Time) {
	if l.workers == 1 || len(l.engines) == 1 {
		for _, e := range l.engines {
			e.runThrough(deadline)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < l.workers && w < len(l.engines); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := w; s < len(l.engines); s += l.workers {
				l.engines[s].runThrough(deadline)
			}
		}(w)
	}
	wg.Wait()
}

// barrier runs on the coordinator between epochs: it drains every
// outbox in shard-index order (post order within a shard), schedules
// each post on its destination clamped to the next epoch's first
// tick, records newly drained shards, and fires the AtBarrier hooks.
//
//klocs:phase=barrier
func (l *Lanes) barrier(deadline Time) {
	boundary := deadline + 1
	deliveredHere := 0
	for _, o := range l.outboxes {
		for _, d := range o.posts {
			at := d.at
			if at < boundary {
				at = boundary
			}
			dst := l.engines[d.dst]
			if dst.halted {
				continue
			}
			dst.Schedule(at, d.fn)
			deliveredHere++
		}
		o.posts = o.posts[:0]
	}
	l.delivered += uint64(deliveredHere)
	l.epochs++

	var drained []int
	for s, e := range l.engines {
		done := e.halted || len(e.queue) == 0
		if done && !l.finished[s] {
			drained = append(drained, s)
		}
		l.finished[s] = done
	}
	if len(l.barrierFns) > 0 {
		info := BarrierInfo{
			Epoch:        l.epochs - 1,
			Now:          l.maxNow(),
			Delivered:    deliveredHere,
			NewlyDrained: drained,
		}
		for _, fn := range l.barrierFns {
			fn(info)
		}
	}
}
