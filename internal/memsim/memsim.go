// Package memsim models the heterogeneous memory platforms of the
// paper's §6.2: page frames living on memory nodes with distinct
// latency/bandwidth/capacity, a cross-socket interconnect, an optional
// hardware-managed DRAM L4 cache in front of persistent memory (Intel
// Optane "Memory Mode"), and a migration engine with Nimble-style
// parallel page copies.
//
// The simulator tracks frame *metadata* only — a 4 KB page is a struct,
// not 4 KB of bytes — so experiments can afford millions of pages.
// All costs are returned as virtual durations; callers charge them to
// the simulation engine.
package memsim

import (
	"sort"

	"kloc/internal/fault"
	"kloc/internal/metrics"
	"kloc/internal/percpu"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

// PageSize is the simulated page size in bytes. The paper focuses on
// 4 KB pages (§5, "KLOC support for multi-page size").
const PageSize = 4096

// NodeID identifies a memory node.
type NodeID int

// NodeKind distinguishes memory technologies.
type NodeKind uint8

// Node kinds.
const (
	DRAM NodeKind = iota
	PMEM
)

func (k NodeKind) String() string {
	if k == PMEM {
		return "pmem"
	}
	return "dram"
}

// Class labels what a frame holds. Fig 2 and Fig 5b break results down
// by exactly these classes.
type Class uint8

// Frame classes.
const (
	ClassFree  Class = iota
	ClassApp         // application (userspace) page
	ClassCache       // page cache page (non-slab kernel object)
	ClassSlab        // slab-allocated kernel objects
	ClassKloc        // kernel objects on the relocatable KLOC allocator
	ClassMeta        // KLOC bookkeeping metadata (knodes, trees)
)

func (c Class) String() string {
	switch c {
	case ClassApp:
		return "app"
	case ClassCache:
		return "cache"
	case ClassSlab:
		return "slab"
	case ClassKloc:
		return "kloc"
	case ClassMeta:
		return "meta"
	default:
		return "free"
	}
}

// Kernel reports whether the class is a kernel-object class.
func (c Class) Kernel() bool {
	return c == ClassCache || c == ClassSlab || c == ClassKloc || c == ClassMeta
}

// Node is one memory device: a tier in the two-tier platform or a
// socket's memory in the Optane platform.
type Node struct {
	ID       NodeID
	Name     string
	Kind     NodeKind
	Socket   int
	Capacity int // pages

	// ReadLatency/WriteLatency are per-access device latencies.
	ReadLatency  sim.Duration
	WriteLatency sim.Duration
	// Bandwidth in bytes per nanosecond (1 GB/s ≈ 1.074 B/ns; we use
	// decimal GB: 1 GB/s = 1 B/ns).
	Bandwidth float64

	//klocs:owner=lane
	used int
	// migBusyUntil marks the node as carrying background migration
	// traffic; accesses before this time pay a bandwidth penalty.
	// Excessive migration damaging performance is a real effect the
	// paper calls out in §7.2.
	//klocs:owner=lane
	migBusyUntil sim.Time

	// wm holds the node's reclaim watermarks. The zero value disables
	// the reserve gate entirely, so nodes without watermarks behave as
	// if the pressure plane did not exist. Installed at setup or at a
	// reconfiguration boundary, never on the access path.
	//klocs:owner=epoch
	wm Watermarks
}

// Watermarks are per-node reclaim thresholds in pages, mirroring
// Linux's zone watermarks: allocations that would leave fewer than Min
// free pages fail unless the allocator is in atomic context; kswapd
// wakes below Low and reclaims until free memory reaches High.
type Watermarks struct {
	Min, Low, High int
}

// Zero reports whether the watermarks are unset (reserve gate off).
func (w Watermarks) Zero() bool { return w.Min == 0 && w.Low == 0 && w.High == 0 }

// DeriveWatermarks computes default watermarks from a node capacity,
// following the shape (not the tunables) of Linux's
// min_free_kbytes-derived ladder: min ≈ capacity/64, low = min·5/4,
// high = min·3/2.
func DeriveWatermarks(capacityPages int) Watermarks {
	min := capacityPages / 64
	if min < 4 {
		min = 4
	}
	return Watermarks{Min: min, Low: min * 5 / 4, High: min * 3 / 2}
}

// SetWatermarks installs reclaim watermarks on the node.
func (n *Node) SetWatermarks(w Watermarks) { n.wm = w }

// NodeWatermarks returns the node's watermarks (zero if unset).
func (n *Node) NodeWatermarks() Watermarks { return n.wm }

// Used reports allocated pages.
func (n *Node) Used() int { return n.used }

// Free reports unallocated pages.
func (n *Node) Free() int { return n.Capacity - n.used }

// FrameID identifies a page frame.
type FrameID uint64

// Frame is the metadata for one simulated physical page — or, when
// Order > 0, a compound (huge) page covering 2^Order base pages (§5's
// multi-page-size support: THP regions tier as a unit).
// Frame metadata mutates on the allocation, access, and migration
// paths — all driven by the lane that owns this Memory's timeline
// partition, so the mutable fields are lane-confined.
type Frame struct {
	ID FrameID
	//klocs:owner=lane
	Node NodeID
	//klocs:owner=lane
	Class Class
	// Order is the compound-page order: 0 = 4 KB, 9 = 2 MB.
	Order uint8

	// Pinned frames cannot migrate (slab allocations, §3.3: "cannot be
	// relocated").
	//klocs:owner=lane
	Pinned bool
	// Dirty pages must be written back before reclaim.
	//klocs:owner=lane
	Dirty bool

	// Knode associates the frame with a KLOC (0 = none).
	//klocs:owner=lane
	Knode uint64

	Allocated sim.Time
	//klocs:owner=lane
	LastAccess sim.Time
	// Migrations counts moves; the paper uses an 8-bit per-page counter
	// to damp ping-ponging (§4.5).
	//klocs:owner=lane
	Migrations uint8

	// pos is the frame's index in the live table under ModeIndexed
	// (-1 = not live). Maintained by Alloc/Free via swap-remove.
	//klocs:owner=lane
	pos int
}

// Stats aggregates the accounting the evaluation section needs. Every
// counter is written on the op/migration hot path (or materialized
// from the batching accumulator at SyncStats) by the lane driving
// this Memory instance — lane-confined throughout.
type Stats struct {
	// Refs counts memory references by class (Fig 2c).
	//klocs:owner=lane
	Refs [6]uint64
	// BytesTouched counts bytes moved through each class.
	//klocs:owner=lane
	BytesTouched [6]uint64
	// AllocsByClassNode counts page allocations per class per node
	// (Fig 2a/2b, Fig 5b "pages allocated in slow memory").
	//klocs:owner=lane
	AllocsByClassNode map[NodeID]*[6]uint64
	// Demotions / Promotions count page migrations fast->slow and
	// slow->fast (or local<->remote) (§4.4, Fig 5b).
	//klocs:owner=lane
	Demotions uint64
	//klocs:owner=lane
	Promotions uint64
	// MigratedPages counts every page move.
	//klocs:owner=lane
	MigratedPages uint64
	// AllocFaults / MigrationFaults count injected failures from the
	// fault plane (zero when no plane is armed).
	//klocs:owner=lane
	AllocFaults uint64
	//klocs:owner=lane
	MigrationFaults uint64
	// ReserveDips counts atomic-context allocations that dipped below a
	// node's Min watermark — successful GFP_ATOMIC-style draws on the
	// emergency reserve.
	//klocs:owner=lane
	ReserveDips uint64
	// WatermarkBlocks counts non-atomic allocations refused by the Min
	// watermark gate (room existed but only inside the reserve).
	//klocs:owner=lane
	WatermarkBlocks uint64
	// L4Hits/L4Misses count Memory-Mode DRAM cache behaviour.
	//klocs:owner=lane
	L4Hits, L4Misses uint64
	// RefsByNode counts references served by each node (placement
	// quality: the fraction served by the fast/local node).
	//klocs:owner=lane
	RefsByNode map[NodeID]uint64
}

// Memory is a set of nodes plus topology: which socket each CPU lives
// on, interconnect cost, and optional per-socket L4 caches.
type Memory struct {
	Nodes []*Node
	// CPUSocket maps logical CPU -> socket.
	CPUSocket []int
	// Interconnect is the added latency for a cross-socket access.
	Interconnect sim.Duration
	// RemoteBandwidthFactor scales bandwidth for cross-socket accesses
	// (QPI/UPI is narrower than the local memory bus).
	RemoteBandwidthFactor float64

	// Fault, when non-nil, is consulted on every allocation and every
	// batched migration. A nil plane injects nothing. Armed between
	// runs (kernel.InjectFaults), never on the hot path.
	//klocs:owner=epoch
	Fault *fault.Plane

	// Trace, when non-nil, records memsim.migrate events for every
	// batched frame move. The tracer is strictly passive; a nil tracer
	// leaves runs bit-identical. Rewired only at attach time.
	//klocs:owner=epoch
	Trace *trace.Tracer

	// l4 caches, indexed by socket; nil entries mean no cache. The
	// slice is installed by AttachL4 at setup; the caches themselves
	// are lane state (see l4Cache).
	//klocs:owner=epoch
	l4 []*l4Cache

	// mode selects the accounting path (DESIGN.md §13). Fixed by
	// SetMode before any traffic; every mode yields byte-identical
	// simulation results.
	//klocs:owner=epoch
	mode metrics.Mode
	// frames is the legacy live-frame index; under ModeIndexed the
	// compact live table (+ Frame.pos) replaces it and frames is nil.
	//klocs:owner=lane
	frames map[FrameID]*Frame
	//klocs:owner=lane
	live []*Frame
	//klocs:owner=lane
	nextFrame FrameID
	// freeFrames is the ModePooled frame freelist: Free pushes retired
	// Frame structs, Alloc recycles them (with fresh IDs, so stale
	// FrameIDs never alias a new allocation's identity).
	//klocs:owner=lane
	freeFrames []*Frame
	//klocs:owner=lane
	poolFresh uint64
	//klocs:owner=lane
	poolReuse uint64
	// acc batches the per-access counters (Refs, BytesTouched,
	// RefsByNode) in per-CPU lanes under ModeBatched; SyncStats
	// materializes it into Stats. Cell layout: [0,6) refs by class,
	// [6,12) bytes by class, [12,12+nodes) refs by node. The pointer
	// is rewired only by SetMode, before traffic.
	//klocs:owner=epoch
	acc *percpu.Accumulator
	// allocsDense/usedDense/refsDense are the ModeIndexed stores behind
	// Stats.AllocsByClassNode, usedByClass, and Stats.RefsByNode,
	// indexed by NodeID (node IDs are dense positions in Nodes).
	// refsDense is superseded by acc when batching is also on.
	//klocs:owner=lane
	allocsDense [][6]uint64
	//klocs:owner=lane
	usedDense [][6]int
	//klocs:owner=lane
	refsDense []uint64
	// batched/pooled/indexed cache the resolved mode bits for the hot
	// paths. Written only by SetMode, before traffic.
	//klocs:owner=epoch
	batched, pooled, indexed bool
	// atomicDepth > 0 marks GFP_ATOMIC context: allocations may dip
	// into the watermark reserve (rx path, journal commits, reclaim
	// itself — the PF_MEMALLOC analog). The simulation is single-
	// threaded, so a plain depth counter is race-free.
	//klocs:owner=lane
	atomicDepth int
	// usedByClass tracks current page occupancy per node per class
	// (capacity-limit enforcement, sys_kloc_memsize). Legacy store;
	// usedDense replaces it under ModeIndexed. Occupancy is control
	// flow (capacity limits), so whichever store is active is updated
	// exactly, never batched.
	//klocs:owner=lane
	usedByClass map[NodeID]*[6]int

	//klocs:owner=lane
	Stats Stats
}

// New builds a Memory from nodes and a CPU->socket map. The accounting
// path starts at metrics.DefaultMode; call SetMode before any traffic
// to select another (the perf harness's baseline A/B runs do).
func New(nodes []*Node, cpuSocket []int, interconnect sim.Duration) *Memory {
	m := &Memory{
		Nodes:                 nodes,
		CPUSocket:             cpuSocket,
		Interconnect:          interconnect,
		RemoteBandwidthFactor: 0.6,
		nextFrame:             1,
	}
	m.Stats.AllocsByClassNode = make(map[NodeID]*[6]uint64)
	m.Stats.RefsByNode = make(map[NodeID]uint64)
	m.usedByClass = make(map[NodeID]*[6]int)
	for _, n := range nodes {
		m.Stats.AllocsByClassNode[n.ID] = &[6]uint64{}
		m.usedByClass[n.ID] = &[6]int{}
	}
	maxSock := 0
	for _, s := range cpuSocket {
		if s > maxSock {
			maxSock = s
		}
	}
	m.l4 = make([]*l4Cache, maxSock+1)
	m.SetMode(metrics.DefaultMode())
	return m
}

// SetMode selects the accounting path (DESIGN.md §13) and rebuilds the
// internal stores for it. Must be called before any allocation or
// access traffic — it resets the accounting state, not the nodes.
// Every mode produces byte-identical simulation behaviour; only the
// bookkeeping cost differs.
func (m *Memory) SetMode(mode metrics.Mode) {
	m.mode = mode.Resolve()
	m.batched = m.mode.Batched()
	m.pooled = m.mode.Pooled()
	m.indexed = m.mode.Indexed()
	m.freeFrames = nil
	m.poolFresh, m.poolReuse = 0, 0
	if m.indexed {
		m.frames = nil
		m.live = nil
		m.allocsDense = make([][6]uint64, len(m.Nodes))
		m.usedDense = make([][6]int, len(m.Nodes))
		m.refsDense = make([]uint64, len(m.Nodes))
	} else {
		m.frames = make(map[FrameID]*Frame)
		m.live = nil
		m.allocsDense, m.usedDense, m.refsDense = nil, nil, nil
	}
	if m.batched {
		m.acc = percpu.NewAccumulator(len(m.CPUSocket), accNodeCell+len(m.Nodes), 0)
	} else {
		m.acc = nil
	}
}

// Mode reports the active accounting mode.
func (m *Memory) Mode() metrics.Mode { return m.mode }

// Accumulator cell layout under ModeBatched: refs by class, bytes by
// class, then refs by node.
const (
	accRefCell  = 0
	accByteCell = 6
	accNodeCell = 12
)

// SyncStats materializes the batched/indexed accounting stores into
// Stats, so a direct read of Stats.Refs / BytesTouched / RefsByNode /
// AllocsByClassNode is exact. The harness calls it at its snapshot and
// collect boundaries; tests reading Stats directly after traffic must
// call it too. Idempotent, accounting-only, and invisible to the
// simulation.
func (m *Memory) SyncStats() {
	if m.acc != nil {
		m.acc.Flush()
		for c := 0; c < 6; c++ {
			m.Stats.Refs[c] = m.acc.Value(accRefCell + c)
			m.Stats.BytesTouched[c] = m.acc.Value(accByteCell + c)
		}
		for i := range m.Nodes {
			// Only materialize touched nodes: the legacy map gains a key
			// on a node's first reference, and synced stats must be
			// indistinguishable from legacy ones.
			if v := m.acc.Value(accNodeCell + i); v > 0 {
				m.Stats.RefsByNode[NodeID(i)] = v
			}
		}
	} else if m.refsDense != nil {
		for i, v := range m.refsDense {
			if v > 0 {
				m.Stats.RefsByNode[NodeID(i)] = v
			}
		}
	}
	if m.allocsDense != nil {
		for i := range m.allocsDense {
			*m.Stats.AllocsByClassNode[NodeID(i)] = m.allocsDense[i]
		}
	}
}

// PerfCounters are the accounting plane's own deterministic meters:
// accumulator adds vs shared-store commits (the batched write
// reduction) and frame-pool recycling. The perf harness reports them;
// they are not part of Stats so legacy and fast-path runs stay
// field-for-field comparable.
type PerfCounters struct {
	AccAdds, AccCommits       uint64
	FramesFresh, FramesReused uint64
}

// PerfCounters reports the accounting plane's meters (zeros for
// features the active mode has off).
func (m *Memory) PerfCounters() PerfCounters {
	pc := PerfCounters{FramesFresh: m.poolFresh, FramesReused: m.poolReuse}
	if m.acc != nil {
		pc.AccAdds, pc.AccCommits = m.acc.Counters()
	}
	return pc
}

// Node returns the node with the given id.
func (m *Memory) Node(id NodeID) *Node { return m.Nodes[int(id)] }

// AttachL4 installs a hardware-managed DRAM cache of capacityPages in
// front of all accesses from the given socket, with the given hit
// latency/bandwidth (Memory Mode, §6.2).
func (m *Memory) AttachL4(socket, capacityPages int, hitLatency sim.Duration, hitBandwidth float64) {
	m.l4[socket] = newL4Cache(capacityPages, hitLatency, hitBandwidth)
}

// SocketOf returns the socket of a CPU.
func (m *Memory) SocketOf(cpu int) int {
	if cpu < 0 || cpu >= len(m.CPUSocket) {
		return 0
	}
	return m.CPUSocket[cpu]
}

// NumCPUs reports the number of logical CPUs.
func (m *Memory) NumCPUs() int { return len(m.CPUSocket) }

// ErrNoMemory is returned when a node has no free pages. It is the
// fault plane's ENOMEM errno, so injected exhaustion and genuine
// exhaustion take the same recovery paths (reclaim, node fallback).
var ErrNoMemory error = fault.ENOMEM

// faultPointFor maps an allocation class to its fault point: slab-like
// (pinned/relocatable kernel-object and metadata) frames vs app and
// page-cache frames.
func faultPointFor(class Class) fault.Point {
	switch class {
	case ClassSlab, ClassKloc, ClassMeta:
		return fault.AllocSlab
	default:
		return fault.AllocPage
	}
}

// Alloc allocates one base-order frame on the given node for the given
// class.
func (m *Memory) Alloc(node NodeID, class Class, now sim.Time) (*Frame, error) {
	return m.AllocOrder(node, class, 0, now)
}

// AllocOrder allocates a compound frame of 2^order base pages.
func (m *Memory) AllocOrder(node NodeID, class Class, order uint8, now sim.Time) (*Frame, error) {
	n := m.Node(node)
	pages := 1 << order
	if n.used+pages > n.Capacity {
		return nil, ErrNoMemory
	}
	// Watermark reserve gate: a non-atomic allocation may not leave the
	// node below its Min watermark — that headroom is the emergency
	// reserve for atomic contexts (rx path, journal, reclaim).
	if !n.wm.Zero() && m.atomicDepth == 0 && n.Free()-pages < n.wm.Min {
		m.Stats.WatermarkBlocks++
		return nil, ErrNoMemory
	}
	// Injected exhaustion: the node claims to be full even though it has
	// room. Per-node injection means AllocFallback naturally falls
	// through to the next node in the placement order.
	if e := m.Fault.Check(faultPointFor(class), now); e != 0 {
		m.Stats.AllocFaults++
		return nil, e
	}
	if !n.wm.Zero() && m.atomicDepth > 0 && n.Free()-pages < n.wm.Min {
		m.Stats.ReserveDips++
	}
	n.used += pages
	// ModePooled recycles retired Frame structs off the freelist;
	// either way the frame gets a fresh, never-reused ID, so FrameID
	// identity is stable across recycling.
	var f *Frame
	if last := len(m.freeFrames) - 1; last >= 0 {
		f = m.freeFrames[last]
		m.freeFrames = m.freeFrames[:last]
		m.poolReuse++
	} else {
		f = new(Frame)
		m.poolFresh++
	}
	*f = Frame{
		ID:         m.nextFrame,
		Node:       node,
		Class:      class,
		Order:      order,
		Allocated:  now,
		LastAccess: now,
		pos:        -1,
	}
	m.nextFrame++
	if m.indexed {
		f.pos = len(m.live)
		m.live = append(m.live, f)
		m.allocsDense[node][class] += uint64(pages)
		m.usedDense[node][class] += pages
	} else {
		m.frames[f.ID] = f
		m.Stats.AllocsByClassNode[node][class] += uint64(pages)
		m.usedByClass[node][class] += pages
	}
	return f, nil
}

// EnterAtomic enters GFP_ATOMIC context: until the returned function is
// called, allocations may dip into the watermark reserve below Min.
// Nestable; the simulation is single-goroutine so no locking is needed.
//
//	defer mem.EnterAtomic()()
func (m *Memory) EnterAtomic() func() {
	m.atomicDepth++
	return func() { m.atomicDepth-- }
}

// InAtomic reports whether an atomic-context scope is open.
func (m *Memory) InAtomic() bool { return m.atomicDepth > 0 }

// Pages reports the base pages a frame covers.
func (f *Frame) Pages() int { return 1 << f.Order }

// UsedByClass reports a node's current page occupancy for a class.
// Occupancy is control flow (capacity limits consult it mid-run), so
// both stores are updated exactly and this read never needs a flush.
func (m *Memory) UsedByClass(node NodeID, class Class) int {
	if m.indexed {
		return m.usedDense[node][class]
	}
	return m.usedByClass[node][class]
}

// KernelUsed reports a node's current page occupancy across all
// kernel-object classes.
func (m *Memory) KernelUsed(node NodeID) int {
	if m.indexed {
		u := &m.usedDense[node]
		return u[ClassCache] + u[ClassSlab] + u[ClassKloc] + u[ClassMeta]
	}
	u := m.usedByClass[node]
	return u[ClassCache] + u[ClassSlab] + u[ClassKloc] + u[ClassMeta]
}

// AllocFallback tries nodes in order, returning the first success.
func (m *Memory) AllocFallback(order []NodeID, class Class, now sim.Time) (*Frame, error) {
	for _, id := range order {
		if f, err := m.Alloc(id, class, now); err == nil {
			return f, nil
		}
	}
	return nil, ErrNoMemory
}

// Free releases a frame. Freeing a frame that is not live is a no-op
// (double free); note that under ModePooled the no-op guarantee only
// holds until the struct is recycled into a new allocation — the
// sanitizer plane (alloc.Sanitizer) is the gate that proves callers
// keep the single-free discipline that recycling relies on.
func (m *Memory) Free(f *Frame) {
	if f == nil {
		return
	}
	if m.indexed {
		if f.pos < 0 || f.pos >= len(m.live) || m.live[f.pos] != f {
			return // double free is a no-op
		}
		last := len(m.live) - 1
		moved := m.live[last]
		m.live[f.pos] = moved
		moved.pos = f.pos
		m.live = m.live[:last]
		f.pos = -1
		m.usedDense[f.Node][f.Class] -= f.Pages()
	} else {
		if _, ok := m.frames[f.ID]; !ok {
			return // double free is a no-op
		}
		delete(m.frames, f.ID)
		m.usedByClass[f.Node][f.Class] -= f.Pages()
	}
	m.Node(f.Node).used -= f.Pages()
	f.Class = ClassFree
	if m.pooled {
		m.freeFrames = append(m.freeFrames, f)
	}
}

// Frames returns the number of live frames.
func (m *Memory) Frames() int {
	if m.indexed {
		return len(m.live)
	}
	return len(m.frames)
}

// FramesOn returns the live frames on a node, sorted by frame ID for
// deterministic iteration (the live table's swap-remove order and Go
// map order are both arbitrary).
func (m *Memory) FramesOn(node NodeID) []*Frame {
	out := make([]*Frame, 0, m.Node(node).Used())
	if m.indexed {
		for _, f := range m.live {
			if f.Node == node {
				out = append(out, f)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out
	}
	for _, f := range m.frames {
		if f.Node == node {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Access charges a read or write of `bytes` bytes on frame f from the
// given CPU and returns the virtual cost. It updates recency metadata
// and reference statistics.
func (m *Memory) Access(cpu int, f *Frame, bytes int, write bool, now sim.Time) sim.Duration {
	f.LastAccess = now
	if write {
		f.Dirty = true
	}
	// Reference accounting. Batched mode routes all three counters
	// through the per-CPU accumulator (net-delta commits, no map op);
	// indexed mode at least replaces the per-access map increment with
	// a dense-array one; legacy pays the map lookup per reference.
	if m.batched {
		lane := cpu
		if lane < 0 || lane >= m.acc.CPUs() {
			lane = 0
		}
		m.acc.Inc(lane, accRefCell+int(f.Class))
		m.acc.Add(lane, accByteCell+int(f.Class), int64(bytes))
		m.acc.Inc(lane, accNodeCell+int(f.Node))
	} else {
		m.Stats.Refs[f.Class]++
		m.Stats.BytesTouched[f.Class] += uint64(bytes)
		if m.indexed {
			m.refsDense[f.Node]++
		} else {
			m.Stats.RefsByNode[f.Node]++
		}
	}
	node := m.Node(f.Node)
	sock := m.SocketOf(cpu)

	// Memory-Mode: the socket-local DRAM L4 cache intercepts accesses to
	// PMEM nodes on the same socket.
	if node.Kind == PMEM && sock == node.Socket {
		if c := m.l4[sock]; c != nil {
			if c.access(f.ID) {
				m.Stats.L4Hits++
				return c.hitLatency + sim.Duration(float64(bytes)/c.hitBandwidth)
			}
			m.Stats.L4Misses++
			// Fall through: pay PMEM cost; the line is now cached.
		}
	}

	lat := node.ReadLatency
	if write {
		lat = node.WriteLatency
	}
	bw := node.Bandwidth
	if sock != node.Socket {
		lat += m.Interconnect
		bw *= m.RemoteBandwidthFactor
	}
	if now < node.migBusyUntil {
		// Background migration is consuming this node's bandwidth.
		bw *= migrationBandwidthShare
	}
	return lat + sim.Duration(float64(bytes)/bw)
}

// migrationBandwidthShare is the fraction of node bandwidth left for
// foreground traffic while migration copies are in flight.
const migrationBandwidthShare = 0.8

// NoteMigrationLoad extends a node's migration-busy horizon by d.
func (m *Memory) NoteMigrationLoad(id NodeID, now sim.Time, d sim.Duration) {
	n := m.Node(id)
	if n.migBusyUntil < now {
		n.migBusyUntil = now
	}
	n.migBusyUntil = n.migBusyUntil.Add(d)
}

// CanMigrate reports whether a frame is movable to dst right now.
func (m *Memory) CanMigrate(f *Frame, dst NodeID) bool {
	if f == nil || f.Pinned || f.Node == dst {
		return false
	}
	return m.Node(dst).Free() >= f.Pages()
}

// MoveFrame relocates a single frame to dst, updating occupancy and
// stats, and returns the copy cost (before parallelism scaling). An
// invalid move (pinned frame, same node, destination full) returns
// EBUSY and leaves the frame where it is; callers retry on a later
// tick.
func (m *Memory) MoveFrame(f *Frame, dst NodeID, fixed sim.Duration) (sim.Duration, error) {
	if !m.CanMigrate(f, dst) {
		return 0, fault.EBUSY
	}
	src := m.Node(f.Node)
	dstN := m.Node(dst)
	src.used -= f.Pages()
	dstN.used += f.Pages()
	if m.indexed {
		m.usedDense[f.Node][f.Class] -= f.Pages()
		m.usedDense[dst][f.Class] += f.Pages()
	} else {
		m.usedByClass[f.Node][f.Class] -= f.Pages()
		m.usedByClass[dst][f.Class] += f.Pages()
	}
	fasterDst := dstN.ReadLatency < src.ReadLatency ||
		(dstN.ReadLatency == src.ReadLatency && dstN.Bandwidth > src.Bandwidth)
	if fasterDst {
		m.Stats.Promotions++
	} else {
		m.Stats.Demotions++
	}
	m.Stats.MigratedPages += uint64(f.Pages())
	f.Node = dst
	if f.Migrations < 255 {
		f.Migrations++
	}
	bw := src.Bandwidth
	if dstN.Bandwidth < bw {
		bw = dstN.Bandwidth
	}
	return fixed + sim.Duration(float64(PageSize*f.Pages())/bw), nil
}

// Migrator batches frame moves with a parallel-copy model: Nimble
// parallelizes page copies across threads (§2, Table 5), dividing the
// serial copy time by Parallelism.
type Migrator struct {
	Mem *Memory
	// FixedPerPage covers page-table updates and TLB shootdown.
	FixedPerPage sim.Duration
	// Parallelism is the number of concurrent copy threads.
	Parallelism int
}

// Migrate moves every movable frame in the batch to dst, stopping when
// dst fills. It returns the pages moved, the pages whose move faulted
// (injected EBUSY — they stay put and should be retried on a later
// tick), and the total virtual cost; both endpoints are marked
// migration-busy for that duration (copies consume bandwidth that
// foreground accesses then contend for).
func (mg *Migrator) Migrate(frames []*Frame, dst NodeID, now sim.Time) (moved, faulted int, cost sim.Duration) {
	var serial sim.Duration
	srcSeen := make(map[NodeID]struct{})
	for _, f := range frames {
		if !mg.Mem.CanMigrate(f, dst) {
			continue
		}
		if e := mg.Mem.Fault.Check(fault.Migrate, now); e != 0 {
			mg.Mem.Stats.MigrationFaults++
			faulted++
			continue
		}
		src := f.Node
		d, err := mg.Mem.MoveFrame(f, dst, mg.FixedPerPage)
		if err != nil {
			continue // lost a race with another mutation; skip
		}
		srcSeen[src] = struct{}{}
		serial += d
		moved++
		mg.Mem.Trace.Emit(trace.Migrate, now, f.Knode, uint64(f.ID),
			f.Class.String(), int(dst), int64(f.Pages()))
	}
	p := mg.Parallelism
	if p < 1 {
		p = 1
	}
	cost = serial / sim.Duration(p)
	if moved > 0 {
		mg.Mem.NoteMigrationLoad(dst, now, cost)
		//klocs:unordered one independent load note per distinct source node
		for src := range srcSeen {
			mg.Mem.NoteMigrationLoad(src, now, cost)
		}
	}
	return moved, faulted, cost
}

// --- L4 cache (Memory Mode) ---

// l4Cache is a fully-associative LRU page cache standing in for the
// hardware-managed DRAM cache of Optane Memory Mode. Real hardware is
// direct-mapped at cacheline granularity; at the page granularity our
// workloads operate on, LRU over frame IDs captures the same
// hit-when-hot / miss-when-cold behaviour the evaluation depends on.
type l4Cache struct {
	capacity     int
	hitLatency   sim.Duration
	hitBandwidth float64

	// The LRU structure mutates on every simulated access, from the
	// lane driving this Memory instance.
	//klocs:owner=lane
	entries map[FrameID]*l4Entry
	//klocs:owner=lane
	head *l4Entry // most recent
	//klocs:owner=lane
	tail *l4Entry // least recent
}

type l4Entry struct {
	id FrameID
	//klocs:owner=lane
	prev, next *l4Entry
}

func newL4Cache(capacity int, hitLatency sim.Duration, hitBandwidth float64) *l4Cache {
	return &l4Cache{
		capacity:     capacity,
		hitLatency:   hitLatency,
		hitBandwidth: hitBandwidth,
		entries:      make(map[FrameID]*l4Entry),
	}
}

// access touches id, returns true on hit, and inserts on miss (evicting
// the LRU entry if full).
func (c *l4Cache) access(id FrameID) bool {
	if e, ok := c.entries[id]; ok {
		c.unlink(e)
		c.pushFront(e)
		return true
	}
	if len(c.entries) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.id)
	}
	e := &l4Entry{id: id}
	c.entries[id] = e
	c.pushFront(e)
	return false
}

func (c *l4Cache) unlink(e *l4Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *l4Cache) pushFront(e *l4Entry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *l4Cache) len() int { return len(c.entries) }
