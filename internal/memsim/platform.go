package memsim

import "kloc/internal/sim"

// GB converts gigabytes to a page count.
func GB(gb float64) int { return int(gb * 1e9 / PageSize) }

// MB converts megabytes to a page count.
func MB(mb float64) int { return int(mb * 1e6 / PageSize) }

// TwoTierConfig describes the paper's software-managed two-tier
// platform (Table 4): a fast, capacity-limited tier and a slow,
// high-capacity tier, with the slow tier realized by bandwidth
// throttling.
type TwoTierConfig struct {
	// FastPages / SlowPages are tier capacities in pages.
	FastPages, SlowPages int
	// FastBandwidth in bytes/ns (30 GB/s = 30.0).
	FastBandwidth float64
	// BandwidthRatio is slow:fast, e.g. 8 means fast has 8x the
	// bandwidth of slow (the paper's "1:8" x-axis label in Fig 6).
	BandwidthRatio float64
	// Latencies per access.
	FastLatency, SlowLatency sim.Duration
	CPUs                     int
}

// DefaultTwoTier mirrors Table 4 scaled by 1/scaleDiv: fast = 8 GB at
// 30 GB/s, slow = 80 GB, 1:4 bandwidth differential, 40 cores.
func DefaultTwoTier(scaleDiv int) TwoTierConfig {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	return TwoTierConfig{
		FastPages:      GB(8) / scaleDiv,
		SlowPages:      GB(80) / scaleDiv,
		FastBandwidth:  30,
		BandwidthRatio: 4,
		FastLatency:    90,
		// SlowLatency left 0: NewTwoTier derives the throttled tier's
		// loaded latency from the bandwidth ratio.
		CPUs: 16,
	}
}

// Fast and Slow are the conventional node IDs on the two-tier platform.
const (
	FastNode NodeID = 0
	SlowNode NodeID = 1
)

// NewTwoTier builds the two-tier platform. Node 0 is fast, node 1 slow;
// all CPUs sit on socket 0 (tiers, not sockets, per §6.2).
func NewTwoTier(cfg TwoTierConfig) *Memory {
	ratio := cfg.BandwidthRatio
	if ratio <= 0 {
		ratio = 4
	}
	if cfg.SlowLatency == 0 {
		// A bandwidth-throttled DRAM tier has DRAM unloaded latency, but
		// the effective (loaded) latency under throttling scales with
		// the throttling factor — queueing at the narrowed channel. This
		// is what the paper's thermal-throttling platform measures.
		cfg.SlowLatency = sim.Duration(float64(cfg.FastLatency) * ratio)
	}
	fast := &Node{
		ID: FastNode, Name: "fast", Kind: DRAM, Socket: 0,
		Capacity:    cfg.FastPages,
		ReadLatency: cfg.FastLatency, WriteLatency: cfg.FastLatency,
		Bandwidth: cfg.FastBandwidth,
	}
	slow := &Node{
		ID: SlowNode, Name: "slow", Kind: DRAM, Socket: 0,
		Capacity:    cfg.SlowPages,
		ReadLatency: cfg.SlowLatency, WriteLatency: cfg.SlowLatency,
		Bandwidth: cfg.FastBandwidth / ratio,
	}
	cpus := make([]int, max(cfg.CPUs, 1))
	return New([]*Node{fast, slow}, cpus, 0)
}

// OptaneConfig describes the Memory-Mode platform (Table 4): two
// sockets, each with a PMEM node fronted by a hardware-managed DRAM L4
// cache; the OS places pages on sockets and AutoNUMA-style policies
// migrate between them.
type OptaneConfig struct {
	// PMEMPages per socket.
	PMEMPages int
	// L4Pages per socket (16 GB DRAM cache in the paper).
	L4Pages int
	// PMEM device characteristics: 2-3x read, ~5x write latency vs DRAM,
	// 1/3 bandwidth (§2).
	PMEMReadLatency, PMEMWriteLatency sim.Duration
	PMEMBandwidth                     float64
	// DRAM cache characteristics (3-4x faster than PMEM, §6.2).
	DRAMLatency   sim.Duration
	DRAMBandwidth float64
	// Interconnect latency between sockets.
	Interconnect sim.Duration
	CPUsPerSock  int
}

// DefaultOptane mirrors Table 4 scaled by 1/scaleDiv: 128 GB PMEM and a
// 16 GB DRAM cache per socket.
func DefaultOptane(scaleDiv int) OptaneConfig {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	return OptaneConfig{
		PMEMPages:        GB(128) / scaleDiv,
		L4Pages:          GB(16) / scaleDiv,
		PMEMReadLatency:  300,
		PMEMWriteLatency: 500,
		PMEMBandwidth:    8,
		DRAMLatency:      90,
		DRAMBandwidth:    25,
		Interconnect:     120,
		CPUsPerSock:      8,
	}
}

// Socket node IDs on the Optane platform.
const (
	Socket0Node NodeID = 0
	Socket1Node NodeID = 1
)

// NewOptane builds the Memory-Mode platform: node i is socket i's PMEM,
// each fronted by a DRAM L4 cache; CPUs split evenly across sockets.
func NewOptane(cfg OptaneConfig) *Memory {
	n0 := &Node{
		ID: Socket0Node, Name: "socket0-pmem", Kind: PMEM, Socket: 0,
		Capacity:    cfg.PMEMPages,
		ReadLatency: cfg.PMEMReadLatency, WriteLatency: cfg.PMEMWriteLatency,
		Bandwidth: cfg.PMEMBandwidth,
	}
	n1 := &Node{
		ID: Socket1Node, Name: "socket1-pmem", Kind: PMEM, Socket: 1,
		Capacity:    cfg.PMEMPages,
		ReadLatency: cfg.PMEMReadLatency, WriteLatency: cfg.PMEMWriteLatency,
		Bandwidth: cfg.PMEMBandwidth,
	}
	cpus := make([]int, 2*max(cfg.CPUsPerSock, 1))
	for i := range cpus {
		if i >= cfg.CPUsPerSock {
			cpus[i] = 1
		}
	}
	m := New([]*Node{n0, n1}, cpus, cfg.Interconnect)
	m.AttachL4(0, cfg.L4Pages, cfg.DRAMLatency, cfg.DRAMBandwidth)
	m.AttachL4(1, cfg.L4Pages, cfg.DRAMLatency, cfg.DRAMBandwidth)
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
