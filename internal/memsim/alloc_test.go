package memsim

import (
	"testing"

	"kloc/internal/metrics"
)

// TestPooledAllocFreeIsAllocFree: with ModePooled, a steady-state
// alloc/access/free churn must recycle Frame structs instead of
// handing garbage to the collector. This pins the perfbench
// alloc-churn result (allocs/op ~ 0) as a regression test.
func TestPooledAllocFreeIsAllocFree(t *testing.T) {
	m := NewTwoTier(DefaultTwoTier(1024))
	m.SetMode(metrics.LegacyMode() | metrics.ModePooled)
	// Warm the pool with one generation of frames.
	var warm []*Frame
	for i := 0; i < 64; i++ {
		f, err := m.AllocOrder(FastNode, ClassApp, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		warm = append(warm, f)
	}
	for _, f := range warm {
		m.Free(f)
	}
	avg := testing.AllocsPerRun(200, func() {
		f, err := m.AllocOrder(FastNode, ClassApp, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		m.Access(0, f, 64, true, 0)
		m.Free(f)
	})
	if avg != 0 {
		t.Fatalf("pooled alloc/access/free allocated %.2f objects per op", avg)
	}
	fresh, reused := m.PerfCounters().FramesFresh, m.PerfCounters().FramesReused
	if reused == 0 {
		t.Fatalf("pool never reused a frame (fresh=%d reused=%d)", fresh, reused)
	}
}

// TestLegacyAllocFreeDoesNotPool: the baseline keeps the exact legacy
// behavior — every AllocOrder constructs a fresh Frame and the reuse
// meter stays zero.
func TestLegacyAllocFreeDoesNotPool(t *testing.T) {
	m := NewTwoTier(DefaultTwoTier(1024))
	m.SetMode(metrics.LegacyMode())
	for i := 0; i < 32; i++ {
		f, err := m.AllocOrder(FastNode, ClassApp, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		m.Free(f)
	}
	pc := m.PerfCounters()
	if pc.FramesReused != 0 {
		t.Fatalf("legacy mode reused %d frames", pc.FramesReused)
	}
	if pc.FramesFresh == 0 {
		t.Fatal("fresh-frame meter never moved")
	}
}
