package memsim

import (
	"testing"
	"testing/quick"

	"kloc/internal/sim"
)

func testMem() *Memory {
	return NewTwoTier(TwoTierConfig{
		FastPages: 100, SlowPages: 1000,
		FastBandwidth: 30, BandwidthRatio: 4,
		FastLatency: 90, SlowLatency: 130, CPUs: 4,
	})
}

func TestAllocFree(t *testing.T) {
	m := testMem()
	f, err := m.Alloc(FastNode, ClassApp, 10)
	if err != nil {
		t.Fatal(err)
	}
	if f.Node != FastNode || f.Class != ClassApp || f.Allocated != 10 {
		t.Fatalf("bad frame: %+v", f)
	}
	if m.Node(FastNode).Used() != 1 || m.Frames() != 1 {
		t.Fatal("occupancy wrong after alloc")
	}
	m.Free(f)
	if m.Node(FastNode).Used() != 0 || m.Frames() != 0 {
		t.Fatal("occupancy wrong after free")
	}
	m.Free(f) // double free is a no-op
	if m.Node(FastNode).Used() != 0 {
		t.Fatal("double free changed occupancy")
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := testMem()
	for i := 0; i < 100; i++ {
		if _, err := m.Alloc(FastNode, ClassApp, 0); err != nil {
			t.Fatalf("alloc %d failed early: %v", i, err)
		}
	}
	if _, err := m.Alloc(FastNode, ClassApp, 0); err != ErrNoMemory {
		t.Fatalf("expected ErrNoMemory, got %v", err)
	}
	// Fallback lands on the slow node.
	f, err := m.AllocFallback([]NodeID{FastNode, SlowNode}, ClassCache, 0)
	if err != nil || f.Node != SlowNode {
		t.Fatalf("fallback: %v %+v", err, f)
	}
}

func TestAccessCostOrdering(t *testing.T) {
	m := testMem()
	ff, _ := m.Alloc(FastNode, ClassApp, 0)
	fs, _ := m.Alloc(SlowNode, ClassApp, 0)
	cf := m.Access(0, ff, PageSize, false, 1)
	cs := m.Access(0, fs, PageSize, false, 1)
	if cf >= cs {
		t.Fatalf("fast access (%v) not cheaper than slow (%v)", cf, cs)
	}
	if ff.LastAccess != 1 || fs.LastAccess != 1 {
		t.Fatal("LastAccess not updated")
	}
	m.SyncStats() // batched mode: direct Stats reads need a flush
	if m.Stats.Refs[ClassApp] != 2 {
		t.Fatalf("refs = %d", m.Stats.Refs[ClassApp])
	}
}

func TestAccessDirtyAndBytes(t *testing.T) {
	m := testMem()
	f, _ := m.Alloc(FastNode, ClassCache, 0)
	m.Access(0, f, 512, true, 5)
	if !f.Dirty {
		t.Fatal("write did not dirty the frame")
	}
	m.SyncStats() // batched mode: direct Stats reads need a flush
	if m.Stats.BytesTouched[ClassCache] != 512 {
		t.Fatalf("bytes touched = %d", m.Stats.BytesTouched[ClassCache])
	}
}

func TestMigration(t *testing.T) {
	m := testMem()
	f, _ := m.Alloc(FastNode, ClassCache, 0)
	if !m.CanMigrate(f, SlowNode) {
		t.Fatal("frame should be movable")
	}
	cost, err := m.MoveFrame(f, SlowNode, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 1000 {
		t.Fatalf("migration cost %v too low", cost)
	}
	if f.Node != SlowNode || f.Migrations != 1 {
		t.Fatalf("frame after move: %+v", f)
	}
	if m.Node(FastNode).Used() != 0 || m.Node(SlowNode).Used() != 1 {
		t.Fatal("occupancy wrong after move")
	}
	if m.Stats.Demotions != 1 || m.Stats.Promotions != 0 {
		t.Fatalf("direction stats: %+v", m.Stats)
	}
	if _, err := m.MoveFrame(f, FastNode, 1000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Promotions != 1 {
		t.Fatal("promotion not counted")
	}
}

func TestPinnedFramesDoNotMigrate(t *testing.T) {
	m := testMem()
	f, _ := m.Alloc(FastNode, ClassSlab, 0)
	f.Pinned = true
	if m.CanMigrate(f, SlowNode) {
		t.Fatal("pinned frame reported movable")
	}
	mg := &Migrator{Mem: m, FixedPerPage: 1000, Parallelism: 4}
	moved, _, _ := mg.Migrate([]*Frame{f}, SlowNode, 0)
	if moved != 0 {
		t.Fatal("migrator moved a pinned frame")
	}
}

func TestMigrateToSameNode(t *testing.T) {
	m := testMem()
	f, _ := m.Alloc(FastNode, ClassApp, 0)
	if m.CanMigrate(f, FastNode) {
		t.Fatal("same-node migration allowed")
	}
}

func TestMigrateToFullNodeRefused(t *testing.T) {
	m := NewTwoTier(TwoTierConfig{FastPages: 1, SlowPages: 1, FastBandwidth: 30, BandwidthRatio: 4, CPUs: 1})
	a, _ := m.Alloc(FastNode, ClassApp, 0)
	if _, err := m.Alloc(SlowNode, ClassApp, 0); err != nil {
		t.Fatal(err)
	}
	if m.CanMigrate(a, SlowNode) {
		t.Fatal("migration into a full node allowed")
	}
}

func TestMigratorParallelism(t *testing.T) {
	mkFrames := func(m *Memory, n int) []*Frame {
		out := make([]*Frame, n)
		for i := range out {
			f, err := m.Alloc(FastNode, ClassCache, 0)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = f
		}
		return out
	}
	m1 := testMem()
	serial := &Migrator{Mem: m1, FixedPerPage: 1000, Parallelism: 1}
	_, _, c1 := serial.Migrate(mkFrames(m1, 50), SlowNode, 0)

	m2 := testMem()
	par := &Migrator{Mem: m2, FixedPerPage: 1000, Parallelism: 4}
	moved, _, c4 := par.Migrate(mkFrames(m2, 50), SlowNode, 0)
	if moved != 50 {
		t.Fatalf("moved %d", moved)
	}
	if c4*3 > c1 {
		t.Fatalf("parallel migration (%v) not ~4x cheaper than serial (%v)", c4, c1)
	}
}

func TestMigrationCounterSaturates(t *testing.T) {
	m := testMem()
	f, _ := m.Alloc(FastNode, ClassApp, 0)
	for i := 0; i < 300; i++ {
		dst := SlowNode
		if f.Node == SlowNode {
			dst = FastNode
		}
		if _, err := m.MoveFrame(f, dst, 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.Migrations != 255 {
		t.Fatalf("8-bit counter = %d, want saturation at 255", f.Migrations)
	}
}

func TestRemoteAccessCostsMore(t *testing.T) {
	m := NewOptane(OptaneConfig{
		PMEMPages: 1000, L4Pages: 0, // no cache: isolate interconnect effect
		PMEMReadLatency: 300, PMEMWriteLatency: 500, PMEMBandwidth: 8,
		DRAMLatency: 90, DRAMBandwidth: 25, Interconnect: 120, CPUsPerSock: 2,
	})
	m.l4[0], m.l4[1] = nil, nil
	f, _ := m.Alloc(Socket0Node, ClassApp, 0)
	local := m.Access(0, f, PageSize, false, 1)  // cpu 0 on socket 0
	remote := m.Access(2, f, PageSize, false, 2) // cpu 2 on socket 1
	if remote <= local {
		t.Fatalf("remote (%v) not more expensive than local (%v)", remote, local)
	}
}

func TestL4Cache(t *testing.T) {
	c := newL4Cache(3, 90, 25)
	ids := []FrameID{1, 2, 3}
	for _, id := range ids {
		if c.access(id) {
			t.Fatalf("cold access to %d hit", id)
		}
	}
	for _, id := range ids {
		if !c.access(id) {
			t.Fatalf("warm access to %d missed", id)
		}
	}
	c.access(4) // evicts LRU = 1
	if c.access(1) {
		t.Fatal("evicted entry still hit")
	}
	if c.len() != 3 {
		t.Fatalf("cache size %d", c.len())
	}
}

func TestL4InterceptsLocalPMEM(t *testing.T) {
	m := NewOptane(DefaultOptane(64))
	f, _ := m.Alloc(Socket0Node, ClassApp, 0)
	cold := m.Access(0, f, 64, false, 1)
	warm := m.Access(0, f, 64, false, 2)
	if warm >= cold {
		t.Fatalf("L4 hit (%v) not cheaper than miss (%v)", warm, cold)
	}
	if m.Stats.L4Hits != 1 || m.Stats.L4Misses != 1 {
		t.Fatalf("L4 stats: %+v", m.Stats)
	}
	// Remote access does not hit the local socket's cache.
	remote := m.Access(8, f, 64, false, 3)
	if remote <= warm {
		t.Fatal("remote access unexpectedly cheap")
	}
}

func TestClassPredicates(t *testing.T) {
	if ClassApp.Kernel() {
		t.Fatal("app class marked kernel")
	}
	for _, c := range []Class{ClassCache, ClassSlab, ClassKloc, ClassMeta} {
		if !c.Kernel() {
			t.Fatalf("%v not marked kernel", c)
		}
	}
	names := map[Class]string{ClassFree: "free", ClassApp: "app", ClassCache: "cache", ClassSlab: "slab", ClassKloc: "kloc", ClassMeta: "meta"}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %q", c, c.String())
		}
	}
}

func TestGBMBHelpers(t *testing.T) {
	if GB(1) != int(1e9)/PageSize {
		t.Fatalf("GB(1) = %d", GB(1))
	}
	if MB(4) != int(4e6)/PageSize {
		t.Fatalf("MB(4) = %d", MB(4))
	}
}

func TestPlatformConstruction(t *testing.T) {
	tt := NewTwoTier(DefaultTwoTier(64))
	if len(tt.Nodes) != 2 || tt.Node(FastNode).Bandwidth <= tt.Node(SlowNode).Bandwidth {
		t.Fatal("two-tier nodes misconfigured")
	}
	if tt.Node(FastNode).Capacity >= tt.Node(SlowNode).Capacity {
		t.Fatal("fast tier should be capacity-limited")
	}
	op := NewOptane(DefaultOptane(64))
	if len(op.Nodes) != 2 || op.Node(Socket1Node).Socket != 1 {
		t.Fatal("optane nodes misconfigured")
	}
	if op.SocketOf(0) != 0 || op.SocketOf(op.NumCPUs()-1) != 1 {
		t.Fatal("cpu-socket map wrong")
	}
	if op.SocketOf(-1) != 0 || op.SocketOf(999) != 0 {
		t.Fatal("out-of-range cpu should default to socket 0")
	}
}

// Property: occupancy accounting stays consistent under random
// alloc/free/migrate sequences.
func TestOccupancyInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		m := testMem()
		var live []*Frame
		for i := 0; i < 2000; i++ {
			switch r.Intn(3) {
			case 0:
				node := NodeID(r.Intn(2))
				if fr, err := m.Alloc(node, Class(r.Intn(4)+1), sim.Time(i)); err == nil {
					live = append(live, fr)
				}
			case 1:
				if len(live) > 0 {
					j := r.Intn(len(live))
					m.Free(live[j])
					live = append(live[:j], live[j+1:]...)
				}
			case 2:
				if len(live) > 0 {
					fr := live[r.Intn(len(live))]
					dst := NodeID(1 - int(fr.Node))
					if m.CanMigrate(fr, dst) {
						m.MoveFrame(fr, dst, 100)
					}
				}
			}
		}
		total := m.Node(FastNode).Used() + m.Node(SlowNode).Used()
		if total != len(live) || m.Frames() != len(live) {
			return false
		}
		perNode := map[NodeID]int{}
		for _, fr := range live {
			perNode[fr.Node]++
		}
		return perNode[FastNode] == m.Node(FastNode).Used() &&
			perNode[SlowNode] == m.Node(SlowNode).Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationInterference(t *testing.T) {
	m := testMem()
	f, _ := m.Alloc(FastNode, ClassApp, 0)
	quiet := m.Access(0, f, PageSize, false, 1)
	m.NoteMigrationLoad(FastNode, 1, sim.Duration(1*sim.Millisecond))
	contended := m.Access(0, f, PageSize, false, 2)
	if contended <= quiet {
		t.Fatalf("access under migration load (%v) not slower than quiet (%v)", contended, quiet)
	}
	// After the horizon passes, cost returns to normal.
	after := m.Access(0, f, PageSize, false, sim.Time(2*sim.Millisecond))
	if after != quiet {
		t.Fatalf("post-migration access %v, want %v", after, quiet)
	}
}

func TestMigratorMarksBothNodesBusy(t *testing.T) {
	m := testMem()
	var frames []*Frame
	for i := 0; i < 20; i++ {
		f, _ := m.Alloc(FastNode, ClassCache, 0)
		frames = append(frames, f)
	}
	mg := &Migrator{Mem: m, FixedPerPage: 1000, Parallelism: 4}
	mg.Migrate(frames, SlowNode, 0)
	if m.Node(FastNode).migBusyUntil == 0 || m.Node(SlowNode).migBusyUntil == 0 {
		t.Fatal("migration did not mark nodes busy")
	}
}
