package memsim

import "testing"

func TestDeriveWatermarks(t *testing.T) {
	w := DeriveWatermarks(6400)
	if w.Min != 100 || w.Low != 125 || w.High != 150 {
		t.Fatalf("watermarks = %+v", w)
	}
	// Tiny nodes clamp Min to 4 so the reserve is never empty.
	w = DeriveWatermarks(10)
	if w.Min != 4 {
		t.Fatalf("tiny-node Min = %d, want 4", w.Min)
	}
	if w.Zero() {
		t.Fatal("derived watermarks reported zero")
	}
	if (Watermarks{}).Zero() != true {
		t.Fatal("zero value not zero")
	}
}

func TestWatermarkGateBlocksBelowMin(t *testing.T) {
	m := testMem()
	m.Node(FastNode).SetWatermarks(Watermarks{Min: 10, Low: 20, High: 30})
	// 90 allocations leave exactly Min free: all must succeed.
	for i := 0; i < 90; i++ {
		if _, err := m.Alloc(FastNode, ClassApp, 0); err != nil {
			t.Fatalf("alloc %d blocked above Min: %v", i, err)
		}
	}
	// The 91st would dip below Min.
	if _, err := m.Alloc(FastNode, ClassApp, 0); err != ErrNoMemory {
		t.Fatalf("expected ErrNoMemory at the Min watermark, got %v", err)
	}
	if m.Stats.WatermarkBlocks != 1 {
		t.Fatalf("WatermarkBlocks = %d", m.Stats.WatermarkBlocks)
	}
	// The slow node has no watermarks: fallback still succeeds.
	f, err := m.AllocFallback([]NodeID{FastNode, SlowNode}, ClassApp, 0)
	if err != nil || f.Node != SlowNode {
		t.Fatalf("fallback under watermark: %v %+v", err, f)
	}
}

func TestAtomicContextDipsIntoReserve(t *testing.T) {
	m := testMem()
	m.Node(FastNode).SetWatermarks(Watermarks{Min: 10, Low: 20, High: 30})
	for i := 0; i < 90; i++ {
		if _, err := m.Alloc(FastNode, ClassApp, 0); err != nil {
			t.Fatal(err)
		}
	}
	exit := m.EnterAtomic()
	if !m.InAtomic() {
		t.Fatal("not in atomic context")
	}
	// GFP_ATOMIC may take the reserve down to zero pages...
	for i := 0; i < 10; i++ {
		if _, err := m.Alloc(FastNode, ClassSlab, 0); err != nil {
			t.Fatalf("atomic alloc %d failed in reserve: %v", i, err)
		}
	}
	if m.Stats.ReserveDips != 10 {
		t.Fatalf("ReserveDips = %d", m.Stats.ReserveDips)
	}
	// ...but not past genuine exhaustion.
	if _, err := m.Alloc(FastNode, ClassSlab, 0); err != ErrNoMemory {
		t.Fatalf("atomic alloc on a full node: %v", err)
	}
	exit()
	if m.InAtomic() {
		t.Fatal("atomic context survived exit")
	}
}

func TestEnterAtomicNests(t *testing.T) {
	m := testMem()
	exit1 := m.EnterAtomic()
	exit2 := m.EnterAtomic()
	exit2()
	if !m.InAtomic() {
		t.Fatal("inner exit closed the outer scope")
	}
	exit1()
	if m.InAtomic() {
		t.Fatal("atomic depth leaked")
	}
}

func TestZeroWatermarksLeaveAllocatorUnchanged(t *testing.T) {
	m := testMem()
	// No watermarks installed: the node empties completely with no
	// blocks and no dips — the legacy behaviour.
	for i := 0; i < 100; i++ {
		if _, err := m.Alloc(FastNode, ClassApp, 0); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if m.Stats.WatermarkBlocks != 0 || m.Stats.ReserveDips != 0 {
		t.Fatalf("gate engaged without watermarks: %+v", m.Stats)
	}
}
