package kloc

import (
	"testing"

	"kloc/internal/kobj"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

func testMem() *memsim.Memory {
	return memsim.NewTwoTier(memsim.TwoTierConfig{
		FastPages: 256, SlowPages: 1024,
		FastBandwidth: 30, BandwidthRatio: 4, CPUs: 4,
	})
}

var order = []memsim.NodeID{memsim.FastNode, memsim.SlowNode}

func obj(m *memsim.Memory, id kobj.ID, t kobj.Type, pinned bool) *kobj.Object {
	class := memsim.ClassCache
	if t.Info().Alloc == kobj.AllocSlab {
		class = memsim.ClassSlab
	}
	f, err := m.Alloc(memsim.FastNode, class, 0)
	if err != nil {
		panic(err)
	}
	f.Pinned = pinned
	return kobj.NewObject(id, t, f, 0, nil)
}

func TestMapKnodeLifecycle(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 4)
	kn, cost, err := r.MapKnode(42, order, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("knode creation was free")
	}
	if !kn.Active || kn.Inode != 42 {
		t.Fatalf("knode state: %+v", kn)
	}
	if r.Len() != 1 || r.Stats.KnodesCreated != 1 {
		t.Fatal("registry accounting wrong")
	}
	// Mapping the same inode returns the existing knode.
	kn2, _, err := r.MapKnode(42, order, 200)
	if err != nil || kn2 != kn {
		t.Fatal("re-map created a duplicate knode")
	}
	if r.Len() != 1 {
		t.Fatal("duplicate in kmap")
	}
	r.Delete(42)
	if r.Len() != 0 || r.Stats.KnodesDeleted != 1 {
		t.Fatal("delete accounting wrong")
	}
	if _, ok := r.Get(42); ok {
		t.Fatal("deleted knode still in kmap")
	}
	if d := r.Delete(42); d != 0 {
		t.Fatal("double delete did work")
	}
}

func TestKnodeSlabStorageIsMetaAndReclaimed(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 2)
	kn, _, _ := r.MapKnode(1, order, 0)
	if kn.slot.Frame.Class != memsim.ClassMeta {
		t.Fatalf("knode frame class = %v", kn.slot.Frame.Class)
	}
	used := m.Node(memsim.FastNode).Used()
	if used == 0 {
		t.Fatal("knode consumed no memory")
	}
	r.Delete(1)
	if m.Node(memsim.FastNode).Used() != 0 {
		t.Fatal("knode storage leaked")
	}
}

func TestObjectIndexingSplitTrees(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 2)
	kn, _, _ := r.MapKnode(7, order, 0)
	dentry := obj(m, 1, kobj.Dentry, true)
	page := obj(m, 2, kobj.PageCache, false)
	r.AddObject(0, 7, dentry, 10)
	r.AddObject(0, 7, page, 10)
	c, s := kn.Objects()
	if c != 1 || s != 1 {
		t.Fatalf("tree split wrong: cache=%d slab=%d", c, s)
	}
	if dentry.Knode != uint64(kn.ID) || page.Knode != uint64(kn.ID) {
		t.Fatal("objects not stamped with knode")
	}
	var slabSeen, cacheSeen int
	kn.IterSlab(func(o *kobj.Object) bool { slabSeen++; return true })
	kn.IterCache(func(o *kobj.Object) bool { cacheSeen++; return true })
	if slabSeen != 1 || cacheSeen != 1 {
		t.Fatalf("iteration: slab=%d cache=%d", slabSeen, cacheSeen)
	}
	r.RemoveObject(dentry)
	if _, s := kn.Objects(); s != 0 {
		t.Fatal("remove failed")
	}
	if dentry.Knode != 0 {
		t.Fatal("knode stamp not cleared")
	}
	// Removing an unassociated object is a no-op.
	if d := r.RemoveObject(dentry); d != 0 {
		t.Fatal("double remove did work")
	}
}

func TestSingleTreeAblation(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 2)
	r.SplitTrees = false
	kn, _, _ := r.MapKnode(7, order, 0)
	r.AddObject(0, 7, obj(m, 1, kobj.Dentry, true), 0)
	r.AddObject(0, 7, obj(m, 2, kobj.PageCache, false), 0)
	c, s := kn.Objects()
	if c != 2 || s != 2 {
		t.Fatalf("single-tree mode should share: cache=%d slab=%d", c, s)
	}
}

func TestAddObjectWithoutKnode(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 2)
	o := obj(m, 1, kobj.Dentry, true)
	r.AddObject(0, 999, o, 0) // no knode mapped: silently skipped
	if o.Knode != 0 {
		t.Fatal("orphan object got a knode")
	}
}

func TestMovableFramesExcludesPinnedAndDedups(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 2)
	kn, _, _ := r.MapKnode(7, order, 0)
	pinned := obj(m, 1, kobj.Dentry, true)
	movable := obj(m, 2, kobj.PageCache, false)
	// Two objects sharing one frame must dedup.
	shared := kobj.NewObject(3, kobj.Extent, movable.Frame, 0, nil)
	r.AddObject(0, 7, pinned, 0)
	r.AddObject(0, 7, movable, 0)
	r.AddObject(0, 7, shared, 0)
	frames := kn.MovableFrames()
	if len(frames) != 1 || frames[0].ID != movable.Frame.ID {
		t.Fatalf("movable frames = %v", frames)
	}
	all := kn.AllFrames()
	if len(all) != 2 {
		t.Fatalf("all frames = %d, want 2", len(all))
	}
}

func TestActivateDeactivateAndCold(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 2)
	r.MapKnode(1, order, 0)
	r.MapKnode(2, order, 0)
	kn, ok := r.Deactivate(1, 50)
	if !ok || kn.Active {
		t.Fatal("deactivate failed")
	}
	cold := r.ColdKnodes(100)
	if len(cold) != 1 || cold[0].Inode != 1 {
		t.Fatalf("cold knodes = %d", len(cold))
	}
	active := r.ActiveKnodes()
	if len(active) != 1 || active[0].Inode != 2 {
		t.Fatalf("active knodes = %d", len(active))
	}
	// Aging makes active knodes cold too.
	for i := 0; i < 3; i++ {
		r.AgeScan()
	}
	cold = r.ColdKnodes(3)
	if len(cold) != 2 {
		t.Fatalf("after aging, cold = %d", len(cold))
	}
	// Reactivation resets age.
	kn2, ok := r.Activate(0, 2, 60)
	if !ok || !kn2.Active || kn2.Age != 0 {
		t.Fatal("activate failed to reset age")
	}
	if _, ok := r.Deactivate(99, 0); ok {
		t.Fatal("deactivate of unknown inode succeeded")
	}
	if _, ok := r.Activate(0, 99, 0); ok {
		t.Fatal("activate of unknown inode succeeded")
	}
}

func TestLookupFastPath(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 2)
	r.MapKnode(5, order, 0)
	_, coldCost, ok := r.Lookup(0, 5, 10)
	if !ok {
		t.Fatal("lookup failed")
	}
	_, warmCost, _ := r.Lookup(0, 5, 20)
	if warmCost >= coldCost && r.kmap.Depth() > 2 {
		t.Fatalf("fast-path hit (%v) not cheaper than miss (%v)", warmCost, coldCost)
	}
	if r.Stats.FastPathHits != 1 {
		t.Fatalf("fast path hits = %d", r.Stats.FastPathHits)
	}
	if rate := r.FastPathHitRate(); rate <= 0 {
		t.Fatalf("hit rate = %v", rate)
	}
	// Unknown inode.
	_, _, ok = r.Lookup(0, 999, 30)
	if ok {
		t.Fatal("lookup of unknown inode succeeded")
	}
	// Disabled fast path still works.
	r.FastPathEnabled = false
	if _, _, ok := r.Lookup(1, 5, 40); !ok {
		t.Fatal("slow-path lookup failed")
	}
}

func TestFindCPU(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 4)
	kn, _, _ := r.MapKnode(5, order, 0)
	if cpu := r.FindCPU(kn); cpu != -1 {
		t.Fatalf("untouched knode has CPU %d", cpu)
	}
	r.Lookup(2, 5, 10)
	if cpu := r.FindCPU(kn); cpu != 2 {
		t.Fatalf("FindCPU = %d, want 2", cpu)
	}
	r.Delete(5)
	if cpu := r.FindCPU(kn); cpu != -1 {
		t.Fatal("deleted knode still on per-CPU lists")
	}
}

func TestMetadataBytesTable6(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 2)
	if r.MetadataBytes() != 0 {
		t.Fatal("empty registry has metadata")
	}
	r.MapKnode(1, order, 0)
	base := r.MetadataBytes()
	if base < knodeStructBytes {
		t.Fatalf("metadata %d below knode size", base)
	}
	for i := 0; i < 10; i++ {
		r.AddObject(0, 1, obj(m, kobj.ID(i+1), kobj.PageCache, false), 0)
	}
	withObjs := r.MetadataBytes()
	// AddObject's lookup put the knode on one per-CPU list.
	want := base + 10*objPointerBytes + percpuEntryBytes
	if withObjs != want {
		t.Fatalf("metadata with 10 objects = %d, want %d", withObjs, want)
	}
	r.SetMigrationListLen(100)
	if r.MetadataBytes() != withObjs+100*objPointerBytes {
		t.Fatal("migration list not accounted")
	}
}

func TestMapKnodeAllocFailure(t *testing.T) {
	m := memsim.NewTwoTier(memsim.TwoTierConfig{FastPages: 0, SlowPages: 0, FastBandwidth: 30, CPUs: 1})
	r := NewRegistry(m, 1)
	if _, _, err := r.MapKnode(1, order, 0); err == nil {
		t.Fatal("knode allocation on full memory succeeded")
	}
}

func TestAgeScanCost(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 2)
	for i := uint64(1); i <= 5; i++ {
		r.MapKnode(i, order, 0)
	}
	if cost := r.AgeScan(); cost <= 0 {
		t.Fatal("age scan was free")
	}
	for _, kn := range r.ColdKnodes(0) {
		_ = kn
	}
	// All 5 knodes aged once.
	aged := 0
	r.kmap.Ascend(func(_ uint64, kn *Knode) bool {
		if kn.Age == 1 {
			aged++
		}
		return true
	})
	if aged != 5 {
		t.Fatalf("aged %d of 5", aged)
	}
}

func TestLookupTimestamp(t *testing.T) {
	m := testMem()
	r := NewRegistry(m, 1)
	kn, _, _ := r.MapKnode(3, order, sim.Time(5))
	r.AgeScan()
	if kn.Age != 1 {
		t.Fatal("age scan missed knode")
	}
	r.Lookup(0, 3, 77)
	if kn.Age != 0 || kn.LastTouch != 77 {
		t.Fatalf("lookup did not refresh: age=%d touch=%v", kn.Age, kn.LastTouch)
	}
}
