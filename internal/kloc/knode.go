// Package kloc implements the paper's contribution: kernel-level
// object contexts. A KLOC is the set of kernel objects associated with
// one file or socket inode; its anchor is a knode (§4.2), a 64-byte
// structure pointed to by the inode that indexes every associated
// kernel object in two red-black trees — rbtree-cache for page-sized
// objects from non-slab allocators and rbtree-slab for small
// slab-class objects (§4.2.3).
//
// All knodes are tracked by a global kmap (a red-black tree keyed by
// inode number), with per-CPU fast-path lists acting as a software
// cache of the kmap (§4.3). The Registry type owns all of this and
// exposes the Table-2 API.
package kloc

import (
	"kloc/internal/alloc"
	"kloc/internal/fault"
	"kloc/internal/kobj"
	"kloc/internal/memsim"
	"kloc/internal/percpu"
	"kloc/internal/rbtree"
	"kloc/internal/sim"
)

// KnodeID identifies a knode.
type KnodeID uint64

// treeRefCost is the virtual cost of one pointer chase during a
// red-black tree traversal (§4.2.3 measures ~10 memory references per
// traversal on a single large tree — the split-tree design exists to
// shrink this).
const treeRefCost sim.Duration = 5

// knodeStructBytes is the size of the knode structure itself (§7.1:
// "64 byte KLOC structure attached to each open inode").
const knodeStructBytes = 64

// objPointerBytes is the red-black tree pointer overhead per tracked
// object (§7.1: "8 byte RB-tree pointer for each cache page and slab
// object").
const objPointerBytes = 8

// Knode is the per-inode table of contents over kernel objects.
type Knode struct {
	ID    KnodeID
	Inode uint64
	// Active (the paper's `inuse`): true while the file/socket is open.
	Active bool
	// Age grows as LRU scans pass without a touch (§4.3).
	Age int
	// LastTouch is the last access time, for tie-breaking.
	LastTouch sim.Time

	rbCache *rbtree.Tree[kobj.ID, *kobj.Object]
	rbSlab  *rbtree.Tree[kobj.ID, *kobj.Object]

	// slot is the knode's own slab storage; knodes are deliberately
	// slab-allocated for speed and are not migratable (§4.2.2).
	slot *alloc.Slot
}

// Objects reports (cache, slab) tree sizes.
func (k *Knode) Objects() (int, int) { return k.rbCache.Len(), k.rbSlab.Len() }

// lookupCost models a traversal of one of the knode's trees.
func lookupCost(depth int) sim.Duration {
	if depth < 1 {
		depth = 1
	}
	return sim.Duration(depth) * treeRefCost
}

// AddObject indexes a kernel object under the knode (knode_add_obj),
// choosing the tree by the object's allocation class, and returns the
// virtual cost. The object's Knode field is stamped.
func (k *Knode) AddObject(o *kobj.Object) sim.Duration {
	o.Knode = uint64(k.ID)
	t := k.treeFor(o)
	t.Set(o.ID, o)
	return lookupCost(t.Depth())
}

// RemoveObject drops an object from the knode's index.
func (k *Knode) RemoveObject(o *kobj.Object) sim.Duration {
	t := k.treeFor(o)
	cost := lookupCost(t.Depth())
	t.Delete(o.ID)
	if o.Knode == uint64(k.ID) {
		o.Knode = 0
	}
	return cost
}

func (k *Knode) treeFor(o *kobj.Object) *rbtree.Tree[kobj.ID, *kobj.Object] {
	if o.Type.Info().Alloc == kobj.AllocSlab {
		return k.rbSlab
	}
	return k.rbCache
}

// IterCache iterates the rbtree-cache objects (itr_knode_cache).
func (k *Knode) IterCache(fn func(*kobj.Object) bool) {
	k.rbCache.Ascend(func(_ kobj.ID, o *kobj.Object) bool { return fn(o) })
}

// IterSlab iterates the rbtree-slab objects (itr_knode_slab).
func (k *Knode) IterSlab(fn func(*kobj.Object) bool) {
	k.rbSlab.Ascend(func(_ kobj.ID, o *kobj.Object) bool { return fn(o) })
}

// MovableFrames collects the distinct, relocatable frames backing the
// knode's objects — the unit the migration engine moves en masse
// (§4.4). Slab-pinned frames are excluded.
func (k *Knode) MovableFrames() []*memsim.Frame {
	seen := make(map[memsim.FrameID]struct{})
	var out []*memsim.Frame
	collect := func(_ kobj.ID, o *kobj.Object) bool {
		f := o.Frame
		if f == nil || f.Pinned {
			return true
		}
		if _, dup := seen[f.ID]; dup {
			return true
		}
		seen[f.ID] = struct{}{}
		out = append(out, f)
		return true
	}
	k.rbCache.Ascend(collect)
	k.rbSlab.Ascend(collect)
	return out
}

// AllFrames collects distinct frames including pinned ones (for
// accounting).
func (k *Knode) AllFrames() []*memsim.Frame {
	seen := make(map[memsim.FrameID]struct{})
	var out []*memsim.Frame
	collect := func(_ kobj.ID, o *kobj.Object) bool {
		f := o.Frame
		if f == nil {
			return true
		}
		if _, dup := seen[f.ID]; dup {
			return true
		}
		seen[f.ID] = struct{}{}
		out = append(out, f)
		return true
	}
	k.rbCache.Ascend(collect)
	k.rbSlab.Ascend(collect)
	return out
}

// metadataBytes is the knode's contribution to Table 6.
func (k *Knode) metadataBytes() int {
	return knodeStructBytes + objPointerBytes*(k.rbCache.Len()+k.rbSlab.Len())
}

// percpuEntryBytes sizes a per-CPU list entry (pointer + age).
const percpuEntryBytes = 16

// registryStats aggregates the registry's own activity.
type registryStats struct {
	KnodesCreated  uint64
	KnodesDeleted  uint64
	ObjectsIndexed uint64
	KmapLookups    uint64
	FastPathHits   uint64
}

// Registry is the global KLOC state: the kmap, the per-CPU fast paths,
// and the knode slab.
type Registry struct {
	kmap *rbtree.Tree[uint64, *Knode]
	// byID is the legacy ID index; under metrics.ModeIndexed the dense
	// byIDDense slice replaces it (knode IDs are monotonic from 1, so
	// the ID is the slot — no per-op map hash on the free/touch path).
	byID      map[KnodeID]*Knode
	byIDDense []*Knode
	fast      *percpu.Lists[*Knode]
	slab      *alloc.SlabCache
	nextID    KnodeID

	// SplitTrees controls the rbtree-cache/rbtree-slab split; disabling
	// it (single tree per knode) is the paper's rejected design, kept
	// for the ablation bench.
	SplitTrees bool
	// FastPathEnabled controls the per-CPU lists (§4.3 ablation).
	FastPathEnabled bool

	// migrationList tracks pages queued for migration (Table 6 counts
	// its memory).
	migrationList int

	Stats registryStats
}

// perCPUListCap bounds each CPU's fast-path list; restricting the size
// keeps traversals fast (§4.3).
const perCPUListCap = 64

// NewRegistry builds the KLOC state over a memory system with the given
// CPU count. Knode storage comes from a dedicated (pinned, ClassMeta)
// slab cache placed on the given fallback order — the paper always
// allocates knodes to fast memory (§4.2.2). The registry inherits the
// memory system's accounting mode: under metrics.ModeIndexed the
// by-ID index is a dense slice instead of a map.
func NewRegistry(mem *memsim.Memory, cpus int) *Registry {
	// knodeStructBytes is a compile-time-known valid size, so the only
	// failure is programmer error; a nil slab makes MapKnode return
	// EINVAL and the policy degrade to untracked inodes.
	slab, err := alloc.NewSlabCache(mem, "knode", knodeStructBytes)
	if err == nil {
		slab.Class = memsim.ClassMeta
	}
	r := &Registry{
		kmap:            rbtree.New[uint64, *Knode](),
		fast:            percpu.New[*Knode](cpus, perCPUListCap),
		slab:            slab,
		nextID:          1,
		SplitTrees:      true,
		FastPathEnabled: true,
	}
	if mem != nil && mem.Mode().Indexed() {
		r.byIDDense = make([]*Knode, 1) // slot 0 unused: IDs start at 1
	} else {
		r.byID = make(map[KnodeID]*Knode)
	}
	return r
}

// knodeByID resolves an ID through whichever index the mode keeps.
func (r *Registry) knodeByID(id KnodeID) (*Knode, bool) {
	if r.byIDDense != nil {
		i := int(id)
		if i <= 0 || i >= len(r.byIDDense) || r.byIDDense[i] == nil {
			return nil, false
		}
		return r.byIDDense[i], true
	}
	kn, ok := r.byID[id]
	return kn, ok
}

// indexByID records a new knode in the active ID index.
func (r *Registry) indexByID(kn *Knode) {
	if r.byIDDense != nil {
		for len(r.byIDDense) <= int(kn.ID) {
			r.byIDDense = append(r.byIDDense, nil)
		}
		r.byIDDense[kn.ID] = kn
		return
	}
	r.byID[kn.ID] = kn
}

// unindexByID drops a knode from the active ID index.
func (r *Registry) unindexByID(kn *Knode) {
	if r.byIDDense != nil {
		if int(kn.ID) < len(r.byIDDense) {
			r.byIDDense[kn.ID] = nil
		}
		return
	}
	delete(r.byID, kn.ID)
}

// Len reports the number of live knodes.
func (r *Registry) Len() int { return r.kmap.Len() }

// MapKnode creates (or returns) the knode for an inode (map_knode +
// add_to_kmap). Knodes are born active. The returned cost covers slab
// allocation and kmap insertion.
func (r *Registry) MapKnode(inode uint64, allocOrder []memsim.NodeID, now sim.Time) (*Knode, sim.Duration, error) {
	if kn, ok := r.kmap.Get(inode); ok {
		kn.Active = true
		kn.Age = 0
		kn.LastTouch = now
		return kn, lookupCost(r.kmap.Depth()), nil
	}
	if r.slab == nil {
		return nil, 0, fault.EINVAL
	}
	slot, cost, err := r.slab.Alloc(allocOrder, now)
	if err != nil {
		return nil, 0, err
	}
	kn := &Knode{
		ID:        r.nextID,
		Inode:     inode,
		Active:    true,
		LastTouch: now,
		rbCache:   rbtree.New[kobj.ID, *kobj.Object](),
		rbSlab:    rbtree.New[kobj.ID, *kobj.Object](),
		slot:      slot,
	}
	if !r.SplitTrees {
		// Ablation: one shared tree.
		kn.rbSlab = kn.rbCache
	}
	r.nextID++
	r.kmap.Set(inode, kn)
	r.indexByID(kn)
	r.Stats.KnodesCreated++
	return kn, cost + lookupCost(r.kmap.Depth()), nil
}

// Lookup finds the knode for an inode, consulting the per-CPU fast path
// first. It returns the knode, the virtual cost, and whether it exists.
func (r *Registry) Lookup(cpu int, inode uint64, now sim.Time) (*Knode, sim.Duration, bool) {
	// Fast path: scan cpu's list (bounded, cheap).
	if r.FastPathEnabled {
		kn, ok := r.kmap.Get(inode) // index lookup to identify the knode
		if !ok {
			return nil, lookupCost(r.kmap.Depth()), false
		}
		if r.fast.Contains(cpu, kn) {
			r.fast.Touch(cpu, kn)
			r.Stats.FastPathHits++
			kn.Age = 0
			kn.LastTouch = now
			// Fast-path hit: a short list walk instead of tree descent.
			return kn, treeRefCost * 2, true
		}
		r.fast.Touch(cpu, kn)
		r.Stats.KmapLookups++
		kn.Age = 0
		kn.LastTouch = now
		return kn, lookupCost(r.kmap.Depth()), true
	}
	r.Stats.KmapLookups++
	kn, ok := r.kmap.Get(inode)
	cost := lookupCost(r.kmap.Depth())
	if ok {
		kn.Age = 0
		kn.LastTouch = now
	}
	return kn, cost, ok
}

// AddObject indexes an object under the inode's knode (knode_add_obj
// from a syscall path). Missing knodes are a no-op (KLOC disabled for
// that file).
func (r *Registry) AddObject(cpu int, inode uint64, o *kobj.Object, now sim.Time) sim.Duration {
	kn, cost, ok := r.Lookup(cpu, inode, now)
	if !ok {
		return cost
	}
	r.Stats.ObjectsIndexed++
	return cost + kn.AddObject(o)
}

// RemoveObject unindexes an object (object freed).
func (r *Registry) RemoveObject(o *kobj.Object) sim.Duration {
	if o.Knode == 0 {
		return 0
	}
	kn, ok := r.knodeByID(KnodeID(o.Knode))
	if !ok {
		return 0
	}
	return kn.RemoveObject(o)
}

// Deactivate marks the inode's knode inactive (file/socket closed,
// §3.2: its objects become migration candidates immediately).
func (r *Registry) Deactivate(inode uint64, now sim.Time) (*Knode, bool) {
	kn, ok := r.kmap.Get(inode)
	if !ok {
		return nil, false
	}
	kn.Active = false
	kn.LastTouch = now
	return kn, true
}

// Activate marks the inode's knode active again (file reopened).
func (r *Registry) Activate(cpu int, inode uint64, now sim.Time) (*Knode, bool) {
	kn, ok := r.kmap.Get(inode)
	if !ok {
		return nil, false
	}
	kn.Active = true
	kn.Age = 0
	kn.LastTouch = now
	if r.FastPathEnabled {
		r.fast.Touch(cpu, kn)
	}
	return kn, true
}

// Delete removes the inode's knode entirely (inode deleted — objects
// are deallocated, not migrated, §3.2). The caller is responsible for
// freeing the member objects; Delete only drops the index.
func (r *Registry) Delete(inode uint64) sim.Duration {
	kn, ok := r.kmap.Get(inode)
	if !ok {
		return 0
	}
	cost := lookupCost(r.kmap.Depth())
	r.kmap.Delete(inode)
	r.unindexByID(kn)
	r.fast.Invalidate(kn)
	r.slab.Free(kn.slot)
	kn.slot = nil
	r.Stats.KnodesDeleted++
	return cost
}

// Get returns the knode for an inode without touching recency state.
func (r *Registry) Get(inode uint64) (*Knode, bool) { return r.kmap.Get(inode) }

// GetByID returns a knode by its ID.
func (r *Registry) GetByID(id KnodeID) (*Knode, bool) {
	return r.knodeByID(id)
}

// TouchID refreshes a knode's recency by ID (used when a page access is
// attributed to its KLOC via the frame's knode stamp).
func (r *Registry) TouchID(id KnodeID, cpu int, now sim.Time) {
	kn, ok := r.knodeByID(id)
	if !ok {
		return
	}
	kn.Age = 0
	kn.LastTouch = now
	if r.FastPathEnabled {
		r.fast.Touch(cpu, kn)
	}
}

// AgeScan ages every knode on every CPU's fast-path list and the global
// kmap (the LRU engine's periodic pass, §4.3). Returns the cost.
func (r *Registry) AgeScan() sim.Duration {
	var cost sim.Duration
	if r.FastPathEnabled {
		for cpu := 0; cpu < r.fast.CPUs(); cpu++ {
			r.fast.AgeScan(cpu, nil)
			cost += treeRefCost
		}
	}
	r.kmap.Ascend(func(_ uint64, kn *Knode) bool {
		kn.Age++
		cost += treeRefCost
		return true
	})
	return cost
}

// ColdKnodes returns knodes that are migration candidates: inactive, or
// active but aged past the threshold (get_LRU_knodes).
func (r *Registry) ColdKnodes(ageThreshold int) []*Knode {
	var out []*Knode
	r.kmap.Ascend(func(_ uint64, kn *Knode) bool {
		if !kn.Active || kn.Age >= ageThreshold {
			out = append(out, kn)
		}
		return true
	})
	return out
}

// ActiveKnodes returns currently active knodes (AutoNUMA+KLOC walks
// these to co-locate kernel objects with the task, §4.5).
func (r *Registry) ActiveKnodes() []*Knode {
	var out []*Knode
	r.kmap.Ascend(func(_ uint64, kn *Knode) bool {
		if kn.Active {
			out = append(out, kn)
		}
		return true
	})
	return out
}

// FindCPU returns a CPU that recently touched the knode (find_cpu), or
// -1.
func (r *Registry) FindCPU(kn *Knode) int { return r.fast.LastCPU(kn) }

// FastPathHitRate exposes the §4.3 ablation metric.
func (r *Registry) FastPathHitRate() float64 { return r.fast.HitRate() }

// SetMigrationListLen records the current migration queue length for
// Table-6 accounting.
func (r *Registry) SetMigrationListLen(n int) { r.migrationList = n }

// MetadataBytes reports the KLOC metadata footprint (Table 6): knode
// structs, 8-byte tree pointers per object, per-CPU list entries, and
// the migration list.
func (r *Registry) MetadataBytes() int {
	total := 0
	r.kmap.Ascend(func(_ uint64, kn *Knode) bool {
		total += kn.metadataBytes()
		return true
	})
	if r.FastPathEnabled {
		for cpu := 0; cpu < r.fast.CPUs(); cpu++ {
			total += r.fast.Len(cpu) * percpuEntryBytes
		}
	}
	total += r.migrationList * objPointerBytes
	return total
}
