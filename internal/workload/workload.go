// Package workload models the I/O-intensive applications of Table 3 at
// operation granularity: every file and socket operation goes through
// the simulated kernel's syscall surface, so the kernel-object traffic
// the paper characterizes (Fig 2) and exploits (Fig 4-6) is generated
// by the same code paths the policies steer.
//
// Footprints are scaled from Table 3 by the platform scale divisor;
// shapes are invariant because every capacity in the system scales
// together (DESIGN.md §3).
package workload

import (
	"fmt"

	"kloc/internal/kernel"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// Workload is one Table-3 application model.
type Workload interface {
	// Name as the paper spells it.
	Name() string
	// Threads the workload drives (Table 3: 16 everywhere).
	Threads() int
	// TotalOps across all threads for one measured run.
	TotalOps() int
	// Setup builds initial state (datasets, sockets, app heap).
	Setup(k *kernel.Kernel, r *sim.RNG) error
	// Step executes one operation on the given thread. The context
	// accumulates the operation's virtual cost.
	Step(k *kernel.Kernel, ctx *kstate.Ctx, thread int, r *sim.RNG) error
}

// Sized is implemented by workloads that can report their scaled
// footprint — app heap plus file dataset — in pages. The pressure
// experiment uses it to size the fast tier as a fraction of the
// dataset.
type Sized interface {
	DatasetPages() int
}

// Config scales a workload.
type Config struct {
	// ScaleDiv divides Table-3 footprints (64 = default laptop scale;
	// must match the platform's scale divisor).
	ScaleDiv int
	// Ops is the total operation count for the measured phase.
	Ops int
	// Small selects the 10 GB input-class configuration of Fig 2b
	// instead of the 40 GB (Large) default.
	Small bool
	// Threads overrides Table 3's 16 threads (0 = default).
	Threads int
	// HugePages backs application heaps with 2 MB transparent huge
	// pages instead of 4 KB pages (§5's multi-page-size support).
	HugePages bool
}

func (c Config) withDefaults() Config {
	if c.ScaleDiv <= 0 {
		c.ScaleDiv = 64
	}
	if c.Ops <= 0 {
		c.Ops = 50_000_000
	}
	if c.Threads <= 0 {
		c.Threads = 16
	}
	return c
}

// pages converts a Table-3 byte figure (in MB at full scale) to scaled
// simulation pages.
func (c Config) pages(mbFullScale float64) int {
	p := int(mbFullScale * 1e6 / 4096 / float64(c.ScaleDiv))
	if c.Small {
		p /= 4 // 10 GB vs 40 GB inputs
	}
	if p < 8 {
		p = 8
	}
	return p
}

// dataScale shrinks op-level constants for Small runs.
func (c Config) dataScale(n int) int {
	if c.Small {
		n /= 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Catalog returns all Table-3 workloads at the given config.
func Catalog(cfg Config) []Workload {
	return []Workload{
		NewRocksDB(cfg),
		NewRedis(cfg),
		NewFilebench(cfg),
		NewCassandra(cfg),
		NewSpark(cfg),
	}
}

// ByName looks a workload up by its Table-3 name.
func ByName(name string, cfg Config) (Workload, error) {
	for _, w := range Catalog(cfg) {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists the catalog.
func Names() []string {
	return []string{"rocksdb", "redis", "filebench", "cassandra", "spark"}
}

// allocHeap allocates an application heap of the given base-page size,
// honoring the THP configuration. The returned slice has one entry per
// frame; THP heaps have ~512x fewer, larger frames.
func (c Config) allocHeap(k *kernel.Kernel, ctx *kstate.Ctx, pages int) ([]*memsim.Frame, error) {
	if !c.HugePages {
		return k.AppAlloc(ctx, pages)
	}
	huge := pages / 512
	if huge < 1 {
		huge = 1
	}
	return k.AppAllocHuge(ctx, huge)
}
