package workload

import (
	"testing"

	"kloc/internal/kernel"
	"kloc/internal/kobj"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/policy"
	"kloc/internal/sim"
)

func testKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	eng := sim.NewEngine()
	// Roomy platform so Setup always fits.
	mem := memsim.NewTwoTier(memsim.DefaultTwoTier(64))
	pol, err := policy.ByName("naive")
	if err != nil {
		t.Fatal(err)
	}
	return kernel.New(eng, mem, pol)
}

// drive runs n steps across the workload's threads.
func drive(t *testing.T, k *kernel.Kernel, w Workload, r *sim.RNG, n int) {
	t.Helper()
	var now sim.Time
	for i := 0; i < n; i++ {
		ctx := &kstate.Ctx{CPU: i % 4, Now: now}
		if err := w.Step(k, ctx, i%w.Threads(), r); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		now = now.Add(ctx.Cost)
	}
}

func TestCatalogNamesMatch(t *testing.T) {
	cfg := Config{ScaleDiv: 64}
	names := Names()
	cat := Catalog(cfg)
	if len(cat) != len(names) {
		t.Fatalf("catalog %d vs names %d", len(cat), len(names))
	}
	for i, w := range cat {
		if w.Name() != names[i] {
			t.Fatalf("catalog[%d] = %s, want %s", i, w.Name(), names[i])
		}
		if w.Threads() != 16 {
			t.Fatalf("%s: Table 3 runs 16 threads, got %d", w.Name(), w.Threads())
		}
	}
	if _, err := ByName("nope", cfg); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestConfigDefaultsAndScaling(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ScaleDiv != 64 || c.Threads != 16 || c.Ops <= 0 {
		t.Fatalf("defaults: %+v", c)
	}
	large := Config{ScaleDiv: 64}
	small := Config{ScaleDiv: 64, Small: true}
	if small.pages(4000) >= large.pages(4000) {
		t.Fatal("small inputs should shrink footprints")
	}
	if large.pages(0.001) < 8 {
		t.Fatal("pages() must clamp to a usable minimum")
	}
	if small.dataScale(2) < 1 {
		t.Fatal("dataScale must clamp to 1")
	}
}

func TestRocksDBEndToEnd(t *testing.T) {
	k := testKernel(t)
	w := NewRocksDB(Config{ScaleDiv: 64})
	r := sim.NewRNG(1)
	if err := w.Setup(k, r); err != nil {
		t.Fatal(err)
	}
	if len(w.sstables) != w.datasetTables {
		t.Fatalf("dataset tables = %d, want %d", len(w.sstables), w.datasetTables)
	}
	if k.FS.Stats.Creates == 0 {
		t.Fatal("setup created no files")
	}
	drive(t, k, w, r, 3000)
	st := k.FS.Stats
	if st.ObjAllocs[kobj.Journal] == 0 || st.ObjAllocs[kobj.PageCache] == 0 {
		t.Fatal("no journal/page-cache traffic")
	}
	if st.Syncs == 0 {
		t.Fatal("WAL group commit never fsynced")
	}
	if len(w.fdCache) == 0 {
		t.Fatal("table-reader cache unused")
	}
	if len(w.fdCache) > w.fdCacheCap {
		t.Fatalf("fd cache overflow: %d", len(w.fdCache))
	}
}

func TestRocksDBCompactionChurns(t *testing.T) {
	k := testKernel(t)
	cfg := Config{ScaleDiv: 64}
	w := NewRocksDB(cfg)
	w.flushEvery = 16 // force frequent flushes
	r := sim.NewRNG(1)
	if err := w.Setup(k, r); err != nil {
		t.Fatal(err)
	}
	before := k.FS.Stats.Unlinks
	drive(t, k, w, r, 2000)
	if k.FS.Stats.Unlinks == before {
		t.Fatal("no compaction/WAL churn (unlinks)")
	}
	if len(w.sstables) > w.compactAt+4 {
		t.Fatalf("compaction not bounding the table count: %d", len(w.sstables))
	}
}

func TestRedisEndToEnd(t *testing.T) {
	k := testKernel(t)
	w := NewRedis(Config{ScaleDiv: 64})
	w.ckptEvery = 30 // force checkpoints in a short run
	r := sim.NewRNG(2)
	if err := w.Setup(k, r); err != nil {
		t.Fatal(err)
	}
	if k.Net.Sockets() != 16 {
		t.Fatalf("sockets = %d", k.Net.Sockets())
	}
	drive(t, k, w, r, 2000)
	if k.Net.Stats.PacketsRx == 0 || k.Net.Stats.PacketsTx == 0 {
		t.Fatal("no network traffic")
	}
	if k.FS.Stats.Creates < 2 {
		t.Fatal("no checkpoint files created")
	}
	if k.FS.Stats.Unlinks == 0 {
		t.Fatal("old checkpoint generations not unlinked")
	}
}

func TestFilebenchEndToEnd(t *testing.T) {
	k := testKernel(t)
	w := NewFilebench(Config{ScaleDiv: 64})
	r := sim.NewRNG(3)
	if err := w.Setup(k, r); err != nil {
		t.Fatal(err)
	}
	if k.FS.Inodes() != 16*filesPerThread {
		t.Fatalf("fileset = %d inodes", k.FS.Inodes())
	}
	drive(t, k, w, r, 3000)
	st := k.FS.Stats
	if st.Reads == 0 || st.Writes == 0 {
		t.Fatal("no read/write mix")
	}
	if st.CacheHits == 0 {
		t.Fatal("prefilled reads should hit the page cache")
	}
}

func TestFilebenchRotation(t *testing.T) {
	k := testKernel(t)
	w := NewFilebench(Config{ScaleDiv: 64})
	r := sim.NewRNG(3)
	if err := w.Setup(k, r); err != nil {
		t.Fatal(err)
	}
	closesBefore := k.FS.Stats.Closes
	// Drive one thread past a rotation boundary.
	var now sim.Time
	for i := 0; i < rotateEvery+10; i++ {
		ctx := &kstate.Ctx{CPU: 0, Now: now}
		if err := w.Step(k, ctx, 0, r); err != nil {
			t.Fatal(err)
		}
		now = now.Add(ctx.Cost)
	}
	if k.FS.Stats.Closes == closesBefore {
		t.Fatal("no file rotation happened")
	}
	if w.active[0] == 0 {
		t.Fatal("active file did not advance")
	}
}

func TestCassandraEndToEnd(t *testing.T) {
	k := testKernel(t)
	w := NewCassandra(Config{ScaleDiv: 64})
	r := sim.NewRNG(4)
	if err := w.Setup(k, r); err != nil {
		t.Fatal(err)
	}
	drive(t, k, w, r, 2000)
	if k.Net.Stats.PacketsRx == 0 {
		t.Fatal("no YCSB network traffic")
	}
	if k.FS.Stats.Writes == 0 {
		t.Fatal("no commitlog writes")
	}
	// The app cache absorbs most reads: app refs should dominate
	// relative to a pure FS workload.
	if k.Stats.AppAccesses == 0 {
		t.Fatal("no app-level work (Java overhead model)")
	}
}

func TestSparkPhases(t *testing.T) {
	k := testKernel(t)
	w := NewSpark(Config{ScaleDiv: 64})
	r := sim.NewRNG(5)
	if err := w.Setup(k, r); err != nil {
		t.Fatal(err)
	}
	// Generate phase: every step writes a whole block file.
	per := w.blocksPerThread()
	var now sim.Time
	for b := 0; b < per; b++ {
		ctx := &kstate.Ctx{CPU: 0, Now: now}
		if err := w.Step(k, ctx, 0, r); err != nil {
			t.Fatal(err)
		}
		now = now.Add(ctx.Cost)
	}
	if w.genBlock[0] != per {
		t.Fatalf("generate phase incomplete: %d/%d", w.genBlock[0], per)
	}
	// Sort phase: reads stream the blocks back.
	readsBefore := k.FS.Stats.Reads
	for i := 0; i < 100; i++ {
		ctx := &kstate.Ctx{CPU: 0, Now: now}
		if err := w.Step(k, ctx, 0, r); err != nil {
			t.Fatal(err)
		}
		now = now.Add(ctx.Cost)
	}
	if k.FS.Stats.Reads == readsBefore {
		t.Fatal("sort phase issued no reads")
	}
	// The generate phase populated the page cache; the sort streams it.
	if k.FS.Stats.CacheHits == 0 {
		t.Fatal("sort reads should hit the warm page cache")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64) {
		k := testKernel(t)
		w := NewRocksDB(Config{ScaleDiv: 64})
		r := sim.NewRNG(7)
		if err := w.Setup(k, r); err != nil {
			t.Fatal(err)
		}
		drive(t, k, w, r, 1000)
		return k.FS.Stats.Writes, k.FS.Stats.ObjAllocs[kobj.Journal]
	}
	w1, j1 := run()
	w2, j2 := run()
	if w1 != w2 || j1 != j2 {
		t.Fatalf("replay diverged: writes %d/%d journal %d/%d", w1, w2, j1, j2)
	}
}
