package workload

import (
	"fmt"

	"kloc/internal/kernel"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/netsim"
	"kloc/internal/sim"
)

// Redis models the in-memory store of Table 3: 16 instances serving 16
// clients (4 M keys, 75% SET / 25% GET, 14 GB footprint) that
// periodically checkpoint to a large file on disk. The kernel traffic
// mixes ingress/egress socket buffers with page-cache churn from
// checkpoints — the combination Fig 2a shows and the reason the Naive
// baseline loses 2.2x (§7.1).
type Redis struct {
	cfg Config

	store   []*memsim.Frame // keyspace heap
	sockets []*netsim.Socket
	zipf    *sim.Zipf

	ops       []int // per-thread op counters for checkpoint cadence
	ckptEvery int
	ckptPages int64
	ckptSeq   []int
}

// NewRedis builds the model.
func NewRedis(cfg Config) *Redis {
	cfg = cfg.withDefaults()
	return &Redis{
		cfg:       cfg,
		ckptEvery: cfg.dataScale(2000),
		ckptPages: int64(cfg.dataScale(256)),
	}
}

// Name implements Workload.
func (w *Redis) Name() string { return "redis" }

// Threads implements Workload.
func (w *Redis) Threads() int { return w.cfg.Threads }

// TotalOps implements Workload.
func (w *Redis) TotalOps() int { return w.cfg.Ops }

// DatasetPages implements Sized: the keyspace store plus one
// checkpoint file per instance.
func (w *Redis) DatasetPages() int {
	return w.cfg.pages(12000) + w.cfg.Threads*int(w.ckptPages)
}

// Setup allocates the keyspace and opens one server socket per
// instance.
func (w *Redis) Setup(k *kernel.Kernel, r *sim.RNG) error {
	ctx := k.NewCtx(0)
	var err error
	// 14 GB footprint, dominated by the in-memory store.
	w.store, err = w.cfg.allocHeap(k, ctx, w.cfg.pages(12000))
	if err != nil {
		return fmt.Errorf("redis: store: %w", err)
	}
	w.zipf = sim.NewZipf(r.Fork(), 1.05, 4_000_000)
	w.sockets = make([]*netsim.Socket, w.cfg.Threads)
	w.ops = make([]int, w.cfg.Threads)
	w.ckptSeq = make([]int, w.cfg.Threads)
	for i := range w.sockets {
		if w.sockets[i], err = k.Net.SocketCreate(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Step serves one client request on the thread's instance.
func (w *Redis) Step(k *kernel.Kernel, ctx *kstate.Ctx, thread int, r *sim.RNG) error {
	s := w.sockets[thread]
	// Client request arrives (ingress), server receives and parses.
	set := r.Bool(0.75)
	reqBytes := 64
	if set {
		reqBytes = 2048 // SET carries the value
	}
	if err := k.Net.Deliver(ctx, s, reqBytes); err != nil {
		return err
	}
	if _, err := k.Net.Recv(ctx, s, 1<<16); err != nil {
		return err
	}
	key := w.zipf.Next()
	frame := w.store[key%len(w.store)]
	// Hash-table walk + value access.
	k.AppAccess(ctx, w.store[(key*31)%len(w.store)], 64, false)
	k.AppAccess(ctx, frame, 2048, set)
	// Reply: GET returns the value.
	replyBytes := 32
	if !set {
		replyBytes = 2048
	}
	if err := k.Net.Send(ctx, s, replyBytes); err != nil {
		return err
	}
	w.ops[thread]++
	if w.ops[thread]%w.ckptEvery == 0 {
		return w.checkpoint(k, ctx, thread)
	}
	return nil
}

// checkpoint models BGSAVE: the instance serializes a slab of the
// keyspace into a fresh dump file, fsyncs, closes, and unlinks the
// previous generation — cold page cache en masse.
func (w *Redis) checkpoint(k *kernel.Kernel, ctx *kstate.Ctx, thread int) error {
	seq := w.ckptSeq[thread]
	w.ckptSeq[thread]++
	path := fmt.Sprintf("/redis/dump-%d-%d.rdb", thread, seq)
	f, err := k.FS.Create(ctx, path)
	if err != nil {
		return err
	}
	for i := int64(0); i < w.ckptPages; i++ {
		// Serialization reads the store, then writes the dump page.
		k.AppAccess(ctx, w.store[(int(i)*7+thread)%len(w.store)], 4096, false)
		if err := k.FS.Write(ctx, f, i); err != nil {
			return err
		}
	}
	if err := k.FS.Fsync(ctx, f); err != nil {
		return err
	}
	k.FS.Close(ctx, f)
	if seq > 0 {
		prev := fmt.Sprintf("/redis/dump-%d-%d.rdb", thread, seq-1)
		if err := k.FS.Unlink(ctx, prev); err != nil {
			return err
		}
	}
	return nil
}
