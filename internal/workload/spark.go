package workload

import (
	"fmt"

	"kloc/internal/fs"
	"kloc/internal/kernel"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// Spark models Table 3's Terasort over an HDFS-like file layout: a
// generate phase that writes the dataset as block files, then an
// analytics phase that streams those files back (triggering readahead),
// shuffles in the application heap, and writes sorted output with
// checkpoints. Table 3: 20 GB data, 16 threads, 32.1 GB footprint.
//
// The paper uses Spark for the Fig 2 characterizations but excludes it
// from the performance plots (firewall issues, §6.1); this model is
// likewise wired into the characterization experiments.
type Spark struct {
	cfg Config

	heap       []*memsim.Frame
	blockPages int64
	nBlocks    int

	// phase progress, per thread: each thread owns nBlocks/threads
	// blocks and walks generate -> sort -> write.
	genBlock  []int
	sortBlock []int
	sortPage  []int64
	outBlock  []int
	outPage   []int64
	outFiles  []*fs.File
}

// NewSpark builds the model.
func NewSpark(cfg Config) *Spark {
	cfg = cfg.withDefaults()
	w := &Spark{cfg: cfg}
	// 20 GB dataset in 128 HDFS-ish blocks at full scale.
	w.nBlocks = 128
	w.blockPages = int64(cfg.pages(20000) / w.nBlocks)
	return w
}

// Name implements Workload.
func (w *Spark) Name() string { return "spark" }

// Threads implements Workload.
func (w *Spark) Threads() int { return w.cfg.Threads }

// TotalOps implements Workload.
func (w *Spark) TotalOps() int { return w.cfg.Ops }

// Setup allocates the executor heaps.
func (w *Spark) Setup(k *kernel.Kernel, r *sim.RNG) error {
	ctx := k.NewCtx(0)
	var err error
	// Executor JVM heaps (32.1 GB total footprint; ~12 GB heap-side).
	w.heap, err = w.cfg.allocHeap(k, ctx, w.cfg.pages(12000))
	if err != nil {
		return fmt.Errorf("spark: heap: %w", err)
	}
	n := w.cfg.Threads
	w.genBlock = make([]int, n)
	w.sortBlock = make([]int, n)
	w.sortPage = make([]int64, n)
	w.outBlock = make([]int, n)
	w.outPage = make([]int64, n)
	w.outFiles = make([]*fs.File, n)
	return nil
}

func (w *Spark) blocksPerThread() int { return w.nBlocks / w.cfg.Threads }

func (w *Spark) blockPath(thread, b int) string {
	return fmt.Sprintf("/hdfs/part-%02d-%04d", thread, b)
}

// Step advances the thread's pipeline: each call performs one
// block-page worth of work in the current phase.
func (w *Spark) Step(k *kernel.Kernel, ctx *kstate.Ctx, thread int, r *sim.RNG) error {
	per := w.blocksPerThread()
	switch {
	case w.genBlock[thread] < per:
		return w.generate(k, ctx, thread, r)
	case w.sortBlock[thread] < per:
		return w.sortRead(k, ctx, thread, r)
	default:
		return w.writeOutput(k, ctx, thread, r)
	}
}

// generate writes one whole block file sequentially and closes it.
func (w *Spark) generate(k *kernel.Kernel, ctx *kstate.Ctx, thread int, r *sim.RNG) error {
	b := w.genBlock[thread]
	f, err := k.FS.Create(ctx, w.blockPath(thread, b))
	if err != nil {
		return err
	}
	for p := int64(0); p < w.blockPages; p++ {
		k.AppAccess(ctx, w.heap[(int(p)+thread*131)%len(w.heap)], 1024, true)
		if err := k.FS.Write(ctx, f, p); err != nil {
			return err
		}
	}
	if err := k.FS.Fsync(ctx, f); err != nil {
		return err
	}
	k.FS.Close(ctx, f)
	w.genBlock[thread]++
	return nil
}

// sortRead streams a generated block back (sequential: readahead
// territory) and shuffles into the heap.
func (w *Spark) sortRead(k *kernel.Kernel, ctx *kstate.Ctx, thread int, r *sim.RNG) error {
	b := w.sortBlock[thread]
	f, err := k.FS.Open(ctx, w.blockPath(thread, b))
	if err != nil {
		w.sortBlock[thread]++
		return nil
	}
	p := w.sortPage[thread]
	if err := k.FS.Read(ctx, f, p); err != nil {
		k.FS.Close(ctx, f)
		return err
	}
	// Shuffle: scatter into the heap.
	for i := 0; i < 4; i++ {
		k.AppAccess(ctx, w.heap[(int(p)*17+i*srcPrime(thread))%len(w.heap)], 512, true)
	}
	k.FS.Close(ctx, f)
	w.sortPage[thread]++
	if w.sortPage[thread] >= w.blockPages {
		w.sortPage[thread] = 0
		w.sortBlock[thread]++
	}
	return nil
}

// writeOutput appends sorted runs to per-thread output files, rotating
// per block.
func (w *Spark) writeOutput(k *kernel.Kernel, ctx *kstate.Ctx, thread int, r *sim.RNG) error {
	if w.outFiles[thread] == nil {
		f, err := k.FS.Create(ctx, fmt.Sprintf("/hdfs/out-%02d-%04d", thread, w.outBlock[thread]))
		if err != nil {
			return err
		}
		w.outFiles[thread] = f
	}
	f := w.outFiles[thread]
	p := w.outPage[thread]
	k.AppAccess(ctx, w.heap[(int(p)*29+thread)%len(w.heap)], 1024, false)
	if err := k.FS.Write(ctx, f, p); err != nil {
		return err
	}
	w.outPage[thread]++
	if w.outPage[thread] >= w.blockPages {
		if err := k.FS.Fsync(ctx, f); err != nil {
			return err
		}
		k.FS.Close(ctx, f)
		w.outFiles[thread] = nil
		w.outPage[thread] = 0
		w.outBlock[thread]++
		if w.outBlock[thread] >= w.blocksPerThread() {
			// Wrap around: keep regenerating output (steady state).
			w.outBlock[thread] = 0
		}
	}
	return nil
}

func srcPrime(t int) int { return 31 + t*2 }
