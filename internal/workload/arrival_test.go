package workload

import (
	"testing"

	"kloc/internal/sim"
)

// meanRate drives an arrival process for the given span and returns
// the realized arrivals per second.
func meanRate(t *testing.T, a Arrival, span sim.Duration, seed uint64) float64 {
	t.Helper()
	r := sim.NewRNG(seed)
	now := sim.Time(0)
	n := 0
	for now < sim.Time(span) {
		now = now.Add(a.Next(now, r))
		n++
	}
	return float64(n) / span.Seconds()
}

func TestArrivalMeanRates(t *testing.T) {
	const rate = 200_000 // 200k req/s over 200 ms ⇒ ~40k samples
	for _, name := range ArrivalNames() {
		a, err := ArrivalByName(name, rate)
		if err != nil {
			t.Fatal(err)
		}
		got := meanRate(t, a, 200*sim.Millisecond, 7)
		if got < 0.85*rate || got > 1.15*rate {
			t.Errorf("%s: realized rate %.0f/s, want within 15%% of %d/s", name, got, rate)
		}
	}
}

func TestArrivalDeterminism(t *testing.T) {
	for _, name := range ArrivalNames() {
		a, err := ArrivalByName(name, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		draw := func(seed uint64) []sim.Duration {
			r := sim.NewRNG(seed)
			now := sim.Time(0)
			out := make([]sim.Duration, 0, 1000)
			for i := 0; i < 1000; i++ {
				d := a.Next(now, r)
				now = now.Add(d)
				out = append(out, d)
			}
			return out
		}
		x, y := draw(42), draw(42)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s: draw %d diverged at same seed (%v vs %v)", name, i, x[i], y[i])
			}
		}
		z := draw(43)
		same := true
		for i := range x {
			if x[i] != z[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical schedules", name)
		}
	}
}

// TestBurstyModulates: the burst phase of each period must arrive
// denser than the off phase.
func TestBurstyModulates(t *testing.T) {
	b := Bursty{Rate: 500_000, Period: 10 * sim.Millisecond, BurstFrac: 0.2, BurstMult: 3}
	r := sim.NewRNG(11)
	now := sim.Time(0)
	var on, off int
	for now < sim.Time(100*sim.Millisecond) {
		now = now.Add(b.Next(now, r))
		if float64(now%sim.Time(b.Period))/float64(b.Period) < b.BurstFrac {
			on++
		} else {
			off++
		}
	}
	// 20% of the time at 3x rate vs 80% at 0.5x: per-unit-time density
	// in the burst must clearly exceed the off phase.
	onDensity := float64(on) / 0.2
	offDensity := float64(off) / 0.8
	if onDensity < 2*offDensity {
		t.Fatalf("burst density %.0f not clearly above off density %.0f", onDensity, offDensity)
	}
}

// TestBurstyClampPreservesMean: an infeasible burst multiplier
// (BurstFrac·BurstMult >= 1 would need a negative off-phase rate) is
// clamped so the long-run mean still tracks Rate instead of silently
// drifting above it.
func TestBurstyClampPreservesMean(t *testing.T) {
	const rate = 200_000
	b := Bursty{Rate: rate, BurstFrac: 0.2, BurstMult: 6}
	got := meanRate(t, b, 200*sim.Millisecond, 7)
	if got < 0.85*rate || got > 1.15*rate {
		t.Errorf("clamped bursty realized %.0f/s, want within 15%% of %d/s", got, rate)
	}
	if c := b.withDefaults(); c.BurstFrac*c.BurstMult >= 1 {
		t.Errorf("withDefaults kept infeasible BurstFrac·BurstMult = %.2f", c.BurstFrac*c.BurstMult)
	}
}

func TestArrivalByNameUnknown(t *testing.T) {
	if _, err := ArrivalByName("bogus", 1); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}
