package workload

import (
	"fmt"

	"kloc/internal/fs"
	"kloc/internal/kernel"
	"kloc/internal/kstate"
	"kloc/internal/sim"
)

// Filebench models Table 3's file-server profile: 16 threads issuing
// 50% sequential / 50% random 4 KB reads and writes against a shared
// 32 GB file set, fsyncing periodically. The paper measures Filebench
// spending 86% of its execution inside the OS — it is the purest
// kernel-object stressor in the suite.
type Filebench struct {
	cfg Config

	// Each thread owns filesPerThread files and actively works on one,
	// rotating periodically: open files are hot, closed ones cold.
	files     [][]*fs.File // [thread][slot]; nil when closed
	paths     [][]string
	active    []int
	opCount   []int
	filePages int64
	cursor    []int64 // per-thread sequential positions
	writes    []int
}

// filesPerThread in the fileset and rotateEvery ops per rotation.
const (
	filesPerThread = 4
	rotateEvery    = 20000
)

// NewFilebench builds the model.
func NewFilebench(cfg Config) *Filebench {
	cfg = cfg.withDefaults()
	w := &Filebench{cfg: cfg}
	// 16.3 GB footprint across the fileset.
	w.filePages = int64(cfg.pages(16300) / cfg.Threads / filesPerThread)
	return w
}

// Name implements Workload.
func (w *Filebench) Name() string { return "filebench" }

// Threads implements Workload.
func (w *Filebench) Threads() int { return w.cfg.Threads }

// TotalOps implements Workload.
func (w *Filebench) TotalOps() int { return w.cfg.Ops }

// Setup builds the fileset and pre-writes each file so reads have data
// to find. Each thread starts with its first file open.
func (w *Filebench) Setup(k *kernel.Kernel, r *sim.RNG) error {
	ctx := k.NewCtx(0)
	w.files = make([][]*fs.File, w.cfg.Threads)
	w.paths = make([][]string, w.cfg.Threads)
	w.active = make([]int, w.cfg.Threads)
	w.opCount = make([]int, w.cfg.Threads)
	w.cursor = make([]int64, w.cfg.Threads)
	w.writes = make([]int, w.cfg.Threads)
	prefill := w.filePages / 2
	for i := range w.files {
		w.files[i] = make([]*fs.File, filesPerThread)
		w.paths[i] = make([]string, filesPerThread)
		for j := 0; j < filesPerThread; j++ {
			path := fmt.Sprintf("/filebench/f%02d-%d", i, j)
			f, err := k.FS.Create(ctx, path)
			if err != nil {
				return err
			}
			w.paths[i][j] = path
			for p := int64(0); p < prefill; p++ {
				if err := k.FS.Write(ctx, f, p); err != nil {
					return err
				}
			}
			if err := k.FS.Fsync(ctx, f); err != nil {
				return err
			}
			if j == 0 {
				w.files[i][j] = f // stays open: the thread's hot file
			} else {
				k.FS.Close(ctx, f)
			}
		}
	}
	return nil
}

// Step runs one 4 KB operation on the thread's hot file, rotating to
// the next file in its set every rotateEvery ops (close + open: the
// lifecycle signal the KLOC abstraction keys on).
func (w *Filebench) Step(k *kernel.Kernel, ctx *kstate.Ctx, thread int, r *sim.RNG) error {
	w.opCount[thread]++
	if w.opCount[thread]%rotateEvery == 0 {
		cur := w.active[thread]
		next := (cur + 1) % filesPerThread
		if w.files[thread][cur] != nil {
			if err := k.FS.Fsync(ctx, w.files[thread][cur]); err != nil {
				return err
			}
			k.FS.Close(ctx, w.files[thread][cur])
			w.files[thread][cur] = nil
		}
		nf, err := k.FS.Open(ctx, w.paths[thread][next])
		if err != nil {
			return err
		}
		w.files[thread][next] = nf
		w.active[thread] = next
		w.cursor[thread] = 0
	}
	f := w.files[thread][w.active[thread]]
	size := f.Inode.SizePages
	if size < 1 {
		size = 1
	}
	if r.Bool(0.67) { // read-heavy profile (Table 3)
		var idx int64
		if r.Bool(0.5) { // sequential
			w.cursor[thread] = (w.cursor[thread] + 1) % size
			idx = w.cursor[thread]
		} else { // random
			idx = r.Int63n(size)
		}
		return k.FS.Read(ctx, f, idx)
	}
	// write: half append, half overwrite
	var idx int64
	if r.Bool(0.5) && size < w.filePages {
		idx = size
	} else {
		idx = r.Int63n(size)
	}
	if err := k.FS.Write(ctx, f, idx); err != nil {
		return err
	}
	w.writes[thread]++
	if w.writes[thread]%1024 == 0 {
		return k.FS.Fsync(ctx, f)
	}
	return nil
}
