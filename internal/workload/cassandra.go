package workload

import (
	"fmt"

	"kloc/internal/fs"
	"kloc/internal/kernel"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/netsim"
	"kloc/internal/sim"
)

// Cassandra models the NoSQL store under YCSB (Table 3: 16 threads,
// 50/50 read-write, 11 GB footprint). Two traits the paper calls out in
// §7.1 make it the least kernel-placement-sensitive workload:
//
//   - a 512 MB application-level cache absorbs most reads before any
//     kernel I/O happens;
//   - Java/runtime overheads add application-side work to every
//     operation, diluting the kernel share of execution.
//
// Its writes still append to a commitlog and flush memtables to
// SSTables, so kernel objects exist — they just matter less.
type Cassandra struct {
	cfg Config

	heap     []*memsim.Frame // JVM heap: row cache + memtables
	sockets  []*netsim.Socket
	zipf     *sim.Zipf
	appCache float64

	logs       []*fs.File // per-thread commitlogs
	logIdx     []int64
	sstables   []string
	nextSST    int
	flushEvery int
	writes     []int
	sstPages   int64
}

// NewCassandra builds the model.
func NewCassandra(cfg Config) *Cassandra {
	cfg = cfg.withDefaults()
	return &Cassandra{
		cfg:        cfg,
		appCache:   0.80, // 512 MB row cache over 200 K keys
		flushEvery: cfg.dataScale(1024),
		sstPages:   int64(cfg.dataScale(64)),
	}
}

// Name implements Workload.
func (w *Cassandra) Name() string { return "cassandra" }

// Threads implements Workload.
func (w *Cassandra) Threads() int { return w.cfg.Threads }

// TotalOps implements Workload.
func (w *Cassandra) TotalOps() int { return w.cfg.Ops }

// Setup allocates the JVM heap, opens sockets, and seeds SSTables.
func (w *Cassandra) Setup(k *kernel.Kernel, r *sim.RNG) error {
	ctx := k.NewCtx(0)
	var err error
	// 11 GB footprint, heavily application-resident.
	w.heap, err = w.cfg.allocHeap(k, ctx, w.cfg.pages(8000))
	if err != nil {
		return fmt.Errorf("cassandra: heap: %w", err)
	}
	w.zipf = sim.NewZipf(r.Fork(), 1.1, 200_000)
	w.sockets = make([]*netsim.Socket, w.cfg.Threads)
	w.writes = make([]int, w.cfg.Threads)
	w.logs = make([]*fs.File, w.cfg.Threads)
	w.logIdx = make([]int64, w.cfg.Threads)
	for i := range w.sockets {
		if w.sockets[i], err = k.Net.SocketCreate(ctx); err != nil {
			return err
		}
		if w.logs[i], err = k.FS.Create(ctx, fmt.Sprintf("/cassandra/commitlog-%02d", i)); err != nil {
			return err
		}
	}
	for i := 0; i < 4; i++ {
		if err := w.flushSST(k, ctx); err != nil {
			return err
		}
	}
	return nil
}

// Step serves one YCSB operation.
func (w *Cassandra) Step(k *kernel.Kernel, ctx *kstate.Ctx, thread int, r *sim.RNG) error {
	s := w.sockets[thread]
	if err := k.Net.Deliver(ctx, s, 128); err != nil {
		return err
	}
	if _, err := k.Net.Recv(ctx, s, 1<<16); err != nil {
		return err
	}
	key := w.zipf.Next()
	// Java/runtime overhead: extra heap traffic on every op (§7.1).
	for i := 0; i < 14; i++ {
		k.AppAccess(ctx, w.heap[(key+i*97)%len(w.heap)], 256, i%3 == 0)
	}
	if r.Bool(0.5) { // read
		if !r.Bool(w.appCache) && len(w.sstables) > 0 {
			// Row-cache miss: SSTable lookup.
			path := w.sstables[key%len(w.sstables)]
			f, err := k.FS.Open(ctx, path)
			if err == nil {
				rerr := k.FS.Read(ctx, f, int64(key)%w.sstPages)
				k.FS.Close(ctx, f)
				if rerr != nil {
					return rerr
				}
			}
		}
	} else { // write
		w.writes[thread]++
		// Commitlog append (per-thread log, fsync batched).
		if err := k.FS.Write(ctx, w.logs[thread], w.logIdx[thread]); err != nil {
			return err
		}
		w.logIdx[thread]++
		if w.writes[thread]%64 == 0 {
			if err := k.FS.Fsync(ctx, w.logs[thread]); err != nil {
				return err
			}
		}
		if w.writes[thread]%w.flushEvery == 0 {
			if err := w.flushSST(k, ctx); err != nil {
				return err
			}
		}
	}
	// Reply (reads return data, writes ack).
	return k.Net.Send(ctx, s, 256)
}

func (w *Cassandra) flushSST(k *kernel.Kernel, ctx *kstate.Ctx) error {
	path := fmt.Sprintf("/cassandra/sst-%05d", w.nextSST)
	w.nextSST++
	f, err := k.FS.Create(ctx, path)
	if err != nil {
		return err
	}
	for i := int64(0); i < w.sstPages; i++ {
		if err := k.FS.Write(ctx, f, i); err != nil {
			return err
		}
	}
	if err := k.FS.Fsync(ctx, f); err != nil {
		return err
	}
	k.FS.Close(ctx, f)
	w.sstables = append(w.sstables, path)
	// Bound the store: expire the oldest table.
	if len(w.sstables) > 16 {
		old := w.sstables[0]
		w.sstables = w.sstables[1:]
		if err := k.FS.Unlink(ctx, old); err != nil {
			return err
		}
	}
	return nil
}
