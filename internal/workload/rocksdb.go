package workload

import (
	"fmt"

	"kloc/internal/fs"
	"kloc/internal/kernel"
	"kloc/internal/kstate"
	"kloc/internal/memsim"
	"kloc/internal/sim"
)

// RocksDB models Facebook's LSM key-value store under DBbench (Table 3:
// 1 M keys, 16 client threads, 50% reads / 50% writes, 12.4 GB
// footprint). The kernel-relevant behaviour the paper leans on:
//
//   - writes append to a WAL that is fsynced and periodically rotated;
//   - memtable flushes create new SSTable files that are written
//     sequentially, fsynced, and closed — their KLOCs turn cold
//     immediately (§3.2's canonical example);
//   - compaction reopens cold SSTables, reads them fully, writes merged
//     replacements, and unlinks the inputs — hundreds of thousands of
//     file creations/deletions over a run (§4.2.2);
//   - reads hit the app-level block cache or reopen a cold SSTable.
type RocksDB struct {
	cfg Config

	// app heap: memtable + block cache.
	heap []*memsim.Frame
	zipf *sim.Zipf

	wal          *fs.File
	walIdx       int64
	walWrites    int
	memtableFill int

	sstables []string // live SSTable paths, oldest first
	nextSST  int

	// fdCache models RocksDB's table-reader cache: hot SSTables stay
	// open (their KLOCs active); cold ones are evicted and closed. LRU
	// by most-recent position at the tail.
	fdCache    []*fs.File
	fdCacheCap int

	// derived sizes
	sstPages      int64
	flushEvery    int
	compactAt     int
	datasetTables int
	appCacheProb  float64
}

// NewRocksDB builds the model.
func NewRocksDB(cfg Config) *RocksDB {
	cfg = cfg.withDefaults()
	w := &RocksDB{
		cfg: cfg,
		// 4 MB SSTables at full scale (paper: "hundreds of 4MB files").
		sstPages:     int64(cfg.dataScale(128)),
		flushEvery:   cfg.dataScale(512),
		appCacheProb: 0.70,
		fdCacheCap:   32,
	}
	// The on-disk dataset: enough SSTables to dwarf the fast tier, as
	// the paper's 40 GB inputs dwarf 8 GB of fast memory.
	w.datasetTables = cfg.pages(20000) / int(w.sstPages)
	w.compactAt = w.datasetTables + 4
	return w
}

// Name implements Workload.
func (w *RocksDB) Name() string { return "rocksdb" }

// Threads implements Workload.
func (w *RocksDB) Threads() int { return w.cfg.Threads }

// TotalOps implements Workload.
func (w *RocksDB) TotalOps() int { return w.cfg.Ops }

// DatasetPages implements Sized: the app heap (memtable + block cache)
// plus the on-disk SSTable dataset at the configured scale.
func (w *RocksDB) DatasetPages() int {
	return w.cfg.pages(6200) + w.datasetTables*int(w.sstPages)
}

// Setup allocates the app heap (memtable + block cache) and seeds the
// store with a handful of SSTables.
func (w *RocksDB) Setup(k *kernel.Kernel, r *sim.RNG) error {
	ctx := k.NewCtx(0)
	// 12.4 GB total footprint, roughly half app-side at steady state.
	heapPages := w.cfg.pages(6200)
	var err error
	w.heap, err = w.cfg.allocHeap(k, ctx, heapPages)
	if err != nil {
		return fmt.Errorf("rocksdb: heap: %w", err)
	}
	w.zipf = sim.NewZipf(r.Fork(), 1.25, 1_000_000)
	if w.wal, err = k.FS.Create(ctx, "/rocksdb/WAL"); err != nil {
		return err
	}
	// Load phase: build the on-disk dataset (DBbench fills the store
	// before the measured mix).
	for i := 0; i < w.datasetTables; i++ {
		if err := w.flushSST(k, ctx); err != nil {
			return err
		}
	}
	return nil
}

// Step runs one DBbench operation.
func (w *RocksDB) Step(k *kernel.Kernel, ctx *kstate.Ctx, thread int, r *sim.RNG) error {
	if r.Bool(0.5) {
		return w.write(k, ctx, r)
	}
	return w.read(k, ctx, r)
}

// memtablePages is the active skiplist region at the head of the heap;
// the rest of the heap is the block cache, whose hotness follows key
// popularity.
const memtablePages = 2048

func (w *RocksDB) write(k *kernel.Kernel, ctx *kstate.Ctx, r *sim.RNG) error {
	// Memtable insert: skiplist walk over the (small, hot) memtable.
	for i := 0; i < 3; i++ {
		k.AppAccess(ctx, w.heap[r.Intn(memtablePages)], 256, i == 2)
	}
	// WAL append (several records share a page) + group-commit fsync.
	if err := k.FS.Write(ctx, w.wal, w.walIdx); err != nil {
		return err
	}
	w.walWrites++
	if w.walWrites%8 == 0 {
		w.walIdx++
	}
	if w.walWrites%64 == 0 {
		if err := k.FS.Fsync(ctx, w.wal); err != nil {
			return err
		}
	}
	w.memtableFill++
	if w.memtableFill >= w.flushEvery {
		w.memtableFill = 0
		if err := w.flushSST(k, ctx); err != nil {
			return err
		}
		if err := w.rotateWAL(k, ctx); err != nil {
			return err
		}
		if len(w.sstables) >= w.compactAt {
			if err := w.compact(k, ctx, r); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *RocksDB) read(k *kernel.Kernel, ctx *kstate.Ctx, r *sim.RNG) error {
	key := w.zipf.Next()
	// Memtable, then the block cache: hotness follows key popularity,
	// so most of the cache is cold at any instant.
	k.AppAccess(ctx, w.heap[memtablePages+(key*31)%(len(w.heap)-memtablePages)], 256, false)
	if r.Bool(w.appCacheProb) || len(w.sstables) == 0 {
		return nil
	}
	// Block-cache miss: find the SSTable via the table-reader cache.
	path := w.sstables[(key*2654435761)%len(w.sstables)]
	f, err := w.openCached(k, ctx, path)
	if err != nil || f == nil {
		return err
	}
	// Index block + data block.
	if err := k.FS.Read(ctx, f, 0); err != nil {
		return err
	}
	return k.FS.Read(ctx, f, int64(1+r.Intn(int(w.sstPages-1))))
}

// openCached returns an open handle for path, keeping up to fdCacheCap
// files open LRU-style. A nil file (with nil error) means the table
// vanished under compaction.
func (w *RocksDB) openCached(k *kernel.Kernel, ctx *kstate.Ctx, path string) (*fs.File, error) {
	for i, f := range w.fdCache {
		if f.Inode.Path == path {
			// Move to MRU tail.
			w.fdCache = append(append(w.fdCache[:i], w.fdCache[i+1:]...), f)
			return f, nil
		}
	}
	f, err := k.FS.Open(ctx, path)
	if err != nil {
		return nil, nil // compacted away under us
	}
	w.fdCache = append(w.fdCache, f)
	if len(w.fdCache) > w.fdCacheCap {
		victim := w.fdCache[0]
		w.fdCache = w.fdCache[1:]
		k.FS.Close(ctx, victim)
	}
	return f, nil
}

// dropFromFDCache closes a handle about to be unlinked.
func (w *RocksDB) dropFromFDCache(k *kernel.Kernel, ctx *kstate.Ctx, path string) {
	for i, f := range w.fdCache {
		if f.Inode.Path == path {
			w.fdCache = append(w.fdCache[:i], w.fdCache[i+1:]...)
			k.FS.Close(ctx, f)
			return
		}
	}
}

// flushSST writes a fresh SSTable sequentially, fsyncs, and closes it.
func (w *RocksDB) flushSST(k *kernel.Kernel, ctx *kstate.Ctx) error {
	path := fmt.Sprintf("/rocksdb/sst-%06d", w.nextSST)
	w.nextSST++
	f, err := k.FS.Create(ctx, path)
	if err != nil {
		return err
	}
	for i := int64(0); i < w.sstPages; i++ {
		if err := k.FS.Write(ctx, f, i); err != nil {
			return err
		}
	}
	if err := k.FS.Fsync(ctx, f); err != nil {
		return err
	}
	k.FS.Close(ctx, f)
	w.sstables = append(w.sstables, path)
	return nil
}

// rotateWAL unlinks the old log and starts a new one.
func (w *RocksDB) rotateWAL(k *kernel.Kernel, ctx *kstate.Ctx) error {
	k.FS.Close(ctx, w.wal)
	if err := k.FS.Unlink(ctx, "/rocksdb/WAL"); err != nil {
		return err
	}
	var err error
	w.wal, err = k.FS.Create(ctx, "/rocksdb/WAL")
	w.walIdx = 0
	return err
}

// compact merges the four oldest SSTables into two and unlinks the
// inputs — the read-modify-delete churn that makes RocksDB
// kernel-object heavy.
func (w *RocksDB) compact(k *kernel.Kernel, ctx *kstate.Ctx, r *sim.RNG) error {
	nIn := 4
	if len(w.sstables) < nIn {
		return nil
	}
	inputs := w.sstables[:nIn]
	w.sstables = w.sstables[nIn:]
	for _, path := range inputs {
		f, err := k.FS.Open(ctx, path)
		if err != nil {
			continue
		}
		for i := int64(0); i < w.sstPages; i++ {
			if err := k.FS.Read(ctx, f, i); err != nil {
				break
			}
		}
		k.FS.Close(ctx, f)
	}
	for i := 0; i < 2; i++ {
		if err := w.flushSST(k, ctx); err != nil {
			return err
		}
	}
	for _, path := range inputs {
		w.dropFromFDCache(k, ctx, path)
		if err := k.FS.Unlink(ctx, path); err != nil {
			return err
		}
	}
	return nil
}
