package workload

import (
	"fmt"
	"math"

	"kloc/internal/sim"
)

// Arrival is an open-loop arrival process: the request generator of a
// cluster serving scenario. Next returns the gap to the following
// arrival, given the current virtual time (time-varying processes
// modulate their rate by it) and a seeded RNG. Open-loop means the
// process never waits for the system: arrivals keep coming at the
// offered rate whether or not the cluster keeps up, which is what
// exposes a capacity knee.
type Arrival interface {
	// Name identifies the process shape ("poisson", "bursty",
	// "diurnal").
	Name() string
	// Next draws the interarrival gap to the next request.
	Next(now sim.Time, r *sim.RNG) sim.Duration
}

// expGap draws an exponential interarrival gap for a Poisson process
// of the given rate (arrivals per virtual second).
func expGap(rate float64, r *sim.RNG) sim.Duration {
	if rate <= 0 {
		return sim.Second
	}
	// Inverse-CDF sampling; 1-U avoids log(0).
	gap := -math.Log(1-r.Float64()) / rate
	d := sim.Duration(gap * float64(sim.Second))
	if d < 1 {
		d = 1
	}
	return d
}

// Poisson is a stationary Poisson process: independent exponential
// interarrival gaps at a fixed mean rate.
type Poisson struct {
	// Rate is the mean arrival rate in requests per virtual second.
	Rate float64
}

// Name implements Arrival.
func (p Poisson) Name() string { return "poisson" }

// Next implements Arrival.
func (p Poisson) Next(_ sim.Time, r *sim.RNG) sim.Duration { return expGap(p.Rate, r) }

// Bursty is a Markov-modulated Poisson process with a deterministic
// ON/OFF phase: during the burst fraction of every period the rate
// multiplies, and outside it the rate drops so the long-run mean stays
// Rate. It models flash-crowd traffic whose time-average equals a
// Poisson process of the same rate — the bursts are what stress the
// cluster's shedding and queueing.
type Bursty struct {
	// Rate is the long-run mean arrival rate (requests per second).
	Rate float64
	// Period is one ON/OFF cycle (default 10 ms).
	Period sim.Duration
	// BurstFrac is the fraction of each period spent bursting
	// (default 0.2).
	BurstFrac float64
	// BurstMult multiplies the rate during the burst (default 3). The
	// long-run mean can only stay Rate while BurstFrac·BurstMult < 1
	// (the off phase must absorb the burst); values at or past that
	// bound are clamped just below it.
	BurstMult float64
}

func (b Bursty) withDefaults() Bursty {
	if b.Period <= 0 {
		b.Period = 10 * sim.Millisecond
	}
	if b.BurstFrac <= 0 || b.BurstFrac >= 1 {
		b.BurstFrac = 0.2
	}
	if b.BurstMult <= 1 {
		b.BurstMult = 3
	}
	// The off-phase rate (1-BurstFrac·BurstMult)/(1-BurstFrac)·Rate must
	// stay positive or the long-run mean would silently drift above
	// Rate; clamp the multiplier inside the feasible region rather than
	// flooring the off-phase rate.
	if limit := 1 / b.BurstFrac; b.BurstMult >= limit {
		b.BurstMult = 0.99 * limit
	}
	return b
}

// Name implements Arrival.
func (b Bursty) Name() string { return "bursty" }

// Next implements Arrival.
func (b Bursty) Next(now sim.Time, r *sim.RNG) sim.Duration {
	b = b.withDefaults()
	phase := float64(now%sim.Time(b.Period)) / float64(b.Period)
	rate := b.Rate
	if phase < b.BurstFrac {
		rate *= b.BurstMult
	} else {
		// Off-phase rate chosen so the period's mean equals Rate;
		// withDefaults keeps BurstFrac·BurstMult < 1, so it is positive.
		rate *= (1 - b.BurstFrac*b.BurstMult) / (1 - b.BurstFrac)
	}
	return expGap(rate, r)
}

// Diurnal modulates a Poisson process sinusoidally between a trough
// and a peak over one period — the compressed day/night cycle of a
// user-facing service. The mean over a whole period is Rate.
type Diurnal struct {
	// Rate is the mean arrival rate (requests per second).
	Rate float64
	// Period is one full day-night cycle (default 40 ms: a compressed
	// day that fits several cycles in a measured run).
	Period sim.Duration
	// Swing in [0,1) is the peak-to-mean amplitude: rate(t) ranges over
	// Rate·(1±Swing) (default 0.6).
	Swing float64
}

func (d Diurnal) withDefaults() Diurnal {
	if d.Period <= 0 {
		d.Period = 40 * sim.Millisecond
	}
	if d.Swing <= 0 || d.Swing >= 1 {
		d.Swing = 0.6
	}
	return d
}

// Name implements Arrival.
func (d Diurnal) Name() string { return "diurnal" }

// Next implements Arrival.
func (d Diurnal) Next(now sim.Time, r *sim.RNG) sim.Duration {
	d = d.withDefaults()
	phase := 2 * math.Pi * float64(now%sim.Time(d.Period)) / float64(d.Period)
	rate := d.Rate * (1 + d.Swing*math.Sin(phase))
	if rate <= 0 {
		rate = d.Rate * 0.01
	}
	return expGap(rate, r)
}

// ArrivalNames lists the arrival-process catalog.
func ArrivalNames() []string { return []string{"poisson", "bursty", "diurnal"} }

// ArrivalByName constructs an arrival process of the named shape with
// the given long-run mean rate (requests per virtual second).
func ArrivalByName(name string, rate float64) (Arrival, error) {
	switch name {
	case "poisson":
		return Poisson{Rate: rate}, nil
	case "bursty":
		return Bursty{Rate: rate}, nil
	case "diurnal":
		return Diurnal{Rate: rate}, nil
	}
	return nil, fmt.Errorf("workload: unknown arrival process %q (valid: poisson, bursty, diurnal)", name)
}
