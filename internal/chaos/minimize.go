package chaos

import "kloc/internal/fault"

// minimize shrinks a violating schedule to a locally-minimal repro
// with the ddmin delta-debugging algorithm, re-executing candidates
// through the reproduces predicate. It returns the minimal schedule
// and the number of probes (re-executions) spent.
//
// Soundness rests on schedules being pure timed data: a Schedule
// carries no probabilities and draws no RNG, so removing an injection
// never perturbs when (or whether) the remaining ones fire. A subset
// that reproduces the violation is therefore a true repro, not a
// coincidence of reshuffled randomness.
func minimize(s fault.Schedule, reproduces func(fault.Schedule) bool) (fault.Schedule, int) {
	cur := s.Normalize()
	probes := 0
	n := 2
	for len(cur.Injections) >= 2 {
		chunk := (len(cur.Injections) + n - 1) / n
		reduced := false
		// Try the complement of each chunk: keep everything except
		// injections [start, start+chunk).
		for start := 0; start < len(cur.Injections); start += chunk {
			drop := make(map[int]bool, chunk)
			for i := start; i < start+chunk && i < len(cur.Injections); i++ {
				drop[i] = true
			}
			cand := cur.Without(drop)
			probes++
			if reproduces(cand) {
				cur = cand.Normalize()
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur.Injections) {
				break
			}
			n *= 2
			if n > len(cur.Injections) {
				n = len(cur.Injections)
			}
		}
	}
	// A single-injection schedule may still reduce to empty (the
	// violation needs no injection at all — a latent bug).
	if len(cur.Injections) == 1 {
		probes++
		if reproduces(fault.Schedule{}) {
			cur = fault.Schedule{}
		}
	}
	return cur, probes
}
