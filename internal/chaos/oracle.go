package chaos

import "fmt"

// The oracle ids.
const (
	// OracleRunError: the run itself failed with a non-errno error (a
	// harness bug escaped the modeled-fault vocabulary).
	OracleRunError = "run.error"
	// OracleOutstanding: a balancer or machine gauge (outstanding,
	// per-machine slots, busy workers, queues) did not return to zero.
	OracleOutstanding = "conservation.outstanding"
	// OracleTerminate: some admitted request never terminated, or
	// terminated more than once.
	OracleTerminate = "conservation.terminate"
	// OracleBreaker: a breaker was left holding half-open probe slots
	// with nothing in flight (the probe-leak class: once the budget is
	// exhausted the machine drops out of routing forever).
	OracleBreaker = "conservation.breaker"
	// OracleDrain: in-flight work never drained inside the settle
	// bound.
	OracleDrain = "liveness.drain"
	// OracleReadmit: an ejected or degraded machine was never restored
	// to the routable set once faults stopped firing.
	OracleReadmit = "liveness.readmit"
	// OracleJournal: the FS crash/replay cycle violated journal
	// consistency.
	OracleJournal = "crash.journal"
	// OracleSanitizer: the runtime sanitizer found double frees,
	// use-after-free accesses, or leaks.
	OracleSanitizer = "crash.sanitizer"
	// OracleDeterminism: the same seed and schedule produced different
	// traces (checked by re-execution in the campaign loop, not via
	// Check).
	OracleDeterminism = "determinism.trace"
)

// Oracle is one invariant check over a run's outcome. Check returns
// the violation detail, or "" when the invariant held.
type Oracle struct {
	ID    string
	Desc  string
	Check func(*Outcome) string
}

// Registry returns the oracle set for a target, in checking order
// (the first violation is the one reported and minimized against).
func Registry(target string) []Oracle {
	oracles := []Oracle{{
		ID:   OracleRunError,
		Desc: "the run completes without a non-errno failure",
		Check: func(o *Outcome) string {
			if o.RunErr != nil {
				return o.RunErr.Error()
			}
			return ""
		},
	}}
	if target == TargetMachine {
		return append(oracles,
			Oracle{
				ID:    OracleJournal,
				Desc:  "crash teardown is total and journal replay rebuilds the durable image exactly",
				Check: checkJournal,
			},
			Oracle{
				ID:    OracleSanitizer,
				Desc:  "no double frees, use-after-free accesses, or leaked objects",
				Check: checkSanitizer,
			})
	}
	return append(oracles,
		Oracle{
			ID:    OracleDrain,
			Desc:  "every in-flight request drains inside the settle bound",
			Check: checkDrain,
		},
		Oracle{
			ID:    OracleReadmit,
			Desc:  "every ejected machine is eventually re-admitted",
			Check: checkReadmit,
		},
		Oracle{
			ID:    OracleOutstanding,
			Desc:  "balancer and machine gauges return to zero after drain",
			Check: checkOutstanding,
		},
		Oracle{
			ID:    OracleTerminate,
			Desc:  "every admitted request terminates exactly once",
			Check: checkTerminate,
		},
		Oracle{
			ID:    OracleBreaker,
			Desc:  "no breaker holds half-open probe slots with nothing in flight",
			Check: checkBreaker,
		})
}

// check runs the registry in order and returns the first violation.
func check(oracles []Oracle, out *Outcome) *Violation {
	for _, o := range oracles {
		if detail := o.Check(out); detail != "" {
			return &Violation{Oracle: o.ID, Detail: detail}
		}
	}
	return nil
}

func checkDrain(o *Outcome) string {
	if o.Intro == nil || o.Settled {
		return ""
	}
	in := o.Intro
	if in.Outstanding != 0 {
		return fmt.Sprintf("%d requests still outstanding %v after the run", in.Outstanding, in.Now)
	}
	for i := range in.Busy {
		if in.Busy[i] != 0 || in.Queued[i] != 0 || in.Serving[i] != 0 {
			return fmt.Sprintf("machine %d still has busy=%d queued=%d serving=%d after the settle bound",
				i, in.Busy[i], in.Queued[i], in.Serving[i])
		}
	}
	return ""
}

func checkReadmit(o *Outcome) string {
	if o.Intro == nil || o.Settled {
		return ""
	}
	in := o.Intro
	for i := range in.Up {
		if !in.Up[i] {
			return fmt.Sprintf("machine %d never restarted", i)
		}
		if !in.Healthy[i] {
			return fmt.Sprintf("machine %d never re-admitted by the health checker", i)
		}
		if in.Degraded[i] {
			return fmt.Sprintf("machine %d never recovered from degradation", i)
		}
	}
	return ""
}

func checkOutstanding(o *Outcome) string {
	if o.Intro == nil {
		return ""
	}
	in := o.Intro
	if in.Outstanding != 0 {
		return fmt.Sprintf("outstanding gauge is %d after drain", in.Outstanding)
	}
	for i, n := range in.Out {
		if n != 0 {
			return fmt.Sprintf("machine %d's balancer slot gauge is %d after drain (routing weight skewed for good)", i, n)
		}
	}
	for i := range in.Busy {
		if in.Busy[i] != 0 || in.Queued[i] != 0 || in.Serving[i] != 0 {
			return fmt.Sprintf("machine %d holds busy=%d queued=%d serving=%d after drain",
				i, in.Busy[i], in.Queued[i], in.Serving[i])
		}
	}
	return ""
}

func checkTerminate(o *Outcome) string {
	if o.Intro == nil {
		return ""
	}
	if o.Intro.AdmittedAll != o.Intro.ResolvedAll {
		return fmt.Sprintf("%d requests admitted but %d resolved", o.Intro.AdmittedAll, o.Intro.ResolvedAll)
	}
	return ""
}

func checkBreaker(o *Outcome) string {
	if o.Intro == nil {
		return ""
	}
	in := o.Intro
	for i, probes := range in.BreakerProbes {
		if probes == 0 {
			continue
		}
		detail := fmt.Sprintf("machine %d's breaker holds %d probe slots (%s) with nothing in flight",
			i, probes, in.BreakerState[i])
		if probes >= in.BreakerBudget[i] {
			detail += " — budget exhausted, machine unroutable forever"
		}
		return detail
	}
	return ""
}

func checkJournal(o *Outcome) string {
	if o.Result == nil {
		return ""
	}
	return o.Result.CrashViolation
}

func checkSanitizer(o *Outcome) string {
	if o.Result == nil || o.Result.Sanitize.Clean() {
		return ""
	}
	r := o.Result.Sanitize
	return fmt.Sprintf("%d findings, %d leaked objects (%d bytes)",
		r.TotalFindings, r.TotalLeaks, r.LeakBytes)
}
