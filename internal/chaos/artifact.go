package chaos

import (
	"encoding/json"
	"fmt"

	"kloc/internal/fault"
	"kloc/internal/sim"
)

// Artifact is a self-contained chaos repro: everything needed to
// re-execute one violating (minimized) schedule exactly —
// `klocbench -exp chaos -replay CHAOS_repro_<hash>.json`.
type Artifact struct {
	SchemaVersion int    `json:"schema_version"`
	Experiment    string `json:"experiment"`
	Target        string `json:"target"`
	Seed          uint64 `json:"seed"`
	Workload      string `json:"workload"`
	ScaleDiv      int    `json:"scale_div"`
	DurationNs    int64  `json:"duration_ns"`
	SettleBoundNs int64  `json:"settle_bound_ns"`
	// Bug records the fixture the campaign ran with (empty for real
	// violations) so a repro of an oracle self-test replays against
	// the same reintroduced defect.
	Bug string `json:"bug,omitempty"`

	// Oracle/Detail are the violated invariant; ScheduleIndex the
	// campaign position of the original schedule.
	Oracle        string `json:"oracle"`
	Detail        string `json:"detail"`
	ScheduleIndex int    `json:"schedule_index"`
	// OriginalInjections is the pre-minimization schedule size;
	// MinimizeProbes the re-executions the minimizer spent.
	OriginalInjections int `json:"original_injections"`
	MinimizeProbes     int `json:"minimize_probes"`
	// TraceFNV fingerprints the violating run's trace; a replay must
	// reproduce it byte-identically.
	TraceFNV uint64 `json:"trace_fnv"`

	// Schedule is the minimized repro schedule.
	Schedule fault.Schedule `json:"schedule"`
}

// Filename names the artifact by its schedule's canonical hash.
func (a *Artifact) Filename() string {
	return fmt.Sprintf("CHAOS_repro_%016x.json", a.Schedule.Hash())
}

// JSON serializes the artifact deterministically.
func (a *Artifact) JSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// config reconstructs the campaign config the artifact was produced
// under (minus the generator state, which a replay does not need).
func (a *Artifact) config() Config {
	return Config{
		Target:      a.Target,
		Seed:        a.Seed,
		Workload:    a.Workload,
		ScaleDiv:    a.ScaleDiv,
		Duration:    sim.Duration(a.DurationNs),
		SettleBound: sim.Duration(a.SettleBoundNs),
		Bug:         a.Bug,
	}.withDefaults()
}

// ParseArtifact deserializes and validates a replay artifact.
func ParseArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("chaos: parse artifact: %w", err)
	}
	if a.Experiment != "chaos" {
		return nil, fmt.Errorf("chaos: artifact experiment is %q, want \"chaos\": %w", a.Experiment, fault.EINVAL)
	}
	if a.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("chaos: artifact schema v%d is newer than this binary's v%d: %w",
			a.SchemaVersion, SchemaVersion, fault.EINVAL)
	}
	if err := a.config().validate(); err != nil {
		return nil, err
	}
	// Round-trip the schedule through the fault package's validating
	// parser: unknown points or negative offsets fail here, not deep
	// inside a run.
	raw, err := json.Marshal(a.Schedule)
	if err != nil {
		return nil, fmt.Errorf("chaos: artifact schedule: %w", err)
	}
	sched, err := fault.ParseSchedule(raw)
	if err != nil {
		return nil, err
	}
	a.Schedule = sched
	return &a, nil
}

// ReplayReport is the outcome of re-executing an artifact.
type ReplayReport struct {
	// Violation is the oracle rejection the replay reproduced (nil if
	// the run came back clean — the bug no longer reproduces).
	Violation *Violation
	// OracleMatch: the reproduced violation is the artifact's oracle.
	OracleMatch bool
	// Deterministic: two back-to-back executions produced
	// byte-identical traces.
	Deterministic bool
	// TraceFNV fingerprints the replayed trace; TraceMatch compares it
	// against the artifact's recorded fingerprint (false on a
	// same-oracle violation whose trace drifted — the repro still
	// stands, but the substrate changed underneath it).
	TraceFNV   uint64
	TraceMatch bool
}

// Replay re-executes an artifact's schedule twice and reports whether
// the violation reproduces deterministically.
func Replay(a *Artifact) (*ReplayReport, error) {
	cfg := a.config()
	ex, err := newExecutor(cfg)
	if err != nil {
		return nil, err
	}
	oracles := Registry(cfg.Target)
	first, err := ex.run(a.Schedule)
	if err != nil {
		return nil, err
	}
	second, err := ex.run(a.Schedule)
	if err != nil {
		return nil, err
	}
	rep := &ReplayReport{
		Violation:     check(oracles, first),
		Deterministic: first.Trace == second.Trace,
		TraceFNV:      fnv64(first.Trace),
	}
	rep.TraceMatch = rep.TraceFNV == a.TraceFNV
	if a.Oracle == OracleDeterminism {
		// A determinism repro is "violated" exactly when the two
		// executions diverge.
		if !rep.Deterministic {
			rep.Violation = &Violation{Oracle: OracleDeterminism, Detail: "same seed and schedule diverged"}
		}
	}
	rep.OracleMatch = rep.Violation != nil && rep.Violation.Oracle == a.Oracle
	return rep, nil
}
