// Package chaos is a deterministic chaos-campaign engine in the
// spirit of FoundationDB-style simulation testing. A seed-driven
// generator samples randomized fault schedules over the full
// fault.Points() catalog — point × virtual-time offset × errno ×
// burst length, including the cluster-level crash and degrade points
// — and executes each schedule against a named target (a single
// kernel under the harness, or an internal/cluster serving fleet).
// An invariant-oracle registry judges every run: conservation
// (balancer gauges return to zero, every admitted request terminates
// exactly once, no breaker left holding probe slots), liveness (the
// fleet settles back to a fully-admitted quiet state), crash
// consistency (FS journal replay, sanitizer leak scan), and
// determinism (same seed + schedule → byte-identical trace).
//
// On a violation, a delta-debugging minimizer shrinks the schedule to
// a minimal repro by deterministic re-execution, and the campaign
// emits a replay artifact (CHAOS_repro_<hash>.json) that
// `klocbench -exp chaos -replay <file>` re-runs exactly. Everything
// here is only possible because the substrate is seed-deterministic:
// re-running a schedule is a pure function of (config, schedule), so
// a reproduction is a proof, not a probability.
package chaos

import (
	"fmt"
	"hash/fnv"

	"kloc/internal/fault"
	"kloc/internal/sim"
)

// SchemaVersion stamps the chaos summary and replay artifacts so the
// BENCH_*/CHAOS_* trajectory stays self-describing across PRs.
const SchemaVersion = 1

// The campaign targets.
const (
	// TargetCluster runs each schedule against a small serving fleet
	// (3 machines behind the KLOC-aware balancer).
	TargetCluster = "cluster"
	// TargetMachine runs each schedule against one kernel under the
	// harness, with the sanitizer and the crash-replay oracle armed.
	TargetMachine = "machine"
)

// Config describes one chaos campaign.
type Config struct {
	// Target selects what each schedule runs against: TargetCluster
	// (default) or TargetMachine.
	Target string
	// Schedules is the campaign size (default 50).
	Schedules int
	// Seed drives the schedule generator and every run (default 42).
	Seed uint64
	// MaxInjections bounds the injections sampled per schedule
	// (default 6).
	MaxInjections int
	// DeterminismEvery re-executes every Nth clean schedule and
	// compares traces byte-for-byte (default 16; negative disables).
	DeterminismEvery int
	// Workload is the per-target workload (default "redis").
	Workload string
	// ScaleDiv scales the platform (default 256: chaos wants many
	// small runs, not few faithful ones).
	ScaleDiv int
	// Duration is each run's measured window (default 10 ms).
	Duration sim.Duration
	// SettleBound is the extra virtual time a fleet gets to quiesce
	// after its measured window (default 50 ms).
	SettleBound sim.Duration
	// Bug re-introduces a known serving-plane defect (cluster.Bug*)
	// so the oracles themselves can be regression-tested.
	Bug string
}

func (c Config) withDefaults() Config {
	if c.Target == "" {
		c.Target = TargetCluster
	}
	if c.Schedules <= 0 {
		c.Schedules = 50
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxInjections <= 0 {
		c.MaxInjections = 6
	}
	if c.DeterminismEvery == 0 {
		c.DeterminismEvery = 16
	}
	if c.Workload == "" {
		c.Workload = "redis"
	}
	if c.ScaleDiv <= 0 {
		c.ScaleDiv = 256
	}
	if c.Duration <= 0 {
		c.Duration = 10 * sim.Millisecond
	}
	if c.SettleBound <= 0 {
		c.SettleBound = 50 * sim.Millisecond
	}
	return c
}

func (c Config) validate() error {
	switch c.Target {
	case TargetCluster, TargetMachine:
	default:
		return fmt.Errorf("chaos: unknown target %q (valid: %s, %s): %w",
			c.Target, TargetCluster, TargetMachine, fault.EINVAL)
	}
	return nil
}

// Violation is one oracle rejection of one run.
type Violation struct {
	// Oracle is the violated oracle's id ("conservation.outstanding",
	// "crash.journal", ...).
	Oracle string `json:"oracle"`
	// Detail pinpoints the broken invariant.
	Detail string `json:"detail"`
}

// ViolationRecord is one campaign violation with its minimization
// outcome, as recorded in the summary.
type ViolationRecord struct {
	ScheduleIndex       int    `json:"schedule_index"`
	Oracle              string `json:"oracle"`
	Detail              string `json:"detail"`
	OriginalInjections  int    `json:"original_injections"`
	MinimizedInjections int    `json:"minimized_injections"`
	// MinimizeProbes counts the deterministic re-executions the
	// minimizer spent shrinking the schedule.
	MinimizeProbes int `json:"minimize_probes"`
	// Artifact is the replay artifact's file name.
	Artifact string `json:"artifact"`
}

// Summary is the machine-readable campaign outcome
// (BENCH_chaos.json).
type Summary struct {
	SchemaVersion int    `json:"schema_version"`
	Experiment    string `json:"experiment"`
	Target        string `json:"target"`
	Seed          uint64 `json:"seed"`
	Schedules     int    `json:"schedules"`
	// Injections is the total injection count exercised across every
	// schedule of the campaign.
	Injections int `json:"injections"`
	// DeterminismRuns counts the byte-identity re-executions.
	DeterminismRuns int               `json:"determinism_runs"`
	OraclesChecked  []string          `json:"oracles_checked"`
	Violations      []ViolationRecord `json:"violations"`
	Clean           bool              `json:"clean"`
}

// RunCampaign executes one chaos campaign: generate schedules, run
// each against the target, judge with the oracle registry, and shrink
// every violation to a minimal repro with a replay artifact. The
// returned artifacts pair 1:1 with Summary.Violations.
func RunCampaign(cfg Config) (*Summary, []*Artifact, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	ex, err := newExecutor(cfg)
	if err != nil {
		return nil, nil, err
	}
	gen := newGenerator(cfg)
	oracles := Registry(cfg.Target)
	sum := &Summary{
		SchemaVersion: SchemaVersion,
		Experiment:    "chaos",
		Target:        cfg.Target,
		Seed:          cfg.Seed,
		Schedules:     cfg.Schedules,
	}
	for _, o := range oracles {
		sum.OraclesChecked = append(sum.OraclesChecked, o.ID)
	}
	sum.OraclesChecked = append(sum.OraclesChecked, OracleDeterminism)

	var artifacts []*Artifact
	for i := 0; i < cfg.Schedules; i++ {
		sched := gen.next()
		sum.Injections += len(sched.Injections)
		out, err := ex.run(sched)
		if err != nil {
			return nil, nil, err
		}
		v := check(oracles, out)
		if v == nil && cfg.DeterminismEvery > 0 && i%cfg.DeterminismEvery == 0 {
			sum.DeterminismRuns++
			again, err := ex.run(sched)
			if err != nil {
				return nil, nil, err
			}
			if again.Trace != out.Trace {
				v = &Violation{
					Oracle: OracleDeterminism,
					Detail: fmt.Sprintf("same seed and schedule diverged: trace fnv %016x vs %016x",
						fnv64(out.Trace), fnv64(again.Trace)),
				}
			}
		}
		if v == nil {
			continue
		}
		out.emitViolation(v.Oracle)
		art, rec, err := shrink(ex, oracles, cfg, i, sched, v)
		if err != nil {
			return nil, nil, err
		}
		artifacts = append(artifacts, art)
		sum.Violations = append(sum.Violations, rec)
	}
	sum.Clean = len(sum.Violations) == 0
	return sum, artifacts, nil
}

// shrink minimizes one violating schedule and packages the repro.
func shrink(ex *executor, oracles []Oracle, cfg Config, index int, sched fault.Schedule, v *Violation) (*Artifact, ViolationRecord, error) {
	reproduces := func(cand fault.Schedule) bool {
		out, err := ex.run(cand)
		if err != nil {
			return false
		}
		got := check(oracles, out)
		return got != nil && got.Oracle == v.Oracle
	}
	if v.Oracle == OracleDeterminism {
		reproduces = func(cand fault.Schedule) bool {
			a, err := ex.run(cand)
			if err != nil {
				return false
			}
			b, err := ex.run(cand)
			if err != nil {
				return false
			}
			return a.Trace != b.Trace
		}
	}
	minimal, probes := minimize(sched, reproduces)
	// One confirming run of the minimal schedule: its violation detail
	// and trace fingerprint are what the artifact pins.
	confirm, err := ex.run(minimal)
	if err != nil {
		return nil, ViolationRecord{}, err
	}
	probes++
	detail := v.Detail
	if got := check(oracles, confirm); got != nil && got.Oracle == v.Oracle {
		detail = got.Detail
	}
	confirm.emitMinimize(v.Oracle)
	art := &Artifact{
		SchemaVersion:      SchemaVersion,
		Experiment:         "chaos",
		Target:             cfg.Target,
		Seed:               cfg.Seed,
		Workload:           cfg.Workload,
		ScaleDiv:           cfg.ScaleDiv,
		DurationNs:         int64(cfg.Duration),
		SettleBoundNs:      int64(cfg.SettleBound),
		Bug:                cfg.Bug,
		Oracle:             v.Oracle,
		Detail:             detail,
		ScheduleIndex:      index,
		OriginalInjections: len(sched.Normalize().Injections),
		MinimizeProbes:     probes,
		TraceFNV:           fnv64(confirm.Trace),
		Schedule:           minimal,
	}
	rec := ViolationRecord{
		ScheduleIndex:       index,
		Oracle:              v.Oracle,
		Detail:              detail,
		OriginalInjections:  art.OriginalInjections,
		MinimizedInjections: len(minimal.Injections),
		MinimizeProbes:      probes,
		Artifact:            art.Filename(),
	}
	return art, rec, nil
}

// fnv64 fingerprints a trace export for determinism comparisons.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
