package chaos

import (
	"kloc/internal/fault"
	"kloc/internal/sim"
)

// generator samples randomized fault schedules, deterministically
// from the campaign seed. Each schedule draws from a forked RNG
// stream, so schedule i is the same no matter how schedules 0..i-1
// were executed.
type generator struct {
	cfg Config
	// root is drawn only by the campaign coordinator's lane; every
	// schedule gets its own forked child stream.
	//klocs:owner=lane
	root     *sim.RNG
	points   []fault.Point
	errnos   []fault.Errno
	machines int
}

func newGenerator(cfg Config) *generator {
	g := &generator{
		cfg:      cfg,
		root:     sim.NewRNG(cfg.Seed ^ 0x63686165),
		errnos:   fault.Errnos(),
		machines: 1,
	}
	for _, pt := range fault.Points() {
		if cfg.Target == TargetMachine && (pt == fault.MachineCrash || pt == fault.MachineDegrade) {
			// One kernel has no fleet membership to crash; the point
			// would never be consulted.
			continue
		}
		g.points = append(g.points, pt)
	}
	if cfg.Target == TargetCluster {
		g.machines = clusterMachines
	}
	return g
}

// next samples one schedule: 1..MaxInjections injections, each a
// uniform point at a uniform offset inside the measured window, with
// the point's default errno most of the time (an explicit random
// errno otherwise) and mostly-single bursts.
func (g *generator) next() fault.Schedule {
	rng := g.root.Fork()
	k := 1 + rng.Intn(g.cfg.MaxInjections)
	s := fault.Schedule{Injections: make([]fault.Injection, 0, k)}
	for j := 0; j < k; j++ {
		in := fault.Injection{
			Point:   g.points[rng.Intn(len(g.points))],
			Machine: rng.Intn(g.machines),
			At:      sim.Duration(rng.Int63n(int64(g.cfg.Duration))),
			Burst:   1,
		}
		if rng.Bool(0.2) {
			in.Err = g.errnos[rng.Intn(len(g.errnos))]
		}
		if rng.Bool(0.25) {
			in.Burst = 2 + rng.Intn(3)
		}
		s.Injections = append(s.Injections, in)
	}
	return s.Normalize()
}
