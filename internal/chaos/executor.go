package chaos

import (
	"fmt"

	"kloc/internal/cluster"
	"kloc/internal/fault"
	"kloc/internal/harness"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

// The cluster target's fleet shape: small machines, small fleet —
// chaos wants many cheap runs. DegradeFactor and HedgeAfter are tuned
// so a degrade injection reliably drives the hedge/timeout machinery
// the conservation oracles watch.
const (
	clusterMachines      = 3
	clusterWorkers       = 2
	clusterQueueLimit    = 16
	clusterLoadFactor    = 0.6
	clusterDegradeFactor = 50
	clusterHedgeAfter    = 200 * sim.Microsecond
	clusterFaultWindow   = sim.Millisecond
)

// Outcome is one executed schedule's observable state — everything
// the invariant oracles judge.
type Outcome struct {
	Target   string
	Schedule fault.Schedule

	// RunErr is a non-errno failure out of the run itself (a harness
	// bug, never a modeled fault) — the run.error oracle's subject.
	RunErr error

	// Cluster-target state: the run report, the post-settle
	// introspection snapshot, and whether the fleet reached quiescence
	// inside the settle bound.
	ClusterReport *cluster.Report
	Intro         *cluster.Introspection
	Settled       bool

	// Machine-target state.
	Result *harness.Result

	// Trace is the run's deterministic fingerprint: the report plus
	// the full trace-plane text export. Two executions of the same
	// (config, schedule) must produce identical bytes.
	Trace string

	tr *trace.Tracer
}

// emitViolation and emitMinimize record campaign bookkeeping events on
// the outcome's tracer. Both are called only after the fingerprint was
// captured, so they never perturb the determinism oracle. (They call
// Tracer.Emit with the catalog constant spelled out at the call site —
// the tracereach analyzer proves catalog liveness from those literal
// sites.)
func (o *Outcome) emitViolation(oracle string) {
	o.tr.Emit(trace.ChaosViolation, 0, o.Schedule.Hash(),
		uint64(len(o.Schedule.Injections)), oracle, -1, int64(len(o.Schedule.Injections)))
}

func (o *Outcome) emitMinimize(oracle string) {
	o.tr.Emit(trace.ChaosMinimize, 0, o.Schedule.Hash(),
		uint64(len(o.Schedule.Injections)), oracle, -1, int64(len(o.Schedule.Injections)))
}

// emitSchedule records the schedule-armed event.
func (o *Outcome) emitSchedule() {
	o.tr.Emit(trace.ChaosSchedule, 0, o.Schedule.Hash(),
		uint64(len(o.Schedule.Injections)), "arm", -1, int64(len(o.Schedule.Injections)))
}

// executor runs schedules against the configured target. The offered
// rate for the cluster target is calibrated once per campaign (the
// estimate is itself deterministic, so replays in a fresh process
// recompute the identical rate).
type executor struct {
	cfg  Config
	rate float64
}

func newExecutor(cfg Config) (*executor, error) {
	ex := &executor{cfg: cfg}
	if cfg.Target == TargetCluster {
		base := ex.clusterBase()
		cost, err := cluster.EstimateServiceCost(base)
		if err != nil {
			return nil, err
		}
		capacity := float64(base.Machines*base.Workers) / cost.Seconds()
		ex.rate = clusterLoadFactor * capacity
	}
	return ex, nil
}

func (ex *executor) clusterBase() cluster.Config {
	return cluster.Config{
		Machines:   clusterMachines,
		Workers:    clusterWorkers,
		QueueLimit: clusterQueueLimit,
		ScaleDiv:   ex.cfg.ScaleDiv,
		Workload:   ex.cfg.Workload,
		Route:      "kloc",
		Rate:       1, // placeholder; run() sets the calibrated rate
		Duration:   ex.cfg.Duration,
		Warmup:     ex.cfg.Duration / 4,
		// Short fault windows so burst-scheduled crashes (which re-fire
		// on restart) still settle well inside the bound.
		RestartDelay:  clusterFaultWindow,
		DegradeFor:    clusterFaultWindow,
		DegradeFactor: clusterDegradeFactor,
		HedgeAfter:    clusterHedgeAfter,
		Seed:          ex.cfg.Seed,
		Bug:           ex.cfg.Bug,
	}
}

// run executes one schedule and returns its outcome. A returned
// error is an infrastructure failure (bad config) that aborts the
// campaign; failures of the run itself land on Outcome.RunErr.
func (ex *executor) run(sched fault.Schedule) (*Outcome, error) {
	s := sched.Normalize()
	switch ex.cfg.Target {
	case TargetMachine:
		return ex.runMachine(s)
	default:
		return ex.runCluster(s)
	}
}

func (ex *executor) runCluster(s fault.Schedule) (*Outcome, error) {
	ccfg := ex.clusterBase()
	ccfg.Rate = ex.rate
	ccfg.Chaos = &s
	ccfg.Trace = &trace.Config{}
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Target: TargetCluster, Schedule: s, tr: c.Tracer()}
	out.emitSchedule()
	rep, err := c.Run()
	if err != nil {
		out.RunErr = err
		out.Trace = "error: " + err.Error() + "\n" + c.Tracer().TextString()
		return out, nil
	}
	out.ClusterReport = rep
	out.Settled = c.Settle(ex.cfg.SettleBound)
	in := c.Introspect()
	out.Intro = &in
	out.Trace = rep.String() + c.Tracer().TextString()
	return out, nil
}

func (ex *executor) runMachine(s fault.Schedule) (*Outcome, error) {
	rcfg := harness.RunConfig{
		PolicyName:    "klocs",
		Workload:      ex.cfg.Workload,
		ScaleDiv:      ex.cfg.ScaleDiv,
		Seed:          ex.cfg.Seed,
		Duration:      ex.cfg.Duration,
		FaultSchedule: &s,
		Sanitize:      true,
		CrashReplay:   true,
		Trace:         &trace.Config{},
	}
	out := &Outcome{Target: TargetMachine, Schedule: s}
	res, err := harness.Run(rcfg)
	if err != nil {
		out.RunErr = err
		out.Trace = "error: " + err.Error()
		return out, nil
	}
	out.Result = res
	out.tr = res.Trace
	out.emitSchedule()
	out.Trace = fmt.Sprintf("ops=%d faults=%d degraded=%d crash=%q\n",
		res.Ops, res.FaultsInjected, res.DegradedOps, res.CrashViolation) +
		res.FaultTrace + res.Sanitize.String() + res.Trace.TextString()
	return out, nil
}
